#include "core/math.hh"

namespace emerald::core
{

Mat4
Mat4::identity()
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        r.m[i][i] = 1.0f;
    return r;
}

Mat4
Mat4::translate(const Vec3 &t)
{
    Mat4 r = identity();
    r.m[3][0] = t.x;
    r.m[3][1] = t.y;
    r.m[3][2] = t.z;
    return r;
}

Mat4
Mat4::scale(const Vec3 &s)
{
    Mat4 r;
    r.m[0][0] = s.x;
    r.m[1][1] = s.y;
    r.m[2][2] = s.z;
    r.m[3][3] = 1.0f;
    return r;
}

Mat4
Mat4::rotateX(float a)
{
    Mat4 r = identity();
    float c = std::cos(a), s = std::sin(a);
    r.m[1][1] = c;
    r.m[2][1] = -s;
    r.m[1][2] = s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateY(float a)
{
    Mat4 r = identity();
    float c = std::cos(a), s = std::sin(a);
    r.m[0][0] = c;
    r.m[2][0] = s;
    r.m[0][2] = -s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateZ(float a)
{
    Mat4 r = identity();
    float c = std::cos(a), s = std::sin(a);
    r.m[0][0] = c;
    r.m[1][0] = -s;
    r.m[0][1] = s;
    r.m[1][1] = c;
    return r;
}

Mat4
Mat4::perspective(float fovy, float aspect, float znear, float zfar)
{
    Mat4 r;
    float f = 1.0f / std::tan(fovy * 0.5f);
    r.m[0][0] = f / aspect;
    r.m[1][1] = f;
    r.m[2][2] = (zfar + znear) / (znear - zfar);
    r.m[2][3] = -1.0f;
    r.m[3][2] = 2.0f * zfar * znear / (znear - zfar);
    return r;
}

Mat4
Mat4::lookAt(const Vec3 &eye, const Vec3 &center, const Vec3 &up)
{
    Vec3 f = normalize(center - eye);
    Vec3 s = normalize(cross(f, up));
    Vec3 u = cross(s, f);
    Mat4 r = identity();
    r.m[0][0] = s.x; r.m[1][0] = s.y; r.m[2][0] = s.z;
    r.m[0][1] = u.x; r.m[1][1] = u.y; r.m[2][1] = u.z;
    r.m[0][2] = -f.x; r.m[1][2] = -f.y; r.m[2][2] = -f.z;
    r.m[3][0] = -dot(s, eye);
    r.m[3][1] = -dot(u, eye);
    r.m[3][2] = dot(f, eye);
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    Mat4 r;
    for (int c = 0; c < 4; ++c) {
        for (int row = 0; row < 4; ++row) {
            float sum = 0.0f;
            for (int k = 0; k < 4; ++k)
                sum += m[k][row] * o.m[c][k];
            r.m[c][row] = sum;
        }
    }
    return r;
}

Vec4
Mat4::operator*(const Vec4 &v) const
{
    Vec4 r;
    r.x = m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z + m[3][0] * v.w;
    r.y = m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z + m[3][1] * v.w;
    r.z = m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z + m[3][2] * v.w;
    r.w = m[0][3] * v.x + m[1][3] * v.y + m[2][3] * v.z + m[3][3] * v.w;
    return r;
}

void
Mat4::toColumnMajor(float *out) const
{
    for (int c = 0; c < 4; ++c)
        for (int row = 0; row < 4; ++row)
            out[c * 4 + row] = m[c][row];
}

} // namespace emerald::core
