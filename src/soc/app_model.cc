#include "soc/app_model.hh"

#include <algorithm>

#include "mem/traffic_trace.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::soc
{

AppModel::AppModel(Simulation &sim, const std::string &name,
                   const AppParams &params,
                   scenes::SceneRenderer &scene,
                   std::vector<CpuCoreModel *> cores,
                   mem::DashCoordinator *dash,
                   std::function<void()> on_all_frames_done)
    : SimObject(sim, name),
      statFrames(*this, "frames", "application frames completed"),
      statGpuFrameTicks(*this, "gpu_frame_ticks",
                        "GPU render time per frame (ticks)"),
      statTotalFrameTicks(*this, "total_frame_ticks",
                          "prep+render time per frame (ticks)"),
      _params(params), _scene(scene), _cores(std::move(cores)),
      _dash(dash), _onDone(std::move(on_all_frames_done)),
      _startPrepEvent([this] { beginPrep(); }, name + ".prep"),
      _pollEvent([this] { pollProgress(); }, name + ".poll")
{
    if (_dash)
        _dashIp = _dash->registerIp(name + ".gpu", TrafficClass::Gpu,
                                    0.9);
    registerCheckpointEvent(_startPrepEvent);
    registerCheckpointEvent(_pollEvent);
}

namespace
{

void
putFrameRecord(CheckpointOut &out, const std::string &prefix,
               const AppModel::FrameRecord &rec)
{
    out.putTick(prefix + ".prep_start", rec.prepStart);
    out.putTick(prefix + ".render_start", rec.renderStart);
    out.putTick(prefix + ".render_end", rec.renderEnd);
    out.putU64(prefix + ".gpu.cycles", rec.gpu.cycles);
    out.putTick(prefix + ".gpu.start_tick", rec.gpu.startTick);
    out.putTick(prefix + ".gpu.end_tick", rec.gpu.endTick);
    out.putU64(prefix + ".gpu.vertices", rec.gpu.vertices);
    out.putU64(prefix + ".gpu.prims_in", rec.gpu.primsIn);
    out.putU64(prefix + ".gpu.prims_culled", rec.gpu.primsCulled);
    out.putU64(prefix + ".gpu.raster_tiles", rec.gpu.rasterTiles);
    out.putU64(prefix + ".gpu.hiz_rejects", rec.gpu.hizRejects);
    out.putU64(prefix + ".gpu.fragments", rec.gpu.fragments);
    out.putU64(prefix + ".gpu.frag_warps", rec.gpu.fragWarps);
    out.putU64(prefix + ".gpu.wt_size", rec.gpu.wtSize);
}

AppModel::FrameRecord
getFrameRecord(CheckpointIn &in, const std::string &prefix)
{
    AppModel::FrameRecord rec;
    rec.prepStart = in.getTick(prefix + ".prep_start");
    rec.renderStart = in.getTick(prefix + ".render_start");
    rec.renderEnd = in.getTick(prefix + ".render_end");
    rec.gpu.cycles = in.getU64(prefix + ".gpu.cycles");
    rec.gpu.startTick = in.getTick(prefix + ".gpu.start_tick");
    rec.gpu.endTick = in.getTick(prefix + ".gpu.end_tick");
    rec.gpu.vertices = in.getU64(prefix + ".gpu.vertices");
    rec.gpu.primsIn = in.getU64(prefix + ".gpu.prims_in");
    rec.gpu.primsCulled = in.getU64(prefix + ".gpu.prims_culled");
    rec.gpu.rasterTiles = in.getU64(prefix + ".gpu.raster_tiles");
    rec.gpu.hizRejects = in.getU64(prefix + ".gpu.hiz_rejects");
    rec.gpu.fragments = in.getU64(prefix + ".gpu.fragments");
    rec.gpu.fragWarps = in.getU64(prefix + ".gpu.frag_warps");
    rec.gpu.wtSize =
        static_cast<unsigned>(in.getU64(prefix + ".gpu.wt_size"));
    return rec;
}

} // namespace

void
AppModel::serialize(CheckpointOut &out) const
{
    panic_if(_rendering, "%s: serialize while rendering",
             name().c_str());
    out.putU64("frames_done", _framesDone);
    out.putU64("cores_pending", _coresPending);
    out.putTick("frame_slot_start", _frameSlotStart);
    out.putF64("frag_estimate", _fragEstimate);
    out.putU64("progress_reported", _progressReported);
    putFrameRecord(out, "current", _current);
    out.putU64("num_records", _records.size());
    for (std::size_t i = 0; i < _records.size(); ++i)
        putFrameRecord(out, strprintf("r%zu", i), _records[i]);
}

void
AppModel::unserialize(CheckpointIn &in)
{
    _framesDone = static_cast<unsigned>(in.getU64("frames_done"));
    _coresPending = static_cast<unsigned>(in.getU64("cores_pending"));
    _frameSlotStart = in.getTick("frame_slot_start");
    _fragEstimate = in.getF64("frag_estimate");
    _progressReported = in.getU64("progress_reported");
    _current = getFrameRecord(in, "current");
    std::uint64_t num_records = in.getU64("num_records");
    _records.clear();
    for (std::uint64_t i = 0; i < num_records; ++i) {
        _records.push_back(getFrameRecord(
            in, strprintf("r%llu", (unsigned long long)i)));
    }

    // Mid-prep checkpoints leave cores holding a quota-done fence
    // that cannot travel as data; re-install it.
    for (CpuCoreModel *core : _cores) {
        if (core->needsQuotaCallbackRebind())
            core->rebindQuotaCallback([this] { corePrepDone(); });
    }
}

void
AppModel::start()
{
    scheduleIn(_startPrepEvent, 0);
}

void
AppModel::beginPrep()
{
    _frameSlotStart = curTick();
    _current = FrameRecord{};
    _current.prepStart = curTick();

    // CPU-side work: all cores burn through their prep quota.
    _coresPending = static_cast<unsigned>(_cores.size());
    for (CpuCoreModel *core : _cores) {
        core->setBackground(false);
        core->runQuota(_params.cpuPrepRequests,
                       [this] { corePrepDone(); });
    }
}

void
AppModel::corePrepDone()
{
    panic_if(_coresPending == 0, "prep over-completion");
    if (--_coresPending == 0)
        beginRender();
}

void
AppModel::beginRender()
{
    _rendering = true;
    _current.renderStart = curTick();
    _progressReported = 0;

    if (_traceWriter)
        _traceWriter->beginFrame(curTick());

    // App threads keep light background activity while blocked on
    // the GPU fence.
    for (CpuCoreModel *core : _cores)
        core->setBackground(true);

    if (_dash && _dashIp >= 0) {
        double estimate = _fragEstimate > 0.0 ? _fragEstimate : 1e9;
        _dash->beginIpPeriod(_dashIp, _params.gpuFramePeriod,
                             estimate);
        // Fine-grained progress from the pipeline plus a periodic
        // poll as a fallback.
        _scene.pipeline().setProgressListener(
            [this](std::uint64_t frags) {
                if (frags > _progressReported) {
                    _dash->addIpProgress(
                        _dashIp, static_cast<double>(
                                     frags - _progressReported));
                    _progressReported = frags;
                }
            });
        scheduleIn(_pollEvent, _params.progressPollPeriod);
    }

    _scene.renderFrame(_framesDone, [this](const core::FrameStats &s) {
        renderDone(s);
    });
}

void
AppModel::pollProgress()
{
    if (!_dash || _dashIp < 0)
        return;
    // Report newly shaded fragments since the last poll.
    std::uint64_t now_frags =
        _scene.pipeline().currentFrameFragments();
    if (now_frags > _progressReported) {
        _dash->addIpProgress(
            _dashIp,
            static_cast<double>(now_frags - _progressReported));
        _progressReported = now_frags;
    }
    scheduleIn(_pollEvent, _params.progressPollPeriod);
}

void
AppModel::renderDone(const core::FrameStats &stats)
{
    _rendering = false;
    _current.renderEnd = curTick();
    _current.gpu = stats;

    if (_traceWriter) {
        _traceWriter->endFrame(curTick(),
                               static_cast<double>(stats.fragments));
    }
    _records.push_back(_current);
    ++_framesDone;
    ++statFrames;
    statGpuFrameTicks.sample(
        static_cast<double>(_current.gpuTime()));
    statTotalFrameTicks.sample(
        static_cast<double>(_current.totalTime()));
    _fragEstimate = static_cast<double>(stats.fragments);

    descheduleIfPending(_pollEvent);
    if (_dash && _dashIp >= 0) {
        _scene.pipeline().setProgressListener(nullptr);
        _dash->endIpPeriod(_dashIp);
    }

    for (CpuCoreModel *core : _cores)
        core->setBackground(false);

    if (_framesDone >= _params.frames) {
        if (_onDone)
            _onDone();
        return;
    }

    // Vsync pacing: next frame at the period boundary (or now, if
    // the deadline slipped).
    Tick next = _frameSlotStart + _params.gpuFramePeriod;
    Tick when = std::max(curTick(), next);
    schedule(_startPrepEvent, when);
}

} // namespace emerald::soc
