#include "sim/simulation_builder.hh"

#include "sim/config.hh"
#include "sim/fault/fault_plan.hh"
#include "sim/logging.hh"
#include "sim/fault/watchdog.hh"
#include "sim/simulation.hh"

namespace emerald
{

SimulationBuilder &
SimulationBuilder::clockDomain(const std::string &name, double mhz)
{
    _domains.push_back({name, mhz});
    return *this;
}

SimulationBuilder &
SimulationBuilder::traceFile(const std::string &path)
{
    _traceFile = path;
    return *this;
}

SimulationBuilder &
SimulationBuilder::profiling(bool on)
{
    _profiling = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::statsOutOnExit(const std::string &uri)
{
    _statsOutOnExit = uri;
    return *this;
}

SimulationBuilder &
SimulationBuilder::checkDeterminism(bool on)
{
    _checkDeterminism = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultPlan(const std::string &plan, std::uint64_t seed)
{
    _faultPlan = plan;
    _faultSeed = seed;
    return *this;
}

SimulationBuilder &
SimulationBuilder::watchdog(Tick budget, const std::string &mode)
{
    _watchdogTicks = budget;
    _watchdogMode = mode;
    return *this;
}

SimulationBuilder &
SimulationBuilder::checkpointAt(Tick at, const std::string &dir)
{
    _checkpointAt = at;
    _checkpointDir = dir;
    return *this;
}

SimulationBuilder &
SimulationBuilder::checkpointEvery(Tick every, const std::string &dir,
                                   unsigned keep)
{
    _checkpointEvery = every;
    _checkpointDir = dir;
    _checkpointKeep = keep;
    return *this;
}

SimulationBuilder &
SimulationBuilder::hangReportPath(const std::string &path)
{
    _hangReportPath = path;
    return *this;
}

SimulationBuilder &
SimulationBuilder::restoreFrom(const std::string &dir, bool force)
{
    _restoreDir = dir;
    _restoreForce = force;
    return *this;
}

SimulationBuilder &
SimulationBuilder::subdir(const std::string &label)
{
    if (!_checkpointDir.empty())
        _checkpointDir += "/" + label;
    if (!_restoreDir.empty())
        _restoreDir += "/" + label;
    return *this;
}

SimulationBuilder &
SimulationBuilder::warpScheduler(const std::string &policy)
{
    _warpSched = policy;
    return *this;
}

SimulationBuilder &
SimulationBuilder::memScheduler(const std::string &policy)
{
    _memSched = policy;
    return *this;
}

SimulationBuilder &
SimulationBuilder::captureTrace(const std::string &dir)
{
    _captureTraceDir = dir;
    return *this;
}

SimulationBuilder &
SimulationBuilder::replayTrace(const std::string &dir)
{
    _replayTraceDir = dir;
    return *this;
}

SimulationBuilder &
SimulationBuilder::observability(const Config &cfg)
{
    traceFile(cfg.getString("trace-file", _traceFile));
    profiling(cfg.getBool("profile", _profiling));
    statsOutOnExit(cfg.getString("sim-stats-out", _statsOutOnExit));
    if (cfg.has("sim-stats-json")) {
        warn("--sim-stats-json is deprecated; use "
             "--sim-stats-out=<path|sqlite:path|null>");
        if (!cfg.has("sim-stats-out"))
            statsOutOnExit(cfg.getString("sim-stats-json", ""));
    }
    checkDeterminism(cfg.getBool("check-determinism", _checkDeterminism));
    faultPlan(cfg.getString("fault-plan", _faultPlan),
              cfg.getU64("fault-seed", _faultSeed));
    if (cfg.has("watchdog-ticks")) {
        _watchdogTicks = fault::parseDuration(
            cfg.getString("watchdog-ticks", ""), "--watchdog-ticks");
    }
    _watchdogMode = cfg.getString("watchdog-mode", _watchdogMode);
    if (cfg.has("checkpoint-at")) {
        checkpointAt(fault::parseDuration(
                         cfg.getString("checkpoint-at", ""),
                         "--checkpoint-at"),
                     cfg.getString("checkpoint-dir", "ckpt"));
    }
    if (cfg.has("checkpoint-every")) {
        checkpointEvery(
            fault::parseDuration(cfg.getString("checkpoint-every", ""),
                                 "--checkpoint-every"),
            cfg.getString("checkpoint-dir", "ckpt"),
            static_cast<unsigned>(cfg.getU64("checkpoint-keep", 3)));
    }
    hangReportPath(cfg.getString("hang-report-path", _hangReportPath));
    if (cfg.has("restore")) {
        restoreFrom(cfg.getString("restore", ""),
                    cfg.getBool("restore-force", false));
    }
    warpScheduler(cfg.getString("warp-sched", _warpSched));
    memScheduler(cfg.getString("mem-sched", _memSched));
    captureTrace(cfg.getString("capture-trace", _captureTraceDir));
    replayTrace(cfg.getString("replay-trace", _replayTraceDir));
    return *this;
}

std::unique_ptr<Simulation>
SimulationBuilder::build() const
{
    auto sim = std::make_unique<Simulation>();
    applyTo(*sim);
    return sim;
}

void
SimulationBuilder::applyTo(Simulation &sim) const
{
    for (const DomainSpec &spec : _domains)
        sim.createClockDomain(spec.mhz, spec.name);
    if (!_traceFile.empty())
        sim.enableTracing(_traceFile);
    if (_profiling)
        sim.enableProfiling();
    if (!_statsOutOnExit.empty())
        sim.writeStatsAtExit(_statsOutOnExit);
    if (_checkDeterminism)
        sim.enableDeterminismCheck();
    // The checkpoint trigger attaches after the determinism verifier
    // so a saved hash always covers the just-processed event.
    fatal_if(_checkpointAt > 0 && _checkpointEvery > 0,
             "--checkpoint-at and --checkpoint-every cannot combine: "
             "one trigger per simulation");
    if (_checkpointEvery > 0) {
        sim.scheduleRecurringCheckpoint(_checkpointEvery,
                                        _checkpointDir,
                                        _checkpointKeep);
    } else if (!_checkpointDir.empty()) {
        sim.scheduleCheckpoint(_checkpointAt, _checkpointDir);
    }
    // Under recurring auto-checkpointing the restore is lenient: a
    // supervised rerun may restart a config that never reached its
    // first rotation (or whose only rotation is corrupt), and that
    // must degrade to a cold start, not a fatal.
    if (!_restoreDir.empty()) {
        sim.setRestoreSpec(_restoreDir, _restoreForce,
                           /*lenient=*/_checkpointEvery > 0);
    }
    if (!_hangReportPath.empty())
        sim.setHangReportPath(_hangReportPath);
    if (!_faultPlan.empty())
        sim.configureFaults(_faultPlan, _faultSeed);
    if (_watchdogTicks > 0) {
        sim.enableWatchdog(_watchdogTicks,
                           fault::watchdogModeFromString(_watchdogMode));
    }
    sim.setWarpSchedPolicy(_warpSched);
    sim.setMemSchedPolicy(_memSched);
    sim.setCaptureTraceDir(_captureTraceDir);
    sim.setReplayTraceDir(_replayTraceDir);
    // Capture *during* replay is legal (round-trip verification),
    // but neither mode can mix with checkpoint/restore: the trace
    // writer and replay driver carry no checkpointable state.
    fatal_if((!_captureTraceDir.empty() || !_replayTraceDir.empty()) &&
                 (!_restoreDir.empty() || !_checkpointDir.empty()),
             "--capture-trace/--replay-trace cannot combine with "
             "checkpoint/restore");
}

} // namespace emerald
