#include "gpu/isa/cfg.hh"

#include <algorithm>
#include <map>
#include <set>

#include "sim/logging.hh"

namespace emerald::gpu::isa
{

std::vector<BasicBlock>
buildBasicBlocks(const Program &prog)
{
    const int n = static_cast<int>(prog.code.size());
    std::set<int> leaders;
    leaders.insert(0);
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &instr = prog.code[pc];
        if (instr.op == Opcode::BRA) {
            if (instr.target >= 0 && instr.target < n)
                leaders.insert(instr.target);
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        } else if (instr.op == Opcode::EXIT) {
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        }
    }

    std::vector<BasicBlock> blocks;
    std::map<int, int> blockOfLeader;
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        BasicBlock bb;
        bb.first = *it;
        auto next = std::next(it);
        bb.last = (next == leaders.end() ? n : *next) - 1;
        blockOfLeader[bb.first] = static_cast<int>(blocks.size());
        blocks.push_back(bb);
    }

    const int exitBlock = static_cast<int>(blocks.size());
    for (BasicBlock &bb : blocks) {
        const Instruction &last = prog.code[bb.last];
        if (last.op == Opcode::EXIT) {
            bb.successors.push_back(exitBlock);
        } else if (last.op == Opcode::BRA) {
            bb.successors.push_back(blockOfLeader.at(last.target));
            // A guarded branch can fall through.
            if (last.guard >= 0) {
                if (bb.last + 1 < n) {
                    bb.successors.push_back(
                        blockOfLeader.at(bb.last + 1));
                } else {
                    bb.successors.push_back(exitBlock);
                }
            }
        } else {
            if (bb.last + 1 < n)
                bb.successors.push_back(blockOfLeader.at(bb.last + 1));
            else
                bb.successors.push_back(exitBlock);
        }
        std::sort(bb.successors.begin(), bb.successors.end());
        bb.successors.erase(
            std::unique(bb.successors.begin(), bb.successors.end()),
            bb.successors.end());
    }
    return blocks;
}

void
resolveReconvergence(Program &prog)
{
    std::vector<BasicBlock> blocks = buildBasicBlocks(prog);
    const int nb = static_cast<int>(blocks.size());
    const int exitBlock = nb; // Virtual exit node.

    // Iterative post-dominator dataflow over the small CFG:
    // pdom(exit) = {exit}; pdom(b) = {b} U intersection of pdom(s).
    std::vector<std::set<int>> pdom(static_cast<std::size_t>(nb) + 1);
    std::set<int> all;
    for (int b = 0; b <= nb; ++b)
        all.insert(b);
    for (int b = 0; b < nb; ++b)
        pdom[static_cast<std::size_t>(b)] = all;
    pdom[static_cast<std::size_t>(exitBlock)] = {exitBlock};

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = nb - 1; b >= 0; --b) {
            const BasicBlock &bb = blocks[static_cast<std::size_t>(b)];
            std::set<int> meet;
            bool first = true;
            for (int succ : bb.successors) {
                const auto &sp = pdom[static_cast<std::size_t>(succ)];
                if (first) {
                    meet = sp;
                    first = false;
                } else {
                    std::set<int> tmp;
                    std::set_intersection(
                        meet.begin(), meet.end(), sp.begin(), sp.end(),
                        std::inserter(tmp, tmp.begin()));
                    meet = std::move(tmp);
                }
            }
            meet.insert(b);
            if (meet != pdom[static_cast<std::size_t>(b)]) {
                pdom[static_cast<std::size_t>(b)] = std::move(meet);
                changed = true;
            }
        }
    }

    // Immediate post-dominator: the strict post-dominator that is
    // post-dominated by every other strict post-dominator.
    auto ipdom = [&](int b) -> int {
        const auto &cand = pdom[static_cast<std::size_t>(b)];
        for (int d : cand) {
            if (d == b)
                continue;
            bool immediate = true;
            for (int e : cand) {
                if (e == b || e == d)
                    continue;
                // d must be "closest": every other strict pdom e of b
                // must also post-dominate d.
                const auto &dp = pdom[static_cast<std::size_t>(d)];
                if (!dp.count(e)) {
                    immediate = false;
                    break;
                }
            }
            if (immediate)
                return d;
        }
        return exitBlock;
    };

    for (int b = 0; b < nb; ++b) {
        const BasicBlock &bb = blocks[static_cast<std::size_t>(b)];
        Instruction &last = prog.code[bb.last];
        if (last.op != Opcode::BRA)
            continue;
        int rb = ipdom(b);
        last.reconvergePc =
            rb == exitBlock ? -1 : blocks[static_cast<std::size_t>(rb)]
                                       .first;
    }
}

} // namespace emerald::gpu::isa
