/**
 * @file
 * Hierarchical-Z (paper Fig. 3 stage J): a low-resolution on-chip
 * depth bound buffer at raster-tile granularity. A raster tile whose
 * minimum fragment depth exceeds the stored bound cannot contain any
 * visible fragment and is rejected before fragment shading. The
 * bound is tightened only by fully covered tiles from shaders that
 * cannot discard, keeping it conservative.
 */

#ifndef EMERALD_CORE_HIZ_HH
#define EMERALD_CORE_HIZ_HH

#include <vector>

#include "core/rasterizer.hh"
#include "sim/types.hh"

namespace emerald::core
{

class HiZBuffer
{
  public:
    HiZBuffer(unsigned fb_width, unsigned fb_height);

    /** Reset all bounds to the far plane. */
    void clear(float depth = 1.0f);

    /** True when the tile may contain visible fragments. */
    bool test(int tx, int ty, float tile_min_z) const;

    /**
     * Tighten the bound after a fully covered, non-discarding tile.
     * @param tile_max_z maximum depth the tile's fragments can leave
     *        in the depth buffer.
     */
    void update(int tx, int ty, float tile_max_z);

    float bound(int tx, int ty) const;

    unsigned tilesX() const { return _tilesX; }
    unsigned tilesY() const { return _tilesY; }

    /** Tiles rejected so far (stats). */
    std::uint64_t rejected() const { return _rejected; }
    void noteRejected() { ++_rejected; }

  private:
    std::size_t
    index(int tx, int ty) const
    {
        return static_cast<std::size_t>(ty) * _tilesX +
               static_cast<std::size_t>(tx);
    }

    unsigned _tilesX;
    unsigned _tilesY;
    std::vector<float> _maxZ;
    std::uint64_t _rejected = 0;
};

} // namespace emerald::core

#endif // EMERALD_CORE_HIZ_HH
