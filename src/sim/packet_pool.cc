#include "sim/packet_pool.hh"

namespace emerald
{

PacketPool::PacketPool(StatGroup &parent, check::CheckContext *ctx)
    : _group(parent, "pool"),
      statAllocs(_group, "allocs", "packets allocated"),
      statHeapAllocs(_group, "heap_allocs",
                     "allocations that hit the heap (pool cold)"),
      statFrees(_group, "frees", "packets returned to the pool"),
      statLiveHighWater(_group, "live_high_water",
                        "peak packets live at once"),
      _ctx(ctx)
{
}

PacketPool::~PacketPool()
{
    for (void *mem : _slabs)
        ::operator delete(mem); // NOLINT(cppcoreguidelines-owning-memory)
}

} // namespace emerald
