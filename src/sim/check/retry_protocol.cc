#include "sim/check/retry_protocol.hh"

#include "sim/event_queue.hh"
#include "sim/fault/domain.hh"
#include "sim/fault/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/packet.hh"

namespace emerald::check
{

fault::FaultInjector *
RetryProtocolChecker::injector() const
{
    return _domain ? _domain->injector() : nullptr;
}

void
RetryProtocolChecker::checkStaleRejects(Tick now) const
{
    for (const auto &[req, tick] : _pendingReject) {
        if (tick < now) {
            panic("retry protocol: offer from requestor %p was "
                  "rejected at tick %llu but never registered for a "
                  "retry — the requestor can never be woken",
                  static_cast<void *>(req), (unsigned long long)tick);
        }
    }
}

void
RetryProtocolChecker::onOfferStarted(RetryList *list)
{
    (void)list;
    checkStaleRejects(_eq.curTick());
}

void
RetryProtocolChecker::onOfferAccepted(RetryList *list)
{
    Tick now = _eq.curTick();
    checkStaleRejects(now);
    // A fault campaign deliberately starves waiters (stall windows,
    // rejection bursts), so the timing-based lost-wakeup heuristic
    // would report the injector's own faults; the ProgressWatchdog
    // owns hang detection under injection.
    if (injector())
        return;
    for (const auto &[req, info] : _waiting) {
        if (info.list != list)
            continue;
        if (now - info.since > _lostWakeTicks) {
            panic("retry protocol: lost wakeup on '%s': requestor %p "
                  "has been parked since tick %llu while the sink "
                  "kept accepting fresh offers (now tick %llu, "
                  "threshold %llu ticks)",
                  list->owner().c_str(), static_cast<void *>(req),
                  (unsigned long long)info.since,
                  (unsigned long long)now,
                  (unsigned long long)_lostWakeTicks);
        }
    }
}

void
RetryProtocolChecker::onOfferRejected(RetryList *list, MemRequestor *req)
{
    Tick now = _eq.curTick();
    auto it = _pendingReject.find(req);
    if (it != _pendingReject.end()) {
        panic("retry protocol: requestor %p was rejected by '%s' at "
              "tick %llu with an earlier rejection (tick %llu) still "
              "unregistered",
              static_cast<void *>(req), list->owner().c_str(),
              (unsigned long long)now, (unsigned long long)it->second);
    }
    _pendingReject.emplace(req, now);
}

void
RetryProtocolChecker::onRegistered(RetryList *list, MemRequestor *req,
                                   bool deduped)
{
    _pendingReject.erase(req);
    auto it = _waiting.find(req);
    bool tracked_here = it != _waiting.end() && it->second.list == list;

    if (deduped) {
        // Benign: the requestor abandoned its parked packet and
        // re-offered while still queued (display frame restart). Its
        // FIFO position — and therefore its original `since` — stand.
        ++_dedups;
        return;
    }
    if (tracked_here) {
        panic("retry protocol: duplicate registration of requestor %p "
              "on '%s' (already queued since tick %llu) — "
              "RetryList::add failed to dedup; the requestor would "
              "be woken twice",
              static_cast<void *>(req), list->owner().c_str(),
              (unsigned long long)it->second.since);
    }
    // A fresh registration supersedes any stale one with another sink.
    _waiting[req] = WaitInfo{list, _eq.curTick()};
}

void
RetryProtocolChecker::onWoken(RetryList *list, MemRequestor *req)
{
    auto it = _waiting.find(req);
    if (it != _waiting.end() && it->second.list == list)
        _waiting.erase(it);

    Tick now = _eq.curTick();
    if (list == _lastWakeList && req == _lastWakeReq &&
        now == _lastWakeTick) {
        if (++_wakeRepeat > wakeLoopLimit) {
            panic("retry protocol: wake loop on '%s': requestor %p "
                  "woken %u times at tick %llu without the retry "
                  "list shrinking — use wakeOneRetryChecked(); see "
                  "docs/memory_protocol.md",
                  list->owner().c_str(), static_cast<void *>(req),
                  _wakeRepeat, (unsigned long long)now);
        }
    } else {
        _lastWakeList = list;
        _lastWakeReq = req;
        _lastWakeTick = now;
        _wakeRepeat = 1;
    }
}

void
RetryProtocolChecker::verifyQuiescent() const
{
    for (const auto &[req, tick] : _pendingReject) {
        panic("retry protocol: offer from requestor %p rejected at "
              "tick %llu was never registered for a retry",
              static_cast<void *>(req), (unsigned long long)tick);
    }
    auto *inj = injector();
    for (const auto &[req, info] : _waiting) {
        // Victims of deliberate faults (wake-suppress, injected
        // rejections) are expected to be parked at teardown.
        if (inj && inj->faultedRequestor(req))
            continue;
        panic("retry protocol: lost wakeup: requestor %p is still "
              "parked on '%s' (since tick %llu) with nothing left "
              "that could wake it",
              static_cast<void *>(req), info.list->owner().c_str(),
              (unsigned long long)info.since);
    }
}

} // namespace emerald::check
