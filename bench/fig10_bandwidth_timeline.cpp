/**
 * @file
 * Paper Fig. 10: M3 under HMC — DRAM bandwidth per source over time.
 * Expected shape: CPU traffic peaks before each GPU frame ( 1 ),
 * drops while the GPU renders ( 2 ), and the pattern repeats at the
 * frame rate — the imbalance that leaves HMC's CPU channel idle
 * during rendering.
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig10_bandwidth_timeline");
    const Config &cfg = harness.cfg;
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 10: M3-HMC DRAM bandwidth over time ===\n");
    soc::SocParams p = caseStudy1Params(
        scenes::WorkloadId::M3_Mask, soc::MemConfig::HMC, false);
    p.frames = static_cast<unsigned>(cfg.getU64("frames", 4));
    soc::SocTop soc(p, harness.builder());
    soc.run();

    Tick bucket = p.statsBucket;
    // Merge the per-channel series.
    std::size_t buckets = 0;
    for (unsigned ch = 0; ch < soc.memory().numChannels(); ++ch) {
        buckets = std::max(buckets,
                           soc.memory()
                               .channel(ch)
                               .statBwCpu.buckets()
                               .size());
        buckets = std::max(buckets,
                           soc.memory()
                               .channel(ch)
                               .statBwGpu.buckets()
                               .size());
    }

    std::printf("%10s %12s %12s %12s   (GB/s per %.0f us bucket)\n",
                "t(ms)", "cpu", "gpu", "display",
                static_cast<double>(bucket) / 1e6);
    double scale = 1e9 * secondsFromTicks(bucket); // bytes -> GB/s.
    for (std::size_t i = 0; i < buckets; ++i) {
        double cpu = 0, gpu = 0, disp = 0;
        for (unsigned ch = 0; ch < soc.memory().numChannels(); ++ch) {
            const auto &mc = soc.memory().channel(ch);
            if (i < mc.statBwCpu.buckets().size())
                cpu += mc.statBwCpu.buckets()[i];
            if (i < mc.statBwGpu.buckets().size())
                gpu += mc.statBwGpu.buckets()[i];
            if (i < mc.statBwDisplay.buckets().size())
                disp += mc.statBwDisplay.buckets()[i];
        }
        std::printf("%10.2f %12.3f %12.3f %12.3f\n",
                    msFromTicks(Tick(i) * bucket), cpu / scale,
                    gpu / scale, disp / scale);
    }
    results.record("buckets", static_cast<double>(buckets));
    results.record("bucket_us", static_cast<double>(bucket) / 1e6);
    results.record("total_bytes",
                   static_cast<double>(soc.memory().totalBytes()));
    results.record("mean_gpu_frame_ms", soc.meanGpuFrameMs());
    results.addSimStats(soc.sim());

    std::printf("\npaper shape: CPU bursts between GPU frames; GPU "
                "dominates during rendering\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig10_bandwidth_timeline",
    .desc = "Fig. 10: M3-HMC DRAM bandwidth per source over time",
    .axes = {"frames"},
    .expectedShape = "CPU bursts between GPU frames; GPU dominates during rendering",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
