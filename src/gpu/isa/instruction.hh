/**
 * @file
 * The Emerald shader ISA.
 *
 * A small PTX-like, scalar, register ISA executed by the SIMT cores.
 * It is shared by GPGPU kernels and graphics shaders (the paper's
 * unified shader model); graphics adds attribute registers, texture
 * sampling, and the in-shader raster operation instructions
 * (ZTEST / BLEND / STFB / DISCARD) that implement the paper's
 * programmable ROP stages (Fig. 3, L-N).
 *
 * The paper's TGSItoPTX tool compiles Mesa TGSI into extended PTX;
 * here the equivalent ISA is defined directly and shaders are written
 * in its assembly (see scenes/shaders.cc).
 */

#ifndef EMERALD_GPU_ISA_INSTRUCTION_HH
#define EMERALD_GPU_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald::gpu::isa
{

constexpr unsigned warpSize = 32;
constexpr unsigned maxRegs = 64;
constexpr unsigned maxPreds = 8;
constexpr unsigned maxAttrs = 16;
constexpr unsigned maxOutputs = 16;

enum class Opcode : std::uint8_t
{
    NOP,
    // ALU
    MOV, ADD, SUB, MUL, DIV, MAD, MIN, MAX, ABS, NEG, FLR, FRC,
    AND, OR, XOR, NOT, SHL, SHR,
    CVT, SETP, SELP,
    // SFU (special function unit)
    RCP, RSQ, SQRT, EX2, LG2, SIN, COS, POW,
    // Memory
    LDG, STG, LDS, STS,
    // Texture
    TEX,
    // Graphics
    STO, ZTEST, BLEND, STFB, DISCARD,
    // Control
    BRA, BAR, EXIT,
};

enum class DataType : std::uint8_t { F32, S32, U32 };

enum class CmpOp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/** Thread-private special input registers. */
enum class SpecialReg : std::uint8_t
{
    FragX,   ///< %x fragment screen x
    FragY,   ///< %y fragment screen y
    FragZ,   ///< %z interpolated depth in [0,1]
    VertId,  ///< %vid vertex index within the draw
    TidX,    ///< %tid.x
    TidY,    ///< %tid.y
    CtaIdX,  ///< %ctaid.x
    CtaIdY,  ///< %ctaid.y
    NTidX,   ///< %ntid.x
    NTidY,   ///< %ntid.y
};

/** One instruction operand. */
struct Operand
{
    enum class Kind : std::uint8_t
    {
        None,
        Reg,     ///< rN, 32-bit general register
        Pred,    ///< pN predicate register
        Imm,     ///< literal (float or integer by DataType)
        Const,   ///< c[N] constant bank entry
        Attr,    ///< a[N] input attribute
        Out,     ///< o[N] output attribute (STO destination)
        Special, ///< %x, %tid.x, ...
    };

    Kind kind = Kind::None;
    int index = 0;
    union
    {
        float f;
        std::int32_t i;
        std::uint32_t u;
    } imm = {0.0f};
    SpecialReg special = SpecialReg::FragX;
};

/** Unit that executes an instruction, for issue/latency modelling. */
enum class LatencyClass : std::uint8_t
{
    Alu,
    Sfu,
    MemGlobal,
    MemShared,
    Tex,
    Rop,     ///< ZTEST / BLEND / STFB memory ops
    Control,
};

/** A fully decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    DataType type = DataType::F32;
    /** Source type for CVT. */
    DataType srcType = DataType::F32;
    CmpOp cmp = CmpOp::EQ;

    /** Guard predicate index, -1 when unguarded. */
    int guard = -1;
    bool guardNegate = false;

    Operand dst;
    Operand src[3];

    /** Branch target pc (BRA). */
    int target = -1;
    /** Reconvergence pc, filled by post-dominator analysis (BRA). */
    int reconvergePc = -1;

    /** Texture unit for TEX. */
    int texUnit = 0;
    /** Address offset for LDG/STG/LDS/STS. */
    std::int32_t memOffset = 0;

    LatencyClass latencyClass() const;
    bool isBranch() const { return op == Opcode::BRA; }
    bool isMemory() const;
    bool writesRegister() const;
    std::string toString() const;
};

const char *opcodeName(Opcode op);

/** An assembled program. */
struct Program
{
    std::string name;
    std::vector<Instruction> code;

    /** Highest register index used + 1. */
    unsigned numRegs = 0;
    unsigned numPreds = 0;

    /** True when any path can DISCARD (disables early-Z). */
    bool usesDiscard = false;
    /** True when the shader contains an explicit ZTEST. */
    bool usesZTest = false;

    std::size_t size() const { return code.size(); }
};

} // namespace emerald::gpu::isa

#endif // EMERALD_GPU_ISA_INSTRUCTION_HH
