/**
 * @file
 * The shared bench front end: one emerald_bench binary hosting every
 * registered scenario.
 *
 *   emerald_bench --list               name<TAB>kind<TAB>description
 *   emerald_bench --run=<name> [...]   run one scenario; remaining
 *                                      flags go to the scenario
 *
 * With --supervise the scenario runs in a forked child under the
 * crash-and-hang-resilient run supervisor (docs/resilience.md):
 * failures are classified, retried with backoff, and — when the
 * scenario also rotates auto-checkpoints via --checkpoint-every —
 * resumed from the newest integrity-passing checkpoint.
 *
 *   --supervise                   enable supervision
 *   --supervise-dir=<dir>         logs/marker/triage (default: supervise)
 *   --supervise-retries=<n>       retries after the first attempt (3)
 *   --supervise-backoff-ms=<ms>   first retry backoff, doubles (200)
 *   --supervise-kill-after-ms=<ms> test hook: SIGKILL attempt 0 (off)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "registry.hh"
#include "sim/supervise/supervisor.hh"

namespace
{

/**
 * Peel "--key=value" or "--key value" off argv; returns true and
 * stores the value when present (last occurrence wins).
 */
bool
argValue(int argc, char **argv, const std::string &key,
         std::string *out)
{
    bool found = false;
    std::string prefix = "--" + key + "=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0) {
            *out = arg.substr(prefix.size());
            found = true;
        } else if (arg == "--" + key && i + 1 < argc &&
                   argv[i + 1][0] != '-') {
            *out = argv[++i];
            found = true;
        }
    }
    return found;
}

bool
argFlag(int argc, char **argv, const std::string &key)
{
    std::string value;
    if (!argValue(argc, argv, key, &value)) {
        // Bare "--key" (boolean switch form).
        for (int i = 1; i < argc; ++i)
            if (std::string(argv[i]) == "--" + key)
                return true;
        return false;
    }
    return value == "1" || value == "true" || value == "yes" ||
           value == "on";
}

unsigned
argUnsigned(int argc, char **argv, const std::string &key,
            unsigned dflt)
{
    std::string value;
    if (!argValue(argc, argv, key, &value) || value.empty())
        return dflt;
    return static_cast<unsigned>(std::stoul(value));
}

int
runSupervised(const emerald::bench::Scenario &scenario, int argc,
              char **argv)
{
    using namespace emerald::supervise;

    SupervisorOptions opts;
    std::string dir = "supervise";
    argValue(argc, argv, "supervise-dir", &dir);
    opts.runDir = dir;
    opts.maxRetries = argUnsigned(argc, argv, "supervise-retries", 3);
    opts.backoffBaseMs =
        argUnsigned(argc, argv, "supervise-backoff-ms", 200);
    opts.killAfterMs =
        argUnsigned(argc, argv, "supervise-kill-after-ms", 0);

    // Where the scenario rotates auto-checkpoints: the builder
    // defaults --checkpoint-dir to "ckpt" whenever --checkpoint-every
    // is given, so mirror that here.
    std::string ckptDir;
    if (!argValue(argc, argv, "checkpoint-dir", &ckptDir)) {
        std::string every;
        if (argValue(argc, argv, "checkpoint-every", &every))
            ckptDir = "ckpt";
    }
    opts.ckptDir = ckptDir;

    SupervisorResult result = superviseRun(
        opts, [&](const ChildSpec &spec) {
            // Re-enter the scenario with the supervisor's extra
            // flags appended; Config's last-wins parse means they
            // override anything the caller passed.
            std::vector<std::string> args(argv, argv + argc);
            args.push_back("--hang-report-path=" +
                           spec.hangReportPath);
            if (spec.attempt > 0 && !spec.restoreDir.empty())
                args.push_back("--restore=" + ckptDir);
            std::vector<char *> cargv;
            cargv.reserve(args.size());
            for (std::string &arg : args)
                cargv.push_back(arg.data());
            return scenario.run(static_cast<int>(cargv.size()),
                                cargv.data());
        });

    if (result.succeeded)
        return 0;
    return result.finalExitCode > 0 ? result.finalExitCode : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emerald::bench;

    // Peel --list/--run here; the scenario re-parses the full argv
    // (Config knows both keys), so nothing needs to be stripped.
    bool list = false;
    std::string run_name;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg.rfind("--run=", 0) == 0) {
            run_name = arg.substr(6);
        } else if (arg == "--run" && i + 1 < argc &&
                   argv[i + 1][0] != '-') {
            run_name = argv[++i];
        }
    }

    const ScenarioRegistry &registry = ScenarioRegistry::instance();
    if (list) {
        for (const Scenario &s : registry.scenarios()) {
            std::printf("%s\t%s\t%s\n", s.name.c_str(),
                        s.kind == ScenarioKind::Figure ? "figure"
                                                       : "aux",
                        s.desc.c_str());
        }
        return 0;
    }

    if (run_name.empty()) {
        std::fprintf(stderr,
                     "usage: emerald_bench --run=<name> [--key=value "
                     "...] | --list\nscenarios:\n");
        for (const Scenario &s : registry.scenarios())
            std::fprintf(stderr, "  %s\n", s.name.c_str());
        return 2;
    }

    const Scenario *scenario = registry.find(run_name);
    if (!scenario) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (emerald_bench --list)\n",
                     run_name.c_str());
        return 2;
    }

    if (argFlag(argc, argv, "supervise"))
        return runSupervised(*scenario, argc, argv);
    return scenario->run(argc, argv);
}
