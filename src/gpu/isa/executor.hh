/**
 * @file
 * Functional execution of Emerald ISA instructions.
 *
 * The executor operates on whole warps: one call executes one
 * instruction for every active thread, updating thread contexts and
 * reporting the memory accesses the timing model must charge.
 * Function and timing are decoupled (see sim/packet.hh): functional
 * effects happen here at issue time; the SIMT core turns the reported
 * accesses into coalesced timing traffic.
 */

#ifndef EMERALD_GPU_ISA_EXECUTOR_HH
#define EMERALD_GPU_ISA_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "gpu/isa/instruction.hh"
#include "mem/functional_memory.hh"
#include "sim/packet.hh"

namespace emerald::gpu::isa
{

/** Per-thread architectural state. */
struct ThreadContext
{
    std::uint32_t r[maxRegs] = {};
    bool p[maxPreds] = {};
    float a[maxAttrs] = {};
    float o[maxOutputs] = {};

    // Fragment inputs.
    int fragX = 0;
    int fragY = 0;
    float fragZ = 0.0f;
    // Vertex input.
    std::uint32_t vertexId = 0;
    // Compute inputs.
    std::uint32_t tidX = 0, tidY = 0;
    std::uint32_t ctaIdX = 0, ctaIdY = 0;
    std::uint32_t ntidX = 1, ntidY = 1;

    /** Cleared by EXIT, DISCARD, or a failed ZTEST. */
    bool alive = true;
    /** Set when the fragment was killed (discard or depth fail). */
    bool killed = false;
};

/** Texture sampling callback; implemented by core::TextureSet. */
class TextureSamplerIface
{
  public:
    virtual ~TextureSamplerIface() = default;

    /**
     * Bilinearly sample texture @p unit at (u, v) into @p rgba and
     * append the texel addresses touched to @p texel_addrs.
     */
    virtual void sample(int unit, float u, float v, float rgba[4],
                        std::vector<Addr> &texel_addrs) = 0;
};

/** Raster-operation callbacks; implemented by core::Framebuffer. */
class RopIface
{
  public:
    virtual ~RopIface() = default;

    /**
     * Depth test (and write on pass) at pixel (x, y).
     * @param addr receives the depth buffer address for timing.
     * @return true when the fragment survives.
     */
    virtual bool depthTest(int x, int y, float z, Addr &addr) = 0;

    /** Read-modify-write alpha blend at (x, y). */
    virtual void blendPixel(int x, int y, const float rgba[4],
                            Addr &addr) = 0;

    /** Opaque color write at (x, y). */
    virtual void storePixel(int x, int y, const float rgba[4],
                            Addr &addr) = 0;
};

/** Execution environment shared by the threads of one warp. */
struct ExecEnv
{
    mem::FunctionalMemory *global = nullptr;
    TextureSamplerIface *textures = nullptr;
    RopIface *rop = nullptr;
    const float *constants = nullptr;
    unsigned numConstants = 0;
    /** Per-CTA shared memory backing store (compute only). */
    std::uint8_t *sharedMem = nullptr;
    unsigned sharedSize = 0;
};

/** One thread's memory access, pre-coalescing. */
struct ThreadMemAccess
{
    Addr addr = 0;
    std::uint16_t size = 0;
    bool write = false;
};

/** Side effects of executing one instruction across a warp. */
struct StepEffects
{
    /** Memory accesses to charge, tagged with their stream kind. */
    std::vector<ThreadMemAccess> accesses;
    AccessKind kind = AccessKind::GlobalData;
    /** Lanes whose branch was taken (BRA only). */
    std::uint32_t takenMask = 0;
    /** Lanes that passed their guard and executed. */
    std::uint32_t execMask = 0;

    void
    clear()
    {
        accesses.clear();
        kind = AccessKind::GlobalData;
        takenMask = 0;
        execMask = 0;
    }
};

/**
 * Execute @p instr for all lanes set in @p active_mask.
 * Branch direction is reported through @p effects; pc management is
 * the caller's job (see Warp / SimtStack).
 */
void executeWarpInstruction(const Instruction &instr,
                            std::uint32_t active_mask,
                            ThreadContext *threads, ExecEnv &env,
                            StepEffects &effects);

} // namespace emerald::gpu::isa

#endif // EMERALD_GPU_ISA_EXECUTOR_HH
