#include <gtest/gtest.h>

#include "core/shader_builder.hh"
#include "scenes/procedural.hh"
#include "scenes/shaders.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

core::FrameStats
render(soc::StandaloneGpu &rig, scenes::SceneRenderer &scene,
       unsigned frame)
{
    bool done = false;
    core::FrameStats stats;
    scene.renderFrame(frame, [&](const core::FrameStats &s) {
        stats = s;
        done = true;
    });
    EXPECT_TRUE(rig.runUntil([&] { return done; }));
    return stats;
}

/** Count pixels that differ from the clear color. */
unsigned
drawnPixels(core::Framebuffer &fb)
{
    unsigned count = 0;
    for (unsigned y = 0; y < fb.height(); ++y)
        for (unsigned x = 0; x < fb.width(); ++x)
            if (fb.pixel(static_cast<int>(x), static_cast<int>(y)) !=
                0xff000000u)
                ++count;
    return count;
}

} // namespace

TEST(PipelineCorrectness, ImageIdenticalAcrossWtSizes)
{
    // WT granularity is a performance knob; the image must be
    // bit-identical regardless (depth test makes opaque rendering
    // order-independent).
    std::uint64_t reference = 0;
    for (unsigned wt : {1u, 3u, 10u}) {
        soc::StandaloneGpu rig(128, 96);
        scenes::SceneRenderer scene(
            rig.pipeline(),
            scenes::makeWorkload(scenes::WorkloadId::W4_Suzanne),
            rig.functionalMemory());
        rig.pipeline().setWtSize(wt);
        render(rig, scene, 0);
        std::uint64_t hash = scene.framebuffer().colorHash();
        if (wt == 1)
            reference = hash;
        else
            EXPECT_EQ(hash, reference) << "wt=" << wt;
    }
}

TEST(PipelineCorrectness, ImageIdenticalWithHiZDisabled)
{
    std::uint64_t hashes[2];
    for (int enabled = 0; enabled < 2; ++enabled) {
        Simulation *sim_keep = nullptr;
        (void)sim_keep;
        core::GfxParams gfx;
        gfx.hizEnabled = enabled != 0;
        soc::StandaloneGpu rig(128, 96);
        // Rebuild the pipeline with the chosen Hi-Z setting.
        core::GraphicsPipeline pipe(rig.sim(), "gfx2", rig.gpu(), 128,
                                    96, gfx);
        scenes::SceneRenderer scene(
            pipe, scenes::makeWorkload(scenes::WorkloadId::W6_Teapot),
            rig.functionalMemory());
        bool done = false;
        scene.renderFrame(0,
                          [&](const core::FrameStats &) { done = true; });
        ASSERT_TRUE(rig.runUntil([&] { return done; }));
        hashes[enabled] = scene.framebuffer().colorHash();
    }
    EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(PipelineCorrectness, NearTriangleOccludesFar)
{
    // Two overlapping full-screen-ish triangles: the nearer one must
    // win everywhere they overlap, regardless of submission order.
    soc::StandaloneGpu rig(64, 64);
    mem::FunctionalMemory &fmem = rig.functionalMemory();
    core::ShaderBuilder builder;

    const auto *vs = builder.buildVertex(
        "vs", scenes::vertexShaderSource());
    core::RenderState state;
    state.cullBackface = false;
    const auto *fs = builder.buildFragment(
        "fs", scenes::fragmentFlatSource(), state);

    // Far triangle (z=0.8): lit color channel a[0..2] encodes id via
    // normals -> just use two draws and distinct light constants.
    auto make_draw = [&](float z, float brightness) {
        // Triangle covering the lower-left half of clip space.
        float verts[3][8] = {
            {-1, -1, z, 0, 0, 1, 0, 0},
            {3, -1, z, 0, 0, 1, 1, 0},
            {-1, 3, z, 0, 0, 1, 0, 1},
        };
        Addr vb = fmem.allocate(sizeof(verts), 128);
        fmem.write(vb, verts, sizeof(verts));
        core::DrawCall draw;
        draw.vertexProgram = vs;
        draw.fragmentProgram = fs;
        draw.vertexCount = 3;
        draw.vertexBufferAddr = vb;
        draw.floatsPerVertex = 8;
        draw.numVaryings = scenes::standardVaryings;
        draw.memory = &fmem;
        draw.state = state;
        draw.constants.resize(24, 0.0f);
        // Identity view-projection.
        for (int i = 0; i < 4; ++i)
            draw.constants[static_cast<std::size_t>(i) * 4 +
                           static_cast<std::size_t>(i)] = 1.0f;
        // Light along +z so n.l = brightness knob via ambient.
        draw.constants[19] = brightness; // ambient only.
        return draw;
    };

    core::Framebuffer fb(64, 64);
    rig.pipeline().beginFrame(&fb);
    rig.pipeline().submitDraw(make_draw(0.5f, 0.9f));  // Near, bright.
    rig.pipeline().submitDraw(make_draw(0.9f, 0.2f));  // Far, dark.
    bool done = false;
    rig.pipeline().endFrame(
        [&](const core::FrameStats &) { done = true; });
    ASSERT_TRUE(rig.runUntil([&] { return done; }));

    // Center pixel: near triangle's bright color must survive even
    // though the far one was drawn second.
    std::uint32_t px = fb.pixel(10, 10);
    unsigned red = px & 0xff;
    EXPECT_NEAR(red, 230, 5); // 0.9 ~ 230.
    EXPECT_LT(fb.depthAt(10, 10), 0.8f);
}

TEST(PipelineCorrectness, TranslucencyBlendsOverOpaque)
{
    soc::StandaloneGpu rig(128, 96);
    scenes::SceneRenderer scene(
        rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W5_SuzanneAlpha),
        rig.functionalMemory());
    core::FrameStats stats = render(rig, scene, 0);
    EXPECT_GT(stats.fragments, 1000u);
    EXPECT_GT(drawnPixels(scene.framebuffer()), 500u);
}

TEST(PipelineCorrectness, GoldenHashesStable)
{
    // Golden image hashes: any change to shading, rasterization,
    // clipping or ROP ordering shows up here. Regenerate consciously
    // when behaviour is *intentionally* changed.
    struct Golden
    {
        scenes::WorkloadId id;
        const char *name;
    };
    const Golden goldens[] = {
        {scenes::WorkloadId::W3_Cube, "cube"},
        {scenes::WorkloadId::W6_Teapot, "teapot"},
    };
    for (const Golden &golden : goldens) {
        soc::StandaloneGpu rig(128, 96);
        scenes::SceneRenderer scene(rig.pipeline(),
                                    scenes::makeWorkload(golden.id),
                                    rig.functionalMemory());
        render(rig, scene, 0);
        std::uint64_t h1 = scene.framebuffer().colorHash();
        // Deterministic: a second rig renders the same image.
        soc::StandaloneGpu rig2(128, 96);
        scenes::SceneRenderer scene2(rig2.pipeline(),
                                     scenes::makeWorkload(golden.id),
                                     rig2.functionalMemory());
        render(rig2, scene2, 0);
        EXPECT_EQ(scene2.framebuffer().colorHash(), h1) << golden.name;
        EXPECT_GT(drawnPixels(scene.framebuffer()), 300u)
            << golden.name;
    }
}

TEST(PipelineCorrectness, TemporalCoherenceSmallDeltas)
{
    // Consecutive frames differ only slightly (the property DFSL
    // exploits): fragment counts move by far less than the total.
    soc::StandaloneGpu rig(128, 96);
    scenes::SceneRenderer scene(
        rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W2_Spot),
        rig.functionalMemory());
    core::FrameStats f0 = render(rig, scene, 0);
    core::FrameStats f1 = render(rig, scene, 1);
    double delta = std::abs(static_cast<double>(f1.fragments) -
                            static_cast<double>(f0.fragments));
    EXPECT_LT(delta, 0.1 * static_cast<double>(f0.fragments));
}

TEST(PipelineCorrectness, MultiDrawFramesDrain)
{
    // Several draws in one frame, sequential draining.
    soc::StandaloneGpu rig(96, 96);
    mem::FunctionalMemory &fmem = rig.functionalMemory();
    scenes::Workload w = scenes::makeWorkload(
        scenes::WorkloadId::W3_Cube);
    scenes::SceneRenderer scene(rig.pipeline(), std::move(w), fmem);

    // Render three animated frames back to back.
    for (unsigned f = 0; f < 3; ++f) {
        core::FrameStats stats = render(rig, scene, f);
        EXPECT_GT(stats.fragments, 100u) << "frame " << f;
    }
}

TEST(PipelineCorrectness, EmptyFrameCompletes)
{
    soc::StandaloneGpu rig(64, 64);
    core::Framebuffer fb(64, 64);
    rig.pipeline().beginFrame(&fb);
    bool done = false;
    rig.pipeline().endFrame(
        [&](const core::FrameStats &s) {
            done = true;
            EXPECT_EQ(s.fragments, 0u);
        });
    EXPECT_TRUE(rig.runUntil([&] { return done; }));
}

TEST(PipelineCorrectness, HiZCullsOccludedWork)
{
    // Draw a big near quad first, then geometry behind it: Hi-Z must
    // reject a meaningful share of the occluded tiles.
    soc::StandaloneGpu rig(128, 96);
    mem::FunctionalMemory &fmem = rig.functionalMemory();
    core::ShaderBuilder builder;
    const auto *vs = builder.buildVertex(
        "vs", scenes::vertexShaderSource());
    core::RenderState state;
    state.cullBackface = false;
    const auto *fs = builder.buildFragment(
        "fs", scenes::fragmentFlatSource(), state);

    auto fullscreen = [&](float z) {
        float verts[6][8] = {
            {-1, -1, z, 0, 0, 1, 0, 0}, {1, -1, z, 0, 0, 1, 1, 0},
            {1, 1, z, 0, 0, 1, 1, 1},   {-1, -1, z, 0, 0, 1, 0, 0},
            {1, 1, z, 0, 0, 1, 1, 1},   {-1, 1, z, 0, 0, 1, 0, 1},
        };
        Addr vb = fmem.allocate(sizeof(verts), 128);
        fmem.write(vb, verts, sizeof(verts));
        core::DrawCall draw;
        draw.vertexProgram = vs;
        draw.fragmentProgram = fs;
        draw.vertexCount = 6;
        draw.vertexBufferAddr = vb;
        draw.floatsPerVertex = 8;
        draw.numVaryings = scenes::standardVaryings;
        draw.memory = &fmem;
        draw.state = state;
        draw.constants.resize(24, 0.0f);
        for (int i = 0; i < 4; ++i)
            draw.constants[static_cast<std::size_t>(i) * 4 +
                           static_cast<std::size_t>(i)] = 1.0f;
        draw.constants[19] = 0.5f;
        return draw;
    };

    core::Framebuffer fb(128, 96);
    rig.pipeline().beginFrame(&fb);
    rig.pipeline().submitDraw(fullscreen(0.1f)); // Near occluder.
    rig.pipeline().submitDraw(fullscreen(0.9f)); // Fully occluded.
    bool done = false;
    core::FrameStats stats;
    rig.pipeline().endFrame([&](const core::FrameStats &s) {
        stats = s;
        done = true;
    });
    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    // The second draw's tiles are all occluded; Hi-Z kills them
    // before fragment shading.
    EXPECT_GT(stats.hizRejects, 300u);
    // Fragments shaded ~ one full screen, not two.
    EXPECT_LT(stats.fragments, 128u * 96u * 3 / 2);
}

TEST(PipelineCorrectness, OutOfOrderPrimitivesImageMatches)
{
    // Extension (paper Section 3.3.6): OOO primitive release is safe
    // for depth-tested, non-blended draws - the image must match the
    // in-order pipeline exactly.
    std::uint64_t hashes[2];
    for (int ooo = 0; ooo < 2; ++ooo) {
        core::GfxParams gfx;
        gfx.oooPrimitives = ooo != 0;
        soc::StandaloneGpu rig(128, 96);
        core::GraphicsPipeline pipe(rig.sim(), "gfx_ooo", rig.gpu(),
                                    128, 96, gfx);
        scenes::SceneRenderer scene(
            pipe, scenes::makeWorkload(scenes::WorkloadId::W4_Suzanne),
            rig.functionalMemory());
        bool done = false;
        scene.renderFrame(0,
                          [&](const core::FrameStats &) { done = true; });
        ASSERT_TRUE(rig.runUntil([&] { return done; }));
        hashes[ooo] = scene.framebuffer().colorHash();
    }
    EXPECT_EQ(hashes[0], hashes[1]);
}
