/**
 * @file
 * One DRAM channel: request queue, bank state machines, data bus, and
 * a pluggable scheduling policy.
 */

#ifndef EMERALD_MEM_DRAM_CHANNEL_HH
#define EMERALD_MEM_DRAM_CHANNEL_HH

#include <cstddef>
#include <map>
#include <vector>

#include "mem/dram.hh"
#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::mem
{

class DramChannel;

/**
 * Scheduling policy interface. The controller calls pick() whenever
 * it is ready to issue the next request; the policy returns an index
 * into the queue.
 */
class DramScheduler
{
  public:
    virtual ~DramScheduler() = default;

    /** Queue entry view exposed to policies. */
    struct QueueEntry
    {
        MemPacket *pkt;
        DecodedAddr coord;
        Tick enqueued;
    };

    /**
     * Choose the next request to service.
     * @return index into @p queue.
     * @pre queue is non-empty.
     */
    virtual std::size_t pick(const DramChannel &channel,
                             const std::vector<QueueEntry> &queue,
                             Tick now) = 0;

    /** Accounting hook invoked after each serviced request. */
    virtual void serviced(const MemPacket &pkt, Tick now);

    virtual const char *policyName() const = 0;
};

/**
 * An event-driven DRAM channel controller.
 *
 * Requests are enqueued with their pre-decoded coordinates (the
 * memory system owns address mapping so HMC can use per-channel
 * maps). The controller issues one request at a time, modelling
 * activate/precharge/CAS latency and data bus occupancy, and collects
 * the row-buffer and per-source bandwidth statistics used by the
 * paper's Figs. 10, 11 and 14.
 */
class DramChannel : public SimObject
{
  public:
    DramChannel(Simulation &sim, const std::string &name,
                const DramGeometry &geom, const DramTiming &timing,
                DramScheduler &scheduler, unsigned queue_capacity,
                Tick stats_bucket);

    /**
     * Offer a request. @return false when the queue is full; @p req
     * (when given) is then queued and woken via retryRequest() as the
     * channel drains, FIFO among waiters.
     */
    bool enqueue(MemPacket *pkt, const DecodedAddr &coord,
                 MemRequestor *req = nullptr);

    /** True when a new request would be rejected. */
    bool full() const { return _queue.size() >= _queueCapacity; }

    std::size_t queueDepth() const { return _queue.size(); }

    /** Open row of a flat bank, for scheduler row-hit tests. */
    bool bankOpen(unsigned flat_bank) const;
    std::uint64_t bankOpenRow(unsigned flat_bank) const;

    const DramGeometry &geometry() const { return _geom; }
    const DramTiming &timing() const { return _timing; }

    /** @{ Statistics, public so harnesses can read them directly. */
    Scalar statRowHits;
    Scalar statRowClosedMisses;
    Scalar statRowConflicts;
    Scalar statBytesRead;
    Scalar statBytesWritten;
    Scalar statRequests;
    Distribution statBytesPerActivation;
    Distribution statReadLatencyCpu;
    Distribution statReadLatencyGpu;
    Distribution statReadLatencyDisplay;
    Distribution statReadLatencyNpu;
    TimeSeries statBwCpu;
    TimeSeries statBwGpu;
    TimeSeries statBwDisplay;
    TimeSeries statBwNpu;
    /** @} */

    /** Row-buffer hit rate over the channel's lifetime. */
    double rowHitRate() const;

    void hangDiagnostics(std::ostream &os) const override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

  private:
    void tryIssue();
    void completeHead();
    void scheduleIssue(Tick when);
    void scheduleCompletion();

    /** Compute service timing and update bank/bus state. */
    Tick service(const DramScheduler::QueueEntry &entry, Tick now,
                 RowBufferOutcome &outcome);

    DramGeometry _geom;
    DramTiming _timing;
    DramScheduler &_scheduler;
    std::size_t _queueCapacity;

    std::vector<DramScheduler::QueueEntry> _queue;
    std::vector<BankState> _banks;
    /** Requestors rejected while the queue was full. */
    RetryList _retries;
    Tick _busFreeTick = 0;

    /** Issued requests waiting for their completion tick. */
    std::multimap<Tick, MemPacket *> _inflight;

    EventFunction _issueEvent;
    EventFunction _completeEvent;
};

} // namespace emerald::mem

#endif // EMERALD_MEM_DRAM_CHANNEL_HH
