#include "sim/serialize/serialize.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace emerald
{

namespace
{

const char *
recordTypeName(RecordType t)
{
    switch (t) {
    case RecordType::U64: return "u64";
    case RecordType::I64: return "i64";
    case RecordType::F64: return "f64";
    case RecordType::Bool: return "bool";
    case RecordType::Str: return "str";
    case RecordType::Blob: return "blob";
    case RecordType::U64Vec: return "u64vec";
    case RecordType::F64Vec: return "f64vec";
    }
    return "?";
}

void
appendLE(std::string &buf, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
readLE(const char *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

/**
 * Minimal JSON scanner for the manifest we write ourselves: objects,
 * arrays, strings and unsigned integers. All numeric manifest fields
 * are written as JSON strings (u64 values do not survive a double
 * round-trip), so the number production only needs to tolerate, not
 * preserve, foreign numbers.
 */
class ManifestParser
{
  public:
    ManifestParser(const std::string &text, std::string path)
        : _text(text), _path(std::move(path))
    {}

    void
    die(const char *what) const
    {
        fatal("checkpoint manifest '%s': malformed JSON (%s near "
              "offset %zu)", _path.c_str(), what, _pos);
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\n' ||
                _text[_pos] == '\t' || _text[_pos] == '\r'))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _text.size())
            die("unexpected end");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            die("unexpected character");
        ++_pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                die("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (_pos >= _text.size())
                    die("bad escape");
                char e = _text[_pos++];
                switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case '/': out.push_back('/'); break;
                default: die("unsupported escape");
                }
            } else {
                out.push_back(c);
            }
        }
    }

    /** Parse a value but keep only strings; others are skipped. */
    std::string
    parseScalar()
    {
        char c = peek();
        if (c == '"')
            return parseString();
        // Bare number (tolerated, returned as text).
        std::string out;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '-' || _text[_pos] == '.' ||
                _text[_pos] == 'e' || _text[_pos] == 'E' ||
                _text[_pos] == '+'))
            out.push_back(_text[_pos++]);
        if (out.empty())
            die("expected scalar");
        return out;
    }

    /**
     * Parse an object of scalar fields plus at most one array-valued
     * field; @p onField receives scalar fields, @p onArrayElem is
     * invoked with a fresh sub-object parser position for each array
     * element (used for "sections").
     */
    template <typename FieldFn, typename ArrayFn>
    void
    parseObject(FieldFn onField, ArrayFn onArrayElem)
    {
        expect('{');
        if (peek() == '}') {
            ++_pos;
            return;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            if (peek() == '[') {
                ++_pos;
                if (peek() == ']') {
                    ++_pos;
                } else {
                    while (true) {
                        onArrayElem(key);
                        char c = peek();
                        if (c == ',') {
                            ++_pos;
                            continue;
                        }
                        expect(']');
                        break;
                    }
                }
            } else {
                onField(key, parseScalar());
            }
            char c = peek();
            if (c == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return;
        }
    }

  private:
    const std::string &_text;
    std::string _path;
    std::size_t _pos = 0;
};

std::uint64_t
parseU64Field(const std::string &text, const std::string &key,
              const std::string &path)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    fatal_if(end == text.c_str() || *end != '\0',
             "checkpoint manifest '%s': field '%s' ('%s') is not an "
             "unsigned integer", path.c_str(), key.c_str(),
             text.c_str());
    return v;
}

} // namespace

//
// CheckpointOut
//

void
CheckpointOut::header(const std::string &key, RecordType type)
{
    panic_if(key.empty() || key.size() > 0xffff,
             "checkpoint section '%s': bad key length %zu",
             _section.c_str(), key.size());
    auto [it, inserted] = _seen.emplace(key, type);
    panic_if(!inserted, "checkpoint section '%s': duplicate key '%s'",
             _section.c_str(), key.c_str());
    _buf.push_back(static_cast<char>(type));
    appendLE(_buf, key.size(), 2);
    _buf.append(key);
    ++_numRecords;
}

void
CheckpointOut::raw(const void *bytes, std::size_t n)
{
    _buf.append(static_cast<const char *>(bytes), n);
}

void
CheckpointOut::putU64(const std::string &key, std::uint64_t v)
{
    header(key, RecordType::U64);
    appendLE(_buf, v, 8);
}

void
CheckpointOut::putI64(const std::string &key, std::int64_t v)
{
    header(key, RecordType::I64);
    appendLE(_buf, static_cast<std::uint64_t>(v), 8);
}

void
CheckpointOut::putF64(const std::string &key, double v)
{
    header(key, RecordType::F64);
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    appendLE(_buf, bits, 8);
}

void
CheckpointOut::putBool(const std::string &key, bool v)
{
    header(key, RecordType::Bool);
    _buf.push_back(v ? 1 : 0);
}

void
CheckpointOut::putStr(const std::string &key, const std::string &v)
{
    header(key, RecordType::Str);
    appendLE(_buf, v.size(), 4);
    _buf.append(v);
}

void
CheckpointOut::putBlob(const std::string &key, const void *bytes,
                       std::size_t n)
{
    header(key, RecordType::Blob);
    appendLE(_buf, n, 4);
    raw(bytes, n);
}

void
CheckpointOut::putU64Vec(const std::string &key,
                         const std::vector<std::uint64_t> &v)
{
    header(key, RecordType::U64Vec);
    appendLE(_buf, v.size(), 4);
    for (std::uint64_t x : v)
        appendLE(_buf, x, 8);
}

void
CheckpointOut::putF64Vec(const std::string &key,
                         const std::vector<double> &v)
{
    header(key, RecordType::F64Vec);
    appendLE(_buf, v.size(), 4);
    for (double x : v) {
        std::uint64_t bits;
        std::memcpy(&bits, &x, 8);
        appendLE(_buf, bits, 8);
    }
}

//
// CheckpointIn
//

CheckpointIn::CheckpointIn(std::string section_name, const char *bytes,
                           std::size_t n)
    : _section(std::move(section_name))
{
    std::size_t pos = 0;
    auto need = [&](std::size_t k) {
        fatal_if(pos + k > n,
                 "checkpoint section '%s': truncated at offset %zu",
                 _section.c_str(), pos);
    };
    while (pos < n) {
        need(3);
        auto type = static_cast<RecordType>(
            static_cast<unsigned char>(bytes[pos]));
        fatal_if(static_cast<unsigned>(type) >
                     static_cast<unsigned>(RecordType::F64Vec),
                 "checkpoint section '%s': bad record type %u at "
                 "offset %zu", _section.c_str(),
                 static_cast<unsigned>(type), pos);
        std::size_t key_len = readLE(bytes + pos + 1, 2);
        pos += 3;
        need(key_len);
        std::string key(bytes + pos, key_len);
        pos += key_len;

        std::size_t payload_len = 0;
        switch (type) {
        case RecordType::U64:
        case RecordType::I64:
        case RecordType::F64:
            payload_len = 8;
            break;
        case RecordType::Bool:
            payload_len = 1;
            break;
        case RecordType::Str:
        case RecordType::Blob:
            need(4);
            payload_len = readLE(bytes + pos, 4);
            pos += 4;
            break;
        case RecordType::U64Vec:
        case RecordType::F64Vec:
            need(4);
            payload_len = readLE(bytes + pos, 4) * 8;
            pos += 4;
            break;
        }
        need(payload_len);
        auto [it, inserted] = _records.emplace(
            std::move(key),
            Record{type, std::string(bytes + pos, payload_len)});
        fatal_if(!inserted,
                 "checkpoint section '%s': duplicate key '%s'",
                 _section.c_str(), it->first.c_str());
        pos += payload_len;
    }
}

const CheckpointIn::Record &
CheckpointIn::fetch(const std::string &key, RecordType want) const
{
    auto it = _records.find(key);
    fatal_if(it == _records.end(),
             "checkpoint section '%s': missing key '%s' — the "
             "checkpoint does not match this binary's schema",
             _section.c_str(), key.c_str());
    fatal_if(it->second.type != want,
             "checkpoint section '%s': key '%s' is %s, expected %s",
             _section.c_str(), key.c_str(),
             recordTypeName(it->second.type), recordTypeName(want));
    return it->second;
}

std::uint64_t
CheckpointIn::getU64(const std::string &key) const
{
    return readLE(fetch(key, RecordType::U64).payload.data(), 8);
}

std::int64_t
CheckpointIn::getI64(const std::string &key) const
{
    return static_cast<std::int64_t>(
        readLE(fetch(key, RecordType::I64).payload.data(), 8));
}

double
CheckpointIn::getF64(const std::string &key) const
{
    std::uint64_t bits =
        readLE(fetch(key, RecordType::F64).payload.data(), 8);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

bool
CheckpointIn::getBool(const std::string &key) const
{
    return fetch(key, RecordType::Bool).payload[0] != 0;
}

std::string
CheckpointIn::getStr(const std::string &key) const
{
    return fetch(key, RecordType::Str).payload;
}

const std::string &
CheckpointIn::getBlob(const std::string &key) const
{
    return fetch(key, RecordType::Blob).payload;
}

std::vector<std::uint64_t>
CheckpointIn::getU64Vec(const std::string &key) const
{
    const std::string &p = fetch(key, RecordType::U64Vec).payload;
    std::vector<std::uint64_t> out(p.size() / 8);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = readLE(p.data() + i * 8, 8);
    return out;
}

std::vector<double>
CheckpointIn::getF64Vec(const std::string &key) const
{
    const std::string &p = fetch(key, RecordType::F64Vec).payload;
    std::vector<double> out(p.size() / 8);
    for (std::size_t i = 0; i < out.size(); ++i) {
        std::uint64_t bits = readLE(p.data() + i * 8, 8);
        std::memcpy(&out[i], &bits, 8);
    }
    return out;
}

//
// CheckpointWriter
//

CheckpointWriter::CheckpointWriter(std::string dir,
                                   std::uint64_t config_fingerprint,
                                   Tick tick,
                                   std::uint64_t num_processed)
    : _dir(std::move(dir)), _fingerprint(config_fingerprint),
      _tick(tick), _numProcessed(num_processed)
{
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    fatal_if(static_cast<bool>(ec),
             "cannot create checkpoint directory '%s': %s",
             _dir.c_str(), ec.message().c_str());
}

CheckpointWriter::~CheckpointWriter()
{
    if (!_finalized)
        finalize();
}

CheckpointOut &
CheckpointWriter::section(const std::string &name)
{
    panic_if(_finalized, "checkpoint '%s' already finalized",
             _dir.c_str());
    for (const CheckpointOut &s : _sections)
        panic_if(s.sectionName() == name,
                 "checkpoint '%s': duplicate section '%s'",
                 _dir.c_str(), name.c_str());
    _sections.emplace_back(name);
    return _sections.back();
}

void
CheckpointWriter::finalize()
{
    if (_finalized)
        return;
    _finalized = true;

    std::string data_path = _dir + "/data.bin";
    std::ofstream data(data_path, std::ios::binary);
    fatal_if(!data.is_open(), "cannot write '%s'", data_path.c_str());

    std::ostringstream manifest;
    manifest << "{\n"
             << "  \"format_version\": \"" << checkpointFormatVersion
             << "\",\n"
             << "  \"config_fingerprint\": \"" << _fingerprint
             << "\",\n"
             << "  \"tick\": \"" << _tick << "\",\n"
             << "  \"num_processed\": \"" << _numProcessed << "\",\n"
             << "  \"sections\": [\n";
    std::size_t offset = 0;
    for (std::size_t i = 0; i < _sections.size(); ++i) {
        const CheckpointOut &s = _sections[i];
        data.write(s.bytes().data(),
                   static_cast<std::streamsize>(s.bytes().size()));
        manifest << "    {\"name\": \"" << jsonEscape(s.sectionName())
                 << "\", \"offset\": \"" << offset
                 << "\", \"size\": \"" << s.bytes().size() << "\"}"
                 << (i + 1 < _sections.size() ? "," : "") << "\n";
        offset += s.bytes().size();
    }
    manifest << "  ]\n}\n";
    data.close();
    fatal_if(data.fail(), "write to '%s' failed", data_path.c_str());

    std::string manifest_path = _dir + "/manifest.json";
    std::ofstream mf(manifest_path);
    fatal_if(!mf.is_open(), "cannot write '%s'",
             manifest_path.c_str());
    mf << manifest.str();
    mf.close();
    fatal_if(mf.fail(), "write to '%s' failed", manifest_path.c_str());
}

//
// CheckpointReader
//

CheckpointReader::CheckpointReader(const std::string &dir) : _dir(dir)
{
    std::string manifest_path = _dir + "/manifest.json";
    std::ifstream mf(manifest_path);
    fatal_if(!mf.is_open(),
             "cannot open checkpoint manifest '%s' — is '%s' a "
             "checkpoint directory?", manifest_path.c_str(),
             _dir.c_str());
    std::stringstream ss;
    ss << mf.rdbuf();
    std::string text = ss.str();

    bool saw_version = false;
    std::uint64_t version = 0;
    ManifestParser p(text, manifest_path);
    p.parseObject(
        [&](const std::string &key, const std::string &value) {
            if (key == "format_version") {
                version = parseU64Field(value, key, manifest_path);
                saw_version = true;
            } else if (key == "config_fingerprint") {
                _fingerprint =
                    parseU64Field(value, key, manifest_path);
            } else if (key == "tick") {
                _tick = parseU64Field(value, key, manifest_path);
            } else if (key == "num_processed") {
                _numProcessed =
                    parseU64Field(value, key, manifest_path);
            }
            // Unknown scalar fields are ignored: adding manifest
            // metadata is a compatible change.
        },
        [&](const std::string &key) {
            std::string name;
            std::uint64_t offset = 0;
            std::uint64_t size = 0;
            p.parseObject(
                [&](const std::string &k, const std::string &v) {
                    if (k == "name")
                        name = v;
                    else if (k == "offset")
                        offset = parseU64Field(v, k, manifest_path);
                    else if (k == "size")
                        size = parseU64Field(v, k, manifest_path);
                },
                [&](const std::string &) {
                    p.die("nested array in section entry");
                });
            fatal_if(key != "sections",
                     "checkpoint manifest '%s': unexpected array "
                     "field '%s'", manifest_path.c_str(), key.c_str());
            fatal_if(name.empty(),
                     "checkpoint manifest '%s': section without a "
                     "name", manifest_path.c_str());
            auto [it, inserted] = _sections.emplace(
                name, SectionRef{static_cast<std::size_t>(offset),
                                 static_cast<std::size_t>(size)});
            fatal_if(!inserted,
                     "checkpoint manifest '%s': duplicate section "
                     "'%s'", manifest_path.c_str(), name.c_str());
        });

    fatal_if(!saw_version,
             "checkpoint manifest '%s': missing format_version",
             manifest_path.c_str());
    fatal_if(version != checkpointFormatVersion,
             "checkpoint '%s' has format version %llu; this binary "
             "reads version %llu", _dir.c_str(),
             (unsigned long long)version,
             (unsigned long long)checkpointFormatVersion);

    std::string data_path = _dir + "/data.bin";
    std::ifstream data(data_path, std::ios::binary);
    fatal_if(!data.is_open(), "cannot open checkpoint data '%s'",
             data_path.c_str());
    std::stringstream ds;
    ds << data.rdbuf();
    _data = ds.str();

    for (const auto &[name, ref] : _sections) {
        fatal_if(ref.offset + ref.size > _data.size(),
                 "checkpoint '%s': section '%s' extends past the end "
                 "of data.bin", _dir.c_str(), name.c_str());
    }
}

bool
CheckpointReader::hasSection(const std::string &name) const
{
    return _sections.count(name) != 0;
}

CheckpointIn
CheckpointReader::section(const std::string &name) const
{
    auto it = _sections.find(name);
    fatal_if(it == _sections.end(),
             "checkpoint '%s': no section '%s' — the checkpointed "
             "topology does not match this configuration",
             _dir.c_str(), name.c_str());
    return CheckpointIn(name, _data.data() + it->second.offset,
                        it->second.size);
}

} // namespace emerald
