/**
 * @file
 * A crossbar: packets entering any input are routed to one of a set
 * of destinations, each reached through its own Link (modelling the
 * per-output serialization a real crossbar exhibits).
 */

#ifndef EMERALD_NOC_CROSSBAR_HH
#define EMERALD_NOC_CROSSBAR_HH

#include <functional>
#include <memory>
#include <vector>

#include "noc/link.hh"
#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::noc
{

/**
 * Routing crossbar. Destinations are registered up front; a routing
 * function maps each packet to a destination index.
 */
class Crossbar : public SimObject, public MemSink
{
  public:
    using RouteFn = std::function<unsigned(const MemPacket &)>;

    Crossbar(Simulation &sim, const std::string &name,
             const LinkParams &link_params, RouteFn route);

    /** Register a destination; returns its index. */
    unsigned addDestination(MemSink &sink);

    bool tryAccept(MemPacket *pkt) override;

    /**
     * Routes and delegates to the destination link, so a rejected
     * requestor is queued on (and woken by) the link that was full.
     */
    bool offer(MemPacket *pkt, MemRequestor &req) override;

    unsigned numDestinations() const
    {
        return static_cast<unsigned>(_links.size());
    }

    Link &linkTo(unsigned dest) { return *_links[dest]; }

  private:
    LinkParams _linkParams;
    RouteFn _route;
    std::vector<std::unique_ptr<Link>> _links;
};

} // namespace emerald::noc

#endif // EMERALD_NOC_CROSSBAR_HH
