#include <gtest/gtest.h>

#include "core/shader_builder.hh"
#include "gpu/gpu_top.hh"
#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "sim/simulation.hh"

using namespace emerald;
using namespace emerald::gpu;

namespace
{

/** A single-core rig with real caches and DRAM behind it. */
struct CoreRig
{
    Simulation sim;
    ClockDomain &clk;
    mem::FrfcfsScheduler sched;
    mem::MemorySystem memory;
    GpuTop gpu;
    core::ShaderBuilder builder;
    mem::FunctionalMemory fmem;

    CoreRig()
        : clk(sim.createClockDomain(1000.0, "gpu")),
          memory(sim, "mem",
                 [] {
                     mem::MemorySystemParams mp;
                     mp.geom.channels = 2;
                     mp.timing = mem::lpddr3Timing(1600, 32, 128);
                     return mp;
                 }(),
                 sched),
          gpu(sim, "gpu",
              clk,
              [] {
                  GpuTopParams p = defaultGpuParams();
                  p.numClusters = 1;
                  return p;
              }(),
              memory)
    {
    }

    /** Run one warp of @p source to completion; return cycles. */
    std::uint64_t
    runWarp(const std::string &source, unsigned lanes = 32)
    {
        const isa::Program *prog =
            builder.buildKernel("k", source);
        WarpTask task;
        task.type = WarpTaskType::Compute;
        task.program = prog;
        task.env.global = &fmem;
        std::uint32_t mask = lanes >= 32
                                 ? 0xffffffffu
                                 : ((1u << lanes) - 1u);
        task.activeMask = mask;
        for (unsigned lane = 0; lane < 32; ++lane)
            task.threads[lane].tidX = lane;
        bool done = false;
        task.onComplete = [&](WarpTask &, isa::ThreadContext *) {
            done = true;
        };
        Tick start = sim.curTick();
        EXPECT_TRUE(gpu.core(0).tryAddTask(std::move(task)));
        while (!done && sim.eventQueue().runOne()) {
        }
        EXPECT_TRUE(done);
        return (sim.curTick() - start) / clk.period();
    }
};

} // namespace

TEST(SimtCoreTiming, DependentChainSlowerThanIndependent)
{
    // Six dependent MULs must serialize on the scoreboard; six
    // independent MULs pipeline.
    CoreRig rig_dep;
    std::uint64_t dep = rig_dep.runWarp(R"(
        mov.f32 r0, 1.5
        mul.f32 r0, r0, r0
        mul.f32 r0, r0, r0
        mul.f32 r0, r0, r0
        mul.f32 r0, r0, r0
        mul.f32 r0, r0, r0
        mul.f32 r0, r0, r0
        exit
    )");
    CoreRig rig_ind;
    std::uint64_t ind = rig_ind.runWarp(R"(
        mov.f32 r0, 1.5
        mul.f32 r1, r0, r0
        mul.f32 r2, r0, r0
        mul.f32 r3, r0, r0
        mul.f32 r4, r0, r0
        mul.f32 r5, r0, r0
        mul.f32 r6, r0, r0
        exit
    )");
    EXPECT_GT(dep, ind);
}

TEST(SimtCoreTiming, SfuLatencyExceedsAlu)
{
    CoreRig rig_alu;
    std::uint64_t alu = rig_alu.runWarp(R"(
        mov.f32 r0, 2.0
        add.f32 r1, r0, r0
        add.f32 r1, r1, r1
        add.f32 r1, r1, r1
        exit
    )");
    CoreRig rig_sfu;
    std::uint64_t sfu = rig_sfu.runWarp(R"(
        mov.f32 r0, 2.0
        sqrt.f32 r1, r0
        sqrt.f32 r1, r1
        sqrt.f32 r1, r1
        exit
    )");
    EXPECT_GT(sfu, alu);
}

TEST(SimtCoreTiming, ColdLoadSlowerThanWarm)
{
    CoreRig rig;
    // Same program twice: the second run hits the L1D.
    const std::string prog = R"(
        mov.u32 r0, 65536
        ldg.f32 r1, [r0]
        add.f32 r2, r1, r1
        exit
    )";
    std::uint64_t cold = rig.runWarp(prog);
    std::uint64_t warm = rig.runWarp(prog);
    EXPECT_GT(cold, warm + 20);
}

TEST(SimtCoreTiming, DivergenceExecutesBothPaths)
{
    // Divergent warp: both sides of the branch run sequentially, so
    // more warp instructions issue than in the uniform case.
    CoreRig rig_div;
    rig_div.runWarp(R"(
        and.u32 r1, %tid.x, 1
        setp.eq.u32 p0, r1, 0
        @p0 bra EVEN
        mul.f32 r2, r2, r2
        mul.f32 r2, r2, r2
        bra JOIN
        EVEN:
        add.f32 r2, r2, r2
        add.f32 r2, r2, r2
        JOIN:
        exit
    )");
    double div_instrs = rig_div.gpu.core(0).statWarpInstrs.value();

    CoreRig rig_uni;
    rig_uni.runWarp(R"(
        and.u32 r1, %tid.x, 0
        setp.eq.u32 p0, r1, 0
        @p0 bra EVEN
        mul.f32 r2, r2, r2
        mul.f32 r2, r2, r2
        bra JOIN
        EVEN:
        add.f32 r2, r2, r2
        add.f32 r2, r2, r2
        JOIN:
        exit
    )");
    double uni_instrs = rig_uni.gpu.core(0).statWarpInstrs.value();
    EXPECT_GT(div_instrs, uni_instrs);
}

TEST(SimtCoreTiming, CoalescedLoadsCheaperThanScattered)
{
    // 32 lanes reading consecutive words: 1 transaction. 32 lanes
    // striding 128 B apart: 32 transactions.
    CoreRig rig_seq;
    std::uint64_t seq = rig_seq.runWarp(R"(
        mov.u32 r0, %tid.x
        shl.u32 r0, r0, 2
        add.u32 r0, r0, 65536
        ldg.f32 r1, [r0]
        exit
    )");
    CoreRig rig_str;
    std::uint64_t strided = rig_str.runWarp(R"(
        mov.u32 r0, %tid.x
        shl.u32 r0, r0, 7
        add.u32 r0, r0, 65536
        ldg.f32 r1, [r0]
        exit
    )");
    EXPECT_GT(strided, seq);
    EXPECT_GT(rig_str.gpu.core(0).l1d().accesses(),
              rig_seq.gpu.core(0).l1d().accesses());
}

TEST(SimtCoreTiming, TaskQueueBackpressure)
{
    CoreRig rig;
    const isa::Program *prog = rig.builder.buildKernel("k", R"(
        mov.f32 r0, 1.0
        exit
    )");
    unsigned accepted = 0;
    for (unsigned i = 0; i < 100; ++i) {
        WarpTask task;
        task.type = WarpTaskType::Compute;
        task.program = prog;
        task.activeMask = 1;
        if (rig.gpu.core(0).tryAddTask(std::move(task)))
            ++accepted;
    }
    // Bounded by the task queue depth.
    EXPECT_EQ(accepted, rig.gpu.core(0).params().taskQueueDepth);
    rig.sim.run();
    EXPECT_TRUE(rig.gpu.core(0).idle());
}

TEST(SimtCoreTiming, ManyWarpsHideMemoryLatency)
{
    // Throughput test: 8 memory-heavy warps on one core should take
    // far less than 8x the time of one warp (latency hiding).
    const std::string prog = R"(
        mov.u32 r0, %tid.x
        shl.u32 r0, r0, 7
        add.u32 r0, r0, 1048576
        ldg.f32 r1, [r0]
        add.u32 r0, r0, 4096
        ldg.f32 r2, [r0]
        add.u32 r0, r0, 4096
        ldg.f32 r3, [r0]
        exit
    )";
    CoreRig rig_one;
    std::uint64_t one = rig_one.runWarp(prog);

    CoreRig rig_many;
    const isa::Program *p = rig_many.builder.buildKernel("k", prog);
    int remaining = 8;
    Tick start = rig_many.sim.curTick();
    for (int i = 0; i < 8; ++i) {
        WarpTask task;
        task.type = WarpTaskType::Compute;
        task.program = p;
        task.env.global = &rig_many.fmem;
        task.activeMask = 0xffffffffu;
        for (unsigned lane = 0; lane < 32; ++lane)
            task.threads[lane].tidX = lane + 32u * unsigned(i);
        task.onComplete = [&](WarpTask &, isa::ThreadContext *) {
            --remaining;
        };
        ASSERT_TRUE(rig_many.gpu.core(0).tryAddTask(std::move(task)));
    }
    while (remaining > 0 && rig_many.sim.eventQueue().runOne()) {
    }
    ASSERT_EQ(remaining, 0);
    std::uint64_t eight =
        (rig_many.sim.curTick() - start) / rig_many.clk.period();
    EXPECT_LT(eight, one * 6);
}
