/**
 * @file
 * FR-FCFS: first-ready, first-come-first-served DRAM scheduling.
 * Row-buffer hits are serviced before non-hits; ties break by age.
 * This is the paper's baseline policy (Table 4).
 */

#ifndef EMERALD_MEM_FRFCFS_SCHEDULER_HH
#define EMERALD_MEM_FRFCFS_SCHEDULER_HH

#include "mem/dram_channel.hh"

namespace emerald::mem
{

class FrfcfsScheduler : public DramScheduler
{
  public:
    std::size_t pick(const DramChannel &channel,
                     const std::vector<QueueEntry> &queue,
                     Tick now) override;

    const char *policyName() const override { return "FR-FCFS"; }

    /**
     * Shared helper: the FR-FCFS choice restricted to entries whose
     * index passes @p eligible. Returns queue.size() when no entry is
     * eligible.
     */
    template <typename Pred>
    static std::size_t
    pickAmong(const DramChannel &channel,
              const std::vector<QueueEntry> &queue, Pred eligible)
    {
        std::size_t oldest = queue.size();
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (!eligible(i))
                continue;
            if (oldest == queue.size())
                oldest = i;
            const QueueEntry &e = queue[i];
            unsigned bank = e.coord.flatBank(channel.geometry());
            if (channel.bankOpen(bank) &&
                channel.bankOpenRow(bank) == e.coord.row) {
                return i; // Oldest row hit.
            }
        }
        return oldest;
    }
};

} // namespace emerald::mem

#endif // EMERALD_MEM_FRFCFS_SCHEDULER_HH
