/**
 * @file
 * Memory packets and the request/response interfaces that connect
 * requestors, caches, interconnect and DRAM.
 *
 * Flow control is an explicit accept/reject/retry protocol (see
 * docs/memory_protocol.md). A requestor offers a packet to a MemSink
 * with offer(); a false return means the sink is busy (full queue, no
 * free MSHR, arbitration lost) and the sink has queued the requestor:
 * when capacity frees, the sink calls the requestor's retryRequest()
 * in FIFO registration order. Rejected requestors never poll — there
 * are no per-cycle re-offer events anywhere in the request path.
 * Responses travel back through the MemClient interface recorded in
 * the packet.
 *
 * Emerald separates function from timing: packets carry addresses and
 * metadata only, never data bytes. Functional state lives in
 * FunctionalMemory, the framebuffer and texture objects.
 */

#ifndef EMERALD_SIM_PACKET_HH
#define EMERALD_SIM_PACKET_HH

#include <cstdint>
#include <deque>
#include <string>

#include "sim/check/hooks.hh"
#include "sim/fault/domain.hh"
#include "sim/fault/fault_injector.hh"
#include "sim/types.hh"

namespace emerald
{

/** Which SoC agent generated the traffic; DASH and HMC key off this. */
enum class TrafficClass : std::uint8_t
{
    Cpu,
    Gpu,
    Display,
    Npu,
};

/** Fine-grained access type, used for per-stream stats and routing. */
enum class AccessKind : std::uint8_t
{
    CpuData,
    Inst,
    GlobalData,
    Texture,
    Depth,
    Color,
    Constant,
    Vertex,
    Display,
    Writeback,
    NpuData,
    NumKinds,
};

const char *accessKindName(AccessKind kind);
const char *trafficClassName(TrafficClass tclass);

class CheckpointIn;
class CheckpointOut;
class CheckpointRegistry;
class MemPacket;
class PacketPool;
class Simulation;

/** Receives responses for packets it sent downstream. */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /**
     * A request previously accepted downstream has completed.
     * Ownership of @p pkt returns to the client.
     */
    virtual void memResponse(MemPacket *pkt) = 0;
};

/** A component that can be woken when a sink it blocked on frees up. */
class MemRequestor
{
  public:
    virtual ~MemRequestor() = default;

    /**
     * A sink that previously rejected an offer from this requestor
     * may have capacity now; re-offer the blocked packet. Wakeups can
     * be spurious (e.g. the blocked packet was abandoned meanwhile),
     * so implementations must tolerate having nothing to send.
     */
    virtual void retryRequest() = 0;

    /**
     * Who this requestor is, for the watchdog's hang report ("who is
     * parked on which RetryList"). Components that are SimObjects
     * return their instance name.
     */
    virtual std::string requestorName() const
    {
        return "unnamed requestor";
    }
};

/**
 * FIFO of requestors waiting for a sink to free capacity. A requestor
 * is queued at most once per list; wakeups pop in registration order
 * so long-blocked requestors are served first (no retry storms, no
 * starvation).
 */
class RetryList
{
  public:
    /**
     * Registers with @p domain (the enclosing Simulation's — see
     * Simulation::faultDomain()) so the watchdog can enumerate parked
     * waiters and the protocol seams can resolve the injector and the
     * check context. Lists constructed without a domain (bare tests)
     * stay unregistered and see neither injection nor checking.
     */
    explicit RetryList(fault::FaultDomain *domain = nullptr);
    ~RetryList();

    RetryList(const RetryList &) = delete;
    RetryList &operator=(const RetryList &) = delete;

    /** Queue @p req for a wakeup; duplicates are ignored. */
    void add(MemRequestor &req);

    /**
     * Wake the longest-waiting requestor.
     *
     * With @p force the wake bypasses fault injection: the injector's
     * heal flush and the watchdog's degrade recovery use it so their
     * wakeups cannot be re-suppressed. A non-forced wake swallowed by
     * a wake-suppress fault returns false and sends the victim to the
     * back of the FIFO (the lost wakeup also loses its queue slot).
     *
     * @return false when no requestor was woken.
     */
    bool wakeOne(bool force = false);

    bool empty() const { return _waiters.empty(); }
    std::size_t size() const { return _waiters.size(); }

    /** Parked requestors in FIFO order (watchdog hang report). */
    const std::deque<MemRequestor *> &waiters() const
    {
        return _waiters;
    }

    /** Name of the owning sink, for checker/abort diagnostics. */
    void setOwner(const std::string &name) { _owner = name; }
    const std::string &owner() const { return _owner; }

    /** @{ Per-Simulation seam context, resolved through the domain
     *  this list registered with; nullptr for unregistered lists. */
    fault::FaultInjector *
    injector() const
    {
        return _domain ? _domain->injector() : nullptr;
    }

    check::CheckContext *
    checkContext() const
    {
        return _domain ? _domain->checkContext() : nullptr;
    }
    /** @} */

    /**
     * Checkpoint the parked waiters under "<prefix>." keys as
     * registry names (fatal for an unregistered waiter: a parked
     * requestor that cannot be named cannot be restored).
     */
    void serialize(CheckpointOut &out, const std::string &prefix,
                   const CheckpointRegistry &reg) const;

    /** Restore waiters saved by serialize(), in FIFO order. */
    void unserialize(CheckpointIn &in, const std::string &prefix,
                     const CheckpointRegistry &reg);

  private:
    std::deque<MemRequestor *> _waiters;
    std::string _owner = "unnamed sink";
    /** Domain this list registered with (null outside a Simulation). */
    fault::FaultDomain *_domain = nullptr;
};

/** Accepts memory request packets. */
class MemSink
{
  public:
    /**
     * Binds this sink's retry list to @p sim's fault domain so the
     * watchdog, the fault injector and the checkers see it. Every
     * production sink must use this constructor.
     */
    explicit MemSink(Simulation &sim);

    /** An unbound sink: no registration, no injection, no checking.
     *  For tests and probes constructed outside a Simulation. */
    MemSink() = default;

    virtual ~MemSink() = default;

    /**
     * Offer a packet with no retry registration. On true the sink
     * takes ownership; on false the caller keeps the packet. Used by
     * tests and probes; components on the request path use offer()
     * so rejection wakes them instead of forcing a poll.
     */
    virtual bool tryAccept(MemPacket *pkt) = 0;

    /**
     * Offer a packet with backpressure. On true the sink takes
     * ownership. On false the caller keeps the packet and @p req is
     * queued: the sink calls req.retryRequest() when capacity frees
     * (FIFO among waiters). The caller must not re-offer until then.
     *
     * Routing sinks (crossbars, the memory system) override this to
     * register the requestor with the component that actually ran out
     * of capacity, so wakeups come from the right queue.
     */
    virtual bool
    offer(MemPacket *pkt, MemRequestor &req)
    {
        EMERALD_CHECK_HOOK(offerStarted(&_retries, pkt));
        // Fault seam: an active injector may force-reject this offer
        // (offer-burst sites). Cost when injection is off: one branch.
        if (auto *inj = _retries.injector();
            inj && inj->injectOfferReject(_retries, req)) {
            EMERALD_CHECK_HOOK(offerRejected(&_retries, pkt, &req));
            _retries.add(req);
            return false;
        }
        if (tryAccept(pkt)) {
            // pkt may already be completed (even freed) by the sink
            // here; the hook uses it as an identity key only, so
            // GCC's use-after-free tracking is a false positive
            // (whether it fires depends on inlining depth).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
            EMERALD_CHECK_HOOK(offerAccepted(&_retries, pkt));
#pragma GCC diagnostic pop
            return true;
        }
        EMERALD_CHECK_HOOK(offerRejected(&_retries, pkt, &req));
        _retries.add(req);
        return false;
    }

  protected:
    /** Name this sink's retry list for checker/abort diagnostics. */
    void setSinkName(const std::string &name) { _retries.setOwner(name); }

    /**
     * Wake the longest-waiting rejected requestor, if any. Sinks call
     * this (typically in a loop against their capacity check) whenever
     * a queue slot or MSHR frees.
     */
    bool wakeOneRetry() { return _retries.wakeOne(); }

    /**
     * Like wakeOneRetry(), but returns false when the woken requestor
     * immediately re-registered (its retry was rejected again, e.g.
     * for a resource the caller's capacity check does not cover).
     * Wake loops must use this to guarantee termination: a waiter that
     * made no progress would otherwise be woken forever.
     */
    bool
    wakeOneRetryChecked()
    {
        std::size_t before = _retries.size();
        if (!_retries.wakeOne())
            return false;
        return _retries.size() < before;
    }

    bool hasRetryWaiters() const { return !_retries.empty(); }

    /** This sink's retry list, for checkpointing parked waiters. */
    RetryList &retryList() { return _retries; }
    const RetryList &retryList() const { return _retries; }

  private:
    RetryList _retries;
};

/**
 * One memory transaction. Requests at most one cache line in size.
 *
 * Packets on the hot path come from the owning Simulation's
 * PacketPool (see sim/packet_pool.hh) and must be released with
 * freePacket()/completePacket(), which return them to their pool.
 * Plain new/delete packets (tests, probes) remain legal: freePacket()
 * falls back to delete when the packet has no pool.
 */
class MemPacket
{
  public:
    MemPacket(Addr addr_, unsigned size_, bool write_,
              TrafficClass tclass_, AccessKind kind_, int requestor_id,
              MemClient *client_ = nullptr, std::uint64_t token_ = 0)
        : addr(addr_), size(size_), write(write_), tclass(tclass_),
          kind(kind_), requestorId(requestor_id), client(client_),
          token(token_)
    {}

    Addr addr;
    unsigned size;
    bool write;
    TrafficClass tclass;
    AccessKind kind;

    /**
     * Identifies the requesting agent for scheduler accounting:
     * CPU cores use their core index; see soc::RequestorIds for IPs.
     */
    int requestorId;

    /** Receiver of the response; nullptr marks a posted write. */
    MemClient *client;

    /** Client-private tag, opaque to everything below the client. */
    std::uint64_t token;

    /** When the packet entered the memory system (for latency stats). */
    Tick issued = 0;

    /** Owning pool, set by PacketPool::alloc(); nullptr = heap. */
    PacketPool *pool = nullptr;

    /**
     * Lifecycle generation stamp, written by the check subsystem (see
     * sim/check/hooks.hh): a fresh generation per pool alloc, with
     * check::packetPoisonBit set while the storage sits in the free
     * list. Always present so build flavors stay ABI-compatible; zero
     * (never poisoned) when checks are off.
     */
    std::uint64_t checkGen = 0;

    /** True for posted writes that never generate a response. */
    bool posted() const { return client == nullptr; }

    /** Line-aligned address for @p line_size byte lines. */
    Addr
    lineAddr(unsigned line_size) const
    {
        return addr & ~static_cast<Addr>(line_size - 1);
    }

    std::string toString() const;
};

/** Return @p pkt to its pool, or delete it if it has none. */
void freePacket(MemPacket *pkt);

/**
 * Complete a packet from the perspective of the component that
 * finished servicing it: respond to the client or, for posted writes,
 * free the packet.
 */
inline void
completePacket(MemPacket *pkt)
{
    EMERALD_CHECK_HOOK(packetCompleting(pkt));
    if (pkt->client)
        pkt->client->memResponse(pkt);
    else
        freePacket(pkt);
}

} // namespace emerald

#endif // EMERALD_SIM_PACKET_HH
