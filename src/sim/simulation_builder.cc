#include "sim/simulation_builder.hh"

#include "sim/config.hh"
#include "sim/fault/fault_plan.hh"
#include "sim/fault/watchdog.hh"
#include "sim/simulation.hh"

namespace emerald
{

SimulationBuilder &
SimulationBuilder::clockDomain(const std::string &name, double mhz)
{
    _domains.push_back({name, mhz});
    return *this;
}

SimulationBuilder &
SimulationBuilder::traceFile(const std::string &path)
{
    _traceFile = path;
    return *this;
}

SimulationBuilder &
SimulationBuilder::profiling(bool on)
{
    _profiling = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::statsJsonOnExit(const std::string &path)
{
    _statsJsonOnExit = path;
    return *this;
}

SimulationBuilder &
SimulationBuilder::checkDeterminism(bool on)
{
    _checkDeterminism = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultPlan(const std::string &plan, std::uint64_t seed)
{
    _faultPlan = plan;
    _faultSeed = seed;
    return *this;
}

SimulationBuilder &
SimulationBuilder::watchdog(Tick budget, const std::string &mode)
{
    _watchdogTicks = budget;
    _watchdogMode = mode;
    return *this;
}

SimulationBuilder &
SimulationBuilder::observability(const Config &cfg)
{
    traceFile(cfg.getString("trace-file", _traceFile));
    profiling(cfg.getBool("profile", _profiling));
    statsJsonOnExit(cfg.getString("sim-stats-json", _statsJsonOnExit));
    checkDeterminism(cfg.getBool("check-determinism", _checkDeterminism));
    faultPlan(cfg.getString("fault-plan", _faultPlan),
              cfg.getU64("fault-seed", _faultSeed));
    if (cfg.has("watchdog-ticks")) {
        _watchdogTicks = fault::parseDuration(
            cfg.getString("watchdog-ticks", ""), "--watchdog-ticks");
    }
    _watchdogMode = cfg.getString("watchdog-mode", _watchdogMode);
    return *this;
}

std::unique_ptr<Simulation>
SimulationBuilder::build() const
{
    auto sim = std::make_unique<Simulation>();
    applyTo(*sim);
    return sim;
}

void
SimulationBuilder::applyTo(Simulation &sim) const
{
    for (const DomainSpec &spec : _domains)
        sim.createClockDomain(spec.mhz, spec.name);
    if (!_traceFile.empty())
        sim.enableTracing(_traceFile);
    if (_profiling)
        sim.enableProfiling();
    if (!_statsJsonOnExit.empty())
        sim.writeStatsJsonAtExit(_statsJsonOnExit);
    if (_checkDeterminism)
        sim.enableDeterminismCheck();
    if (!_faultPlan.empty())
        sim.configureFaults(_faultPlan, _faultSeed);
    if (_watchdogTicks > 0) {
        sim.enableWatchdog(_watchdogTicks,
                           fault::watchdogModeFromString(_watchdogMode));
    }
}

} // namespace emerald
