/**
 * @file
 * Base class for named simulated components.
 *
 * A SimObject has a name, belongs to a Simulation, and owns a node in
 * the stats tree. It offers shortcuts for the common event-queue
 * operations so components do not have to thread the queue through
 * every call site.
 */

#ifndef EMERALD_SIM_SIM_OBJECT_HH
#define EMERALD_SIM_SIM_OBJECT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/serialize/serialize.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace emerald
{

class MemClient;
class MemRequestor;
class Simulation;

/**
 * Base class of every named component in the simulated system.
 *
 * Every SimObject is Serializable: its name() is its checkpoint
 * section name. Stateful subclasses override serialize()/
 * unserialize(); emerald_lint flags ones that forget (see the
 * serializable-coverage rule). Cross-object references that must
 * survive a checkpoint (pending events, response targets, retry
 * waiters) are registered by name in the constructor via the
 * registerCheckpoint*() helpers.
 */
class SimObject : public StatGroup, public Serializable
{
  public:
    SimObject(Simulation &sim, const std::string &name);
    SimObject(SimObject &parent, const std::string &name);
    ~SimObject() override;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Simulation &sim() { return _sim; }
    const Simulation &sim() const { return _sim; }

    /** Current simulated time. */
    Tick curTick() const;

    /** Schedule @p ev at absolute tick @p when. */
    void schedule(Event &ev, Tick when);

    /** Schedule @p ev @p delta ticks from now. */
    void scheduleIn(Event &ev, Tick delta);

    /** Reschedule @p ev to absolute tick @p when. */
    void reschedule(Event &ev, Tick when);

    /** Deschedule @p ev if it is pending. */
    void descheduleIfPending(Event &ev);

    /**
     * Create sim.profile.<name()>.* counters that accumulate the
     * event count and process() wall time of every event named under
     * this object. Top-level components call this from their
     * constructor; the counters stay zero until profiling is enabled.
     */
    void registerProfileCounters();

    /**
     * Contribute one line to the watchdog's hang report: whatever
     * internal state explains why this component could be stuck
     * (queue depths, blocked flags, held packets). Write nothing when
     * there is nothing interesting to say — empty output is elided.
     */
    virtual void hangDiagnostics(std::ostream &os) const
    {
        (void)os;
    }

    /**
     * The watchdog detected a hang in degrade mode and force-woke all
     * parked waiters; shed load if possible (e.g. the display
     * controller abandons the in-flight frame). Default: do nothing.
     */
    virtual void onWatchdogDegrade() {}

  protected:
    /**
     * Register @p ev in the Simulation's checkpoint registry under
     * ev.name() so a checkpoint can re-schedule it by name. Every
     * Event that may be pending at a checkpoint must be registered
     * (saving with an unregistered pending event is fatal).
     */
    void registerCheckpointEvent(Event &ev);

    /** Register @p client under this object's name(). */
    void registerCheckpointClient(MemClient &client);

    /** Register @p req under this object's name(). */
    void registerCheckpointRequestor(MemRequestor &req);

  private:
    Simulation &_sim;
    std::string _name;
    /** Registrations to undo in the destructor. */
    std::vector<Event *> _ckptEvents;
    MemClient *_ckptClient = nullptr;
    MemRequestor *_ckptRequestor = nullptr;
};

} // namespace emerald

#endif // EMERALD_SIM_SIM_OBJECT_HH
