/**
 * @file
 * A small, fast, deterministic pseudo random number generator
 * (xoshiro256**). Every stochastic component takes an explicit seed so
 * simulations are reproducible run to run.
 */

#ifndef EMERALD_SIM_RANDOM_HH
#define EMERALD_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace emerald
{

/** Deterministic xoshiro256** generator. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /**
     * Uniform integer in [0, bound). @pre bound > 0.
     *
     * Uses Lemire's multiply-shift method with rejection so every
     * value is exactly equally likely (a plain next() % bound is
     * biased toward small values when bound does not divide 2^64).
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            // threshold = 2^64 mod bound; draws below it are the
            // over-represented remainders and must be rejected.
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * The raw generator state, for checkpointing and for tests that
     * pin a mid-stream position instead of replaying N draws.
     */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {_state[0], _state[1], _state[2], _state[3]};
    }

    /** Restore a state captured with state(). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            _state[i] = s[static_cast<std::size_t>(i)];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace emerald

#endif // EMERALD_SIM_RANDOM_HH
