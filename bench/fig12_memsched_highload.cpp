/**
 * @file
 * Paper Fig. 12: performance under the high-load scenario
 * (133 Mb/s/pin DRAM): total frame time and GPU rendering time,
 * normalized to BAS.
 * Expected shape: HMC ~+45% GPU time; DASH +9-16%; larger models
 * (M1/M3) hurt most.
 */

#include <chrono>

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig12_memsched_highload");
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 12: high-load scenario, normalized to BAS "
                "===\n");

    auto models = caseStudy1Models();
    if (quick)
        models = {scenes::WorkloadId::M2_Cube};
    auto configs = allMemConfigs();

    // Replay fast path (docs/scheduling.md): --capture-trace=<dir>
    // records each model's GPU traffic once, during its BAS run, into
    // <dir>/<model>; --replay-trace=<dir> re-drives all four memory
    // configs from that recording without executing shaders.
    // tools/check_replay.py gates the replayed shape against the
    // execution-driven one.
    std::string capture_root =
        harness.cfg.getString("capture-trace", "");
    std::string replay_root = harness.cfg.getString("replay-trace", "");

    std::printf("%-14s | %-35s | %-35s\n", "",
                "total frame time", "GPU rendering time");
    std::printf("%-14s | %8s %8s %8s %8s | %8s %8s %8s %8s\n",
                "model", "BAS", "DCB", "DTB", "HMC", "BAS", "DCB",
                "DTB", "HMC");

    std::vector<double> avg_total(4, 0.0), avg_gpu(4, 0.0);
    for (scenes::WorkloadId model : models) {
        std::vector<double> total_ms, gpu_ms;
        for (soc::MemConfig config : configs) {
            // Per-config checkpoint scope: a --checkpoint-at run
            // produces <dir>/<config> and --restore reads it back.
            SimulationBuilder builder =
                harness.builderFor(soc::memConfigName(config));
            std::string model_dir = "/";
            model_dir += scenes::workloadName(model);
            if (!capture_root.empty()) {
                builder.captureTrace(config == soc::MemConfig::BAS
                                         ? capture_root + model_dir
                                         : "");
            }
            if (!replay_root.empty())
                builder.replayTrace(replay_root + model_dir);
            soc::SocTop soc(caseStudy1Params(model, config, true),
                            builder);
            auto wall_start = std::chrono::steady_clock::now();
            soc.run();
            double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            total_ms.push_back(soc.meanTotalFrameMs());
            gpu_ms.push_back(soc.meanGpuFrameMs());
            std::string key =
                std::string(scenes::workloadName(model)) + "." +
                soc::memConfigName(config);
            results.record(key + ".events",
                           static_cast<double>(
                               soc.sim().eventQueue().numProcessed()));
            results.record(key + ".wall_ms", wall_ms);
            // 53-bit fold of the event-stream hash (exact in JSON):
            // the restore-determinism gate compares cold vs warm.
            results.record(
                key + ".event_hash",
                static_cast<double>(soc.sim().determinismHash() &
                                    ((1ULL << 53) - 1)));
        }
        std::printf("%-14s |", scenes::workloadName(model));
        for (std::size_t i = 0; i < 4; ++i) {
            double n = total_ms[i] / total_ms[0];
            avg_total[i] += n;
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(configs[i]) +
                               ".total_ms_norm",
                           n);
            std::printf(" %8.3f", n);
        }
        std::printf(" |");
        for (std::size_t i = 0; i < 4; ++i) {
            double n = gpu_ms[i] / gpu_ms[0];
            avg_gpu[i] += n;
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(configs[i]) +
                               ".gpu_ms_norm",
                           n);
            std::printf(" %8.3f", n);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-14s |", "AVG");
    for (double v : avg_total)
        std::printf(" %8.3f", v / static_cast<double>(models.size()));
    std::printf(" |");
    for (double v : avg_gpu)
        std::printf(" %8.3f", v / static_cast<double>(models.size()));
    std::printf("\n\npaper shape: HMC ~1.45x GPU time; DASH ~1.1-1.16x "
                "on the larger models\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig12_memsched_highload",
    .desc = "Fig. 12: high-load total/GPU frame time normalized to BAS",
    .axes = {"quick"},
    .expectedShape = "HMC ~1.45x GPU time; DASH ~1.1-1.16x on the larger models",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
