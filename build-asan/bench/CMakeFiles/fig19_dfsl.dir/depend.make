# Empty dependencies file for fig19_dfsl.
# This may be replaced when dependencies are built.
