/**
 * @file
 * Paper Fig. 9: normalized GPU execution time per frame under the
 * regular-load scenario, for M1-M4 under BAS / DCB / DTB / HMC.
 * Expected shape: DASH (DCB/DTB) prolongs GPU frames vs. BAS; HMC
 * roughly doubles them. Also prints the DASH (Table 3) and DRAM
 * (Table 4) configurations used.
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig09_memsched_regular");
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 9: GPU frame time under regular load "
                "(normalized to BAS; lower is better) ===\n");
    std::printf("Table 3 (DASH): switching 500 cyc, quantum 1M cyc, "
                "cluster factor 0.15, emergent 0.8 (GPU 0.9),\n"
                "                display period 16 ms (60 FPS), GPU "
                "period 33 ms (30 FPS)\n");
    std::printf("Table 4 (DRAM): BAS/DCB/DTB Ro:Ra:Ba:Co:Ch on 2 ch; "
                "HMC: CPU ch Ro:Ra:Ba:Co:Ch, IP ch Ro:Co:Ra:Ba:Ch\n\n");

    auto models = caseStudy1Models();
    if (quick)
        models = {scenes::WorkloadId::M2_Cube};
    auto configs = allMemConfigs();

    std::printf("%-14s %8s %8s %8s %8s\n", "model", "BAS", "DCB",
                "DTB", "HMC");

    std::vector<double> averages(configs.size(), 0.0);
    for (scenes::WorkloadId model : models) {
        std::vector<double> gpu_ms;
        for (soc::MemConfig config : configs) {
            soc::SocTop soc(
                caseStudy1Params(model, config, false),
                harness.builder());
            soc.run();
            gpu_ms.push_back(soc.meanGpuFrameMs());
        }
        std::printf("%-14s", scenes::workloadName(model));
        for (std::size_t i = 0; i < configs.size(); ++i) {
            double norm = gpu_ms[i] / gpu_ms[0];
            averages[i] += norm;
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(configs[i]) +
                               ".gpu_ms_norm",
                           norm);
            std::printf(" %8.3f", norm);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-14s", "AVG");
    for (double avg : averages)
        std::printf(" %8.3f", avg / static_cast<double>(models.size()));
    std::printf("\n\npaper shape: DCB/DTB ~1.19-1.20x, HMC ~2x\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig09_memsched_regular",
    .desc = "Fig. 9: GPU frame time under regular load, normalized to BAS",
    .axes = {"quick"},
    .expectedShape = "DCB/DTB ~1.19-1.20x, HMC ~2x",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
