/**
 * @file
 * Paper Fig. 18: W1 execution time and total L1 misses (color,
 * texture, depth) across WT sizes, plus the execution-time/miss
 * correlations.
 * Expected shape: larger WTs improve L1 locality (fewer misses);
 * execution time correlates strongly (paper: ~0.78-0.82) with L1
 * miss counts.
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig18_wt_locality");
    const Config &cfg = harness.cfg;
    unsigned fbw = static_cast<unsigned>(cfg.getU64("width", 256));
    unsigned fbh = static_cast<unsigned>(cfg.getU64("height", 192));
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 3));
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 18: W1 execution time and L1 misses vs WT "
                "(normalized to WT=1) ===\n");
    std::printf("%4s %10s %10s %10s %10s\n", "WT", "time", "color",
                "texture", "depth");

    std::vector<double> time, color, texture, depth;
    for (unsigned wt = 1; wt <= 10; ++wt) {
        soc::StandaloneGpu rig(fbw, fbh);
        scenes::SceneRenderer scene(
            rig.pipeline(),
            scenes::makeWorkload(scenes::WorkloadId::W1_Sibenik),
            rig.functionalMemory());
        rig.pipeline().setWtSize(wt);
        renderFrame(rig, scene, 0); // Warm-up.

        // Measure misses over the profiled frames only.
        double c0 = static_cast<double>(
            rig.gpu().l1Misses(AccessKind::Color));
        double t0 = static_cast<double>(
            rig.gpu().l1Misses(AccessKind::Texture));
        double z0 = static_cast<double>(
            rig.gpu().l1Misses(AccessKind::Depth));
        double cyc = 0;
        for (unsigned f = 1; f <= frames; ++f)
            cyc += static_cast<double>(
                renderFrame(rig, scene, f).cycles);
        time.push_back(cyc / frames);
        color.push_back(
            (static_cast<double>(
                 rig.gpu().l1Misses(AccessKind::Color)) -
             c0) /
            frames);
        texture.push_back(
            (static_cast<double>(
                 rig.gpu().l1Misses(AccessKind::Texture)) -
             t0) /
            frames);
        depth.push_back(
            (static_cast<double>(
                 rig.gpu().l1Misses(AccessKind::Depth)) -
             z0) /
            frames);
        std::printf("%4u %10.3f %10.3f %10.3f %10.3f\n", wt,
                    time.back() / time[0], color.back() / color[0],
                    texture.back() / texture[0],
                    depth.back() / depth[0]);
        std::fflush(stdout);
    }

    results.record("corr_time_color", correlation(time, color));
    results.record("corr_time_texture", correlation(time, texture));
    results.record("corr_time_depth", correlation(time, depth));
    for (std::size_t i = 0; i < time.size(); ++i)
        results.record("wt" + std::to_string(i + 1) + ".time_norm",
                       time[i] / time[0]);

    std::printf("\ncorrelation(time, color misses)   = %.2f\n",
                correlation(time, color));
    std::printf("correlation(time, texture misses) = %.2f\n",
                correlation(time, texture));
    std::printf("correlation(time, depth misses)   = %.2f\n",
                correlation(time, depth));
    std::printf("\npaper shape: execution time correlates ~0.78-0.82 "
                "with L1 miss counts\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig18_wt_locality",
    .desc = "Fig. 18: W1 execution time and L1 misses vs WT",
    .axes = {"frames", "width", "height"},
    .expectedShape = "execution time correlates ~0.78-0.82 with L1 miss counts",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
