#include "noc/link.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::noc
{

Link::Link(Simulation &sim, const std::string &name,
           const LinkParams &params)
    : SimObject(sim, name), MemSink(sim),
      statPackets(*this, "packets", "packets forwarded"),
      statBytes(*this, "bytes", "bytes forwarded"),
      statRetries(*this, "retries", "deliveries retried (target busy)"),
      _params(params),
      _deliverEvent([this] { deliver(); }, name + ".deliver")
{
    setSinkName(name);
    registerCheckpointEvent(_deliverEvent);
    registerCheckpointRequestor(*this);
}

bool
Link::tryAccept(MemPacket *pkt)
{
    if (_queue.size() >= _params.queueDepth)
        return false;

    Tick now = curTick();
    Tick ser = 0;
    if (_params.bytesPerSec > 0.0) {
        ser = static_cast<Tick>(
            pkt->size / _params.bytesPerSec * ticksPerSecond);
    }
    Tick start = std::max(now, _serializerFree);
    _serializerFree = start + ser;
    Tick ready = _serializerFree + _params.latency;

    // Fault seam: link-delay sites add latency to this traversal
    // (congested hop / marginal lane model). Delivery order within
    // the link is preserved — the queue drains head-first regardless.
    if (auto *inj = sim().faultInjector())
        ready += inj->extraLinkDelay(name());

    _queue.push_back({pkt, ready});
    ++statPackets;
    statBytes += pkt->size;

    if (!_blocked && !_deliverEvent.scheduled())
        schedule(_deliverEvent, ready);
    return true;
}

void
Link::deliver()
{
    panic_if(!_target, "%s has no target", name().c_str());
    Tick now = curTick();
    bool drained = false;
    while (!_queue.empty() && _queue.front().readyAt <= now) {
        if (!_target->offer(_queue.front().pkt, *this)) {
            // Target queued us; it calls retryRequest() when a slot
            // frees. Later queue entries wait behind the head.
            ++statRetries;
            _blocked = true;
            break;
        }
        _queue.pop_front();
        drained = true;
    }
    if (!_blocked && !_queue.empty() && !_deliverEvent.scheduled())
        schedule(_deliverEvent, _queue.front().readyAt);
    if (drained) {
        while (_queue.size() < _params.queueDepth &&
               wakeOneRetryChecked()) {
        }
    }
}

void
Link::retryRequest()
{
    _blocked = false;
    deliver();
}

void
Link::serialize(CheckpointOut &out) const
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    out.putU64("num_queue", _queue.size());
    for (std::size_t i = 0; i < _queue.size(); ++i) {
        std::string prefix = strprintf("q%zu", i);
        putPacket(out, prefix, *_queue[i].pkt, reg);
        out.putTick(prefix + ".ready_at", _queue[i].readyAt);
    }
    out.putTick("serializer_free", _serializerFree);
    out.putBool("blocked", _blocked);
    retryList().serialize(out, "retry", reg);
}

void
Link::unserialize(CheckpointIn &in)
{
    panic_if(!_queue.empty(), "%s: unserialize into a busy link",
             name().c_str());
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    PacketPool &pool = sim().packetPool();

    std::uint64_t num_queue = in.getU64("num_queue");
    for (std::uint64_t i = 0; i < num_queue; ++i) {
        std::string prefix = strprintf("q%llu", (unsigned long long)i);
        MemPacket *pkt = getPacket(in, prefix, pool, reg);
        _queue.push_back({pkt, in.getTick(prefix + ".ready_at")});
    }
    _serializerFree = in.getTick("serializer_free");
    _blocked = in.getBool("blocked");
    retryList().unserialize(in, "retry", reg);
}

void
Link::hangDiagnostics(std::ostream &os) const
{
    if (_queue.empty() && !_blocked)
        return;
    os << "queue=" << _queue.size() << "/" << _params.queueDepth
       << (_blocked ? " BLOCKED on target" : "");
}

} // namespace emerald::noc
