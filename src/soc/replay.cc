#include "soc/replay.hh"

#include <algorithm>

#include "gpu/simt_core.hh"
#include "mem/traffic_trace.hh"
#include "sim/logging.hh"
#include "sim/packet_pool.hh"
#include "sim/simulation.hh"

namespace emerald::soc
{

/**
 * One replay injection point: feeds one trace client's transactions
 * into the matching SIMT core's L1s, strictly in recorded order, each
 * no earlier than renderStart + its captured offset. Reads come back
 * through memResponse() (the frame cannot close while any is in
 * flight); writes are posted, as the LSU issues them. A rejected offer
 * parks the port on the L1's retry list — no polling, like every other
 * requestor in the system.
 */
class ReplayPort : public SimObject,
                   public MemClient,
                   public MemRequestor
{
  public:
    ReplayPort(Simulation &sim, const std::string &name,
               TraceReplayDriver &driver, gpu::SimtCore &core,
               const std::vector<mem::TraceTxn> &txns,
               unsigned num_frames)
        : SimObject(sim, name), _driver(driver), _core(core),
          _txns(txns),
          _issueEvent([this] { issueReady(); }, name + ".issue")
    {
        // Per-frame [begin, end) ranges. Records are chronological
        // within a client and frames begin in order, so frame ids are
        // non-decreasing; anything else is a corrupt trace.
        _ranges.assign(num_frames, {0, 0});
        std::size_t i = 0;
        for (unsigned f = 0; f < num_frames; ++f) {
            std::size_t begin = i;
            while (i < _txns.size() && _txns[i].frame == f)
                ++i;
            _ranges[f] = {begin, i};
        }
        fatal_if(i != _txns.size(),
                 "%s: trace records out of frame order",
                 name.c_str());
    }

    /** Start injecting frame @p frame; its offsets are relative to
     * @p render_start. Completion is reported via the driver. */
    void
    beginFrame(unsigned frame, Tick render_start)
    {
        _frameBegin = _ranges.at(frame).first;
        _frameEnd = _ranges.at(frame).second;
        _next = _frameBegin;
        _renderStart = render_start;
        _frameActive = true;
        // Enter through the event queue so the driver's begin-render
        // loop never re-enters frame completion mid-iteration.
        schedule(_issueEvent, nextIssueTick());
    }

    /** Transactions of the current frame already handed to an L1. */
    std::uint64_t frameIssued() const { return _next - _frameBegin; }
    std::uint64_t frameTotal() const { return _frameEnd - _frameBegin; }

    void
    setCapture(mem::TrafficTraceWriter *writer, unsigned client)
    {
        _writer = writer;
        _client = client;
    }

    void
    memResponse(MemPacket *pkt) override
    {
        panic_if(_outstanding == 0, "%s: unexpected response %s",
                 name().c_str(), pkt->toString().c_str());
        freePacket(pkt);
        --_outstanding;
        maybeFrameDone();
    }

    void
    retryRequest() override
    {
        if (!_retryPkt)
            return; // Spurious wakeup.
        MemPacket *pkt = _retryPkt;
        _retryPkt = nullptr;
        const mem::TraceTxn &txn = _txns[_next];
        if (!_core.l1ForKind(txn.kind).offer(pkt, *this)) {
            _retryPkt = pkt;
            return;
        }
        accepted(txn);
        issueReady();
    }

    std::string requestorName() const override { return name(); }

    /** See TraceReplayDriver::serialize(). */
    void
    serialize(CheckpointOut &out) const override
    {
        (void)out;
        panic("%s: replay ports cannot be checkpointed",
              name().c_str());
    }

    void
    hangDiagnostics(std::ostream &os) const override
    {
        if (!_frameActive)
            return;
        os << name() << ": txn " << frameIssued() << "/"
           << frameTotal() << " of frame, " << _outstanding
           << " reads in flight"
           << (_retryPkt ? ", head blocked on L1" : "") << "\n";
    }

  private:
    /** Injection loop: issue every due transaction, then either park
     * (blocked/ahead of time) or close out the frame. */
    void
    issueReady()
    {
        while (_next < _frameEnd) {
            const mem::TraceTxn &txn = _txns[_next];
            Tick when = _renderStart + txn.offset;
            if (when > curTick()) {
                schedule(_issueEvent, when);
                return;
            }
            auto *pkt = sim().packetPool().alloc(
                txn.addr, _core.params().l1d.lineSize, txn.write,
                TrafficClass::Gpu, txn.kind, gpu::gpuRequestorId,
                txn.write ? nullptr : this, 0);
            if (!_core.l1ForKind(txn.kind).offer(pkt, *this)) {
                _retryPkt = pkt;
                return;
            }
            accepted(txn);
        }
        maybeFrameDone();
    }

    Tick
    nextIssueTick() const
    {
        if (_next >= _frameEnd)
            return curTick();
        return std::max(curTick(), _renderStart + _txns[_next].offset);
    }

    void
    accepted(const mem::TraceTxn &txn)
    {
        if (_writer) {
            _writer->record(_client, curTick(), txn.addr, txn.kind,
                            txn.write);
        }
        if (!txn.write)
            ++_outstanding;
        ++_next;
        ++_driver.statReplayedTxns;
    }

    void
    maybeFrameDone()
    {
        if (_frameActive && _next == _frameEnd && _outstanding == 0) {
            _frameActive = false;
            _driver.portFrameDone();
        }
    }

    TraceReplayDriver &_driver;
    gpu::SimtCore &_core;
    const std::vector<mem::TraceTxn> &_txns;
    /** Per-frame [begin, end) index ranges into _txns. */
    std::vector<std::pair<std::size_t, std::size_t>> _ranges;

    std::size_t _frameBegin = 0;
    std::size_t _frameEnd = 0;
    std::size_t _next = 0;
    Tick _renderStart = 0;
    bool _frameActive = false;
    /** Reads handed to an L1 whose responses are still in flight. */
    unsigned _outstanding = 0;
    /** Head transaction's packet, held across an L1 rejection. */
    MemPacket *_retryPkt = nullptr;

    mem::TrafficTraceWriter *_writer = nullptr;
    unsigned _client = 0;

    EventFunction _issueEvent;
};

TraceReplayDriver::TraceReplayDriver(
    Simulation &sim, const std::string &name,
    const ReplayParams &params, const mem::TrafficTraceReader &trace,
    gpu::GpuTop &gpu, std::vector<CpuCoreModel *> cores,
    mem::DashCoordinator *dash,
    std::function<void()> on_all_frames_done)
    : SimObject(sim, name),
      statFrames(*this, "frames", "trace frames replayed"),
      statReplayedTxns(*this, "txns", "trace transactions injected"),
      statGpuFrameTicks(*this, "gpu_frame_ticks",
                        "replayed render time per frame (ticks)"),
      statTotalFrameTicks(*this, "total_frame_ticks",
                          "prep+render time per frame (ticks)"),
      _params(params), _trace(trace), _cores(std::move(cores)),
      _dash(dash), _onDone(std::move(on_all_frames_done)),
      _startPrepEvent([this] { beginPrep(); }, name + ".prep"),
      _pollEvent([this] { pollProgress(); }, name + ".poll")
{
    registerProfileCounters();
    fatal_if(trace.numFrames() < params.frames,
             "replay trace '%s' holds %u frames but the run wants %u",
             trace.dir().c_str(), trace.numFrames(), params.frames);
    if (_dash) {
        _dashIp = _dash->registerIp(name + ".gpu", TrafficClass::Gpu,
                                    0.9);
    }
    // Match trace client streams to SIMT cores by name: traces
    // captured with extra clients (e.g. the NPU DMA boundary) stay
    // replayable — replay drives only the GPU streams, everything
    // else in the trace is observational.
    for (unsigned i = 0; i < gpu.numCores(); ++i) {
        const std::string &core_name = gpu.core(i).name();
        int client = -1;
        for (unsigned c = 0; c < trace.numClients(); ++c) {
            if (trace.clientName(c) == core_name) {
                client = static_cast<int>(c);
                break;
            }
        }
        fatal_if(client < 0,
                 "replay trace '%s' has no client stream for core "
                 "'%s' (%u clients in trace)",
                 trace.dir().c_str(), core_name.c_str(),
                 trace.numClients());
        _ports.push_back(std::make_unique<ReplayPort>(
            sim, name + ".p" + std::to_string(i), *this, gpu.core(i),
            trace.clientTxns(static_cast<unsigned>(client)),
            trace.numFrames()));
    }
}

TraceReplayDriver::~TraceReplayDriver() = default;

void
TraceReplayDriver::serialize(CheckpointOut &out) const
{
    (void)out;
    panic("%s: replay runs cannot be checkpointed (the builder "
          "rejects --replay-trace with --checkpoint-at/--restore)",
          name().c_str());
}

void
TraceReplayDriver::start()
{
    scheduleIn(_startPrepEvent, 0);
}

void
TraceReplayDriver::setTraceCapture(mem::TrafficTraceWriter *writer)
{
    _writer = writer;
    for (auto &port : _ports) {
        unsigned client = writer ? writer->addClient(port->name()) : 0;
        port->setCapture(writer, client);
    }
}

void
TraceReplayDriver::beginPrep()
{
    _frameSlotStart = curTick();
    _current = FrameRecord{};
    _current.prepStart = curTick();

    // Same CPU-side phase as the execution-driven AppModel: every
    // core burns through its prep quota, latency-bound.
    _coresPending = static_cast<unsigned>(_cores.size());
    if (_coresPending == 0) {
        beginRender();
        return;
    }
    for (CpuCoreModel *core : _cores) {
        core->setBackground(false);
        core->runQuota(_params.cpuPrepRequests,
                       [this] { corePrepDone(); });
    }
}

void
TraceReplayDriver::corePrepDone()
{
    panic_if(_coresPending == 0, "prep over-completion");
    if (--_coresPending == 0)
        beginRender();
}

void
TraceReplayDriver::beginRender()
{
    _rendering = true;
    _current.renderStart = curTick();
    _progressReported = 0.0;
    unsigned frame = _framesDone;

    if (_writer)
        _writer->beginFrame(curTick());

    for (CpuCoreModel *core : _cores)
        core->setBackground(true);

    if (_dash && _dashIp >= 0) {
        // DASH sees the same estimate the execution-driven run gave
        // it: the previous frame's work total (here, from the trace).
        double estimate = frame > 0 ? _trace.frameWork(frame - 1)
                                    : 1e9;
        if (estimate <= 0.0)
            estimate = 1e9;
        _dash->beginIpPeriod(_dashIp, _params.gpuFramePeriod,
                             estimate);
        scheduleIn(_pollEvent, _params.progressPollPeriod);
    }

    _portsPending = static_cast<unsigned>(_ports.size());
    for (auto &port : _ports)
        port->beginFrame(frame, curTick());
}

void
TraceReplayDriver::portFrameDone()
{
    panic_if(_portsPending == 0, "frame over-completion");
    if (--_portsPending == 0)
        renderDone();
}

void
TraceReplayDriver::pollProgress()
{
    if (!_dash || _dashIp < 0 || !_rendering)
        return;
    // Injection progress is the only observable the replay has; scale
    // the frame's recorded work by it.
    std::uint64_t issued = 0, total = 0;
    for (const auto &port : _ports) {
        issued += port->frameIssued();
        total += port->frameTotal();
    }
    double work = _trace.frameWork(_framesDone);
    double progress =
        total > 0 ? work * (static_cast<double>(issued) /
                            static_cast<double>(total))
                  : work;
    if (progress > _progressReported) {
        _dash->addIpProgress(_dashIp, progress - _progressReported);
        _progressReported = progress;
    }
    scheduleIn(_pollEvent, _params.progressPollPeriod);
}

void
TraceReplayDriver::renderDone()
{
    _rendering = false;
    _current.renderEnd = curTick();

    if (_writer) {
        _writer->endFrame(curTick(), _trace.frameWork(_framesDone));
    }

    _records.push_back(_current);
    ++_framesDone;
    ++statFrames;
    statGpuFrameTicks.sample(static_cast<double>(_current.gpuTime()));
    statTotalFrameTicks.sample(
        static_cast<double>(_current.totalTime()));

    descheduleIfPending(_pollEvent);
    if (_dash && _dashIp >= 0)
        _dash->endIpPeriod(_dashIp);

    for (CpuCoreModel *core : _cores)
        core->setBackground(false);

    if (_framesDone >= _params.frames) {
        if (_onDone)
            _onDone();
        return;
    }

    Tick next = _frameSlotStart + _params.gpuFramePeriod;
    schedule(_startPrepEvent, std::max(curTick(), next));
}

} // namespace emerald::soc
