#!/usr/bin/env bash
# Regenerates every paper table/figure (see EXPERIMENTS.md).
#
# All figure benches live in one binary, build/bench/emerald_bench;
# this script enumerates them with --list and runs each with
# --run <name> (aux scenarios like soc_point, the sweep unit, are
# skipped — emerald_sweep drives those; docs/sweeps.md). The
# micro_kernels google-benchmark binary still runs separately.
#
# Usage: run_benches.sh [--stats-out <dir>]
#   --stats-out <dir>   also write one machine-readable JSON results
#                       file per bench into <dir> (see
#                       docs/observability.md for the schema).
#   --stats-json <dir>  deprecated alias for --stats-out.
#
# Exits nonzero if any bench fails, listing the failures at the end;
# the remaining benches still run so one bad bench does not hide the
# results of the others.
set -euo pipefail

SCRIPT_DIR=$(cd -- "$(dirname -- "$0")" && pwd)
OUTPUT="$SCRIPT_DIR/bench_output.txt"
BENCH="$SCRIPT_DIR/build/bench/emerald_bench"

STATS_DIR=""
case "${1-}" in
--stats-out=* | --stats-json=*) STATS_DIR="${1#*=}" ;;
--stats-out | --stats-json) STATS_DIR="${2-}" ;;
"") ;;
*)
    echo "usage: $0 [--stats-out <dir>]" >&2
    exit 2
    ;;
esac

if [ ! -x "$BENCH" ]; then
    echo "run_benches.sh: $BENCH not built (cmake --build build)" >&2
    exit 2
fi

if [ -n "$STATS_DIR" ]; then
    mkdir -p "$STATS_DIR"
fi

: > "$OUTPUT"
failed=()
while IFS=$'\t' read -r name kind _desc; do
    [ "$kind" = "figure" ] || continue
    args=(--run "$name")
    if [ -n "$STATS_DIR" ]; then
        args+=("--stats-out=$STATS_DIR/$name.json")
    fi
    # `if ! cmd` keeps set -e from killing the loop on a bench failure.
    if ! "$BENCH" "${args[@]}" 2>&1 | tee -a "$OUTPUT"; then
        echo "BENCH_FAILED: $name" | tee -a "$OUTPUT" >&2
        failed+=("$name")
    fi
done < <("$BENCH" --list)

# micro_kernels is a google-benchmark binary; it does not take the
# emerald Config flags and is not in the scenario registry.
MICRO="$SCRIPT_DIR/build/bench/micro_kernels"
if [ -x "$MICRO" ]; then
    if ! "$MICRO" 2>&1 | tee -a "$OUTPUT"; then
        echo "BENCH_FAILED: micro_kernels" | tee -a "$OUTPUT" >&2
        failed+=("micro_kernels")
    fi
fi

if [ "${#failed[@]}" -gt 0 ]; then
    echo "FAILED_BENCHES: ${failed[*]}" | tee -a "$OUTPUT" >&2
    exit 1
fi
echo "ALL_BENCHES_DONE" >> "$OUTPUT"
