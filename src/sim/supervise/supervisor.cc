#include "sim/supervise/supervisor.hh"

#include <sys/types.h>
#include <sys/wait.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"

namespace emerald::supervise
{

namespace fs = std::filesystem;

namespace
{

/** Upper bound on one backoff sleep: a supervisor that naps for
 *  minutes between retries is worse than one that gives up. */
constexpr unsigned backoffCapMs = 30000;

/** Bytes of child log replayed into the failure diagnostic and the
 *  triage bundle. */
constexpr std::size_t logTailBytes = 4096;

std::string
attemptLogPath(const SupervisorOptions &opts, unsigned attempt)
{
    return strprintf("%s/attempt-%u.log", opts.runDir.c_str(), attempt);
}

std::string
markerPath(const SupervisorOptions &opts)
{
    return opts.runDir + "/done.marker";
}

std::string
hangReportPath(const SupervisorOptions &opts)
{
    return opts.runDir + "/hang-report.json";
}

/** Last @p n bytes of @p path ("" when unreadable). */
std::string
fileTail(const std::string &path, std::size_t n)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        return "";
    auto size = static_cast<std::size_t>(is.tellg());
    std::size_t want = std::min(size, n);
    is.seekg(static_cast<std::streamoff>(size - want));
    std::string out(want, '\0');
    is.read(out.data(), static_cast<std::streamsize>(want));
    return out;
}

/** Replay a completed attempt's log onto our stdout so a supervised
 *  run still prints what the scenario printed. */
void
replayLog(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return;
    char buf[4096];
    while (is.read(buf, sizeof(buf)) || is.gcount() > 0)
        std::fwrite(buf, 1, static_cast<std::size_t>(is.gcount()),
                    stdout);
    std::fflush(stdout);
}

/** Run one attempt: fork, redirect the child's output into the
 *  attempt log, run the callback, and return the raw wait status. */
int
runAttempt(const SupervisorOptions &opts, const ChildSpec &spec,
           const std::function<int(const ChildSpec &)> &child)
{
    std::error_code ec;
    fs::remove(markerPath(opts), ec);
    fs::remove(hangReportPath(opts), ec);

    pid_t pid = fork();
    fatal_if(pid < 0, "supervisor: fork failed for attempt %u",
             spec.attempt);
    if (pid == 0) {
        // Child. Capture stdout+stderr into the per-attempt log so a
        // crash leaves its last words behind for the triage bundle.
        std::string log = attemptLogPath(opts, spec.attempt);
        int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
        if (fd >= 0) {
            ::dup2(fd, 1);
            ::dup2(fd, 2);
            if (fd > 2)
                ::close(fd);
        }
        int rc = child(spec);
        if (rc == 0) {
            // The marker distinguishes a real completion from a child
            // that exited 0 without finishing (SpuriousExit).
            std::ofstream marker(markerPath(opts), std::ios::trunc);
            marker << "ok\n";
        }
        std::fflush(nullptr);
        _exit(rc);
    }

    // Parent. The kill-after deadline is a test hook: it injects a
    // mid-run SIGKILL into the first attempt only, so recovery can
    // be exercised deterministically from CI.
    int status = 0;
    if (opts.killAfterMs > 0 && spec.attempt == 0) {
        unsigned waitedMs = 0;
        while (waitedMs < opts.killAfterMs) {
            pid_t done = ::waitpid(pid, &status, WNOHANG);
            if (done == pid)
                return status;
            ::usleep(2000);
            waitedMs += 2;
        }
        ::kill(pid, SIGKILL);
    }
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

FailureRecord
classifyFailure(const SupervisorOptions &opts, unsigned attempt,
                int status, bool marker)
{
    FailureRecord rec;
    rec.attempt = attempt;
    std::error_code ec;
    bool hangReport = fs::exists(hangReportPath(opts), ec);
    if (hangReport) {
        // The watchdog got its report out before the process died:
        // trust it over the raw wait status (abort mode ends in
        // panic(), which looks like a plain crash from out here).
        rec.cls = FailureClass::Hang;
        rec.detail = "watchdog hang report at " + hangReportPath(opts);
        if (WIFSIGNALED(status))
            rec.signal = WTERMSIG(status);
        else if (WIFEXITED(status))
            rec.exitCode = WEXITSTATUS(status);
        return rec;
    }
    if (WIFSIGNALED(status)) {
        rec.signal = WTERMSIG(status);
        if (rec.signal == SIGKILL) {
            rec.cls = FailureClass::OomKilled;
            rec.detail = "SIGKILL (oom killer or external kill)";
        } else {
            rec.cls = FailureClass::Crash;
            rec.detail = strprintf("terminated by signal %d",
                                   rec.signal);
        }
        return rec;
    }
    rec.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (rec.exitCode == 0 && !marker) {
        rec.cls = FailureClass::SpuriousExit;
        rec.detail = "exit 0 without completion marker";
    } else {
        rec.cls = FailureClass::Crash;
        rec.detail = strprintf("exit code %d", rec.exitCode);
    }
    return rec;
}

void
writeSummary(const SupervisorOptions &opts,
             const SupervisorResult &result)
{
    std::ofstream os(opts.runDir + "/supervisor.json",
                     std::ios::trunc);
    if (!os) {
        warn("supervisor: cannot write %s/supervisor.json",
             opts.runDir.c_str());
        return;
    }
    os << "{\n";
    os << "  \"succeeded\": " << (result.succeeded ? "true" : "false")
       << ",\n";
    os << "  \"attempts\": " << result.attempts << ",\n";
    os << "  \"gave_up\": " << (result.gaveUp ? "true" : "false")
       << ",\n";
    os << "  \"final_exit_code\": " << result.finalExitCode << ",\n";
    os << "  \"failures\": [";
    for (std::size_t i = 0; i < result.failures.size(); ++i) {
        const FailureRecord &f = result.failures[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"class\": \"" << failureClassName(f.cls)
           << "\", \"signal\": " << f.signal
           << ", \"exit_code\": " << f.exitCode
           << ", \"attempt\": " << f.attempt
           << ", \"recovered_from_tick\": " << f.recoveredFromTick
           << ", \"detail\": \"" << jsonEscape(f.detail) << "\"}";
    }
    os << (result.failures.empty() ? "]" : "\n  ]") << "\n}\n";
}

/** Freeze the evidence of an unrecoverable run under
 *  <runDir>/triage/. */
void
writeTriageBundle(const SupervisorOptions &opts, unsigned lastAttempt)
{
    std::error_code ec;
    std::string dir = opts.runDir + "/triage";
    fs::create_directories(dir, ec);

    if (fs::exists(hangReportPath(opts), ec))
        fs::copy_file(hangReportPath(opts), dir + "/hang-report.json",
                      fs::copy_options::overwrite_existing, ec);

    std::ofstream tail(dir + "/log-tail.txt", std::ios::trunc);
    if (tail) {
        tail << fileTail(attemptLogPath(opts, lastAttempt),
                         logTailBytes);
    }

    // Checkpoint lineage: every rotation we can see, with its probe
    // verdict, so "which checkpoint should I restore by hand" has an
    // answer.
    std::ofstream lineage(dir + "/ckpt-lineage.txt", std::ios::trunc);
    if (lineage && !opts.ckptDir.empty() &&
        fs::exists(opts.ckptDir, ec)) {
        for (auto it = fs::recursive_directory_iterator(
                 opts.ckptDir, fs::directory_options::skip_permission_denied,
                 ec);
             it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_directory(ec))
                continue;
            std::string name = it->path().filename().string();
            if (name.rfind("auto-", 0) != 0)
                continue;
            CkptProbe probe =
                probeCheckpoint(it->path().string());
            lineage << it->path().string() << " "
                    << ckptIntegrityName(probe.status)
                    << " tick=" << probe.tick;
            if (!probe.detail.empty())
                lineage << " (" << probe.detail << ")";
            lineage << "\n";
        }
    }
}

} // namespace

const char *
failureClassName(FailureClass cls)
{
    switch (cls) {
      case FailureClass::Crash:
        return "crash";
      case FailureClass::Hang:
        return "hang";
      case FailureClass::CkptCorrupt:
        return "ckpt-corrupt";
      case FailureClass::OomKilled:
        return "oom-killed";
      case FailureClass::SpuriousExit:
        return "spurious-exit";
    }
    return "unknown";
}

std::string
newestUsableCheckpoint(const std::string &ckptDir,
                       std::vector<std::string> *corrupt, Tick *tick)
{
    if (tick)
        *tick = 0;
    std::error_code ec;
    if (ckptDir.empty() || !fs::exists(ckptDir, ec))
        return "";
    std::string best;
    Tick bestTick = 0;
    for (auto it = fs::recursive_directory_iterator(
             ckptDir, fs::directory_options::skip_permission_denied,
             ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_directory(ec))
            continue;
        std::string name = it->path().filename().string();
        if (name.rfind("auto-", 0) != 0)
            continue;
        std::string path = it->path().string();
        CkptProbe probe = probeCheckpoint(path);
        if (!probe.ok()) {
            if (corrupt) {
                corrupt->push_back(strprintf(
                    "%s: %s (%s)", path.c_str(),
                    ckptIntegrityName(probe.status),
                    probe.detail.c_str()));
            }
            continue;
        }
        if (best.empty() || probe.tick > bestTick) {
            best = path;
            bestTick = probe.tick;
        }
    }
    if (tick)
        *tick = bestTick;
    return best;
}

SupervisorResult
superviseRun(const SupervisorOptions &opts,
             const std::function<int(const ChildSpec &)> &child)
{
    fatal_if(opts.runDir.empty(),
             "supervisor: a run directory is required");
    std::error_code ec;
    fs::create_directories(opts.runDir, ec);
    fatal_if(ec && !fs::exists(opts.runDir, ec),
             "supervisor: cannot create run directory '%s'",
             opts.runDir.c_str());

    SupervisorResult result;
    bool havePrev = false;
    FailureClass prevCls = FailureClass::Crash;
    Tick prevTick = 0;

    for (unsigned attempt = 0; attempt <= opts.maxRetries; ++attempt) {
        ChildSpec spec;
        spec.attempt = attempt;
        spec.hangReportPath = hangReportPath(opts);
        if (attempt > 0) {
            // Restore from whatever survived. An empty restoreDir
            // means a cold rerun — still better than giving up.
            std::vector<std::string> corrupt;
            Tick tick = 0;
            spec.restoreDir =
                newestUsableCheckpoint(opts.ckptDir, &corrupt, &tick);
            for (const std::string &c : corrupt) {
                FailureRecord rec;
                rec.cls = FailureClass::CkptCorrupt;
                rec.attempt = attempt;
                rec.detail = c;
                result.failures.push_back(rec);
                warn("supervisor: %s", c.c_str());
            }
        }

        result.attempts = attempt + 1;
        int status = runAttempt(opts, spec, child);

        bool marker = fs::exists(markerPath(opts), ec);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0 && marker) {
            result.succeeded = true;
            result.finalExitCode = 0;
            replayLog(attemptLogPath(opts, attempt));
            if (attempt > 0) {
                inform("supervisor: run completed on attempt %u "
                       "after %zu classified failure(s)",
                       attempt, result.failures.size());
            }
            writeSummary(opts, result);
            return result;
        }

        FailureRecord rec =
            classifyFailure(opts, attempt, status, marker);
        result.finalExitCode =
            WIFEXITED(status) ? WEXITSTATUS(status) : -1;

        // What would the *next* attempt recover from? That tick is
        // the deterministic-failure fingerprint: the same class dying
        // with the same resume point twice in a row means a retry
        // replays the identical path.
        Tick nextTick = 0;
        newestUsableCheckpoint(opts.ckptDir, nullptr, &nextTick);
        rec.recoveredFromTick = nextTick;
        result.failures.push_back(rec);
        warn("supervisor: attempt %u failed: %s (%s); tail:\n%s",
             attempt, failureClassName(rec.cls), rec.detail.c_str(),
             fileTail(attemptLogPath(opts, attempt), 512).c_str());

        if (havePrev && prevCls == rec.cls && prevTick == nextTick) {
            warn("supervisor: deterministic failure (%s from tick "
                 "%llu twice in a row) — giving up, triage bundle in "
                 "%s/triage",
                 failureClassName(rec.cls),
                 (unsigned long long)nextTick, opts.runDir.c_str());
            result.gaveUp = true;
            writeTriageBundle(opts, attempt);
            writeSummary(opts, result);
            return result;
        }
        havePrev = true;
        prevCls = rec.cls;
        prevTick = nextTick;

        if (attempt == opts.maxRetries)
            break;
        unsigned backoffMs = std::min<unsigned>(
            backoffCapMs, opts.backoffBaseMs << attempt);
        if (backoffMs > 0) {
            inform("supervisor: retrying in %u ms (attempt %u/%u)",
                   backoffMs, attempt + 1, opts.maxRetries);
            ::usleep(backoffMs * 1000u);
        }
    }

    result.gaveUp = true;
    warn("supervisor: retry budget exhausted after %u attempt(s) — "
         "triage bundle in %s/triage",
         result.attempts, opts.runDir.c_str());
    writeTriageBundle(opts, result.attempts - 1);
    writeSummary(opts, result);
    return result;
}

} // namespace emerald::supervise
