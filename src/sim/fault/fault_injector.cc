#include "sim/fault/fault_injector.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/packet.hh"

namespace emerald::fault
{

namespace
{

/** Heal horizon for open-ended offer-burst sites: lists starved by an
 *  injected rejection are force-woken at most this much later. */
constexpr Tick openEndedFlushDelay = ticksFromUs(5);

} // namespace

FaultInjector::FaultInjector(EventQueue &eq, StatGroup &parent,
                             FaultPlan plan, std::uint64_t seed)
    : _group(parent, "fault"),
      statOfferRejects(_group, "offer_rejects",
                       "offers force-rejected by the fault injector"),
      statStalls(_group, "stalls",
                 "DRAM issue attempts frozen by a stall window"),
      statLinkDelays(_group, "link_delays",
                     "NoC deliveries given extra injected latency"),
      statWakesSuppressed(_group, "wake_suppressed",
                          "retry wakeups swallowed (lost-wakeup model)"),
      statDupWakes(_group, "dup_wakes",
                   "spurious duplicate retry wakeups injected"),
      _eq(eq), _plan(std::move(plan)), _rng(seed),
      _flushEvent([this] { flushPending(); }, "fault-flush")
{
}

FaultInjector::~FaultInjector() = default;

FaultSite *
FaultInjector::pickSite(FaultKind kind, const std::string &name, Tick now)
{
    for (FaultSite &site : _plan.sites()) {
        if (site.kind != kind || !site.matches(name))
            continue;
        if (site.injected >= site.count || !site.activeAt(now))
            continue;
        // Roll the RNG only after every deterministic filter passed, so
        // sites that never open leave the random stream untouched.
        if (site.prob < 1.0 && !_rng.chance(site.prob))
            continue;
        return &site;
    }
    return nullptr;
}

bool
FaultInjector::injectOfferReject(RetryList &list, MemRequestor &req)
{
    Tick now = _eq.curTick();
    FaultSite *site = pickSite(FaultKind::OfferBurst, list.owner(), now);
    if (!site)
        return false;
    ++site->injected;
    ++statOfferRejects;
    _faulted.insert(&req);

    if (std::find(_pendingFlush.begin(), _pendingFlush.end(), &list) ==
        _pendingFlush.end())
        _pendingFlush.push_back(&list);

    // Heal at the window's end: the sink believes nothing was enqueued,
    // so no natural capacity-freed wake is owed to this requestor.
    Tick end = site->windowEnd(now);
    Tick flush_at = std::min(end, now + openEndedFlushDelay);
    if (!_flushEvent.scheduled())
        _eq.schedule(_flushEvent, flush_at);
    else if (flush_at < _flushEvent.when())
        _eq.reschedule(_flushEvent, flush_at);
    return true;
}

Tick
FaultInjector::issueStallEnd(const std::string &name, Tick now)
{
    FaultSite *site = pickSite(FaultKind::DramStall, name, now);
    if (!site)
        return now;
    ++site->injected;
    ++statStalls;
    // dram-stall sites require len > 0, so the window end is finite
    // and strictly after now: the channel re-arms its issue event
    // there and progress resumes.
    return site->windowEnd(now);
}

Tick
FaultInjector::extraLinkDelay(const std::string &name)
{
    FaultSite *site =
        pickSite(FaultKind::LinkDelay, name, _eq.curTick());
    if (!site)
        return 0;
    ++site->injected;
    ++statLinkDelays;
    return site->delay;
}

bool
FaultInjector::suppressWake(const RetryList &list, MemRequestor *req)
{
    FaultSite *site =
        pickSite(FaultKind::WakeSuppress, list.owner(), _eq.curTick());
    if (!site)
        return false;
    ++site->injected;
    ++statWakesSuppressed;
    _faulted.insert(req);
    return true;
}

bool
FaultInjector::duplicateWake(const RetryList &list, MemRequestor *req)
{
    FaultSite *site =
        pickSite(FaultKind::DupWake, list.owner(), _eq.curTick());
    if (!site)
        return false;
    ++site->injected;
    ++statDupWakes;
    // The duplicate wake is spurious by protocol spec, but the mirror
    // checker would see a wake of an unregistered requestor; mark the
    // victim so deliberate noise is not reported as a bug.
    _faulted.insert(req);
    return true;
}

std::uint64_t
FaultInjector::injections() const
{
    std::uint64_t total = 0;
    for (const FaultSite &site : _plan.sites())
        total += site.injected;
    return total;
}

void
FaultInjector::flushPending()
{
    std::vector<RetryList *> lists;
    lists.swap(_pendingFlush);
    for (RetryList *list : lists) {
        // Force-wake everyone parked at flush time, once each: woken
        // requestors may legitimately re-register (real capacity may
        // still be short), so bound the loop by the starting size.
        std::size_t budget = list->size();
        while (budget-- > 0 && list->wakeOne(/*force=*/true)) {
        }
    }
}

} // namespace emerald::fault
