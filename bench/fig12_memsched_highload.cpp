/**
 * @file
 * Paper Fig. 12: performance under the high-load scenario
 * (133 Mb/s/pin DRAM): total frame time and GPU rendering time,
 * normalized to BAS.
 * Expected shape: HMC ~+45% GPU time; DASH +9-16%; larger models
 * (M1/M3) hurt most.
 */

#include "harness.hh"

using namespace emerald;
using namespace emerald::bench;

int
main(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig12_memsched_highload");
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 12: high-load scenario, normalized to BAS "
                "===\n");

    auto models = caseStudy1Models();
    if (quick)
        models = {scenes::WorkloadId::M2_Cube};
    auto configs = allMemConfigs();

    std::printf("%-14s | %-35s | %-35s\n", "",
                "total frame time", "GPU rendering time");
    std::printf("%-14s | %8s %8s %8s %8s | %8s %8s %8s %8s\n",
                "model", "BAS", "DCB", "DTB", "HMC", "BAS", "DCB",
                "DTB", "HMC");

    std::vector<double> avg_total(4, 0.0), avg_gpu(4, 0.0);
    for (scenes::WorkloadId model : models) {
        std::vector<double> total_ms, gpu_ms;
        for (soc::MemConfig config : configs) {
            soc::SocTop soc(caseStudy1Params(model, config, true),
                            harness.builder());
            soc.run();
            total_ms.push_back(soc.meanTotalFrameMs());
            gpu_ms.push_back(soc.meanGpuFrameMs());
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(config) +
                               ".events",
                           static_cast<double>(
                               soc.sim().eventQueue().numProcessed()));
        }
        std::printf("%-14s |", scenes::workloadName(model));
        for (std::size_t i = 0; i < 4; ++i) {
            double n = total_ms[i] / total_ms[0];
            avg_total[i] += n;
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(configs[i]) +
                               ".total_ms_norm",
                           n);
            std::printf(" %8.3f", n);
        }
        std::printf(" |");
        for (std::size_t i = 0; i < 4; ++i) {
            double n = gpu_ms[i] / gpu_ms[0];
            avg_gpu[i] += n;
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(configs[i]) +
                               ".gpu_ms_norm",
                           n);
            std::printf(" %8.3f", n);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-14s |", "AVG");
    for (double v : avg_total)
        std::printf(" %8.3f", v / static_cast<double>(models.size()));
    std::printf(" |");
    for (double v : avg_gpu)
        std::printf(" %8.3f", v / static_cast<double>(models.size()));
    std::printf("\n\npaper shape: HMC ~1.45x GPU time; DASH ~1.1-1.16x "
                "on the larger models\n");
    return 0;
}
