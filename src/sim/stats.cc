#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"

namespace emerald
{

Stat::Stat(StatGroup &parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    parent.addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << _value << " # " << desc() << "\n";
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _count += count;
    _sum += v * count;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = 0.0;
    _min = 0.0;
    _max = 0.0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".count " << _count << " # " << desc()
       << " (samples)\n";
    os << prefix << name() << ".mean " << mean() << " # " << desc()
       << " (mean)\n";
    os << prefix << name() << ".min " << min() << " # " << desc()
       << " (min)\n";
    os << prefix << name() << ".max " << max() << " # " << desc()
       << " (max)\n";
}

void
TimeSeries::add(Tick when, double value)
{
    std::size_t idx = static_cast<std::size_t>(when / _bucketWidth);
    if (idx >= _buckets.size())
        _buckets.resize(idx + 1, 0.0);
    _buckets[idx] += value;
}

void
TimeSeries::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".nbuckets " << _buckets.size() << " # "
       << desc() << "\n";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        os << prefix << name() << "[" << i << "] " << _buckets[i]
           << " # " << desc() << "\n";
    }
}

StatGroup::StatGroup(std::string name)
    : _name(std::move(name))
{
}

StatGroup::StatGroup(StatGroup &parent, std::string name)
    : _parent(&parent), _name(std::move(name))
{
    parent.addChild(this);
}

StatGroup::~StatGroup()
{
    if (_parent)
        _parent->removeChild(this);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(_children.begin(), _children.end(), child);
    if (it != _children.end())
        _children.erase(it);
}

std::string
StatGroup::fullStatName() const
{
    if (!_parent)
        return _name;
    std::string parent_name = _parent->fullStatName();
    if (parent_name.empty())
        return _name;
    return parent_name + "." + _name;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (const Stat *stat : _stats)
        stat->dump(os, prefix);
    for (const StatGroup *child : _children)
        child->dumpStats(os);
}

void
StatGroup::resetStats()
{
    for (Stat *stat : _stats)
        stat->reset();
    for (StatGroup *child : _children)
        child->resetStats();
}

} // namespace emerald
