/**
 * @file
 * Work-tile (WT) mapping: how TC tiles are assigned to SIMT cores
 * (paper Fig. 15 and case study II).
 *
 * Screen space is divided into TC tiles. A WT of size N groups N x N
 * TC tiles; WTs are assigned to cores round-robin. WT=1 maximizes
 * load balance; large WTs maximize locality. DFSL tunes N per frame.
 */

#ifndef EMERALD_CORE_WT_MAPPING_HH
#define EMERALD_CORE_WT_MAPPING_HH

#include "core/rasterizer.hh"
#include "sim/types.hh"

namespace emerald::core
{

/** TC tile edge length in raster tiles (paper Table 7: 2x2). */
constexpr unsigned tcTileRasterTiles = 2;
/** TC tile edge length in pixels (2 x 4 = 8). */
constexpr unsigned tcTilePx = tcTileRasterTiles * rasterTilePx;

class WtMapping
{
  public:
    WtMapping(unsigned fb_width, unsigned fb_height, unsigned num_cores,
              unsigned wt_size = 1);

    void setWtSize(unsigned wt_size);
    unsigned wtSize() const { return _wtSize; }

    unsigned tcCols() const { return _tcCols; }
    unsigned tcRows() const { return _tcRows; }
    unsigned numCores() const { return _numCores; }

    /** Core owning TC tile (tc_x, tc_y). */
    unsigned coreOf(unsigned tc_x, unsigned tc_y) const;

    /** Core owning the TC tile containing pixel (x, y). */
    unsigned
    coreOfPixel(unsigned x, unsigned y) const
    {
        return coreOf(x / tcTilePx, y / tcTilePx);
    }

    /** Flat TC tile index (for interlock maps). */
    unsigned
    tcIndex(unsigned tc_x, unsigned tc_y) const
    {
        return tc_y * _tcCols + tc_x;
    }

  private:
    unsigned _tcCols;
    unsigned _tcRows;
    unsigned _numCores;
    unsigned _wtSize;
};

} // namespace emerald::core

#endif // EMERALD_CORE_WT_MAPPING_HH
