#include "gpu/gpu_top.hh"

#include "mem/traffic_trace.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::gpu
{

GpuTopParams
defaultGpuParams()
{
    GpuTopParams p;
    p.numClusters = 6;
    p.coresPerCluster = 1;

    // Per-core L1 caches (paper Table 7).
    p.core.l1i = {4 * 1024, 4, 128, 4, 8, 4, 8};
    p.core.l1d = {32 * 1024, 8, 128, 12, 32, 8, 16};
    p.core.l1t = {48 * 1024, 24, 128, 16, 32, 8, 16};
    p.core.l1z = {32 * 1024, 8, 128, 12, 32, 8, 16};
    p.core.l1c = {16 * 1024, 8, 128, 8, 16, 8, 16};

    // Shared L2 (paper Table 7: 2 MB, 32-way, 128 B lines).
    p.l2 = {2 * 1024 * 1024, 32, 128, 24, 64, 8, 32};

    p.clusterLink.latency = ticksFromNs(4.0);
    p.clusterLink.bytesPerSec = 32e9;
    p.clusterLink.queueDepth = 32;
    p.memLink.latency = ticksFromNs(10.0);
    p.memLink.bytesPerSec = 0.0; // Memory bandwidth limits apply below.
    p.memLink.queueDepth = 64;
    return p;
}

GpuTop::GpuTop(Simulation &sim, const std::string &name,
               ClockDomain &core_clock, const GpuTopParams &params,
               MemSink &memory_below)
    : SimObject(sim, name), _params(params), _coreClock(core_clock)
{
    registerProfileCounters();
    cache::CacheParams l2p = params.l2;
    l2p.trafficClass = TrafficClass::Gpu;
    l2p.requestorId = gpuRequestorId;
    _l2 = std::make_unique<cache::Cache>(sim, name + ".l2", core_clock,
                                         l2p);

    _memLink = std::make_unique<noc::Link>(sim, name + ".memlink",
                                           params.memLink);
    _memLink->setTarget(memory_below);
    _l2->setDownstream(*_memLink);

    for (unsigned i = 0; i < params.numCores(); ++i) {
        _coreLinks.push_back(std::make_unique<noc::Link>(
            sim, name + ".xbar" + std::to_string(i),
            params.clusterLink));
        _coreLinks.back()->setTarget(*_l2);
        _cores.push_back(std::make_unique<SimtCore>(
            sim, name + ".sc" + std::to_string(i), core_clock,
            params.core, *_coreLinks.back()));
    }
}

bool
GpuTop::allCoresIdle() const
{
    for (const auto &core : _cores) {
        if (!core->idle())
            return false;
    }
    return true;
}

void
GpuTop::setTrafficCapture(mem::TrafficTraceWriter *writer)
{
    for (auto &core : _cores) {
        unsigned client = writer ? writer->addClient(core->name()) : 0;
        core->setTrafficCapture(writer, client);
    }
}

std::uint64_t
GpuTop::l1Misses(AccessKind kind)
{
    std::uint64_t total = 0;
    for (auto &core : _cores) {
        total += static_cast<std::uint64_t>(
            core->l1ForKind(kind).statMisses.value());
    }
    return total;
}

} // namespace emerald::gpu
