// Fixture for tools/emerald_analyze.py:
// cross-component-reach-through.
//
// Self-contained stand-ins for the simulator's class names: the rule
// keys on a SimObject-derived class holding a raw pointer/reference
// to another SimObject-derived type, with interface types (MemSink,
// EventQueue, ...) exempt.

class SimObject
{
  public:
    virtual ~SimObject() = default;
};

class MemSink
{
  public:
    virtual ~MemSink() = default;
};

class Cache : public SimObject
{
  public:
    int level = 0;
};

class Gpu : public SimObject
{
  public:
    Cache *l2 = nullptr; // EXPECT: cross-component-reach-through
    MemSink *port = nullptr; // interface seam: clean
    int id = 0;
};
