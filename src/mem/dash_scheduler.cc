#include "mem/dash_scheduler.hh"

#include <algorithm>
#include <numeric>

#include "mem/frfcfs_scheduler.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::mem
{

DashCoordinator::DashCoordinator(Simulation &sim, const std::string &name,
                                 const DashParams &params)
    : SimObject(sim, name), _params(params),
      _cpuBytesThisQuantum(params.numCpuCores, 0),
      _cpuIsIntensive(params.numCpuCores, false),
      _p(params.initialP), _rng(params.seed),
      _switchEvent([this] { switchingTick(); }, name + ".switch"),
      _quantumEvent([this] { quantumTick(); }, name + ".quantum")
{
    registerCheckpointEvent(_switchEvent);
    registerCheckpointEvent(_quantumEvent);
    scheduleIn(_switchEvent, _params.switchingUnit);
    scheduleIn(_quantumEvent, _params.quantum);
}

int
DashCoordinator::registerIp(const std::string &ip_name,
                            TrafficClass tclass,
                            double emergent_threshold)
{
    panic_if(tclass == TrafficClass::Cpu, "CPUs are not DASH IPs");
    IpState state;
    state.name = ip_name;
    state.tclass = tclass;
    state.emergentThreshold = emergent_threshold;
    _ips.push_back(state);
    int id = static_cast<int>(_ips.size()) - 1;
    _ipOfClass[static_cast<int>(tclass)] = id;
    return id;
}

void
DashCoordinator::beginIpPeriod(int ip, Tick period, double total_work)
{
    IpState &state = _ips.at(static_cast<std::size_t>(ip));
    state.active = true;
    state.periodStart = curTick();
    state.period = period;
    state.workTotal = total_work;
    state.workDone = 0.0;
}

void
DashCoordinator::addIpProgress(int ip, double work_done)
{
    _ips.at(static_cast<std::size_t>(ip)).workDone += work_done;
}

void
DashCoordinator::endIpPeriod(int ip)
{
    _ips.at(static_cast<std::size_t>(ip)).active = false;
}

bool
DashCoordinator::ipUrgent(int ip, Tick now) const
{
    const IpState &state = _ips.at(static_cast<std::size_t>(ip));
    if (!state.active || state.period == 0 || state.workTotal <= 0.0)
        return false;
    double expected =
        std::min(1.0, static_cast<double>(now - state.periodStart) /
                          static_cast<double>(state.period));
    // Grace window: an IP that has barely entered its period is not
    // behind yet (avoids flagging every frame urgent at t=0+).
    if (expected < 0.02)
        return false;
    double actual = state.workDone / state.workTotal;
    return actual < state.emergentThreshold * expected;
}

bool
DashCoordinator::cpuIntensive(unsigned core) const
{
    if (core >= _cpuIsIntensive.size())
        return false;
    return _cpuIsIntensive[core];
}

int
DashCoordinator::priorityOf(const MemPacket &pkt, Tick now) const
{
    if (pkt.tclass == TrafficClass::Cpu) {
        bool intensive =
            cpuIntensive(static_cast<unsigned>(pkt.requestorId));
        if (!intensive)
            return 1;
        return _favourIntensiveCpu ? 2 : 3;
    }
    int ip = _ipOfClass[static_cast<int>(pkt.tclass)];
    if (ip >= 0 && ipUrgent(ip, now))
        return 0;
    return _favourIntensiveCpu ? 3 : 2;
}

void
DashCoordinator::serviced(const MemPacket &pkt, Tick now)
{
    if (pkt.tclass == TrafficClass::Cpu) {
        auto core = static_cast<unsigned>(pkt.requestorId);
        if (core < _cpuBytesThisQuantum.size())
            _cpuBytesThisQuantum[core] += pkt.size;
        if (cpuIntensive(core))
            ++_servedIntensiveCpu;
    } else {
        int ip = _ipOfClass[static_cast<int>(pkt.tclass)];
        if (ip >= 0) {
            _ips[static_cast<std::size_t>(ip)].bytesThisQuantum +=
                pkt.size;
            if (!ipUrgent(ip, now))
                ++_servedNonUrgentIp;
        }
    }
}

void
DashCoordinator::switchingTick()
{
    // Balance service between intensive CPU cores and non-urgent IPs
    // by steering the switch probability toward the starved side.
    if (_servedIntensiveCpu < _servedNonUrgentIp)
        _p = std::min(0.95, _p + _params.pStep);
    else if (_servedIntensiveCpu > _servedNonUrgentIp)
        _p = std::max(0.05, _p - _params.pStep);
    _servedIntensiveCpu = 0;
    _servedNonUrgentIp = 0;
    _favourIntensiveCpu = _rng.chance(_p);
    scheduleIn(_switchEvent, _params.switchingUnit);
}

void
DashCoordinator::recluster()
{
    std::uint64_t cpu_total = std::accumulate(
        _cpuBytesThisQuantum.begin(), _cpuBytesThisQuantum.end(),
        std::uint64_t(0));
    std::uint64_t total = cpu_total;
    if (_params.useTotalBandwidth) {
        for (const IpState &ip : _ips)
            total += ip.bytesThisQuantum;
    }

    // TCM-style clustering: walk cores from lightest to heaviest;
    // cores within the first clusterThresh fraction of the total
    // bandwidth form the latency-sensitive (non-intensive) cluster.
    std::vector<unsigned> order(_cpuBytesThisQuantum.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](unsigned a, unsigned b) {
                         return _cpuBytesThisQuantum[a] <
                                _cpuBytesThisQuantum[b];
                     });

    double budget = _params.clusterThresh * static_cast<double>(total);
    double used = 0.0;
    for (unsigned core : order) {
        used += static_cast<double>(_cpuBytesThisQuantum[core]);
        _cpuIsIntensive[core] = used > budget;
    }

    for (auto &bytes : _cpuBytesThisQuantum)
        bytes = 0;
    for (IpState &ip : _ips)
        ip.bytesThisQuantum = 0;
}

void
DashCoordinator::quantumTick()
{
    recluster();
    scheduleIn(_quantumEvent, _params.quantum);
}

void
DashCoordinator::shutdown()
{
    descheduleIfPending(_switchEvent);
    descheduleIfPending(_quantumEvent);
}

void
DashCoordinator::serialize(CheckpointOut &out) const
{
    out.putU64("num_ips", _ips.size());
    for (std::size_t i = 0; i < _ips.size(); ++i) {
        const IpState &ip = _ips[i];
        std::string prefix = strprintf("ip%zu", i);
        out.putStr(prefix + ".name", ip.name);
        out.putBool(prefix + ".active", ip.active);
        out.putTick(prefix + ".period_start", ip.periodStart);
        out.putTick(prefix + ".period", ip.period);
        out.putF64(prefix + ".work_total", ip.workTotal);
        out.putF64(prefix + ".work_done", ip.workDone);
        out.putU64(prefix + ".bytes_this_quantum",
                   ip.bytesThisQuantum);
    }

    out.putU64Vec("cpu_bytes_this_quantum", _cpuBytesThisQuantum);
    std::vector<std::uint64_t> intensive(_cpuIsIntensive.begin(),
                                         _cpuIsIntensive.end());
    out.putU64Vec("cpu_is_intensive", intensive);

    out.putBool("favour_intensive_cpu", _favourIntensiveCpu);
    out.putF64("p", _p);
    out.putU64("served_intensive_cpu", _servedIntensiveCpu);
    out.putU64("served_non_urgent_ip", _servedNonUrgentIp);

    auto rng = _rng.state();
    out.putU64Vec("rng", {rng[0], rng[1], rng[2], rng[3]});
}

void
DashCoordinator::unserialize(CheckpointIn &in)
{
    // IPs are registered during topology construction; the checkpoint
    // only carries their dynamic progress.
    std::uint64_t num_ips = in.getU64("num_ips");
    fatal_if(num_ips != _ips.size(),
             "%s: checkpoint holds %llu DASH IPs but this "
             "configuration registered %zu",
             name().c_str(), (unsigned long long)num_ips, _ips.size());
    for (std::size_t i = 0; i < _ips.size(); ++i) {
        IpState &ip = _ips[i];
        std::string prefix = strprintf("ip%zu", i);
        std::string saved_name = in.getStr(prefix + ".name");
        fatal_if(saved_name != ip.name,
                 "%s: checkpoint IP %zu is '%s' but this run "
                 "registered '%s'", name().c_str(), i,
                 saved_name.c_str(), ip.name.c_str());
        ip.active = in.getBool(prefix + ".active");
        ip.periodStart = in.getTick(prefix + ".period_start");
        ip.period = in.getTick(prefix + ".period");
        ip.workTotal = in.getF64(prefix + ".work_total");
        ip.workDone = in.getF64(prefix + ".work_done");
        ip.bytesThisQuantum = in.getU64(prefix + ".bytes_this_quantum");
    }

    _cpuBytesThisQuantum = in.getU64Vec("cpu_bytes_this_quantum");
    auto intensive = in.getU64Vec("cpu_is_intensive");
    fatal_if(_cpuBytesThisQuantum.size() != _cpuIsIntensive.size() ||
             intensive.size() != _cpuIsIntensive.size(),
             "%s: checkpoint CPU core count mismatch", name().c_str());
    for (std::size_t c = 0; c < intensive.size(); ++c)
        _cpuIsIntensive[c] = intensive[c] != 0;

    _favourIntensiveCpu = in.getBool("favour_intensive_cpu");
    _p = in.getF64("p");
    _servedIntensiveCpu = in.getU64("served_intensive_cpu");
    _servedNonUrgentIp = in.getU64("served_non_urgent_ip");

    auto rng = in.getU64Vec("rng");
    fatal_if(rng.size() != 4, "%s: bad rng state", name().c_str());
    _rng.setState({rng[0], rng[1], rng[2], rng[3]});
}

std::size_t
DashScheduler::pick(const DramChannel &channel,
                    const std::vector<QueueEntry> &queue, Tick now)
{
    int best = 4;
    for (const QueueEntry &entry : queue)
        best = std::min(best, _coordinator.priorityOf(*entry.pkt, now));

    std::size_t choice = FrfcfsScheduler::pickAmong(
        channel, queue, [&](std::size_t i) {
            return _coordinator.priorityOf(*queue[i].pkt, now) == best;
        });
    panic_if(choice >= queue.size(), "DASH found no eligible request");
    return choice;
}

void
DashScheduler::serviced(const MemPacket &pkt, Tick now)
{
    _coordinator.serviced(pkt, now);
}

} // namespace emerald::mem
