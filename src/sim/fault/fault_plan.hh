/**
 * @file
 * Declarative description of a fault-injection campaign, parsed from
 * the --fault-plan config string (docs/fault_injection.md).
 *
 * A plan is a semicolon-separated list of fault sites:
 *
 *   kind(key=value,key=value);kind2(...)
 *
 * Kinds (each attaches at one protocol seam):
 *   offer-burst    MemSink::offer() / DramChannel::enqueue() forced
 *                  rejections while a window is open.
 *   dram-stall     DramChannel issue path frozen while a window is
 *                  open (refresh-storm / thermal-throttle style).
 *   link-delay     extra delivery latency on matching noc::Links.
 *   dup-wake       a successful RetryList wake is followed by a
 *                  spurious duplicate retryRequest().
 *   wake-suppress  a RetryList wake is swallowed: the waiter stays
 *                  parked and the wake is lost (lost-wakeup model).
 *
 * Keys: match (substring of the sink/component name, empty = all),
 * start/len/period (durations: "250us", "3ms", "1000" raw ticks),
 * prob (0..1 per-opportunity probability), count (max injections),
 * delay (link-delay only: extra latency).
 *
 * Every stochastic decision draws from one Random seeded by
 * --fault-seed, so a campaign replays exactly.
 */

#ifndef EMERALD_SIM_FAULT_FAULT_PLAN_HH
#define EMERALD_SIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald::fault
{

enum class FaultKind : std::uint8_t
{
    OfferBurst,
    DramStall,
    LinkDelay,
    DupWake,
    WakeSuppress,
};

const char *faultKindName(FaultKind kind);

/** One fault site: a kind, a target filter, and a timing window. */
struct FaultSite
{
    FaultKind kind = FaultKind::OfferBurst;
    /** Substring match on the sink/component name; empty = all. */
    std::string match;
    /** First window opens at this tick. */
    Tick start = 0;
    /** Window length; 0 = open-ended (from start onwards). */
    Tick len = 0;
    /** Window repeat period; 0 = single window. */
    Tick period = 0;
    /** Per-opportunity injection probability. */
    double prob = 1.0;
    /** Injection budget; the site goes inert once spent. */
    std::uint64_t count = ~std::uint64_t(0);
    /** link-delay: extra delivery latency. */
    Tick delay = 0;

    /** Injections performed so far (runtime state). */
    std::uint64_t injected = 0;

    /** True when @p name passes this site's match filter. */
    bool
    matches(const std::string &name) const
    {
        return match.empty() || name.find(match) != std::string::npos;
    }

    /** True when a window is open at @p now (budget not considered). */
    bool activeAt(Tick now) const;

    /** Tick at which the window open at @p now closes. @pre activeAt. */
    Tick windowEnd(Tick now) const;
};

/**
 * A parsed --fault-plan. Sites keep per-site runtime counters, so one
 * FaultPlan instance belongs to one FaultInjector.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse the --fault-plan grammar above; fatal() with the offending
     * token on a syntax error. An empty/whitespace string yields an
     * empty plan.
     */
    static FaultPlan parse(const std::string &text);

    bool empty() const { return _sites.empty(); }
    std::vector<FaultSite> &sites() { return _sites; }
    const std::vector<FaultSite> &sites() const { return _sites; }

  private:
    std::vector<FaultSite> _sites;
};

/**
 * Parse a duration token: a float with an ns/us/ms/s suffix, or a
 * bare integer tick count. fatal() on malformed input; @p what names
 * the value in the error message.
 */
Tick parseDuration(const std::string &text, const std::string &what);

} // namespace emerald::fault

#endif // EMERALD_SIM_FAULT_FAULT_PLAN_HH
