#include "sim/fault/watchdog.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/fault/domain.hh"
#include "sim/logging.hh"
#include "sim/packet.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace emerald::fault
{

namespace
{

/** Backoff cap: a persistent hang in degrade mode settles at this
 *  multiple of the base budget between recoveries. */
constexpr Tick backoffCap = 8;

/** Force-wakes one waiter may absorb (without the lists ever fully
 *  draining) before degrade mode concedes the hang is persistent and
 *  escalates to abort-with-report. */
constexpr unsigned degradeWakeCap = 16;

} // namespace

WatchdogMode
watchdogModeFromString(const std::string &text)
{
    if (text == "abort")
        return WatchdogMode::Abort;
    if (text == "degrade")
        return WatchdogMode::Degrade;
    fatal("--watchdog-mode: expected 'abort' or 'degrade', got '%s'",
          text.c_str());
}

ProgressWatchdog::ProgressWatchdog(Simulation &sim, StatGroup &parent,
                                   Tick budget, WatchdogMode mode)
    : _group(parent, "watchdog"),
      statChecks(_group, "checks", "watchdog heartbeats processed"),
      statHangs(_group, "hangs", "no-progress windows detected"),
      statForcedWakes(_group, "forced_wakes",
                      "parked waiters force-woken by degrade recovery"),
      statStaleWakes(_group, "stale_wakes",
                     "stuck list heads force-woken by the stale-front "
                     "sweep"),
      _sim(sim), _budget(budget), _currentBudget(budget), _mode(mode),
      _beatEvent([this] { beat(); }, "watchdog-beat",
                 Event::statsPriority)
{
    panic_if(budget == 0, "watchdog budget must be nonzero");
}

void
ProgressWatchdog::arm()
{
    EventQueue &eq = _sim.eventQueue();
    if (!_beatEvent.scheduled())
        eq.schedule(_beatEvent, eq.curTick() + _currentBudget);
    _lastFrees = _sim.packetPool().statFrees.value();
}

bool
ProgressWatchdog::parkedWaiters() const
{
    for (const RetryList *list : _sim.faultDomain().lists())
        if (!list->empty())
            return true;
    return false;
}

void
ProgressWatchdog::beat()
{
    ++statChecks;
    EventQueue &eq = _sim.eventQueue();
    double frees = _sim.packetPool().statFrees.value();
    bool progress = frees != _lastFrees;
    _lastFrees = frees;

    if (progress || !parkedWaiters()) {
        // Healthy (or merely idle with nobody blocked): reset the
        // backoff and keep beating while the simulation is alive. No
        // re-arm on an empty queue — the heartbeat must never keep a
        // finished simulation running.
        //
        // Global progress can mask partial starvation (one subsystem
        // deadlocked while unrelated traffic completes), so degrade
        // mode still sweeps for waiters stuck at a list head.
        if (_mode == WatchdogMode::Degrade)
            sweepStaleFronts();
        // A fully drained set of retry lists forgives past force-wake
        // debt: the escalation cap only charges waiters that never
        // managed to leave.
        if (!parkedWaiters())
            _forcedWakeCount.clear();
        _currentBudget = _budget;
        if (!eq.empty())
            eq.schedule(_beatEvent, eq.curTick() + _currentBudget);
        return;
    }

    ++statHangs;
    _lastReport = buildReport();

    if (_mode == WatchdogMode::Abort)
        abortWithReport("hang");

    warn("%s", _lastReport.c_str());
    degradeRecover();
    _currentBudget = std::min(_currentBudget * 2, _budget * backoffCap);
    if (!eq.empty())
        eq.schedule(_beatEvent, eq.curTick() + _currentBudget);
}

std::string
ProgressWatchdog::buildReport()
{
    EventQueue &eq = _sim.eventQueue();
    PacketPool &pool = _sim.packetPool();
    std::ostringstream os;
    os << "PROGRESS WATCHDOG: no packet completed for " << _currentBudget
       << " ticks with requestors blocked (now=" << eq.curTick()
       << ", mode="
       << (_mode == WatchdogMode::Abort ? "abort" : "degrade") << ")";
    os << "\n  event queue: " << eq.size()
       << " live events, head: " << eq.headSummary();
    os << "\n  packet pool: live=" << pool.live()
       << " allocs=" << static_cast<std::uint64_t>(pool.statAllocs.value())
       << " frees=" << static_cast<std::uint64_t>(pool.statFrees.value());
    os << "\n  parked retry waiters:";
    bool any = false;
    for (const RetryList *list : _sim.faultDomain().lists()) {
        if (list->empty())
            continue;
        any = true;
        os << "\n    " << list->owner() << " <-";
        for (const MemRequestor *req : list->waiters())
            os << " " << req->requestorName();
    }
    if (!any)
        os << " (none)";
    os << "\n  component diagnostics:";
    bool diag = false;
    for (SimObject *obj : _sim.objects()) {
        std::ostringstream line;
        obj->hangDiagnostics(line);
        if (line.str().empty())
            continue;
        diag = true;
        os << "\n    " << obj->name() << ": " << line.str();
    }
    if (!diag)
        os << " (none)";
    return os.str();
}

void
ProgressWatchdog::degradeRecover()
{
    // Force-wake everyone parked right now, once each. force=true
    // bypasses wake-suppress injection — recovery must not be eaten
    // by the very fault it recovers from.
    for (RetryList *list : _sim.faultDomain().lists()) {
        std::size_t budget = list->size();
        while (budget-- > 0) {
            chargeForcedWake(list);
            if (!list->wakeOne(/*force=*/true))
                break;
            ++statForcedWakes;
        }
    }
    for (SimObject *obj : _sim.objects())
        obj->onWatchdogDegrade();
}

void
ProgressWatchdog::chargeForcedWake(const RetryList *list)
{
    if (list->empty())
        return;
    const MemRequestor *head = list->waiters().front();
    unsigned &count = _forcedWakeCount[head];
    if (++count <= degradeWakeCap)
        return;
    // One waiter has absorbed a full cap of force-wakes without the
    // lists ever draining: this hang is deterministic, and degrade
    // mode spinning on it forever would just hide it. Escalate with a
    // fresh report so the supervisor sees the final state.
    _lastReport = buildReport();
    _lastReport += strprintf(
        "\n  DEGRADE ESCALATION: waiter '%s' absorbed %u force-wakes "
        "on list '%s' without recovering (cap %u)",
        head->requestorName().c_str(), count, list->owner().c_str(),
        degradeWakeCap);
    abortWithReport("degrade-escalation");
}

void
ProgressWatchdog::abortWithReport(const char *kind)
{
    const std::string &path = _sim.hangReportPath();
    if (!path.empty()) {
        EventQueue &eq = _sim.eventQueue();
        PacketPool &pool = _sim.packetPool();
        std::ofstream os(path, std::ios::trunc);
        if (!os) {
            warn("cannot write hang report to '%s'", path.c_str());
        } else {
            os << "{\n";
            os << "  \"kind\": \"" << jsonEscape(kind) << "\",\n";
            os << "  \"tick\": " << eq.curTick() << ",\n";
            os << "  \"budget\": " << _currentBudget << ",\n";
            os << "  \"mode\": \""
               << (_mode == WatchdogMode::Abort ? "abort" : "degrade")
               << "\",\n";
            os << "  \"event_queue\": {\"size\": " << eq.size()
               << ", \"head\": \"" << jsonEscape(eq.headSummary())
               << "\"},\n";
            os << "  \"pool\": {\"live\": " << pool.live()
               << ", \"allocs\": "
               << static_cast<std::uint64_t>(pool.statAllocs.value())
               << ", \"frees\": "
               << static_cast<std::uint64_t>(pool.statFrees.value())
               << "},\n";
            os << "  \"waiters\": [";
            bool firstList = true;
            for (const RetryList *list : _sim.faultDomain().lists()) {
                if (list->empty())
                    continue;
                os << (firstList ? "" : ", ")
                   << "{\"list\": \"" << jsonEscape(list->owner())
                   << "\", \"requestors\": [";
                firstList = false;
                bool firstReq = true;
                for (const MemRequestor *req : list->waiters()) {
                    os << (firstReq ? "" : ", ") << "\""
                       << jsonEscape(req->requestorName()) << "\"";
                    firstReq = false;
                }
                os << "]}";
            }
            os << "],\n";
            os << "  \"diagnostics\": [";
            bool firstDiag = true;
            for (SimObject *obj : _sim.objects()) {
                std::ostringstream line;
                obj->hangDiagnostics(line);
                if (line.str().empty())
                    continue;
                os << (firstDiag ? "" : ", ") << "\""
                   << jsonEscape(obj->name() + ": " + line.str())
                   << "\"";
                firstDiag = false;
            }
            os << "],\n";
            os << "  \"report_text\": \"" << jsonEscape(_lastReport)
               << "\"\n";
            os << "}\n";
        }
    }
    // abort skips destructors, so flush the JSON stats sink first;
    // panic() is the one sanctioned abort path and carries the
    // report to stderr.
    _sim.flushStatsSink();
    panic("%s", _lastReport.c_str());
}

void
ProgressWatchdog::sweepStaleFronts()
{
    for (RetryList *list : _sim.faultDomain().lists()) {
        const MemRequestor *front =
            list->empty() ? nullptr : list->waiters().front();
        auto it = _lastFront.find(list);
        if (front != nullptr && it != _lastFront.end() &&
            it->second == front) {
            // The same waiter headed this list a full budget ago while
            // everything around it made progress: its wakeup is lost.
            // A spurious wake is always legal, so recover it.
            chargeForcedWake(list);
            if (list->wakeOne(/*force=*/true)) {
                ++statForcedWakes;
                ++statStaleWakes;
            }
            front = list->empty() ? nullptr : list->waiters().front();
        }
        if (front != nullptr)
            _lastFront[list] = front;
        else
            _lastFront.erase(list);
    }
}

} // namespace emerald::fault
