# Empty dependencies file for emerald_sim.
# This may be replaced when dependencies are built.
