file(REMOVE_RECURSE
  "CMakeFiles/soc_frames.dir/soc_frames.cpp.o"
  "CMakeFiles/soc_frames.dir/soc_frames.cpp.o.d"
  "soc_frames"
  "soc_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
