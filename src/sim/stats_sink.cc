#include "sim/stats_sink.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

#ifdef EMERALD_HAS_SQLITE
#include <sqlite3.h>
#endif

namespace emerald
{

namespace
{

constexpr const char *sqlitePrefix = "sqlite:";

/** Render a double exactly as the legacy BenchResults doc did. */
std::string
jsonResultNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** Current wall-clock time as "YYYY-MM-DDTHH:MM:SSZ" (UTC). */
std::string
isoNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/** Discards everything; what "" and "null" URIs resolve to. */
class NullSink : public StatsSink
{
  public:
    void beginRun(const RunInfo &) override {}
    void recordScalar(const std::string &, double) override {}
    void addStatsTree(const std::string &, const StatGroup &) override {}
    void finishRun() override {}
    bool live() const override { return false; }
};

/**
 * The legacy --stats-json document, now one sink among several. The
 * output is byte-identical to what BenchResults used to hand-write:
 * {"bench": ..., "results": {...}, "sim": {...}} with 17-digit
 * numbers — tools/check_restore.py and tools/check_replay.py keep
 * parsing these files unchanged.
 */
class JsonFileSink : public StatsSink
{
  public:
    explicit JsonFileSink(std::string path) : _path(std::move(path)) {}

    JsonFileSink(const JsonFileSink &) = delete;
    JsonFileSink &operator=(const JsonFileSink &) = delete;

    ~JsonFileSink() override { finishRun(); }

    void beginRun(const RunInfo &info) override { _bench = info.bench; }

    void
    recordScalar(const std::string &key, double value) override
    {
        _results.emplace_back(key, value);
    }

    void
    addStatsTree(const std::string &label,
                 const StatGroup &root) override
    {
        std::ostringstream os;
        root.dumpJson(os);
        std::string text = os.str();
        while (!text.empty() && text.back() == '\n')
            text.pop_back();
        _trees.emplace_back(label, std::move(text));
    }

    void
    finishRun() override
    {
        if (_done)
            return;
        _done = true;
        std::ofstream os(_path);
        if (!os.is_open()) {
            warn("cannot open stats-out file '%s'", _path.c_str());
            return;
        }
        os << "{\n  \"bench\": \"" << jsonEscape(_bench) << "\",\n";
        os << "  \"results\": {";
        for (std::size_t i = 0; i < _results.size(); ++i) {
            os << (i ? ",\n" : "\n") << "    \""
               << jsonEscape(_results[i].first)
               << "\": " << jsonResultNumber(_results[i].second);
        }
        os << (_results.empty() ? "" : "\n  ") << "},\n";
        os << "  \"sim\": {";
        for (std::size_t i = 0; i < _trees.size(); ++i) {
            os << (i ? ",\n" : "\n") << "    \""
               << jsonEscape(_trees[i].first)
               << "\": " << _trees[i].second;
        }
        os << (_trees.empty() ? "" : "\n  ") << "}\n}\n";
        inform("stats-out: wrote %s", _path.c_str());
    }

  private:
    std::string _path;
    std::string _bench;
    std::vector<std::pair<std::string, double>> _results;
    std::vector<std::pair<std::string, std::string>> _trees;
    bool _done = false;
};

/**
 * Raw stats-tree JSON (the --sim-stats-out exit dump): exactly what
 * Simulation::dumpStatsJson writes, with no document wrapper. One
 * addStatsTree() call supplies the tree; scalars are rejected.
 */
class JsonTreeFileSink : public StatsSink
{
  public:
    explicit JsonTreeFileSink(std::string path)
        : _path(std::move(path))
    {}

    ~JsonTreeFileSink() override { finishRun(); }

    void beginRun(const RunInfo &) override {}

    void
    recordScalar(const std::string &key, double) override
    {
        panic("JsonTreeFileSink carries a stats tree, not scalar "
              "results (key '%s')", key.c_str());
    }

    void
    addStatsTree(const std::string &, const StatGroup &root) override
    {
        std::ostringstream os;
        root.dumpJson(os);
        os << "\n";
        _text = os.str();
    }

    void
    finishRun() override
    {
        if (_done)
            return;
        _done = true;
        std::ofstream os(_path);
        if (!os.is_open()) {
            warn("cannot open stats file '%s'", _path.c_str());
            return;
        }
        os << _text;
    }

  private:
    std::string _path;
    std::string _text;
    bool _done = false;
};

#ifdef EMERALD_HAS_SQLITE

/**
 * The sweep results store (docs/sweeps.md): every run lands in one
 * SQLite database keyed by (bench, config fingerprint, git sha).
 *
 * The whole run commits in a single IMMEDIATE transaction, so a
 * killed run leaves no partial rows — the sweep orchestrator treats
 * "committed row with status done" as its completion journal and a
 * resume re-runs exactly the points that never committed. Re-running
 * a point replaces its previous rows (upsert on the unique key).
 *
 * Concurrent writers (one per sweep worker process) are serialized
 * by SQLite itself; a generous busy timeout absorbs the contention
 * of whole sweeps' worth of small commits.
 */
class SqliteSink : public StatsSink
{
  public:
    explicit SqliteSink(const std::string &path)
    {
        if (sqlite3_open(path.c_str(), &_db) != SQLITE_OK) {
            fatal("cannot open sqlite stats db '%s': %s", path.c_str(),
                  _db ? sqlite3_errmsg(_db) : "out of memory");
        }
        sqlite3_busy_timeout(_db, sqliteBusyTimeoutMs(120000));
        // WAL lets sweep workers commit without blocking readers;
        // best effort (plain rollback journal is correct too).
        exec("PRAGMA journal_mode=WAL", true);
        exec("PRAGMA synchronous=NORMAL", true);
        createSchema();
        _start = std::chrono::steady_clock::now();
    }

    SqliteSink(const SqliteSink &) = delete;
    SqliteSink &operator=(const SqliteSink &) = delete;

    ~SqliteSink() override
    {
        finishRun();
        sqlite3_close(_db);
    }

    void beginRun(const RunInfo &info) override { _info = info; }

    void
    recordScalar(const std::string &key, double value) override
    {
        _rows.emplace_back("results." + key, value);
    }

    void
    addStatsTree(const std::string &label,
                 const StatGroup &root) override
    {
        root.flattenStats(
            [&](const std::string &name, double value) {
                _rows.emplace_back(label + "." + name, value);
            });
    }

    void
    finishRun() override
    {
        if (_done)
            return;
        _done = true;
        double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - _start)
                .count();

        exec("BEGIN IMMEDIATE");
        std::int64_t run_id = upsertRun(wall_ms);
        // Replace any previous attempt's detail rows wholesale.
        execBound("DELETE FROM run_params WHERE run_id=?1", run_id);
        execBound("DELETE FROM stats WHERE run_id=?1", run_id);
        insertParams(run_id);
        insertStats(run_id);
        exec("COMMIT");
    }

  private:
    void
    exec(const char *sql, bool best_effort = false)
    {
        std::string msg;
        if (sqliteExecRetry(_db, sql, &msg) != SQLITE_OK) {
            if (!best_effort)
                fatal("sqlite stats db: '%s' failed: %s", sql,
                      msg.c_str());
        }
    }

    void
    execBound(const char *sql, std::int64_t run_id)
    {
        sqlite3_stmt *stmt = prepare(sql);
        sqlite3_bind_int64(stmt, 1, run_id);
        stepDone(stmt, sql);
    }

    sqlite3_stmt *
    prepare(const char *sql)
    {
        sqlite3_stmt *stmt = nullptr;
        if (sqlite3_prepare_v2(_db, sql, -1, &stmt, nullptr) !=
            SQLITE_OK) {
            fatal("sqlite stats db: cannot prepare '%s': %s", sql,
                  sqlite3_errmsg(_db));
        }
        return stmt;
    }

    void
    stepDone(sqlite3_stmt *stmt, const char *what)
    {
        int rc = sqlite3_step(stmt);
        sqlite3_finalize(stmt);
        if (rc != SQLITE_DONE)
            fatal("sqlite stats db: '%s' failed: %s", what,
                  sqlite3_errmsg(_db));
    }

    void
    createSchema()
    {
        exec("BEGIN IMMEDIATE");
        for (const std::string &ddl : sweepSchemaStatements())
            exec(ddl.c_str());
        exec("COMMIT");
    }

    std::int64_t
    upsertRun(double wall_ms)
    {
        sqlite3_stmt *stmt = prepare(
            "INSERT INTO runs"
            "(bench, fingerprint, git_sha, status, wall_ms,"
            " finished_at) VALUES(?1, ?2, ?3, 'done', ?4, ?5) "
            "ON CONFLICT(bench, fingerprint, git_sha) DO UPDATE SET "
            "status='done', wall_ms=excluded.wall_ms, "
            "finished_at=excluded.finished_at");
        std::string fp = strprintf("%016llx",
                                   (unsigned long long)
                                       _info.fingerprint);
        std::string now = isoNow();
        sqlite3_bind_text(stmt, 1, _info.bench.c_str(), -1,
                          SQLITE_TRANSIENT);
        sqlite3_bind_text(stmt, 2, fp.c_str(), -1, SQLITE_TRANSIENT);
        sqlite3_bind_text(stmt, 3, _info.gitSha.c_str(), -1,
                          SQLITE_TRANSIENT);
        sqlite3_bind_double(stmt, 4, wall_ms);
        sqlite3_bind_text(stmt, 5, now.c_str(), -1, SQLITE_TRANSIENT);
        stepDone(stmt, "upsert run");

        sqlite3_stmt *sel = prepare(
            "SELECT run_id FROM runs WHERE bench=?1 AND "
            "fingerprint=?2 AND git_sha=?3");
        sqlite3_bind_text(sel, 1, _info.bench.c_str(), -1,
                          SQLITE_TRANSIENT);
        sqlite3_bind_text(sel, 2, fp.c_str(), -1, SQLITE_TRANSIENT);
        sqlite3_bind_text(sel, 3, _info.gitSha.c_str(), -1,
                          SQLITE_TRANSIENT);
        std::int64_t run_id = -1;
        if (sqlite3_step(sel) == SQLITE_ROW)
            run_id = sqlite3_column_int64(sel, 0);
        sqlite3_finalize(sel);
        if (run_id < 0)
            fatal("sqlite stats db: upserted run vanished");
        return run_id;
    }

    void
    insertParams(std::int64_t run_id)
    {
        sqlite3_stmt *stmt = prepare(
            "INSERT INTO run_params(run_id, key, value) "
            "VALUES(?1, ?2, ?3)");
        for (const auto &[key, value] : _info.params) {
            sqlite3_reset(stmt);
            sqlite3_bind_int64(stmt, 1, run_id);
            sqlite3_bind_text(stmt, 2, key.c_str(), -1,
                              SQLITE_TRANSIENT);
            sqlite3_bind_text(stmt, 3, value.c_str(), -1,
                              SQLITE_TRANSIENT);
            if (sqlite3_step(stmt) != SQLITE_DONE) {
                fatal("sqlite stats db: param insert failed: %s",
                      sqlite3_errmsg(_db));
            }
        }
        sqlite3_finalize(stmt);
    }

    void
    insertStats(std::int64_t run_id)
    {
        sqlite3_stmt *stmt = prepare(
            "INSERT OR REPLACE INTO stats(run_id, name, value) "
            "VALUES(?1, ?2, ?3)");
        for (const auto &[name, value] : _rows) {
            sqlite3_reset(stmt);
            sqlite3_bind_int64(stmt, 1, run_id);
            sqlite3_bind_text(stmt, 2, name.c_str(), -1,
                              SQLITE_TRANSIENT);
            if (std::isfinite(value))
                sqlite3_bind_double(stmt, 3, value);
            else
                sqlite3_bind_null(stmt, 3);
            if (sqlite3_step(stmt) != SQLITE_DONE) {
                fatal("sqlite stats db: stat insert failed: %s",
                      sqlite3_errmsg(_db));
            }
        }
        sqlite3_finalize(stmt);
    }

    sqlite3 *_db = nullptr;
    RunInfo _info;
    std::vector<std::pair<std::string, double>> _rows;
    std::chrono::steady_clock::time_point _start;
    bool _done = false;
};

#endif // EMERALD_HAS_SQLITE

std::unique_ptr<StatsSink>
makeSqliteSink(const std::string &uri)
{
#ifdef EMERALD_HAS_SQLITE
    return std::make_unique<SqliteSink>(sqliteUriPath(uri));
#else
    fatal("--stats-out=%s: this build has no SQLite support "
          "(libsqlite3 was not found at configure time)",
          uri.c_str());
#endif
}

} // namespace

bool
isSqliteUri(const std::string &uri)
{
    return uri.rfind(sqlitePrefix, 0) == 0;
}

std::string
sqliteUriPath(const std::string &uri)
{
    fatal_if(!isSqliteUri(uri), "'%s' is not a sqlite: URI",
             uri.c_str());
    std::string path = uri.substr(std::string(sqlitePrefix).size());
    fatal_if(path.empty(), "empty path in stats URI '%s'",
             uri.c_str());
    return path;
}

bool
sqliteSinkAvailable()
{
#ifdef EMERALD_HAS_SQLITE
    return true;
#else
    return false;
#endif
}

std::unique_ptr<StatsSink>
makeStatsSink(const std::string &uri)
{
    if (uri.empty() || uri == "null")
        return std::make_unique<NullSink>();
    if (isSqliteUri(uri))
        return makeSqliteSink(uri);
    return std::make_unique<JsonFileSink>(uri);
}

const std::vector<std::string> &
sweepSchemaStatements()
{
    static const std::vector<std::string> ddl = {
        "CREATE TABLE IF NOT EXISTS sweep_meta("
        "  key TEXT PRIMARY KEY,"
        "  value TEXT NOT NULL)",
        "CREATE TABLE IF NOT EXISTS runs("
        "  run_id INTEGER PRIMARY KEY,"
        "  bench TEXT NOT NULL,"
        "  fingerprint TEXT NOT NULL,"
        "  git_sha TEXT NOT NULL DEFAULT '',"
        "  status TEXT NOT NULL DEFAULT 'done',"
        "  wall_ms REAL,"
        "  finished_at TEXT,"
        "  UNIQUE(bench, fingerprint, git_sha))",
        "CREATE TABLE IF NOT EXISTS run_params("
        "  run_id INTEGER NOT NULL "
        "    REFERENCES runs(run_id) ON DELETE CASCADE,"
        "  key TEXT NOT NULL,"
        "  value TEXT NOT NULL,"
        "  PRIMARY KEY(run_id, key))",
        "CREATE TABLE IF NOT EXISTS stats("
        "  run_id INTEGER NOT NULL "
        "    REFERENCES runs(run_id) ON DELETE CASCADE,"
        "  name TEXT NOT NULL,"
        "  value REAL,"
        "  PRIMARY KEY(run_id, name))",
        // Failure taxonomy (docs/resilience.md): one row per
        // classified per-point failure, keyed like runs so a point's
        // history survives its eventual success. Additive — older
        // readers ignore it, so schema_version stays '1'.
        "CREATE TABLE IF NOT EXISTS run_failures("
        "  failure_id INTEGER PRIMARY KEY,"
        "  bench TEXT NOT NULL,"
        "  fingerprint TEXT NOT NULL,"
        "  git_sha TEXT NOT NULL DEFAULT '',"
        "  attempt INTEGER NOT NULL DEFAULT 0,"
        "  class TEXT NOT NULL,"
        "  signal INTEGER NOT NULL DEFAULT 0,"
        "  exit_code INTEGER NOT NULL DEFAULT -1,"
        "  recovered_tick INTEGER NOT NULL DEFAULT 0,"
        "  detail TEXT NOT NULL DEFAULT '',"
        "  occurred_at TEXT)",
        "INSERT OR IGNORE INTO sweep_meta(key, value) "
        "VALUES('schema_version', '1')",
    };
    return ddl;
}

int
sqliteBusyTimeoutMs(int dfltMs)
{
    const char *env = std::getenv("EMERALD_SQLITE_BUSY_MS");
    if (!env || !*env)
        return dfltMs;
    char *end = nullptr;
    long ms = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || ms < 0)
        return dfltMs;
    return static_cast<int>(std::min<long>(ms, 600000));
}

#ifdef EMERALD_HAS_SQLITE

namespace
{

/**
 * Deterministic per-connection jitter in [0, limit): a splitmix64
 * finalizer over the connection pointer and attempt number. The
 * sanctioned rand() replacement (sim/random.hh) seeds simulation
 * state; host-side DB backoff must not touch it, and real randomness
 * would make contention stalls unreproducible.
 */
unsigned
backoffJitter(sqlite3 *db, int attempt, unsigned limit)
{
    std::uint64_t x = reinterpret_cast<std::uintptr_t>(db);
    x += static_cast<std::uint64_t>(::getpid());
    x += static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return limit ? static_cast<unsigned>(x % limit) : 0;
}

} // namespace

int
sqliteExecRetry(sqlite3 *db, const char *sql, std::string *errOut)
{
    // A dozen attempts with the doubling schedule below spans a few
    // seconds past the busy handler's own patience — enough for a
    // whole sweep's worth of workers fighting over one WAL.
    constexpr int maxAttempts = 12;
    constexpr unsigned baseDelayMs = 2;
    constexpr unsigned capDelayMs = 250;

    int rc = SQLITE_OK;
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        char *err = nullptr;
        rc = sqlite3_exec(db, sql, nullptr, nullptr, &err);
        if (rc != SQLITE_BUSY && rc != SQLITE_LOCKED) {
            if (errOut)
                *errOut = err ? err : (rc == SQLITE_OK ? "" : "error");
            sqlite3_free(err);
            return rc;
        }
        if (errOut)
            *errOut = err ? err : "database is locked";
        sqlite3_free(err);
        // No rollback here: a busy BEGIN opened nothing, and a busy
        // COMMIT leaves its transaction intact for the retry.
        unsigned delay = std::min(capDelayMs, baseDelayMs << attempt);
        delay = delay / 2 + backoffJitter(db, attempt, delay / 2 + 1);
        ::usleep(delay * 1000u);
    }
    return rc;
}

#else // !EMERALD_HAS_SQLITE

int
sqliteExecRetry(sqlite3 *, const char *sql, std::string *)
{
    fatal("sqliteExecRetry('%s'): this build has no SQLite support",
          sql);
}

#endif // EMERALD_HAS_SQLITE

std::unique_ptr<StatsSink>
makeTreeStatsSink(const std::string &uri)
{
    if (uri.empty() || uri == "null")
        return std::make_unique<NullSink>();
    if (isSqliteUri(uri))
        return makeSqliteSink(uri);
    return std::make_unique<JsonTreeFileSink>(uri);
}

} // namespace emerald
