#include "npu/npu_top.hh"

#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"
#include "sim/simulation.hh"

namespace emerald::npu
{

NpuTop::NpuTop(Simulation &sim, const std::string &name,
               const NpuParams &params, ClockDomain &clock,
               MemSink &downstream)
    : SimObject(sim, name),
      statCmdsCompleted(*this, "cmds", "inference commands completed"),
      statCmdsAborted(*this, "cmds_aborted",
                      "commands abandoned by degrade recovery"),
      statCmdsRejected(*this, "cmds_rejected",
                       "submissions refused (queue full)"),
      statTiles(*this, "tiles", "systolic tiles computed"),
      statComputeTicks(*this, "compute_ticks",
                       "ticks the PE grid spent computing"),
      statCmdTicks(*this, "cmd_ticks",
                   "command execution latency (ticks)"),
      statQueueWaitTicks(*this, "queue_wait_ticks",
                         "command queue wait (ticks)"),
      _params(params), _clock(clock), _timing(params.systolic),
      _tiles(_timing.tileWalk(npuModelLayers(params.model),
                              params.memBase)),
      _dma(sim, name + ".dma", params.dma, downstream),
      _queue(params.queueDepth),
      _computeEvent([this] { computeDone(); }, name + ".compute"),
      _irqEvent([this] { deliverIrq(); }, name + ".irq")
{
    fatal_if(_tiles.empty(), "%s: model '%s' produced no tiles",
             name.c_str(), params.model.c_str());
    registerProfileCounters();
    registerCheckpointEvent(_computeEvent);
    registerCheckpointEvent(_irqEvent);
    _dma.setClient(this);
}

bool
NpuTop::submit(const NpuCommand &cmd)
{
    if (!_queue.push(cmd)) {
        ++statCmdsRejected;
        return false;
    }
    if (!_active)
        startNextCommand();
    return true;
}

void
NpuTop::startNextCommand()
{
    if (_active || _queue.empty())
        return;
    _cmd = _queue.pop();
    _active = true;
    _execStart = curTick();
    ++_execSeq;
    _loadsIssued = 0;
    _loadsDone = 0;
    _tilesComputed = 0;
    _storesIssued = 0;
    _storesDone = 0;
    statQueueWaitTicks.sample(
        static_cast<double>(curTick() - _cmd.enqueued));
    pumpLoads();
}

void
NpuTop::pumpLoads()
{
    if (!_active)
        return;
    // Double buffer: the load cursor may run one tile ahead of the
    // compute cursor (tile t computing while t+1 prefetches).
    while (_loadsIssued < _tiles.size() &&
           _loadsIssued - _tilesComputed < 2) {
        const TileWork &t = _tiles[_loadsIssued];
        _dma.startTransfer(t.inAddr, t.inBytes, false,
                           token(_loadsIssued, TokInput));
        _dma.startTransfer(t.wAddr, t.wBytes, false,
                           token(_loadsIssued, TokWeight));
        ++_loadsIssued;
    }
}

void
NpuTop::dmaTransferDone(std::uint64_t token_val)
{
    if (!_active || (token_val >> 32) != _execSeq)
        return;
    switch (static_cast<TokenKind>((token_val & 0xFFFFFFFFULL) % 3)) {
      case TokInput:
        // Input slice landed; the weight slice of the same tile is
        // still in flight (the DMA completes FIFO), so the tile is
        // not loaded yet.
        break;
      case TokWeight:
        ++_loadsDone;
        maybeStartCompute();
        break;
      case TokStore:
        ++_storesDone;
        checkCommandDone();
        break;
    }
}

void
NpuTop::dmaTransferAborted(std::uint64_t token_val)
{
    // Degrade recovery flushed the DMA queue; the first notification
    // sheds the active inference, the rest belong to the same dead
    // generation and drop here.
    if (!_active || (token_val >> 32) != _execSeq)
        return;
    descheduleIfPending(_computeEvent);
    _computing = false;
    finishCommand(true);
}

void
NpuTop::maybeStartCompute()
{
    if (!_active || _computing || _tilesComputed >= _loadsDone)
        return;
    _computing = true;
    scheduleIn(_computeEvent,
               _clock.cyclesToTicks(_tiles[_tilesComputed].cycles));
}

void
NpuTop::computeDone()
{
    _computing = false;
    const TileWork &t = _tiles[_tilesComputed];
    ++_tilesComputed;
    ++statTiles;
    statComputeTicks +=
        static_cast<double>(_clock.cyclesToTicks(t.cycles));
    if (_intClient)
        _intClient->npuCommandProgress(_cmd, 1.0);
    if (t.outBytes > 0) {
        _dma.startTransfer(t.outAddr, t.outBytes, true,
                           token(_tilesComputed - 1, TokStore));
        ++_storesIssued;
    }
    pumpLoads();
    maybeStartCompute();
    checkCommandDone();
}

void
NpuTop::checkCommandDone()
{
    if (_active && _tilesComputed == _tiles.size() &&
        _storesDone == _storesIssued)
        finishCommand(false);
}

void
NpuTop::finishCommand(bool aborted)
{
    if (aborted)
        ++statCmdsAborted;
    else
        ++statCmdsCompleted;
    statCmdTicks.sample(static_cast<double>(curTick() - _execStart));
    _active = false;
    _pendingIrqs.push_back({_cmd, curTick(), aborted});
    if (!_irqEvent.scheduled())
        scheduleIn(_irqEvent, _params.irqLatency);
    startNextCommand();
}

void
NpuTop::deliverIrq()
{
    panic_if(_pendingIrqs.empty(), "%s: spurious irq",
             name().c_str());
    IrqRecord rec = _pendingIrqs.front();
    _pendingIrqs.pop_front();
    if (_intClient)
        _intClient->npuCommandDone(rec.cmd, rec.finished, rec.aborted);
    if (!_pendingIrqs.empty())
        scheduleIn(_irqEvent, _params.irqLatency);
}

void
NpuTop::hangDiagnostics(std::ostream &os) const
{
    if (!_active && _queue.empty())
        return;
    os << "active=" << _active << " queued=" << _queue.size()
       << " loads=" << _loadsDone << "/" << _loadsIssued
       << " tiles=" << _tilesComputed << "/" << _tiles.size()
       << " stores=" << _storesDone << "/" << _storesIssued
       << (_computing ? " COMPUTING" : "");
}

void
NpuTop::serialize(CheckpointOut &out) const
{
    out.putBool("active", _active);
    if (_active)
        putNpuCommand(out, "cmd", _cmd);
    out.putTick("exec_start", _execStart);
    out.putU64("exec_seq", _execSeq);
    out.putU64("loads_issued", _loadsIssued);
    out.putU64("loads_done", _loadsDone);
    out.putU64("tiles_computed", _tilesComputed);
    out.putU64("stores_issued", _storesIssued);
    out.putU64("stores_done", _storesDone);
    out.putBool("computing", _computing);
    _queue.serialize(out, "queue");
    out.putU64("num_irqs", _pendingIrqs.size());
    for (std::size_t i = 0; i < _pendingIrqs.size(); ++i) {
        std::string prefix = strprintf("irq%zu", i);
        putNpuCommand(out, prefix + ".cmd", _pendingIrqs[i].cmd);
        out.putTick(prefix + ".finished", _pendingIrqs[i].finished);
        out.putBool(prefix + ".aborted", _pendingIrqs[i].aborted);
    }
}

void
NpuTop::unserialize(CheckpointIn &in)
{
    panic_if(_active || !_queue.empty() || !_pendingIrqs.empty(),
             "%s: unserialize into a busy device", name().c_str());
    _active = in.getBool("active");
    if (_active)
        _cmd = getNpuCommand(in, "cmd");
    _execStart = in.getTick("exec_start");
    _execSeq = in.getU64("exec_seq");
    _loadsIssued = in.getU64("loads_issued");
    _loadsDone = in.getU64("loads_done");
    _tilesComputed = in.getU64("tiles_computed");
    _storesIssued = in.getU64("stores_issued");
    _storesDone = in.getU64("stores_done");
    _computing = in.getBool("computing");
    _queue.unserialize(in, "queue");
    std::uint64_t num = in.getU64("num_irqs");
    for (std::uint64_t i = 0; i < num; ++i) {
        std::string prefix =
            strprintf("irq%llu", (unsigned long long)i);
        IrqRecord rec;
        rec.cmd = getNpuCommand(in, prefix + ".cmd");
        rec.finished = in.getTick(prefix + ".finished");
        rec.aborted = in.getBool(prefix + ".aborted");
        _pendingIrqs.push_back(rec);
    }
}

} // namespace emerald::npu
