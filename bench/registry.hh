/**
 * @file
 * Declarative bench scenario registry. Every figure/ablation bench
 * registers itself here (name, description, the Config axes it
 * reads, the expected paper shape, and its entry point); the single
 * emerald_bench binary runs them by name (--run=<name>, --list) and
 * the sweep driver (src/sweep/) enumerates them programmatically
 * instead of exec'ing bespoke binaries.
 */

#ifndef EMERALD_BENCH_REGISTRY_HH
#define EMERALD_BENCH_REGISTRY_HH

#include <string>
#include <vector>

namespace emerald::bench
{

/**
 * Entry point of one scenario. Receives the full command line (the
 * scenario re-parses it with BenchHarness, which accepts the shared
 * --run/--list/--stats-out keys); returns the process exit code.
 */
using ScenarioFn = int (*)(int argc, char **argv);

enum class ScenarioKind
{
    /** Reproduces a paper figure/table — run_benches.sh runs these. */
    Figure,
    /** Sweep unit / utility — enumerable, but not a figure. */
    Aux,
};

struct Scenario
{
    std::string name;
    std::string desc;
    /** Config keys this scenario reads as experiment axes. */
    std::vector<std::string> axes;
    /** One-line expected-shape note (from the paper), "" if none. */
    std::string expectedShape;
    ScenarioFn run = nullptr;
    ScenarioKind kind = ScenarioKind::Figure;
};

class ScenarioRegistry
{
  public:
    static ScenarioRegistry &instance();

    /** Register @p s; duplicate names are fatal. */
    void add(Scenario s);

    /** The named scenario, or nullptr. */
    const Scenario *find(const std::string &name) const;

    /** All scenarios, sorted by name. */
    const std::vector<Scenario> &scenarios() const
    {
        return _scenarios;
    }

  private:
    std::vector<Scenario> _scenarios;
};

/** Static registrar: file-scope instances run before main(). */
struct RegisterScenario
{
    explicit RegisterScenario(Scenario s);
};

} // namespace emerald::bench

#endif // EMERALD_BENCH_REGISTRY_HH
