file(REMOVE_RECURSE
  "CMakeFiles/fig18_wt_locality.dir/fig18_wt_locality.cpp.o"
  "CMakeFiles/fig18_wt_locality.dir/fig18_wt_locality.cpp.o.d"
  "fig18_wt_locality"
  "fig18_wt_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_wt_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
