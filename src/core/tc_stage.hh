/**
 * @file
 * The Tile Coalescing (TC) stage (paper Fig. 7).
 *
 * Raster tiles arriving from fine rasterization / Hi-Z are staged by
 * TC engines (TCEs). Each TCE works on one screen-space TC tile
 * position at a time, merging non-overlapping raster tiles from
 * multiple primitives into one TC tile to improve fragment-shading
 * SIMT utilization. Overlapping tiles force a flush so in-shader
 * depth/blend stays ordered; issue is additionally gated by the
 * per-position interlock owned by the pipeline (Fig. 7 element 7).
 */

#ifndef EMERALD_CORE_TC_STAGE_HH
#define EMERALD_CORE_TC_STAGE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/rasterizer.hh"
#include "core/wt_mapping.hh"

namespace emerald::core
{

/** A fully coalesced TC tile ready for fragment shading. */
struct TcInstance
{
    unsigned tcX = 0;
    unsigned tcY = 0;
    /** Merged raster tiles by slot (2x2 within the TC tile). */
    std::array<std::optional<FragmentTile>,
               tcTileRasterTiles * tcTileRasterTiles>
        tiles;

    unsigned
    fragmentCount() const
    {
        unsigned n = 0;
        for (const auto &tile : tiles) {
            if (tile)
                n += static_cast<unsigned>(
                    std::popcount(static_cast<unsigned>(
                        tile->coverMask)));
        }
        return n;
    }
};

/** Flush cause, for statistics. */
enum class TcFlushReason { Conflict, Full, Timeout, Drain };

/** One cluster's TC unit. */
class TcUnit
{
  public:
    TcUnit(unsigned num_engines, unsigned flush_timeout_cycles,
           unsigned ready_queue_depth);

    /**
     * Offer a raster tile.
     * @return false when no engine can take it this cycle.
     */
    bool tryAdd(const FragmentTile &tile, std::uint64_t now_cycle);

    /** Flush engines idle for longer than the timeout. */
    void tickTimeouts(std::uint64_t now_cycle);

    /** Flush everything (draw drain). */
    void drain();

    /** True when a coalesced instance is waiting to issue. */
    bool hasReady() const { return !_ready.empty(); }
    const TcInstance &peekReady() const { return _ready.front(); }
    TcInstance popReady();

    bool
    readyQueueFull() const
    {
        return _ready.size() >= _readyDepth;
    }

    /** True when no staged or ready work remains. */
    bool empty() const;

    /** @{ Flush counters by reason (stats). */
    std::uint64_t flushesConflict = 0;
    std::uint64_t flushesFull = 0;
    std::uint64_t flushesTimeout = 0;
    std::uint64_t flushesDrain = 0;
    /** @} */

  private:
    struct Engine
    {
        bool active = false;
        unsigned tcX = 0;
        unsigned tcY = 0;
        std::array<std::optional<FragmentTile>,
                   tcTileRasterTiles * tcTileRasterTiles>
            staged;
        std::uint64_t lastAddCycle = 0;
    };

    void flushEngine(Engine &engine, TcFlushReason reason);
    bool engineFull(const Engine &engine) const;

    std::vector<Engine> _engines;
    unsigned _flushTimeout;
    std::size_t _readyDepth;
    std::deque<TcInstance> _ready;
};

} // namespace emerald::core

#endif // EMERALD_CORE_TC_STAGE_HH
