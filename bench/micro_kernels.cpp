/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * event queue throughput, cache lookups, DRAM scheduling, assembly,
 * rasterization, and warp execution. These gate the simulator's
 * wall-clock performance (full-system simulation speed is a core
 * usability property the paper leans on vs. slower Ruby-style
 * models).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/rasterizer.hh"
#include "gpu/isa/assembler.hh"
#include "gpu/isa/executor.hh"
#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "scenes/shaders.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace emerald;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue eq;
    int counter = 0;
    std::vector<std::unique_ptr<EventFunction>> events;
    for (int i = 0; i < 64; ++i) {
        events.push_back(std::make_unique<EventFunction>(
            [&counter] { ++counter; }, "ev"));
    }
    std::uint64_t t = 1;
    for (auto _ : state) {
        for (auto &ev : events)
            eq.schedule(*ev, t++);
        eq.runUntil();
    }
    benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheHits(benchmark::State &state)
{
    Simulation sim;
    ClockDomain &clk = sim.createClockDomain(1000.0, "clk");
    cache::CacheParams params;
    params.sizeBytes = 32 * 1024;
    params.assoc = 8;
    cache::Cache cache(sim, "c", clk, params);

    struct NullSink : MemSink
    {
        bool
        tryAccept(MemPacket *pkt) override
        {
            completePacket(pkt);
            return true;
        }
    } sink;
    cache.setDownstream(sink);

    Random rng(1);
    for (auto _ : state) {
        Addr addr = (rng.next() % 256) * 128;
        auto *pkt = new MemPacket(addr, 4, false, TrafficClass::Gpu,
                                  AccessKind::GlobalData, 0, nullptr);
        if (!cache.tryAccept(pkt))
            delete pkt;
        sim.run();
    }
}
BENCHMARK(BM_CacheHits);

void
BM_DramChannel(benchmark::State &state)
{
    Simulation sim;
    mem::MemorySystemParams mp;
    mp.geom.channels = 2;
    mp.timing = mem::lpddr3Timing(1333, 32, 128);
    mem::FrfcfsScheduler sched;
    mem::MemorySystem mem(sim, "m", mp, sched);
    Random rng(2);
    for (auto _ : state) {
        for (int i = 0; i < 8; ++i) {
            auto *pkt = new MemPacket(
                (rng.next() & 0xfffff80ULL), 128, false,
                TrafficClass::Gpu, AccessKind::GlobalData, 0,
                nullptr);
            if (!mem.tryAccept(pkt))
                delete pkt;
        }
        sim.run();
    }
}
BENCHMARK(BM_DramChannel);

void
BM_Assemble(benchmark::State &state)
{
    for (auto _ : state) {
        gpu::isa::Program p = gpu::isa::assemble(
            "vs", scenes::vertexShaderSource());
        benchmark::DoNotOptimize(p.code.data());
    }
}
BENCHMARK(BM_Assemble);

void
BM_WarpExecuteAlu(benchmark::State &state)
{
    gpu::isa::Program p =
        gpu::isa::assemble("k", "mad.f32 r1, r0, r2, r1\n"
                                "exit\n");
    gpu::isa::ThreadContext threads[32];
    gpu::isa::ExecEnv env;
    gpu::isa::StepEffects fx;
    for (auto _ : state) {
        executeWarpInstruction(p.code[0], 0xffffffffu, threads, env,
                               fx);
    }
}
BENCHMARK(BM_WarpExecuteAlu);

void
BM_RasterizeTile(benchmark::State &state)
{
    core::ScreenVertex verts[3];
    verts[0] = {2.0f, 2.0f, 0.4f, 1.0f, {}};
    verts[1] = {60.0f, 6.0f, 0.5f, 1.0f, {}};
    verts[2] = {10.0f, 60.0f, 0.6f, 1.0f, {}};
    core::SetupPrim prim;
    core::setupPrimitive(verts, 64, 64, false, prim);
    core::FragmentTile tile;
    int tx = 3, ty = 3;
    for (auto _ : state) {
        core::rasterizeTile(prim, tx, ty, 5, 64, 64, tile);
        benchmark::DoNotOptimize(tile.coverMask);
    }
}
BENCHMARK(BM_RasterizeTile);

} // namespace

BENCHMARK_MAIN();
