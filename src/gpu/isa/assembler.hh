/**
 * @file
 * Assembler for the Emerald shader ISA.
 *
 * Grammar (one instruction per line):
 *
 *   LABEL:
 *   [@pN | @!pN] op[.mod[.mod]] operand {, operand}
 *
 * Operands: rN (register), pN (predicate), c[N] (constant), a[N]
 * (input attribute), o[N] (output attribute), tN (texture unit),
 * %x %y %z %vid %tid.x ... (specials), numeric literals, [rN +- K]
 * (memory), and label identifiers for bra.
 *
 * Examples:
 *   setp.lt.f32 p0, r1, c[3]
 *   @p0 bra SKIP
 *   tex.2d r4, t0, r8, r9      # writes quad r4..r7
 *   ztest %z
 *   stfb r4                    # commits quad r4..r7
 *
 * Comments run from '#' or '//' to end of line.
 */

#ifndef EMERALD_GPU_ISA_ASSEMBLER_HH
#define EMERALD_GPU_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "gpu/isa/instruction.hh"

namespace emerald::gpu::isa
{

/** Raised on malformed assembly input. */
class AsmError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Assemble @p source into a validated Program with reconvergence
 * points resolved.
 * @throws AsmError on syntax or semantic errors.
 */
Program assemble(const std::string &name, const std::string &source);

} // namespace emerald::gpu::isa

#endif // EMERALD_GPU_ISA_ASSEMBLER_HH
