file(REMOVE_RECURSE
  "CMakeFiles/gpgpu_compute.dir/gpgpu_compute.cpp.o"
  "CMakeFiles/gpgpu_compute.dir/gpgpu_compute.cpp.o.d"
  "gpgpu_compute"
  "gpgpu_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpgpu_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
