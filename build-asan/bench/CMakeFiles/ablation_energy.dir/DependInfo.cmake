
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_energy.cpp" "bench/CMakeFiles/ablation_energy.dir/ablation_energy.cpp.o" "gcc" "bench/CMakeFiles/ablation_energy.dir/ablation_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_soc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_scenes.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_gpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_cache.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
