/**
 * @file
 * Pluggable warp-scheduling policies for the SIMT cores.
 *
 * Each SimtCore scheduler lane owns a fixed, interleaved subset of the
 * warp slots (slot % schedulers == lane). A WarpScheduler ranks those
 * owned slots each cycle; the core walks the ranking and issues the
 * first warp that passes the eligibility and scoreboard checks, then
 * reports the choice back through issued().
 *
 * Policies register by name in a factory registry (--warp-sched picks
 * one at run time); createWarpScheduler() is the only construction
 * path, so adding a policy never touches the core. Built in:
 *
 *   lrr   Loose round-robin over the owned slots — the default, and
 *         bit-identical in issue order to the core's original scan.
 *   gto   Greedy-then-oldest: stay on the last-issued warp while it
 *         remains ready, else fall back to the oldest resident warp.
 *   wasp  WaSP-style lookahead (PAPERS.md): warps closest to their
 *         next memory instruction issue first, mimicking a prefetcher
 *         by pulling memory traffic earlier into the frame.
 */

#ifndef EMERALD_GPU_WARP_SCHED_HH
#define EMERALD_GPU_WARP_SCHED_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/warp.hh"

namespace emerald::gpu
{

/** The --warp-sched policy used when none is requested. */
inline constexpr const char *defaultWarpSchedPolicy = "lrr";

class WarpScheduler
{
  public:
    WarpScheduler(std::vector<unsigned> owned, unsigned scheduler_id)
        : _owned(std::move(owned)), _id(scheduler_id)
    {}

    virtual ~WarpScheduler() = default;

    /**
     * Rank the owned slots for this cycle: fill @p out with every
     * owned slot, highest priority first. The core issues the first
     * entry that is eligible and scoreboard-ready; slots holding
     * invalid warps may appear anywhere (the core skips them).
     */
    virtual void order(const std::vector<Warp> &warps,
                       std::vector<unsigned> &out) = 0;

    /** The core issued from @p slot this cycle. */
    virtual void issued(unsigned slot) { (void)slot; }

    virtual const char *policyName() const = 0;

    /**
     * Policy-private cursor state for checkpointing (e.g. the LRR
     * rotation point). One u64 is enough for every built-in policy;
     * stateless policies keep the 0 default.
     */
    virtual std::uint64_t cursorState() const { return 0; }
    virtual void setCursorState(std::uint64_t state) { (void)state; }

    const std::vector<unsigned> &ownedSlots() const { return _owned; }
    unsigned schedulerId() const { return _id; }

  protected:
    /** Owned warp slots, ascending. */
    std::vector<unsigned> _owned;
    unsigned _id;
};

using WarpSchedulerFactory =
    std::function<std::unique_ptr<WarpScheduler>(
        std::vector<unsigned> owned, unsigned scheduler_id)>;

/**
 * Register a policy under @p policy (fatal on duplicates). Policies
 * self-register lazily inside the registry accessor, never through
 * static initializers — those are linker-stripped from static
 * libraries.
 */
void registerWarpScheduler(const std::string &policy,
                           WarpSchedulerFactory factory);

/**
 * Construct the named policy for one scheduler lane. An empty
 * @p policy selects defaultWarpSchedPolicy; an unknown name is fatal
 * with a near-miss suggestion.
 */
std::unique_ptr<WarpScheduler>
createWarpScheduler(const std::string &policy,
                    std::vector<unsigned> owned, unsigned scheduler_id);

/** All registered policy names, sorted. */
std::vector<std::string> warpSchedulerPolicies();

} // namespace emerald::gpu

#endif // EMERALD_GPU_WARP_SCHED_HH
