/**
 * @file
 * Discrete event queue at the heart of the simulator.
 *
 * Components own Event objects (usually EventFunction members bound to
 * a callback) and schedule them on the queue. Events at the same tick
 * fire in (priority, scheduling-order) order, which keeps simulations
 * deterministic.
 */

#ifndef EMERALD_SIM_EVENT_QUEUE_HH
#define EMERALD_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald
{

class EventQueue;

/**
 * Observer hooked into EventQueue::runOne(). When installed, the queue
 * times each Event::process() call and reports it here — the basis of
 * the Chrome-trace EventTracer and the sim.profile.* counters. When no
 * instrument is installed the cost is a single branch per event.
 */
class EventInstrument
{
  public:
    virtual ~EventInstrument() = default;

    /**
     * One event was processed.
     * @param name the event's name (captured before process()).
     * @param when the simulated tick the event fired at.
     * @param priority the event's tie-break priority.
     * @param wall_ns wall-clock nanoseconds spent inside process().
     */
    virtual void onEvent(const std::string &name, Tick when,
                         int priority, std::uint64_t wall_ns) = 0;
};

/**
 * An abstract schedulable event. Events are owned by their component;
 * the queue never deletes them. One Event object can be scheduled at
 * most once at a time (use reschedule to move it).
 */
class Event
{
  public:
    /** Priorities break ties between events at the same tick. */
    enum Priority : int
    {
        /** Clock ticks run before ordinary events at the same tick. */
        clockPriority = -10,
        defaultPriority = 0,
        /** Stat sampling runs after ordinary events at the same tick. */
        statsPriority = 10,
    };

    explicit Event(int priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event fires. */
    virtual void process() = 0;

    /** Name used in error messages. */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return _scheduled; }
    Tick when() const { return _when; }
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _generation = 0;
    int _priority;
};

/** An Event that invokes a bound std::function. */
class EventFunction : public Event
{
  public:
    EventFunction(std::function<void()> callback, std::string name,
                  int priority = defaultPriority)
        : Event(priority), _callback(std::move(callback)),
          _name(std::move(name))
    {}

    void process() override { _callback(); }
    std::string name() const override { return _name; }

  private:
    std::function<void()> _callback;
    std::string _name;
};

/**
 * A min-heap event queue with a monotonically advancing current tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p ev to fire at @p when.
     * @pre when >= curTick() and ev is not already scheduled.
     */
    void schedule(Event &ev, Tick when);

    /** Move an event: deschedule if needed, then schedule at @p when. */
    void reschedule(Event &ev, Tick when);

    /** Remove a scheduled event from the queue (lazily). */
    void deschedule(Event &ev);

    /** True when no live events remain. */
    bool empty() const { return _liveEvents == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return _liveEvents; }

    /** Tick of the next live event. @pre !empty(). */
    Tick nextTick();

    /**
     * Pop and process the next event.
     * @return false when the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next event would fire
     * after @p limit. curTick is left at the last processed event (or
     * unchanged if nothing ran).
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return _numProcessed; }

    /**
     * Heap entries including stale (lazily descheduled) ones. Bounded
     * at O(liveEvents) by compaction; exposed for tests.
     */
    std::size_t heapSize() const { return _heap.size(); }

    /**
     * "name @ tick" of the next live event, or "(empty)". Skims stale
     * entries first; used by the watchdog's hang report.
     */
    std::string headSummary();

    /**
     * Install (or with nullptr remove) the observer notified after
     * every processed event. The queue does not own it.
     */
    void setInstrument(EventInstrument *instrument)
    {
        _instrument = instrument;
    }

    EventInstrument *instrument() const { return _instrument; }

    /** One live scheduling, as exposed for checkpointing. */
    struct LiveEventRef
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *event;
    };

    /**
     * Every live scheduling in service order (when, priority, seq).
     * Re-scheduling these in order on a fresh queue reproduces the
     * same-tick tie-breaks even though the new queue assigns fresh
     * sequence numbers.
     */
    std::vector<LiveEventRef> liveEventsSorted() const;

    /**
     * Deschedule everything (restore prologue). Topology constructors
     * pre-schedule events (clock ticks, DASH quantum timers); a
     * restore clears those and re-schedules exactly the checkpoint's
     * pending set. curTick and numProcessed are untouched — see
     * restoreTime().
     */
    void clearForRestore();

    /**
     * Jump the clock to a checkpoint's position. @pre the queue holds
     * no live event scheduled before @p tick.
     */
    void restoreTime(Tick tick, std::uint64_t num_processed);

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    /** True when the entry still refers to a live scheduling. */
    static bool
    live(const Entry &e)
    {
        return e.event->_scheduled && e.event->_generation == e.generation;
    }

    /** Drop stale heap entries from the top of the heap. */
    void skim();

    /** Rebuild the heap without its stale entries. */
    void compact();

    /** Compact when stale entries dominate the heap. */
    void maybeCompact();

    /** Pop and process the top entry. @pre skimmed and non-empty. */
    void serviceTop();

    /** Min-heap (std::push_heap/pop_heap with std::greater). */
    std::vector<Entry> _heap;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _numProcessed = 0;
    std::size_t _liveEvents = 0;
    EventInstrument *_instrument = nullptr;
};

} // namespace emerald

#endif // EMERALD_SIM_EVENT_QUEUE_HH
