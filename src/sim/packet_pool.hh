/**
 * @file
 * A free-list allocator for MemPacket, owned by the Simulation.
 *
 * Every IP in the SoC funnels MemPackets through the memory system,
 * so packet allocation is one of the simulator's hottest paths. The
 * pool recycles fixed-size packet storage: after warm-up, alloc/free
 * are O(1) pointer pops with zero heap traffic. Counters are exported
 * under sim.pool.* (see docs/observability.md).
 */

#ifndef EMERALD_SIM_PACKET_POOL_HH
#define EMERALD_SIM_PACKET_POOL_HH

#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/packet.hh"
#include "sim/stats.hh"

namespace emerald
{

/**
 * Fixed-size free-list pool for MemPacket. Packets allocated here
 * carry a back-pointer so freePacket()/completePacket() return them
 * without the caller knowing where they came from. The pool must
 * outlive every packet it allocated (the Simulation guarantees this:
 * components are destroyed before their Simulation).
 */
class PacketPool
{
  public:
    /**
     * @param ctx the owning Simulation's check context, or nullptr
     *            when checks are off. The lifecycle hooks fired from
     *            alloc()/free() dispatch to it, so a pool constructed
     *            without one is unchecked (bare tests).
     */
    explicit PacketPool(StatGroup &parent,
                        check::CheckContext *ctx = nullptr);
    ~PacketPool();

    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Construct a packet, recycling freed storage when available. */
    template <typename... Args>
    MemPacket *
    alloc(Args &&...args)
    {
        void *mem;
        if (_free.empty()) {
            // The pool is the owner of every slab (see _slabs).
            // NOLINTNEXTLINE(cppcoreguidelines-owning-memory)
            mem = ::operator new(sizeof(MemPacket));
            _slabs.push_back(mem);
            ++statHeapAllocs;
        } else {
            mem = _free.back();
            _free.pop_back();
        }
        ++statAllocs;
        if (++_live > _liveHighWater) {
            _liveHighWater = _live;
            statLiveHighWater = static_cast<double>(_liveHighWater);
        }
        auto *pkt = new (mem) MemPacket(std::forward<Args>(args)...);
        pkt->pool = this;
        EMERALD_CHECK_HOOK(packetAlloc(this, pkt));
        return pkt;
    }

    /** Return a packet allocated by this pool to the free list. */
    void
    free(MemPacket *pkt)
    {
        // MemPacket is trivially destructible, so the storage can be
        // recycled by placement-new without running a destructor.
        static_assert(std::is_trivially_destructible_v<MemPacket>);
        EMERALD_CHECK_HOOK(packetPoolFree(this, pkt));
        // pkt->pool stays set: freed state is marked by the poison
        // bit in checkGen, and hooks fired on a stale pointer need
        // the pool to resolve their check context. The next alloc()
        // placement-new resets the slot.
        _free.push_back(pkt);
        ++statFrees;
        --_live;
    }

    /** The owning Simulation's checkers, or nullptr (see ctor). */
    check::CheckContext *checkContext() const { return _ctx; }

    /** Packets allocated and not yet freed. */
    std::uint64_t live() const { return _live; }

    /** Recycled storage blocks currently available. */
    std::size_t freeListSize() const { return _free.size(); }

    /** High-water mark of live(), mirrored in statLiveHighWater. */
    std::uint64_t liveHighWater() const { return _liveHighWater; }

    /**
     * Restore the high-water shadow from a checkpoint. The stats tree
     * restore overwrites statLiveHighWater; this keeps the internal
     * counter the stat mirrors consistent with it, so later traffic
     * only raises the mark past the cold run's.
     */
    void
    restoreLiveHighWater(std::uint64_t v)
    {
        _liveHighWater = v;
        statLiveHighWater = static_cast<double>(v);
    }

  private:
    /** Declared before the Scalars so it is constructed first. */
    StatGroup _group;

  public:
    /** @{ sim.pool.* counters. */
    Scalar statAllocs;
    Scalar statHeapAllocs;
    Scalar statFrees;
    Scalar statLiveHighWater;
    /** @} */

  private:
    /**
     * Every storage block ever handed out. The destructor releases
     * these, not the free list: a Simulation torn down with traffic
     * still in flight (a bench that stops at frame completion) must
     * not leak the parked packets.
     */
    std::vector<void *> _slabs;
    std::vector<void *> _free;
    std::uint64_t _live = 0;
    std::uint64_t _liveHighWater = 0;
    /** Checkers the lifecycle hooks dispatch to (may be null). */
    check::CheckContext *_ctx = nullptr;
};

} // namespace emerald

#endif // EMERALD_SIM_PACKET_POOL_HH
