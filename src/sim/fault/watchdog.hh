/**
 * @file
 * Simulation-wide progress watchdog with hang diagnosis.
 *
 * A lost retry wakeup or a starved port deadlocks an event-driven
 * simulation silently: the event queue just drains (or spins) with
 * requestors parked on RetryLists forever. The watchdog runs a
 * heartbeat event every budget ticks and declares a hang when a full
 * budget elapsed with zero packet completions (sim.pool frees) while
 * requestors sit parked on some RetryList.
 *
 * On a hang it builds a structured report — event-queue head, packet
 * pool occupancy, every parked waiter by name, and per-component
 * hangDiagnostics() lines — then either:
 *
 *   Abort   flush the JSON stats sink and panic() with the report
 *           (the report is the panic message, so it reaches stderr
 *           through the one sanctioned abort path).
 *   Degrade recover: force-wake every parked waiter (counted in
 *           sim.watchdog.forced_wakes), give each component its
 *           onWatchdogDegrade() hook (the display controller drops
 *           the in-flight frame), and re-arm with exponential
 *           backoff so a persistent hang cannot melt into a
 *           force-wake busy loop.
 *
 * The global completion counter is blind to partial starvation: one
 * subsystem can sit deadlocked while unrelated traffic keeps
 * completing packets. Degrade mode closes that gap with a stale-front
 * sweep on every healthy heartbeat — a waiter still at the head of
 * the same RetryList a full budget later gets one force-wake
 * (spurious wakeups are legal per the MemRequestor contract, so this
 * is always safe; counted in sim.watchdog.stale_wakes).
 *
 * The heartbeat never keeps a finished simulation alive: it re-arms
 * only while other live events remain, so a drained queue stays
 * drained.
 */

#ifndef EMERALD_SIM_FAULT_WATCHDOG_HH
#define EMERALD_SIM_FAULT_WATCHDOG_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace emerald
{

class MemRequestor;
class RetryList;
class Simulation;

namespace fault
{

enum class WatchdogMode : std::uint8_t
{
    /** Emit the hang report and abort the process. */
    Abort,
    /** Recover: drop frames, force-wake waiters, keep running. */
    Degrade,
};

/** Parse "abort" / "degrade"; fatal() on anything else. */
WatchdogMode watchdogModeFromString(const std::string &text);

class ProgressWatchdog
{
  public:
    /**
     * @param budget ticks of zero-completion, waiters-parked time
     *        that count as a hang. Doubles per consecutive degrade
     *        recovery (up to 8x) and resets on real progress.
     */
    ProgressWatchdog(Simulation &sim, StatGroup &parent, Tick budget,
                     WatchdogMode mode);

    ProgressWatchdog(const ProgressWatchdog &) = delete;
    ProgressWatchdog &operator=(const ProgressWatchdog &) = delete;

    /** Schedule the first heartbeat (idempotent). */
    void arm();

    WatchdogMode mode() const { return _mode; }
    Tick budget() const { return _budget; }

    /** The report the last detected hang produced (tests). */
    const std::string &lastReport() const { return _lastReport; }

  private:
    /** Declared before the Scalars so it is constructed first. */
    StatGroup _group;

  public:
    /** @{ sim.watchdog.* counters. */
    Scalar statChecks;
    Scalar statHangs;
    Scalar statForcedWakes;
    Scalar statStaleWakes;
    /** @} */

  private:
    void beat();
    bool parkedWaiters() const;
    std::string buildReport();
    void degradeRecover();
    void sweepStaleFronts();

    /**
     * Serialize the current report as JSON to --hang-report-path
     * (no-op when unset) and terminate through the sanctioned
     * flush-stats-then-panic path. @p kind is "hang" (abort mode) or
     * "degrade-escalation" (forced-wake cap tripped).
     */
    [[noreturn]] void abortWithReport(const char *kind);

    /**
     * Count one force-wake against the waiter at the head of
     * @p list; escalates to abortWithReport when the per-waiter cap
     * trips (degrade must not silently spin forever).
     */
    void chargeForcedWake(const RetryList *list);

    Simulation &_sim;
    Tick _budget;
    Tick _currentBudget;
    WatchdogMode _mode;
    EventFunction _beatEvent;
    /** sim.pool frees observed at the previous heartbeat. */
    double _lastFrees = 0.0;
    /** Head waiter of each list at the previous heartbeat (degrade
     *  stale-front sweep). Keys are only ever compared against live
     *  list pointers, never dereferenced. */
    std::unordered_map<const RetryList *, const MemRequestor *> _lastFront;
    /** Degrade-mode force-wakes charged to each waiter since the
     *  retry lists last fully drained; when one waiter absorbs more
     *  than the cap, degrade escalates to abort-with-report instead
     *  of spinning forever. Keys follow the _lastFront rules. */
    std::unordered_map<const MemRequestor *, unsigned> _forcedWakeCount;
    std::string _lastReport;
};

} // namespace fault
} // namespace emerald

#endif // EMERALD_SIM_FAULT_WATCHDOG_HH
