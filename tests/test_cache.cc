#include <gtest/gtest.h>

#include <map>

#include "cache/cache.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace emerald;
using namespace emerald::cache;

namespace
{

/** Terminal memory: accepts everything, responds after a delay. */
struct FakeMemory : public MemSink
{
    Simulation &sim;
    Tick delay;
    std::vector<std::unique_ptr<EventFunction>> events;
    unsigned reads = 0;
    unsigned writes = 0;

    FakeMemory(Simulation &s, Tick d) : sim(s), delay(d) {}

    bool
    tryAccept(MemPacket *pkt) override
    {
        if (pkt->write)
            ++writes;
        else
            ++reads;
        events.push_back(std::make_unique<EventFunction>(
            [pkt] { completePacket(pkt); }, "fake.resp"));
        sim.eventQueue().schedule(*events.back(),
                                  sim.curTick() + delay);
        return true;
    }
};

struct Requestor : public MemClient
{
    unsigned responses = 0;
    Tick lastResponse = 0;
    Simulation *sim = nullptr;

    void
    memResponse(MemPacket *pkt) override
    {
        ++responses;
        lastResponse = sim->curTick();
        delete pkt;
    }
};

struct Rig
{
    Simulation sim;
    ClockDomain &clk;
    FakeMemory memory;
    Cache cache;
    Requestor client;

    explicit Rig(CacheParams params, Tick mem_delay = ticksFromNs(100))
        : clk(sim.createClockDomain(1000.0, "clk")),
          memory(sim, mem_delay),
          cache(sim, "l1", clk, params)
    {
        cache.setDownstream(memory);
        client.sim = &sim;
    }

    bool
    read(Addr addr)
    {
        auto *pkt = new MemPacket(addr, 4, false, TrafficClass::Gpu,
                                  AccessKind::GlobalData, 0, &client);
        bool ok = cache.tryAccept(pkt);
        if (!ok)
            delete pkt;
        return ok;
    }

    bool
    write(Addr addr)
    {
        auto *pkt = new MemPacket(addr, 4, true, TrafficClass::Gpu,
                                  AccessKind::GlobalData, 0, &client);
        bool ok = cache.tryAccept(pkt);
        if (!ok)
            delete pkt;
        return ok;
    }
};

CacheParams
smallCache()
{
    CacheParams p;
    p.sizeBytes = 1024; // 8 lines.
    p.assoc = 2;
    p.lineSize = 128;
    p.hitLatency = 2;
    p.mshrs = 4;
    p.targetsPerMshr = 4;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Rig rig(smallCache());
    ASSERT_TRUE(rig.read(0x1000));
    rig.sim.run();
    EXPECT_EQ(rig.client.responses, 1u);
    EXPECT_EQ(rig.cache.statMisses.value(), 1.0);
    EXPECT_EQ(rig.memory.reads, 1u);

    Tick miss_time = rig.client.lastResponse;
    ASSERT_TRUE(rig.read(0x1000));
    rig.sim.run();
    EXPECT_EQ(rig.client.responses, 2u);
    EXPECT_EQ(rig.cache.statHits.value(), 1.0);
    EXPECT_EQ(rig.memory.reads, 1u); // No second fill.
    // Hit is far faster than miss.
    EXPECT_LT(rig.client.lastResponse - miss_time, miss_time);
}

TEST(Cache, MshrMergesSameLine)
{
    Rig rig(smallCache());
    ASSERT_TRUE(rig.read(0x2000));
    ASSERT_TRUE(rig.read(0x2004));
    ASSERT_TRUE(rig.read(0x2008));
    rig.sim.run();
    EXPECT_EQ(rig.client.responses, 3u);
    EXPECT_EQ(rig.memory.reads, 1u); // One fill serves all three.
    EXPECT_EQ(rig.cache.statMshrMerges.value(), 2.0);
}

TEST(Cache, MshrFullRejects)
{
    CacheParams p = smallCache();
    p.mshrs = 2;
    Rig rig(p);
    ASSERT_TRUE(rig.read(0x1000));
    ASSERT_TRUE(rig.read(0x2000));
    EXPECT_FALSE(rig.read(0x3000)); // Third distinct line: no MSHR.
    EXPECT_EQ(rig.cache.statRejects.value(), 1.0);
    rig.sim.run();
    EXPECT_TRUE(rig.read(0x3000)); // Frees up after fills.
    rig.sim.run();
}

TEST(Cache, TargetsPerMshrLimit)
{
    CacheParams p = smallCache();
    p.targetsPerMshr = 2;
    Rig rig(p);
    ASSERT_TRUE(rig.read(0x1000));
    ASSERT_TRUE(rig.read(0x1004));
    EXPECT_FALSE(rig.read(0x1008));
    rig.sim.run();
}

TEST(Cache, DirtyEvictionWritesBack)
{
    CacheParams p = smallCache(); // 4 sets x 2 ways.
    Rig rig(p);
    // Three lines mapping to the same set (set stride = 4 * 128).
    Addr stride = 4 * 128;
    ASSERT_TRUE(rig.write(0x0));
    rig.sim.run();
    ASSERT_TRUE(rig.read(stride));
    rig.sim.run();
    ASSERT_TRUE(rig.read(2 * stride)); // Evicts the dirty line 0.
    rig.sim.run();
    EXPECT_EQ(rig.cache.statWritebacks.value(), 1.0);
    EXPECT_EQ(rig.memory.writes, 1u);

    // Line 0 must now miss again.
    ASSERT_TRUE(rig.read(0x0));
    rig.sim.run();
    EXPECT_EQ(rig.cache.statMisses.value(), 4.0);
}

TEST(Cache, LruVictimSelection)
{
    Rig rig(smallCache());
    Addr stride = 4 * 128;
    // Fill both ways of set 0, touch line A again, then insert C:
    // B (least recent) must be evicted, A stays.
    ASSERT_TRUE(rig.read(0));           // A
    rig.sim.run();
    ASSERT_TRUE(rig.read(stride));      // B
    rig.sim.run();
    ASSERT_TRUE(rig.read(0));           // Touch A.
    rig.sim.run();
    ASSERT_TRUE(rig.read(2 * stride));  // C evicts B.
    rig.sim.run();
    EXPECT_TRUE(rig.cache.isCached(0));
    EXPECT_FALSE(rig.cache.isCached(stride));
    EXPECT_TRUE(rig.cache.isCached(2 * stride));
}

TEST(Cache, PostedWritesComplete)
{
    Rig rig(smallCache());
    auto *pkt = new MemPacket(0x40, 4, true, TrafficClass::Gpu,
                              AccessKind::Color, 0, nullptr);
    ASSERT_TRUE(rig.cache.tryAccept(pkt));
    rig.sim.run(); // Must not leak or crash; fill + dirty install.
    EXPECT_TRUE(rig.cache.isCached(0x40));
}

/**
 * Property test: the timing cache's hit/miss decisions must match a
 * simple reference model over random traffic.
 */
class CacheVsReference : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheVsReference, HitMissSequenceMatches)
{
    CacheParams p;
    p.sizeBytes = 2048;
    p.assoc = 2;
    p.lineSize = 128;
    p.mshrs = 1; // Serialize so LRU state is deterministic.
    Rig rig(p);
    Random rng(GetParam());

    // Reference: per-set LRU lists.
    unsigned sets = 2048 / 128 / 2;
    std::vector<std::vector<Addr>> ref(sets);

    for (int i = 0; i < 2000; ++i) {
        Addr line = (rng.next() % 64) * 128;
        auto set = static_cast<unsigned>((line / 128) % sets);
        auto &lru = ref[set];
        auto it = std::find(lru.begin(), lru.end(), line);
        bool ref_hit = it != lru.end();
        if (ref_hit)
            lru.erase(it);
        lru.push_back(line);
        if (lru.size() > 2)
            lru.erase(lru.begin());

        double hits_before = rig.cache.statHits.value();
        ASSERT_TRUE(rig.read(line));
        rig.sim.run(); // Complete before the next access.
        bool model_hit = rig.cache.statHits.value() > hits_before;
        ASSERT_EQ(model_hit, ref_hit) << "access " << i << " line 0x"
                                      << std::hex << line;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsReference,
                         ::testing::Values(11u, 22u, 33u));
