/**
 * @file
 * Energy ablation (extension): quantifies the paper's DFSL
 * motivation — "lower GPU energy consumption by reducing average
 * rendering time per frame assuming the GPU can be put into a low
 * power state between frames". Reports per-frame energy (dynamic +
 * static-over-render-window) across WT sizes and for DFSL.
 */

#include "core/dfsl.hh"
#include "core/energy.hh"
#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

struct EnergyRun
{
    double cycles = 0.0;
    double energy_uj = 0.0;
};

EnergyRun
measure(scenes::WorkloadId id, unsigned wt, unsigned frames,
        bool use_dfsl = false)
{
    soc::StandaloneGpu rig(256, 192);
    scenes::SceneRenderer scene(rig.pipeline(),
                                scenes::makeWorkload(id),
                                rig.functionalMemory());
    core::EnergyModel energy(rig.gpu(), rig.pipeline(), rig.memory());

    core::DfslParams dp;
    dp.runFrames = 8;
    core::DfslController dfsl(dp);

    rig.pipeline().setWtSize(wt);
    renderFrame(rig, scene, 0); // Warm-up.

    unsigned total_frames =
        use_dfsl ? (dp.maxWT - dp.minWT + 1) + dp.runFrames : frames;
    EnergyRun out;
    for (unsigned f = 1; f <= total_frames; ++f) {
        if (use_dfsl)
            rig.pipeline().setWtSize(dfsl.wtForNextFrame());
        energy.snapshot();
        core::FrameStats s = renderFrame(rig, scene, f);
        core::EnergyReport report =
            energy.report(s.endTick - s.startTick);
        if (use_dfsl)
            dfsl.frameCompleted(s.cycles);
        out.cycles += static_cast<double>(s.cycles);
        out.energy_uj += report.total_uj();
    }
    out.cycles /= total_frames;
    out.energy_uj /= total_frames;
    return out;
}

} // namespace

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "ablation_energy");
    const Config &cfg = harness.cfg;
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 4));
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    auto workloads = caseStudy2Workloads();
    if (quick)
        workloads = {scenes::WorkloadId::W4_Suzanne};

    std::printf("=== Ablation: per-frame GPU energy vs work "
                "distribution ===\n");
    std::printf("(static power charged over the render window only — "
                "the GPU sleeps between frames)\n\n");
    std::printf("%-18s %12s %12s %12s %12s\n", "workload", "WT1 (uJ)",
                "WT10 (uJ)", "DFSL (uJ)", "DFSL saves");

    for (scenes::WorkloadId id : workloads) {
        EnergyRun wt1 = measure(id, 1, frames);
        EnergyRun wt10 = measure(id, 10, frames);
        EnergyRun dfsl = measure(id, 1, frames, true);
        double worst = std::max(wt1.energy_uj, wt10.energy_uj);
        std::string wl = scenes::workloadName(id);
        results.record(wl + ".wt1_uj", wt1.energy_uj);
        results.record(wl + ".wt10_uj", wt10.energy_uj);
        results.record(wl + ".dfsl_uj", dfsl.energy_uj);
        results.record(wl + ".dfsl_saves_frac",
                       (worst - dfsl.energy_uj) / worst);
        std::printf("%-18s %12.1f %12.1f %12.1f %11.1f%%\n",
                    scenes::workloadName(id), wt1.energy_uj,
                    wt10.energy_uj, dfsl.energy_uj,
                    (worst - dfsl.energy_uj) / worst * 100.0);
        std::fflush(stdout);
    }
    std::printf("\nshape: shorter render windows cut the static "
                "component; DFSL tracks the best static choice\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "ablation_energy",
    .desc = "Ablation: per-frame GPU energy vs work distribution",
    .axes = {"quick", "frames"},
    .expectedShape = "shorter render windows cut static energy; DFSL tracks best static",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
