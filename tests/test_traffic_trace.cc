/**
 * @file
 * Tests for the memory-traffic trace subsystem (mem/traffic_trace.hh)
 * and the replay fast path (soc/replay.hh): the writer/reader disk
 * round-trip, capture wiring through a full SoC run, and the
 * capture -> replay -> re-capture determinism oracle — a replayed run
 * must reproduce the captured request stream per client, in order.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "mem/traffic_trace.hh"
#include "sim/simulation_builder.hh"
#include "soc/replay.hh"
#include "soc/soc_top.hh"

using namespace emerald;

namespace
{

std::string
tempDir(const std::string &leaf)
{
    return ::testing::TempDir() + "emerald_" + leaf;
}

soc::SocParams
smallSocParams()
{
    soc::SocParams p;
    p.model = scenes::WorkloadId::M2_Cube;
    p.frames = 2;
    p.fbWidth = 192;
    p.fbHeight = 144;
    p.cpuPrepRequests = 300;
    return p;
}

/** Per-client (frame, addr, kind, write) sequences of @p dir. */
std::vector<std::vector<std::tuple<unsigned, Addr, int, bool>>>
streamsOf(const std::string &dir)
{
    mem::TrafficTraceReader reader(dir);
    std::vector<std::vector<std::tuple<unsigned, Addr, int, bool>>> out;
    for (unsigned c = 0; c < reader.numClients(); ++c) {
        std::vector<std::tuple<unsigned, Addr, int, bool>> seq;
        for (const mem::TraceTxn &t : reader.clientTxns(c)) {
            seq.emplace_back(t.frame, t.addr, static_cast<int>(t.kind),
                             t.write);
        }
        out.push_back(std::move(seq));
    }
    return out;
}

} // namespace

TEST(TrafficTrace, WriterReaderRoundTrip)
{
    std::string dir = tempDir("trace_roundtrip");
    {
        mem::TrafficTraceWriter writer(dir, "unit", 0x1000);
        ASSERT_EQ(writer.addClient("c0"), 0u);
        ASSERT_EQ(writer.addClient("c1"), 1u);
        // Records before the first frame are dropped, not attributed.
        writer.record(0, 50, 0xAA00, AccessKind::Texture, false);
        writer.beginFrame(100);
        writer.record(0, 150, 0x2000, AccessKind::Texture, false);
        writer.record(1, 180, 0x2080, AccessKind::Color, true);
        writer.endFrame(300, 640.0);
        // A drain-tail record after endFrame stays on frame 0.
        writer.record(0, 320, 0x2100, AccessKind::Depth, false);
        writer.beginFrame(400);
        writer.record(1, 460, 0x3000, AccessKind::GlobalData, false);
        writer.endFrame(700, 512.0);
        writer.finalize();
        EXPECT_EQ(writer.numRecords(), 4u);
        EXPECT_EQ(writer.droppedRecords(), 1u);
    }

    mem::TrafficTraceReader reader(dir);
    EXPECT_EQ(reader.label(), "unit");
    EXPECT_EQ(reader.fbBase(), 0x1000u);
    ASSERT_EQ(reader.numFrames(), 2u);
    EXPECT_EQ(reader.frameStart(0), 100u);
    EXPECT_EQ(reader.frameEnd(0), 300u);
    EXPECT_DOUBLE_EQ(reader.frameWork(0), 640.0);
    EXPECT_DOUBLE_EQ(reader.frameWork(1), 512.0);
    EXPECT_EQ(reader.numRecords(), 4u);

    ASSERT_EQ(reader.numClients(), 2u);
    EXPECT_EQ(reader.clientName(0), "c0");
    const auto &c0 = reader.clientTxns(0);
    ASSERT_EQ(c0.size(), 2u);
    EXPECT_EQ(c0[0].frame, 0u);
    EXPECT_EQ(c0[0].offset, 50u); // 150 - frame start 100.
    EXPECT_EQ(c0[0].addr, 0x2000u);
    EXPECT_EQ(c0[0].kind, AccessKind::Texture);
    EXPECT_FALSE(c0[0].write);
    EXPECT_EQ(c0[1].frame, 0u); // Drain tail stayed on frame 0.
    EXPECT_EQ(c0[1].offset, 220u);
    const auto &c1 = reader.clientTxns(1);
    ASSERT_EQ(c1.size(), 2u);
    EXPECT_TRUE(c1[0].write);
    EXPECT_EQ(c1[1].frame, 1u);
    EXPECT_EQ(c1[1].offset, 60u);
}

TEST(TrafficTrace, MissingDirectoryIsFatal)
{
    EXPECT_DEATH(
        mem::TrafficTraceReader(tempDir("trace_nonexistent")), "");
}

TEST(TrafficTraceSoc, CaptureProducesOneClientPerCore)
{
    std::string dir = tempDir("trace_capture");
    {
        soc::SocTop soc(smallSocParams(),
                        SimulationBuilder().captureTrace(dir));
        soc.run(ticksFromMs(500.0));
    }
    mem::TrafficTraceReader reader(dir);
    EXPECT_EQ(reader.label(), "M2-cube");
    ASSERT_EQ(reader.numClients(), 4u);
    EXPECT_EQ(reader.clientName(0), "gpu.sc0");
    ASSERT_EQ(reader.numFrames(), 2u);
    EXPECT_GT(reader.numRecords(), 1000u);
    EXPECT_GT(reader.frameWork(0), 0.0);
}

TEST(TrafficTraceSoc, ReplayReproducesCapturedStreamPerClient)
{
    std::string cap1 = tempDir("trace_rt_capture");
    std::string cap2 = tempDir("trace_rt_recapture");
    soc::SocParams params = smallSocParams();
    {
        soc::SocTop soc(params, SimulationBuilder().captureTrace(cap1));
        soc.run(ticksFromMs(500.0));
    }
    double replay_gpu_ms = 0.0;
    {
        // Replay the capture and re-capture the replayed stream.
        soc::SocTop soc(params, SimulationBuilder()
                                    .replayTrace(cap1)
                                    .captureTrace(cap2));
        ASSERT_TRUE(soc.replayMode());
        soc.run(ticksFromMs(500.0));
        ASSERT_EQ(soc.replayDriver()->frames().size(), 2u);
        replay_gpu_ms = soc.meanGpuFrameMs();
    }
    EXPECT_GT(replay_gpu_ms, 0.0);

    // The replayed stream must be the captured stream: same requests,
    // same per-client order, same frame attribution.
    auto original = streamsOf(cap1);
    auto replayed = streamsOf(cap2);
    ASSERT_EQ(original.size(), replayed.size());
    for (std::size_t c = 0; c < original.size(); ++c) {
        ASSERT_EQ(original[c].size(), replayed[c].size()) << c;
        EXPECT_EQ(original[c], replayed[c]) << c;
    }
}

TEST(TrafficTraceSoc, ReplayRefusesMismatchedRun)
{
    std::string dir = tempDir("trace_refuse");
    soc::SocParams params = smallSocParams();
    {
        soc::SocTop soc(params, SimulationBuilder().captureTrace(dir));
        soc.run(ticksFromMs(500.0));
    }
    // More frames than the trace holds.
    soc::SocParams too_many = params;
    too_many.frames = 3;
    EXPECT_DEATH(
        soc::SocTop(too_many, SimulationBuilder().replayTrace(dir)),
        "holds 2 frames but the run wants 3");
}

TEST(TrafficTraceSoc, ReplayCannotCombineWithCheckpointing)
{
    EXPECT_DEATH(SimulationBuilder()
                     .replayTrace(tempDir("trace_x"))
                     .checkpointAt(ticksFromMs(1.0),
                                   tempDir("trace_ckpt"))
                     .build(),
                 "cannot combine with");
}
