#include "sim/check/determinism.hh"

namespace emerald::check
{

void
DeterminismVerifier::mix(const void *bytes, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    for (std::size_t i = 0; i < n; ++i) {
        _hash ^= p[i];
        _hash *= fnvPrime;
    }
}

void
DeterminismVerifier::onEvent(const std::string &name, Tick when,
                             int priority, std::uint64_t wall_ns)
{
    // wall_ns is deliberately excluded: wall-clock cost differs
    // between runs of an identical simulation.
    (void)wall_ns;
    std::uint64_t tick = when;
    std::int64_t prio = priority;
    mix(&tick, sizeof(tick));
    mix(name.data(), name.size());
    mix(&prio, sizeof(prio));
    ++_numEvents;
    // Scalars hold doubles; fold to 53 bits so the stat is exact.
    _hashStat = static_cast<double>(_hash & ((1ULL << 53) - 1));
}

} // namespace emerald::check
