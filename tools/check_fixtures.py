#!/usr/bin/env python3
"""Fixture gate for tools/emerald_analyze.py.

Every file under tests/analyze_fixtures/ annotates the lines the
analyzer must flag with `// EXPECT: <rule>` (one rule per annotation;
repeat the comment for multiple rules on one line).  This gate runs
the analyzer over the fixtures and compares (file, line, rule) sets in
BOTH directions: a missed annotation is a false negative, an
unannotated finding is a false positive, and either fails.

The textual engine always runs.  The AST engine additionally runs
when clang is installed (as in CI), so the two engines are held to
identical verdicts on the fixtures.  --engine narrows the run.
"""

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w-]+)")

TOOLS = Path(__file__).resolve().parent
ROOT = TOOLS.parent
FIXTURES = ROOT / "tests" / "analyze_fixtures"


def expected_findings(fixture_files):
    expected = set()
    for path in fixture_files:
        rel = path.relative_to(ROOT).as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), 1):
            for match in EXPECT_RE.finditer(line):
                expected.add((rel, lineno, match.group(1)))
    return expected


def run_engine(engine, fixture_files):
    cmd = [sys.executable, str(TOOLS / "emerald_analyze.py"),
           "--engine", engine, "--json",
           "--allowlist", os.devnull,
           "--root", str(ROOT)]
    cmd += [str(p) for p in fixture_files]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if not proc.stdout.strip():
        sys.exit(f"check_fixtures: no JSON from the {engine} engine:"
                 f"\n{proc.stderr}")
    findings = json.loads(proc.stdout)
    return {(f["path"], f["line"], f["rule"]) for f in findings}


def compare(engine, expected, actual):
    missed = sorted(expected - actual)
    spurious = sorted(actual - expected)
    for rel, line, rule in missed:
        print(f"check_fixtures: [{engine}] MISSED {rel}:{line} "
              f"expected [{rule}]")
    for rel, line, rule in spurious:
        print(f"check_fixtures: [{engine}] SPURIOUS {rel}:{line} "
              f"[{rule}] not annotated")
    return not missed and not spurious


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine",
                        choices=("auto", "textual", "ast", "both"),
                        default="auto",
                        help="auto = textual, plus ast when clang "
                             "is installed")
    args = parser.parse_args(argv)

    fixture_files = sorted(FIXTURES.glob("*.cc"))
    if not fixture_files:
        sys.exit(f"check_fixtures: no fixtures in {FIXTURES}")
    expected = expected_findings(fixture_files)
    if not expected:
        sys.exit("check_fixtures: no EXPECT annotations found")

    engines = {"auto": ["textual"], "both": ["textual", "ast"],
               "textual": ["textual"], "ast": ["ast"]}[args.engine]
    if args.engine == "auto":
        sys.path.insert(0, str(TOOLS))
        import emerald_analyze
        if emerald_analyze.find_clang():
            engines.append("ast")

    ok = True
    for engine in engines:
        actual = run_engine(engine, fixture_files)
        if compare(engine, expected, actual):
            print(f"check_fixtures: [{engine}] "
                  f"{len(expected)} expected finding(s) matched, "
                  f"{len(fixture_files)} fixture(s)")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
