#include "mem/functional_memory.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald::mem
{

Addr
FunctionalMemory::allocate(std::uint64_t bytes, std::uint64_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "allocation alignment must be a power of two");
    Addr base = (_nextAlloc + align - 1) & ~(align - 1);
    _nextAlloc = base + std::max<std::uint64_t>(bytes, 1);
    return base;
}

std::uint8_t *
FunctionalMemory::pageFor(Addr addr, bool create) const
{
    Addr page = addr >> pageBits;
    auto it = _pages.find(page);
    if (it != _pages.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto storage = std::make_unique<std::uint8_t[]>(pageSize);
    std::memset(storage.get(), 0, pageSize);
    std::uint8_t *raw = storage.get();
    _pages.emplace(page, std::move(storage));
    return raw;
}

void
FunctionalMemory::read(Addr addr, void *buf, std::uint64_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (bytes > 0) {
        Addr offset = addr & (pageSize - 1);
        std::uint64_t chunk = std::min<std::uint64_t>(bytes,
                                                      pageSize - offset);
        const std::uint8_t *page = pageFor(addr, false);
        if (page)
            std::memcpy(out, page + offset, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

void
FunctionalMemory::write(Addr addr, const void *buf, std::uint64_t bytes)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (bytes > 0) {
        Addr offset = addr & (pageSize - 1);
        std::uint64_t chunk = std::min<std::uint64_t>(bytes,
                                                      pageSize - offset);
        std::uint8_t *page = pageFor(addr, true);
        std::memcpy(page + offset, in, chunk);
        in += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

} // namespace emerald::mem
