/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Stats register themselves with a StatGroup; groups form a tree
 * rooted at the Simulation so a single dump walks every component.
 * TimeSeries stats bucket values over simulated time, which the
 * bandwidth-timeline experiments (paper Figs. 10 and 14) rely on.
 */

#ifndef EMERALD_SIM_STATS_HH
#define EMERALD_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald
{

class CheckpointIn;
class CheckpointOut;
class StatGroup;

/**
 * Receiver for flattened stat values: one call per (name, value)
 * row. Tabular sinks (SQLite) consume stats this way where the JSON
 * sinks consume dumpJson().
 */
using StatValueVisitor =
    std::function<void(const std::string &name, double value)>;

/** Base class of all statistics. */
class Stat
{
  public:
    Stat(StatGroup &parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Write one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os, const std::string &prefix)
        const = 0;

    /**
     * Write this stat as one JSON object (no trailing newline), e.g.
     * {"type":"scalar","value":3,"desc":"..."}.
     */
    virtual void dumpJson(std::ostream &os) const = 0;

    /**
     * Emit this stat as (suffix, value) rows for tabular sinks:
     * scalars emit one row with an empty suffix, compound stats one
     * row per component (".mean", ".count", ...). TimeSeries emits
     * its aggregate only — per-bucket rows belong in the JSON dump.
     */
    virtual void flatten(const StatValueVisitor &emit) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Write this stat's state under @p key (checkpointing). */
    virtual void serialize(CheckpointOut &out,
                           const std::string &key) const = 0;

    /** Restore state written by serialize() (strict: fatal when the
     *  checkpoint lacks @p key — see docs/checkpointing.md). */
    virtual void unserialize(CheckpointIn &in,
                             const std::string &key) = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A simple accumulating counter / value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void flatten(const StatValueVisitor &emit) const override;
    void reset() override { _value = 0.0; }
    void serialize(CheckpointOut &out,
                   const std::string &key) const override;
    void unserialize(CheckpointIn &in,
                     const std::string &key) override;

  private:
    double _value = 0.0;
};

/** Mean/min/max/count over sampled values. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return _count; }
    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }
    double total() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void flatten(const StatValueVisitor &emit) const override;
    void reset() override;
    void serialize(CheckpointOut &out,
                   const std::string &key) const override;
    void unserialize(CheckpointIn &in,
                     const std::string &key) override;

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Values accumulated into fixed-width buckets of simulated time,
 * e.g. bytes transferred per 100 us window.
 */
class TimeSeries : public Stat
{
  public:
    /**
     * Bucket count is capped: samples beyond maxBuckets * bucket_width
     * are clamped into the last bucket (and counted) so one far-future
     * timestamp cannot balloon the vector to gigabytes.
     */
    static constexpr std::size_t maxBuckets = 1u << 20;

    TimeSeries(StatGroup &parent, std::string name, std::string desc,
               Tick bucket_width);

    /** Accumulate @p value into the bucket containing @p when. */
    void add(Tick when, double value);

    Tick bucketWidth() const { return _bucketWidth; }
    const std::vector<double> &buckets() const { return _buckets; }

    /** Samples clamped into the last bucket by the maxBuckets cap. */
    std::uint64_t clampedSamples() const { return _clampedSamples; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void flatten(const StatValueVisitor &emit) const override;
    void reset() override { _buckets.clear(); _clampedSamples = 0; }
    void serialize(CheckpointOut &out,
                   const std::string &key) const override;
    void unserialize(CheckpointIn &in,
                     const std::string &key) override;

  private:
    Tick _bucketWidth;
    std::vector<double> _buckets;
    std::uint64_t _clampedSamples = 0;
};

/**
 * A node in the stats tree. Components subclass or embed a StatGroup;
 * child groups chain to their parents.
 */
class StatGroup
{
  public:
    /** Construct the root group. */
    explicit StatGroup(std::string name);

    /** Construct a child group. */
    StatGroup(StatGroup &parent, std::string name);

    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &statName() const { return _name; }

    /** Fully qualified dotted name. */
    std::string fullStatName() const;

    /** Dump this group's stats and all children, depth first. */
    void dumpStats(std::ostream &os) const;

    /**
     * Dump this group's subtree as a JSON object:
     * {"stats":{"<name>":{...}},"groups":{"<name>":{...}}}.
     * The output is machine-readable (bench diffing, BENCH_*.json)
     * where dumpStats() is human-readable.
     */
    void dumpJson(std::ostream &os) const { dumpJson(os, 0); }

    /**
     * Flatten this subtree into (dotted name, value) rows: every
     * stat's full path relative to this group, expanded through
     * Stat::flatten. The row order matches dumpStats().
     */
    void flattenStats(const StatValueVisitor &emit) const;

    /** Reset this group's stats and all children. */
    void resetStats();

    /**
     * Checkpoint this subtree: every stat is written under its full
     * dotted path. The whole stats tree lands in one "stats" section,
     * so restore overwrites counters after components have re-created
     * in-flight state (fixing up e.g. pool alloc counts).
     */
    void serializeStats(CheckpointOut &out) const;

    /**
     * Restore a subtree written by serializeStats(). Strict by
     * design: a stat present in the binary but absent from the
     * checkpoint is fatal (adding stats is a checkpoint-breaking
     * change; see docs/checkpointing.md).
     */
    void unserializeStats(CheckpointIn &in);

  private:
    friend class Stat;

    void dumpJson(std::ostream &os, int indent) const;

    void addStat(Stat *stat) { _stats.push_back(stat); }
    void addChild(StatGroup *child) { _children.push_back(child); }
    void removeChild(StatGroup *child);

    StatGroup *_parent = nullptr;
    std::string _name;
    std::vector<Stat *> _stats;
    std::vector<StatGroup *> _children;
};

} // namespace emerald

#endif // EMERALD_SIM_STATS_HH
