/**
 * @file
 * Minimal linear algebra for the graphics pipeline: column-vector
 * Vec2/3/4 and a column-major Mat4 with the usual transform helpers.
 */

#ifndef EMERALD_CORE_MATH_HH
#define EMERALD_CORE_MATH_HH

#include <array>
#include <cmath>

namespace emerald::core
{

struct Vec2
{
    float x = 0.0f, y = 0.0f;
};

struct Vec3
{
    float x = 0.0f, y = 0.0f, z = 0.0f;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y,
                                                  z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y,
                                                  z - o.z}; }
    Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
};

inline float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float
length(const Vec3 &v)
{
    return std::sqrt(dot(v, v));
}

inline Vec3
normalize(const Vec3 &v)
{
    float len = length(v);
    return len > 0.0f ? v * (1.0f / len) : v;
}

struct Vec4
{
    float x = 0.0f, y = 0.0f, z = 0.0f, w = 0.0f;
};

/** Column-major 4x4 matrix: m[col][row]. */
struct Mat4
{
    std::array<std::array<float, 4>, 4> m = {};

    static Mat4 identity();
    static Mat4 translate(const Vec3 &t);
    static Mat4 scale(const Vec3 &s);
    static Mat4 rotateX(float radians);
    static Mat4 rotateY(float radians);
    static Mat4 rotateZ(float radians);
    /** Right-handed perspective projection (GL convention). */
    static Mat4 perspective(float fovy_radians, float aspect,
                            float znear, float zfar);
    static Mat4 lookAt(const Vec3 &eye, const Vec3 &center,
                       const Vec3 &up);

    Mat4 operator*(const Mat4 &o) const;
    Vec4 operator*(const Vec4 &v) const;

    /** Flatten column-major into @p out[16] (shader constants). */
    void toColumnMajor(float *out) const;
};

} // namespace emerald::core

#endif // EMERALD_CORE_MATH_HH
