/**
 * @file
 * Ablation study of Emerald's pipeline design choices (extension
 * beyond the paper's figures, probing the mechanisms DESIGN.md calls
 * out):
 *
 *  1. Hi-Z on/off — stage J's value on depth-complex scenes.
 *  2. TC coalescing strength — the TC stage (Fig. 7) exists to pack
 *     fragments of micro-primitives into full warps; 1 engine with a
 *     1-cycle timeout approximates "no coalescing".
 *  3. Early-Z vs forced late-Z — in-shader ROP placement (stages
 *     L vs N).
 */

#include "core/shader_builder.hh"
#include "harness.hh"
#include "registry.hh"
#include "scenes/shaders.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

/** Render frames of a workload under a custom pipeline config. */
double
runConfig(scenes::WorkloadId id, const core::GfxParams &gfx,
          bool allow_early_z, unsigned frames,
          std::uint64_t *hiz_rejects = nullptr,
          double *frags_per_warp = nullptr)
{
    soc::StandaloneGpu base(256, 192);
    core::GraphicsPipeline pipe(base.sim(), "gfx_ablate", base.gpu(),
                                256, 192, gfx);

    // Build the scene manually so the early-Z knob is reachable.
    scenes::Workload w = scenes::makeWorkload(id);
    mem::FunctionalMemory &fmem = base.functionalMemory();

    core::ShaderBuilder shaders;
    const auto *vs = shaders.buildVertex("vs",
                                         scenes::vertexShaderSource());
    core::RenderState state;
    state.cullBackface = false;
    state.blend = w.translucent;
    state.depthWrite = !w.translucent;
    const std::string &fs_src =
        w.translucent ? scenes::fragmentTranslucentSource()
                      : scenes::fragmentTexturedSource();
    const auto *fs =
        shaders.buildFragment("fs", fs_src, state, allow_early_z);

    Addr vb = fmem.allocate(w.mesh.data().size() * 4, 128);
    fmem.write(vb, w.mesh.data().data(), w.mesh.data().size() * 4);
    core::TextureSet textures;
    core::Texture albedo(w.textureSize, w.textureSize,
                         fmem.allocate(std::uint64_t(w.textureSize) *
                                       w.textureSize * 4));
    albedo.fillChecker(w.textureSize / 8, 0xffe0e0e0u, 0xff508ad0u);
    textures.bind(0, &albedo);

    core::Framebuffer fb(256, 192);
    double total = 0.0;
    for (unsigned f = 0; f <= frames; ++f) {
        core::DrawCall draw;
        draw.vertexProgram = vs;
        draw.fragmentProgram = fs;
        draw.vertexCount = w.mesh.vertexCount();
        draw.vertexBufferAddr = vb;
        draw.floatsPerVertex = scenes::vertexFloats;
        draw.numVaryings = scenes::standardVaryings;
        draw.textures = &textures;
        draw.memory = &fmem;
        draw.state = state;
        draw.constants.resize(24, 0.0f);
        w.camera.viewProj(f, 256.0f / 192.0f)
            .toColumnMajor(draw.constants.data());
        draw.constants[16] = 0.45f;
        draw.constants[17] = 0.7f;
        draw.constants[18] = 0.55f;
        draw.constants[19] = 0.25f;
        draw.constants[20] = 0.55f;

        bool done = false;
        core::FrameStats stats;
        pipe.beginFrame(&fb);
        pipe.submitDraw(std::move(draw));
        pipe.endFrame([&](const core::FrameStats &s) {
            stats = s;
            done = true;
        });
        if (!base.runUntil([&] { return done; }))
            fatal("ablation frame stalled");
        if (f > 0) { // Skip warm-up.
            total += static_cast<double>(stats.cycles);
            if (hiz_rejects)
                *hiz_rejects += stats.hizRejects;
            if (frags_per_warp && stats.fragWarps > 0) {
                *frags_per_warp +=
                    static_cast<double>(stats.fragments) /
                    static_cast<double>(stats.fragWarps);
            }
        }
    }
    return total / frames;
}

} // namespace

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "ablation_pipeline");
    const Config &cfg = harness.cfg;
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 2));
    BenchResults &results = *harness.results;

    std::printf("=== Ablation: pipeline design choices ===\n\n");

    // 1. Hi-Z on the depth-complex interior scene.
    {
        core::GfxParams on;
        core::GfxParams off;
        off.hizEnabled = false;
        std::uint64_t rejects = 0;
        double t_on = runConfig(scenes::WorkloadId::W1_Sibenik, on,
                                true, frames, &rejects);
        double t_off = runConfig(scenes::WorkloadId::W1_Sibenik, off,
                                 true, frames);
        results.record("hiz.on_cycles", t_on);
        results.record("hiz.off_cycles", t_off);
        results.record("hiz.saved_frac", (t_off - t_on) / t_off);
        results.record("hiz.tiles_rejected",
                       static_cast<double>(rejects));
        std::printf("Hi-Z (W1-sibenik):  on %.0f cy, off %.0f cy -> "
                    "%.1f%% saved; %llu tiles rejected\n",
                    t_on, t_off, (t_off - t_on) / t_off * 100.0,
                    (unsigned long long)rejects);
    }

    // 2. TC coalescing on the micro-primitive-heavy blob.
    {
        core::GfxParams full;
        core::GfxParams weak;
        weak.tcEnginesPerCluster = 1;
        weak.tcFlushTimeoutCycles = 1;
        double fpw_full = 0, fpw_weak = 0;
        double t_full = runConfig(scenes::WorkloadId::W4_Suzanne,
                                  full, true, frames, nullptr,
                                  &fpw_full);
        double t_weak = runConfig(scenes::WorkloadId::W4_Suzanne,
                                  weak, true, frames, nullptr,
                                  &fpw_weak);
        results.record("tc.full_cycles", t_full);
        results.record("tc.weak_cycles", t_weak);
        results.record("tc.full_frag_per_warp", fpw_full / frames);
        results.record("tc.weak_frag_per_warp", fpw_weak / frames);
        std::printf("TC coalescing (W4): full %.0f cy (%.1f frag/"
                    "warp), weak %.0f cy (%.1f frag/warp)\n",
                    t_full, fpw_full / frames, t_weak,
                    fpw_weak / frames);
    }

    // 3. Early-Z vs forced late-Z.
    {
        core::GfxParams gfx;
        double t_early = runConfig(scenes::WorkloadId::W6_Teapot, gfx,
                                   true, frames);
        double t_late = runConfig(scenes::WorkloadId::W6_Teapot, gfx,
                                  false, frames);
        results.record("rop.early_cycles", t_early);
        results.record("rop.late_cycles", t_late);
        results.record("rop.saved_frac", (t_late - t_early) / t_late);
        std::printf("ROP placement (W6): early-Z %.0f cy, late-Z "
                    "%.0f cy -> %.1f%% saved by early-Z\n",
                    t_early, t_late,
                    (t_late - t_early) / t_late * 100.0);
    }
    return 0;
}

const RegisterScenario reg{{
    .name = "ablation_pipeline",
    .desc = "Ablation: Hi-Z, TC coalescing and early-Z pipeline choices",
    .axes = {"frames"},
    .expectedShape = "each mechanism saves cycles on its stressor scene",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
