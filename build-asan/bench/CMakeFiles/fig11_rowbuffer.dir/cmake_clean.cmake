file(REMOVE_RECURSE
  "CMakeFiles/fig11_rowbuffer.dir/fig11_rowbuffer.cpp.o"
  "CMakeFiles/fig11_rowbuffer.dir/fig11_rowbuffer.cpp.o.d"
  "fig11_rowbuffer"
  "fig11_rowbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rowbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
