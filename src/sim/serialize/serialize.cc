#include "sim/serialize/serialize.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace emerald
{

namespace
{

const char *
recordTypeName(RecordType t)
{
    switch (t) {
    case RecordType::U64: return "u64";
    case RecordType::I64: return "i64";
    case RecordType::F64: return "f64";
    case RecordType::Bool: return "bool";
    case RecordType::Str: return "str";
    case RecordType::Blob: return "blob";
    case RecordType::U64Vec: return "u64vec";
    case RecordType::F64Vec: return "f64vec";
    }
    return "?";
}

void
appendLE(std::string &buf, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
readLE(const char *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

/**
 * Internal parse failure: thrown by the manifest scanner so the two
 * consumers can diverge — CheckpointReader turns it into the usual
 * fatal(), probeCheckpoint() into a recoverable MalformedManifest.
 */
struct ManifestError
{
    std::string msg;
};

/**
 * Minimal JSON scanner for the manifest we write ourselves: objects,
 * arrays, strings and unsigned integers. All numeric manifest fields
 * are written as JSON strings (u64 values do not survive a double
 * round-trip), so the number production only needs to tolerate, not
 * preserve, foreign numbers.
 */
class ManifestParser
{
  public:
    ManifestParser(const std::string &text, std::string path)
        : _text(text), _path(std::move(path))
    {}

    [[noreturn]] void
    die(const char *what) const
    {
        throw ManifestError{strprintf(
            "checkpoint manifest '%s': malformed JSON (%s near "
            "offset %zu)", _path.c_str(), what, _pos)};
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\n' ||
                _text[_pos] == '\t' || _text[_pos] == '\r'))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _text.size())
            die("unexpected end");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            die("unexpected character");
        ++_pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                die("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (_pos >= _text.size())
                    die("bad escape");
                char e = _text[_pos++];
                switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case '/': out.push_back('/'); break;
                default: die("unsupported escape");
                }
            } else {
                out.push_back(c);
            }
        }
    }

    /** Parse a value but keep only strings; others are skipped. */
    std::string
    parseScalar()
    {
        char c = peek();
        if (c == '"')
            return parseString();
        // Bare number (tolerated, returned as text).
        std::string out;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '-' || _text[_pos] == '.' ||
                _text[_pos] == 'e' || _text[_pos] == 'E' ||
                _text[_pos] == '+'))
            out.push_back(_text[_pos++]);
        if (out.empty())
            die("expected scalar");
        return out;
    }

    /**
     * Parse an object of scalar fields plus at most one array-valued
     * field; @p onField receives scalar fields, @p onArrayElem is
     * invoked with a fresh sub-object parser position for each array
     * element (used for "sections").
     */
    template <typename FieldFn, typename ArrayFn>
    void
    parseObject(FieldFn onField, ArrayFn onArrayElem)
    {
        expect('{');
        if (peek() == '}') {
            ++_pos;
            return;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            if (peek() == '[') {
                ++_pos;
                if (peek() == ']') {
                    ++_pos;
                } else {
                    while (true) {
                        onArrayElem(key);
                        char c = peek();
                        if (c == ',') {
                            ++_pos;
                            continue;
                        }
                        expect(']');
                        break;
                    }
                }
            } else {
                onField(key, parseScalar());
            }
            char c = peek();
            if (c == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return;
        }
    }

  private:
    const std::string &_text;
    std::string _path;
    std::size_t _pos = 0;
};

std::uint64_t
parseU64Field(const std::string &text, const std::string &key,
              const std::string &path)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        throw ManifestError{strprintf(
            "checkpoint manifest '%s': field '%s' ('%s') is not an "
            "unsigned integer", path.c_str(), key.c_str(),
            text.c_str())};
    }
    return v;
}

/** One parsed section-table entry. */
struct SectionEntry
{
    std::size_t offset = 0;
    std::size_t size = 0;
    std::uint32_t crc = 0;
    /** Version-1 manifests carry no CRC; verification is skipped. */
    bool hasCrc = false;
};

/** Everything a manifest.json holds, independent of error policy. */
struct ManifestData
{
    std::uint64_t version = 0;
    bool sawVersion = false;
    std::uint64_t fingerprint = 0;
    std::uint64_t tick = 0;
    std::uint64_t numProcessed = 0;
    std::map<std::string, SectionEntry> sections;
};

/** Parse @p text (throws ManifestError on any malformation). */
ManifestData
parseManifestText(const std::string &text, const std::string &path)
{
    ManifestData md;
    ManifestParser p(text, path);
    p.parseObject(
        [&](const std::string &key, const std::string &value) {
            if (key == "format_version") {
                md.version = parseU64Field(value, key, path);
                md.sawVersion = true;
            } else if (key == "config_fingerprint") {
                md.fingerprint = parseU64Field(value, key, path);
            } else if (key == "tick") {
                md.tick = parseU64Field(value, key, path);
            } else if (key == "num_processed") {
                md.numProcessed = parseU64Field(value, key, path);
            }
            // Unknown scalar fields are ignored: adding manifest
            // metadata is a compatible change.
        },
        [&](const std::string &key) {
            std::string name;
            SectionEntry entry;
            p.parseObject(
                [&](const std::string &k, const std::string &v) {
                    if (k == "name") {
                        name = v;
                    } else if (k == "offset") {
                        entry.offset = static_cast<std::size_t>(
                            parseU64Field(v, k, path));
                    } else if (k == "size") {
                        entry.size = static_cast<std::size_t>(
                            parseU64Field(v, k, path));
                    } else if (k == "crc") {
                        entry.crc = static_cast<std::uint32_t>(
                            parseU64Field(v, k, path));
                        entry.hasCrc = true;
                    }
                },
                [&](const std::string &) {
                    p.die("nested array in section entry");
                });
            if (key != "sections") {
                throw ManifestError{strprintf(
                    "checkpoint manifest '%s': unexpected array "
                    "field '%s'", path.c_str(), key.c_str())};
            }
            if (name.empty()) {
                throw ManifestError{strprintf(
                    "checkpoint manifest '%s': section without a "
                    "name", path.c_str())};
            }
            auto [it, inserted] = md.sections.emplace(name, entry);
            if (!inserted) {
                throw ManifestError{strprintf(
                    "checkpoint manifest '%s': duplicate section "
                    "'%s'", path.c_str(), name.c_str())};
            }
        });
    if (!md.sawVersion) {
        throw ManifestError{strprintf(
            "checkpoint manifest '%s': missing format_version",
            path.c_str())};
    }
    return md;
}

/** Read a whole file into @p out; false when it cannot be opened. */
bool
slurpFile(const std::string &path, std::string &out, bool binary)
{
    std::ifstream in(path, binary ? std::ios::binary
                                  : std::ios::in);
    if (!in.is_open())
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

std::uint32_t
crc32(const void *bytes, std::size_t n)
{
    // Bitwise (table-free) reflected CRC-32: checkpoint sections are
    // at most a few MB, so the 8x table speedup is not worth the
    // cache footprint here.
    const auto *p = static_cast<const unsigned char *>(bytes);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i) {
        crc ^= p[i];
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (0xedb88320u & (-(crc & 1u)));
    }
    return crc ^ 0xffffffffu;
}

const char *
ckptIntegrityName(CkptIntegrity status)
{
    switch (status) {
    case CkptIntegrity::Ok: return "ok";
    case CkptIntegrity::MissingManifest: return "missing-manifest";
    case CkptIntegrity::MalformedManifest: return "malformed-manifest";
    case CkptIntegrity::UnsupportedVersion: return "unsupported-version";
    case CkptIntegrity::MissingData: return "missing-data";
    case CkptIntegrity::TruncatedSection: return "truncated-section";
    case CkptIntegrity::CrcMismatch: return "crc-mismatch";
    }
    return "?";
}

CkptProbe
probeCheckpoint(const std::string &dir)
{
    CkptProbe probe;
    std::string manifest_path = dir + "/manifest.json";
    std::string text;
    if (!slurpFile(manifest_path, text, /*binary=*/false)) {
        probe.status = CkptIntegrity::MissingManifest;
        probe.detail = "cannot open " + manifest_path;
        return probe;
    }

    ManifestData md;
    try {
        md = parseManifestText(text, manifest_path);
    } catch (const ManifestError &err) {
        probe.status = CkptIntegrity::MalformedManifest;
        probe.detail = err.msg;
        return probe;
    }
    probe.fingerprint = md.fingerprint;
    probe.tick = md.tick;
    probe.numProcessed = md.numProcessed;

    if (md.version < checkpointMinReadVersion ||
        md.version > checkpointFormatVersion) {
        probe.status = CkptIntegrity::UnsupportedVersion;
        probe.detail = strprintf(
            "format version %llu (this binary reads %llu..%llu)",
            (unsigned long long)md.version,
            (unsigned long long)checkpointMinReadVersion,
            (unsigned long long)checkpointFormatVersion);
        return probe;
    }

    std::string data;
    if (!slurpFile(dir + "/data.bin", data, /*binary=*/true)) {
        probe.status = CkptIntegrity::MissingData;
        probe.detail = "cannot open " + dir + "/data.bin";
        return probe;
    }

    for (const auto &[name, entry] : md.sections) {
        if (entry.offset + entry.size > data.size()) {
            probe.status = CkptIntegrity::TruncatedSection;
            probe.detail = strprintf(
                "section '%s' (offset %zu, size %zu) extends past "
                "the end of data.bin (%zu bytes)", name.c_str(),
                entry.offset, entry.size, data.size());
            return probe;
        }
        if (entry.hasCrc) {
            std::uint32_t actual =
                crc32(data.data() + entry.offset, entry.size);
            if (actual != entry.crc) {
                probe.status = CkptIntegrity::CrcMismatch;
                probe.detail = strprintf(
                    "section '%s': crc %08x, manifest says %08x",
                    name.c_str(), actual, entry.crc);
                return probe;
            }
        }
    }

    probe.status = CkptIntegrity::Ok;
    probe.detail.clear();
    return probe;
}

//
// CheckpointOut
//

void
CheckpointOut::header(const std::string &key, RecordType type)
{
    panic_if(key.empty() || key.size() > 0xffff,
             "checkpoint section '%s': bad key length %zu",
             _section.c_str(), key.size());
    auto [it, inserted] = _seen.emplace(key, type);
    panic_if(!inserted, "checkpoint section '%s': duplicate key '%s'",
             _section.c_str(), key.c_str());
    _buf.push_back(static_cast<char>(type));
    appendLE(_buf, key.size(), 2);
    _buf.append(key);
    ++_numRecords;
}

void
CheckpointOut::raw(const void *bytes, std::size_t n)
{
    _buf.append(static_cast<const char *>(bytes), n);
}

void
CheckpointOut::putU64(const std::string &key, std::uint64_t v)
{
    header(key, RecordType::U64);
    appendLE(_buf, v, 8);
}

void
CheckpointOut::putI64(const std::string &key, std::int64_t v)
{
    header(key, RecordType::I64);
    appendLE(_buf, static_cast<std::uint64_t>(v), 8);
}

void
CheckpointOut::putF64(const std::string &key, double v)
{
    header(key, RecordType::F64);
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    appendLE(_buf, bits, 8);
}

void
CheckpointOut::putBool(const std::string &key, bool v)
{
    header(key, RecordType::Bool);
    _buf.push_back(v ? 1 : 0);
}

void
CheckpointOut::putStr(const std::string &key, const std::string &v)
{
    header(key, RecordType::Str);
    appendLE(_buf, v.size(), 4);
    _buf.append(v);
}

void
CheckpointOut::putBlob(const std::string &key, const void *bytes,
                       std::size_t n)
{
    header(key, RecordType::Blob);
    appendLE(_buf, n, 4);
    raw(bytes, n);
}

void
CheckpointOut::putU64Vec(const std::string &key,
                         const std::vector<std::uint64_t> &v)
{
    header(key, RecordType::U64Vec);
    appendLE(_buf, v.size(), 4);
    for (std::uint64_t x : v)
        appendLE(_buf, x, 8);
}

void
CheckpointOut::putF64Vec(const std::string &key,
                         const std::vector<double> &v)
{
    header(key, RecordType::F64Vec);
    appendLE(_buf, v.size(), 4);
    for (double x : v) {
        std::uint64_t bits;
        std::memcpy(&bits, &x, 8);
        appendLE(_buf, bits, 8);
    }
}

//
// CheckpointIn
//

CheckpointIn::CheckpointIn(std::string section_name, const char *bytes,
                           std::size_t n)
    : _section(std::move(section_name))
{
    std::size_t pos = 0;
    auto need = [&](std::size_t k) {
        fatal_if(pos + k > n,
                 "checkpoint section '%s': truncated at offset %zu",
                 _section.c_str(), pos);
    };
    while (pos < n) {
        need(3);
        auto type = static_cast<RecordType>(
            static_cast<unsigned char>(bytes[pos]));
        fatal_if(static_cast<unsigned>(type) >
                     static_cast<unsigned>(RecordType::F64Vec),
                 "checkpoint section '%s': bad record type %u at "
                 "offset %zu", _section.c_str(),
                 static_cast<unsigned>(type), pos);
        std::size_t key_len = readLE(bytes + pos + 1, 2);
        pos += 3;
        need(key_len);
        std::string key(bytes + pos, key_len);
        pos += key_len;

        std::size_t payload_len = 0;
        switch (type) {
        case RecordType::U64:
        case RecordType::I64:
        case RecordType::F64:
            payload_len = 8;
            break;
        case RecordType::Bool:
            payload_len = 1;
            break;
        case RecordType::Str:
        case RecordType::Blob:
            need(4);
            payload_len = readLE(bytes + pos, 4);
            pos += 4;
            break;
        case RecordType::U64Vec:
        case RecordType::F64Vec:
            need(4);
            payload_len = readLE(bytes + pos, 4) * 8;
            pos += 4;
            break;
        }
        need(payload_len);
        auto [it, inserted] = _records.emplace(
            std::move(key),
            Record{type, std::string(bytes + pos, payload_len)});
        fatal_if(!inserted,
                 "checkpoint section '%s': duplicate key '%s'",
                 _section.c_str(), it->first.c_str());
        pos += payload_len;
    }
}

const CheckpointIn::Record &
CheckpointIn::fetch(const std::string &key, RecordType want) const
{
    auto it = _records.find(key);
    fatal_if(it == _records.end(),
             "checkpoint section '%s': missing key '%s' — the "
             "checkpoint does not match this binary's schema",
             _section.c_str(), key.c_str());
    fatal_if(it->second.type != want,
             "checkpoint section '%s': key '%s' is %s, expected %s",
             _section.c_str(), key.c_str(),
             recordTypeName(it->second.type), recordTypeName(want));
    return it->second;
}

std::uint64_t
CheckpointIn::getU64(const std::string &key) const
{
    return readLE(fetch(key, RecordType::U64).payload.data(), 8);
}

std::int64_t
CheckpointIn::getI64(const std::string &key) const
{
    return static_cast<std::int64_t>(
        readLE(fetch(key, RecordType::I64).payload.data(), 8));
}

double
CheckpointIn::getF64(const std::string &key) const
{
    std::uint64_t bits =
        readLE(fetch(key, RecordType::F64).payload.data(), 8);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

bool
CheckpointIn::getBool(const std::string &key) const
{
    return fetch(key, RecordType::Bool).payload[0] != 0;
}

std::string
CheckpointIn::getStr(const std::string &key) const
{
    return fetch(key, RecordType::Str).payload;
}

const std::string &
CheckpointIn::getBlob(const std::string &key) const
{
    return fetch(key, RecordType::Blob).payload;
}

std::vector<std::uint64_t>
CheckpointIn::getU64Vec(const std::string &key) const
{
    const std::string &p = fetch(key, RecordType::U64Vec).payload;
    std::vector<std::uint64_t> out(p.size() / 8);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = readLE(p.data() + i * 8, 8);
    return out;
}

std::vector<double>
CheckpointIn::getF64Vec(const std::string &key) const
{
    const std::string &p = fetch(key, RecordType::F64Vec).payload;
    std::vector<double> out(p.size() / 8);
    for (std::size_t i = 0; i < out.size(); ++i) {
        std::uint64_t bits = readLE(p.data() + i * 8, 8);
        std::memcpy(&out[i], &bits, 8);
    }
    return out;
}

//
// CheckpointWriter
//

CheckpointWriter::CheckpointWriter(std::string dir,
                                   std::uint64_t config_fingerprint,
                                   Tick tick,
                                   std::uint64_t num_processed)
    : _dir(std::move(dir)), _fingerprint(config_fingerprint),
      _tick(tick), _numProcessed(num_processed)
{
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    fatal_if(static_cast<bool>(ec),
             "cannot create checkpoint directory '%s': %s",
             _dir.c_str(), ec.message().c_str());
}

CheckpointWriter::~CheckpointWriter()
{
    if (!_finalized)
        finalize();
}

CheckpointOut &
CheckpointWriter::section(const std::string &name)
{
    panic_if(_finalized, "checkpoint '%s' already finalized",
             _dir.c_str());
    for (const CheckpointOut &s : _sections)
        panic_if(s.sectionName() == name,
                 "checkpoint '%s': duplicate section '%s'",
                 _dir.c_str(), name.c_str());
    _sections.emplace_back(name);
    return _sections.back();
}

void
CheckpointWriter::finalize()
{
    if (_finalized)
        return;
    _finalized = true;

    std::string data_path = _dir + "/data.bin";
    std::ofstream data(data_path, std::ios::binary);
    fatal_if(!data.is_open(), "cannot write '%s'", data_path.c_str());

    std::ostringstream manifest;
    manifest << "{\n"
             << "  \"format_version\": \"" << checkpointFormatVersion
             << "\",\n"
             << "  \"config_fingerprint\": \"" << _fingerprint
             << "\",\n"
             << "  \"tick\": \"" << _tick << "\",\n"
             << "  \"num_processed\": \"" << _numProcessed << "\",\n"
             << "  \"sections\": [\n";
    std::size_t offset = 0;
    for (std::size_t i = 0; i < _sections.size(); ++i) {
        const CheckpointOut &s = _sections[i];
        data.write(s.bytes().data(),
                   static_cast<std::streamsize>(s.bytes().size()));
        manifest << "    {\"name\": \"" << jsonEscape(s.sectionName())
                 << "\", \"offset\": \"" << offset
                 << "\", \"size\": \"" << s.bytes().size()
                 << "\", \"crc\": \""
                 << crc32(s.bytes().data(), s.bytes().size())
                 << "\"}"
                 << (i + 1 < _sections.size() ? "," : "") << "\n";
        offset += s.bytes().size();
    }
    manifest << "  ]\n}\n";
    data.close();
    fatal_if(data.fail(), "write to '%s' failed", data_path.c_str());

    std::string manifest_path = _dir + "/manifest.json";
    std::ofstream mf(manifest_path);
    fatal_if(!mf.is_open(), "cannot write '%s'",
             manifest_path.c_str());
    mf << manifest.str();
    mf.close();
    fatal_if(mf.fail(), "write to '%s' failed", manifest_path.c_str());
}

//
// CheckpointReader
//

CheckpointReader::CheckpointReader(const std::string &dir) : _dir(dir)
{
    std::string manifest_path = _dir + "/manifest.json";
    std::string text;
    fatal_if(!slurpFile(manifest_path, text, /*binary=*/false),
             "cannot open checkpoint manifest '%s' — is '%s' a "
             "checkpoint directory?", manifest_path.c_str(),
             _dir.c_str());

    ManifestData md;
    try {
        md = parseManifestText(text, manifest_path);
    } catch (const ManifestError &err) {
        fatal("%s", err.msg.c_str());
    }
    _fingerprint = md.fingerprint;
    _tick = md.tick;
    _numProcessed = md.numProcessed;

    fatal_if(md.version < checkpointMinReadVersion ||
                 md.version > checkpointFormatVersion,
             "checkpoint '%s' has format version %llu; this binary "
             "reads versions %llu..%llu", _dir.c_str(),
             (unsigned long long)md.version,
             (unsigned long long)checkpointMinReadVersion,
             (unsigned long long)checkpointFormatVersion);

    std::string data_path = _dir + "/data.bin";
    fatal_if(!slurpFile(data_path, _data, /*binary=*/true),
             "cannot open checkpoint data '%s'", data_path.c_str());

    for (const auto &[name, entry] : md.sections) {
        fatal_if(entry.offset + entry.size > _data.size(),
                 "checkpoint '%s': section '%s' extends past the end "
                 "of data.bin", _dir.c_str(), name.c_str());
        // Strict readers verify too: the probe-then-restore window is
        // short but a checkpoint can rot (or be truncated) between
        // the supervisor's probe and the child's restore.
        if (entry.hasCrc) {
            std::uint32_t actual =
                crc32(_data.data() + entry.offset, entry.size);
            fatal_if(actual != entry.crc,
                     "checkpoint '%s': section '%s' fails CRC "
                     "verification (%08x, manifest says %08x) — the "
                     "checkpoint is corrupt", _dir.c_str(),
                     name.c_str(), actual, entry.crc);
        }
        _sections.emplace(name,
                          SectionRef{entry.offset, entry.size});
    }
}

bool
CheckpointReader::hasSection(const std::string &name) const
{
    return _sections.count(name) != 0;
}

CheckpointIn
CheckpointReader::section(const std::string &name) const
{
    auto it = _sections.find(name);
    fatal_if(it == _sections.end(),
             "checkpoint '%s': no section '%s' — the checkpointed "
             "topology does not match this configuration",
             _dir.c_str(), name.c_str());
    return CheckpointIn(name, _data.data() + it->second.offset,
                        it->second.size);
}

} // namespace emerald
