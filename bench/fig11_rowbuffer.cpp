/**
 * @file
 * Paper Fig. 11: DRAM row-buffer hit rate and bytes accessed per row
 * activation, HMC normalized to the baseline, for M1-M4.
 * Expected shape: HMC's line-striped IP channel sacrifices locality —
 * row-hit rate drops (paper: ~-15%) and bytes per activation drop
 * sharply (paper: ~-60%).
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig11_rowbuffer");
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 11: HMC row-buffer behaviour normalized to "
                "BAS ===\n");
    std::printf("%-14s %16s %16s\n", "model", "rowbuf hit rate",
                "bytes/activation");

    auto models = caseStudy1Models();
    if (quick)
        models = {scenes::WorkloadId::M2_Cube};

    double sum_hits = 0.0, sum_bytes = 0.0;
    for (scenes::WorkloadId model : models) {
        double base_hit, base_bpa, hmc_hit, hmc_bpa;
        {
            soc::SocTop soc(caseStudy1Params(model,
                                             soc::MemConfig::BAS,
                                             false),
                            harness.builder());
            soc.run();
            base_hit = soc.memory().rowHitRate();
            base_bpa = soc.memory().meanBytesPerActivation();
        }
        {
            soc::SocTop soc(caseStudy1Params(model,
                                             soc::MemConfig::HMC,
                                             false),
                            harness.builder());
            soc.run();
            hmc_hit = soc.memory().rowHitRate();
            hmc_bpa = soc.memory().meanBytesPerActivation();
        }
        double nh = base_hit > 0 ? hmc_hit / base_hit : 0;
        double nb = base_bpa > 0 ? hmc_bpa / base_bpa : 0;
        sum_hits += nh;
        sum_bytes += nb;
        results.record(std::string(scenes::workloadName(model)) +
                           ".rowhit_norm",
                       nh);
        results.record(std::string(scenes::workloadName(model)) +
                           ".bytes_per_act_norm",
                       nb);
        std::printf("%-14s %16.3f %16.3f\n",
                    scenes::workloadName(model), nh, nb);
        std::fflush(stdout);
    }
    std::printf("%-14s %16.3f %16.3f\n", "AVG",
                sum_hits / static_cast<double>(models.size()),
                sum_bytes / static_cast<double>(models.size()));
    std::printf("\npaper shape: hit rate ~0.85x, bytes/act ~0.4x "
                "under HMC\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig11_rowbuffer",
    .desc = "Fig. 11: HMC row-buffer hit rate and bytes/activation vs BAS",
    .axes = {"quick"},
    .expectedShape = "hit rate ~0.85x, bytes/act ~0.4x under HMC",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
