/**
 * @file
 * The framebuffer: functional color (RGBA8) and depth (F32) planes
 * plus the in-shader raster operations the fragment shaders invoke
 * through the RopIface (paper Fig. 3 stages L-N: early/late depth
 * test, blending, framebuffer commit).
 *
 * Both planes occupy linear (row-major) address ranges so the timing
 * model sees realistic depth/color/display streams; the display
 * controller scans the color plane sequentially.
 */

#ifndef EMERALD_CORE_FRAMEBUFFER_HH
#define EMERALD_CORE_FRAMEBUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/isa/executor.hh"
#include "sim/serialize/serialize.hh"
#include "sim/types.hh"

namespace emerald::core
{

class Framebuffer : public gpu::isa::RopIface, public Serializable
{
  public:
    /**
     * @param color_base physical base address of the color plane.
     * @param depth_base physical base address of the depth plane.
     */
    Framebuffer(unsigned width, unsigned height,
                Addr color_base = 0x80000000ULL,
                Addr depth_base = 0x90000000ULL);

    unsigned width() const { return _width; }
    unsigned height() const { return _height; }
    Addr colorBase() const { return _colorBase; }
    Addr depthBase() const { return _depthBase; }
    std::uint64_t colorBytes() const
    {
        return std::uint64_t(_width) * _height * 4;
    }

    /** Clear color to packed RGBA @p rgba and depth to @p depth. */
    void clear(std::uint32_t rgba = 0xff000000u, float depth = 1.0f);

    /** Per-draw raster state. */
    void setDepthWrite(bool enabled) { _depthWrite = enabled; }

    /** @{ RopIface (invoked from fragment shaders). */
    bool depthTest(int x, int y, float z, Addr &addr) override;
    void blendPixel(int x, int y, const float rgba[4],
                    Addr &addr) override;
    void storePixel(int x, int y, const float rgba[4],
                    Addr &addr) override;
    /** @} */

    std::uint32_t pixel(int x, int y) const
    {
        return _color[idx(x, y)];
    }
    float depthAt(int x, int y) const { return _depth[idx(x, y)]; }

    Addr
    colorAddr(int x, int y) const
    {
        return _colorBase + static_cast<Addr>(idx(x, y)) * 4;
    }
    Addr
    depthAddr(int x, int y) const
    {
        return _depthBase + static_cast<Addr>(idx(x, y)) * 4;
    }

    /** FNV-1a hash of the color plane, for golden-image tests. */
    std::uint64_t colorHash() const;

    /** Write a binary PPM (P6) of the color plane. */
    bool writePpm(const std::string &path) const;

    /** Pack float RGBA in [0,1] to 8-bit ABGR (R in low byte). */
    static std::uint32_t packRgba(const float rgba[4]);

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

  private:
    std::size_t
    idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * _width +
               static_cast<std::size_t>(x);
    }

    unsigned _width;
    unsigned _height;
    Addr _colorBase;
    Addr _depthBase;
    bool _depthWrite = true;

    std::vector<std::uint32_t> _color;
    std::vector<float> _depth;
};

} // namespace emerald::core

#endif // EMERALD_CORE_FRAMEBUFFER_HH
