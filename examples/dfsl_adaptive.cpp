/**
 * @file
 * DFSL in action (paper case study II): render an animated workload
 * while the DFSL controller alternates evaluation and run phases,
 * adapting the WT granularity to the content. Prints the per-frame
 * WT choice and execution time.
 *
 * Usage: dfsl_adaptive [--workload=W1..W6] [--frames=24]
 */

#include <cstdio>
#include <string>

#include "core/dfsl.hh"
#include "sim/config.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

scenes::WorkloadId
workloadFromName(const std::string &name)
{
    using scenes::WorkloadId;
    if (name == "W1")
        return WorkloadId::W1_Sibenik;
    if (name == "W2")
        return WorkloadId::W2_Spot;
    if (name == "W3")
        return WorkloadId::W3_Cube;
    if (name == "W4")
        return WorkloadId::W4_Suzanne;
    if (name == "W6")
        return WorkloadId::W6_Teapot;
    return WorkloadId::W5_SuzanneAlpha;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 24));
    auto id = workloadFromName(cfg.getString("workload", "W5"));

    soc::StandaloneGpu rig(256, 192, soc::caseStudy2GpuParams(),
                           soc::caseStudy2MemParams(),
                           SimulationBuilder().observability(cfg));
    scenes::SceneRenderer scene(rig.pipeline(),
                                scenes::makeWorkload(id),
                                rig.functionalMemory());

    core::DfslParams dp;
    dp.minWT = 1;
    dp.maxWT = 10;
    dp.runFrames = 8;
    core::DfslController dfsl(dp);

    std::printf("DFSL on %s (eval %u frames, run %u frames)\n",
                scene.workload().name.c_str(),
                dp.maxWT - dp.minWT + 1, dp.runFrames);
    std::printf("%-6s %-5s %-6s %14s\n", "frame", "phase", "WT",
                "cycles");

    for (unsigned f = 0; f < frames; ++f) {
        unsigned wt = dfsl.wtForNextFrame();
        rig.pipeline().setWtSize(wt);

        bool done = false;
        core::FrameStats stats;
        scene.renderFrame(f, [&](const core::FrameStats &s) {
            stats = s;
            done = true;
        });
        if (!rig.runUntil([&] { return done; })) {
            std::fprintf(stderr, "frame %u stalled\n", f);
            return 1;
        }
        bool eval = dfsl.evaluating();
        dfsl.frameCompleted(stats.cycles);
        std::printf("%-6u %-5s %-6u %14llu\n", f, eval ? "eval" : "run",
                    wt, (unsigned long long)stats.cycles);
    }
    std::printf("best WT discovered: %u\n", dfsl.bestWT());
    return 0;
}
