#include "gpu/isa/executor.hh"

#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace emerald::gpu::isa
{

namespace
{

float
asFloat(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

std::uint32_t
asBits(float value)
{
    return std::bit_cast<std::uint32_t>(value);
}

/** Read an operand as raw 32-bit value for thread @p t. */
std::uint32_t
readRaw(const Operand &op, const ThreadContext &t, const ExecEnv &env,
        DataType type)
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return t.r[op.index];
      case Operand::Kind::Imm:
        return op.imm.u;
      case Operand::Kind::Const:
        if (env.constants &&
            op.index < static_cast<int>(env.numConstants)) {
            return asBits(env.constants[op.index]);
        }
        return 0;
      case Operand::Kind::Attr:
        return asBits(t.a[op.index]);
      case Operand::Kind::Out:
        return asBits(t.o[op.index]);
      case Operand::Kind::Special:
        switch (op.special) {
          case SpecialReg::FragX:
            return type == DataType::F32
                       ? asBits(static_cast<float>(t.fragX))
                       : static_cast<std::uint32_t>(t.fragX);
          case SpecialReg::FragY:
            return type == DataType::F32
                       ? asBits(static_cast<float>(t.fragY))
                       : static_cast<std::uint32_t>(t.fragY);
          case SpecialReg::FragZ:
            return asBits(t.fragZ);
          case SpecialReg::VertId:
            return type == DataType::F32
                       ? asBits(static_cast<float>(t.vertexId))
                       : t.vertexId;
          case SpecialReg::TidX: return t.tidX;
          case SpecialReg::TidY: return t.tidY;
          case SpecialReg::CtaIdX: return t.ctaIdX;
          case SpecialReg::CtaIdY: return t.ctaIdY;
          case SpecialReg::NTidX: return t.ntidX;
          case SpecialReg::NTidY: return t.ntidY;
        }
        return 0;
      default:
        panic("bad source operand kind");
    }
}

float
readF(const Operand &op, const ThreadContext &t, const ExecEnv &env)
{
    return asFloat(readRaw(op, t, env, DataType::F32));
}

bool
compare(CmpOp cmp, DataType type, std::uint32_t a, std::uint32_t b)
{
    if (type == DataType::F32) {
        float x = asFloat(a);
        float y = asFloat(b);
        switch (cmp) {
          case CmpOp::EQ: return x == y;
          case CmpOp::NE: return x != y;
          case CmpOp::LT: return x < y;
          case CmpOp::LE: return x <= y;
          case CmpOp::GT: return x > y;
          case CmpOp::GE: return x >= y;
        }
    } else if (type == DataType::S32) {
        auto x = static_cast<std::int32_t>(a);
        auto y = static_cast<std::int32_t>(b);
        switch (cmp) {
          case CmpOp::EQ: return x == y;
          case CmpOp::NE: return x != y;
          case CmpOp::LT: return x < y;
          case CmpOp::LE: return x <= y;
          case CmpOp::GT: return x > y;
          case CmpOp::GE: return x >= y;
        }
    } else {
        switch (cmp) {
          case CmpOp::EQ: return a == b;
          case CmpOp::NE: return a != b;
          case CmpOp::LT: return a < b;
          case CmpOp::LE: return a <= b;
          case CmpOp::GT: return a > b;
          case CmpOp::GE: return a >= b;
        }
    }
    return false;
}

std::uint32_t
aluOp(const Instruction &instr, const ThreadContext &t,
      const ExecEnv &env)
{
    const DataType type = instr.type;
    std::uint32_t ra = readRaw(instr.src[0], t, env, type);
    std::uint32_t rb = instr.src[1].kind == Operand::Kind::None
                           ? 0
                           : readRaw(instr.src[1], t, env, type);
    std::uint32_t rc = instr.src[2].kind == Operand::Kind::None
                           ? 0
                           : readRaw(instr.src[2], t, env, type);

    if (type == DataType::F32) {
        float a = asFloat(ra);
        float b = asFloat(rb);
        float c = asFloat(rc);
        switch (instr.op) {
          case Opcode::MOV: return ra;
          case Opcode::ADD: return asBits(a + b);
          case Opcode::SUB: return asBits(a - b);
          case Opcode::MUL: return asBits(a * b);
          case Opcode::DIV: return asBits(a / b);
          case Opcode::MAD: return asBits(a * b + c);
          case Opcode::MIN: return asBits(std::fmin(a, b));
          case Opcode::MAX: return asBits(std::fmax(a, b));
          case Opcode::ABS: return asBits(std::fabs(a));
          case Opcode::NEG: return asBits(-a);
          case Opcode::FLR: return asBits(std::floor(a));
          case Opcode::FRC: return asBits(a - std::floor(a));
          case Opcode::RCP: return asBits(1.0f / a);
          case Opcode::RSQ: return asBits(1.0f / std::sqrt(a));
          case Opcode::SQRT: return asBits(std::sqrt(a));
          case Opcode::EX2: return asBits(std::exp2(a));
          case Opcode::LG2: return asBits(std::log2(a));
          case Opcode::SIN: return asBits(std::sin(a));
          case Opcode::COS: return asBits(std::cos(a));
          case Opcode::POW: return asBits(std::pow(a, b));
          default: break;
        }
    } else {
        auto sa = static_cast<std::int32_t>(ra);
        auto sb = static_cast<std::int32_t>(rb);
        auto sc = static_cast<std::int32_t>(rc);
        switch (instr.op) {
          case Opcode::MOV: return ra;
          case Opcode::ADD: return static_cast<std::uint32_t>(sa + sb);
          case Opcode::SUB: return static_cast<std::uint32_t>(sa - sb);
          case Opcode::MUL: return static_cast<std::uint32_t>(sa * sb);
          case Opcode::DIV:
            return sb == 0 ? 0 : static_cast<std::uint32_t>(sa / sb);
          case Opcode::MAD:
            return static_cast<std::uint32_t>(sa * sb + sc);
          case Opcode::MIN:
            return static_cast<std::uint32_t>(std::min(sa, sb));
          case Opcode::MAX:
            return static_cast<std::uint32_t>(std::max(sa, sb));
          case Opcode::ABS:
            return static_cast<std::uint32_t>(std::abs(sa));
          case Opcode::NEG: return static_cast<std::uint32_t>(-sa);
          case Opcode::AND: return ra & rb;
          case Opcode::OR: return ra | rb;
          case Opcode::XOR: return ra ^ rb;
          case Opcode::NOT: return ~ra;
          case Opcode::SHL: return ra << (rb & 31);
          case Opcode::SHR:
            return instr.type == DataType::S32
                       ? static_cast<std::uint32_t>(sa >> (rb & 31))
                       : ra >> (rb & 31);
          default: break;
        }
    }
    panic("unhandled ALU op %s for type", opcodeName(instr.op));
}

std::uint32_t
convert(const Instruction &instr, std::uint32_t raw)
{
    if (instr.type == instr.srcType)
        return raw;
    // Only F32 <-> S32/U32 conversions are meaningful here.
    if (instr.type == DataType::F32) {
        if (instr.srcType == DataType::S32) {
            return asBits(
                static_cast<float>(static_cast<std::int32_t>(raw)));
        }
        return asBits(static_cast<float>(raw));
    }
    float f = asFloat(raw);
    if (instr.type == DataType::S32)
        return static_cast<std::uint32_t>(static_cast<std::int32_t>(f));
    return static_cast<std::uint32_t>(f < 0 ? 0 : f);
}

} // namespace

void
executeWarpInstruction(const Instruction &instr,
                       std::uint32_t active_mask, ThreadContext *threads,
                       ExecEnv &env, StepEffects &effects)
{
    effects.clear();

    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (!(active_mask & (1u << lane)))
            continue;
        ThreadContext &t = threads[lane];
        if (!t.alive)
            continue;

        // Guard predicate.
        if (instr.guard >= 0) {
            bool g = t.p[instr.guard];
            if (instr.guardNegate)
                g = !g;
            if (!g)
                continue;
        }
        effects.execMask |= 1u << lane;

        switch (instr.op) {
          case Opcode::NOP:
          case Opcode::BAR:
            break;

          case Opcode::EXIT:
            t.alive = false;
            break;

          case Opcode::DISCARD:
            t.alive = false;
            t.killed = true;
            break;

          case Opcode::BRA:
            effects.takenMask |= 1u << lane;
            break;

          case Opcode::SETP: {
            std::uint32_t a = readRaw(instr.src[0], t, env, instr.type);
            std::uint32_t b = readRaw(instr.src[1], t, env, instr.type);
            t.p[instr.dst.index] = compare(instr.cmp, instr.type, a, b);
            break;
          }

          case Opcode::SELP: {
            bool sel = t.p[instr.src[2].index];
            std::uint32_t a = readRaw(instr.src[0], t, env, instr.type);
            std::uint32_t b = readRaw(instr.src[1], t, env, instr.type);
            t.r[instr.dst.index] = sel ? a : b;
            break;
          }

          case Opcode::CVT: {
            std::uint32_t raw =
                readRaw(instr.src[0], t, env, instr.srcType);
            t.r[instr.dst.index] = convert(instr, raw);
            break;
          }

          case Opcode::LDG: {
            Addr addr = t.r[instr.src[0].index] + instr.memOffset;
            t.r[instr.dst.index] = env.global ? env.global->read32(addr)
                                              : 0;
            effects.accesses.push_back({addr, 4, false});
            effects.kind = AccessKind::GlobalData;
            break;
          }

          case Opcode::STG: {
            Addr addr = t.r[instr.src[0].index] + instr.memOffset;
            std::uint32_t v =
                readRaw(instr.src[1], t, env, instr.type);
            if (env.global)
                env.global->write32(addr, v);
            effects.accesses.push_back({addr, 4, true});
            effects.kind = AccessKind::GlobalData;
            break;
          }

          case Opcode::LDS: {
            Addr addr = t.r[instr.src[0].index] + instr.memOffset;
            std::uint32_t v = 0;
            if (env.sharedMem && addr + 4 <= env.sharedSize)
                std::memcpy(&v, env.sharedMem + addr, 4);
            t.r[instr.dst.index] = v;
            break;
          }

          case Opcode::STS: {
            Addr addr = t.r[instr.src[0].index] + instr.memOffset;
            std::uint32_t v =
                readRaw(instr.src[1], t, env, instr.type);
            if (env.sharedMem && addr + 4 <= env.sharedSize)
                std::memcpy(env.sharedMem + addr, &v, 4);
            break;
          }

          case Opcode::TEX: {
            panic_if(!env.textures, "TEX without bound textures");
            float u = readF(instr.src[0], t, env);
            float v = readF(instr.src[1], t, env);
            float rgba[4];
            std::vector<Addr> texels;
            env.textures->sample(instr.texUnit, u, v, rgba, texels);
            for (int i = 0; i < 4; ++i)
                t.r[instr.dst.index + i] = asBits(rgba[i]);
            for (Addr a : texels)
                effects.accesses.push_back({a, 4, false});
            effects.kind = AccessKind::Texture;
            break;
          }

          case Opcode::STO: {
            float v = readF(instr.src[0], t, env);
            t.o[instr.dst.index] = v;
            break;
          }

          case Opcode::ZTEST: {
            panic_if(!env.rop, "ZTEST without a framebuffer");
            float z = readF(instr.src[0], t, env);
            Addr addr = 0;
            bool pass = env.rop->depthTest(t.fragX, t.fragY, z, addr);
            effects.accesses.push_back({addr, 4, pass});
            effects.kind = AccessKind::Depth;
            if (!pass) {
                t.alive = false;
                t.killed = true;
            }
            break;
          }

          case Opcode::BLEND: {
            panic_if(!env.rop, "BLEND without a framebuffer");
            float rgba[4];
            for (int i = 0; i < 4; ++i)
                rgba[i] = asFloat(t.r[instr.src[0].index + i]);
            Addr addr = 0;
            env.rop->blendPixel(t.fragX, t.fragY, rgba, addr);
            // Read-modify-write of the destination pixel.
            effects.accesses.push_back({addr, 4, false});
            effects.accesses.push_back({addr, 4, true});
            effects.kind = AccessKind::Color;
            break;
          }

          case Opcode::STFB: {
            panic_if(!env.rop, "STFB without a framebuffer");
            float rgba[4];
            for (int i = 0; i < 4; ++i)
                rgba[i] = asFloat(t.r[instr.src[0].index + i]);
            Addr addr = 0;
            env.rop->storePixel(t.fragX, t.fragY, rgba, addr);
            effects.accesses.push_back({addr, 4, true});
            effects.kind = AccessKind::Color;
            break;
          }

          default:
            t.r[instr.dst.index] = aluOp(instr, t, env);
            break;
        }
    }
}

} // namespace emerald::gpu::isa
