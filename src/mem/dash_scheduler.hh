/**
 * @file
 * The DASH deadline-aware memory scheduler (Usui et al., TACO 2016),
 * as re-evaluated by the Emerald paper's case study I.
 *
 * DASH classifies traffic into priority levels:
 *   0. urgent IPs (behind their deadline-derived expected progress),
 *   1. memory non-intensive CPU cores,
 *   2. non-urgent IPs,
 *   3. memory intensive CPU cores,
 * with probabilistic switching between levels 2 and 3 to balance
 * service. CPU cores are (re)clustered each quantum using TCM-style
 * bandwidth clustering. The paper evaluates two ways of computing the
 * clustering bandwidth total: CPU-only (DCB) and whole-system (DTB);
 * DashParams::useTotalBandwidth selects between them.
 */

#ifndef EMERALD_MEM_DASH_SCHEDULER_HH
#define EMERALD_MEM_DASH_SCHEDULER_HH

#include <string>
#include <vector>

#include "mem/dram_channel.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace emerald::mem
{

/** Tunables; defaults follow the paper's Table 3 at 2 GHz CPU. */
struct DashParams
{
    /** Probabilistic switching re-evaluation period (500 CPU cyc). */
    Tick switchingUnit = ticksFromNs(250.0);
    /** CPU clustering quantum (1M CPU cycles). */
    Tick quantum = ticksFromUs(500.0);
    /** TCM clustering factor. */
    double clusterThresh = 0.15;
    /** DTB (true): include IP bandwidth in the clustering total. */
    bool useTotalBandwidth = false;
    /** Initial probability of favouring intensive CPU over IPs. */
    double initialP = 0.5;
    /** Per-switching-unit adjustment step for P. */
    double pStep = 0.05;
    unsigned numCpuCores = 4;
    std::uint64_t seed = 7;
};

/**
 * Deadline-progress reporting seam between IP models and a QoS
 * coordinator. IP-side components (display, app, NPU camera) hold
 * this interface rather than the concrete coordinator, so the shard
 * partitioner can cut the seam and a scheduler policy without a
 * coordinator can be swapped in without touching the IP models.
 */
class QosProgressPort
{
  public:
    virtual ~QosProgressPort() = default;

    /**
     * Register an IP block (GPU, display controller, NPU).
     * @param emergent_threshold progress fraction below which the IP
     *        becomes urgent (Table 3: 0.8; 0.9 for the GPU).
     */
    virtual int registerIp(const std::string &ip_name,
                           TrafficClass tclass,
                           double emergent_threshold) = 0;

    /** An IP starts a work period (e.g. one frame). */
    virtual void beginIpPeriod(int ip, Tick period,
                               double total_work) = 0;

    /** An IP completed @p work_done more units of its period. */
    virtual void addIpProgress(int ip, double work_done) = 0;

    /** The IP finished its period early (deactivates urgency). */
    virtual void endIpPeriod(int ip) = 0;
};

/**
 * Shared DASH state across all channels: CPU clustering, IP deadline
 * tracking and the probabilistic switch. One coordinator feeds every
 * DashScheduler instance.
 */
class DashCoordinator : public SimObject, public QosProgressPort
{
  public:
    DashCoordinator(Simulation &sim, const std::string &name,
                    const DashParams &params);

    int registerIp(const std::string &ip_name, TrafficClass tclass,
                   double emergent_threshold) override;

    void beginIpPeriod(int ip, Tick period,
                       double total_work) override;

    void addIpProgress(int ip, double work_done) override;

    void endIpPeriod(int ip) override;

    /** Priority level of @p pkt right now; lower is better. */
    int priorityOf(const MemPacket &pkt, Tick now) const;

    /** Service accounting callback from the channels. */
    void serviced(const MemPacket &pkt, Tick now);

    bool cpuIntensive(unsigned core) const;
    bool ipUrgent(int ip, Tick now) const;
    double currentP() const { return _p; }

    /** Stop the recurring bookkeeping events. */
    void shutdown();

    /** Force a clustering pass now (used by unit tests). */
    void recluster();

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

  private:
    void switchingTick();
    void quantumTick();

    struct IpState
    {
        std::string name;
        TrafficClass tclass;
        double emergentThreshold;
        bool active = false;
        Tick periodStart = 0;
        Tick period = 0;
        double workTotal = 0.0;
        double workDone = 0.0;
        std::uint64_t bytesThisQuantum = 0;
    };

    DashParams _params;
    std::vector<IpState> _ips;
    int _ipOfClass[4] = {-1, -1, -1, -1};

    std::vector<std::uint64_t> _cpuBytesThisQuantum;
    std::vector<bool> _cpuIsIntensive;

    bool _favourIntensiveCpu = false;
    double _p;
    std::uint64_t _servedIntensiveCpu = 0;
    std::uint64_t _servedNonUrgentIp = 0;

    Random _rng;
    EventFunction _switchEvent;
    EventFunction _quantumEvent;
};

/** Per-channel DASH policy; thin wrapper over the coordinator. */
class DashScheduler : public DramScheduler
{
  public:
    explicit DashScheduler(DashCoordinator &coordinator)
        : _coordinator(coordinator)
    {}

    std::size_t pick(const DramChannel &channel,
                     const std::vector<QueueEntry> &queue,
                     Tick now) override;

    void serviced(const MemPacket &pkt, Tick now) override;

    const char *policyName() const override { return "DASH"; }

  private:
    DashCoordinator &_coordinator;
};

} // namespace emerald::mem

#endif // EMERALD_MEM_DASH_SCHEDULER_HH
