/**
 * @file
 * Tests for the NPU subsystem (src/npu/): systolic tile timing and
 * the tile walk, the DMA engine's offer/retry conformance under a
 * saturated sink, command-queue completion ordering through the
 * interrupt path, checkpoint round-trip of mid-inference state, and
 * a seeded DRAM-stall fault soak of the NPU-enabled SoC in degrade
 * mode.
 */

#include <gtest/gtest.h>

#include <vector>

#include "npu/camera_model.hh"
#include "npu/dma.hh"
#include "npu/npu_top.hh"
#include "npu/systolic.hh"
#include "sim/serialize/serialize.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "soc/soc_top.hh"

namespace emerald
{
namespace
{

using npu::NpuCommand;
using npu::NpuLayer;
using npu::SystolicParams;
using npu::SystolicTiming;
using npu::TileWork;

// Systolic timing ------------------------------------------------------

TEST(SystolicTiming, TileCyclesIsFillStreamDrain)
{
    SystolicParams sp;
    sp.rows = 16;
    sp.cols = 16;
    SystolicTiming timing(sp);
    EXPECT_EQ(timing.tileCycles(1), 16u + 16u + 1u);
    EXPECT_EQ(timing.tileCycles(512), 16u + 16u + 512u);
}

TEST(SystolicTiming, KChunkIsBoundedByScratchpadHalves)
{
    SystolicParams sp;
    sp.rows = 16;
    sp.cols = 16;
    sp.elemBytes = 1;
    sp.spInputKB = 32;
    sp.spWeightKB = 32;
    SystolicTiming timing(sp);
    // Half of 32 KB over a 16-wide operand edge = 1024 elements.
    EXPECT_EQ(timing.kChunk({"small", 64, 64, 27}), 27u);
    EXPECT_EQ(timing.kChunk({"big", 64, 64, 4096}), 1024u);
}

TEST(SystolicTiming, TileWalkCoversEveryOutputByteOnce)
{
    SystolicParams sp;
    sp.rows = 16;
    sp.cols = 16;
    SystolicTiming timing(sp);
    const Addr base = 0xC0000000ULL;
    for (const char *model_name : {"tiny-cnn", "mobile"}) {
        auto layers = npu::npuModelLayers(model_name);
        auto walk = timing.tileWalk(layers, base);
        ASSERT_FALSE(walk.empty());
        EXPECT_EQ(walk.front().inAddr, base);
        // Stores happen exactly on the last K-chunk of each output
        // tile; summed over the walk they cover every output element
        // of every layer exactly once.
        std::uint64_t out_bytes = 0, stores = 0;
        for (const TileWork &t : walk) {
            EXPECT_GE(t.inAddr, base);
            EXPECT_GT(t.wAddr, t.inAddr);
            EXPECT_GT(t.inBytes, 0u);
            EXPECT_GT(t.wBytes, 0u);
            EXPECT_GT(t.cycles, 0u);
            out_bytes += t.outBytes;
            if (t.outBytes > 0)
                ++stores;
        }
        std::uint64_t expect_bytes = 0, expect_stores = 0;
        for (const NpuLayer &l : layers) {
            expect_bytes += std::uint64_t(l.m) * l.n * sp.accBytes;
            expect_stores += divCeil(l.m, sp.rows) *
                             divCeil(l.n, sp.cols);
        }
        EXPECT_EQ(out_bytes, expect_bytes) << model_name;
        EXPECT_EQ(stores, expect_stores) << model_name;
    }
}

TEST(SystolicTiming, TileWalkIsDeterministic)
{
    SystolicParams sp;
    SystolicTiming timing(sp);
    auto layers = npu::npuModelLayers("tiny-cnn");
    auto a = timing.tileWalk(layers, 0x1000);
    auto b = timing.tileWalk(layers, 0x1000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].inAddr, b[i].inAddr);
        EXPECT_EQ(a[i].outBytes, b[i].outBytes);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
    }
}

// DMA engine -----------------------------------------------------------

/** Sink with externally controlled capacity that parks accepted
 *  packets for the test to respond to later. */
struct HoldingSink : public MemSink
{
    explicit HoldingSink(Simulation &sim) : MemSink(sim) {}

    unsigned capacity = 0;
    unsigned offers = 0;
    std::vector<MemPacket *> held;

    bool
    tryAccept(MemPacket *pkt) override
    {
        ++offers;
        if (held.size() >= capacity)
            return false;
        held.push_back(pkt);
        return true;
    }

    void
    respondAll()
    {
        std::vector<MemPacket *> batch;
        batch.swap(held);
        for (MemPacket *pkt : batch)
            completePacket(pkt);
    }

    void
    widen(unsigned n)
    {
        capacity += n;
        while (held.size() < capacity && wakeOneRetryChecked()) {
        }
    }
};

struct RecordingDmaClient : public npu::NpuDmaClient
{
    std::vector<std::uint64_t> done;
    std::vector<std::uint64_t> aborted;

    void dmaTransferDone(std::uint64_t token) override
    {
        done.push_back(token);
    }
    void dmaTransferAborted(std::uint64_t token) override
    {
        aborted.push_back(token);
    }
};

TEST(NpuDma, RejectedBurstHoldsOnePacketAndNeverPolls)
{
    Simulation sim;
    HoldingSink sink(sim);
    RecordingDmaClient client;
    npu::NpuDmaParams dp;
    dp.maxOutstanding = 4;
    dp.burstBytes = 128;
    npu::NpuDmaEngine dma(sim, "dma", dp, sink);
    dma.setClient(&client);

    // Saturated sink: the engine must stop after ONE rejected offer
    // (held for retryRequest), not spin re-offering.
    dma.startTransfer(0x1000, 512, false, 7);
    EXPECT_EQ(sink.offers, 1u);
    EXPECT_FALSE(dma.idle());
    EXPECT_TRUE(client.done.empty());

    // Capacity frees: the sink's FIFO wakeup resumes the burst. The
    // 512-byte transfer is four 128-byte packets.
    sink.widen(4);
    EXPECT_EQ(sink.held.size(), 4u);
    sink.respondAll();
    EXPECT_EQ(client.done, (std::vector<std::uint64_t>{7}));
    EXPECT_TRUE(dma.idle());
    EXPECT_EQ(dma.statTransfers.value(), 1.0);
}

TEST(NpuDma, OutOfOrderResponsesRetireTransfersFifo)
{
    Simulation sim;
    HoldingSink sink(sim);
    sink.capacity = 100;
    RecordingDmaClient client;
    npu::NpuDmaParams dp;
    dp.maxOutstanding = 8;
    dp.burstBytes = 128;
    npu::NpuDmaEngine dma(sim, "dma", dp, sink);
    dma.setClient(&client);

    dma.startTransfer(0x1000, 256, false, 1);
    dma.startTransfer(0x8000, 256, true, 2);
    ASSERT_EQ(sink.held.size(), 4u);

    // Respond to transfer 2's packets first: completion must still
    // be reported in submission order (1 before 2).
    completePacket(sink.held[2]);
    completePacket(sink.held[3]);
    EXPECT_TRUE(client.done.empty());
    completePacket(sink.held[0]);
    completePacket(sink.held[1]);
    sink.held.clear();
    EXPECT_EQ(client.done, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(dma.statBytesRead.value(), 256.0);
    EXPECT_EQ(dma.statBytesWritten.value(), 256.0);
}

TEST(NpuDma, DegradeAbortsQueuedTransfersAndDrainsStragglers)
{
    Simulation sim;
    HoldingSink sink(sim);
    sink.capacity = 2;
    RecordingDmaClient client;
    npu::NpuDmaParams dp;
    dp.maxOutstanding = 2;
    dp.burstBytes = 128;
    npu::NpuDmaEngine dma(sim, "dma", dp, sink);
    dma.setClient(&client);

    dma.startTransfer(0x1000, 512, false, 11);
    dma.startTransfer(0x8000, 128, false, 12);
    ASSERT_EQ(sink.held.size(), 2u);

    // Watchdog degrade with a stuck burst: every queued transfer is
    // abandoned and reported, responses still in flight just drain.
    dma.onWatchdogDegrade();
    EXPECT_EQ(client.aborted, (std::vector<std::uint64_t>{11, 12}));
    EXPECT_EQ(dma.statAborts.value(), 2.0);
    EXPECT_EQ(dma.pendingTransfers(), 0u);
    sink.respondAll();
    EXPECT_TRUE(dma.idle());
    EXPECT_TRUE(client.done.empty());
}

// NpuTop command flow --------------------------------------------------

/** Sink that accepts everything and responds synchronously. */
struct InstantSink : public MemSink
{
    explicit InstantSink(Simulation &sim) : MemSink(sim) {}

    bool
    tryAccept(MemPacket *pkt) override
    {
        completePacket(pkt);
        return true;
    }
};

struct RecordingIntClient : public npu::NpuIntClient
{
    std::vector<std::uint64_t> doneIds;
    std::vector<bool> abortedFlags;
    double progress = 0.0;

    void
    npuCommandDone(const NpuCommand &cmd, Tick, bool aborted) override
    {
        doneIds.push_back(cmd.id);
        abortedFlags.push_back(aborted);
    }
    void
    npuCommandProgress(const NpuCommand &, double work) override
    {
        progress += work;
    }
};

void
drain(Simulation &sim)
{
    while (sim.eventQueue().runOne()) {
    }
}

TEST(NpuTop, CommandsCompleteInSubmissionOrder)
{
    Simulation sim;
    ClockDomain &clock = sim.createClockDomain(800.0, "npu_clk");
    InstantSink sink(sim);
    npu::NpuParams np;
    np.queueDepth = 2;
    np.model = "tiny-cnn";
    npu::NpuTop top(sim, "npu", np, clock, sink);
    RecordingIntClient irq;
    top.setInterruptClient(&irq);

    // Queue capacity 2 + 1 active: the fourth submit is refused.
    for (std::uint64_t id = 1; id <= 3; ++id)
        EXPECT_TRUE(top.submit({id, static_cast<std::uint32_t>(id),
                                ticksFromMs(100.0), sim.curTick()}));
    EXPECT_FALSE(top.submit({4, 4, ticksFromMs(100.0),
                             sim.curTick()}));
    EXPECT_EQ(top.statCmdsRejected.value(), 1.0);

    drain(sim);
    EXPECT_EQ(irq.doneIds, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(irq.abortedFlags,
              (std::vector<bool>{false, false, false}));
    EXPECT_EQ(top.statCmdsCompleted.value(), 3.0);
    // Per-tile progress interrupts covered every tile of every
    // inference.
    EXPECT_EQ(irq.progress, 3.0 * top.inferenceWork());
    EXPECT_TRUE(top.dma().idle());
}

TEST(NpuTop, MidInferenceStateRoundTripsThroughCheckpoint)
{
    npu::NpuParams np;
    np.model = "tiny-cnn";

    Simulation sim_a;
    ClockDomain &clock_a = sim_a.createClockDomain(800.0, "npu_clk");
    InstantSink sink_a(sim_a);
    npu::NpuTop a(sim_a, "npu", np, clock_a, sink_a);
    RecordingIntClient irq_a;
    a.setInterruptClient(&irq_a);

    ASSERT_TRUE(a.submit({1, 0, ticksFromMs(100.0), 0}));
    ASSERT_TRUE(a.submit({2, 1, ticksFromMs(100.0), 0}));
    // Step a handful of compute events: mid-inference, tiles done,
    // command 2 still queued.
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(sim_a.eventQueue().runOne());
    ASSERT_GT(a.statTiles.value(), 0.0);
    ASSERT_EQ(a.queueDepth(), 1u);

    CheckpointOut out_a("npu");
    a.serialize(out_a);

    // A fresh device restored from that section must serialize back
    // byte-identically — every execution cursor survived the trip.
    Simulation sim_b;
    ClockDomain &clock_b = sim_b.createClockDomain(800.0, "npu_clk");
    InstantSink sink_b(sim_b);
    npu::NpuTop b(sim_b, "npu", np, clock_b, sink_b);
    CheckpointIn in(out_a.sectionName(), out_a.bytes().data(),
                    out_a.bytes().size());
    b.unserialize(in);

    CheckpointOut out_b("npu");
    b.serialize(out_b);
    EXPECT_EQ(out_a.bytes(), out_b.bytes());
    EXPECT_EQ(b.queueDepth(), 1u);
}

// Full-SoC integration -------------------------------------------------

soc::SocParams
smallNpuSocParams()
{
    soc::SocParams p;
    p.model = scenes::WorkloadId::M2_Cube;
    p.frames = 2;
    p.fbWidth = 128;
    p.fbHeight = 96;
    p.cpuPrepRequests = 200;
    p.npuEnabled = true;
    p.npuModel = "tiny-cnn";
    return p;
}

TEST(NpuSoc, WarmStartReproducesColdEventHash)
{
    std::string dir =
        ::testing::TempDir() + "emerald_ckpt_npu_soc";
    soc::SocParams p = smallNpuSocParams();
    // High load + the wider CNN keeps an inference (and its DMA
    // bursts) in flight at the 2 ms checkpoint boundary.
    p.highLoad = true;
    p.npuModel = "mobile";

    std::uint64_t cold_hash = 0, cold_events = 0;
    double cold_cmds = 0.0;
    {
        soc::SocTop soc(p, SimulationBuilder().checkDeterminism());
        soc.run(ticksFromMs(1000.0));
        cold_hash = soc.sim().determinismHash();
        cold_events = soc.sim().eventQueue().numProcessed();
        cold_cmds = soc.npu()->statCmdsCompleted.value();
        ASSERT_NE(cold_hash, 0u);
        ASSERT_GT(cold_cmds, 0.0);
    }
    {
        soc::SocTop soc(p, SimulationBuilder()
                               .checkDeterminism()
                               .checkpointAt(ticksFromMs(2.0), dir));
        soc.run(ticksFromMs(1000.0));
        EXPECT_EQ(soc.sim().determinismHash(), cold_hash);
    }
    {
        soc::SocTop soc(p, SimulationBuilder()
                               .checkDeterminism()
                               .restoreFrom(dir));
        EXPECT_TRUE(soc.sim().restored());
        soc.run(ticksFromMs(1000.0));
        EXPECT_EQ(soc.sim().determinismHash(), cold_hash);
        EXPECT_EQ(soc.sim().eventQueue().numProcessed(), cold_events);
        // Stats restart at restore; the warm segment still runs real
        // inferences after the 2 ms boundary.
        EXPECT_GT(soc.npu()->statCmdsCompleted.value(), 0.0);
    }
}

TEST(NpuSoc, SurvivesDramStallCampaignInDegradeMode)
{
    soc::SocParams p = smallNpuSocParams();
    p.highLoad = true; // Constrained memory: stalls bite mid-burst.
    p.npuModel = "mobile";
    p.npuFramePeriod = ticksFromMs(1000.0 / 70.0);

    SimulationBuilder builder;
    builder.checkDeterminism()
        .faultPlan("dram-stall(prob=0.5,len=10us,period=300us)",
                   2024)
        .watchdog(ticksFromUs(250.0), "degrade");

    // Must complete: stalled DMA bursts either ride out the stall or
    // are shed by degrade recovery — never a hang, never a checker
    // abort.
    soc::SocTop soc(p, builder);
    soc.run(ticksFromMs(1000.0));

    EXPECT_GT(soc.sim().faultInjector()->injections(), 0u);
    EXPECT_NE(soc.sim().determinismHash(), 0u);
    // Camera accounting stays consistent: every submitted inference
    // either completed or was explicitly aborted; nothing vanished.
    auto *cam = soc.npuCamera();
    ASSERT_NE(cam, nullptr);
    double submitted =
        cam->statFrames.value() - cam->statDropped.value();
    EXPECT_GT(submitted, 0.0);
    EXPECT_LE(cam->statCompleted.value() + cam->statAborted.value(),
              submitted);
    EXPECT_GE(cam->statCompleted.value(), 1.0);
}

} // namespace
} // namespace emerald
