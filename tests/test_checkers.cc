/**
 * @file
 * Tests for the correctness-tooling layer (src/sim/check/).
 *
 * The negative tests inject real protocol violations — double frees,
 * dropped retry registrations, wake loops — and assert the matching
 * checker aborts with its diagnostic. They only exist in builds with
 * EMERALD_CHECKS (the hooks are compiled out otherwise). The
 * determinism-verifier tests run in every build: the verifier is a
 * runtime opt-in riding the event-queue instrument branch.
 */

#include <gtest/gtest.h>

#include "sim/check/determinism.hh"
#include "sim/packet.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "soc/soc_top.hh"

#ifdef EMERALD_CHECKS
#include "sim/check/context.hh"
#include "sim/check/hooks.hh"
#endif

namespace emerald
{
namespace
{

#ifdef EMERALD_CHECKS

MemPacket *
allocPacket(Simulation &sim, Addr addr = 0x1000)
{
    return sim.packetPool().alloc(addr, 64u, false, TrafficClass::Cpu,
                                  AccessKind::CpuData, 0);
}

/** Accepts everything and holds it, like a queueing sink mid-flight. */
class HoldingSink : public MemSink
{
  public:
    explicit HoldingSink(Simulation &sim) : MemSink(sim) {}

    bool
    tryAccept(MemPacket *pkt) override
    {
        held.push_back(pkt);
        return true;
    }

    std::vector<MemPacket *> held;
};

/** Rejects everything; the base offer() registers the retry. */
class FullSink : public MemSink
{
  public:
    explicit FullSink(Simulation &sim) : MemSink(sim) {}

    bool tryAccept(MemPacket *) override { return false; }

    void drainWaiters() { while (wakeOneRetry()) {} }
};

class NullRequestor : public MemRequestor
{
  public:
    void retryRequest() override {}
};

using CheckerDeathTest = ::testing::Test;

TEST(CheckerDeathTest, DoubleFreeAborts)
{
    Simulation sim;
    MemPacket *pkt = allocPacket(sim);
    freePacket(pkt);
    EXPECT_DEATH(freePacket(pkt), "double free");
}

TEST(CheckerDeathTest, FreeWhileInFlightAborts)
{
    Simulation sim;
    HoldingSink sink(sim);
    NullRequestor req;
    MemPacket *pkt = allocPacket(sim);
    ASSERT_TRUE(sink.offer(pkt, req));
    // The sink owns the packet now; the requestor freeing it anyway is
    // exactly the bug class the lifecycle checker exists for.
    EXPECT_DEATH(freePacket(pkt), "sink still owns");
    // In this (parent) process the packet is still in flight; the
    // sink completing it is the legal path back to the pool.
    completePacket(sink.held.front());
}

TEST(CheckerDeathTest, UseAfterFreeOnCompleteAborts)
{
    Simulation sim;
    MemPacket *pkt = allocPacket(sim);
    freePacket(pkt);
    EXPECT_DEATH(completePacket(pkt), "freed packet");
}

TEST(CheckerDeathTest, UseAfterFreeOnOfferAborts)
{
    Simulation sim;
    HoldingSink sink(sim);
    NullRequestor req;
    MemPacket *pkt = allocPacket(sim);
    freePacket(pkt);
    EXPECT_DEATH(sink.offer(pkt, req), "use after free");
}

TEST(CheckerDeathTest, PoolLeakAtTeardownAborts)
{
    EXPECT_DEATH(
        {
            Simulation sim;
            allocPacket(sim); // Never freed; queue drained => leak.
        },
        "pool leak");
}

TEST(CheckerDeathTest, DroppedRetryRegistrationAborts)
{
    Simulation sim;
    NullRequestor req;
    MemPacket *pkt = allocPacket(sim);
    RetryList list(&sim.faultDomain());
    list.setOwner("bad_sink");
    // A sink that rejects but never registers the requestor: inject
    // the reject hook without the matching RetryList::add.
    check::offerStarted(&list, pkt);
    check::offerRejected(&list, pkt, &req);
    // The violation is observable at the next protocol action on a
    // later tick: the rejected requestor can never be woken.
    EventFunction next(
        [&] { check::offerStarted(&list, pkt); }, "next_offer");
    sim.eventQueue().schedule(next, ticksFromUs(1.0));
    EXPECT_DEATH(sim.run(), "never registered for a retry");
    freePacket(pkt);
}

TEST(CheckerDeathTest, CorruptedRetryListDedupAborts)
{
    Simulation sim;
    NullRequestor req;
    RetryList list(&sim.faultDomain());
    list.setOwner("corrupt_sink");
    // Two non-dedup'd adds of one requestor on one list can only mean
    // RetryList::add's dedup scan is broken.
    check::retryRegistered(&list, &req, false);
    EXPECT_DEATH(check::retryRegistered(&list, &req, false),
                 "failed to dedup");
    // The death ran in a forked child; clear this process's mirror so
    // the teardown quiescence check sees a clean protocol.
    check::retryWoken(&list, &req);
}

TEST(CheckerDeathTest, NonShrinkingWakeLoopAborts)
{
    Simulation sim;
    NullRequestor req;
    RetryList list(&sim.faultDomain());
    list.setOwner("looping_sink");
    EXPECT_DEATH(
        {
            for (unsigned i = 0; i < 4096; ++i)
                check::retryWoken(&list, &req);
        },
        "wake loop");
}

TEST(CheckerDeathTest, LostWakeupAborts)
{
    Simulation sim;
    auto *ctx = sim.checkContext();
    ASSERT_NE(ctx, nullptr);
    ctx->retry().setLostWakeThreshold(ticksFromUs(1.0));

    NullRequestor req;
    RetryList list(&sim.faultDomain());
    list.setOwner("forgetful_sink");
    check::retryRegistered(&list, &req, false);

    // Sink services other traffic for 10us without waking the waiter.
    EventFunction accept(
        [&] { check::offerAccepted(&list, nullptr); }, "accept");
    sim.eventQueue().schedule(accept, ticksFromUs(10.0));
    EXPECT_DEATH(sim.run(), "lost wakeup");
}

TEST(CheckerTest, RejectRegisterWakeRoundTripIsClean)
{
    Simulation sim;
    FullSink sink(sim);
    NullRequestor req;
    MemPacket *pkt = allocPacket(sim);
    ASSERT_FALSE(sink.offer(pkt, req));
    ASSERT_NE(sim.checkContext(), nullptr);
    EXPECT_EQ(sim.checkContext()->retry().numWaiting(), 1u);
    // Waking the requestor (which gives up) empties the mirror, so
    // the teardown quiescence check sees a clean protocol.
    sink.drainWaiters();
    EXPECT_EQ(sim.checkContext()->retry().numWaiting(), 0u);
    freePacket(pkt);
}

TEST(CheckerTest, CleanTrafficPassesAllCheckers)
{
    Simulation sim;
    HoldingSink sink(sim);
    NullRequestor req;
    for (int i = 0; i < 8; ++i) {
        MemPacket *pkt = allocPacket(sim, 0x1000 + 64u * (unsigned)i);
        ASSERT_TRUE(sink.offer(pkt, req));
    }
    for (MemPacket *pkt : sink.held)
        completePacket(pkt); // Posted: completes straight to free.
    sink.held.clear();
    ASSERT_NE(sim.checkContext(), nullptr);
    sim.checkContext()->retry().verifyQuiescent();
    EXPECT_EQ(sim.packetPool().live(), 0u);
}

#endif // EMERALD_CHECKS

std::uint64_t
runSocHash()
{
    soc::SocParams p;
    p.model = scenes::WorkloadId::M2_Cube;
    p.frames = 2;
    p.fbWidth = 192;
    p.fbHeight = 144;
    p.cpuPrepRequests = 300;
    soc::SocTop soc(p, SimulationBuilder().checkDeterminism());
    soc.run(ticksFromMs(500.0));
    return soc.sim().determinismHash();
}

TEST(DeterminismTest, SameSceneTwiceSameHash)
{
    std::uint64_t first = runSocHash();
    std::uint64_t second = runSocHash();
    EXPECT_NE(first, 0u);
    EXPECT_EQ(first, second);
}

TEST(DeterminismTest, HashChangesWhenEventOrderChanges)
{
    // Perturb the workload slightly: a different event stream must
    // produce a different hash (FNV is order- and content-sensitive).
    std::uint64_t base = runSocHash();

    soc::SocParams p;
    p.model = scenes::WorkloadId::M2_Cube;
    p.frames = 2;
    p.fbWidth = 192;
    p.fbHeight = 144;
    p.cpuPrepRequests = 301; // One extra CPU request.
    soc::SocTop soc(p, SimulationBuilder().checkDeterminism());
    soc.run(ticksFromMs(500.0));
    EXPECT_NE(soc.sim().determinismHash(), base);
}

TEST(DeterminismTest, DisabledByDefault)
{
    Simulation sim;
    EXPECT_EQ(sim.determinismHash(), 0u);
}

TEST(DeterminismTest, VerifierHashesEventStream)
{
    Simulation sim;
    sim.enableDeterminismCheck();
    int fired = 0;
    EventFunction ev([&] { ++fired; }, "hash_me");
    sim.eventQueue().schedule(ev, 100);
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_NE(sim.determinismHash(), 0u);
}

} // namespace
} // namespace emerald
