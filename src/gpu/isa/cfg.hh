/**
 * @file
 * Control-flow analysis: basic blocks and immediate post-dominators.
 *
 * The SIMT stack reconverges divergent warps at the immediate
 * post-dominator of each branch, the scheme GPGPU-Sim (and thus the
 * paper's SIMT core) uses. The assembler calls
 * resolveReconvergence() to annotate every branch with its
 * reconvergence pc; a reconvergePc of -1 means the paths only rejoin
 * at thread exit.
 */

#ifndef EMERALD_GPU_ISA_CFG_HH
#define EMERALD_GPU_ISA_CFG_HH

#include <vector>

#include "gpu/isa/instruction.hh"

namespace emerald::gpu::isa
{

/** A basic block: [first, last] instruction index range. */
struct BasicBlock
{
    int first = 0;
    int last = 0;
    std::vector<int> successors;
};

/** Partition @p prog into basic blocks (exposed for tests). */
std::vector<BasicBlock> buildBasicBlocks(const Program &prog);

/**
 * Compute each branch's reconvergence pc (immediate post-dominator)
 * and store it in Instruction::reconvergePc.
 */
void resolveReconvergence(Program &prog);

} // namespace emerald::gpu::isa

#endif // EMERALD_GPU_ISA_CFG_HH
