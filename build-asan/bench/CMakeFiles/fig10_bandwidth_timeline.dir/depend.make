# Empty dependencies file for fig10_bandwidth_timeline.
# This may be replaced when dependencies are built.
