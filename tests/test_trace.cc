#include <gtest/gtest.h>

#include <cstdio>

#include "core/trace.hh"
#include "scenes/shaders.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;
using namespace emerald::core;

namespace
{

/** Build a small two-frame trace of a spinning cube. */
Trace
makeCubeTrace(unsigned w, unsigned h, unsigned frames)
{
    scenes::Workload workload =
        scenes::makeWorkload(scenes::WorkloadId::W3_Cube);
    Trace trace;
    trace.fbWidth = w;
    trace.fbHeight = h;
    for (unsigned f = 0; f < frames; ++f) {
        trace.beginFrame();
        TraceDraw draw;
        draw.vsSource = scenes::vertexShaderSource();
        draw.fsSource = scenes::fragmentTexturedSource();
        draw.state.cullBackface = false;
        draw.floatsPerVertex = scenes::vertexFloats;
        draw.numVaryings = scenes::standardVaryings;
        draw.vertexData = workload.mesh.data();
        draw.constants.resize(24, 0.0f);
        workload.camera
            .viewProj(f, static_cast<float>(w) / static_cast<float>(h))
            .toColumnMajor(draw.constants.data());
        draw.constants[19] = 0.4f;
        TraceTexture tex;
        tex.unit = 0;
        tex.width = 32;
        tex.height = 32;
        tex.texels.resize(32 * 32);
        for (unsigned i = 0; i < tex.texels.size(); ++i)
            tex.texels[i] = 0xff000000u | (i * 2654435761u);
        draw.textures.push_back(std::move(tex));
        trace.recordDraw(std::move(draw));
    }
    return trace;
}

} // namespace

TEST(Trace, SaveLoadRoundTrip)
{
    Trace trace = makeCubeTrace(64, 48, 2);
    std::string path = "/tmp/emerald_trace_test.etr";
    ASSERT_TRUE(saveTrace(path, trace));

    auto loaded = loadTrace(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->fbWidth, 64u);
    EXPECT_EQ(loaded->fbHeight, 48u);
    ASSERT_EQ(loaded->frames.size(), 2u);
    ASSERT_EQ(loaded->frames[0].size(), 1u);
    const TraceDraw &orig = trace.frames[0][0];
    const TraceDraw &back = loaded->frames[0][0];
    EXPECT_EQ(back.vsSource, orig.vsSource);
    EXPECT_EQ(back.vertexData, orig.vertexData);
    EXPECT_EQ(back.constants, orig.constants);
    ASSERT_EQ(back.textures.size(), 1u);
    EXPECT_EQ(back.textures[0].texels, orig.textures[0].texels);
    EXPECT_EQ(back.state.cullBackface, false);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    std::string path = "/tmp/emerald_trace_garbage.etr";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_FALSE(loadTrace(path).has_value());
    EXPECT_FALSE(loadTrace("/tmp/missing_file.etr").has_value());
    std::remove(path.c_str());
}

TEST(Trace, ReplayIsDeterministic)
{
    Trace trace = makeCubeTrace(96, 64, 2);

    auto run = [&](const Trace &t) {
        soc::StandaloneGpu rig(96, 64);
        TracePlayer player(rig.pipeline(), t,
                           rig.functionalMemory());
        std::vector<std::uint64_t> hashes;
        for (unsigned f = 0; f < player.frameCount(); ++f) {
            bool done = false;
            player.playFrame(f, [&](const FrameStats &) {
                done = true;
            });
            EXPECT_TRUE(rig.runUntil([&] { return done; }));
            hashes.push_back(player.framebuffer().colorHash());
        }
        return hashes;
    };

    auto direct = run(trace);

    // Through a save/load round trip the frames must be identical.
    std::string path = "/tmp/emerald_trace_replay.etr";
    ASSERT_TRUE(saveTrace(path, trace));
    auto loaded = loadTrace(path);
    ASSERT_TRUE(loaded.has_value());
    auto replayed = run(*loaded);
    EXPECT_EQ(direct, replayed);
    EXPECT_EQ(direct.size(), 2u);
    EXPECT_NE(direct[0], direct[1]); // Camera moved between frames.
    std::remove(path.c_str());
}

TEST(Trace, MultiDrawFramesReplay)
{
    // A frame with two draws (second translucent over the first).
    Trace trace = makeCubeTrace(64, 48, 1);
    TraceDraw overlay = trace.frames[0][0];
    overlay.fsSource = scenes::fragmentTranslucentSource();
    overlay.state.blend = true;
    overlay.state.depthWrite = false;
    overlay.constants[20] = 0.5f;
    trace.frames[0].push_back(std::move(overlay));

    soc::StandaloneGpu rig(64, 48);
    TracePlayer player(rig.pipeline(), trace, rig.functionalMemory());
    bool done = false;
    FrameStats stats;
    player.playFrame(0, [&](const FrameStats &s) {
        stats = s;
        done = true;
    });
    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    EXPECT_GT(stats.fragments, 100u);
}
