/**
 * @file
 * Clock domains and cycle-ticked components.
 *
 * A ClockDomain converts between ticks and cycles for one frequency.
 * Clocked is the base class for components that do work every cycle
 * while active: subclasses implement tick() and return whether they
 * still have work; idle components consume no events.
 */

#ifndef EMERALD_SIM_CLOCKED_HH
#define EMERALD_SIM_CLOCKED_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace emerald
{

/** One clock frequency, shared by any number of components. */
class ClockDomain
{
  public:
    ClockDomain(EventQueue &eq, Tick period, std::string name)
        : _eq(eq), _period(period), _name(std::move(name))
    {}

    Tick period() const { return _period; }
    const std::string &name() const { return _name; }
    EventQueue &eventQueue() { return _eq; }

    /** Cycle count of the last edge at or before curTick. */
    Cycle
    curCycle() const
    {
        return _eq.curTick() / _period;
    }

    /**
     * The tick of the clock edge @p cycles_ahead full cycles after the
     * next edge at or after curTick. clockEdge(0) is "now" when curTick
     * is exactly on an edge.
     */
    Tick
    clockEdge(Cycle cycles_ahead = 0) const
    {
        Tick now = _eq.curTick();
        Tick aligned = divCeil(now, _period) * _period;
        return aligned + cycles_ahead * _period;
    }

    /** Ticks from now until @p cycles cycles have elapsed. */
    Tick
    cyclesToTicks(Cycle cycles) const
    {
        return cycles * _period;
    }

  private:
    EventQueue &_eq;
    Tick _period;
    std::string _name;
};

/**
 * Base class for components that are stepped once per clock cycle
 * while they have work to do.
 */
class Clocked
{
  public:
    Clocked(ClockDomain &domain, std::string name);
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /**
     * Make sure the component is ticking. Idempotent; safe to call
     * from any event context.
     */
    void activate();

    /** True when a tick is pending. */
    bool active() const { return _tickEvent.scheduled(); }

    ClockDomain &clockDomain() { return _domain; }
    const std::string &clockedName() const { return _clockedName; }

    /** Current cycle in this component's domain. */
    Cycle curCycle() const { return _domain.curCycle(); }

    /**
     * The per-cycle tick event, exposed so Clocked SimObjects can
     * register it for checkpointing (a scheduled tick event is what
     * "active" means, so restoring it restores activity).
     */
    Event &tickEvent() { return _tickEvent; }

  protected:
    /**
     * Do one cycle of work.
     * @return true to keep ticking next cycle, false to go idle
     *         (activate() restarts the component).
     */
    virtual bool tick() = 0;

  private:
    void processTick();

    ClockDomain &_domain;
    std::string _clockedName;
    EventFunction _tickEvent;
};

} // namespace emerald

#endif // EMERALD_SIM_CLOCKED_HH
