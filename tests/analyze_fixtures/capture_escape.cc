// Fixture for tools/emerald_analyze.py: event-capture-escape.
//
// Stand-ins for the event kernel's sink signatures: schedule() and
// the EventFunction constructor. A by-reference lambda handed to
// either outlives the enclosing frame.

struct EventFunction {
    template <typename F>
    EventFunction(F f, const char *name)
    {
        (void)f;
        (void)name;
    }
};

struct EventQueue {
    template <typename F>
    void
    schedule(F f, long when)
    {
        (void)f;
        (void)when;
    }
};

void
leak(EventQueue &eq)
{
    int local = 0;
    eq.schedule([&local] { ++local; }, 100); // EXPECT: event-capture-escape
    eq.schedule([local] { (void)local; }, 200); // by value: clean
    EventFunction ev([&] { ++local; }, "ev"); // EXPECT: event-capture-escape
    (void)ev;
}
