/**
 * @file
 * An orbiting camera with small per-frame deltas, providing the
 * temporal coherence DFSL exploits (paper Section 6.3): consecutive
 * frames see nearly identical screen-space work distributions.
 */

#ifndef EMERALD_SCENES_CAMERA_HH
#define EMERALD_SCENES_CAMERA_HH

#include "core/math.hh"

namespace emerald::scenes
{

struct OrbitCamera
{
    core::Vec3 center{0.0f, 0.6f, 0.0f};
    float radius = 4.0f;
    float height = 1.6f;
    float startAngle = 0.6f;
    /** Radians per frame; small values = high temporal coherence. */
    float anglePerFrame = 0.01f;
    float fovyRadians = 1.1f;
    float znear = 0.1f;
    float zfar = 60.0f;

    /** View-projection matrix for frame @p frame. */
    core::Mat4 viewProj(unsigned frame, float aspect) const;
};

} // namespace emerald::scenes

#endif // EMERALD_SCENES_CAMERA_HH
