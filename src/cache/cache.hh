/**
 * @file
 * A non-blocking, set-associative, write-back write-allocate cache
 * with MSHRs — the building block for the GPU's L1I/L1D/L1T/L1Z/L1C,
 * the shared GPU L2, and the CPU cache levels (paper Table 2).
 *
 * Tags only: Emerald separates function from timing, so lines carry
 * no data. Read hits respond after the hit latency; misses allocate
 * an MSHR and fetch the line from the downstream sink. Stores are
 * posted (the requestor never waits on them) but still exercise the
 * full allocate/writeback path.
 */

#ifndef EMERALD_CACHE_CACHE_HH
#define EMERALD_CACHE_CACHE_HH

#include <deque>
#include <map>
#include <vector>

#include "cache/mshr.hh"
#include "sim/clocked.hh"
#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::cache
{

/** Static configuration of one cache. */
struct CacheParams
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 4;
    unsigned lineSize = 128;
    /** Cycles from acceptance to response on a hit. */
    Cycle hitLatency = 2;
    unsigned mshrs = 16;
    unsigned targetsPerMshr = 8;
    /** Pending downstream sends (fills + writebacks). */
    unsigned sendQueueDepth = 16;
    /** Attribution of writeback traffic this cache generates. */
    TrafficClass trafficClass = TrafficClass::Gpu;
    int requestorId = 0;
};

/**
 * The cache component. Upstream components offer packets through
 * MemSink; the cache talks to its downstream sink (another cache, a
 * link, or memory) and receives fills through MemClient. When the
 * downstream sink rejects a send, the cache registers for a retry
 * (MemRequestor) instead of polling; when its own MSHRs or send queue
 * fill, it queues the rejected upstream requestor and wakes it as
 * capacity frees.
 */
class Cache : public SimObject,
              public MemSink,
              public MemClient,
              public MemRequestor
{
  public:
    Cache(Simulation &sim, const std::string &name, ClockDomain &domain,
          const CacheParams &params);

    /** Wire the cache to the next level; must precede any traffic. */
    void setDownstream(MemSink &sink) { _downstream = &sink; }

    bool tryAccept(MemPacket *pkt) override;
    void memResponse(MemPacket *pkt) override;
    void retryRequest() override;
    std::string requestorName() const override { return name(); }

    void hangDiagnostics(std::ostream &os) const override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    const CacheParams &params() const { return _params; }

    /** Functional lookup: would @p addr hit right now? (for tests) */
    bool isCached(Addr addr) const;

    /** Sum of demand hits and misses. */
    std::uint64_t
    accesses() const
    {
        return static_cast<std::uint64_t>(statHits.value() +
                                          statMisses.value());
    }

    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a ? statMisses.value() / static_cast<double>(a) : 0.0;
    }

    /** @{ Statistics. */
    Scalar statHits;
    Scalar statMisses;
    Scalar statMshrMerges;
    Scalar statWritebacks;
    Scalar statRejects;
    /** @} */

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddrOf(Addr addr) const
    {
        return addr & ~static_cast<Addr>(_params.lineSize - 1);
    }
    std::size_t setIndex(Addr line_addr) const;

    /** Find the way holding @p line_addr, or -1. */
    int findWay(std::size_t set, Addr line_addr) const;

    /** Install a line; evicts (and possibly writes back) the victim. */
    void installLine(Addr line_addr, bool dirty);

    /** Queue a packet for downstream and kick the drain event. */
    void pushDownstream(MemPacket *pkt);
    void drainSendQueue();

    /** Wake rejected upstream requestors while capacity remains. */
    void wakeUpstream();

    /** Schedule an upstream response at now + hit latency. */
    void respondLater(MemPacket *pkt);
    void deliverResponses();

    CacheParams _params;
    ClockDomain &_domain;
    MemSink *_downstream = nullptr;

    std::vector<Line> _lines;
    std::size_t _numSets;
    std::uint64_t _useCounter = 0;

    MshrFile _mshrs;
    std::deque<MemPacket *> _sendQueue;
    /** Downstream rejected our head; waiting for retryRequest(). */
    bool _downstreamBlocked = false;
    std::multimap<Tick, MemPacket *> _respQueue;

    EventFunction _sendEvent;
    EventFunction _respEvent;
};

} // namespace emerald::cache

#endif // EMERALD_CACHE_CACHE_HH
