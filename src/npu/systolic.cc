#include "npu/systolic.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald::npu
{

std::vector<NpuLayer>
npuModelLayers(const std::string &name)
{
    // Camera-pipeline CNNs expressed as im2col GEMMs
    // (M = out pixels, N = out channels, K = inC x kh x kw).
    if (name == "tiny-cnn") {
        // 64x64 RGB frame, three 3x3 conv stages + classifier head.
        return {
            {"conv1", 32 * 32, 16, 3 * 3 * 3},
            {"conv2", 16 * 16, 32, 16 * 3 * 3},
            {"conv3", 8 * 8, 64, 32 * 3 * 3},
            {"fc", 1, 10, 64 * 8 * 8},
        };
    }
    if (name == "mobile") {
        // 128x128 input, wider channels: the bursty-DMA stressor for
        // the npu_contention scenario family.
        return {
            {"conv1", 64 * 64, 32, 3 * 3 * 3},
            {"conv2", 32 * 32, 64, 32 * 3 * 3},
            {"conv3", 16 * 16, 128, 64 * 3 * 3},
            {"conv4", 16 * 16, 128, 128 * 3 * 3},
            {"head", 1, 64, 128 * 16 * 16},
        };
    }
    fatal("npu: unknown model '%s' (use tiny-cnn|mobile)",
          name.c_str());
}

std::vector<std::string>
npuModelNames()
{
    return {"tiny-cnn", "mobile"};
}

SystolicTiming::SystolicTiming(const SystolicParams &params)
    : _params(params)
{
    fatal_if(_params.rows == 0 || _params.cols == 0,
             "npu: PE grid must be at least 1x1");
    fatal_if(_params.elemBytes == 0 || _params.accBytes == 0,
             "npu: zero operand width");
}

unsigned
SystolicTiming::kChunk(const NpuLayer &layer) const
{
    // Half of each scratchpad holds the resident tile; the other half
    // is the prefetch target (double buffering).
    std::uint64_t in_half =
        std::uint64_t(_params.spInputKB) * 1024 / 2;
    std::uint64_t w_half =
        std::uint64_t(_params.spWeightKB) * 1024 / 2;
    std::uint64_t by_input =
        in_half / (std::uint64_t(_params.rows) * _params.elemBytes);
    std::uint64_t by_weight =
        w_half / (std::uint64_t(_params.cols) * _params.elemBytes);
    std::uint64_t kc = std::min({by_input, by_weight,
                                 std::uint64_t(layer.k)});
    return static_cast<unsigned>(std::max<std::uint64_t>(kc, 1));
}

std::uint64_t
SystolicTiming::tileCycles(unsigned kc) const
{
    // Wavefront fill (rows), stream (kc), drain (cols): the classic
    // output-stationary pass over one K-chunk.
    return std::uint64_t(_params.rows) + _params.cols + kc;
}

std::vector<TileWork>
SystolicTiming::tileWalk(const std::vector<NpuLayer> &model,
                         Addr base) const
{
    std::vector<TileWork> walk;
    Addr region = base;
    auto align = [](Addr a) { return (a + 127) & ~Addr(127); };

    for (const NpuLayer &layer : model) {
        unsigned kc = kChunk(layer);
        unsigned m_tiles =
            static_cast<unsigned>(divCeil(layer.m, _params.rows));
        unsigned n_tiles =
            static_cast<unsigned>(divCeil(layer.n, _params.cols));
        unsigned k_chunks =
            static_cast<unsigned>(divCeil(layer.k, kc));

        Addr in_base = align(region);
        Addr w_base = align(
            in_base + Addr(layer.m) * layer.k * _params.elemBytes);
        Addr out_base = align(
            w_base + Addr(layer.k) * layer.n * _params.elemBytes);
        region = align(
            out_base + Addr(layer.m) * layer.n * _params.accBytes);

        Addr in_cursor = in_base;
        Addr w_cursor = w_base;
        Addr out_cursor = out_base;
        for (unsigned mt = 0; mt < m_tiles; ++mt) {
            unsigned mr = std::min(_params.rows,
                                   layer.m - mt * _params.rows);
            for (unsigned nt = 0; nt < n_tiles; ++nt) {
                unsigned nc = std::min(_params.cols,
                                       layer.n - nt * _params.cols);
                for (unsigned kt = 0; kt < k_chunks; ++kt) {
                    unsigned kr =
                        std::min(kc, layer.k - kt * kc);
                    TileWork tile;
                    tile.inBytes = mr * kr * _params.elemBytes;
                    tile.wBytes = kr * nc * _params.elemBytes;
                    tile.cycles = tileCycles(kr);
                    tile.inAddr = in_cursor;
                    tile.wAddr = w_cursor;
                    in_cursor += tile.inBytes;
                    w_cursor += tile.wBytes;
                    if (kt + 1 == k_chunks) {
                        tile.outBytes = mr * nc * _params.accBytes;
                        tile.outAddr = out_cursor;
                        out_cursor += tile.outBytes;
                    }
                    walk.push_back(tile);
                }
            }
        }
    }
    return walk;
}

} // namespace emerald::npu
