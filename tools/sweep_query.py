#!/usr/bin/env python3
"""Query helper for the sweep results store (docs/sweeps.md).

The store is one SQLite file holding every run of a sweep: a `runs`
row per (bench, config fingerprint, git sha), its swept parameters in
`run_params`, and every recorded scalar — bench results and the full
simulator stats tree — in `stats`, named like `results.gpu_ms` or
`sim.gpu.warpsched.issued.count`.

Subcommands:

  list <db>
      One line per run: fingerprint, git sha, status, wall-clock and
      the swept parameters.

  value <db> --stat NAME [--where k=v ...] [--git-sha SHA]
      Print NAME for every matching run.

  shape <db> --stat NAME --axis KEY [--norm-to VALUE]
            [--where k=v ...] [--git-sha SHA]
      One line per axis value, optionally normalized to the run at
      --norm-to (the SQL analogue of a paper figure's
      bars-normalized-to-BAS shape).

  regress <db> --stat NAME --base-sha A --new-sha B
              [--rel-tolerance 0.05] [--where k=v ...]
      Compare NAME between two commits at every common design point;
      exit 1 when any relative delta exceeds the tolerance. This is
      the regression query CI runs against a nightly sweep DB.

  failures <db> [--class CLS] [--fingerprint FP] [--git-sha SHA]
      One line per classified point failure from the run_failures
      journal (docs/resilience.md): class, signal/exit code, attempt
      number, the checkpoint tick the retry resumed from, and detail.

Exit status: 0 on success, 1 on failed regress check, 2 on usage or
missing-data errors.
"""

import argparse
import sqlite3
import sys


def connect(path):
    try:
        con = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        con.execute("SELECT 1 FROM runs LIMIT 1")
    except sqlite3.Error as err:
        sys.exit(f"sweep_query: cannot read '{path}': {err}")
    return con


def parse_where(pairs):
    where = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            sys.exit(f"sweep_query: bad --where '{pair}' "
                     "(expected key=value)")
        where[key] = value
    return where


def load_runs(con, where=None, git_sha=None):
    """All done runs (with params dict), filtered by params/sha."""
    runs = {}
    for run_id, bench, fp, sha, status, wall in con.execute(
            "SELECT run_id, bench, fingerprint, git_sha, status, "
            "wall_ms FROM runs"):
        runs[run_id] = {"run_id": run_id, "bench": bench,
                        "fingerprint": fp, "git_sha": sha,
                        "status": status, "wall_ms": wall,
                        "params": {}}
    for run_id, key, value in con.execute(
            "SELECT run_id, key, value FROM run_params"):
        if run_id in runs:
            runs[run_id]["params"][key] = value
    out = []
    for run in runs.values():
        if git_sha is not None and run["git_sha"] != git_sha:
            continue
        if where and any(run["params"].get(k) != v
                         for k, v in where.items()):
            continue
        out.append(run)
    return sorted(out, key=lambda r: (r["bench"], r["fingerprint"],
                                      r["git_sha"]))


def stat_value(con, run_id, name):
    row = con.execute(
        "SELECT value FROM stats WHERE run_id = ? AND name = ?",
        (run_id, name)).fetchone()
    return row[0] if row else None


def params_str(params):
    return " ".join(f"{k}={v}" for k, v in sorted(params.items()))


def cmd_list(args):
    con = connect(args.db)
    for run in load_runs(con):
        wall = "?" if run["wall_ms"] is None else \
            f"{run['wall_ms']:.0f}ms"
        print(f"{run['bench']} {run['fingerprint']} "
              f"sha={run['git_sha'] or '-'} {run['status']} {wall}  "
              f"{params_str(run['params'])}")
    return 0


def cmd_value(args):
    con = connect(args.db)
    runs = load_runs(con, parse_where(args.where), args.git_sha)
    if not runs:
        sys.exit("sweep_query: no matching runs")
    for run in runs:
        value = stat_value(con, run["run_id"], args.stat)
        shown = "null" if value is None else repr(value)
        print(f"{run['fingerprint']} {params_str(run['params'])} "
              f"{args.stat}={shown}")
    return 0


def shape_of(con, runs, stat, axis):
    """axis value -> stat, fatal on missing/ambiguous points."""
    shape = {}
    for run in runs:
        key = run["params"].get(axis)
        if key is None:
            continue
        if key in shape:
            sys.exit(f"sweep_query: several runs share {axis}={key} "
                     "— narrow the selection with --where")
        value = stat_value(con, run["run_id"], stat)
        if value is None:
            sys.exit(f"sweep_query: run {run['fingerprint']} has no "
                     f"stat '{stat}'")
        shape[key] = value
    if not shape:
        sys.exit(f"sweep_query: no runs carry axis '{axis}'")
    return shape


def cmd_shape(args):
    con = connect(args.db)
    runs = load_runs(con, parse_where(args.where), args.git_sha)
    shape = shape_of(con, runs, args.stat, args.axis)
    base = 1.0
    if args.norm_to is not None:
        if args.norm_to not in shape:
            sys.exit(f"sweep_query: no run at {args.axis}="
                     f"{args.norm_to} to normalize to")
        base = shape[args.norm_to]
        if base == 0:
            sys.exit("sweep_query: normalization base is zero")
    for key in sorted(shape):
        print(f"{args.axis}={key} {shape[key] / base:.6g}")
    return 0


def cmd_regress(args):
    con = connect(args.db)
    where = parse_where(args.where)
    base = {r["fingerprint"]: r
            for r in load_runs(con, where, args.base_sha)}
    new = {r["fingerprint"]: r
           for r in load_runs(con, where, args.new_sha)}
    common = sorted(set(base) & set(new))
    if not common:
        sys.exit(f"sweep_query: no design points common to "
                 f"{args.base_sha} and {args.new_sha}")
    failures = 0
    for fp in common:
        old = stat_value(con, base[fp]["run_id"], args.stat)
        cur = stat_value(con, new[fp]["run_id"], args.stat)
        if old is None or cur is None:
            print(f"FAIL {fp}: stat '{args.stat}' missing")
            failures += 1
            continue
        rel = abs(cur - old) / abs(old) if old else abs(cur)
        verdict = "FAIL" if rel > args.rel_tolerance else "OK  "
        if verdict == "FAIL":
            failures += 1
        print(f"{verdict} {fp} {params_str(base[fp]['params'])}: "
              f"{old:.6g} -> {cur:.6g} (rel {rel:.3f})")
    only = sorted(set(base) ^ set(new))
    if only:
        print(f"note: {len(only)} point(s) present in only one sha",
              file=sys.stderr)
    if failures:
        print(f"sweep_query: {failures} regression(s) beyond "
              f"{args.rel_tolerance:g}", file=sys.stderr)
        return 1
    print(f"sweep_query: {len(common)} point(s) within "
          f"{args.rel_tolerance:g}")
    return 0


def cmd_failures(args):
    con = connect(args.db)
    try:
        rows = con.execute(
            "SELECT bench, fingerprint, git_sha, attempt, class, "
            "signal, exit_code, recovered_tick, detail, occurred_at "
            "FROM run_failures ORDER BY failure_id").fetchall()
    except sqlite3.Error as err:
        sys.exit(f"sweep_query: no run_failures table in "
                 f"'{args.db}' ({err}) — the store predates the "
                 "resilience schema")
    shown = 0
    for (bench, fp, sha, attempt, cls, signal, exit_code,
         recovered_tick, detail, occurred_at) in rows:
        if args.klass and cls != args.klass:
            continue
        if args.fingerprint and fp != args.fingerprint:
            continue
        if args.git_sha is not None and sha != args.git_sha:
            continue
        how = f"signal={signal}" if signal else f"exit={exit_code}"
        print(f"{bench} {fp} sha={sha or '-'} attempt={attempt} "
              f"{cls} {how} recovered_tick={recovered_tick} "
              f"[{occurred_at or '-'}] {detail}")
        shown += 1
    print(f"sweep_query: {shown} failure(s)", file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("list", help="list all runs")
    p.add_argument("db")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("value", help="print one stat per run")
    p.add_argument("db")
    p.add_argument("--stat", required=True)
    p.add_argument("--where", action="append", metavar="k=v")
    p.add_argument("--git-sha")
    p.set_defaults(fn=cmd_value)

    p = sub.add_parser("shape",
                       help="stat along one axis, optionally "
                            "normalized")
    p.add_argument("db")
    p.add_argument("--stat", required=True)
    p.add_argument("--axis", required=True)
    p.add_argument("--norm-to", metavar="VALUE")
    p.add_argument("--where", action="append", metavar="k=v")
    p.add_argument("--git-sha")
    p.set_defaults(fn=cmd_shape)

    p = sub.add_parser("regress",
                       help="compare a stat between two shas")
    p.add_argument("db")
    p.add_argument("--stat", required=True)
    p.add_argument("--base-sha", required=True)
    p.add_argument("--new-sha", required=True)
    p.add_argument("--rel-tolerance", type=float, default=0.05)
    p.add_argument("--where", action="append", metavar="k=v")
    p.set_defaults(fn=cmd_regress)

    p = sub.add_parser("failures",
                       help="list classified point failures")
    p.add_argument("db")
    p.add_argument("--class", dest="klass", metavar="CLS")
    p.add_argument("--fingerprint", metavar="FP")
    p.add_argument("--git-sha")
    p.set_defaults(fn=cmd_failures)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into head & co.; closing stdout is fine.
        sys.exit(0)
