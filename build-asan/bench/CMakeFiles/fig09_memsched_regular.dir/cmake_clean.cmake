file(REMOVE_RECURSE
  "CMakeFiles/fig09_memsched_regular.dir/fig09_memsched_regular.cpp.o"
  "CMakeFiles/fig09_memsched_regular.dir/fig09_memsched_regular.cpp.o.d"
  "fig09_memsched_regular"
  "fig09_memsched_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_memsched_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
