/**
 * @file
 * The workload library (paper Tables 6 and 8) and the SceneRenderer
 * harness that drives a GraphicsPipeline through animated frames.
 *
 * Case study II workloads: W1 Sibenik, W2 Spot, W3 Cube, W4 Suzanne,
 * W5 Suzanne-transparent, W6 Teapot. Case study I models: M1 Chair,
 * M2 Cube, M3 Mask, M4 Triangles. All are procedural stand-ins (see
 * procedural.hh).
 */

#ifndef EMERALD_SCENES_WORKLOADS_HH
#define EMERALD_SCENES_WORKLOADS_HH

#include <functional>
#include <memory>
#include <string>

#include "core/framebuffer.hh"
#include "core/graphics_pipeline.hh"
#include "core/shader_builder.hh"
#include "scenes/camera.hh"
#include "scenes/mesh.hh"

namespace emerald::scenes
{

enum class WorkloadId
{
    W1_Sibenik,
    W2_Spot,
    W3_Cube,
    W4_Suzanne,
    W5_SuzanneAlpha,
    W6_Teapot,
    M1_Chair,
    M2_Cube,
    M3_Mask,
    M4_Triangles,
};

const char *workloadName(WorkloadId id);

/** A renderable workload: geometry, material, camera. */
struct Workload
{
    std::string name;
    Mesh mesh;
    bool translucent = false;
    bool heavyShader = false;
    unsigned textureSize = 128;
    OrbitCamera camera;
};

Workload makeWorkload(WorkloadId id);

/**
 * Owns everything one workload needs to render frames through a
 * pipeline: vertex buffer upload, textures, shader programs, the
 * framebuffer, and per-frame camera animation.
 */
class SceneRenderer
{
  public:
    SceneRenderer(core::GraphicsPipeline &pipeline, Workload workload,
                  mem::FunctionalMemory &memory);

    /**
     * Render frame @p frame_idx (camera advances with the index);
     * @p on_done fires with the frame's stats when it drains.
     */
    void renderFrame(unsigned frame_idx,
                     std::function<void(const core::FrameStats &)>
                         on_done);

    core::Framebuffer &framebuffer() { return *_fb; }
    core::GraphicsPipeline &pipeline() { return _pipeline; }
    const Workload &workload() const { return _workload; }
    unsigned triangleCount() const
    {
        return _workload.mesh.triangleCount();
    }

  private:
    core::GraphicsPipeline &_pipeline;
    Workload _workload;
    mem::FunctionalMemory &_memory;

    Addr _vertexBuffer = 0;
    std::unique_ptr<core::Framebuffer> _fb;
    core::TextureSet _textures;
    std::vector<std::unique_ptr<core::Texture>> _textureObjs;
    core::ShaderBuilder _shaders;
    const gpu::isa::Program *_vs = nullptr;
    const gpu::isa::Program *_fs = nullptr;
    core::RenderState _state;
};

} // namespace emerald::scenes

#endif // EMERALD_SCENES_WORKLOADS_HH
