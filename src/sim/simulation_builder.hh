/**
 * @file
 * Fluent construction recipe for a Simulation: clock domains,
 * observability (tracing / profiling), and stats sinks. Replaces the
 * copy-pasted "parse config, wire tracer, dump stats at the end"
 * prologue of the benches and examples.
 */

#ifndef EMERALD_SIM_SIMULATION_BUILDER_HH
#define EMERALD_SIM_SIMULATION_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

namespace emerald
{

class Config;
class Simulation;

/**
 * Collects a declarative description of a Simulation and materializes
 * it, either into a fresh instance (build()) or onto a Simulation a
 * rig already owns (applyTo()). The recipe is inert data: a builder
 * can be copied, passed across APIs (e.g. into SocTop), and reused.
 *
 *   auto sim = SimulationBuilder()
 *                  .clockDomain("gpu_clk", 1000.0)
 *                  .traceFile("trace.json")
 *                  .profiling()
 *                  .build();
 */
class SimulationBuilder
{
  public:
    /** Add a clock domain; retrieve it via Simulation::clockDomain. */
    SimulationBuilder &clockDomain(const std::string &name, double mhz);

    /** Stream a Chrome-trace event log to @p path. */
    SimulationBuilder &traceFile(const std::string &path);

    /** Enable the sim.profile.* event counters. */
    SimulationBuilder &profiling(bool on = true);

    /** Write the final stats tree as JSON to @p path at destruction. */
    SimulationBuilder &statsJsonOnExit(const std::string &path);

    /**
     * Hash the processed event stream into sim.check.event_hash for
     * run-to-run determinism diffing (works in every build type).
     */
    SimulationBuilder &checkDeterminism(bool on = true);

    /**
     * Read the observability keys from @p cfg: "trace-file" (path),
     * "profile" (bool), "sim-stats-json" (path, dumped at exit),
     * "check-determinism" (bool, --check-determinism on the CLI).
     */
    SimulationBuilder &observability(const Config &cfg);

    /** Create a Simulation and apply this recipe to it. */
    std::unique_ptr<Simulation> build() const;

    /** Apply this recipe to an existing Simulation. */
    void applyTo(Simulation &sim) const;

  private:
    struct DomainSpec
    {
        std::string name;
        double mhz;
    };

    std::vector<DomainSpec> _domains;
    std::string _traceFile;
    std::string _statsJsonOnExit;
    bool _profiling = false;
    bool _checkDeterminism = false;
};

} // namespace emerald

#endif // EMERALD_SIM_SIMULATION_BUILDER_HH
