#include "sim/check/packet_lifecycle.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/packet.hh"

namespace emerald::check
{

const char *
PacketLifecycleChecker::stateName(State s)
{
    switch (s) {
      case State::Owned: return "owned";
      case State::InFlight: return "in-flight";
      case State::Freed: return "freed";
    }
    return "unknown";
}

void
PacketLifecycleChecker::onAlloc(PacketPool *pool, MemPacket *pkt)
{
    Tick now = _eq.curTick();
    auto it = _info.find(pkt);
    if (it != _info.end() && it->second.state != State::Freed) {
        panic("packet lifecycle: pool %p handed out storage %p that is "
              "still %s (gen %llu, allocated tick %llu, last change "
              "tick %llu) — pool free-list corruption",
              static_cast<void *>(pool),
              static_cast<const void *>(pkt),
              stateName(it->second.state),
              (unsigned long long)it->second.gen,
              (unsigned long long)it->second.allocTick,
              (unsigned long long)it->second.stateTick);
    }
    std::uint64_t gen = ++_nextGen;
    pkt->checkGen = gen;
    _info[pkt] = Info{State::Owned, gen, now, now, pool};
}

void
PacketLifecycleChecker::onFreeing(MemPacket *pkt)
{
    if (poisoned(pkt->checkGen)) {
        auto it = _info.find(pkt);
        panic("packet lifecycle: double free of packet %p (gen %llu, "
              "freed at tick %llu, now tick %llu)",
              static_cast<const void *>(pkt),
              (unsigned long long)(pkt->checkGen & ~packetPoisonBit),
              (unsigned long long)(it != _info.end()
                                       ? it->second.stateTick : 0),
              (unsigned long long)_eq.curTick());
    }
    auto it = _info.find(pkt);
    if (it == _info.end())
        return; // Heap packet (tests, probes): not tracked.
    if (it->second.state == State::InFlight) {
        panic("packet lifecycle: freeing packet %p [%s] that a sink "
              "still owns (accepted at tick %llu, now tick %llu) — "
              "only the owner may free; see docs/memory_protocol.md",
              static_cast<const void *>(pkt), pkt->toString().c_str(),
              (unsigned long long)it->second.stateTick,
              (unsigned long long)_eq.curTick());
    }
    if (it->second.state == State::Freed) {
        panic("packet lifecycle: double free of packet %p (gen %llu, "
              "freed at tick %llu, now tick %llu)",
              static_cast<const void *>(pkt),
              (unsigned long long)it->second.gen,
              (unsigned long long)it->second.stateTick,
              (unsigned long long)_eq.curTick());
    }
}

void
PacketLifecycleChecker::onPoolFree(PacketPool *pool, MemPacket *pkt)
{
    auto it = _info.find(pkt);
    if (it != _info.end()) {
        if (it->second.pool != pool) {
            panic("packet lifecycle: packet %p allocated from pool %p "
                  "returned to pool %p",
                  static_cast<const void *>(pkt),
                  static_cast<void *>(it->second.pool),
                  static_cast<void *>(pool));
        }
        it->second.state = State::Freed;
        it->second.stateTick = _eq.curTick();
    }
    // Poison the storage: any later access through a stale pointer
    // (free, complete, offer) aborts until the slot is recycled.
    pkt->checkGen |= packetPoisonBit;
}

void
PacketLifecycleChecker::onCompleting(MemPacket *pkt)
{
    if (poisoned(pkt->checkGen)) {
        panic("packet lifecycle: completePacket() on freed packet %p "
              "(use after free, tick %llu)",
              static_cast<const void *>(pkt),
              (unsigned long long)_eq.curTick());
    }
    auto it = _info.find(pkt);
    if (it == _info.end())
        return;
    if (it->second.state == State::Freed) {
        panic("packet lifecycle: completePacket() on freed packet %p "
              "(freed at tick %llu, now tick %llu)",
              static_cast<const void *>(pkt),
              (unsigned long long)it->second.stateTick,
              (unsigned long long)_eq.curTick());
    }
    // Completion hands ownership back to the client (or frees it);
    // either way the packet is no longer a sink's responsibility.
    it->second.state = State::Owned;
    it->second.stateTick = _eq.curTick();
}

void
PacketLifecycleChecker::onOfferStarted(MemPacket *pkt)
{
    if (poisoned(pkt->checkGen)) {
        panic("packet lifecycle: offering freed packet %p to a sink "
              "(use after free, tick %llu)",
              static_cast<const void *>(pkt),
              (unsigned long long)_eq.curTick());
    }
}

void
PacketLifecycleChecker::onOfferAccepted(const MemPacket *pkt)
{
    auto it = _info.find(pkt);
    // A sink may complete (and free) an accepted packet synchronously
    // inside tryAccept; only an owned packet transitions to in-flight.
    if (it == _info.end() || it->second.state == State::Freed)
        return;
    it->second.state = State::InFlight;
    it->second.stateTick = _eq.curTick();
}

void
PacketLifecycleChecker::verifyNoLeaks() const
{
    std::size_t leaked = 0;
    std::string detail;
    for (const auto &[pkt, info] : _info) {
        if (info.state == State::Freed)
            continue;
        ++leaked;
        if (leaked <= 4) {
            // Tracked packets are pooled, and the pool outlives this
            // checker, so the storage is safe to describe.
            detail += strprintf(
                "\n  %p [%s] %s since tick %llu (allocated tick %llu)",
                static_cast<const void *>(pkt),
                pkt->toString().c_str(), stateName(info.state),
                (unsigned long long)info.stateTick,
                (unsigned long long)info.allocTick);
        }
    }
    if (leaked > 0) {
        panic("packet lifecycle: %zu packet(s) still live at teardown "
              "with a drained event queue (pool leak)%s%s",
              leaked, detail.c_str(),
              leaked > 4 ? "\n  ..." : "");
    }
}

} // namespace emerald::check
