#include "registry.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald::bench
{

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(Scenario s)
{
    fatal_if(s.name.empty() || !s.run,
             "scenario registration needs a name and a run function");
    auto pos = std::lower_bound(
        _scenarios.begin(), _scenarios.end(), s,
        [](const Scenario &a, const Scenario &b) {
            return a.name < b.name;
        });
    fatal_if(pos != _scenarios.end() && pos->name == s.name,
             "duplicate bench scenario '%s'", s.name.c_str());
    _scenarios.insert(pos, std::move(s));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const Scenario &s : _scenarios)
        if (s.name == name)
            return &s;
    return nullptr;
}

RegisterScenario::RegisterScenario(Scenario s)
{
    ScenarioRegistry::instance().add(std::move(s));
}

} // namespace emerald::bench
