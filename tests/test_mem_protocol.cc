/**
 * @file
 * The backpressure protocol (offer / retryRequest) and the packet
 * pool: FIFO wakeup under a retry storm, pool reuse across Simulation
 * lifetimes, and posted-write completion through completePacket().
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/packet.hh"
#include "sim/packet_pool.hh"
#include "sim/simulation.hh"

using namespace emerald;

namespace
{

/** Sink with externally controlled capacity. */
struct CapacitySink : public MemSink
{
    unsigned capacity = 0;
    unsigned accepted = 0;

    bool
    tryAccept(MemPacket *pkt) override
    {
        if (accepted >= capacity)
            return false;
        ++accepted;
        delete pkt;
        return true;
    }

    void
    freeSlots(unsigned n)
    {
        capacity += n;
        while (accepted < capacity && wakeOneRetryChecked()) {
        }
    }
};

/** Requestor that records its wakeup order and re-offers one packet. */
struct RecordingRequestor : public MemRequestor
{
    int id;
    CapacitySink *sink;
    std::vector<int> *wakeOrder;
    bool pending = true;

    void
    retryRequest() override
    {
        wakeOrder->push_back(id);
        if (!pending)
            return;
        auto *pkt = new MemPacket(0, 64, false, TrafficClass::Cpu,
                                  AccessKind::CpuData, id, nullptr);
        if (sink->offer(pkt, *this))
            pending = false;
        else
            delete pkt;
    }
};

} // namespace

TEST(MemProtocol, RetryStormWakesFifo)
{
    CapacitySink sink;
    std::vector<int> order;
    std::vector<RecordingRequestor> reqs(4);
    for (int i = 0; i < 4; ++i) {
        reqs[i].id = i;
        reqs[i].sink = &sink;
        reqs[i].wakeOrder = &order;
    }

    // All four requestors collide with a zero-capacity sink.
    for (auto &req : reqs) {
        auto *pkt = new MemPacket(0, 64, false, TrafficClass::Cpu,
                                  AccessKind::CpuData, req.id, nullptr);
        EXPECT_FALSE(sink.offer(pkt, req));
        delete pkt;
    }

    // Capacity frees one slot at a time: wakeups must be FIFO.
    for (unsigned i = 0; i < 4; ++i)
        sink.freeSlots(1);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(sink.accepted, 4u);
}

TEST(MemProtocol, DuplicateRegistrationIsIgnored)
{
    CapacitySink sink;
    std::vector<int> order;
    RecordingRequestor req;
    req.id = 7;
    req.sink = &sink;
    req.wakeOrder = &order;

    for (int i = 0; i < 3; ++i) {
        auto *pkt = new MemPacket(0, 64, false, TrafficClass::Cpu,
                                  AccessKind::CpuData, 7, nullptr);
        EXPECT_FALSE(sink.offer(pkt, req));
        delete pkt;
    }
    sink.freeSlots(3);
    // Three rejected offers produce ONE registration, hence one wake.
    EXPECT_EQ(order, (std::vector<int>{7}));
    EXPECT_EQ(sink.accepted, 1u);
}

TEST(MemProtocol, PoolReusesFreedStorage)
{
    Simulation sim;
    PacketPool &pool = sim.packetPool();

    std::vector<MemPacket *> pkts;
    for (int i = 0; i < 16; ++i) {
        pkts.push_back(pool.alloc(Addr(i) * 64, 64, false,
                                  TrafficClass::Gpu,
                                  AccessKind::GlobalData, 0, nullptr));
    }
    EXPECT_EQ(pool.live(), 16u);
    for (MemPacket *pkt : pkts)
        freePacket(pkt);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.freeListSize(), 16u);

    // Warm pool: further allocation cycles touch no new heap storage.
    double heap_before = pool.statHeapAllocs.value();
    for (int round = 0; round < 4; ++round) {
        pkts.clear();
        for (int i = 0; i < 16; ++i) {
            pkts.push_back(pool.alloc(0, 64, true, TrafficClass::Cpu,
                                      AccessKind::CpuData, 1, nullptr));
        }
        for (MemPacket *pkt : pkts)
            freePacket(pkt);
    }
    EXPECT_EQ(pool.statHeapAllocs.value(), heap_before);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(MemProtocol, PoolResetsAcrossSimulationLifetimes)
{
    // Each Simulation owns a fresh pool; stats and free lists must
    // not leak across lifetimes.
    for (int life = 0; life < 3; ++life) {
        Simulation sim;
        PacketPool &pool = sim.packetPool();
        EXPECT_EQ(pool.live(), 0u);
        EXPECT_EQ(pool.freeListSize(), 0u);
        EXPECT_EQ(pool.statAllocs.value(), 0.0);

        MemPacket *pkt = pool.alloc(0x1000, 128, false,
                                    TrafficClass::Gpu,
                                    AccessKind::Texture, 2, nullptr);
        EXPECT_EQ(pkt->pool, &pool);
        freePacket(pkt);
        EXPECT_EQ(pool.statAllocs.value(), 1.0);
        EXPECT_EQ(pool.statFrees.value(), 1.0);
    }
}

TEST(MemProtocol, PostedWriteCompletesIntoPool)
{
    Simulation sim;
    PacketPool &pool = sim.packetPool();

    // A posted write has no client: completePacket must recycle it.
    MemPacket *wb = pool.alloc(0x2000, 128, true, TrafficClass::Gpu,
                               AccessKind::Writeback, 3, nullptr);
    EXPECT_EQ(pool.live(), 1u);
    completePacket(wb);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.freeListSize(), 1u);
    EXPECT_EQ(pool.statFrees.value(), 1.0);

    // Heap-allocated posted packets (tests, probes) still complete.
    auto *heap_wb = new MemPacket(0x3000, 128, true, TrafficClass::Cpu,
                                  AccessKind::Writeback, 4, nullptr);
    completePacket(heap_wb); // Must not touch the pool.
    EXPECT_EQ(pool.freeListSize(), 1u);
}

namespace
{

/** Client that records responses. */
struct ResponseCounter : public MemClient
{
    unsigned responses = 0;

    void
    memResponse(MemPacket *pkt) override
    {
        ++responses;
        freePacket(pkt);
    }
};

} // namespace

TEST(MemProtocol, ReadCompletionReachesClientThenPool)
{
    Simulation sim;
    PacketPool &pool = sim.packetPool();
    ResponseCounter client;

    MemPacket *rd = pool.alloc(0x4000, 64, false, TrafficClass::Cpu,
                               AccessKind::CpuData, 5, &client);
    completePacket(rd);
    EXPECT_EQ(client.responses, 1u);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.freeListSize(), 1u);
}
