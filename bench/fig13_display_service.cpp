/**
 * @file
 * Paper Fig. 13: display read requests serviced, relative to BAS,
 * under the high-load scenario.
 * Expected shape: HMC can exceed BAS on the small models (the IP
 * channel is free while the GPU is light); DASH services markedly
 * less display traffic on the large models (the display starts each
 * frame non-urgent and eventually aborts and retries).
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig13_display_service");
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    std::printf("=== Fig. 13: display requests serviced relative to "
                "BAS (high load) ===\n");
    std::printf("%-14s %8s %8s %8s %8s %s\n", "model", "BAS", "DCB",
                "DTB", "HMC", "  (aborted frames per config)");

    auto models = caseStudy1Models();
    if (quick)
        models = {scenes::WorkloadId::M2_Cube};
    auto configs = allMemConfigs();

    for (scenes::WorkloadId model : models) {
        std::vector<double> serviced, aborted;
        for (soc::MemConfig config : configs) {
            soc::SocTop soc(caseStudy1Params(model, config, true),
                            harness.builder());
            soc.run();
            serviced.push_back(
                soc.display().statRequests.value());
            aborted.push_back(
                soc.display().statFramesAborted.value());
        }
        std::printf("%-14s", scenes::workloadName(model));
        for (std::size_t i = 0; i < serviced.size(); ++i)
            results.record(std::string(scenes::workloadName(model)) +
                               "." + soc::memConfigName(configs[i]) +
                               ".display_serviced_norm",
                           serviced[0] > 0 ? serviced[i] / serviced[0]
                                           : 0.0);
        for (double s : serviced)
            std::printf(" %8.3f", serviced[0] > 0 ? s / serviced[0]
                                                  : 0.0);
        std::printf("   [");
        for (double a : aborted)
            std::printf(" %.0f", a);
        std::printf(" ]\n");
        std::fflush(stdout);
    }
    std::printf("\npaper shape: DASH (DTB) services far less display "
                "traffic on M1/M3; HMC > BAS on M2/M4\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig13_display_service",
    .desc = "Fig. 13: display requests serviced relative to BAS, high load",
    .axes = {"quick"},
    .expectedShape = "DTB services far less display traffic on M1/M3; HMC > BAS on M2/M4",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
