
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/crossbar.cc" "src/CMakeFiles/emerald_noc.dir/noc/crossbar.cc.o" "gcc" "src/CMakeFiles/emerald_noc.dir/noc/crossbar.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/emerald_noc.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/emerald_noc.dir/noc/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
