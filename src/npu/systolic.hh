/**
 * @file
 * Systolic-array PE-grid timing model (the compute half of the NPU).
 *
 * The model follows the weight-stationary tiled-GEMM shape of
 * gem5-aladdin's v2.0 systolic array (SNIPPETS.md): an R x C grid of
 * MACs computes one output tile per pass, with the K dimension split
 * into chunks sized by the double-buffered scratchpads. Convolutions
 * are expressed as im2col GEMMs (M = out pixels, N = out channels,
 * K = in channels x kernel window), so one layer list covers both.
 *
 * This is pure timing arithmetic — no events, no state. NpuTop walks
 * the precomputed tile table and drives the DMA engine and compute
 * event from it, which keeps the table reconstructible from params
 * alone (checkpoints never need to carry it).
 */

#ifndef EMERALD_NPU_SYSTOLIC_HH
#define EMERALD_NPU_SYSTOLIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald::npu
{

/** PE-grid geometry and scratchpad capacities. */
struct SystolicParams
{
    /** PE grid rows (output-tile M extent). */
    unsigned rows = 16;
    /** PE grid columns (output-tile N extent). */
    unsigned cols = 16;
    /** Operand width (int8 inference). */
    unsigned elemBytes = 1;
    /** Accumulator width written back per output element. */
    unsigned accBytes = 4;
    /** Input scratchpad capacity (double-buffered: half per tile). */
    unsigned spInputKB = 32;
    /** Weight scratchpad capacity (double-buffered). */
    unsigned spWeightKB = 32;
    /** Output scratchpad capacity (double-buffered). */
    unsigned spOutputKB = 32;
};

/** One GEMM/conv layer: out[M x N] = in[M x K] * w[K x N]. */
struct NpuLayer
{
    std::string name;
    unsigned m;
    unsigned n;
    unsigned k;
};

/**
 * One unit of the NPU's execution walk: DMA in @p inBytes + @p
 * wBytes, run the array for @p cycles, and (on the final K-chunk of
 * an output tile) DMA out @p outBytes.
 */
struct TileWork
{
    Addr inAddr = 0;
    Addr wAddr = 0;
    Addr outAddr = 0;
    unsigned inBytes = 0;
    unsigned wBytes = 0;
    /** Non-zero only on the last K-chunk of an output tile. */
    unsigned outBytes = 0;
    std::uint64_t cycles = 0;
};

/** Named inference workloads (camera CNNs); fatal on unknown name. */
std::vector<NpuLayer> npuModelLayers(const std::string &name);

/** The model names npuModelLayers() accepts. */
std::vector<std::string> npuModelNames();

/** Timing calculator for one PE-grid configuration. */
class SystolicTiming
{
  public:
    explicit SystolicTiming(const SystolicParams &params);

    /**
     * K-chunk length for @p layer: the largest K slice whose input
     * and weight tiles both fit one half of their double-buffered
     * scratchpad (>= 1 so degenerate configs still make progress).
     */
    unsigned kChunk(const NpuLayer &layer) const;

    /**
     * Cycles for one tile pass over @p kc K elements: wavefront fill
     * plus drain across the grid diagonals, plus the streaming body.
     */
    std::uint64_t tileCycles(unsigned kc) const;

    /**
     * The full tile walk of @p model laid out from @p base: per-layer
     * input/weight/output regions packed in order, tiles in
     * m-tile / n-tile / k-chunk loop order with sequential (bursty,
     * coalescable) addresses inside each region.
     */
    std::vector<TileWork> tileWalk(const std::vector<NpuLayer> &model,
                                   Addr base) const;

    const SystolicParams &params() const { return _params; }

  private:
    SystolicParams _params;
};

} // namespace emerald::npu

#endif // EMERALD_NPU_SYSTOLIC_HH
