/**
 * @file
 * The Emerald graphics pipeline (paper Fig. 3), mapped onto the SIMT
 * cores of a GpuTop:
 *
 *   A-C  vertex distribution: overlapped vertex warp batches issued
 *        round-robin to SIMT cores (Section 3.3.3)
 *   D-E  primitive assembly + clipping/culling on warp completion
 *   F    VPO: bounding boxes -> per-cluster primitive masks -> PMRB
 *   G    per-cluster setup (+ vertex data fetch from L2)
 *   H-I  coarse + fine rasterization (1 raster tile/cycle)
 *   J    Hi-Z rejection
 *   K    TC stage: tile coalescing, per-position interlock
 *   L-N  in-shader ROP (ZTEST/BLEND/STFB woven by ShaderBuilder)
 *   O    framebuffer commit
 *
 * Work-tile granularity (WT) controls the TC-tile-to-core mapping;
 * DFSL (case study II) retunes it between frames.
 */

#ifndef EMERALD_CORE_GRAPHICS_PIPELINE_HH
#define EMERALD_CORE_GRAPHICS_PIPELINE_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/draw_call.hh"
#include "core/framebuffer.hh"
#include "core/hiz.hh"
#include "core/tc_stage.hh"
#include "core/vpo_unit.hh"
#include "core/wt_mapping.hh"
#include "gpu/gpu_top.hh"
#include "noc/link.hh"
#include "sim/sim_object.hh"

namespace emerald::core
{

/** Fixed-function pipeline configuration (paper Table 7 defaults). */
struct GfxParams
{
    unsigned setupQueueDepth = 8;
    unsigned fineQueueDepth = 8;
    /** Covered raster tiles emitted per cluster per cycle. */
    unsigned coveredTilesPerCycle = 1;
    /** Empty candidate raster tiles skipped per cluster per cycle. */
    unsigned coarseSkipPerCycle = 32;
    bool hizEnabled = true;
    unsigned tcEnginesPerCluster = 2;
    unsigned tcReadyQueueDepth = 8;
    unsigned tcFlushTimeoutCycles = 32;
    unsigned maxVertexWarpsInFlight = 8;
    /**
     * Out-of-order primitive rendering (paper Section 3.3.6,
     * implemented here as an extension): when a draw has depth
     * testing enabled and blending disabled, the PMRB may release
     * buffered primitives without waiting for earlier vertex warps.
     */
    bool oooPrimitives = false;
    /** Output vertex buffer address range (timing only). */
    Addr ovbBase = 0xA0000000ULL;
    unsigned ovbVertexBytes = 48;
};

/** Per-frame result counters. */
struct FrameStats
{
    std::uint64_t cycles = 0;
    Tick startTick = 0;
    Tick endTick = 0;
    std::uint64_t vertices = 0;
    std::uint64_t primsIn = 0;
    std::uint64_t primsCulled = 0;
    std::uint64_t rasterTiles = 0;
    std::uint64_t hizRejects = 0;
    std::uint64_t fragments = 0;
    std::uint64_t fragWarps = 0;
    unsigned wtSize = 1;
};

class GraphicsPipeline : public SimObject,
                         public Clocked,
                         public MemRequestor
{
  public:
    GraphicsPipeline(Simulation &sim, const std::string &name,
                     gpu::GpuTop &gpu, unsigned fb_width,
                     unsigned fb_height, const GfxParams &params);

    /** Change WT granularity (takes effect at the next frame). */
    void setWtSize(unsigned wt_size) { _pendingWtSize = wt_size; }
    unsigned wtSize() const { return _mapping->wtSize(); }

    /** Start a frame targeting @p fb (cleared functionally). */
    void beginFrame(Framebuffer *fb);

    void submitDraw(DrawCall draw);

    /**
     * Mark the frame complete; @p on_done fires when every draw has
     * fully drained through fragment shading.
     */
    void endFrame(std::function<void(const FrameStats &)> on_done);

    bool frameOpen() const { return _frameOpen; }
    const FrameStats &lastFrame() const { return _lastFrame; }

    /** The L2 link has room again; resume draining fixed-function
     * traffic. */
    void retryRequest() override;
    std::string requestorName() const override { return name(); }
    WtMapping &mapping() { return *_mapping; }
    unsigned fbWidth() const { return _fbWidth; }
    unsigned fbHeight() const { return _fbHeight; }

    /** Fragments shaded so far in the open frame (DASH progress). */
    std::uint64_t
    currentFrameFragments() const
    {
        return _frame.fragments;
    }

    /**
     * Register a fine-grained progress listener, invoked whenever
     * fragment work is issued (drives DASH deadline tracking).
     */
    void
    setProgressListener(std::function<void(std::uint64_t)> listener)
    {
        _progressListener = std::move(listener);
    }

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;
    /** An open frame's in-flight pipeline state does not round-trip. */
    bool checkpointSafe() const override { return !_frameOpen; }

    /** @{ Statistics. */
    Scalar statFrames;
    Scalar statVertexWarps;
    Scalar statPrimsIn;
    Scalar statPrimsCulled;
    Scalar statRasterTiles;
    Scalar statHizRejects;
    Scalar statFragments;
    Scalar statFragWarps;
    Scalar statTcFlushes;
    /** @} */

  protected:
    bool tick() override;

  private:
    using PrimVec = std::shared_ptr<std::vector<PrimRecord>>;
    using isa_threads_t = gpu::isa::ThreadContext *;

    struct SetupItem
    {
        PrimVec holder;
        const PrimRecord *prim;
    };

    struct RasterJob
    {
        PrimVec holder;
        const PrimRecord *prim = nullptr;
        std::size_t tri = 0;
        int tx = 0;
        int ty = 0;
    };

    struct ClusterState
    {
        Pmrb pmrb;
        std::deque<SetupItem> setupQueue;
        std::optional<RasterJob> raster;
        std::deque<FragmentTile> fineQueue;
        std::unique_ptr<TcUnit> tc;
    };

    void startNextDraw();
    bool drawFullyDrained() const;
    void tickVertexDistribution();
    void launchVertexWarp();
    void assembleVertexWarp(std::uint64_t first_seq, unsigned base_prim,
                            unsigned prim_count, unsigned first_vert,
                            unsigned vert_count,
                            isa_threads_t threads);
    void tickCluster(unsigned cluster_idx);
    void tickClusterPmrb(ClusterState &cluster);
    void tickClusterSetup(ClusterState &cluster);
    void tickClusterRaster(unsigned cluster_idx, ClusterState &cluster);
    void tickClusterTc(unsigned cluster_idx, ClusterState &cluster);
    void issueInstance(TcInstance &&instance);
    void pushL2Read(Addr addr, AccessKind kind);
    void pushL2Write(Addr addr, AccessKind kind);
    void drainL2Traffic();
    void maybeFinishFrame();

    gpu::GpuTop &_gpu;
    GfxParams _params;
    unsigned _fbWidth;
    unsigned _fbHeight;

    std::unique_ptr<WtMapping> _mapping;
    unsigned _pendingWtSize = 0;
    std::unique_ptr<HiZBuffer> _hiz;
    Framebuffer *_fb = nullptr;

    std::deque<DrawCall> _drawQueue;
    std::optional<DrawCall> _activeDraw;
    bool _frameOpen = false;
    bool _endRequested = false;
    std::function<void(const FrameStats &)> _frameCallback;
    FrameStats _frame;
    FrameStats _lastFrame;

    /** Draw-local primitive sequence numbering. */
    std::uint64_t _seqCounter = 0;
    unsigned _nextPrim = 0;
    unsigned _vertexWarpsInFlight = 0;
    unsigned _vertexWarpsOutstanding = 0;
    unsigned _nextCoreRR = 0;
    std::uint64_t _fragWarpsOutstanding = 0;

    /** firstSeq -> clusters that still must consume the mask. */
    std::map<std::uint64_t, unsigned> _maskConsumeRemaining;

    std::vector<ClusterState> _clusters;

    /** Per-TC-position busy flags (Fig. 7 element 7). */
    std::vector<char> _tcBusy;

    std::unique_ptr<noc::Link> _l2Link;
    std::deque<MemPacket *> _l2Traffic;
    /** Head of _l2Traffic was rejected; wait for retryRequest(). */
    bool _l2Blocked = false;

    std::function<void(std::uint64_t)> _progressListener;
};

} // namespace emerald::core

#endif // EMERALD_CORE_GRAPHICS_PIPELINE_HH
