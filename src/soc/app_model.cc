#include "soc/app_model.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::soc
{

AppModel::AppModel(Simulation &sim, const std::string &name,
                   const AppParams &params,
                   scenes::SceneRenderer &scene,
                   std::vector<CpuCoreModel *> cores,
                   mem::DashCoordinator *dash,
                   std::function<void()> on_all_frames_done)
    : SimObject(sim, name),
      statFrames(*this, "frames", "application frames completed"),
      statGpuFrameTicks(*this, "gpu_frame_ticks",
                        "GPU render time per frame (ticks)"),
      statTotalFrameTicks(*this, "total_frame_ticks",
                          "prep+render time per frame (ticks)"),
      _params(params), _scene(scene), _cores(std::move(cores)),
      _dash(dash), _onDone(std::move(on_all_frames_done)),
      _startPrepEvent([this] { beginPrep(); }, name + ".prep"),
      _pollEvent([this] { pollProgress(); }, name + ".poll")
{
    if (_dash)
        _dashIp = _dash->registerIp(name + ".gpu", TrafficClass::Gpu,
                                    0.9);
}

void
AppModel::start()
{
    scheduleIn(_startPrepEvent, 0);
}

void
AppModel::beginPrep()
{
    _frameSlotStart = curTick();
    _current = FrameRecord{};
    _current.prepStart = curTick();

    // CPU-side work: all cores burn through their prep quota.
    _coresPending = static_cast<unsigned>(_cores.size());
    for (CpuCoreModel *core : _cores) {
        core->setBackground(false);
        core->runQuota(_params.cpuPrepRequests,
                       [this] { corePrepDone(); });
    }
}

void
AppModel::corePrepDone()
{
    panic_if(_coresPending == 0, "prep over-completion");
    if (--_coresPending == 0)
        beginRender();
}

void
AppModel::beginRender()
{
    _current.renderStart = curTick();
    _progressReported = 0;

    // App threads keep light background activity while blocked on
    // the GPU fence.
    for (CpuCoreModel *core : _cores)
        core->setBackground(true);

    if (_dash && _dashIp >= 0) {
        double estimate = _fragEstimate > 0.0 ? _fragEstimate : 1e9;
        _dash->beginIpPeriod(_dashIp, _params.gpuFramePeriod,
                             estimate);
        // Fine-grained progress from the pipeline plus a periodic
        // poll as a fallback.
        _scene.pipeline().setProgressListener(
            [this](std::uint64_t frags) {
                if (frags > _progressReported) {
                    _dash->addIpProgress(
                        _dashIp, static_cast<double>(
                                     frags - _progressReported));
                    _progressReported = frags;
                }
            });
        scheduleIn(_pollEvent, _params.progressPollPeriod);
    }

    _scene.renderFrame(_framesDone, [this](const core::FrameStats &s) {
        renderDone(s);
    });
}

void
AppModel::pollProgress()
{
    if (!_dash || _dashIp < 0)
        return;
    // Report newly shaded fragments since the last poll.
    std::uint64_t now_frags =
        _scene.pipeline().currentFrameFragments();
    if (now_frags > _progressReported) {
        _dash->addIpProgress(
            _dashIp,
            static_cast<double>(now_frags - _progressReported));
        _progressReported = now_frags;
    }
    scheduleIn(_pollEvent, _params.progressPollPeriod);
}

void
AppModel::renderDone(const core::FrameStats &stats)
{
    _current.renderEnd = curTick();
    _current.gpu = stats;
    _records.push_back(_current);
    ++_framesDone;
    ++statFrames;
    statGpuFrameTicks.sample(
        static_cast<double>(_current.gpuTime()));
    statTotalFrameTicks.sample(
        static_cast<double>(_current.totalTime()));
    _fragEstimate = static_cast<double>(stats.fragments);

    descheduleIfPending(_pollEvent);
    if (_dash && _dashIp >= 0) {
        _scene.pipeline().setProgressListener(nullptr);
        _dash->endIpPeriod(_dashIp);
    }

    for (CpuCoreModel *core : _cores)
        core->setBackground(false);

    if (_framesDone >= _params.frames) {
        if (_onDone)
            _onDone();
        return;
    }

    // Vsync pacing: next frame at the period boundary (or now, if
    // the deadline slipped).
    Tick next = _frameSlotStart + _params.gpuFramePeriod;
    Tick when = std::max(curTick(), next);
    schedule(_startPrepEvent, when);
}

} // namespace emerald::soc
