#include "sweep/db.hh"

#include <unistd.h>

#include <ctime>

#include "sim/logging.hh"
#include "sim/stats_sink.hh"

#ifdef EMERALD_HAS_SQLITE
#include <sqlite3.h>
#endif

namespace emerald
{
namespace sweep
{

bool
sweepDbAvailable()
{
#ifdef EMERALD_HAS_SQLITE
    return true;
#else
    return false;
#endif
}

#ifdef EMERALD_HAS_SQLITE

SweepDb::SweepDb(const std::string &path)
{
    int rc = sqlite3_open(path.c_str(), &_db);
    fatal_if(rc != SQLITE_OK, "cannot open sweep db '%s': %s",
             path.c_str(),
             _db ? sqlite3_errmsg(_db) : "out of memory");
    sqlite3_busy_timeout(_db, sqliteBusyTimeoutMs(120000));
    // Best-effort pragmas; children set the same ones.
    sqlite3_exec(_db, "PRAGMA journal_mode=WAL", nullptr, nullptr,
                 nullptr);
    sqlite3_exec(_db, "PRAGMA synchronous=NORMAL", nullptr, nullptr,
                 nullptr);

    auto exec = [&](const char *sql) {
        std::string err;
        int erc = sqliteExecRetry(_db, sql, &err);
        fatal_if(erc != SQLITE_OK, "sweep db '%s': %s (%s)",
                 path.c_str(), err.c_str(), sql);
    };
    exec("BEGIN IMMEDIATE");
    for (const std::string &ddl : sweepSchemaStatements())
        exec(ddl.c_str());
    exec("COMMIT");
}

SweepDb::~SweepDb()
{
    if (_db)
        sqlite3_close(_db);
}

std::vector<std::string>
SweepDb::doneFingerprints(const std::string &bench,
                          const std::string &gitSha) const
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "SELECT fingerprint FROM runs "
        "WHERE bench = ? AND git_sha = ? AND status = 'done'",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db query failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, bench.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, gitSha.c_str(), -1, SQLITE_TRANSIENT);
    std::vector<std::string> done;
    while (sqlite3_step(stmt) == SQLITE_ROW) {
        const unsigned char *text = sqlite3_column_text(stmt, 0);
        if (text)
            done.emplace_back(reinterpret_cast<const char *>(text));
    }
    sqlite3_finalize(stmt);
    return done;
}

std::string
SweepDb::getMeta(const std::string &key) const
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db, "SELECT value FROM sweep_meta WHERE key = ?", -1, &stmt,
        nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db query failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, key.c_str(), -1, SQLITE_TRANSIENT);
    std::string value;
    if (sqlite3_step(stmt) == SQLITE_ROW) {
        const unsigned char *text = sqlite3_column_text(stmt, 0);
        if (text)
            value = reinterpret_cast<const char *>(text);
    }
    sqlite3_finalize(stmt);
    return value;
}

void
SweepDb::setMeta(const std::string &key, const std::string &value)
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "INSERT INTO sweep_meta(key, value) VALUES(?, ?) "
        "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, key.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, value.c_str(), -1, SQLITE_TRANSIENT);
    rc = sqlite3_step(stmt);
    sqlite3_finalize(stmt);
    fatal_if(rc != SQLITE_DONE, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
}

namespace
{

/** ISO-8601 UTC now, matching SqliteSink's finished_at format. */
std::string
isoNowUtc()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/** sqlite3_step with a short busy-retry (the busy handler already
 *  waited; this absorbs the immediate-BUSY deadlock-avoidance case). */
int
stepRetry(sqlite3 *stmt_db, sqlite3_stmt *stmt)
{
    int rc = SQLITE_OK;
    for (int attempt = 0; attempt < 12; ++attempt) {
        rc = sqlite3_step(stmt);
        if (rc != SQLITE_BUSY && rc != SQLITE_LOCKED)
            return rc;
        sqlite3_reset(stmt);
        (void)stmt_db;
        ::usleep(2000u << (attempt < 7 ? attempt : 7));
    }
    return rc;
}

} // namespace

void
SweepDb::recordFailure(const std::string &bench,
                       const std::string &fingerprint,
                       const std::string &gitSha, unsigned attempt,
                       const std::string &cls, int signal,
                       int exitCode, std::uint64_t recoveredTick,
                       const std::string &detail)
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "INSERT INTO run_failures(bench, fingerprint, git_sha, "
        "attempt, class, signal, exit_code, recovered_tick, detail, "
        "occurred_at) VALUES(?1, ?2, ?3, ?4, ?5, ?6, ?7, ?8, ?9, ?10)",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
    std::string now = isoNowUtc();
    sqlite3_bind_text(stmt, 1, bench.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, fingerprint.c_str(), -1,
                      SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 3, gitSha.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_int64(stmt, 4, attempt);
    sqlite3_bind_text(stmt, 5, cls.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_int(stmt, 6, signal);
    sqlite3_bind_int(stmt, 7, exitCode);
    sqlite3_bind_int64(stmt, 8,
                       static_cast<sqlite3_int64>(recoveredTick));
    sqlite3_bind_text(stmt, 9, detail.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 10, now.c_str(), -1, SQLITE_TRANSIENT);
    rc = stepRetry(_db, stmt);
    sqlite3_finalize(stmt);
    fatal_if(rc != SQLITE_DONE, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
}

unsigned
SweepDb::failureCount(const std::string &bench,
                      const std::string &fingerprint,
                      const std::string &gitSha) const
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "SELECT COUNT(*) FROM run_failures WHERE bench=?1 AND "
        "fingerprint=?2 AND git_sha=?3 AND class != 'ckpt-corrupt'",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db query failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, bench.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, fingerprint.c_str(), -1,
                      SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 3, gitSha.c_str(), -1, SQLITE_TRANSIENT);
    unsigned count = 0;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        count = static_cast<unsigned>(sqlite3_column_int64(stmt, 0));
    sqlite3_finalize(stmt);
    return count;
}

void
SweepDb::setRunStatus(const std::string &bench,
                      const std::string &fingerprint,
                      const std::string &gitSha,
                      const std::string &status)
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "INSERT INTO runs(bench, fingerprint, git_sha, status) "
        "VALUES(?1, ?2, ?3, ?4) "
        "ON CONFLICT(bench, fingerprint, git_sha) DO UPDATE SET "
        "status = excluded.status",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, bench.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, fingerprint.c_str(), -1,
                      SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 3, gitSha.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 4, status.c_str(), -1, SQLITE_TRANSIENT);
    rc = stepRetry(_db, stmt);
    sqlite3_finalize(stmt);
    fatal_if(rc != SQLITE_DONE, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
}

std::string
SweepDb::runStatus(const std::string &bench,
                   const std::string &fingerprint,
                   const std::string &gitSha) const
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "SELECT status FROM runs WHERE bench=?1 AND fingerprint=?2 "
        "AND git_sha=?3",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db query failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, bench.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, fingerprint.c_str(), -1,
                      SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 3, gitSha.c_str(), -1, SQLITE_TRANSIENT);
    std::string status;
    if (sqlite3_step(stmt) == SQLITE_ROW) {
        const unsigned char *text = sqlite3_column_text(stmt, 0);
        if (text)
            status = reinterpret_cast<const char *>(text);
    }
    sqlite3_finalize(stmt);
    return status;
}

#else // !EMERALD_HAS_SQLITE

SweepDb::SweepDb(const std::string &path)
{
    fatal("sweep db '%s': this build has no SQLite support "
          "(install sqlite3 headers and reconfigure)", path.c_str());
}

SweepDb::~SweepDb() = default;

std::vector<std::string>
SweepDb::doneFingerprints(const std::string &, const std::string &)
    const
{
    return {};
}

std::string
SweepDb::getMeta(const std::string &) const
{
    return "";
}

void
SweepDb::setMeta(const std::string &, const std::string &)
{
}

void
SweepDb::recordFailure(const std::string &, const std::string &,
                       const std::string &, unsigned,
                       const std::string &, int, int, std::uint64_t,
                       const std::string &)
{
}

unsigned
SweepDb::failureCount(const std::string &, const std::string &,
                      const std::string &) const
{
    return 0;
}

void
SweepDb::setRunStatus(const std::string &, const std::string &,
                      const std::string &, const std::string &)
{
}

std::string
SweepDb::runStatus(const std::string &, const std::string &,
                   const std::string &) const
{
    return "";
}

#endif // EMERALD_HAS_SQLITE

} // namespace sweep
} // namespace emerald
