/**
 * @file
 * The GPU top level (paper Fig. 4): SIMT core clusters, the GPU
 * interconnect, and the shared L2 cache, with one port down into
 * whatever memory lies below (a private DRAM in standalone mode, the
 * SoC system network in full-system mode).
 */

#ifndef EMERALD_GPU_GPU_TOP_HH
#define EMERALD_GPU_GPU_TOP_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "gpu/simt_core.hh"
#include "noc/link.hh"
#include "sim/sim_object.hh"

namespace emerald::gpu
{

/** GPU organization. */
struct GpuTopParams
{
    unsigned numClusters = 6;
    unsigned coresPerCluster = 1;
    SimtCoreParams core;
    cache::CacheParams l2;
    /** Core-to-L2 interconnect links. */
    noc::LinkParams clusterLink;
    /** L2-to-memory link. */
    noc::LinkParams memLink;

    unsigned numCores() const { return numClusters * coresPerCluster; }
};

/** Reasonable defaults approximating the paper's Table 7 GPU. */
GpuTopParams defaultGpuParams();

class GpuTop : public SimObject
{
  public:
    GpuTop(Simulation &sim, const std::string &name,
           ClockDomain &core_clock, const GpuTopParams &params,
           MemSink &memory_below);

    unsigned numCores() const { return _params.numCores(); }
    unsigned numClusters() const { return _params.numClusters; }
    unsigned coresPerCluster() const { return _params.coresPerCluster; }

    unsigned
    clusterOf(unsigned core) const
    {
        return core / _params.coresPerCluster;
    }

    SimtCore &core(unsigned idx) { return *_cores[idx]; }
    cache::Cache &l2() { return *_l2; }
    ClockDomain &coreClock() { return _coreClock; }
    const GpuTopParams &params() const { return _params; }

    /** True when every core has fully drained. */
    bool allCoresIdle() const;

    /** Aggregate L1 misses of one kind across all cores. */
    std::uint64_t l1Misses(AccessKind kind);

    /**
     * Attach @p writer as the traffic-capture sink of every core:
     * registers one trace client per core, in core-index order (the
     * replay driver relies on client i == core i). Null detaches.
     */
    void setTrafficCapture(mem::TrafficTraceWriter *writer);

  private:
    GpuTopParams _params;
    ClockDomain &_coreClock;
    std::vector<std::unique_ptr<noc::Link>> _coreLinks;
    std::vector<std::unique_ptr<SimtCore>> _cores;
    std::unique_ptr<cache::Cache> _l2;
    std::unique_ptr<noc::Link> _memLink;
};

} // namespace emerald::gpu

#endif // EMERALD_GPU_GPU_TOP_HH
