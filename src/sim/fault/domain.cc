#include "sim/fault/domain.hh"

#include <algorithm>

namespace emerald::fault
{

void
FaultDomain::registerList(RetryList *list)
{
    _lists.push_back(list);
}

void
FaultDomain::unregisterList(RetryList *list)
{
    auto it = std::find(_lists.begin(), _lists.end(), list);
    if (it != _lists.end())
        _lists.erase(it);
}

} // namespace emerald::fault
