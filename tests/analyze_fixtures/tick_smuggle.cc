// Fixture for tools/emerald_analyze.py: tick-state-smuggle.
//
// `mutable` members and writes to members from const methods: the
// logically-const-cache idiom that turns into a cross-shard write
// race once two threads tick the model.

class TileCache
{
  public:
    int
    lookup(int key) const
    {
        ++_probes; // EXPECT: tick-state-smuggle
        _last = key; // EXPECT: tick-state-smuggle
        return key * 2;
    }

    void insert(int key) { _last = key; } // non-const write: clean

  private:
    mutable unsigned long _probes = 0; // EXPECT: tick-state-smuggle
    mutable int _last = 0; // EXPECT: tick-state-smuggle
};
