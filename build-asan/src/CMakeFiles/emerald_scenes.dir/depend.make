# Empty dependencies file for emerald_scenes.
# This may be replaced when dependencies are built.
