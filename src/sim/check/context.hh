/**
 * @file
 * Per-Simulation container for the correctness checkers, plus the
 * active-context registry the kernel hooks dispatch through.
 *
 * PacketPool and RetryList are plain value members of deeper objects
 * and carry no pointer back to their Simulation, so the hook functions
 * in hooks.hh cannot reach a context through their arguments. Instead,
 * each Simulation (when built with EMERALD_CHECKS) pushes its
 * CheckContext onto a small activation stack at construction and pops
 * it at destruction; the hooks forward to the innermost active
 * context. The simulator is single-threaded per Simulation, and tests
 * that nest a scoped Simulation inside another get the innermost one —
 * matching which pool/list the hook actually fired from.
 */

#ifndef EMERALD_SIM_CHECK_CONTEXT_HH
#define EMERALD_SIM_CHECK_CONTEXT_HH

#include "sim/check/packet_lifecycle.hh"
#include "sim/check/retry_protocol.hh"

namespace emerald
{

class EventQueue;

namespace check
{

/** Owns one Simulation's checkers and routes kernel hooks to them. */
class CheckContext
{
  public:
    explicit CheckContext(EventQueue &eq);
    ~CheckContext();

    CheckContext(const CheckContext &) = delete;
    CheckContext &operator=(const CheckContext &) = delete;

    PacketLifecycleChecker &lifecycle() { return _lifecycle; }
    RetryProtocolChecker &retry() { return _retry; }

    /**
     * End-of-simulation checks, called from ~Simulation. Leak and
     * quiescence verification only make sense when the event queue
     * drained: benches that stop at a tick limit legally tear down
     * with traffic still in flight, so @p queue_drained gates them.
     */
    void onTeardown(bool queue_drained);

    /** Innermost active context, or nullptr when checks are idle. */
    static CheckContext *active();

  private:
    PacketLifecycleChecker _lifecycle;
    RetryProtocolChecker _retry;
};

} // namespace check
} // namespace emerald

#endif // EMERALD_SIM_CHECK_CONTEXT_HH
