/**
 * @file
 * The multi-channel DRAM memory system, including the HMC
 * (heterogeneous memory controller) organization from case study I:
 * CPU traffic and IP traffic are steered to disjoint channel sets,
 * each with its own address interleaving (Table 4).
 */

#ifndef EMERALD_MEM_MEMORY_SYSTEM_HH
#define EMERALD_MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "mem/address_map.hh"
#include "mem/dram_channel.hh"
#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::mem
{

/** Memory-system organization. */
struct MemorySystemParams
{
    DramGeometry geom;
    DramTiming timing;
    unsigned queueCapacity = 64;
    Tick statsBucket = ticksFromUs(50.0);

    /** HMC mode: split channels by traffic source. */
    bool hmc = false;
    /** Channels assigned to the CPU in HMC mode (first N). */
    unsigned hmcCpuChannels = 1;

    AddrMapScheme unifiedScheme = AddrMapScheme::RoRaBaCoCh;
    AddrMapScheme hmcCpuScheme = AddrMapScheme::RoRaBaCoCh;
    AddrMapScheme hmcIpScheme = AddrMapScheme::RoCoRaBaCh;
};

/**
 * Routes packets to DRAM channels. In the unified (baseline)
 * organization a single address map covers all channels; in HMC mode
 * the traffic class picks the channel partition and that partition's
 * address map.
 */
class MemorySystem : public SimObject, public MemSink
{
  public:
    MemorySystem(Simulation &sim, const std::string &name,
                 const MemorySystemParams &params,
                 DramScheduler &scheduler);

    bool tryAccept(MemPacket *pkt) override;

    /**
     * Routes and delegates to the target channel, so a rejected
     * requestor is queued on (and woken by) the channel that was full.
     */
    bool offer(MemPacket *pkt, MemRequestor &req) override;

    unsigned numChannels() const
    {
        return static_cast<unsigned>(_channels.size());
    }
    DramChannel &channel(unsigned idx) { return *_channels[idx]; }
    const DramChannel &channel(unsigned idx) const
    {
        return *_channels[idx];
    }
    const MemorySystemParams &params() const { return _params; }

    /** @{ Aggregates across channels, for the experiment harnesses. */
    double rowHitRate() const;
    double meanBytesPerActivation() const;
    std::uint64_t totalBytes() const;
    std::uint64_t bytesFor(TrafficClass tclass) const;
    /** @} */

  private:
    /** Which channel handles @p pkt, and its decoded coordinates. */
    std::pair<unsigned, DecodedAddr> route(const MemPacket &pkt) const;

    MemorySystemParams _params;
    std::optional<AddressMap> _unifiedMap;
    std::optional<AddressMap> _hmcCpuMap;
    std::optional<AddressMap> _hmcIpMap;
    std::vector<std::unique_ptr<DramChannel>> _channels;
};

} // namespace emerald::mem

#endif // EMERALD_MEM_MEMORY_SYSTEM_HH
