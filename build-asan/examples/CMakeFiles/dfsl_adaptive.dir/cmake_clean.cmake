file(REMOVE_RECURSE
  "CMakeFiles/dfsl_adaptive.dir/dfsl_adaptive.cpp.o"
  "CMakeFiles/dfsl_adaptive.dir/dfsl_adaptive.cpp.o.d"
  "dfsl_adaptive"
  "dfsl_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsl_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
