/**
 * @file
 * Camera-inference workload model: the NPU's analogue of the app
 * render loop (soc/app_model.hh). A camera delivers a frame every
 * framePeriod; each frame submits one inference command with a
 * completion deadline of the next frame's arrival. Frames that find
 * the command queue full are dropped (the vision pipeline skips
 * them), completed inferences are checked against their deadline,
 * and per-inference progress feeds the DASH coordinator through the
 * QosProgressPort seam so NPU deadline urgency participates in
 * memory scheduling like GPU and display deadlines do.
 */

#ifndef EMERALD_NPU_CAMERA_MODEL_HH
#define EMERALD_NPU_CAMERA_MODEL_HH

#include "mem/dash_scheduler.hh"
#include "npu/command_queue.hh"
#include "sim/sim_object.hh"

namespace emerald::npu
{

struct CameraParams
{
    /** Camera frame period (30 FPS capture). */
    Tick framePeriod = ticksFromMs(33.0);
    /** Frames to capture; 0 runs until stop(). */
    unsigned frames = 0;
    /** DASH urgency threshold (Table 3 style; 0.8 like display). */
    double emergentThreshold = 0.8;
};

class CameraInferenceModel : public SimObject, public NpuIntClient
{
  public:
    /** @param qos optional DASH seam; null = no QoS participation. */
    CameraInferenceModel(Simulation &sim, const std::string &name,
                         const CameraParams &params,
                         NpuCommandSink &npu,
                         mem::QosProgressPort *qos);

    /** Begin capturing frames (first frame fires immediately). */
    void start();

    /** Stop capturing; in-flight inferences still complete. */
    void stop();

    void npuCommandDone(const NpuCommand &cmd, Tick finished,
                        bool aborted) override;
    void npuCommandProgress(const NpuCommand &cmd,
                            double work) override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    /** @{ Statistics. */
    Scalar statFrames;
    Scalar statDropped;
    Scalar statCompleted;
    Scalar statAborted;
    Scalar statDeadlineMisses;
    Distribution statInfTicks;
    /** @} */

  private:
    void captureFrame();

    CameraParams _params;
    NpuCommandSink &_npu;
    mem::QosProgressPort *_qos;
    int _qosIp = -1;

    bool _running = false;
    std::uint32_t _frame = 0;
    std::uint64_t _nextCmdId = 1;
    /** Command whose period is currently tracked by DASH (0=none);
     *  queued overlap keeps the earliest period, like a real QoS
     *  monitor tracking the oldest outstanding deadline. */
    std::uint64_t _qosCmdId = 0;

    EventFunction _frameEvent;
};

} // namespace emerald::npu

#endif // EMERALD_NPU_CAMERA_MODEL_HH
