
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenes/camera.cc" "src/CMakeFiles/emerald_scenes.dir/scenes/camera.cc.o" "gcc" "src/CMakeFiles/emerald_scenes.dir/scenes/camera.cc.o.d"
  "/root/repo/src/scenes/mesh.cc" "src/CMakeFiles/emerald_scenes.dir/scenes/mesh.cc.o" "gcc" "src/CMakeFiles/emerald_scenes.dir/scenes/mesh.cc.o.d"
  "/root/repo/src/scenes/procedural.cc" "src/CMakeFiles/emerald_scenes.dir/scenes/procedural.cc.o" "gcc" "src/CMakeFiles/emerald_scenes.dir/scenes/procedural.cc.o.d"
  "/root/repo/src/scenes/shaders.cc" "src/CMakeFiles/emerald_scenes.dir/scenes/shaders.cc.o" "gcc" "src/CMakeFiles/emerald_scenes.dir/scenes/shaders.cc.o.d"
  "/root/repo/src/scenes/workloads.cc" "src/CMakeFiles/emerald_scenes.dir/scenes/workloads.cc.o" "gcc" "src/CMakeFiles/emerald_scenes.dir/scenes/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_gpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_cache.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
