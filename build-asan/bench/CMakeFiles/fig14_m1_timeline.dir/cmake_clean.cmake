file(REMOVE_RECURSE
  "CMakeFiles/fig14_m1_timeline.dir/fig14_m1_timeline.cpp.o"
  "CMakeFiles/fig14_m1_timeline.dir/fig14_m1_timeline.cpp.o.d"
  "fig14_m1_timeline"
  "fig14_m1_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_m1_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
