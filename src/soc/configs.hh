/**
 * @file
 * Canned configurations matching the paper's tables, plus the
 * standalone-GPU rig case study II runs on.
 */

#ifndef EMERALD_SOC_CONFIGS_HH
#define EMERALD_SOC_CONFIGS_HH

#include <memory>

#include "core/graphics_pipeline.hh"
#include "gpu/gpu_top.hh"
#include "gpu/kernel.hh"
#include "mem/dash_scheduler.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "soc/soc_top.hh"

namespace emerald::soc
{

/**
 * Apply the shared --npu-* command-line axes to @p p:
 * --npu (enable), --npu-tile (PE grid rows=cols), --npu-model,
 * --npu-fps (camera rate), --npu-frames, --npu-queue-depth,
 * --npu-dma-outstanding, --npu-scratch-kb. Benches and soc_point
 * call this so every front end spells the axes identically.
 */
void applyNpuConfig(SocParams &p, const Config &cfg);

/** Case study I GPU (paper Table 5): 4 SCs, small caches. */
gpu::GpuTopParams caseStudy1GpuParams();

/** Case study II GPU (paper Table 7): 6 clusters, 2 MB L2. */
gpu::GpuTopParams caseStudy2GpuParams();

/** Case study II memory: 4-channel LPDDR3-1600. */
mem::MemorySystemParams caseStudy2MemParams();

/**
 * Standalone GPU mode (paper Section 4.1): GPU + private DRAM, no
 * CPU/OS. This is the rig the WT-sweep and DFSL experiments use.
 */
class StandaloneGpu
{
  public:
    StandaloneGpu(unsigned fb_width, unsigned fb_height,
                  const gpu::GpuTopParams &gpu_params =
                      caseStudy2GpuParams(),
                  const mem::MemorySystemParams &mem_params =
                      caseStudy2MemParams(),
                  const SimulationBuilder &builder = {});

    Simulation &sim() { return _sim; }
    gpu::GpuTop &gpu() { return *_gpu; }
    core::GraphicsPipeline &pipeline() { return *_pipeline; }
    gpu::KernelDispatcher &kernels() { return *_kernels; }
    mem::MemorySystem &memory() { return *_memory; }
    mem::FunctionalMemory &functionalMemory() { return _functionalMem; }

    /**
     * Run the event loop until @p done returns true.
     * @return false when the limit was hit first.
     */
    bool runUntil(const std::function<bool()> &done,
                  Tick limit = ticksFromMs(2000.0));

  private:
    Simulation _sim;
    ClockDomain *_gpuClock = nullptr;
    /** --mem-sched bundle (mem/sched_factory.hh); FR-FCFS default. */
    std::unique_ptr<mem::DashCoordinator> _dashCoordinator;
    std::unique_ptr<mem::DramScheduler> _scheduler;
    std::unique_ptr<mem::MemorySystem> _memory;
    std::unique_ptr<gpu::GpuTop> _gpu;
    std::unique_ptr<core::GraphicsPipeline> _pipeline;
    std::unique_ptr<gpu::KernelDispatcher> _kernels;
    mem::FunctionalMemory _functionalMem;
};

} // namespace emerald::soc

#endif // EMERALD_SOC_CONFIGS_HH
