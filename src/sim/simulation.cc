#include "sim/simulation.hh"

#include "sim/config.hh"

namespace emerald
{

Simulation::Simulation()
    : _statsRoot(""), _simGroup(_statsRoot, "sim"),
      _profiler(std::make_unique<EventProfiler>(_simGroup))
{
}

ClockDomain &
Simulation::createClockDomain(double mhz, const std::string &name)
{
    _domains.push_back(
        std::make_unique<ClockDomain>(_eq, periodFromMHz(mhz), name));
    return *_domains.back();
}

void
Simulation::attachInstrument(EventInstrument *instrument)
{
    _instruments.add(instrument);
    _eq.setInstrument(&_instruments);
}

void
Simulation::enableProfiling()
{
    if (_profiling)
        return;
    _profiling = true;
    attachInstrument(_profiler.get());
}

EventTracer &
Simulation::enableTracing(const std::string &path)
{
    if (!_tracer) {
        _tracer = std::make_unique<EventTracer>(path);
        attachInstrument(_tracer.get());
    }
    return *_tracer;
}

void
Simulation::configureObservability(const Config &cfg)
{
    std::string trace = cfg.getString("trace-file", "");
    if (!trace.empty())
        enableTracing(trace);
    if (cfg.getBool("profile", false))
        enableProfiling();
}

} // namespace emerald
