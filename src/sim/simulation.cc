#include "sim/simulation.hh"

namespace emerald
{

Simulation::Simulation()
    : _statsRoot("")
{
}

ClockDomain &
Simulation::createClockDomain(double mhz, const std::string &name)
{
    _domains.push_back(
        std::make_unique<ClockDomain>(_eq, periodFromMHz(mhz), name));
    return *_domains.back();
}

} // namespace emerald
