/**
 * @file
 * Fundamental simulation types and time helpers.
 *
 * The simulator measures time in integer ticks of one picosecond, the
 * same convention gem5 uses. Clock domains express their frequency as a
 * period in ticks so components running at different frequencies (CPU,
 * GPU, DRAM bus, display pixel clock) share one event queue.
 */

#ifndef EMERALD_SIM_TYPES_HH
#define EMERALD_SIM_TYPES_HH

#include <cstdint>

namespace emerald
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles within some clock domain. */
using Cycle = std::uint64_t;

/** A physical memory address. */
using Addr = std::uint64_t;

/** Ticks per second: 1 tick == 1 ps. */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** The largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/** Convert nanoseconds to ticks. */
constexpr Tick
ticksFromNs(double ns)
{
    return static_cast<Tick>(ns * 1e3 + 0.5);
}

/** Convert microseconds to ticks. */
constexpr Tick
ticksFromUs(double us)
{
    return static_cast<Tick>(us * 1e6 + 0.5);
}

/** Convert milliseconds to ticks. */
constexpr Tick
ticksFromMs(double ms)
{
    return static_cast<Tick>(ms * 1e9 + 0.5);
}

/** Convert ticks to (floating point) seconds. */
constexpr double
secondsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/** Convert ticks to (floating point) milliseconds. */
constexpr double
msFromTicks(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/** Check whether @p value is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 for powers of two. */
constexpr unsigned
log2i(std::uint64_t value)
{
    unsigned bits = 0;
    while (value > 1) {
        value >>= 1;
        ++bits;
    }
    return bits;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace emerald

#endif // EMERALD_SIM_TYPES_HH
