file(REMOVE_RECURSE
  "libemerald_mem.a"
)
