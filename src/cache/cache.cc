#include "cache/cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::cache
{

Cache::Cache(Simulation &sim, const std::string &name,
             ClockDomain &domain, const CacheParams &params)
    : SimObject(sim, name), MemSink(sim),
      statHits(*this, "hits", "demand hits"),
      statMisses(*this, "misses", "demand misses"),
      statMshrMerges(*this, "mshr_merges",
                     "misses merged into an existing MSHR"),
      statWritebacks(*this, "writebacks", "dirty lines written back"),
      statRejects(*this, "rejects",
                  "requests rejected (MSHR/queue full)"),
      _params(params), _domain(domain),
      _mshrs(params.mshrs, params.targetsPerMshr),
      _sendEvent([this] { drainSendQueue(); }, name + ".send"),
      _respEvent([this] { deliverResponses(); }, name + ".resp")
{
    setSinkName(name);
    panic_if(!isPowerOf2(params.lineSize), "line size must be 2^n");
    std::uint64_t lines = params.sizeBytes / params.lineSize;
    panic_if(lines == 0 || lines % params.assoc != 0,
             "cache %s geometry invalid", name.c_str());
    _numSets = lines / params.assoc;
    panic_if(!isPowerOf2(_numSets), "set count must be 2^n");
    _lines.resize(lines);

    registerCheckpointEvent(_sendEvent);
    registerCheckpointEvent(_respEvent);
    registerCheckpointClient(*this);
    registerCheckpointRequestor(*this);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / _params.lineSize) & (_numSets - 1);
}

int
Cache::findWay(std::size_t set, Addr line_addr) const
{
    for (unsigned w = 0; w < _params.assoc; ++w) {
        const Line &line = _lines[set * _params.assoc + w];
        if (line.valid && line.tag == line_addr)
            return static_cast<int>(w);
    }
    return -1;
}

bool
Cache::isCached(Addr addr) const
{
    Addr line = lineAddrOf(addr);
    return findWay(setIndex(line), line) >= 0;
}

bool
Cache::tryAccept(MemPacket *pkt)
{
    Addr line_addr = lineAddrOf(pkt->addr);
    std::size_t set = setIndex(line_addr);
    int way = findWay(set, line_addr);

    if (way >= 0) {
        Line &line = _lines[set * _params.assoc +
                            static_cast<unsigned>(way)];
        line.lastUse = ++_useCounter;
        if (pkt->write)
            line.dirty = true;
        ++statHits;
        respondLater(pkt);
        return true;
    }

    // Miss: merge into an existing MSHR when possible.
    if (Mshr *mshr = _mshrs.find(line_addr)) {
        if (!_mshrs.canAddTarget(*mshr)) {
            ++statRejects;
            return false;
        }
        mshr->targets.push_back(pkt);
        ++statMisses;
        ++statMshrMerges;
        return true;
    }

    if (!_mshrs.available() ||
        _sendQueue.size() >= _params.sendQueueDepth) {
        ++statRejects;
        return false;
    }

    Mshr &mshr = _mshrs.allocate(line_addr);
    mshr.targets.push_back(pkt);
    ++statMisses;

    auto *fill = sim().packetPool().alloc(
        line_addr, _params.lineSize, false, pkt->tclass, pkt->kind,
        pkt->requestorId, this, line_addr);
    mshr.fillSent = true;
    pushDownstream(fill);
    return true;
}

void
Cache::memResponse(MemPacket *fill)
{
    Addr line_addr = fill->token;
    Mshr *mshr = _mshrs.find(line_addr);
    panic_if(!mshr, "%s: fill for unknown line 0x%llx", name().c_str(),
             (unsigned long long)line_addr);

    bool dirty = false;
    for (const MemPacket *target : mshr->targets)
        dirty |= target->write;

    installLine(line_addr, dirty);

    for (MemPacket *target : mshr->targets)
        respondLater(target);
    _mshrs.release(line_addr);
    freePacket(fill);

    // The released MSHR is capacity a rejected upstream requestor may
    // have been waiting for.
    wakeUpstream();
}

void
Cache::installLine(Addr line_addr, bool dirty)
{
    std::size_t set = setIndex(line_addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < _params.assoc; ++w) {
        Line &line = _lines[set * _params.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        ++statWritebacks;
        auto *wb = sim().packetPool().alloc(
            victim->tag, _params.lineSize, true, _params.trafficClass,
            AccessKind::Writeback, _params.requestorId, nullptr);
        pushDownstream(wb);
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = line_addr;
    victim->lastUse = ++_useCounter;
}

void
Cache::pushDownstream(MemPacket *pkt)
{
    panic_if(!_downstream, "%s has no downstream sink", name().c_str());
    _sendQueue.push_back(pkt);
    if (!_downstreamBlocked && !_sendEvent.scheduled())
        schedule(_sendEvent, curTick());
}

void
Cache::drainSendQueue()
{
    if (_downstreamBlocked)
        return;
    bool drained = false;
    while (!_sendQueue.empty()) {
        if (!_downstream->offer(_sendQueue.front(), *this)) {
            // Downstream queued us; it calls retryRequest() when a
            // slot frees. No polling in the meantime.
            _downstreamBlocked = true;
            break;
        }
        _sendQueue.pop_front();
        drained = true;
    }
    if (drained)
        wakeUpstream();
}

void
Cache::retryRequest()
{
    _downstreamBlocked = false;
    drainSendQueue();
}

void
Cache::wakeUpstream()
{
    // Checked wake: a waiter can be re-rejected for a resource this
    // capacity test does not cover (a full MSHR target list), so an
    // unchecked loop would wake it forever.
    while (_mshrs.available() &&
           _sendQueue.size() < _params.sendQueueDepth &&
           wakeOneRetryChecked()) {
    }
}

void
Cache::hangDiagnostics(std::ostream &os) const
{
    if (!_downstreamBlocked && _sendQueue.empty() &&
        _mshrs.available() && !hasRetryWaiters())
        return;
    os << "mshrs_free=" << (_mshrs.available() ? "yes" : "no")
       << " send_queue=" << _sendQueue.size() << "/"
       << _params.sendQueueDepth
       << (_downstreamBlocked ? " BLOCKED on downstream" : "");
}

void
Cache::respondLater(MemPacket *pkt)
{
    Tick when = curTick() + _domain.cyclesToTicks(_params.hitLatency);
    _respQueue.emplace(when, pkt);
    if (!_respEvent.scheduled())
        schedule(_respEvent, when);
    else if (_respEvent.when() > when)
        reschedule(_respEvent, when);
}

void
Cache::deliverResponses()
{
    Tick now = curTick();
    while (!_respQueue.empty() && _respQueue.begin()->first <= now) {
        MemPacket *pkt = _respQueue.begin()->second;
        _respQueue.erase(_respQueue.begin());
        completePacket(pkt);
    }
    if (!_respQueue.empty())
        schedule(_respEvent, _respQueue.begin()->first);
}

void
Cache::serialize(CheckpointOut &out) const
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();

    std::vector<std::uint64_t> valid, dirty, tag, last_use;
    valid.reserve(_lines.size());
    for (const Line &line : _lines) {
        valid.push_back(line.valid);
        dirty.push_back(line.dirty);
        tag.push_back(line.tag);
        last_use.push_back(line.lastUse);
    }
    out.putU64Vec("line.valid", valid);
    out.putU64Vec("line.dirty", dirty);
    out.putU64Vec("line.tag", tag);
    out.putU64Vec("line.last_use", last_use);
    out.putU64("use_counter", _useCounter);

    // The MSHR file is a hash map; sort by line address so the same
    // cache state always produces byte-identical sections.
    std::vector<const Mshr *> mshrs;
    mshrs.reserve(_mshrs.inUse());
    for (const auto &kv : _mshrs.entries())
        mshrs.push_back(&kv.second);
    std::sort(mshrs.begin(), mshrs.end(),
              [](const Mshr *a, const Mshr *b) {
                  return a->lineAddr < b->lineAddr;
              });
    out.putU64("num_mshrs", mshrs.size());
    for (std::size_t i = 0; i < mshrs.size(); ++i) {
        const Mshr &mshr = *mshrs[i];
        std::string prefix = strprintf("mshr%zu", i);
        out.putU64(prefix + ".line_addr", mshr.lineAddr);
        out.putBool(prefix + ".fill_sent", mshr.fillSent);
        out.putU64(prefix + ".num_targets", mshr.targets.size());
        for (std::size_t j = 0; j < mshr.targets.size(); ++j) {
            putPacket(out, prefix + strprintf(".t%zu", j),
                      *mshr.targets[j], reg);
        }
    }

    out.putU64("num_sends", _sendQueue.size());
    for (std::size_t i = 0; i < _sendQueue.size(); ++i)
        putPacket(out, strprintf("send%zu", i), *_sendQueue[i], reg);

    out.putU64("num_resps", _respQueue.size());
    std::size_t i = 0;
    for (const auto &entry : _respQueue) {
        std::string prefix = strprintf("resp%zu", i++);
        out.putTick(prefix + ".when", entry.first);
        putPacket(out, prefix, *entry.second, reg);
    }

    out.putBool("downstream_blocked", _downstreamBlocked);
    retryList().serialize(out, "retry", reg);
}

void
Cache::unserialize(CheckpointIn &in)
{
    panic_if(_mshrs.inUse() || !_sendQueue.empty() ||
             !_respQueue.empty(),
             "%s: unserialize into a non-empty cache", name().c_str());
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    PacketPool &pool = sim().packetPool();

    auto valid = in.getU64Vec("line.valid");
    auto dirty = in.getU64Vec("line.dirty");
    auto tag = in.getU64Vec("line.tag");
    auto last_use = in.getU64Vec("line.last_use");
    fatal_if(valid.size() != _lines.size(),
             "%s: checkpoint holds %zu cache lines but this "
             "configuration has %zu",
             name().c_str(), valid.size(), _lines.size());
    for (std::size_t w = 0; w < _lines.size(); ++w) {
        _lines[w].valid = valid[w] != 0;
        _lines[w].dirty = dirty[w] != 0;
        _lines[w].tag = tag[w];
        _lines[w].lastUse = last_use[w];
    }
    _useCounter = in.getU64("use_counter");

    std::uint64_t num_mshrs = in.getU64("num_mshrs");
    for (std::uint64_t i = 0; i < num_mshrs; ++i) {
        std::string prefix = strprintf("mshr%llu",
                                       (unsigned long long)i);
        Mshr &mshr = _mshrs.allocate(in.getU64(prefix + ".line_addr"));
        mshr.fillSent = in.getBool(prefix + ".fill_sent");
        std::uint64_t targets = in.getU64(prefix + ".num_targets");
        for (std::uint64_t j = 0; j < targets; ++j) {
            mshr.targets.push_back(
                getPacket(in, prefix + strprintf(".t%llu",
                                                 (unsigned long long)j),
                          pool, reg));
        }
    }

    std::uint64_t num_sends = in.getU64("num_sends");
    for (std::uint64_t i = 0; i < num_sends; ++i) {
        _sendQueue.push_back(
            getPacket(in, strprintf("send%llu", (unsigned long long)i),
                      pool, reg));
    }

    std::uint64_t num_resps = in.getU64("num_resps");
    for (std::uint64_t i = 0; i < num_resps; ++i) {
        std::string prefix = strprintf("resp%llu",
                                       (unsigned long long)i);
        Tick when = in.getTick(prefix + ".when");
        _respQueue.emplace(when, getPacket(in, prefix, pool, reg));
    }

    _downstreamBlocked = in.getBool("downstream_blocked");
    retryList().unserialize(in, "retry", reg);
}

} // namespace emerald::cache
