#include "core/trace.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace emerald::core
{

namespace
{

constexpr std::uint32_t traceMagic = 0x454d5452; // "EMTR"
constexpr std::uint32_t traceVersion = 1;

struct Writer
{
    std::FILE *f;

    bool
    u32(std::uint32_t v)
    {
        return std::fwrite(&v, sizeof(v), 1, f) == 1;
    }

    bool
    bytes(const void *p, std::size_t n)
    {
        return n == 0 || std::fwrite(p, 1, n, f) == n;
    }

    bool
    str(const std::string &s)
    {
        return u32(static_cast<std::uint32_t>(s.size())) &&
               bytes(s.data(), s.size());
    }

    template <typename T>
    bool
    vec(const std::vector<T> &v)
    {
        return u32(static_cast<std::uint32_t>(v.size())) &&
               bytes(v.data(), v.size() * sizeof(T));
    }
};

struct Reader
{
    std::FILE *f;
    bool ok = true;

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        ok = ok && std::fread(&v, sizeof(v), 1, f) == 1;
        return v;
    }

    bool
    bytes(void *p, std::size_t n)
    {
        ok = ok && (n == 0 || std::fread(p, 1, n, f) == n);
        return ok;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        if (!ok || n > (1u << 24)) {
            ok = false;
            return {};
        }
        std::string s(n, '\0');
        bytes(s.data(), n);
        return s;
    }

    template <typename T>
    std::vector<T>
    vec()
    {
        std::uint32_t n = u32();
        if (!ok || n > (1u << 26)) {
            ok = false;
            return {};
        }
        std::vector<T> v(n);
        bytes(v.data(), n * sizeof(T));
        return v;
    }
};

} // namespace

bool
saveTrace(const std::string &path, const Trace &trace)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    Writer w{f};
    bool ok = w.u32(traceMagic) && w.u32(traceVersion) &&
              w.u32(trace.fbWidth) && w.u32(trace.fbHeight) &&
              w.u32(static_cast<std::uint32_t>(trace.frames.size()));
    for (const auto &frame : trace.frames) {
        ok = ok && w.u32(static_cast<std::uint32_t>(frame.size()));
        for (const TraceDraw &draw : frame) {
            ok = ok && w.str(draw.vsSource) && w.str(draw.fsSource);
            ok = ok &&
                 w.u32(static_cast<std::uint32_t>(draw.primType));
            std::uint32_t state_bits =
                (draw.state.depthTest ? 1u : 0u) |
                (draw.state.depthWrite ? 2u : 0u) |
                (draw.state.blend ? 4u : 0u) |
                (draw.state.cullBackface ? 8u : 0u);
            ok = ok && w.u32(state_bits);
            ok = ok && w.u32(draw.floatsPerVertex) &&
                 w.u32(draw.numVaryings);
            ok = ok && w.vec(draw.vertexData) &&
                 w.vec(draw.constants);
            ok = ok &&
                 w.u32(static_cast<std::uint32_t>(
                     draw.textures.size()));
            for (const TraceTexture &tex : draw.textures) {
                ok = ok &&
                     w.u32(static_cast<std::uint32_t>(tex.unit)) &&
                     w.u32(tex.width) && w.u32(tex.height) &&
                     w.vec(tex.texels);
            }
        }
    }
    std::fclose(f);
    return ok;
}

std::optional<Trace>
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    Reader r{f};
    Trace trace;
    if (r.u32() != traceMagic || r.u32() != traceVersion) {
        std::fclose(f);
        return std::nullopt;
    }
    trace.fbWidth = r.u32();
    trace.fbHeight = r.u32();
    std::uint32_t n_frames = r.u32();
    if (!r.ok || n_frames > (1u << 20)) {
        std::fclose(f);
        return std::nullopt;
    }
    trace.frames.resize(n_frames);
    for (auto &frame : trace.frames) {
        std::uint32_t n_draws = r.u32();
        if (!r.ok || n_draws > (1u << 16))
            break;
        frame.resize(n_draws);
        for (TraceDraw &draw : frame) {
            draw.vsSource = r.str();
            draw.fsSource = r.str();
            draw.primType = static_cast<PrimitiveType>(r.u32());
            std::uint32_t state_bits = r.u32();
            draw.state.depthTest = state_bits & 1u;
            draw.state.depthWrite = state_bits & 2u;
            draw.state.blend = state_bits & 4u;
            draw.state.cullBackface = state_bits & 8u;
            draw.floatsPerVertex = r.u32();
            draw.numVaryings = r.u32();
            draw.vertexData = r.vec<float>();
            draw.constants = r.vec<float>();
            std::uint32_t n_tex = r.u32();
            if (!r.ok || n_tex > 64)
                break;
            draw.textures.resize(n_tex);
            for (TraceTexture &tex : draw.textures) {
                tex.unit = static_cast<int>(r.u32());
                tex.width = r.u32();
                tex.height = r.u32();
                tex.texels = r.vec<std::uint32_t>();
            }
        }
    }
    std::fclose(f);
    if (!r.ok)
        return std::nullopt;
    return trace;
}

TracePlayer::TracePlayer(GraphicsPipeline &pipeline, Trace trace,
                         mem::FunctionalMemory &memory)
    : _pipeline(pipeline), _trace(std::move(trace)), _memory(memory)
{
    fatal_if(_trace.fbWidth != pipeline.fbWidth() ||
                 _trace.fbHeight != pipeline.fbHeight(),
             "trace resolution %ux%u does not match the pipeline",
             _trace.fbWidth, _trace.fbHeight);
    _fb = std::make_unique<Framebuffer>(_trace.fbWidth,
                                        _trace.fbHeight);
}

TracePlayer::DrawAssets &
TracePlayer::assetsFor(unsigned frame, unsigned draw_idx)
{
    auto key = std::make_pair(frame, draw_idx);
    auto it = _assets.find(key);
    if (it != _assets.end())
        return it->second;

    const TraceDraw &draw = _trace.frames[frame][draw_idx];
    DrawAssets assets;

    assets.vertexBuffer =
        _memory.allocate(draw.vertexData.size() * 4, 128);
    _memory.write(assets.vertexBuffer, draw.vertexData.data(),
                  draw.vertexData.size() * 4);

    // Programs are cached on (source, ROP-relevant state).
    std::string vs_key = "V\x01" + draw.vsSource;
    auto vs_it = _programCache.find(vs_key);
    if (vs_it == _programCache.end()) {
        vs_it = _programCache
                    .emplace(vs_key, _shaders.buildVertex(
                                         "trace.vs", draw.vsSource))
                    .first;
    }
    assets.vs = vs_it->second;

    std::string fs_key =
        strprintf("F\x01%d%d%d\x01", draw.state.depthTest ? 1 : 0,
                  draw.state.depthWrite ? 1 : 0,
                  draw.state.blend ? 1 : 0) +
        draw.fsSource;
    auto fs_it = _programCache.find(fs_key);
    if (fs_it == _programCache.end()) {
        fs_it = _programCache
                    .emplace(fs_key,
                             _shaders.buildFragment("trace.fs",
                                                    draw.fsSource,
                                                    draw.state))
                    .first;
    }
    assets.fs = fs_it->second;

    assets.textures = std::make_unique<TextureSet>();
    for (const TraceTexture &tex : draw.textures) {
        auto texture = std::make_unique<Texture>(
            tex.width, tex.height,
            _memory.allocate(std::uint64_t(tex.width) * tex.height * 4,
                             128));
        for (unsigned y = 0; y < tex.height; ++y)
            for (unsigned x = 0; x < tex.width; ++x)
                texture->setTexel(x, y,
                                  tex.texels[std::size_t(y) *
                                                 tex.width +
                                             x]);
        assets.textures->bind(tex.unit, texture.get());
        assets.textureObjs.push_back(std::move(texture));
    }

    return _assets.emplace(key, std::move(assets)).first->second;
}

void
TracePlayer::playFrame(unsigned idx,
                       std::function<void(const FrameStats &)> on_done)
{
    fatal_if(idx >= frameCount(), "trace frame %u out of range", idx);
    _pipeline.beginFrame(_fb.get());
    const auto &frame = _trace.frames[idx];
    for (unsigned d = 0; d < frame.size(); ++d) {
        const TraceDraw &src = frame[d];
        DrawAssets &assets = assetsFor(idx, d);
        DrawCall draw;
        draw.vertexProgram = assets.vs;
        draw.fragmentProgram = assets.fs;
        draw.primType = src.primType;
        draw.vertexCount = src.vertexCount();
        draw.vertexBufferAddr = assets.vertexBuffer;
        draw.floatsPerVertex = src.floatsPerVertex;
        draw.numVaryings = src.numVaryings;
        draw.constants = src.constants;
        draw.textures = assets.textures.get();
        draw.memory = &_memory;
        draw.state = src.state;
        _pipeline.submitDraw(std::move(draw));
    }
    _pipeline.endFrame(std::move(on_done));
}

} // namespace emerald::core
