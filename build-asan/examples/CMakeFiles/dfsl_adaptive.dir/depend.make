# Empty dependencies file for dfsl_adaptive.
# This may be replaced when dependencies are built.
