# Empty dependencies file for fig12_memsched_highload.
# This may be replaced when dependencies are built.
