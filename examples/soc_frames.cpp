/**
 * @file
 * Full-system example: the Android-app stand-in renders frames on
 * the SoC (CPU prep -> GPU render -> vsync pacing) while the display
 * controller refreshes at 60 FPS. Prints the per-frame timeline and
 * the DRAM bandwidth breakdown — the system-wide interactions
 * Emerald's full-system mode exists to expose.
 *
 * Usage: soc_frames [--config=BAS|DCB|DTB|HMC] [--model=M1..M4]
 *                   [--frames=4] [--highload=0]
 */

#include <cstdio>
#include <string>

#include "sim/config.hh"
#include "soc/soc_top.hh"

using namespace emerald;

namespace
{

scenes::WorkloadId
modelFromName(const std::string &name)
{
    if (name == "M1")
        return scenes::WorkloadId::M1_Chair;
    if (name == "M3")
        return scenes::WorkloadId::M3_Mask;
    if (name == "M4")
        return scenes::WorkloadId::M4_Triangles;
    return scenes::WorkloadId::M2_Cube;
}

soc::MemConfig
configFromName(const std::string &name)
{
    if (name == "DCB")
        return soc::MemConfig::DCB;
    if (name == "DTB")
        return soc::MemConfig::DTB;
    if (name == "HMC")
        return soc::MemConfig::HMC;
    return soc::MemConfig::BAS;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);

    soc::SocParams p;
    p.memConfig = configFromName(cfg.getString("config", "BAS"));
    p.model = modelFromName(cfg.getString("model", "M3"));
    p.frames = static_cast<unsigned>(cfg.getU64("frames", 4));
    p.highLoad = cfg.getBool("highload", false);
    p.cpuPrepRequests = cfg.getU64("prep", 1500);

    std::printf("SoC: %s, model %s, %s load, %u frames\n",
                soc::memConfigName(p.memConfig),
                scenes::workloadName(p.model),
                p.highLoad ? "high" : "regular", p.frames);

    soc::SocTop soc(p, SimulationBuilder().observability(cfg));
    soc.run();

    std::printf("\n%-6s %12s %12s %12s\n", "frame", "prep(ms)",
                "render(ms)", "total(ms)");
    for (std::size_t i = 0; i < soc.app().frames().size(); ++i) {
        const auto &f = soc.app().frames()[i];
        std::printf("%-6zu %12.3f %12.3f %12.3f\n", i,
                    msFromTicks(f.renderStart - f.prepStart),
                    msFromTicks(f.gpuTime()),
                    msFromTicks(f.totalTime()));
    }

    std::printf("\nDRAM: %.2f MB total (CPU %.2f, GPU %.2f, display "
                "%.2f), row-hit rate %.3f, %.1f bytes/activation\n",
                static_cast<double>(soc.memory().totalBytes()) / 1e6,
                static_cast<double>(
                    soc.memory().bytesFor(TrafficClass::Cpu)) / 1e6,
                static_cast<double>(
                    soc.memory().bytesFor(TrafficClass::Gpu)) / 1e6,
                static_cast<double>(
                    soc.memory().bytesFor(TrafficClass::Display)) / 1e6,
                soc.memory().rowHitRate(),
                soc.memory().meanBytesPerActivation());
    std::printf("display: %.0f frames completed, %.0f aborted, %.0f "
                "underruns\n",
                soc.display().statFramesCompleted.value(),
                soc.display().statFramesAborted.value(),
                soc.display().statUnderruns.value());
    return 0;
}
