/**
 * @file
 * Draw calls and render state: the unit of work an application
 * submits to the Emerald graphics pipeline (paper Fig. 2, step 1).
 *
 * Vertex data convention: the vertex buffer holds floatsPerVertex
 * floats per vertex, position .xyz first; all of them are loaded into
 * the vertex shader's a[0..] attribute registers at warp launch.
 * The vertex shader writes clip-space position to o[0..3] and up to
 * numVaryings varyings to o[4..]; fragments receive the interpolated
 * varyings in a[0..numVaryings-1].
 */

#ifndef EMERALD_CORE_DRAW_CALL_HH
#define EMERALD_CORE_DRAW_CALL_HH

#include <vector>

#include "core/texture.hh"
#include "gpu/isa/instruction.hh"
#include "mem/functional_memory.hh"
#include "sim/types.hh"

namespace emerald::core
{

enum class PrimitiveType { Triangles, TriangleStrip };

/** Fixed-function state for one draw. */
struct RenderState
{
    bool depthTest = true;
    bool depthWrite = true;
    bool blend = false;
    bool cullBackface = true;
};

/** Upper bound on interpolated varyings per fragment. */
constexpr unsigned maxVaryings = 12;

struct DrawCall
{
    const gpu::isa::Program *vertexProgram = nullptr;
    /** Fragment program already extended with ROP by ShaderBuilder. */
    const gpu::isa::Program *fragmentProgram = nullptr;

    PrimitiveType primType = PrimitiveType::Triangles;
    unsigned vertexCount = 0;

    Addr vertexBufferAddr = 0;
    unsigned floatsPerVertex = 0;
    unsigned numVaryings = 0;

    std::vector<float> constants;
    TextureSet *textures = nullptr;
    mem::FunctionalMemory *memory = nullptr;

    RenderState state;

    unsigned
    strideBytes() const
    {
        return floatsPerVertex * 4;
    }

    /** Number of base primitives this draw produces. */
    unsigned
    primitiveCount() const
    {
        if (primType == PrimitiveType::Triangles)
            return vertexCount / 3;
        return vertexCount < 3 ? 0 : vertexCount - 2;
    }

    /** Vertex indices of base primitive @p prim. */
    void
    primitiveIndices(unsigned prim, unsigned idx[3]) const
    {
        if (primType == PrimitiveType::Triangles) {
            idx[0] = prim * 3;
            idx[1] = prim * 3 + 1;
            idx[2] = prim * 3 + 2;
        } else {
            // Strip winding alternates; swap to keep it consistent.
            if (prim & 1) {
                idx[0] = prim + 1;
                idx[1] = prim;
                idx[2] = prim + 2;
            } else {
                idx[0] = prim;
                idx[1] = prim + 1;
                idx[2] = prim + 2;
            }
        }
    }
};

} // namespace emerald::core

#endif // EMERALD_CORE_DRAW_CALL_HH
