/**
 * @file
 * Memory packets and the request/response interfaces that connect
 * requestors, caches, interconnect and DRAM.
 *
 * Flow control is credit-less and explicit: a requestor offers a
 * packet to a MemSink with tryAccept(); a false return means the sink
 * is busy (full queue, no free MSHR, arbitration lost) and the caller
 * must retry on a later cycle. Responses travel back through the
 * MemClient interface recorded in the packet.
 *
 * Emerald separates function from timing: packets carry addresses and
 * metadata only, never data bytes. Functional state lives in
 * FunctionalMemory, the framebuffer and texture objects.
 */

#ifndef EMERALD_SIM_PACKET_HH
#define EMERALD_SIM_PACKET_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace emerald
{

/** Which SoC agent generated the traffic; DASH and HMC key off this. */
enum class TrafficClass : std::uint8_t
{
    Cpu,
    Gpu,
    Display,
};

/** Fine-grained access type, used for per-stream stats and routing. */
enum class AccessKind : std::uint8_t
{
    CpuData,
    Inst,
    GlobalData,
    Texture,
    Depth,
    Color,
    Constant,
    Vertex,
    Display,
    Writeback,
    NumKinds,
};

const char *accessKindName(AccessKind kind);
const char *trafficClassName(TrafficClass tclass);

class MemPacket;

/** Receives responses for packets it sent downstream. */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /**
     * A request previously accepted downstream has completed.
     * Ownership of @p pkt returns to the client.
     */
    virtual void memResponse(MemPacket *pkt) = 0;
};

/** Accepts memory request packets. */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /**
     * Offer a packet. On true the sink takes ownership; on false the
     * caller keeps the packet and must retry later.
     */
    virtual bool tryAccept(MemPacket *pkt) = 0;
};

/**
 * One memory transaction. Requests at most one cache line in size.
 */
class MemPacket
{
  public:
    MemPacket(Addr addr, unsigned size, bool write, TrafficClass tclass,
              AccessKind kind, int requestor_id,
              MemClient *client = nullptr, std::uint64_t token = 0)
        : addr(addr), size(size), write(write), tclass(tclass),
          kind(kind), requestorId(requestor_id), client(client),
          token(token)
    {}

    Addr addr;
    unsigned size;
    bool write;
    TrafficClass tclass;
    AccessKind kind;

    /**
     * Identifies the requesting agent for scheduler accounting:
     * CPU cores use their core index; see soc::RequestorIds for IPs.
     */
    int requestorId;

    /** Receiver of the response; nullptr marks a posted write. */
    MemClient *client;

    /** Client-private tag, opaque to everything below the client. */
    std::uint64_t token;

    /** When the packet entered the memory system (for latency stats). */
    Tick issued = 0;

    /** True for posted writes that never generate a response. */
    bool posted() const { return client == nullptr; }

    /** Line-aligned address for @p line_size byte lines. */
    Addr
    lineAddr(unsigned line_size) const
    {
        return addr & ~static_cast<Addr>(line_size - 1);
    }

    std::string toString() const;
};

/**
 * Complete a packet from the perspective of the component that
 * finished servicing it: respond to the client or, for posted writes,
 * free the packet.
 */
inline void
completePacket(MemPacket *pkt)
{
    if (pkt->client)
        pkt->client->memResponse(pkt);
    else
        delete pkt;
}

} // namespace emerald

#endif // EMERALD_SIM_PACKET_HH
