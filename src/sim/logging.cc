#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace emerald
{

namespace
{
bool quietLogging = false;
} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string("<format error>");
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vstrprintf(fmt, args);
    va_end(args);
    return result;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietLogging)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (quietLogging)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuietLogging(bool quiet)
{
    quietLogging = quiet;
}

} // namespace emerald
