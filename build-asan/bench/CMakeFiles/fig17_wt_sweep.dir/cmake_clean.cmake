file(REMOVE_RECURSE
  "CMakeFiles/fig17_wt_sweep.dir/fig17_wt_sweep.cpp.o"
  "CMakeFiles/fig17_wt_sweep.dir/fig17_wt_sweep.cpp.o.d"
  "fig17_wt_sweep"
  "fig17_wt_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_wt_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
