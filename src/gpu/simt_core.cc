#include "gpu/simt_core.hh"

#include <bit>

#include "mem/traffic_trace.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::gpu
{

using isa::Instruction;
using isa::LatencyClass;
using isa::Opcode;

SimtCore::SimtCore(Simulation &sim, const std::string &name,
                   ClockDomain &domain, const SimtCoreParams &params,
                   MemSink &downstream)
    : SimObject(sim, name), Clocked(domain, name),
      statCyclesActive(*this, "cycles_active",
                       "cycles with work resident"),
      statWarpInstrs(*this, "warp_instrs", "warp instructions issued"),
      statThreadInstrs(*this, "thread_instrs",
                       "thread instructions executed"),
      statTasksVertex(*this, "tasks_vertex", "vertex warps run"),
      statTasksFragment(*this, "tasks_fragment", "fragment warps run"),
      statTasksCompute(*this, "tasks_compute", "compute warps run"),
      statStallNoReadyWarp(*this, "stall_no_ready_warp",
                           "scheduler cycles with no ready warp"),
      statLsuStalls(*this, "lsu_stalls",
                    "LSU sends blocked pending an L1 retry"),
      _params(params), _downstream(downstream),
      _warps(params.maxWarps), _scoreboard(params.maxWarps)
{
    // Each scheduler lane owns an interleaved subset of the warp
    // slots; the policy object only ever ranks its own subset.
    for (unsigned s = 0; s < params.schedulers; ++s) {
        std::vector<unsigned> owned;
        for (unsigned slot = s; slot < params.maxWarps;
             slot += params.schedulers) {
            owned.push_back(slot);
        }
        _warpScheds.push_back(
            createWarpScheduler(params.warpSched, std::move(owned), s));
    }

    auto make_cache = [&](const char *cache_name,
                          cache::CacheParams cp) {
        cp.trafficClass = TrafficClass::Gpu;
        cp.requestorId = gpuRequestorId;
        auto c = std::make_unique<cache::Cache>(
            sim, name + "." + cache_name, domain, cp);
        c->setDownstream(downstream);
        return c;
    };
    _l1i = make_cache("l1i", params.l1i);
    _l1d = make_cache("l1d", params.l1d);
    _l1t = make_cache("l1t", params.l1t);
    _l1z = make_cache("l1z", params.l1z);
    _l1c = make_cache("l1c", params.l1c);

    registerCheckpointEvent(tickEvent());
    registerCheckpointClient(*this);
    registerCheckpointRequestor(*this);
}

void
SimtCore::serialize(CheckpointOut &out) const
{
    // Checkpoints only happen at quiescent points (checkpointSafe()),
    // so resident warps, LSU state and scoreboard entries are all
    // empty; only the allocation cursors that steer future decisions
    // need to survive.
    panic_if(!idle(), "%s: serialize while busy", name().c_str());
    std::vector<std::uint64_t> cursors;
    for (const auto &sched : _warpScheds)
        cursors.push_back(sched->cursorState());
    out.putU64Vec("sched_cursor", cursors);
    out.putStr("warp_sched", _warpScheds.empty()
                                 ? ""
                                 : _warpScheds[0]->policyName());
    out.putU64("launch_seq", _launchSeq);
    std::vector<std::uint64_t> free_list(_memInstrFreeList.begin(),
                                         _memInstrFreeList.end());
    out.putU64Vec("mem_instr_free_list", free_list);
    out.putU64("num_mem_instrs", _memInstrs.size());
}

void
SimtCore::unserialize(CheckpointIn &in)
{
    panic_if(!idle(), "%s: unserialize while busy", name().c_str());
    auto cursors = in.getU64Vec("sched_cursor");
    fatal_if(cursors.size() != _warpScheds.size(),
             "%s: checkpoint holds %zu schedulers but this "
             "configuration has %zu",
             name().c_str(), cursors.size(), _warpScheds.size());
    std::string policy = in.getStr("warp_sched");
    fatal_if(!_warpScheds.empty() &&
                 policy != _warpScheds[0]->policyName(),
             "%s: checkpoint was taken under warp scheduler '%s' but "
             "this run uses '%s'",
             name().c_str(), policy.c_str(),
             _warpScheds[0]->policyName());
    for (std::size_t s = 0; s < cursors.size(); ++s)
        _warpScheds[s]->setCursorState(cursors[s]);
    _launchSeq = in.getU64("launch_seq");
    _memInstrs.clear();
    _memInstrs.resize(in.getU64("num_mem_instrs"));
    _memInstrFreeList.clear();
    for (std::uint64_t id : in.getU64Vec("mem_instr_free_list"))
        _memInstrFreeList.push_back(static_cast<unsigned>(id));
}

bool
SimtCore::checkpointSafe() const
{
    return idle();
}

cache::Cache &
SimtCore::l1ForKind(AccessKind kind)
{
    switch (kind) {
      case AccessKind::Inst: return *_l1i;
      case AccessKind::Texture: return *_l1t;
      case AccessKind::Depth: return *_l1z;
      case AccessKind::Constant:
      case AccessKind::Vertex: return *_l1c;
      default: return *_l1d;
    }
}

bool
SimtCore::tryAddTask(WarpTask &&task)
{
    if (_taskQueue.size() >= _params.taskQueueDepth)
        return false;
    _taskQueue.push_back(std::move(task));
    activate();
    return true;
}

bool
SimtCore::idle() const
{
    if (!_taskQueue.empty() || !_lsuQueue.empty() ||
        !_writebacks.empty()) {
        return false;
    }
    for (const Warp &warp : _warps) {
        if (warp.valid)
            return false;
    }
    return true;
}

unsigned
SimtCore::allocMemInstr(unsigned slot, std::vector<unsigned> regs,
                        bool init_fetch)
{
    unsigned id;
    if (!_memInstrFreeList.empty()) {
        id = _memInstrFreeList.back();
        _memInstrFreeList.pop_back();
    } else {
        id = static_cast<unsigned>(_memInstrs.size());
        _memInstrs.emplace_back();
    }
    MemInstrState &state = _memInstrs[id];
    state.inUse = true;
    state.slot = slot;
    state.regSlots = std::move(regs);
    state.outstanding = 0;
    state.initFetch = init_fetch;
    return id;
}

void
SimtCore::launchQueuedTasks()
{
    while (!_taskQueue.empty()) {
        WarpTask &task = _taskQueue.front();
        unsigned regs_needed =
            task.program->numRegs * isa::warpSize;
        if (_regsInUse + regs_needed > _params.numRegisters ||
            _threadsInUse + isa::warpSize > _params.maxThreads) {
            return;
        }
        int free_slot = -1;
        for (unsigned i = 0; i < _warps.size(); ++i) {
            if (!_warps[i].valid) {
                free_slot = static_cast<int>(i);
                break;
            }
        }
        if (free_slot < 0)
            return;

        Warp &warp = _warps[static_cast<unsigned>(free_slot)];
        warp.valid = true;
        warp.task = std::move(task);
        _taskQueue.pop_front();
        warp.stack.reset(warp.task.activeMask);
        warp.pendingInitFetch = 0;
        warp.pendingMemInstrs = 0;
        warp.atBarrier = false;
        warp.draining = false;
        warp.lastFetchLine = -1;
        warp.warpInstrsExecuted = 0;
        warp.launchSeq = _launchSeq++;
        _scoreboard.resetWarp(static_cast<unsigned>(free_slot));
        _regsInUse += regs_needed;
        _threadsInUse += isa::warpSize;

        switch (warp.task.type) {
          case WarpTaskType::Vertex: ++statTasksVertex; break;
          case WarpTaskType::Fragment: ++statTasksFragment; break;
          case WarpTaskType::Compute: ++statTasksCompute; break;
        }

        if (!warp.task.initFetch.empty()) {
            auto lines = coalesce(warp.task.initFetch,
                                  _params.l1c.lineSize);
            unsigned id = allocMemInstr(
                static_cast<unsigned>(free_slot), {}, true);
            MemInstrState &state = _memInstrs[id];
            for (const CoalescedAccess &line : lines) {
                if (line.write)
                    continue;
                ++state.outstanding;
                _lsuQueue.push_back({line.lineAddr, false,
                                     warp.task.initFetchKind,
                                     static_cast<int>(id)});
            }
            if (state.outstanding == 0) {
                state.inUse = false;
                _memInstrFreeList.push_back(id);
            } else {
                warp.pendingInitFetch = state.outstanding;
            }
        }
    }
}

void
SimtCore::chargeInstructionFetch(Warp &warp, unsigned)
{
    std::int64_t line = warp.stack.pc() / _params.instrsPerFetchLine;
    if (line == warp.lastFetchLine)
        return;
    warp.lastFetchLine = line;
    // Synthetic instruction addresses: stable per program. Derived
    // from the program NAME, never its host pointer — heap addresses
    // vary run to run, which would leak host allocator state into L1I
    // conflict patterns and break event-stream determinism (caught by
    // the sim.check.event_hash verifier).
    std::uint64_t name_hash = 0xcbf29ce484222325ULL;
    for (char c : warp.task.program->name) {
        name_hash ^= static_cast<unsigned char>(c);
        name_hash *= 0x00000100000001b3ULL;
    }
    Addr base = 0x40000000ULL ^ (name_hash & 0x0FFFF000ULL);
    Addr addr = base + static_cast<Addr>(line) * _params.l1i.lineSize;
    _lsuQueue.push_back({addr, false, AccessKind::Inst, -1});
}

void
SimtCore::executeWarp(unsigned slot)
{
    Warp &warp = _warps[slot];
    const Instruction &instr =
        warp.task.program->code[static_cast<std::size_t>(
            warp.stack.pc())];

    chargeInstructionFetch(warp, slot);

    std::uint32_t active = warp.stack.activeMask();
    executeWarpInstruction(instr, active, warp.task.threads.data(),
                           warp.task.env, _effects);

    ++statWarpInstrs;
    statThreadInstrs += std::popcount(_effects.execMask);
    ++warp.warpInstrsExecuted;

    std::uint32_t alive = warp.aliveMask();
    if (instr.isBranch())
        warp.stack.branch(instr, _effects.takenMask, alive);
    else
        warp.stack.advance();

    if (instr.op == Opcode::EXIT || instr.op == Opcode::DISCARD ||
        instr.op == Opcode::ZTEST) {
        warp.stack.pruneDead(alive);
    }

    // Latency / memory handling.
    LatencyClass lat = instr.latencyClass();
    std::vector<unsigned> dests = Scoreboard::destSlots(instr);

    auto fixed_latency = [&](Cycle cycles) {
        if (dests.empty())
            return;
        _scoreboard.markPending(slot, dests);
        Tick release = curTick() + clockDomain().cyclesToTicks(cycles);
        _writebacks.emplace(release, std::make_pair(slot, dests));
    };

    switch (lat) {
      case LatencyClass::Alu:
      case LatencyClass::Control:
        fixed_latency(_params.aluLatency);
        break;
      case LatencyClass::Sfu:
        fixed_latency(_params.sfuLatency);
        break;
      case LatencyClass::MemShared:
        fixed_latency(_params.sharedMemLatency);
        break;
      case LatencyClass::MemGlobal:
      case LatencyClass::Tex:
      case LatencyClass::Rop: {
        auto lines = coalesce(_effects.accesses,
                              _params.l1d.lineSize);
        unsigned reads = 0;
        for (const CoalescedAccess &line : lines) {
            if (!line.write)
                ++reads;
        }
        if (reads > 0) {
            unsigned id = allocMemInstr(slot, dests, false);
            _memInstrs[id].outstanding = reads;
            if (!dests.empty())
                _scoreboard.markPending(slot, dests);
            ++warp.pendingMemInstrs;
            for (const CoalescedAccess &line : lines) {
                _lsuQueue.push_back({line.lineAddr, line.write,
                                     _effects.kind,
                                     line.write
                                         ? -1
                                         : static_cast<int>(id)});
            }
        } else {
            // Stores only (or fully predicated-off): no read deps.
            for (const CoalescedAccess &line : lines) {
                _lsuQueue.push_back(
                    {line.lineAddr, line.write, _effects.kind, -1});
            }
            fixed_latency(_params.aluLatency);
        }
        break;
      }
    }

    if (instr.op == Opcode::BAR)
        barrierArrive(slot);

    if (warp.executionDone())
        warp.draining = true;
}

void
SimtCore::barrierArrive(unsigned slot)
{
    Warp &warp = _warps[slot];
    if (warp.task.ctaKey < 0 || warp.task.ctaWarps <= 1)
        return; // Degenerate barrier: nothing to wait for.
    warp.atBarrier = true;
    unsigned &arrived = _barrierArrived[warp.task.ctaKey];
    ++arrived;
    if (arrived >= warp.task.ctaWarps) {
        arrived = 0;
        for (Warp &other : _warps) {
            if (other.valid && other.task.ctaKey == warp.task.ctaKey)
                other.atBarrier = false;
        }
    }
}

bool
SimtCore::issueFrom(unsigned scheduler)
{
    // The policy ranks only the slots this lane owns — O(warps /
    // schedulers) per lane instead of the old O(warps) scan over the
    // whole array with a modulo ownership filter.
    WarpScheduler &sched = *_warpScheds[scheduler];
    sched.order(_warps, _orderBuf);
    for (unsigned slot : _orderBuf) {
        Warp &warp = _warps[slot];
        if (!warp.valid || warp.draining || warp.atBarrier ||
            warp.pendingInitFetch > 0 ||
            warp.pendingMemInstrs >=
                _params.maxPendingMemInstrsPerWarp ||
            warp.stack.empty()) {
            continue;
        }
        int pc = warp.stack.pc();
        if (pc < 0 ||
            pc >= static_cast<int>(warp.task.program->code.size())) {
            panic("%s: warp pc %d out of range in %s", name().c_str(),
                  pc, warp.task.program->name.c_str());
        }
        const Instruction &instr =
            warp.task.program->code[static_cast<std::size_t>(pc)];
        if (!_scoreboard.ready(slot, instr))
            continue;
        executeWarp(slot);
        sched.issued(slot);
        return true;
    }
    return false;
}

void
SimtCore::drainLsu()
{
    if (_lsuRetryPkt)
        return; // Head is blocked; the L1 wakes us when a slot frees.
    for (unsigned i = 0; i < _params.lsuIssuePerCycle; ++i) {
        if (_lsuQueue.empty())
            return;
        const LsuTxn &txn = _lsuQueue.front();
        bool posted = txn.memInstrId < 0;
        auto *pkt = sim().packetPool().alloc(
            txn.lineAddr, _params.l1d.lineSize, txn.write,
            TrafficClass::Gpu, txn.kind, gpuRequestorId,
            posted ? nullptr : this,
            posted ? 0 : static_cast<std::uint64_t>(txn.memInstrId));
        if (!l1ForKind(txn.kind).offer(pkt, *this)) {
            _lsuRetryPkt = pkt;
            ++statLsuStalls;
            return;
        }
        if (_traceWriter) {
            _traceWriter->record(_traceClient, curTick(), txn.lineAddr,
                                 txn.kind, txn.write);
        }
        _lsuQueue.pop_front();
    }
}

void
SimtCore::retryRequest()
{
    MemPacket *pkt = _lsuRetryPkt;
    if (!pkt) {
        activate();
        return; // Spurious wake; nothing pending.
    }
    _lsuRetryPkt = nullptr;
    const LsuTxn &txn = _lsuQueue.front();
    if (!l1ForKind(txn.kind).offer(pkt, *this)) {
        _lsuRetryPkt = pkt;
        return;
    }
    if (_traceWriter) {
        _traceWriter->record(_traceClient, curTick(), txn.lineAddr,
                             txn.kind, txn.write);
    }
    _lsuQueue.pop_front();
    activate();
}

void
SimtCore::memResponse(MemPacket *pkt)
{
    unsigned id = static_cast<unsigned>(pkt->token);
    panic_if(id >= _memInstrs.size() || !_memInstrs[id].inUse,
             "%s: response for unknown mem instr", name().c_str());
    MemInstrState &state = _memInstrs[id];
    panic_if(state.outstanding == 0, "mem instr over-completed");
    --state.outstanding;
    if (state.outstanding == 0) {
        Warp &warp = _warps[state.slot];
        if (state.initFetch) {
            warp.pendingInitFetch = 0;
        } else {
            if (!state.regSlots.empty())
                _scoreboard.release(state.slot, state.regSlots);
            panic_if(warp.pendingMemInstrs == 0,
                     "pendingMemInstrs underflow");
            --warp.pendingMemInstrs;
        }
        state.inUse = false;
        state.regSlots.clear();
        _memInstrFreeList.push_back(id);
    }
    freePacket(pkt);
    activate();
}

void
SimtCore::processWritebacks()
{
    Tick now = curTick();
    while (!_writebacks.empty() && _writebacks.begin()->first <= now) {
        auto [slot, regs] = _writebacks.begin()->second;
        _writebacks.erase(_writebacks.begin());
        _scoreboard.release(slot, regs);
    }
}

void
SimtCore::finishWarpIfDrained(unsigned slot)
{
    Warp &warp = _warps[slot];
    if (!warp.valid || !warp.draining)
        return;
    if (warp.pendingInitFetch > 0 || warp.pendingMemInstrs > 0 ||
        !_scoreboard.idle(slot)) {
        return;
    }
    // Free resources before the callback so completion handlers can
    // immediately enqueue follow-up work.
    WarpTask task = std::move(warp.task);
    warp.valid = false;
    warp.draining = false;
    _regsInUse -= task.program->numRegs * isa::warpSize;
    _threadsInUse -= isa::warpSize;
    if (task.onComplete)
        task.onComplete(task, task.threads.data());
}

bool
SimtCore::tick()
{
    processWritebacks();
    launchQueuedTasks();

    bool any_resident = false;
    for (const Warp &warp : _warps) {
        if (warp.valid) {
            any_resident = true;
            break;
        }
    }
    if (any_resident)
        ++statCyclesActive;

    bool issued_any = false;
    for (unsigned s = 0; s < _params.schedulers; ++s) {
        if (issueFrom(s))
            issued_any = true;
        else if (any_resident)
            ++statStallNoReadyWarp;
    }

    drainLsu();

    for (unsigned slot = 0; slot < _warps.size(); ++slot)
        finishWarpIfDrained(slot);

    if (idle())
        return false;

    // Sleep while only an external event (a memory response) can
    // unblock us: nothing issued, and no local work is pending.
    // memResponse() reactivates the core. This keeps long DRAM
    // stalls (e.g. the paper's 133 Mb/s high-load scenario) from
    // costing one simulation event per idle cycle.
    bool local_work = issued_any ||
                      (!_lsuQueue.empty() && !_lsuRetryPkt) ||
                      !_writebacks.empty() || !_taskQueue.empty();
    return local_work;
}

} // namespace emerald::gpu
