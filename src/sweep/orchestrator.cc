#include "sweep/orchestrator.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#include "sim/logging.hh"
#include "sweep/db.hh"

namespace emerald
{
namespace sweep
{

void
makeDirs(const std::string &path)
{
    std::string::size_type pos = 0;
    while (pos != std::string::npos) {
        pos = path.find('/', pos + 1);
        std::string prefix = path.substr(0, pos);
        if (prefix.empty())
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            fatal("cannot create directory '%s': %s", prefix.c_str(),
                  std::strerror(errno));
    }
}

namespace
{

/** Fork one child for @p point; returns its pid. */
pid_t
launchPoint(const std::vector<std::string> &command,
            const std::string &logPath)
{
    pid_t pid = ::fork();
    fatal_if(pid < 0, "fork failed: %s", std::strerror(errno));
    if (pid > 0)
        return pid;

    // Child: stdout+stderr to the per-point log, then exec. Only
    // async-signal-safe calls from here on.
    int fd = ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO)
            ::close(fd);
    }
    std::vector<char *> argv;
    argv.reserve(command.size() + 1);
    for (const std::string &arg : command)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // exec failed; the parent sees exit 127 like a shell would.
    _exit(127);
}

} // namespace

std::vector<std::string>
pointCommand(const SweepSpec &spec, const SweepPoint &point,
             const OrchestratorOptions &opts)
{
    std::vector<std::string> command;
    command.push_back(opts.benchBin);
    command.push_back("--run=" + spec.scenario);
    for (const auto &[key, value] : point.params)
        command.push_back("--" + key + "=" + value);
    command.push_back("--stats-out=sqlite:" + opts.dbPath);
    if (!opts.gitSha.empty())
        command.push_back("--git-sha=" + opts.gitSha);
    if (!spec.restoreDir.empty())
        command.push_back("--restore=" + spec.restoreDir);
    if (!spec.replayDir.empty())
        command.push_back("--replay-trace=" + spec.replayDir);
    return command;
}

namespace
{

using Clock = std::chrono::steady_clock;

/** One pending point's retry ledger. */
struct PointState
{
    const SweepPoint *point = nullptr;
    /** Failures charged so far (seeded from run_failures, so a
     *  kill -9'd orchestrator resumes a half-retried point with its
     *  budget partially spent). */
    unsigned failures = 0;
    /** Earliest relaunch time (backoff). */
    Clock::time_point eligibleAt = Clock::time_point::min();
    bool finished = false;
};

/** Classify one dead sweep child (docs/resilience.md taxonomy). */
std::string
classifyPointFailure(int status, bool hangReport)
{
    if (hangReport)
        return "hang";
    if (WIFSIGNALED(status))
        return WTERMSIG(status) == SIGKILL ? "oom-killed" : "crash";
    return "crash";
}

} // namespace

SweepReport
runSweep(const SweepSpec &spec,
         const std::vector<SweepPoint> &pending,
         const OrchestratorOptions &opts)
{
    SweepReport report;
    report.total = pending.size();

    if (opts.dryRun) {
        for (const SweepPoint &point : pending) {
            std::string line;
            for (const std::string &arg :
                 pointCommand(spec, point, opts))
                line += (line.empty() ? "" : " ") + arg;
            inform("dry-run: %s", line.c_str());
        }
        return report;
    }

    unsigned jobs = opts.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }

    std::string logDir = opts.outDir + "/logs";
    makeDirs(logDir);

    auto hangReportPath = [&](const SweepPoint &point) {
        return logDir + "/" + point.fingerprintHex + ".hang.json";
    };

    std::vector<PointState> states(pending.size());
    std::size_t finished = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        states[i].point = &pending[i];
        if (opts.db) {
            states[i].failures = opts.db->failureCount(
                spec.scenario, pending[i].fingerprintHex,
                opts.gitSha);
        }
        if (states[i].failures > opts.maxRetries) {
            // The budget was exhausted in a previous launch (the
            // orchestrator died before, or while, quarantining):
            // finish the quarantine instead of retrying forever
            // across relaunches.
            if (opts.db) {
                opts.db->setRunStatus(spec.scenario,
                                      pending[i].fingerprintHex,
                                      opts.gitSha, "quarantined");
            }
            warn("sweep point %s: retry budget already exhausted "
                 "(%u failures on record) — quarantined",
                 pending[i].fingerprintHex.c_str(),
                 states[i].failures);
            states[i].finished = true;
            ++finished;
            ++report.failed;
            ++report.quarantined;
        }
    }

    // Dispatch loop: keep up to `jobs` children in flight; whenever
    // one exits, harvest it, classify any failure, and either
    // relaunch the point after its backoff or quarantine it.
    std::map<pid_t, std::size_t> running;
    while (finished < states.size()) {
        Clock::time_point now = Clock::now();
        bool deferred = false;
        for (std::size_t i = 0;
             i < states.size() && running.size() < jobs; ++i) {
            PointState &st = states[i];
            bool launched = false;
            for (const auto &[pid, idx] : running)
                launched |= idx == i;
            if (st.finished || launched)
                continue;
            if (st.eligibleAt > now) {
                deferred = true;
                continue;
            }
            const SweepPoint &point = *st.point;
            std::string logPath =
                logDir + "/" + point.fingerprintHex + ".log";
            // A stale hang report would misclassify the next
            // failure, so each launch starts with a clean slate.
            std::remove(hangReportPath(point).c_str());
            std::vector<std::string> command =
                pointCommand(spec, point, opts);
            command.push_back("--hang-report-path=" +
                              hangReportPath(point));
            running[launchPoint(command, logPath)] = i;
        }

        if (running.empty()) {
            // Everything unfinished is backing off; nap briefly
            // rather than tracking the exact next deadline.
            ::usleep(10000);
            continue;
        }

        // With deferred points waiting on a backoff deadline, poll so
        // an expiring deadline is not stuck behind a slow sibling.
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, deferred ? WNOHANG : 0);
        if (pid == 0) {
            ::usleep(10000);
            continue;
        }
        if (pid < 0) {
            fatal_if(errno != EINTR, "waitpid failed: %s",
                     std::strerror(errno));
            continue;
        }
        auto it = running.find(pid);
        if (it == running.end())
            continue;
        PointState &st = states[it->second];
        const SweepPoint &point = *st.point;
        running.erase(it);

        bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (ok) {
            st.finished = true;
            ++finished;
            ++report.succeeded;
            inform("sweep: [%zu/%zu] %s done", finished,
                   states.size(), point.fingerprintHex.c_str());
            continue;
        }

        bool hangReport =
            ::access(hangReportPath(point).c_str(), F_OK) == 0;
        std::string cls = classifyPointFailure(status, hangReport);
        int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        int exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        std::string detail =
            sig ? strprintf("terminated by signal %d", sig)
                : strprintf("exit code %d", exitCode);
        if (hangReport)
            detail += "; hang report " + hangReportPath(point);
        warn("sweep point %s failed (%s: %s; log: %s/%s.log)",
             point.fingerprintHex.c_str(), cls.c_str(),
             detail.c_str(), logDir.c_str(),
             point.fingerprintHex.c_str());

        unsigned attempt = st.failures++;
        if (opts.db) {
            opts.db->recordFailure(spec.scenario,
                                   point.fingerprintHex, opts.gitSha,
                                   attempt, cls, sig, exitCode,
                                   /*recoveredTick=*/0, detail);
        }

        if (st.failures > opts.maxRetries) {
            if (opts.db) {
                opts.db->setRunStatus(spec.scenario,
                                      point.fingerprintHex,
                                      opts.gitSha, "quarantined");
            }
            warn("sweep point %s: %u failure(s), budget exhausted — "
                 "quarantined",
                 point.fingerprintHex.c_str(), st.failures);
            st.finished = true;
            ++finished;
            ++report.failed;
            ++report.quarantined;
            inform("sweep: [%zu/%zu] %s QUARANTINED", finished,
                   states.size(), point.fingerprintHex.c_str());
            continue;
        }

        if (opts.db) {
            opts.db->setRunStatus(spec.scenario, point.fingerprintHex,
                                  opts.gitSha, "retrying");
        }
        unsigned backoffMs =
            opts.backoffBaseMs << (st.failures > 1 ? st.failures - 1
                                                   : 0);
        st.eligibleAt =
            Clock::now() + std::chrono::milliseconds(backoffMs);
        ++report.retried;
        inform("sweep: %s retrying in %u ms (failure %u/%u)",
               point.fingerprintHex.c_str(), backoffMs, st.failures,
               opts.maxRetries + 1);
    }
    return report;
}

} // namespace sweep
} // namespace emerald
