#include <gtest/gtest.h>

#include "mem/dash_scheduler.hh"
#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "sim/simulation.hh"

using namespace emerald;
using namespace emerald::mem;

namespace
{

DashParams
testParams()
{
    DashParams p;
    p.switchingUnit = ticksFromUs(1.0);
    p.quantum = ticksFromUs(100.0);
    p.numCpuCores = 4;
    return p;
}

MemPacket
cpuPkt(int core)
{
    return MemPacket(0, 128, false, TrafficClass::Cpu,
                     AccessKind::CpuData, core);
}

MemPacket
gpuPkt()
{
    return MemPacket(0, 128, false, TrafficClass::Gpu,
                     AccessKind::Texture, 100);
}

} // namespace

TEST(DashCoordinator, UrgencyFollowsExpectedProgress)
{
    Simulation sim;
    DashCoordinator dash(sim, "dash", testParams());
    int gpu = dash.registerIp("gpu", TrafficClass::Gpu, 0.9);

    dash.beginIpPeriod(gpu, ticksFromMs(33.0), 1000.0);

    // At t=0 expected progress is 0: not urgent.
    EXPECT_FALSE(dash.ipUrgent(gpu, sim.curTick()));

    // Half way through the period with no progress: urgent.
    Tick half = ticksFromMs(16.5);
    EXPECT_TRUE(dash.ipUrgent(gpu, half));

    // On pace: not urgent (0.9 threshold).
    dash.addIpProgress(gpu, 500.0);
    EXPECT_FALSE(dash.ipUrgent(gpu, half));

    // Slightly behind but above threshold: still not urgent.
    // expected=0.75, actual=0.5/1.0 -> 0.5 < 0.9*0.75: urgent again.
    EXPECT_TRUE(dash.ipUrgent(gpu, ticksFromMs(24.75)));

    dash.endIpPeriod(gpu);
    EXPECT_FALSE(dash.ipUrgent(gpu, half));
    dash.shutdown();
}

TEST(DashCoordinator, PriorityLevels)
{
    Simulation sim;
    DashCoordinator dash(sim, "dash", testParams());
    int gpu = dash.registerIp("gpu", TrafficClass::Gpu, 0.9);
    dash.beginIpPeriod(gpu, ticksFromMs(33.0), 1000.0);

    MemPacket cpu0 = cpuPkt(0);
    MemPacket gpu_pkt = gpuPkt();

    // All CPU cores start non-intensive (no bandwidth history).
    EXPECT_EQ(dash.priorityOf(cpu0, 0), 1);
    // Non-urgent IP ranks below non-intensive CPU.
    EXPECT_GT(dash.priorityOf(gpu_pkt, 0), 1);
    // Urgent IP outranks everything.
    Tick late = ticksFromMs(20.0);
    EXPECT_EQ(dash.priorityOf(gpu_pkt, late), 0);
    dash.shutdown();
}

TEST(DashCoordinator, TcmClusteringSplitsHeavyCores)
{
    Simulation sim;
    DashCoordinator dash(sim, "dash", testParams());

    // Core 3 produces the overwhelming share of traffic.
    for (int i = 0; i < 100; ++i) {
        MemPacket p = cpuPkt(3);
        dash.serviced(p, 0);
    }
    MemPacket light = cpuPkt(0);
    dash.serviced(light, 0);
    dash.recluster();

    EXPECT_FALSE(dash.cpuIntensive(0));
    EXPECT_TRUE(dash.cpuIntensive(3));
    dash.shutdown();
}

TEST(DashCoordinator, DtbIncludesIpBandwidth)
{
    // With DTB (whole-system bandwidth), a huge GPU byte count makes
    // the threshold budget large enough that all CPU cores stay
    // non-intensive - the effect the paper discusses in Section 5.1.1.
    Simulation sim;
    DashParams p = testParams();
    p.useTotalBandwidth = true;
    DashCoordinator dash(sim, "dash", p);
    dash.registerIp("gpu", TrafficClass::Gpu, 0.9);

    for (int i = 0; i < 100; ++i) {
        MemPacket g = gpuPkt();
        dash.serviced(g, 0);
    }
    for (int i = 0; i < 10; ++i) {
        MemPacket c = cpuPkt(2);
        dash.serviced(c, 0);
    }
    dash.recluster();
    EXPECT_FALSE(dash.cpuIntensive(2));
    dash.shutdown();

    // Same traffic under DCB classifies core 2 as intensive.
    Simulation sim2;
    DashCoordinator dcb(sim2, "dash", testParams());
    dcb.registerIp("gpu", TrafficClass::Gpu, 0.9);
    for (int i = 0; i < 100; ++i) {
        MemPacket g = gpuPkt();
        dcb.serviced(g, 0);
    }
    for (int i = 0; i < 10; ++i) {
        MemPacket c = cpuPkt(2);
        dcb.serviced(c, 0);
    }
    dcb.recluster();
    EXPECT_TRUE(dcb.cpuIntensive(2));
    dcb.shutdown();
}

TEST(DashScheduler, PicksUrgentIpFirst)
{
    Simulation sim;
    DashCoordinator dash(sim, "dash", testParams());
    int gpu = dash.registerIp("gpu", TrafficClass::Gpu, 0.9);
    DashScheduler sched(dash);

    MemorySystemParams mp;
    mp.geom.channels = 1;
    mp.timing = lpddr3Timing(1333, 32, 128);
    FrfcfsScheduler basis;
    MemorySystem mem(sim, "mem", mp, basis);
    AddressMap map(mp.geom, AddrMapScheme::RoRaBaCoCh);

    // Build a queue view: an old CPU request and a new GPU request.
    std::vector<DramScheduler::QueueEntry> queue;
    MemPacket cpu = cpuPkt(0);
    MemPacket gp = gpuPkt();
    queue.push_back({&cpu, map.decode(0), 0});
    queue.push_back({&gp, map.decode(4096), 10});

    // GPU not urgent: CPU (non-intensive, level 1) wins.
    dash.beginIpPeriod(gpu, ticksFromMs(33.0), 100.0);
    EXPECT_EQ(sched.pick(mem.channel(0), queue, 0), 0u);

    // Make the GPU urgent: it must win despite being younger.
    Tick late = ticksFromMs(30.0);
    EXPECT_EQ(sched.pick(mem.channel(0), queue, late), 1u);
    dash.shutdown();
}

TEST(DashCoordinator, ProbabilityAdapts)
{
    Simulation sim;
    DashParams p = testParams();
    DashCoordinator dash(sim, "dash", p);
    dash.registerIp("gpu", TrafficClass::Gpu, 0.9);

    double p0 = dash.currentP();
    // Run several switching periods with no service imbalance data;
    // P drifts but stays within bounds.
    sim.run(ticksFromUs(50.0));
    EXPECT_GE(dash.currentP(), 0.05);
    EXPECT_LE(dash.currentP(), 0.95);
    (void)p0;
    dash.shutdown();
}
