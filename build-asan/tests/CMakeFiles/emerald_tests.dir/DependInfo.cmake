
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_map.cc" "tests/CMakeFiles/emerald_tests.dir/test_address_map.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_address_map.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/emerald_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_dash.cc" "tests/CMakeFiles/emerald_tests.dir/test_dash.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_dash.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/emerald_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_dram_protocol.cc" "tests/CMakeFiles/emerald_tests.dir/test_dram_protocol.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_dram_protocol.cc.o.d"
  "/root/repo/tests/test_energy_and_misc.cc" "tests/CMakeFiles/emerald_tests.dir/test_energy_and_misc.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_energy_and_misc.cc.o.d"
  "/root/repo/tests/test_gfx_units.cc" "tests/CMakeFiles/emerald_tests.dir/test_gfx_units.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_gfx_units.cc.o.d"
  "/root/repo/tests/test_gpgpu.cc" "tests/CMakeFiles/emerald_tests.dir/test_gpgpu.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_gpgpu.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/emerald_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_observability.cc" "tests/CMakeFiles/emerald_tests.dir/test_observability.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_observability.cc.o.d"
  "/root/repo/tests/test_pipeline_correctness.cc" "tests/CMakeFiles/emerald_tests.dir/test_pipeline_correctness.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_pipeline_correctness.cc.o.d"
  "/root/repo/tests/test_pipeline_smoke.cc" "tests/CMakeFiles/emerald_tests.dir/test_pipeline_smoke.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_pipeline_smoke.cc.o.d"
  "/root/repo/tests/test_raster.cc" "tests/CMakeFiles/emerald_tests.dir/test_raster.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_raster.cc.o.d"
  "/root/repo/tests/test_sim_kernel.cc" "tests/CMakeFiles/emerald_tests.dir/test_sim_kernel.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_sim_kernel.cc.o.d"
  "/root/repo/tests/test_simt.cc" "tests/CMakeFiles/emerald_tests.dir/test_simt.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_simt.cc.o.d"
  "/root/repo/tests/test_simt_core_timing.cc" "tests/CMakeFiles/emerald_tests.dir/test_simt_core_timing.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_simt_core_timing.cc.o.d"
  "/root/repo/tests/test_soc_components.cc" "tests/CMakeFiles/emerald_tests.dir/test_soc_components.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_soc_components.cc.o.d"
  "/root/repo/tests/test_soc_smoke.cc" "tests/CMakeFiles/emerald_tests.dir/test_soc_smoke.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_soc_smoke.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/emerald_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/emerald_tests.dir/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_soc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_scenes.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_gpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_cache.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
