#include "sim/sim_object.hh"

#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald
{

SimObject::SimObject(Simulation &sim, const std::string &name)
    : StatGroup(sim.statsRoot(), name), _sim(sim), _name(name)
{
    _sim.registerObject(this);
}

SimObject::SimObject(SimObject &parent, const std::string &name)
    : StatGroup(parent, name), _sim(parent._sim),
      _name(parent.name() + "." + name)
{
    _sim.registerObject(this);
}

SimObject::~SimObject()
{
    CheckpointRegistry &reg = _sim.checkpointRegistry();
    for (Event *ev : _ckptEvents)
        reg.unregisterEvent(*ev);
    if (_ckptClient)
        reg.unregisterClient(*_ckptClient);
    if (_ckptRequestor)
        reg.unregisterRequestor(*_ckptRequestor);
    _sim.unregisterObject(this);
}

void
SimObject::registerCheckpointEvent(Event &ev)
{
    _sim.checkpointRegistry().registerEvent(ev.name(), ev);
    _ckptEvents.push_back(&ev);
}

void
SimObject::registerCheckpointClient(MemClient &client)
{
    _sim.checkpointRegistry().registerClient(_name, client);
    _ckptClient = &client;
}

void
SimObject::registerCheckpointRequestor(MemRequestor &req)
{
    _sim.checkpointRegistry().registerRequestor(_name, req);
    _ckptRequestor = &req;
}

Tick
SimObject::curTick() const
{
    return _sim.curTick();
}

void
SimObject::schedule(Event &ev, Tick when)
{
    _sim.eventQueue().schedule(ev, when);
}

void
SimObject::scheduleIn(Event &ev, Tick delta)
{
    _sim.eventQueue().schedule(ev, curTick() + delta);
}

void
SimObject::reschedule(Event &ev, Tick when)
{
    _sim.eventQueue().reschedule(ev, when);
}

void
SimObject::descheduleIfPending(Event &ev)
{
    if (ev.scheduled())
        _sim.eventQueue().deschedule(ev);
}

void
SimObject::registerProfileCounters()
{
    _sim.profiler().registerComponent(_name);
}

} // namespace emerald
