#!/usr/bin/env bash
# Regenerates every paper table/figure (see EXPERIMENTS.md).
#
# Usage: run_benches.sh [--stats-json <dir>]
#   --stats-json <dir>  also write one machine-readable JSON results
#                       file per bench into <dir> (see
#                       docs/observability.md for the schema).
#
# Exits nonzero if any bench fails, listing the failures at the end;
# the remaining benches still run so one bad bench does not hide the
# results of the others.
set -euo pipefail

SCRIPT_DIR=$(cd -- "$(dirname -- "$0")" && pwd)
OUTPUT="$SCRIPT_DIR/bench_output.txt"

STATS_DIR=""
case "${1-}" in
--stats-json=*) STATS_DIR="${1#--stats-json=}" ;;
--stats-json) STATS_DIR="${2-}" ;;
"") ;;
*)
    echo "usage: $0 [--stats-json <dir>]" >&2
    exit 2
    ;;
esac

if [ -n "$STATS_DIR" ]; then
    mkdir -p "$STATS_DIR"
fi

: > "$OUTPUT"
failed=()
for b in "$SCRIPT_DIR"/build/bench/*; do
    # -f skips CMakeFiles/ and friends (directories pass -x).
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    args=()
    # micro_kernels is a google-benchmark binary; it does not take
    # the emerald Config flags.
    if [ -n "$STATS_DIR" ] && [ "$name" != "micro_kernels" ]; then
        args+=("--stats-json=$STATS_DIR/$name.json")
    fi
    # `if ! cmd` keeps set -e from killing the loop on a bench failure.
    if ! "$b" ${args[@]+"${args[@]}"} 2>&1 | tee -a "$OUTPUT"; then
        echo "BENCH_FAILED: $name" | tee -a "$OUTPUT" >&2
        failed+=("$name")
    fi
done

if [ "${#failed[@]}" -gt 0 ]; then
    echo "FAILED_BENCHES: ${failed[*]}" | tee -a "$OUTPUT" >&2
    exit 1
fi
echo "ALL_BENCHES_DONE" >> "$OUTPUT"
