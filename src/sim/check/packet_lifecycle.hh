/**
 * @file
 * Tracks every pooled MemPacket through its lifecycle and aborts with
 * a diagnostic on a rule violation (docs/memory_protocol.md):
 *
 *   alloc -> owned -> (in flight <-> owned)* -> freed
 *
 * Violations caught: double free (via the poisoned generation stamp in
 * MemPacket::checkGen), free of a packet a sink still owns, completion
 * of a freed packet, and packets still live when a Simulation whose
 * event queue has drained is torn down (a pool leak: nothing can ever
 * complete them).
 */

#ifndef EMERALD_SIM_CHECK_PACKET_LIFECYCLE_HH
#define EMERALD_SIM_CHECK_PACKET_LIFECYCLE_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace emerald
{

class EventQueue;
class MemPacket;
class PacketPool;

namespace check
{

/**
 * Pointer-keyed state machine over every packet the pool hands out.
 * Map entries persist across recycling (the key set is bounded by the
 * pool's slab count), so diagnostics can report both the current and
 * the previous life of a storage slot.
 */
class PacketLifecycleChecker
{
  public:
    enum class State : std::uint8_t
    {
        /** Held by its allocator, a requestor, or a client. */
        Owned,
        /** Accepted by a sink via offer(); the sink must complete it. */
        InFlight,
        /** Returned to the pool; storage poisoned until recycled. */
        Freed,
    };

    explicit PacketLifecycleChecker(EventQueue &eq) : _eq(eq) {}

    /** PacketPool::alloc handed out @p pkt. */
    void onAlloc(PacketPool *pool, MemPacket *pkt);

    /** freePacket() is about to release @p pkt (pool or heap). */
    void onFreeing(MemPacket *pkt);

    /** PacketPool::free is returning @p pkt to its free list. */
    void onPoolFree(PacketPool *pool, MemPacket *pkt);

    /** completePacket() is about to respond-or-free @p pkt. */
    void onCompleting(MemPacket *pkt);

    /** A requestor is offering @p pkt to a sink. */
    void onOfferStarted(MemPacket *pkt);

    /** A sink accepted @p pkt; identity only, never dereferenced. */
    void onOfferAccepted(const MemPacket *pkt);

    /**
     * Abort if any tracked packet is not Freed. Only called when the
     * event queue has drained: with no event left to complete them,
     * live packets are leaks, not traffic in flight.
     */
    void verifyNoLeaks() const;

    /** Tracked storage slots (bounded by pool slab count). */
    std::size_t tracked() const { return _info.size(); }

  private:
    struct Info
    {
        State state;
        /** Mirror of pkt->checkGen sans poison; bumps per recycle. */
        std::uint64_t gen;
        Tick allocTick;
        Tick stateTick;
        PacketPool *pool;
    };

    static const char *stateName(State s);

    std::unordered_map<const MemPacket *, Info> _info;
    std::uint64_t _nextGen = 0;
    EventQueue &_eq;
};

} // namespace check
} // namespace emerald

#endif // EMERALD_SIM_CHECK_PACKET_LIFECYCLE_HH
