#include "core/texture.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace emerald::core
{

Texture::Texture(unsigned width, unsigned height, Addr base_addr)
    : _width(width), _height(height), _base(base_addr),
      _texels(std::size_t(width) * height, 0xffffffffu)
{
    panic_if(width == 0 || height == 0, "empty texture");
}

void
Texture::setTexel(unsigned x, unsigned y, std::uint32_t rgba)
{
    _texels[index(x % _width, y % _height)] = rgba;
}

std::uint32_t
Texture::texel(unsigned x, unsigned y) const
{
    return _texels[index(x % _width, y % _height)];
}

Addr
Texture::texelAddr(unsigned x, unsigned y) const
{
    x %= _width;
    y %= _height;
    unsigned blocks_per_row = (_width + blockW - 1) / blockW;
    unsigned bx = x / blockW;
    unsigned by = y / blockH;
    unsigned in_block = (y % blockH) * blockW + (x % blockW);
    Addr block_index = Addr(by) * blocks_per_row + bx;
    return _base + (block_index * (blockW * blockH) + in_block) * 4;
}

void
Texture::fillChecker(unsigned cell, std::uint32_t a, std::uint32_t b)
{
    for (unsigned y = 0; y < _height; ++y) {
        for (unsigned x = 0; x < _width; ++x) {
            bool odd = ((x / cell) + (y / cell)) & 1;
            _texels[index(x, y)] = odd ? a : b;
        }
    }
}

void
Texture::fillNoise(std::uint64_t seed)
{
    Random rng(seed);
    for (auto &texel : _texels) {
        auto r = static_cast<std::uint32_t>(rng.below(256));
        auto g = static_cast<std::uint32_t>(rng.below(256));
        auto b = static_cast<std::uint32_t>(rng.below(256));
        texel = r | (g << 8) | (b << 16) | 0xff000000u;
    }
}

void
TextureSet::bind(int unit, Texture *texture)
{
    if (unit >= static_cast<int>(_units.size()))
        _units.resize(static_cast<std::size_t>(unit) + 1, nullptr);
    _units[static_cast<std::size_t>(unit)] = texture;
}

Texture *
TextureSet::texture(int unit) const
{
    if (unit < 0 || unit >= static_cast<int>(_units.size()))
        return nullptr;
    return _units[static_cast<std::size_t>(unit)];
}

void
TextureSet::sample(int unit, float u, float v, float rgba[4],
                   std::vector<Addr> &texel_addrs)
{
    Texture *tex = texture(unit);
    if (!tex) {
        rgba[0] = rgba[1] = rgba[2] = 1.0f;
        rgba[3] = 1.0f;
        return;
    }

    // Wrap addressing, bilinear filter.
    float fu = u - std::floor(u);
    float fv = v - std::floor(v);
    float px = fu * static_cast<float>(tex->width()) - 0.5f;
    float py = fv * static_cast<float>(tex->height()) - 0.5f;
    int x0 = static_cast<int>(std::floor(px));
    int y0 = static_cast<int>(std::floor(py));
    float ax = px - static_cast<float>(x0);
    float ay = py - static_cast<float>(y0);

    auto wrap = [](int c, unsigned n) -> unsigned {
        int m = c % static_cast<int>(n);
        return static_cast<unsigned>(m < 0 ? m + static_cast<int>(n)
                                           : m);
    };

    unsigned xs[2] = {wrap(x0, tex->width()), wrap(x0 + 1, tex->width())};
    unsigned ys[2] = {wrap(y0, tex->height()),
                      wrap(y0 + 1, tex->height())};

    float acc[4] = {0.0f, 0.0f, 0.0f, 0.0f};
    for (int j = 0; j < 2; ++j) {
        for (int i = 0; i < 2; ++i) {
            float w = (i ? ax : 1.0f - ax) * (j ? ay : 1.0f - ay);
            std::uint32_t t = tex->texel(xs[i], ys[j]);
            acc[0] += w * static_cast<float>(t & 0xff) / 255.0f;
            acc[1] += w * static_cast<float>((t >> 8) & 0xff) / 255.0f;
            acc[2] += w * static_cast<float>((t >> 16) & 0xff) / 255.0f;
            acc[3] += w * static_cast<float>((t >> 24) & 0xff) / 255.0f;
            texel_addrs.push_back(tex->texelAddr(xs[i], ys[j]));
        }
    }
    for (int i = 0; i < 4; ++i)
        rgba[i] = acc[i];
}

} // namespace emerald::core
