/**
 * @file
 * Per-warp register scoreboard: tracks pending writes so the issue
 * logic can enforce RAW/WAW dependences. Predicates are tracked in
 * the same namespace, offset past the general registers.
 */

#ifndef EMERALD_GPU_SCOREBOARD_HH
#define EMERALD_GPU_SCOREBOARD_HH

#include <cstdint>
#include <vector>

#include "gpu/isa/instruction.hh"

namespace emerald::gpu
{

class Scoreboard
{
  public:
    /** Slot index of a predicate register in the pending table. */
    static constexpr unsigned
    predSlot(int pred)
    {
        return isa::maxRegs + static_cast<unsigned>(pred);
    }

    static constexpr unsigned numSlots = isa::maxRegs + isa::maxPreds;

    explicit Scoreboard(unsigned num_warps);

    /** Registers written by @p instr (dest regs; quads for TEX). */
    static std::vector<unsigned> destSlots(const isa::Instruction &instr);

    /** Register/pred slots read by @p instr (incl. guard, bases). */
    static std::vector<unsigned> srcSlots(const isa::Instruction &instr);

    /** True when @p instr has no hazard in warp @p warp. */
    bool ready(unsigned warp, const isa::Instruction &instr) const;

    /** Mark @p slots pending in @p warp (one write each). */
    void markPending(unsigned warp, const std::vector<unsigned> &slots);

    /** Release one pending write on each of @p slots. */
    void release(unsigned warp, const std::vector<unsigned> &slots);

    /** True when nothing is pending for @p warp. */
    bool idle(unsigned warp) const;

    /** Clear all state for @p warp (new task assigned). */
    void resetWarp(unsigned warp);

  private:
    bool pending(unsigned warp, unsigned slot) const
    {
        return _pendingWrites[warp * numSlots + slot] != 0;
    }

    std::vector<std::uint8_t> _pendingWrites;
};

} // namespace emerald::gpu

#endif // EMERALD_GPU_SCOREBOARD_HH
