// Fixture for tools/emerald_analyze.py: the shard-safe idioms the
// analyzer must NOT flag. Any finding in this file is a false
// positive and fails the fixture gate.

class SimObject
{
  public:
    virtual ~SimObject() = default;
};

class MemSink
{
  public:
    virtual ~MemSink() = default;
};

class EventQueue
{
  public:
    template <typename F>
    void
    schedule(F f, long when)
    {
        (void)f;
        (void)when;
    }
};

class Dram : public SimObject
{
  public:
    explicit Dram(EventQueue &eq) : _eq(eq) {}

    void
    tick()
    {
        ++_ticks; // non-const method: explicit mutation
        _eq.schedule([this] { onFire(); }, 10); // `this` capture
    }

    void onFire() {}

    MemSink *port() const { return _port; } // const read
    void setPort(MemSink *port) { _port = port; }

  private:
    EventQueue &_eq; // kernel interface: legal seam
    MemSink *_port = nullptr; // port interface: legal seam
    unsigned long _ticks = 0; // per-instance, owned state
};

const int k_tableSize = 64;
static constexpr double k_scale = 1.5;
