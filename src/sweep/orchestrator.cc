#include "sweep/orchestrator.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <thread>

#include "sim/logging.hh"

namespace emerald
{
namespace sweep
{

void
makeDirs(const std::string &path)
{
    std::string::size_type pos = 0;
    while (pos != std::string::npos) {
        pos = path.find('/', pos + 1);
        std::string prefix = path.substr(0, pos);
        if (prefix.empty())
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            fatal("cannot create directory '%s': %s", prefix.c_str(),
                  std::strerror(errno));
    }
}

namespace
{

/** Fork one child for @p point; returns its pid. */
pid_t
launchPoint(const std::vector<std::string> &command,
            const std::string &logPath)
{
    pid_t pid = ::fork();
    fatal_if(pid < 0, "fork failed: %s", std::strerror(errno));
    if (pid > 0)
        return pid;

    // Child: stdout+stderr to the per-point log, then exec. Only
    // async-signal-safe calls from here on.
    int fd = ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO)
            ::close(fd);
    }
    std::vector<char *> argv;
    argv.reserve(command.size() + 1);
    for (const std::string &arg : command)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // exec failed; the parent sees exit 127 like a shell would.
    _exit(127);
}

} // namespace

std::vector<std::string>
pointCommand(const SweepSpec &spec, const SweepPoint &point,
             const OrchestratorOptions &opts)
{
    std::vector<std::string> command;
    command.push_back(opts.benchBin);
    command.push_back("--run=" + spec.scenario);
    for (const auto &[key, value] : point.params)
        command.push_back("--" + key + "=" + value);
    command.push_back("--stats-out=sqlite:" + opts.dbPath);
    if (!opts.gitSha.empty())
        command.push_back("--git-sha=" + opts.gitSha);
    if (!spec.restoreDir.empty())
        command.push_back("--restore=" + spec.restoreDir);
    if (!spec.replayDir.empty())
        command.push_back("--replay-trace=" + spec.replayDir);
    return command;
}

SweepReport
runSweep(const SweepSpec &spec,
         const std::vector<SweepPoint> &pending,
         const OrchestratorOptions &opts)
{
    SweepReport report;
    report.total = pending.size();

    if (opts.dryRun) {
        for (const SweepPoint &point : pending) {
            std::string line;
            for (const std::string &arg :
                 pointCommand(spec, point, opts))
                line += (line.empty() ? "" : " ") + arg;
            inform("dry-run: %s", line.c_str());
        }
        return report;
    }

    unsigned jobs = opts.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }

    std::string logDir = opts.outDir + "/logs";
    makeDirs(logDir);

    // Dispatch loop: keep up to `jobs` children in flight; whenever
    // one exits, harvest it and launch the next pending point.
    std::map<pid_t, const SweepPoint *> running;
    std::size_t next = 0;
    std::size_t done = 0;
    while (done < pending.size()) {
        while (next < pending.size() && running.size() < jobs) {
            const SweepPoint &point = pending[next++];
            std::string logPath =
                logDir + "/" + point.fingerprintHex + ".log";
            pid_t pid = launchPoint(pointCommand(spec, point, opts),
                                    logPath);
            running[pid] = &point;
        }

        int status = 0;
        pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            fatal_if(errno != EINTR, "waitpid failed: %s",
                     std::strerror(errno));
            continue;
        }
        auto it = running.find(pid);
        if (it == running.end())
            continue;
        const SweepPoint &point = *it->second;
        running.erase(it);
        ++done;

        bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (ok) {
            ++report.succeeded;
        } else {
            ++report.failed;
            if (WIFSIGNALED(status)) {
                warn("sweep point %s killed by signal %d (log: "
                     "%s/%s.log)",
                     point.fingerprintHex.c_str(), WTERMSIG(status),
                     logDir.c_str(), point.fingerprintHex.c_str());
            } else {
                warn("sweep point %s exited with %d (log: %s/%s.log)",
                     point.fingerprintHex.c_str(),
                     WEXITSTATUS(status), logDir.c_str(),
                     point.fingerprintHex.c_str());
            }
        }
        inform("sweep: [%zu/%zu] %s %s", done, pending.size(),
               point.fingerprintHex.c_str(), ok ? "done" : "FAILED");
    }
    return report;
}

} // namespace sweep
} // namespace emerald
