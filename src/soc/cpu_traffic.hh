/**
 * @file
 * Closed-loop CPU core traffic model.
 *
 * Full Android cores cannot be booted here (see DESIGN.md), so each
 * CPU core is modelled as a closed-loop memory requestor driving a
 * private L1/L2 cache chain. Crucially, progress is *latency-bound*:
 * a core completes a work quota only as fast as the memory system
 * returns its requests, reproducing the CPU-side feedback the
 * paper's case study I shows trace-driven simulation misses (Fig. 14:
 * CPU threads idle at frame end waiting on the GPU; DASH prioritizing
 * CPU shortens prep but starves the GPU).
 */

#ifndef EMERALD_SOC_CPU_TRAFFIC_HH
#define EMERALD_SOC_CPU_TRAFFIC_HH

#include <functional>

#include "sim/clocked.hh"
#include "sim/logging.hh"
#include "sim/packet.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace emerald::soc
{

struct CpuCoreParams
{
    unsigned coreId = 0;
    unsigned maxOutstanding = 4;
    /** Compute cycles between a response and the next request. */
    Cycle thinkCycles = 30;
    /** Probability the next access continues the current stream. */
    double locality = 0.8;
    Addr regionBase = 0;
    std::uint64_t regionBytes = 8 * 1024 * 1024;
    double writeFraction = 0.3;
    /** Background (non-quota) issue interval, cycles; 0 disables. */
    Cycle backgroundInterval = 2000;
    /** Outstanding-request window while in background mode. */
    unsigned backgroundOutstanding = 2;
    std::uint64_t seed = 1;
};

class CpuCoreModel : public SimObject,
                     public MemClient,
                     public MemRequestor
{
  public:
    CpuCoreModel(Simulation &sim, const std::string &name,
                 ClockDomain &cpu_clock, const CpuCoreParams &params,
                 MemSink &downstream);

    /**
     * Execute a burst of @p requests memory operations as fast as
     * the memory system allows, then invoke @p on_done.
     */
    void runQuota(std::uint64_t requests, std::function<void()> on_done);

    /** Enable sparse background traffic while no quota is active. */
    void setBackground(bool enabled);

    bool quotaActive() const { return _quotaRemaining > 0; }

    void memResponse(MemPacket *pkt) override;
    void retryRequest() override;
    std::string requestorName() const override { return name(); }

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    /**
     * True after a restore when the checkpoint was taken mid-quota:
     * the quota-done callback (a lambda) cannot travel through a
     * checkpoint, so the owner must re-install it.
     */
    bool
    needsQuotaCallbackRebind() const
    {
        return _quotaDonePending;
    }

    /** Re-install the quota-done callback after a restore. */
    void
    rebindQuotaCallback(std::function<void()> cb)
    {
        panic_if(!_quotaDonePending,
                 "%s: no quota callback to rebind", name().c_str());
        _quotaDone = std::move(cb);
        _quotaDonePending = false;
    }

    /** @{ Statistics. */
    Scalar statRequests;
    Scalar statQuotas;
    Distribution statLatency;
    /** @} */

  private:
    void issueOne();
    void trySchedule();
    void maybeCompleteQuota();
    /** Post-acceptance bookkeeping for one issued request. */
    void requestAccepted(bool quota);
    Addr nextAddr();

    CpuCoreParams _params;
    ClockDomain &_clock;
    MemSink &_downstream;

    std::uint64_t _quotaRemaining = 0;
    std::function<void()> _quotaDone;
    bool _background = false;
    unsigned _outstanding = 0;
    /**
     * Request rejected by the cache, held (with its window slot still
     * reserved) until retryRequest(); replaces the old fixed 2-cycle
     * re-offer loop.
     */
    MemPacket *_retryPkt = nullptr;
    /** Whether _retryPkt counts against the active quota. */
    bool _retryQuota = false;
    /** Restored with a quota callback outstanding (see rebind). */
    bool _quotaDonePending = false;
    Addr _cursor;
    Random _rng;
    EventFunction _issueEvent;
};

} // namespace emerald::soc

#endif // EMERALD_SOC_CPU_TRAFFIC_HH
