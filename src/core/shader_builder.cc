#include "core/shader_builder.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald::core
{

using gpu::isa::assemble;
using gpu::isa::Program;

const Program *
ShaderBuilder::buildVertex(const std::string &name,
                           const std::string &source)
{
    _programs.push_back(
        std::make_unique<Program>(assemble(name, source)));
    return _programs.back().get();
}

const Program *
ShaderBuilder::buildKernel(const std::string &name,
                           const std::string &source)
{
    _programs.push_back(
        std::make_unique<Program>(assemble(name, source)));
    return _programs.back().get();
}

const Program *
ShaderBuilder::buildFragment(const std::string &name,
                             const std::string &source,
                             const RenderState &state,
                             bool allow_early_z)
{
    // First pass: inspect the user shader for discard and register
    // pressure.
    Program probe = assemble(name + ".user", source);

    bool early_z = allow_early_z && state.depthTest &&
                   !probe.usesDiscard && state.depthWrite;
    _lastEarlyZ = early_z;

    // Color staging quad: first registers above the user's.
    unsigned base = std::min(probe.numRegs, 60u);

    std::string full;
    if (early_z)
        full += "ztest %z\n";
    full += source;
    full += "\n";
    if (state.depthTest && !early_z)
        full += "ztest %z\n";
    for (int i = 0; i < 4; ++i) {
        full += strprintf("mov.f32 r%u, o[%d]\n", base + i, i);
    }
    full += state.blend ? strprintf("blend r%u\n", base)
                        : strprintf("stfb r%u\n", base);
    full += "exit\n";

    _programs.push_back(
        std::make_unique<Program>(assemble(name, full)));
    return _programs.back().get();
}

} // namespace emerald::core
