# Empty dependencies file for emerald_mem.
# This may be replaced when dependencies are built.
