/**
 * @file
 * Functional (data-carrying) memory, separate from the timing model.
 *
 * GPGPU buffers, vertex/index buffers and shader constants live here.
 * Timing packets never carry data; functional reads and writes happen
 * at execute time against this store. A simple bump allocator hands
 * out disjoint address ranges so every buffer also has a stable
 * physical address for the timing model to exercise.
 */

#ifndef EMERALD_MEM_FUNCTIONAL_MEMORY_HH
#define EMERALD_MEM_FUNCTIONAL_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace emerald::mem
{

/** Sparse, page-granular byte-addressable memory with an allocator. */
class FunctionalMemory
{
  public:
    static constexpr unsigned pageBits = 12;
    static constexpr Addr pageSize = Addr(1) << pageBits;

    FunctionalMemory() = default;

    /** Allocate @p bytes aligned to @p align; returns base address. */
    Addr allocate(std::uint64_t bytes, std::uint64_t align = 128);

    void read(Addr addr, void *buf, std::uint64_t bytes) const;
    void write(Addr addr, const void *buf, std::uint64_t bytes);

    std::uint32_t
    read32(Addr addr) const
    {
        std::uint32_t v = 0;
        read(addr, &v, sizeof(v));
        return v;
    }

    void
    write32(Addr addr, std::uint32_t value)
    {
        write(addr, &value, sizeof(value));
    }

    float
    readF32(Addr addr) const
    {
        float v = 0.0f;
        read(addr, &v, sizeof(v));
        return v;
    }

    void
    writeF32(Addr addr, float value)
    {
        write(addr, &value, sizeof(value));
    }

    /** Number of materialized pages (for tests). */
    std::size_t numPages() const { return _pages.size(); }

    /** Top of the allocator, i.e. first unallocated address. */
    Addr allocationTop() const { return _nextAlloc; }

  private:
    std::uint8_t *pageFor(Addr addr, bool create) const;

    mutable std::unordered_map<Addr, std::unique_ptr<std::uint8_t[]>>
        _pages;
    Addr _nextAlloc = 0x10000;
};

} // namespace emerald::mem

#endif // EMERALD_MEM_FUNCTIONAL_MEMORY_HH
