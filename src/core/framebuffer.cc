#include "core/framebuffer.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace emerald::core
{

Framebuffer::Framebuffer(unsigned width, unsigned height,
                         Addr color_base, Addr depth_base)
    : _width(width), _height(height), _colorBase(color_base),
      _depthBase(depth_base),
      _color(std::size_t(width) * height, 0xff000000u),
      _depth(std::size_t(width) * height, 1.0f)
{
    panic_if(width == 0 || height == 0, "empty framebuffer");
}

void
Framebuffer::clear(std::uint32_t rgba, float depth)
{
    std::fill(_color.begin(), _color.end(), rgba);
    std::fill(_depth.begin(), _depth.end(), depth);
}

bool
Framebuffer::depthTest(int x, int y, float z, Addr &addr)
{
    if (x < 0 || y < 0 || x >= static_cast<int>(_width) ||
        y >= static_cast<int>(_height)) {
        addr = _depthBase;
        return false;
    }
    addr = depthAddr(x, y);
    float &stored = _depth[idx(x, y)];
    if (z < stored) {
        if (_depthWrite)
            stored = z;
        return true;
    }
    return false;
}

std::uint32_t
Framebuffer::packRgba(const float rgba[4])
{
    auto to8 = [](float v) -> std::uint32_t {
        v = std::clamp(v, 0.0f, 1.0f);
        return static_cast<std::uint32_t>(v * 255.0f + 0.5f);
    };
    return to8(rgba[0]) | (to8(rgba[1]) << 8) | (to8(rgba[2]) << 16) |
           (to8(rgba[3]) << 24);
}

void
Framebuffer::blendPixel(int x, int y, const float rgba[4], Addr &addr)
{
    if (x < 0 || y < 0 || x >= static_cast<int>(_width) ||
        y >= static_cast<int>(_height)) {
        addr = _colorBase;
        return;
    }
    addr = colorAddr(x, y);
    std::uint32_t dst = _color[idx(x, y)];
    float d[4] = {
        static_cast<float>(dst & 0xff) / 255.0f,
        static_cast<float>((dst >> 8) & 0xff) / 255.0f,
        static_cast<float>((dst >> 16) & 0xff) / 255.0f,
        static_cast<float>((dst >> 24) & 0xff) / 255.0f,
    };
    float sa = std::clamp(rgba[3], 0.0f, 1.0f);
    float out[4] = {
        rgba[0] * sa + d[0] * (1.0f - sa),
        rgba[1] * sa + d[1] * (1.0f - sa),
        rgba[2] * sa + d[2] * (1.0f - sa),
        sa + d[3] * (1.0f - sa),
    };
    _color[idx(x, y)] = packRgba(out);
}

void
Framebuffer::storePixel(int x, int y, const float rgba[4], Addr &addr)
{
    if (x < 0 || y < 0 || x >= static_cast<int>(_width) ||
        y >= static_cast<int>(_height)) {
        addr = _colorBase;
        return;
    }
    addr = colorAddr(x, y);
    _color[idx(x, y)] = packRgba(rgba);
}

std::uint64_t
Framebuffer::colorHash() const
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::uint32_t px : _color) {
        for (int i = 0; i < 4; ++i) {
            hash ^= (px >> (i * 8)) & 0xff;
            hash *= 1099511628211ULL;
        }
    }
    return hash;
}

bool
Framebuffer::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%u %u\n255\n", _width, _height);
    for (std::uint32_t px : _color) {
        unsigned char rgb[3] = {
            static_cast<unsigned char>(px & 0xff),
            static_cast<unsigned char>((px >> 8) & 0xff),
            static_cast<unsigned char>((px >> 16) & 0xff),
        };
        std::fwrite(rgb, 1, 3, f);
    }
    std::fclose(f);
    return true;
}

void
Framebuffer::serialize(CheckpointOut &out) const
{
    out.putU64("width", _width);
    out.putU64("height", _height);
    out.putBool("depth_write", _depthWrite);
    out.putBlob("color", _color.data(),
                _color.size() * sizeof(_color[0]));
    out.putBlob("depth", _depth.data(),
                _depth.size() * sizeof(_depth[0]));
}

void
Framebuffer::unserialize(CheckpointIn &in)
{
    fatal_if(in.getU64("width") != _width ||
             in.getU64("height") != _height,
             "framebuffer checkpoint is %llux%llu but this run is "
             "%ux%u",
             (unsigned long long)in.getU64("width"),
             (unsigned long long)in.getU64("height"), _width, _height);
    _depthWrite = in.getBool("depth_write");
    const std::string &color = in.getBlob("color");
    const std::string &depth = in.getBlob("depth");
    fatal_if(color.size() != _color.size() * sizeof(_color[0]) ||
             depth.size() != _depth.size() * sizeof(_depth[0]),
             "framebuffer checkpoint plane size mismatch");
    std::memcpy(_color.data(), color.data(), color.size());
    std::memcpy(_depth.data(), depth.data(), depth.size());
}

} // namespace emerald::core
