#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace emerald::cache
{

Mshr *
MshrFile::find(Addr line_addr)
{
    auto it = _entries.find(line_addr);
    return it == _entries.end() ? nullptr : &it->second;
}

Mshr &
MshrFile::allocate(Addr line_addr)
{
    panic_if(!available(), "MSHR file overflow");
    panic_if(find(line_addr), "duplicate MSHR for line 0x%llx",
             (unsigned long long)line_addr);
    Mshr &mshr = _entries[line_addr];
    mshr.lineAddr = line_addr;
    return mshr;
}

void
MshrFile::release(Addr line_addr)
{
    std::size_t erased = _entries.erase(line_addr);
    panic_if(erased == 0, "releasing unknown MSHR 0x%llx",
             (unsigned long long)line_addr);
}

} // namespace emerald::cache
