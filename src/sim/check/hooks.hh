/**
 * @file
 * Compile-out hook points for the correctness-checking subsystem.
 *
 * The simulator kernel (packet pool, offer/retry protocol) calls these
 * hooks through EMERALD_CHECK_HOOK at every ownership- or
 * protocol-relevant transition. With EMERALD_CHECKS defined (the Debug
 * default) each hook resolves its check::CheckContext from its own
 * arguments (the pool's pointer, or the RetryList's fault domain) and
 * forwards to it; in Release builds the macro expands to nothing, so
 * every hot path carries zero checking cost. See
 * docs/static_analysis.md.
 */

#ifndef EMERALD_SIM_CHECK_HOOKS_HH
#define EMERALD_SIM_CHECK_HOOKS_HH

#include <cstdint>

namespace emerald
{

class MemPacket;
class MemRequestor;
class PacketPool;
class RetryList;

namespace check
{

/**
 * High bit of MemPacket::checkGen, set when the packet's storage is
 * returned to its pool. Until the slot is recycled, any access to the
 * stale pointer sees the poison mark and aborts with a use-after-free
 * diagnostic. Recycling clears the mark, so only the free-to-realloc
 * window is covered; the ASan CI job covers the rest.
 */
inline constexpr std::uint64_t packetPoisonBit = 1ULL << 63;

/** True when generation stamp @p gen carries the poison mark. */
constexpr bool
poisoned(std::uint64_t gen)
{
    return (gen & packetPoisonBit) != 0;
}

/**
 * @{
 * Hook entry points, implemented in src/sim/check/context.cc. Each
 * resolves the owning Simulation's CheckContext from its arguments
 * and is a no-op when none resolves (bare pools/lists, Release
 * Simulations). Call sites must route through EMERALD_CHECK_HOOK so
 * the calls vanish entirely when EMERALD_CHECKS is undefined.
 *
 * offerAccepted deliberately takes a const pointer used only as a map
 * key: a sink may legally consume (even free) an accepted packet
 * inside tryAccept, so the hook must never dereference it.
 */
void packetAlloc(PacketPool *pool, MemPacket *pkt);
void packetFreeing(MemPacket *pkt);
void packetPoolFree(PacketPool *pool, MemPacket *pkt);
void packetCompleting(MemPacket *pkt);
void offerStarted(RetryList *list, MemPacket *pkt);
void offerAccepted(RetryList *list, const MemPacket *pkt);
void offerRejected(RetryList *list, const MemPacket *pkt,
                   MemRequestor *req);
void retryRegistered(RetryList *list, MemRequestor *req, bool deduped);
void retryWoken(RetryList *list, MemRequestor *req);
/** @} */

} // namespace check
} // namespace emerald

#ifdef EMERALD_CHECKS
#define EMERALD_CHECK_HOOK(call) ::emerald::check::call
#else
#define EMERALD_CHECK_HOOK(call) ((void)0)
#endif

#endif // EMERALD_SIM_CHECK_HOOKS_HH
