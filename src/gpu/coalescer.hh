/**
 * @file
 * Memory access coalescing: per-lane accesses from one warp
 * instruction collapse into unique line-sized transactions, the way
 * the paper's SIMT core coalescing unit does (Table 2).
 */

#ifndef EMERALD_GPU_COALESCER_HH
#define EMERALD_GPU_COALESCER_HH

#include <vector>

#include "gpu/isa/executor.hh"
#include "sim/types.hh"

namespace emerald::gpu
{

/** One coalesced, line-aligned transaction. */
struct CoalescedAccess
{
    Addr lineAddr = 0;
    bool write = false;

    bool operator==(const CoalescedAccess &other) const = default;
};

/**
 * Coalesce @p accesses into unique line transactions, preserving
 * first-touch order. Reads and writes to the same line stay separate
 * transactions.
 */
std::vector<CoalescedAccess>
coalesce(const std::vector<isa::ThreadMemAccess> &accesses,
         unsigned line_size);

} // namespace emerald::gpu

#endif // EMERALD_GPU_COALESCER_HH
