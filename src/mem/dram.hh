/**
 * @file
 * DRAM device timing parameters and per-bank state.
 *
 * The model captures the constraints that matter for the paper's
 * memory experiments: row activate/precharge/CAS timing, the shared
 * data bus, row-buffer hit/miss/conflict behaviour, and
 * bytes-per-activation energy proxies (paper Fig. 11).
 */

#ifndef EMERALD_MEM_DRAM_HH
#define EMERALD_MEM_DRAM_HH

#include <string>

#include "mem/address_map.hh"
#include "sim/types.hh"

namespace emerald::mem
{

/** Device timing, stored in ticks. */
struct DramTiming
{
    /** Data bus transfer time for one line-sized burst. */
    Tick tBURST = 0;
    /** Activate to column command. */
    Tick tRCD = 0;
    /** CAS latency (column command to first data). */
    Tick tCL = 0;
    /** Precharge time. */
    Tick tRP = 0;
    /** Minimum activate to precharge. */
    Tick tRAS = 0;
    /** Write recovery before precharge. */
    Tick tWR = 0;

    /** Peak data bus bandwidth, bytes per second. */
    double peakBytesPerSec = 0.0;
};

/**
 * Build an LPDDR3-like timing set.
 *
 * @param data_rate_mbps per-pin data rate (e.g. 1333 for the paper's
 *        regular-load config, 133 for the high-load config).
 * @param bus_bits channel data bus width in bits (paper: 32).
 * @param line_size burst granularity in bytes.
 */
DramTiming lpddr3Timing(double data_rate_mbps, unsigned bus_bits,
                        unsigned line_size);

/** Runtime state of one DRAM bank. */
struct BankState
{
    bool open = false;
    std::uint64_t openRow = 0;
    /** When the bank can take its next command. */
    Tick readyTick = 0;
    /** When the open row was activated (for tRAS). */
    Tick activateTick = 0;
    /** Bytes transferred from the currently open row. */
    std::uint64_t bytesSinceActivate = 0;
};

/** Outcome of servicing one request, for stats. */
enum class RowBufferOutcome
{
    Hit,        ///< Open row matched.
    ClosedMiss, ///< Bank was precharged; activate only.
    Conflict,   ///< Different row open; precharge + activate.
};

} // namespace emerald::mem

#endif // EMERALD_MEM_DRAM_HH
