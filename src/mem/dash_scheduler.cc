#include "mem/dash_scheduler.hh"

#include <algorithm>
#include <numeric>

#include "mem/frfcfs_scheduler.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::mem
{

DashCoordinator::DashCoordinator(Simulation &sim, const std::string &name,
                                 const DashParams &params)
    : SimObject(sim, name), _params(params),
      _cpuBytesThisQuantum(params.numCpuCores, 0),
      _cpuIsIntensive(params.numCpuCores, false),
      _p(params.initialP), _rng(params.seed),
      _switchEvent([this] { switchingTick(); }, name + ".switch"),
      _quantumEvent([this] { quantumTick(); }, name + ".quantum")
{
    scheduleIn(_switchEvent, _params.switchingUnit);
    scheduleIn(_quantumEvent, _params.quantum);
}

int
DashCoordinator::registerIp(const std::string &ip_name,
                            TrafficClass tclass,
                            double emergent_threshold)
{
    panic_if(tclass == TrafficClass::Cpu, "CPUs are not DASH IPs");
    IpState state;
    state.name = ip_name;
    state.tclass = tclass;
    state.emergentThreshold = emergent_threshold;
    _ips.push_back(state);
    int id = static_cast<int>(_ips.size()) - 1;
    _ipOfClass[static_cast<int>(tclass)] = id;
    return id;
}

void
DashCoordinator::beginIpPeriod(int ip, Tick period, double total_work)
{
    IpState &state = _ips.at(static_cast<std::size_t>(ip));
    state.active = true;
    state.periodStart = curTick();
    state.period = period;
    state.workTotal = total_work;
    state.workDone = 0.0;
}

void
DashCoordinator::addIpProgress(int ip, double work_done)
{
    _ips.at(static_cast<std::size_t>(ip)).workDone += work_done;
}

void
DashCoordinator::endIpPeriod(int ip)
{
    _ips.at(static_cast<std::size_t>(ip)).active = false;
}

bool
DashCoordinator::ipUrgent(int ip, Tick now) const
{
    const IpState &state = _ips.at(static_cast<std::size_t>(ip));
    if (!state.active || state.period == 0 || state.workTotal <= 0.0)
        return false;
    double expected =
        std::min(1.0, static_cast<double>(now - state.periodStart) /
                          static_cast<double>(state.period));
    // Grace window: an IP that has barely entered its period is not
    // behind yet (avoids flagging every frame urgent at t=0+).
    if (expected < 0.02)
        return false;
    double actual = state.workDone / state.workTotal;
    return actual < state.emergentThreshold * expected;
}

bool
DashCoordinator::cpuIntensive(unsigned core) const
{
    if (core >= _cpuIsIntensive.size())
        return false;
    return _cpuIsIntensive[core];
}

int
DashCoordinator::priorityOf(const MemPacket &pkt, Tick now) const
{
    if (pkt.tclass == TrafficClass::Cpu) {
        bool intensive =
            cpuIntensive(static_cast<unsigned>(pkt.requestorId));
        if (!intensive)
            return 1;
        return _favourIntensiveCpu ? 2 : 3;
    }
    int ip = _ipOfClass[static_cast<int>(pkt.tclass)];
    if (ip >= 0 && ipUrgent(ip, now))
        return 0;
    return _favourIntensiveCpu ? 3 : 2;
}

void
DashCoordinator::serviced(const MemPacket &pkt, Tick now)
{
    if (pkt.tclass == TrafficClass::Cpu) {
        auto core = static_cast<unsigned>(pkt.requestorId);
        if (core < _cpuBytesThisQuantum.size())
            _cpuBytesThisQuantum[core] += pkt.size;
        if (cpuIntensive(core))
            ++_servedIntensiveCpu;
    } else {
        int ip = _ipOfClass[static_cast<int>(pkt.tclass)];
        if (ip >= 0) {
            _ips[static_cast<std::size_t>(ip)].bytesThisQuantum +=
                pkt.size;
            if (!ipUrgent(ip, now))
                ++_servedNonUrgentIp;
        }
    }
}

void
DashCoordinator::switchingTick()
{
    // Balance service between intensive CPU cores and non-urgent IPs
    // by steering the switch probability toward the starved side.
    if (_servedIntensiveCpu < _servedNonUrgentIp)
        _p = std::min(0.95, _p + _params.pStep);
    else if (_servedIntensiveCpu > _servedNonUrgentIp)
        _p = std::max(0.05, _p - _params.pStep);
    _servedIntensiveCpu = 0;
    _servedNonUrgentIp = 0;
    _favourIntensiveCpu = _rng.chance(_p);
    scheduleIn(_switchEvent, _params.switchingUnit);
}

void
DashCoordinator::recluster()
{
    std::uint64_t cpu_total = std::accumulate(
        _cpuBytesThisQuantum.begin(), _cpuBytesThisQuantum.end(),
        std::uint64_t(0));
    std::uint64_t total = cpu_total;
    if (_params.useTotalBandwidth) {
        for (const IpState &ip : _ips)
            total += ip.bytesThisQuantum;
    }

    // TCM-style clustering: walk cores from lightest to heaviest;
    // cores within the first clusterThresh fraction of the total
    // bandwidth form the latency-sensitive (non-intensive) cluster.
    std::vector<unsigned> order(_cpuBytesThisQuantum.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](unsigned a, unsigned b) {
                         return _cpuBytesThisQuantum[a] <
                                _cpuBytesThisQuantum[b];
                     });

    double budget = _params.clusterThresh * static_cast<double>(total);
    double used = 0.0;
    for (unsigned core : order) {
        used += static_cast<double>(_cpuBytesThisQuantum[core]);
        _cpuIsIntensive[core] = used > budget;
    }

    for (auto &bytes : _cpuBytesThisQuantum)
        bytes = 0;
    for (IpState &ip : _ips)
        ip.bytesThisQuantum = 0;
}

void
DashCoordinator::quantumTick()
{
    recluster();
    scheduleIn(_quantumEvent, _params.quantum);
}

void
DashCoordinator::shutdown()
{
    descheduleIfPending(_switchEvent);
    descheduleIfPending(_quantumEvent);
}

std::size_t
DashScheduler::pick(const DramChannel &channel,
                    const std::vector<QueueEntry> &queue, Tick now)
{
    int best = 4;
    for (const QueueEntry &entry : queue)
        best = std::min(best, _coordinator.priorityOf(*entry.pkt, now));

    std::size_t choice = FrfcfsScheduler::pickAmong(
        channel, queue, [&](std::size_t i) {
            return _coordinator.priorityOf(*queue[i].pkt, now) == best;
        });
    panic_if(choice >= queue.size(), "DASH found no eligible request");
    return choice;
}

void
DashScheduler::serviced(const MemPacket &pkt, Tick now)
{
    _coordinator.serviced(pkt, now);
}

} // namespace emerald::mem
