/**
 * @file
 * Primitive setup and rasterization (paper Fig. 3 stages G-I).
 *
 * Setup builds edge equations and the raster-tile bounding box;
 * coarse rasterization walks candidate raster tiles; fine
 * rasterization produces covered fragments with perspective-correct
 * attribute interpolation. Raster tiles are rasterTilePx x
 * rasterTilePx pixels (paper Table 7: 4x4).
 */

#ifndef EMERALD_CORE_RASTERIZER_HH
#define EMERALD_CORE_RASTERIZER_HH

#include <array>
#include <cstdint>

#include "core/draw_call.hh"
#include "core/math.hh"

namespace emerald::core
{

/** Raster tile edge length in pixels. */
constexpr unsigned rasterTilePx = 4;
constexpr unsigned rasterTilePixels = rasterTilePx * rasterTilePx;

/** A post-viewport vertex. Attributes are pre-divided by w. */
struct ScreenVertex
{
    float x = 0.0f;
    float y = 0.0f;
    /** Screen-space depth in [0, 1]. */
    float z = 0.0f;
    float invW = 1.0f;
    /** Varyings multiplied by invW (perspective interpolation). */
    std::array<float, maxVaryings> attrsOverW = {};
};

/** A primitive after setup, ready for rasterization. */
struct SetupPrim
{
    std::array<ScreenVertex, 3> v;
    /** Edge functions e[i] = A*x + B*y + C. */
    float edgeA[3] = {};
    float edgeB[3] = {};
    float edgeC[3] = {};
    float area2 = 0.0f;
    /** Raster-tile bounding box, inclusive. */
    int tileX0 = 0, tileY0 = 0, tileX1 = -1, tileY1 = -1;

    int
    tileCount() const
    {
        if (tileX1 < tileX0 || tileY1 < tileY0)
            return 0;
        return (tileX1 - tileX0 + 1) * (tileY1 - tileY0 + 1);
    }
};

/** One raster tile of covered fragments. */
struct FragmentTile
{
    int tileX = 0;
    int tileY = 0;
    /** Row-major 4x4 coverage. */
    std::uint16_t coverMask = 0;
    float z[rasterTilePixels] = {};
    std::array<std::array<float, maxVaryings>, rasterTilePixels> attrs =
        {};

    bool
    fullyCovered() const
    {
        return coverMask == 0xffffu;
    }
};

/** Transform one clip-space vertex to screen space. */
ScreenVertex viewportTransform(const Vec4 &clip_pos,
                               const float *attrs,
                               unsigned num_varyings, unsigned fb_width,
                               unsigned fb_height);

/**
 * Primitive setup.
 * @param cull_backface drop clockwise primitives; counter-clockwise
 *        input is normalized so edges are positive inside.
 * @return false when the primitive is degenerate, backfaced, or
 *         fully off screen.
 */
bool setupPrimitive(const ScreenVertex verts[3], unsigned fb_width,
                    unsigned fb_height, bool cull_backface,
                    SetupPrim &out);

/**
 * Fine-rasterize raster tile (tx, ty) of @p prim.
 * @return true when at least one fragment is covered.
 */
bool rasterizeTile(const SetupPrim &prim, int tx, int ty,
                   unsigned num_varyings, unsigned fb_width,
                   unsigned fb_height, FragmentTile &out);

} // namespace emerald::core

#endif // EMERALD_CORE_RASTERIZER_HH
