#include "scenes/workloads.hh"

#include "scenes/procedural.hh"
#include "scenes/shaders.hh"
#include "sim/logging.hh"

namespace emerald::scenes
{

using core::Mat4;

const char *
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::W1_Sibenik: return "W1-sibenik";
      case WorkloadId::W2_Spot: return "W2-spot";
      case WorkloadId::W3_Cube: return "W3-cube";
      case WorkloadId::W4_Suzanne: return "W4-suzanne";
      case WorkloadId::W5_SuzanneAlpha: return "W5-suzanne-alpha";
      case WorkloadId::W6_Teapot: return "W6-teapot";
      case WorkloadId::M1_Chair: return "M1-chair";
      case WorkloadId::M2_Cube: return "M2-cube";
      case WorkloadId::M3_Mask: return "M3-mask";
      case WorkloadId::M4_Triangles: return "M4-triangles";
      default: return "unknown";
    }
}

Workload
makeWorkload(WorkloadId id)
{
    Workload w;
    w.name = workloadName(id);
    switch (id) {
      case WorkloadId::W1_Sibenik:
        // Cathedral interior: camera inside, geometry concentrated
        // around the column rows -> strong load imbalance.
        w.mesh = makeInterior(6, 20);
        w.textureSize = 256;
        w.camera.center = {0.0f, 2.6f, 0.0f};
        w.camera.radius = 6.0f;
        w.camera.height = 0.4f;
        w.camera.fovyRadians = 1.25f;
        break;
      case WorkloadId::W2_Spot:
        w.mesh = makeSpotish(40, 28);
        w.textureSize = 256;
        w.camera.center = {0.0f, -0.1f, 0.0f};
        w.camera.radius = 3.4f;
        break;
      case WorkloadId::W3_Cube:
        w.mesh = makeBox(1.6f, 1.6f, 1.6f);
        w.textureSize = 256;
        w.camera.center = {0.0f, 0.0f, 0.0f};
        w.camera.radius = 3.6f;
        break;
      case WorkloadId::W4_Suzanne:
        w.mesh = makeBlobHead(1.0f, 48, 32, 0.22f, 11);
        w.textureSize = 256;
        w.camera.center = {0.0f, 0.0f, 0.0f};
        w.camera.radius = 3.2f;
        break;
      case WorkloadId::W5_SuzanneAlpha:
        w.mesh = makeBlobHead(1.0f, 48, 32, 0.22f, 11);
        w.translucent = true;
        w.textureSize = 256;
        w.camera.center = {0.0f, 0.0f, 0.0f};
        w.camera.radius = 3.2f;
        break;
      case WorkloadId::W6_Teapot:
        w.mesh = makeTeapotish(48, 32);
        w.textureSize = 256;
        w.camera.center = {0.0f, 0.6f, 0.0f};
        w.camera.radius = 3.0f;
        w.camera.height = 1.0f;
        break;
      case WorkloadId::M1_Chair:
        w.mesh = makeChair(24);
        w.textureSize = 512;
        w.heavyShader = true;
        w.camera.center = {0.0f, 0.9f, 0.0f};
        w.camera.radius = 3.4f;
        break;
      case WorkloadId::M2_Cube:
        w.mesh = makeBox(1.6f, 1.6f, 1.6f);
        w.textureSize = 128;
        w.camera.center = {0.0f, 0.0f, 0.0f};
        w.camera.radius = 3.6f;
        break;
      case WorkloadId::M3_Mask:
        w.mesh = makeBlobHead(1.15f, 64, 44, 0.3f, 23);
        w.textureSize = 512;
        w.heavyShader = true;
        w.camera.center = {0.0f, 0.0f, 0.0f};
        w.camera.radius = 2.9f;
        break;
      case WorkloadId::M4_Triangles:
        w.mesh = makeTriangleField(160, 5);
        w.textureSize = 64;
        w.camera.center = {0.0f, 0.0f, 0.0f};
        w.camera.radius = 6.5f;
        break;
    }
    return w;
}

SceneRenderer::SceneRenderer(core::GraphicsPipeline &pipeline,
                             Workload workload,
                             mem::FunctionalMemory &memory)
    : _pipeline(pipeline), _workload(std::move(workload)),
      _memory(memory)
{
    // Upload vertex data.
    const auto &data = _workload.mesh.data();
    fatal_if(data.empty(), "workload %s has no geometry",
             _workload.name.c_str());
    _vertexBuffer = _memory.allocate(data.size() * 4, 128);
    _memory.write(_vertexBuffer, data.data(), data.size() * 4);

    _fb = std::make_unique<core::Framebuffer>(pipeline.fbWidth(),
                                              pipeline.fbHeight());

    // Textures: albedo (checker) and detail (noise) for the heavy
    // shader.
    unsigned ts = _workload.textureSize;
    auto albedo = std::make_unique<core::Texture>(
        ts, ts, _memory.allocate(std::uint64_t(ts) * ts * 4, 128));
    albedo->fillChecker(ts / 8, 0xffe0e0e0u, 0xff508ad0u);
    _textures.bind(0, albedo.get());
    _textureObjs.push_back(std::move(albedo));

    auto detail = std::make_unique<core::Texture>(
        ts, ts, _memory.allocate(std::uint64_t(ts) * ts * 4, 128));
    detail->fillNoise(97);
    _textures.bind(1, detail.get());
    _textureObjs.push_back(std::move(detail));

    _state.depthTest = true;
    _state.depthWrite = !_workload.translucent;
    _state.blend = _workload.translucent;
    _state.cullBackface = false;

    _vs = _shaders.buildVertex(_workload.name + ".vs",
                               vertexShaderSource());
    const std::string &fs_src =
        _workload.translucent
            ? fragmentTranslucentSource()
            : (_workload.heavyShader ? fragmentHeavySource()
                                     : fragmentTexturedSource());
    _fs = _shaders.buildFragment(_workload.name + ".fs", fs_src,
                                 _state);
}

void
SceneRenderer::renderFrame(
    unsigned frame_idx,
    std::function<void(const core::FrameStats &)> on_done)
{
    core::DrawCall draw;
    draw.vertexProgram = _vs;
    draw.fragmentProgram = _fs;
    draw.primType = core::PrimitiveType::Triangles;
    draw.vertexCount = _workload.mesh.vertexCount();
    draw.vertexBufferAddr = _vertexBuffer;
    draw.floatsPerVertex = vertexFloats;
    draw.numVaryings = standardVaryings;
    draw.textures = &_textures;
    draw.memory = &_memory;
    draw.state = _state;

    float aspect = static_cast<float>(_pipeline.fbWidth()) /
                   static_cast<float>(_pipeline.fbHeight());
    Mat4 vp = _workload.camera.viewProj(frame_idx, aspect);
    draw.constants.resize(24, 0.0f);
    vp.toColumnMajor(draw.constants.data());
    // Light direction (normalized-ish) and ambient.
    draw.constants[16] = 0.45f;
    draw.constants[17] = 0.7f;
    draw.constants[18] = 0.55f;
    draw.constants[19] = 0.25f;
    draw.constants[20] = 0.55f; // Translucent alpha.

    _pipeline.beginFrame(_fb.get());
    _pipeline.submitDraw(std::move(draw));
    _pipeline.endFrame(std::move(on_done));
}

} // namespace emerald::scenes
