#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "core/clipper.hh"
#include "core/framebuffer.hh"
#include "core/hiz.hh"
#include "core/rasterizer.hh"
#include "core/texture.hh"
#include "core/wt_mapping.hh"
#include "sim/random.hh"

using namespace emerald;
using namespace emerald::core;

namespace
{

ScreenVertex
sv(float x, float y, float z = 0.5f, float inv_w = 1.0f)
{
    ScreenVertex v;
    v.x = x;
    v.y = y;
    v.z = z;
    v.invW = inv_w;
    return v;
}

ClipVertex
cv(float x, float y, float z, float w)
{
    ClipVertex v;
    v.pos = {x, y, z, w};
    return v;
}

/** Reference point-in-triangle via barycentric signs. */
bool
refInside(float px, float py, const ScreenVertex v[3])
{
    auto edge = [](float ax, float ay, float bx, float by, float cx,
                   float cy) {
        return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
    };
    float d0 = edge(v[0].x, v[0].y, v[1].x, v[1].y, px, py);
    float d1 = edge(v[1].x, v[1].y, v[2].x, v[2].y, px, py);
    float d2 = edge(v[2].x, v[2].y, v[0].x, v[0].y, px, py);
    bool all_pos = d0 > 0 && d1 > 0 && d2 > 0;
    bool all_neg = d0 < 0 && d1 < 0 && d2 < 0;
    return all_pos || all_neg;
}

} // namespace

TEST(Clipper, FullyInsidePassesThrough)
{
    ClipVertex verts[3] = {cv(0, 0, 0, 1), cv(0.5f, 0, 0, 1),
                           cv(0, 0.5f, 0, 1)};
    ClipResult out;
    ASSERT_TRUE(clipTriangle(verts, out));
    EXPECT_EQ(out.count, 1u);
}

TEST(Clipper, TrivialRejectOutsideEachPlane)
{
    // All vertices beyond +x.
    ClipVertex verts[3] = {cv(2, 0, 0, 1), cv(3, 0, 0, 1),
                           cv(2, 1, 0, 1)};
    EXPECT_TRUE(trivialReject(verts));
    ClipResult out;
    EXPECT_FALSE(clipTriangle(verts, out));

    // All vertices behind the near plane.
    ClipVertex behind[3] = {cv(0, 0, -2, 1), cv(1, 0, -3, 1),
                            cv(0, 1, -2, 1)};
    EXPECT_TRUE(trivialReject(behind));
}

TEST(Clipper, NearClipProducesVerticesInFront)
{
    // One vertex behind the near plane -> quad -> 2 triangles.
    ClipVertex verts[3] = {cv(0, 0, -2, 1), cv(1, 0, 0.5f, 1),
                           cv(-1, 0, 0.5f, 1)};
    ClipResult out;
    ASSERT_TRUE(clipTriangle(verts, out));
    EXPECT_EQ(out.count, 2u);
    for (unsigned t = 0; t < out.count; ++t) {
        for (int i = 0; i < 3; ++i) {
            // z + w >= 0 (with epsilon for interpolation rounding).
            EXPECT_GE(out.tris[t][i].pos.z + out.tris[t][i].pos.w,
                      -1e-4f);
        }
    }
}

TEST(Clipper, AttributesInterpolateAcrossClip)
{
    ClipVertex verts[3] = {cv(0, 0, -1, 1), cv(1, 0, 1, 1),
                           cv(-1, 0, 1, 1)};
    verts[0].attrs[0] = 0.0f;
    verts[1].attrs[0] = 1.0f;
    verts[2].attrs[0] = 1.0f;
    ClipResult out;
    ASSERT_TRUE(clipTriangle(verts, out));
    // Every output attr must stay within the input range.
    for (unsigned t = 0; t < out.count; ++t) {
        for (int i = 0; i < 3; ++i) {
            EXPECT_GE(out.tris[t][i].attrs[0], -1e-5f);
            EXPECT_LE(out.tris[t][i].attrs[0], 1.0f + 1e-5f);
        }
    }
}

TEST(Rasterizer, SetupCullsBackfaces)
{
    ScreenVertex ccw[3] = {sv(10, 10), sv(50, 10), sv(10, 50)};
    ScreenVertex cw[3] = {sv(10, 10), sv(10, 50), sv(50, 10)};
    SetupPrim out;
    EXPECT_TRUE(setupPrimitive(ccw, 64, 64, true, out));
    EXPECT_FALSE(setupPrimitive(cw, 64, 64, true, out));
    // With culling off, winding is normalized instead.
    EXPECT_TRUE(setupPrimitive(cw, 64, 64, false, out));
    EXPECT_GT(out.area2, 0.0f);
}

TEST(Rasterizer, DegenerateAndOffscreenRejected)
{
    ScreenVertex degen[3] = {sv(10, 10), sv(20, 20), sv(30, 30)};
    SetupPrim out;
    EXPECT_FALSE(setupPrimitive(degen, 64, 64, false, out));

    ScreenVertex off[3] = {sv(-100, -100), sv(-50, -100),
                           sv(-100, -50)};
    EXPECT_FALSE(setupPrimitive(off, 64, 64, false, out));
}

TEST(Rasterizer, BoundingBoxCoversTriangle)
{
    ScreenVertex verts[3] = {sv(5, 6), sv(20, 9), sv(11, 30)};
    SetupPrim out;
    ASSERT_TRUE(setupPrimitive(verts, 64, 64, false, out));
    EXPECT_EQ(out.tileX0, 1);  // x 5 -> tile 1.
    EXPECT_EQ(out.tileY0, 1);
    EXPECT_EQ(out.tileX1, 5);  // x 20 -> tile 5.
    EXPECT_EQ(out.tileY1, 7);
}

class RasterizerProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RasterizerProperty, CoverageMatchesReference)
{
    Random rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        ScreenVertex verts[3];
        for (auto &v : verts) {
            v = sv(static_cast<float>(rng.uniform()) * 64.0f,
                   static_cast<float>(rng.uniform()) * 64.0f);
        }
        SetupPrim prim;
        if (!setupPrimitive(verts, 64, 64, false, prim))
            continue;

        for (int ty = prim.tileY0; ty <= prim.tileY1; ++ty) {
            for (int tx = prim.tileX0; tx <= prim.tileX1; ++tx) {
                FragmentTile tile;
                rasterizeTile(prim, tx, ty, 0, 64, 64, tile);
                for (unsigned p = 0; p < rasterTilePixels; ++p) {
                    float px = static_cast<float>(
                                   tx * 4 + static_cast<int>(p % 4)) +
                               0.5f;
                    float py = static_cast<float>(
                                   ty * 4 + static_cast<int>(p / 4)) +
                               0.5f;
                    bool covered = tile.coverMask & (1u << p);
                    bool ref = refInside(px, py, prim.v.data());
                    // Allow edge-rule mismatches only exactly on an
                    // edge; interior/exterior must agree.
                    float e0 = prim.edgeA[0] * px +
                               prim.edgeB[0] * py + prim.edgeC[0];
                    float e1 = prim.edgeA[1] * px +
                               prim.edgeB[1] * py + prim.edgeC[1];
                    float e2 = prim.edgeA[2] * px +
                               prim.edgeB[2] * py + prim.edgeC[2];
                    float eps = 1e-3f * prim.area2;
                    bool near_edge = std::fabs(e0) < eps ||
                                     std::fabs(e1) < eps ||
                                     std::fabs(e2) < eps;
                    if (!near_edge) {
                        EXPECT_EQ(covered, ref);
                    }
                }
            }
        }
    }
}

TEST_P(RasterizerProperty, SharedEdgeNoDoubleCoverNoGap)
{
    // Two triangles sharing an edge: every pixel in the union is
    // covered exactly once (top-left fill rule).
    Random rng(GetParam() + 100);
    for (int iter = 0; iter < 100; ++iter) {
        ScreenVertex a = sv(static_cast<float>(rng.uniform()) * 60.0f,
                            static_cast<float>(rng.uniform()) * 60.0f);
        ScreenVertex b = sv(static_cast<float>(rng.uniform()) * 60.0f,
                            static_cast<float>(rng.uniform()) * 60.0f);
        ScreenVertex c = sv(static_cast<float>(rng.uniform()) * 60.0f,
                            static_cast<float>(rng.uniform()) * 60.0f);
        ScreenVertex d = sv(static_cast<float>(rng.uniform()) * 60.0f,
                            static_cast<float>(rng.uniform()) * 60.0f);
        ScreenVertex t1[3] = {a, b, c};
        ScreenVertex t2[3] = {a, c, d};
        SetupPrim p1, p2;
        if (!setupPrimitive(t1, 64, 64, false, p1))
            continue;
        if (!setupPrimitive(t2, 64, 64, false, p2))
            continue;

        std::vector<int> cover(64 * 64, 0);
        for (const SetupPrim *prim : {&p1, &p2}) {
            for (int ty = prim->tileY0; ty <= prim->tileY1; ++ty) {
                for (int tx = prim->tileX0; tx <= prim->tileX1;
                     ++tx) {
                    FragmentTile tile;
                    rasterizeTile(*prim, tx, ty, 0, 64, 64, tile);
                    for (unsigned p = 0; p < rasterTilePixels; ++p) {
                        if (tile.coverMask & (1u << p)) {
                            int x = tx * 4 + static_cast<int>(p % 4);
                            int y = ty * 4 + static_cast<int>(p / 4);
                            ++cover[y * 64 + x];
                        }
                    }
                }
            }
        }
        // No pixel on the shared edge may be covered twice.
        for (int val : cover)
            EXPECT_LE(val, 2); // 2 only if triangles overlap (d side).
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RasterizerProperty,
                         ::testing::Values(3u, 17u, 99u));

TEST(Rasterizer, PerspectiveCorrectInterpolation)
{
    // A triangle with very different w: attribute interpolation must
    // be hyperbolic, not linear. At the screen-space midpoint of an
    // edge between attrs 0 and 1 with invW 1 and 0.1, the
    // perspective-correct value is heavily biased toward the near
    // vertex.
    ScreenVertex verts[3] = {sv(0, 0, 0.5f, 1.0f),
                             sv(32, 0, 0.5f, 0.1f),
                             sv(0, 32, 0.5f, 1.0f)};
    verts[0].attrsOverW[0] = 0.0f * 1.0f;
    verts[1].attrsOverW[0] = 1.0f * 0.1f;
    verts[2].attrsOverW[0] = 0.0f * 1.0f;
    SetupPrim prim;
    ASSERT_TRUE(setupPrimitive(verts, 64, 64, false, prim));
    FragmentTile tile;
    // Tile containing pixel (16, 0): tile x=4, y=0.
    ASSERT_TRUE(rasterizeTile(prim, 4, 0, 1, 64, 64, tile));
    // Pixel (16,0) is slot 0 of that tile.
    ASSERT_TRUE(tile.coverMask & 1u);
    float v = tile.attrs[0][0];
    // Linear would give ~0.5; perspective-correct is ~0.085.
    EXPECT_LT(v, 0.2f);
}

TEST(HiZ, ConservativeRejectAndUpdate)
{
    HiZBuffer hiz(64, 64);
    EXPECT_TRUE(hiz.test(0, 0, 0.5f)); // Initially everything passes.

    hiz.update(0, 0, 0.3f);
    EXPECT_FALSE(hiz.test(0, 0, 0.4f)); // Behind the bound.
    EXPECT_TRUE(hiz.test(0, 0, 0.2f));  // In front.

    // Updates only tighten.
    hiz.update(0, 0, 0.9f);
    EXPECT_FLOAT_EQ(hiz.bound(0, 0), 0.3f);

    hiz.clear();
    EXPECT_TRUE(hiz.test(0, 0, 0.99f));
}

TEST(HiZ, NeverCullsVisibleFragment)
{
    // Property: after arbitrary full-tile updates with max-z values,
    // a fragment with z less than every update must still pass.
    HiZBuffer hiz(64, 64);
    Random rng(5);
    float min_update = 1.0f;
    for (int i = 0; i < 100; ++i) {
        float z = 0.2f + static_cast<float>(rng.uniform()) * 0.8f;
        min_update = std::min(min_update, z);
        hiz.update(3, 3, z);
    }
    EXPECT_TRUE(hiz.test(3, 3, min_update - 0.05f));
}

TEST(Framebuffer, DepthTestLess)
{
    Framebuffer fb(16, 16);
    Addr addr = 0;
    EXPECT_TRUE(fb.depthTest(4, 4, 0.5f, addr));
    EXPECT_EQ(addr, fb.depthAddr(4, 4));
    EXPECT_FLOAT_EQ(fb.depthAt(4, 4), 0.5f);
    EXPECT_FALSE(fb.depthTest(4, 4, 0.7f, addr));
    EXPECT_TRUE(fb.depthTest(4, 4, 0.3f, addr));
    EXPECT_FLOAT_EQ(fb.depthAt(4, 4), 0.3f);
}

TEST(Framebuffer, DepthWriteDisable)
{
    Framebuffer fb(16, 16);
    fb.setDepthWrite(false);
    Addr addr = 0;
    EXPECT_TRUE(fb.depthTest(1, 1, 0.5f, addr));
    EXPECT_FLOAT_EQ(fb.depthAt(1, 1), 1.0f); // Unchanged.
}

TEST(Framebuffer, StoreAndBlend)
{
    Framebuffer fb(16, 16);
    Addr addr = 0;
    float red[4] = {1.0f, 0.0f, 0.0f, 1.0f};
    fb.storePixel(2, 3, red, addr);
    EXPECT_EQ(addr, fb.colorAddr(2, 3));
    EXPECT_EQ(fb.pixel(2, 3), 0xff0000ffu);

    // 50% white over red.
    float half_white[4] = {1.0f, 1.0f, 1.0f, 0.5f};
    fb.blendPixel(2, 3, half_white, addr);
    std::uint32_t px = fb.pixel(2, 3);
    EXPECT_NEAR(px & 0xff, 255, 1);          // R stays saturated.
    EXPECT_NEAR((px >> 8) & 0xff, 128, 2);   // G half.
    EXPECT_NEAR((px >> 16) & 0xff, 128, 2);  // B half.
}

TEST(Framebuffer, OutOfBoundsSafe)
{
    Framebuffer fb(16, 16);
    Addr addr = 0;
    EXPECT_FALSE(fb.depthTest(-1, 0, 0.1f, addr));
    EXPECT_FALSE(fb.depthTest(16, 0, 0.1f, addr));
    float c[4] = {1, 1, 1, 1};
    fb.storePixel(-1, -1, c, addr); // Must not crash.
    fb.blendPixel(99, 99, c, addr);
}

TEST(Framebuffer, HashChangesWithContent)
{
    Framebuffer fb(16, 16);
    std::uint64_t h0 = fb.colorHash();
    Addr addr = 0;
    float c[4] = {0.2f, 0.4f, 0.6f, 1.0f};
    fb.storePixel(0, 0, c, addr);
    EXPECT_NE(fb.colorHash(), h0);
}

TEST(Texture, TexelCenterSamplingExact)
{
    Texture tex(8, 8, 0x1000);
    tex.setTexel(2, 3, 0xff0040ffu); // R=255, G=64, B=0.
    TextureSet set;
    set.bind(0, &tex);
    float rgba[4];
    std::vector<Addr> addrs;
    // Texel center (2,3) in uv space: ((2+0.5)/8, (3+0.5)/8).
    set.sample(0, 2.5f / 8.0f, 3.5f / 8.0f, rgba, addrs);
    EXPECT_NEAR(rgba[0], 1.0f, 1e-3f);
    EXPECT_NEAR(rgba[1], 64.0f / 255.0f, 1e-3f);
    EXPECT_NEAR(rgba[2], 0.0f, 1e-3f);
    EXPECT_EQ(addrs.size(), 4u);
}

TEST(Texture, BilinearBlendsNeighbours)
{
    Texture tex(8, 8, 0x1000);
    tex.fillChecker(1, 0xffffffffu, 0xff000000u);
    TextureSet set;
    set.bind(0, &tex);
    float rgba[4];
    std::vector<Addr> addrs;
    // Exactly between two texels horizontally: 50% blend.
    set.sample(0, 3.0f / 8.0f, 2.5f / 8.0f, rgba, addrs);
    EXPECT_NEAR(rgba[0], 0.5f, 1e-2f);
}

TEST(Texture, BlockLinearAddresses)
{
    Texture tex(64, 64, 0x10000);
    // Texels in the same 8x4 block share a 128 B line.
    Addr a = tex.texelAddr(0, 0);
    Addr b = tex.texelAddr(7, 3);
    EXPECT_EQ(a & ~Addr(127), b & ~Addr(127));
    // Next block over differs.
    Addr c = tex.texelAddr(8, 0);
    EXPECT_NE(a & ~Addr(127), c & ~Addr(127));
}

TEST(Texture, MissingUnitReturnsWhite)
{
    TextureSet set;
    float rgba[4];
    std::vector<Addr> addrs;
    set.sample(3, 0.5f, 0.5f, rgba, addrs);
    EXPECT_FLOAT_EQ(rgba[0], 1.0f);
    EXPECT_TRUE(addrs.empty());
}

TEST(WtMapping, Wt1RoundRobinsTcTiles)
{
    WtMapping map(256, 192, 6, 1);
    EXPECT_EQ(map.tcCols(), 32u);
    EXPECT_EQ(map.tcRows(), 24u);
    // Adjacent TC tiles land on different cores at WT=1.
    EXPECT_NE(map.coreOf(0, 0), map.coreOf(1, 0));
}

TEST(WtMapping, LargeWtGroupsNeighbours)
{
    WtMapping map(256, 192, 6, 4);
    unsigned c = map.coreOf(0, 0);
    for (unsigned y = 0; y < 4; ++y)
        for (unsigned x = 0; x < 4; ++x)
            EXPECT_EQ(map.coreOf(x, y), c);
    EXPECT_NE(map.coreOf(4, 0), c);
}

TEST(WtMapping, AllCoresUsedAndBalanced)
{
    for (unsigned wt = 1; wt <= 10; ++wt) {
        WtMapping map(256, 192, 6, wt);
        std::vector<unsigned> counts(6, 0);
        for (unsigned y = 0; y < map.tcRows(); ++y)
            for (unsigned x = 0; x < map.tcCols(); ++x)
                ++counts[map.coreOf(x, y)];
        unsigned total = 0;
        for (unsigned count : counts) {
            EXPECT_GT(count, 0u) << "wt=" << wt;
            total += count;
        }
        EXPECT_EQ(total, map.tcCols() * map.tcRows());
    }
}

TEST(WtMapping, PixelMappingConsistent)
{
    WtMapping map(256, 192, 6, 2);
    EXPECT_EQ(map.coreOfPixel(0, 0), map.coreOf(0, 0));
    EXPECT_EQ(map.coreOfPixel(15, 15), map.coreOf(1, 1));
}

TEST(Rasterizer, TinyTriangleSinglePixel)
{
    // A sub-pixel triangle around one pixel center covers exactly
    // that pixel (micro-primitive case the TC stage exists for).
    ScreenVertex verts[3] = {sv(10.2f, 10.2f), sv(10.9f, 10.3f),
                             sv(10.4f, 10.9f)};
    SetupPrim prim;
    ASSERT_TRUE(setupPrimitive(verts, 64, 64, false, prim));
    unsigned covered = 0;
    for (int ty = prim.tileY0; ty <= prim.tileY1; ++ty) {
        for (int tx = prim.tileX0; tx <= prim.tileX1; ++tx) {
            FragmentTile tile;
            if (rasterizeTile(prim, tx, ty, 0, 64, 64, tile))
                covered += std::popcount(
                    static_cast<unsigned>(tile.coverMask));
        }
    }
    EXPECT_EQ(covered, 1u);
}

TEST(Rasterizer, SliverTriangleMayCoverNothing)
{
    // A degenerate-thin sliver between pixel centers covers zero
    // pixels but must not crash or loop.
    ScreenVertex verts[3] = {sv(5.1f, 5.01f), sv(30.0f, 5.02f),
                             sv(5.1f, 5.03f)};
    SetupPrim prim;
    if (!setupPrimitive(verts, 64, 64, false, prim))
        return; // Degenerate area: rejected at setup - fine.
    for (int ty = prim.tileY0; ty <= prim.tileY1; ++ty) {
        for (int tx = prim.tileX0; tx <= prim.tileX1; ++tx) {
            FragmentTile tile;
            rasterizeTile(prim, tx, ty, 0, 64, 64, tile);
        }
    }
}

TEST(Rasterizer, ClampsToFramebufferEdge)
{
    // Triangle extending past the right/bottom edge: bbox clamps,
    // and no fragment falls outside.
    ScreenVertex verts[3] = {sv(50, 50), sv(100, 55), sv(55, 100)};
    SetupPrim prim;
    ASSERT_TRUE(setupPrimitive(verts, 64, 64, false, prim));
    EXPECT_LE(prim.tileX1, 15);
    EXPECT_LE(prim.tileY1, 15);
    for (int ty = prim.tileY0; ty <= prim.tileY1; ++ty) {
        for (int tx = prim.tileX0; tx <= prim.tileX1; ++tx) {
            FragmentTile tile;
            if (!rasterizeTile(prim, tx, ty, 0, 64, 64, tile))
                continue;
            for (unsigned p = 0; p < rasterTilePixels; ++p) {
                if (tile.coverMask & (1u << p)) {
                    EXPECT_LT(tx * 4 + static_cast<int>(p % 4), 64);
                    EXPECT_LT(ty * 4 + static_cast<int>(p / 4), 64);
                }
            }
        }
    }
}
