/**
 * @file
 * A first-order GPU/SoC energy model (extension).
 *
 * The paper lists "developing Emerald-compatible GPUWattch
 * configurations for mobile GPUs" as future work, and motivates DFSL
 * by energy: "lower GPU energy consumption by reducing average
 * rendering time per frame assuming the GPU can be put into a low
 * power state between frames". This model makes that argument
 * quantitative: event energies (instructions, cache accesses, DRAM
 * activates/transfers, raster work) plus leakage/idle power
 * integrated over the active window.
 *
 * Energy numbers are first-order per-event constants in the spirit
 * of GPUWattch/McPAT-class models, scaled for a mobile SoC; absolute
 * joules are indicative, ratios are the point.
 */

#ifndef EMERALD_CORE_ENERGY_HH
#define EMERALD_CORE_ENERGY_HH

#include "core/graphics_pipeline.hh"
#include "gpu/gpu_top.hh"
#include "mem/memory_system.hh"

namespace emerald::core
{

/** Per-event energies in picojoules; defaults are mobile-SoC scale. */
struct EnergyParams
{
    double alu_pj = 2.0;            ///< Per thread ALU op.
    double sfu_pj = 8.0;            ///< Per thread SFU op.
    double reg_access_pj = 0.8;     ///< Per thread reg read/write.
    double l1_access_pj = 28.0;     ///< Per L1 access (any kind).
    double l2_access_pj = 95.0;     ///< Per L2 access.
    double dram_act_pj = 3200.0;    ///< Per row activation.
    double dram_rw_pj_per_byte = 18.0;
    double raster_tile_pj = 140.0;  ///< Fixed-function raster tile.
    double core_idle_mw = 14.0;     ///< Per-core leakage+clock power.
    double soc_static_mw = 80.0;    ///< Rest-of-GPU static power.
};

/** Breakdown of one measurement window. */
struct EnergyReport
{
    double coreDynamic_uj = 0.0;
    double cacheL1_uj = 0.0;
    double cacheL2_uj = 0.0;
    double dram_uj = 0.0;
    double raster_uj = 0.0;
    double staticEnergy_uj = 0.0;

    double
    total_uj() const
    {
        return coreDynamic_uj + cacheL1_uj + cacheL2_uj + dram_uj +
               raster_uj + staticEnergy_uj;
    }
};

/**
 * Computes energy from the stats deltas of a GPU + pipeline + memory
 * over a window. Snapshot at the start, report at the end.
 */
class EnergyModel
{
  public:
    EnergyModel(gpu::GpuTop &gpu, GraphicsPipeline &pipeline,
                mem::MemorySystem &memory,
                const EnergyParams &params = EnergyParams());

    /** Begin a measurement window at the current stats values. */
    void snapshot();

    /**
     * Energy consumed since the last snapshot().
     * @param active_ticks the window length used for static power
     *        (e.g. the frame's render time).
     */
    EnergyReport report(Tick active_ticks) const;

    const EnergyParams &params() const { return _params; }

  private:
    struct Counters
    {
        double threadInstrs = 0.0;
        double l1Accesses = 0.0;
        double l2Accesses = 0.0;
        double dramActivations = 0.0;
        double dramBytes = 0.0;
        double rasterTiles = 0.0;
    };

    Counters gather() const;

    gpu::GpuTop &_gpu;
    GraphicsPipeline &_pipeline;
    mem::MemorySystem &_memory;
    EnergyParams _params;
    Counters _base;
};

} // namespace emerald::core

#endif // EMERALD_CORE_ENERGY_HH
