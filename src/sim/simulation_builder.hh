/**
 * @file
 * Fluent construction recipe for a Simulation: clock domains,
 * observability (tracing / profiling), and stats sinks. Replaces the
 * copy-pasted "parse config, wire tracer, dump stats at the end"
 * prologue of the benches and examples.
 */

#ifndef EMERALD_SIM_SIMULATION_BUILDER_HH
#define EMERALD_SIM_SIMULATION_BUILDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald
{

class Config;
class Simulation;

/**
 * Collects a declarative description of a Simulation and materializes
 * it, either into a fresh instance (build()) or onto a Simulation a
 * rig already owns (applyTo()). The recipe is inert data: a builder
 * can be copied, passed across APIs (e.g. into SocTop), and reused.
 *
 *   auto sim = SimulationBuilder()
 *                  .clockDomain("gpu_clk", 1000.0)
 *                  .traceFile("trace.json")
 *                  .profiling()
 *                  .build();
 */
class SimulationBuilder
{
  public:
    /** Add a clock domain; retrieve it via Simulation::clockDomain. */
    SimulationBuilder &clockDomain(const std::string &name, double mhz);

    /** Stream a Chrome-trace event log to @p path. */
    SimulationBuilder &traceFile(const std::string &path);

    /** Enable the sim.profile.* event counters. */
    SimulationBuilder &profiling(bool on = true);

    /**
     * Write the final stats tree to the sink named by @p uri at
     * destruction (--sim-stats-out: plain path = raw JSON tree,
     * sqlite:<path> = sweep database, "" disables).
     */
    SimulationBuilder &statsOutOnExit(const std::string &uri);

    /**
     * Hash the processed event stream into sim.check.event_hash for
     * run-to-run determinism diffing (works in every build type).
     */
    SimulationBuilder &checkDeterminism(bool on = true);

    /**
     * Run a fault-injection campaign: @p plan uses the --fault-plan
     * grammar (docs/fault_injection.md), @p seed drives every
     * stochastic site. An empty plan disables injection entirely.
     */
    SimulationBuilder &faultPlan(const std::string &plan,
                                 std::uint64_t seed = 1);

    /**
     * Arm the progress watchdog with a no-progress budget of
     * @p budget ticks; @p mode is "abort" or "degrade" (see
     * sim/fault/watchdog.hh). budget == 0 disables.
     */
    SimulationBuilder &watchdog(Tick budget,
                                const std::string &mode = "abort");

    /**
     * Checkpoint into @p dir at the first quiescent inter-event
     * boundary at or after @p at ticks (--checkpoint-at /
     * --checkpoint-dir). at == 0 with an empty dir disables.
     */
    SimulationBuilder &checkpointAt(Tick at, const std::string &dir);

    /**
     * Rotate auto-checkpoints into @p dir every @p every ticks
     * (--checkpoint-every / --checkpoint-dir), keeping the newest
     * @p keep (--checkpoint-keep). every == 0 disables. Mutually
     * exclusive with checkpointAt().
     */
    SimulationBuilder &checkpointEvery(Tick every,
                                       const std::string &dir,
                                       unsigned keep = 3);

    /**
     * Where the watchdog's abort path writes its structured hang
     * report as JSON (--hang-report-path); "" disables. The run
     * supervisor uses the file to classify a dead child as a hang.
     */
    SimulationBuilder &hangReportPath(const std::string &path);

    /**
     * Warm-start from the checkpoint directory @p dir (--restore).
     * The restore itself runs after topology construction (SocTop
     * triggers it); @p force turns the config-fingerprint mismatch
     * from fatal into a warning (--restore-force).
     */
    SimulationBuilder &restoreFrom(const std::string &dir,
                                   bool force = false);

    /**
     * Scope the checkpoint and restore directories into a
     * @p label subdirectory. Benches that build several simulations
     * in one process (e.g. one per memory configuration) apply this
     * per run so each gets its own checkpoint directory under the
     * user-supplied base.
     */
    SimulationBuilder &subdir(const std::string &label);

    /**
     * Select the SIMT warp-scheduling policy by registry name
     * (--warp-sched: lrr, gto, wasp). "" keeps the default.
     */
    SimulationBuilder &warpScheduler(const std::string &policy);

    /**
     * Select the DRAM scheduling policy by registry name
     * (--mem-sched: frfcfs, dash). "" keeps the rig's per-config
     * default (SocTop: dash for DCB/DTB, frfcfs otherwise).
     */
    SimulationBuilder &memScheduler(const std::string &policy);

    /**
     * Record per-client memory traffic into directory @p dir
     * (--capture-trace); see docs/scheduling.md. "" disables.
     */
    SimulationBuilder &captureTrace(const std::string &dir);

    /**
     * Replay a captured memory trace from directory @p dir
     * (--replay-trace) instead of executing shaders. "" disables.
     */
    SimulationBuilder &replayTrace(const std::string &dir);

    /**
     * Read the observability keys from @p cfg: "trace-file" (path),
     * "profile" (bool), "sim-stats-out" (sink URI, dumped at exit;
     * "sim-stats-json" is a deprecated alias),
     * "check-determinism" (bool, --check-determinism on the CLI),
     * the robustness keys "fault-plan" (campaign string),
     * "fault-seed" (integer), "watchdog-ticks" (duration: "1ms",
     * "250us", or raw ticks) and "watchdog-mode" (abort|degrade),
     * "hang-report-path" (file the watchdog's abort mode writes its
     * JSON hang report to), plus the checkpoint keys "checkpoint-at"
     * (duration), "checkpoint-every" (duration, rotating
     * auto-checkpoints), "checkpoint-keep" (rotation count, default
     * 3), "checkpoint-dir" (path, default "ckpt"), "restore" (path)
     * and "restore-force" (bool), the scheduler-policy keys "warp-sched"
     * and "mem-sched", and the trace keys "capture-trace" and
     * "replay-trace" (directories).
     */
    SimulationBuilder &observability(const Config &cfg);

    /** Create a Simulation and apply this recipe to it. */
    std::unique_ptr<Simulation> build() const;

    /** Apply this recipe to an existing Simulation. */
    void applyTo(Simulation &sim) const;

  private:
    struct DomainSpec
    {
        std::string name;
        double mhz;
    };

    std::vector<DomainSpec> _domains;
    std::string _traceFile;
    std::string _statsOutOnExit;
    bool _profiling = false;
    bool _checkDeterminism = false;
    std::string _faultPlan;
    std::uint64_t _faultSeed = 1;
    Tick _watchdogTicks = 0;
    std::string _watchdogMode = "abort";
    Tick _checkpointAt = 0;
    Tick _checkpointEvery = 0;
    unsigned _checkpointKeep = 3;
    std::string _checkpointDir;
    std::string _hangReportPath;
    std::string _restoreDir;
    bool _restoreForce = false;
    std::string _warpSched;
    std::string _memSched;
    std::string _captureTraceDir;
    std::string _replayTraceDir;
};

} // namespace emerald

#endif // EMERALD_SIM_SIMULATION_BUILDER_HH
