# Empty dependencies file for fig18_wt_locality.
# This may be replaced when dependencies are built.
