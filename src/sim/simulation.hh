/**
 * @file
 * The Simulation context: the event queue, the stats root, and the
 * clock domains of one simulated system.
 */

#ifndef EMERALD_SIM_SIMULATION_HH
#define EMERALD_SIM_SIMULATION_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/event_tracer.hh"
#include "sim/fault/domain.hh"
#include "sim/packet_pool.hh"
#include "sim/serialize/registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace emerald
{

class CheckpointTrigger;
class Config;
class Serializable;
class SimObject;

namespace check
{
class CheckContext;
class DeterminismVerifier;
} // namespace check

namespace fault
{
class FaultInjector;
class ProgressWatchdog;
enum class WatchdogMode : std::uint8_t;
} // namespace fault

/**
 * Owns the event queue and the root of the stats tree. Every
 * SimObject is constructed against a Simulation and registers its
 * stats under it.
 */
class Simulation
{
  public:
    Simulation();
    ~Simulation();

    EventQueue &eventQueue() { return _eq; }
    Tick curTick() const { return _eq.curTick(); }

    /** Root of the stats tree. */
    StatGroup &statsRoot() { return _statsRoot; }

    /**
     * The free-list packet allocator every component on the memory
     * request path allocates from (stats under sim.pool.*). The pool
     * dies with the Simulation, so packets must not outlive it.
     */
    PacketPool &packetPool() { return *_packetPool; }

    /**
     * Create a clock domain owned by this simulation.
     * @param mhz frequency in MHz.
     */
    ClockDomain &createClockDomain(double mhz, const std::string &name);

    /**
     * Look up a clock domain by name (e.g. one declared through
     * SimulationBuilder::clockDomain); fatal when absent.
     */
    ClockDomain &clockDomain(const std::string &name);

    /** The named domain, or nullptr when absent. */
    ClockDomain *findClockDomain(const std::string &name);

    /** Run until the event queue drains or @p limit is reached. */
    std::uint64_t run(Tick limit = maxTick) { return _eq.runUntil(limit); }

    /** Dump all stats as "name value # desc" lines. */
    void dumpStats(std::ostream &os) { _statsRoot.dumpStats(os); }

    /** Root of the stats tree (StatsSink capture, flattening). */
    const StatGroup &statsRoot() const { return _statsRoot; }

    /** Dump all stats as one machine-readable JSON tree. */
    void dumpStatsJson(std::ostream &os)
    {
        _statsRoot.dumpJson(os);
        os << "\n";
    }

    /** Reset all stats without disturbing component state. */
    void resetStats() { _statsRoot.resetStats(); }

    /**
     * The sim.profile.* counters. Always present so components can
     * register at construction; counters only advance after
     * enableProfiling().
     */
    EventProfiler &profiler() { return *_profiler; }

    /** Start attributing event counts/wall time to sim.profile.*. */
    void enableProfiling();

    /**
     * Start streaming a Chrome-trace (Perfetto-loadable) event log to
     * @p path. Returns the tracer so callers can close() it early.
     */
    EventTracer &enableTracing(const std::string &path);

    /** The active tracer, or nullptr when tracing is off. */
    EventTracer *tracer() { return _tracer.get(); }

    /**
     * Apply the observability Config keys: "trace-file" (path,
     * enables the tracer) and "profile" (bool, enables sim.profile.*).
     */
    void configureObservability(const Config &cfg);

    /**
     * Exit stats sink: write the final stats tree to the sink named
     * by @p uri (makeTreeStatsSink — a plain path writes the raw JSON
     * tree, "sqlite:<path>" the sweep database, "" disables) when
     * this Simulation is destroyed.
     */
    void writeStatsAtExit(const std::string &uri)
    {
        _statsOutOnExit = uri;
    }

    /**
     * Start hashing every processed event into sim.check.event_hash
     * (see sim/check/determinism.hh). Available in every build type —
     * it rides the event-queue instrument branch, so runs without it
     * pay nothing. Idempotent.
     */
    void enableDeterminismCheck();

    /**
     * Full 64-bit event-stream hash, or 0 when the determinism check
     * was never enabled. The sim.check.event_hash stat carries a
     * 53-bit fold of the same value.
     */
    std::uint64_t determinismHash() const;

    /**
     * This simulation's correctness checkers, or nullptr in builds
     * without EMERALD_CHECKS. Tests use this to tune thresholds and
     * run quiescence checks mid-run.
     */
    check::CheckContext *checkContext() { return _checkContext.get(); }

    /**
     * Registry of every RetryList constructed under this Simulation —
     * the watchdog's and the fault injector's view of who is parked
     * waiting for a retry.
     */
    fault::FaultDomain &faultDomain() { return _faultDomain; }

    /**
     * Parse @p plan_text (--fault-plan grammar, see
     * docs/fault_injection.md) and activate a seeded FaultInjector for
     * this simulation's lifetime, published on faultDomain() for the
     * protocol seams. An empty plan creates nothing, so runs without
     * faults keep faultDomain().injector() == nullptr and pay a
     * single branch per protocol seam.
     */
    void configureFaults(const std::string &plan_text,
                         std::uint64_t seed);

    /** The active injector, or nullptr when faults are off. */
    fault::FaultInjector *faultInjector()
    {
        return _faultInjector.get();
    }

    /**
     * Arm the progress watchdog: declare a hang when @p budget ticks
     * elapse with zero packet completions while requestors sit parked
     * on RetryLists. See sim/fault/watchdog.hh for abort vs degrade.
     */
    void enableWatchdog(Tick budget, fault::WatchdogMode mode);

    /** The armed watchdog, or nullptr when disabled. */
    fault::ProgressWatchdog *watchdog() { return _watchdog.get(); }

    /**
     * Write the exit stats sink (writeStatsAtExit) immediately. The
     * watchdog's abort path calls this because abort() skips
     * destructors. No-op when no sink is configured.
     */
    void flushStatsSink();

    /** Every live SimObject, in construction order. */
    const std::vector<SimObject *> &objects() const { return _objects; }

    /**
     * Name tables for checkpointable cross-object references (events,
     * response targets, retry waiters). See sim/serialize/registry.hh.
     */
    CheckpointRegistry &checkpointRegistry() { return _ckptRegistry; }
    const CheckpointRegistry &
    checkpointRegistry() const
    {
        return _ckptRegistry;
    }

    /**
     * Record the hash of the construction-time configuration. A
     * checkpoint stores it and restore refuses on mismatch (unless
     * forced): state from one topology silently deserialized into a
     * different one is the failure mode this subsystem must never
     * have.
     */
    void
    setConfigFingerprint(std::uint64_t fp)
    {
        _configFingerprint = fp;
    }

    std::uint64_t configFingerprint() const { return _configFingerprint; }

    /**
     * Checkpoint a stateful object that is not a SimObject (e.g. the
     * framebuffer): @p obj is saved/restored as section @p name
     * alongside the SimObjects. The caller keeps ownership and must
     * outlive the Simulation's save/restore calls.
     */
    void registerSerializable(const std::string &name,
                              Serializable &obj);

    /**
     * Arm a checkpoint at the first inter-event boundary at or after
     * @p at ticks (--checkpoint-at). The trigger rides the event-queue
     * instrument chain, so arming it perturbs no event ordering; if
     * components report !checkpointSafe() at @p at (an open frame, a
     * busy SIMT core) the save is deferred to the next safe boundary.
     */
    void scheduleCheckpoint(Tick at, const std::string &dir);

    /**
     * Arm recurring auto-checkpoints (--checkpoint-every): every
     * @p every ticks, at the next quiescent inter-event boundary, a
     * complete checkpoint is written to a temporary directory and
     * atomically renamed to <dir>/auto-<tick> — a reader never sees
     * a torn one. Only the newest @p keep rotations are retained.
     */
    void scheduleRecurringCheckpoint(Tick every, const std::string &dir,
                                     unsigned keep);

    /**
     * Write a checkpoint of the current state into directory @p dir
     * (manifest.json + data.bin + stats.json). Fatal when any object
     * reports !checkpointSafe().
     */
    void saveCheckpoint(const std::string &dir);

    /**
     * One rotation of the recurring trigger, exposed for it and for
     * tests: save into <base>/.tmp-auto, atomically rename to
     * <base>/auto-<tick> (zero-padded so lexical order is tick
     * order), then prune rotations beyond @p keep.
     */
    void saveRotatedCheckpoint(const std::string &base, unsigned keep);

    /**
     * Declare that this simulation will restore from @p dir
     * (--restore). The actual restore runs once the topology exists —
     * rigs call restoreCheckpoint() after construction (SocTop does
     * this automatically). @p force downgrades the config-fingerprint
     * mismatch from fatal to a warning (--restore-force).
     * @p lenient makes a missing/entirely-corrupt checkpoint a
     * warning-and-cold-start instead of fatal — the recovery path
     * (supervised reruns under --checkpoint-every) restarts benches
     * whose configs never reached their first checkpoint.
     */
    void
    setRestoreSpec(const std::string &dir, bool force,
                   bool lenient = false)
    {
        _restoreDir = dir;
        _restoreForce = force;
        _restoreLenient = lenient;
    }

    /** True when setRestoreSpec ran and restoreCheckpoint has not. */
    bool
    restorePending() const
    {
        return !_restoreDir.empty() && !_restored;
    }

    /**
     * Restore the checkpoint named by setRestoreSpec onto the
     * constructed topology: validates the fingerprint, rewinds the
     * event queue, unserializes every object (construction order),
     * overwrites the stats tree and re-schedules the pending events
     * by name.
     */
    void restoreCheckpoint();

    /** True once restoreCheckpoint has run (warm start). */
    bool restored() const { return _restored; }

    /**
     * @{ Where the watchdog's abort path writes its structured hang
     * report as JSON (--hang-report-path; "" disables). The run
     * supervisor reads the file to classify a died child as Hang.
     */
    void
    setHangReportPath(const std::string &path)
    {
        _hangReportPath = path;
    }
    const std::string &hangReportPath() const { return _hangReportPath; }
    /** @} */

    /**
     * @{ Scheduler-policy selection (--warp-sched / --mem-sched).
     * The kernel only carries the names; rigs resolve them through
     * the gpu/mem policy registries at construction. "" means "use
     * the rig's default".
     */
    void
    setWarpSchedPolicy(const std::string &policy)
    {
        _warpSchedPolicy = policy;
    }

    const std::string &warpSchedPolicy() const
    {
        return _warpSchedPolicy;
    }

    void
    setMemSchedPolicy(const std::string &policy)
    {
        _memSchedPolicy = policy;
    }

    const std::string &memSchedPolicy() const { return _memSchedPolicy; }
    /** @} */

    /**
     * @{ Memory-trace capture/replay directories (--capture-trace /
     * --replay-trace). As with the policies, the kernel only carries
     * the paths; the SoC rig materializes the writer/replayer. ""
     * disables the mode.
     */
    void
    setCaptureTraceDir(const std::string &dir)
    {
        _captureTraceDir = dir;
    }

    const std::string &captureTraceDir() const
    {
        return _captureTraceDir;
    }

    void
    setReplayTraceDir(const std::string &dir)
    {
        _replayTraceDir = dir;
    }

    const std::string &replayTraceDir() const { return _replayTraceDir; }
    /** @} */

    /** True when every object can serialize right now. */
    bool checkpointSafeNow() const;

  private:
    friend class SimObject;

    void registerObject(SimObject *obj) { _objects.push_back(obj); }
    void unregisterObject(SimObject *obj);

    void attachInstrument(EventInstrument *instrument);

    EventQueue _eq;
    /**
     * Declared first among the registries so it outlives every
     * component (and RetryList) constructed against this Simulation.
     */
    fault::FaultDomain _faultDomain;
    std::vector<SimObject *> _objects;
    StatGroup _statsRoot;
    /** Parent of kernel-owned stats: sim.profile.*, sim.pool.*. */
    StatGroup _simGroup;
    /** Parent of correctness-tooling stats: sim.check.*. */
    StatGroup _checkGroup;
    Scalar _statEventHash;
    /**
     * Null unless built with EMERALD_CHECKS. Declared before the
     * packet pool, which holds a pointer to it, and published on
     * _faultDomain so RetryLists can resolve it.
     */
    std::unique_ptr<check::CheckContext> _checkContext;
    std::unique_ptr<PacketPool> _packetPool;
    std::unique_ptr<EventProfiler> _profiler;
    std::unique_ptr<EventTracer> _tracer;
    std::unique_ptr<check::DeterminismVerifier> _determinism;
    InstrumentChain _instruments;
    bool _profiling = false;
    std::vector<std::unique_ptr<ClockDomain>> _domains;
    std::string _statsOutOnExit;
    std::unique_ptr<fault::FaultInjector> _faultInjector;
    std::unique_ptr<fault::ProgressWatchdog> _watchdog;
    CheckpointRegistry _ckptRegistry;
    std::uint64_t _configFingerprint = 0;
    /** Extra (non-SimObject) checkpoint participants, in order. */
    std::vector<std::pair<std::string, Serializable *>> _extras;
    std::unique_ptr<CheckpointTrigger> _ckptTrigger;
    std::string _restoreDir;
    bool _restoreForce = false;
    bool _restoreLenient = false;
    bool _restored = false;
    std::string _hangReportPath;
    std::string _warpSchedPolicy;
    std::string _memSchedPolicy;
    std::string _captureTraceDir;
    std::string _replayTraceDir;
};

} // namespace emerald

#endif // EMERALD_SIM_SIMULATION_HH
