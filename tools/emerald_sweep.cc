/**
 * @file
 * emerald_sweep: expand a declarative grid spec into one
 * emerald_bench run per point, schedule the runs across host cores,
 * and land every run's stats in one SQLite results store.
 *
 *   emerald_sweep --spec=sweeps/fig12_grid.spec --out=out/sweep \
 *                 [--db=out/sweep/sweep.db] [--jobs=N] \
 *                 [--bench-bin=build/bench/emerald_bench] \
 *                 [--git-sha=$(git rev-parse HEAD)] [--dry-run]
 *
 * Resume is automatic: every child commits its whole run in one DB
 * transaction, so relaunching with the same spec and DB re-runs only
 * the points missing from the store. Relaunching into the same DB
 * with a *different* grid is fatal (spec_hash guard). docs/sweeps.md
 * has the grid grammar and schema.
 */

#include <unistd.h>

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sweep/db.hh"
#include "sweep/grid.hh"
#include "sweep/manifest.hh"
#include "sweep/orchestrator.hh"

using namespace emerald;
using namespace emerald::sweep;

namespace
{

/** Default bench binary: next to this one, in ../bench. */
std::string
defaultBenchBin(const char *argv0)
{
    std::string self = argv0;
    auto slash = self.rfind('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : self.substr(0, slash);
    return dir + "/../bench/emerald_bench";
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);

    std::string specPath = cfg.getString("spec", "");
    fatal_if(specPath.empty(),
             "usage: emerald_sweep --spec=<grid.spec> [--out=dir] "
             "[--db=path] [--jobs=N] [--bench-bin=path] "
             "[--git-sha=sha] [--dry-run]");

    SweepSpec spec = loadSweepSpec(specPath);
    std::vector<SweepPoint> points = expandGrid(spec);
    fatal_if(points.empty(), "sweep spec '%s' expands to no points",
             specPath.c_str());

    OrchestratorOptions opts;
    opts.outDir = cfg.getString("out", "sweep-out");
    opts.dbPath = cfg.getString("db", opts.outDir + "/sweep.db");
    opts.gitSha = cfg.getString("git-sha", "");
    opts.jobs = static_cast<unsigned>(cfg.getU64("jobs", 0));
    opts.dryRun = cfg.getBool("dry-run", false);
    opts.benchBin =
        cfg.getString("bench-bin", defaultBenchBin(argv[0]));
    opts.maxRetries =
        static_cast<unsigned>(cfg.getU64("retries", 2));
    opts.backoffBaseMs =
        static_cast<unsigned>(cfg.getU64("retry-backoff-ms", 200));

    std::string hash = specHash(spec);
    inform("sweep: scenario %s, %zu points (spec %s, hash %s)",
           spec.scenario.c_str(), points.size(), specPath.c_str(),
           hash.c_str());

    if (opts.dryRun) {
        // No DB, no manifest, no bench binary needed: just show the
        // command lines the launch would fork.
        SweepReport report = runSweep(spec, points, opts);
        inform("sweep: dry-run, %zu points", report.total);
        return 0;
    }

    fatal_if(::access(opts.benchBin.c_str(), X_OK) != 0,
             "bench binary '%s' is not executable (pass --bench-bin)",
             opts.benchBin.c_str());
    fatal_if(!sweepDbAvailable(),
             "this build has no SQLite support; emerald_sweep needs "
             "the sqlite3 library at configure time");

    makeDirs(opts.outDir);
    SweepDb db(opts.dbPath);
    opts.db = &db;

    // Resuming into a DB built from a different grid would interleave
    // two sweeps' points; refuse.
    std::string previous = db.getMeta("spec_hash");
    fatal_if(!previous.empty() && previous != hash,
             "results db '%s' was started from a different grid "
             "(spec_hash %s, this spec %s); use a fresh --db/--out",
             opts.dbPath.c_str(), previous.c_str(), hash.c_str());
    db.setMeta("spec_hash", hash);
    db.setMeta("scenario", spec.scenario);
    db.setMeta("spec_path", specPath);

    ManifestInfo manifest;
    manifest.scenario = spec.scenario;
    manifest.specHash = hash;
    manifest.gitSha = opts.gitSha;
    manifest.restoreDir = spec.restoreDir;
    manifest.replayDir = spec.replayDir;
    manifest.points = points;
    writeManifest(opts.outDir + "/manifest.json", manifest);

    std::vector<std::string> done =
        db.doneFingerprints(spec.scenario, opts.gitSha);
    std::vector<SweepPoint> pending = pendingPoints(points, done);
    std::size_t resumed = points.size() - pending.size();
    if (resumed)
        inform("sweep: %zu of %zu points already in %s, resuming "
               "with %zu",
               resumed, points.size(), opts.dbPath.c_str(),
               pending.size());

    SweepReport report = runSweep(spec, pending, opts);
    report.total = points.size();
    report.resumed = resumed;

    inform("sweep: %zu points — %zu resumed, %zu succeeded, %zu "
           "failed (%zu retried, %zu quarantined; db: %s)",
           report.total, report.resumed, report.succeeded,
           report.failed, report.retried, report.quarantined,
           opts.dbPath.c_str());
    return report.failed ? 1 : 0;
}
