file(REMOVE_RECURSE
  "CMakeFiles/emerald_core.dir/core/clipper.cc.o"
  "CMakeFiles/emerald_core.dir/core/clipper.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/dfsl.cc.o"
  "CMakeFiles/emerald_core.dir/core/dfsl.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/energy.cc.o"
  "CMakeFiles/emerald_core.dir/core/energy.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/framebuffer.cc.o"
  "CMakeFiles/emerald_core.dir/core/framebuffer.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/graphics_pipeline.cc.o"
  "CMakeFiles/emerald_core.dir/core/graphics_pipeline.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/hiz.cc.o"
  "CMakeFiles/emerald_core.dir/core/hiz.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/math.cc.o"
  "CMakeFiles/emerald_core.dir/core/math.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/rasterizer.cc.o"
  "CMakeFiles/emerald_core.dir/core/rasterizer.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/shader_builder.cc.o"
  "CMakeFiles/emerald_core.dir/core/shader_builder.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/tc_stage.cc.o"
  "CMakeFiles/emerald_core.dir/core/tc_stage.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/texture.cc.o"
  "CMakeFiles/emerald_core.dir/core/texture.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/trace.cc.o"
  "CMakeFiles/emerald_core.dir/core/trace.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/vpo_unit.cc.o"
  "CMakeFiles/emerald_core.dir/core/vpo_unit.cc.o.d"
  "CMakeFiles/emerald_core.dir/core/wt_mapping.cc.o"
  "CMakeFiles/emerald_core.dir/core/wt_mapping.cc.o.d"
  "libemerald_core.a"
  "libemerald_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
