/**
 * @file
 * The sweep process pool: forks one emerald_bench child per pending
 * grid point, keeps --jobs of them running at once (a finished child
 * immediately frees its slot for the next point — work-stealing
 * across host cores), and streams each child's output to a per-point
 * log. Completion journaling is free: every child commits its whole
 * run to the results DB in one transaction, so a sweep killed at any
 * instant resumes from exactly the committed set (docs/sweeps.md).
 */

#ifndef EMERALD_SWEEP_ORCHESTRATOR_HH
#define EMERALD_SWEEP_ORCHESTRATOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/grid.hh"

namespace emerald
{
namespace sweep
{

class SweepDb;

/** mkdir -p: create @p path and any missing parents; fatal on error. */
void makeDirs(const std::string &path);

struct OrchestratorOptions
{
    /** Path of the emerald_bench binary to fork. */
    std::string benchBin;
    /** SQLite results store every child writes into. */
    std::string dbPath;
    /** Output directory (manifest, per-point logs). */
    std::string outDir;
    /** Recorded with every run ("" when unknown). */
    std::string gitSha;
    /** Concurrent children; 0 means one per host core. */
    unsigned jobs = 0;
    /** Print each point's command line instead of running it. */
    bool dryRun = false;
    /**
     * Per-point retries after the first failure; a point that fails
     * maxRetries+1 times is quarantined (runs.status='quarantined')
     * instead of blocking the sweep (docs/resilience.md).
     */
    unsigned maxRetries = 2;
    /** First per-point retry backoff; doubles per retry. */
    unsigned backoffBaseMs = 200;
    /**
     * Failure journal (borrowed, may be null): classified failures
     * land in run_failures and statuses in runs.status, making the
     * retry budget survive an orchestrator kill -9 — a relaunch
     * resumes half-retried points with their budget partially spent.
     */
    SweepDb *db = nullptr;
};

struct SweepReport
{
    std::size_t total = 0;       ///< points in the expanded grid
    std::size_t resumed = 0;     ///< already committed, not re-run
    std::size_t succeeded = 0;   ///< ran this launch, exit 0
    std::size_t failed = 0;      ///< exhausted their retry budget
    std::size_t retried = 0;     ///< failure-then-relaunch events
    std::size_t quarantined = 0; ///< marked quarantined this launch
};

/**
 * The command line runSweep() would fork for @p point (argv[0] is the
 * bench binary). Exposed for --dry-run and tests.
 */
std::vector<std::string> pointCommand(const SweepSpec &spec,
                                      const SweepPoint &point,
                                      const OrchestratorOptions &opts);

/**
 * Run @p pending (every point of @p spec not already committed) under
 * the process pool. Returns the launch's tally; already-committed
 * points are counted by the caller into SweepReport::resumed.
 */
SweepReport runSweep(const SweepSpec &spec,
                     const std::vector<SweepPoint> &pending,
                     const OrchestratorOptions &opts);

} // namespace sweep
} // namespace emerald

#endif // EMERALD_SWEEP_ORCHESTRATOR_HH
