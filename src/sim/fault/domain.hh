/**
 * @file
 * Per-simulation registry of live RetryLists.
 *
 * The watchdog and the fault injector both need a global view of
 * "who is parked waiting for a retry" — information that otherwise
 * only exists scattered across every MemSink. RetryList registers
 * itself with the innermost FaultDomain at construction (see
 * sim/packet.cc), and the Simulation owns one domain, so walking
 * Simulation::faultDomain().lists() enumerates every retry list in
 * the model with zero per-offer cost.
 *
 * The domain uses the same activation-stack pattern as
 * check::CheckContext: MemSink has no back-pointer to its Simulation,
 * so registration goes through the innermost active domain instead.
 * Lists constructed outside any Simulation (bare tests) simply stay
 * unregistered.
 */

#ifndef EMERALD_SIM_FAULT_DOMAIN_HH
#define EMERALD_SIM_FAULT_DOMAIN_HH

#include <vector>

namespace emerald
{

class RetryList;

namespace fault
{

/** Registry of the RetryLists constructed while this domain is
 *  innermost. Owned by Simulation; see file comment. */
class FaultDomain
{
  public:
    FaultDomain();
    ~FaultDomain();

    FaultDomain(const FaultDomain &) = delete;
    FaultDomain &operator=(const FaultDomain &) = delete;

    /** Innermost active domain, or nullptr outside any Simulation. */
    static FaultDomain *current();

    void registerList(RetryList *list);
    void unregisterList(RetryList *list);

    /** Live lists in construction order (deterministic reports). */
    const std::vector<RetryList *> &lists() const { return _lists; }

  private:
    std::vector<RetryList *> _lists;
};

} // namespace fault
} // namespace emerald

#endif // EMERALD_SIM_FAULT_DOMAIN_HH
