/**
 * @file
 * Textures and the bilinear sampler the TEX instruction uses.
 *
 * Texels are stored RGBA8 in a block-linear layout (8x4 texel blocks,
 * one cache line each) so the timing model sees the 2D locality a
 * real tiled texture layout provides — the L1T behaviour behind the
 * paper's Fig. 18 depends on it.
 */

#ifndef EMERALD_CORE_TEXTURE_HH
#define EMERALD_CORE_TEXTURE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/isa/executor.hh"
#include "sim/types.hh"

namespace emerald::core
{

/** A 2D RGBA8 texture with wrap addressing. */
class Texture
{
  public:
    /** Block layout: 8x4 texels = 128 bytes = one cache line. */
    static constexpr unsigned blockW = 8;
    static constexpr unsigned blockH = 4;

    Texture(unsigned width, unsigned height, Addr base_addr);

    unsigned width() const { return _width; }
    unsigned height() const { return _height; }
    Addr baseAddr() const { return _base; }

    void setTexel(unsigned x, unsigned y, std::uint32_t rgba);
    std::uint32_t texel(unsigned x, unsigned y) const;

    /** Physical address of texel (x, y) in the block-linear layout. */
    Addr texelAddr(unsigned x, unsigned y) const;

    /** Procedural checkerboard fill. */
    void fillChecker(unsigned cell, std::uint32_t a, std::uint32_t b);

    /** Procedural value-noise fill (deterministic by @p seed). */
    void fillNoise(std::uint64_t seed);

  private:
    std::size_t
    index(unsigned x, unsigned y) const
    {
        return std::size_t(y) * _width + x;
    }

    unsigned _width;
    unsigned _height;
    Addr _base;
    std::vector<std::uint32_t> _texels;
};

/** The set of textures bound for a draw; implements TEX sampling. */
class TextureSet : public gpu::isa::TextureSamplerIface
{
  public:
    /** Bind @p texture at @p unit (non-owning). */
    void bind(int unit, Texture *texture);

    Texture *texture(int unit) const;

    void sample(int unit, float u, float v, float rgba[4],
                std::vector<Addr> &texel_addrs) override;

  private:
    std::vector<Texture *> _units;
};

} // namespace emerald::core

#endif // EMERALD_CORE_TEXTURE_HH
