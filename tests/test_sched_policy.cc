/**
 * @file
 * Tests for the scheduling-policy registries (gpu/warp_sched.hh and
 * mem/sched_factory.hh): registry lookup with near-miss diagnostics,
 * the built-in policies' ordering behavior, LRR's bit-exactness
 * against the core's original round-robin scan, and an end-to-end
 * smoke run of every warp policy through the full timing model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/shader_builder.hh"
#include "gpu/warp_sched.hh"
#include "mem/sched_factory.hh"
#include "scenes/shaders.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

/** Run one vecadd kernel on a fresh rig and check the results. */
std::uint64_t
runVecAdd(const SimulationBuilder &builder)
{
    soc::StandaloneGpu rig(64, 64, soc::caseStudy2GpuParams(),
                           soc::caseStudy2MemParams(), builder);
    auto &fmem = rig.functionalMemory();
    unsigned n = 1024;
    Addr a = fmem.allocate(n * 4), b = fmem.allocate(n * 4),
         c = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, static_cast<float>(i));
        fmem.writeF32(b + i * 4, 2.0f);
    }
    core::ShaderBuilder sb;
    gpu::KernelLaunch launch;
    launch.program = sb.buildKernel("vecadd",
                                    scenes::kernelVecAddSource());
    launch.blockX = 128;
    launch.gridX = n / 128;
    launch.memory = &fmem;
    launch.constants = {static_cast<float>(a), static_cast<float>(b),
                        static_cast<float>(c), static_cast<float>(n)};
    bool done = false;
    launch.onDone = [&] { done = true; };
    rig.kernels().launch(std::move(launch));
    EXPECT_TRUE(rig.runUntil([&] { return done; }));
    for (unsigned i = 0; i < n; ++i) {
        EXPECT_FLOAT_EQ(fmem.readF32(c + i * 4),
                        static_cast<float>(i) + 2.0f)
            << i;
    }
    return rig.sim().determinismHash();
}

} // namespace

// Registry lookup --------------------------------------------------------

TEST(WarpSchedRegistry, BuiltinsAreRegistered)
{
    auto policies = gpu::warpSchedulerPolicies();
    for (const char *name : {"lrr", "gto", "wasp"}) {
        EXPECT_NE(std::find(policies.begin(), policies.end(), name),
                  policies.end())
            << name;
    }
}

TEST(WarpSchedRegistry, EmptyNameSelectsDefault)
{
    auto sched = gpu::createWarpScheduler("", {0, 2, 4}, 0);
    ASSERT_NE(sched, nullptr);
    EXPECT_STREQ(sched->policyName(), gpu::defaultWarpSchedPolicy);
}

TEST(WarpSchedRegistry, UnknownPolicySuggestsNearMiss)
{
    EXPECT_DEATH(gpu::createWarpScheduler("lr", {0}, 0),
                 "unknown warp scheduler policy 'lr'.*did you mean "
                 "'lrr'");
    EXPECT_DEATH(gpu::createWarpScheduler("gtoo", {0}, 0),
                 "did you mean 'gto'");
}

TEST(MemSchedRegistry, BuiltinsAreRegistered)
{
    auto policies = mem::memSchedulerPolicies();
    for (const char *name : {"frfcfs", "dash"}) {
        EXPECT_NE(std::find(policies.begin(), policies.end(), name),
                  policies.end())
            << name;
    }
}

TEST(MemSchedRegistry, FrfcfsBundleHasNoCoordinator)
{
    Simulation sim;
    mem::MemSchedContext ctx{sim};
    auto bundle = mem::createMemScheduler("", ctx);
    ASSERT_NE(bundle.scheduler, nullptr);
    EXPECT_EQ(bundle.coordinator, nullptr);
    EXPECT_STREQ(bundle.scheduler->policyName(), "FR-FCFS");
}

TEST(MemSchedRegistry, DashBundleCarriesCoordinator)
{
    Simulation sim;
    mem::MemSchedContext ctx{sim};
    ctx.coordinatorName = "dash";
    auto bundle = mem::createMemScheduler("dash", ctx);
    ASSERT_NE(bundle.scheduler, nullptr);
    ASSERT_NE(bundle.coordinator, nullptr);
    EXPECT_STREQ(bundle.scheduler->policyName(), "DASH");
    bundle.coordinator->shutdown();
}

TEST(MemSchedRegistry, UnknownPolicySuggestsNearMiss)
{
    Simulation sim;
    mem::MemSchedContext ctx{sim};
    EXPECT_DEATH(mem::createMemScheduler("frfcf", ctx),
                 "unknown memory scheduler policy 'frfcf'.*did you "
                 "mean 'frfcfs'");
}

// Ordering behavior ------------------------------------------------------

TEST(WarpSchedPolicies, LrrMatchesOriginalRoundRobinScan)
{
    // Lane 1 of a 2-scheduler core owning {1, 3, 5, 7}: the original
    // code scanned all slots from a per-lane _issuePtr starting at 0,
    // skipping non-owned via modulo, so the first owned slot visited
    // was 1 and after issuing slot 3 the next scan started at 5.
    auto sched = gpu::createWarpScheduler("lrr", {1, 3, 5, 7}, 1);
    std::vector<gpu::Warp> warps(8);
    std::vector<unsigned> order;
    sched->order(warps, order);
    EXPECT_EQ(order, (std::vector<unsigned>{1, 3, 5, 7}));
    sched->issued(3);
    sched->order(warps, order);
    EXPECT_EQ(order, (std::vector<unsigned>{5, 7, 1, 3}));
    sched->issued(7);
    sched->order(warps, order);
    EXPECT_EQ(order, (std::vector<unsigned>{1, 3, 5, 7}));
}

TEST(WarpSchedPolicies, LrrCursorRoundTrips)
{
    auto sched = gpu::createWarpScheduler("lrr", {0, 2}, 0);
    sched->issued(2);
    std::uint64_t state = sched->cursorState();
    auto fresh = gpu::createWarpScheduler("lrr", {0, 2}, 0);
    fresh->setCursorState(state);
    std::vector<gpu::Warp> warps(4);
    std::vector<unsigned> a, b;
    sched->order(warps, a);
    fresh->order(warps, b);
    EXPECT_EQ(a, b);
}

TEST(WarpSchedPolicies, GtoStaysGreedyThenFallsBackToOldest)
{
    auto sched = gpu::createWarpScheduler("gto", {0, 1, 2, 3}, 0);
    std::vector<gpu::Warp> warps(4);
    for (unsigned i = 0; i < 4; ++i) {
        warps[i].valid = true;
        // Launch order: slot 2 oldest, then 0, 3, 1.
        warps[i].launchSeq = std::vector<std::uint64_t>{1, 3, 0, 2}[i];
    }
    std::vector<unsigned> order;
    sched->order(warps, order);
    // No last-issued warp yet: pure oldest-first.
    EXPECT_EQ(order, (std::vector<unsigned>{2, 0, 3, 1}));
    sched->issued(3);
    sched->order(warps, order);
    // Greedy: stay on 3; the rest by age.
    EXPECT_EQ(order, (std::vector<unsigned>{3, 2, 0, 1}));
    // Invalid warps sort last.
    warps[3].valid = false;
    sched->order(warps, order);
    EXPECT_EQ(order[0], 3u); // Still greedy-first; the core skips it.
}

TEST(WarpSchedPolicies, WaspBreaksTiesBySlotForEmptyWarps)
{
    // Invalid warps all have "no memory instruction in window": the
    // lookahead distance ties and the slot index breaks it.
    auto sched = gpu::createWarpScheduler("wasp", {0, 2, 4}, 0);
    std::vector<gpu::Warp> warps(6);
    std::vector<unsigned> order;
    sched->order(warps, order);
    EXPECT_EQ(order, (std::vector<unsigned>{0, 2, 4}));
}

// End-to-end smoke -------------------------------------------------------

TEST(WarpSchedPolicies, EveryPolicyRunsKernelsCorrectly)
{
    for (const std::string &policy : gpu::warpSchedulerPolicies()) {
        SCOPED_TRACE(policy);
        runVecAdd(SimulationBuilder().warpScheduler(policy));
    }
}

TEST(WarpSchedPolicies, DefaultPathIsBitIdenticalToExplicitLrr)
{
    std::uint64_t dflt =
        runVecAdd(SimulationBuilder().checkDeterminism());
    std::uint64_t lrr = runVecAdd(
        SimulationBuilder().checkDeterminism().warpScheduler("lrr"));
    EXPECT_EQ(dflt, lrr);
}
