#include "sim/simulation.hh"

#include <fstream>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "sim/check/context.hh"
#include "sim/check/determinism.hh"
#include "sim/config.hh"
#include "sim/fault/fault_injector.hh"
#include "sim/fault/watchdog.hh"
#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"
#include "sim/sim_object.hh"
#include "sim/simulation_builder.hh"
#include "sim/stats_sink.hh"

namespace emerald
{

/**
 * Fires checkpoint saves from the event-queue instrument chain:
 * between events, after the determinism verifier has folded the
 * just-processed one, so the saved hash covers exactly the
 * pre-checkpoint prefix and the event stream itself is never
 * perturbed (no probe events).
 *
 * One-shot mode (--checkpoint-at) saves straight into the configured
 * directory and stays attached but inert after firing. Recurring
 * mode (--checkpoint-every) re-arms after every save and writes
 * atomically-renamed rotations under the directory instead
 * (Simulation::saveRotatedCheckpoint), keeping only the newest K.
 */
class CheckpointTrigger : public EventInstrument
{
  public:
    CheckpointTrigger(Simulation &sim, Tick at, std::string dir)
        : _sim(sim), _at(at), _dir(std::move(dir))
    {}

    CheckpointTrigger(Simulation &sim, Tick every, std::string dir,
                      unsigned keep)
        : _sim(sim), _at(every), _dir(std::move(dir)), _every(every),
          _keep(keep)
    {}

    void
    onEvent(const std::string &name, Tick when, int priority,
            std::uint64_t wall_ns) override
    {
        (void)name;
        (void)priority;
        (void)wall_ns;
        if (_fired || when < _at)
            return;
        if (!_sim.checkpointSafeNow()) {
            if (!_deferred) {
                _deferred = true;
                inform("checkpoint at tick %llu deferred: waiting for "
                       "a quiescent boundary (open frame or busy "
                       "core)", (unsigned long long)_at);
            }
            return;
        }
        _deferred = false;
        if (_every == 0) {
            _fired = true;
            _sim.saveCheckpoint(_dir);
            return;
        }
        _sim.saveRotatedCheckpoint(_dir, _keep);
        // Re-arm relative to now, not to _at: a long quiescence
        // deferral must not make up for lost rotations in a burst.
        _at = when + _every;
    }

    /**
     * After a restore jumped the clock, push the next firing a full
     * period past the restored tick; without this a recurring
     * trigger would fire at the first post-restore event.
     */
    void
    rebase(Tick now)
    {
        if (_every > 0)
            _at = now + _every;
    }

  private:
    Simulation &_sim;
    Tick _at;
    std::string _dir;
    /** 0 = one-shot (--checkpoint-at) mode. */
    Tick _every = 0;
    unsigned _keep = 0;
    bool _fired = false;
    bool _deferred = false;
};

Simulation::Simulation()
    : _statsRoot(""), _simGroup(_statsRoot, "sim"),
      _checkGroup(_simGroup, "check"),
      _statEventHash(_checkGroup, "event_hash",
                     "FNV hash of the processed event stream "
                     "(53-bit fold; 0 = check disabled)")
{
#ifdef EMERALD_CHECKS
    _checkContext = std::make_unique<check::CheckContext>(
        _eq, &_faultDomain);
    _faultDomain.setCheckContext(_checkContext.get());
#endif
    // Constructed here, not in the init list, so the pool can carry
    // the check context created just above.
    _packetPool =
        std::make_unique<PacketPool>(_simGroup, _checkContext.get());
    _profiler = std::make_unique<EventProfiler>(_simGroup);
}

Simulation::~Simulation()
{
    // Leak/quiescence verification must run while components (and the
    // packet pool) are still alive; a drained event queue is the gate
    // that distinguishes leaks from traffic legally still in flight.
    if (_checkContext)
        _checkContext->onTeardown(_eq.empty());

    // The injector and the checkers die with this object; clear the
    // domain's pointers so nothing resolves them mid-teardown.
    _faultDomain.setInjector(nullptr);
    _faultDomain.setCheckContext(nullptr);

    flushStatsSink();
}

void
Simulation::flushStatsSink()
{
    if (_statsOutOnExit.empty())
        return;
    auto sink = makeTreeStatsSink(_statsOutOnExit);
    sink->beginRun(RunInfo{});
    sink->addStatsTree("sim", _statsRoot);
    sink->finishRun();
}

void
Simulation::unregisterObject(SimObject *obj)
{
    auto it = std::find(_objects.begin(), _objects.end(), obj);
    if (it != _objects.end())
        _objects.erase(it);
}

void
Simulation::configureFaults(const std::string &plan_text,
                            std::uint64_t seed)
{
    fault::FaultPlan plan = fault::FaultPlan::parse(plan_text);
    if (plan.empty())
        return;
    panic_if(_faultInjector != nullptr,
             "configureFaults called twice on one Simulation");
    _faultInjector = std::make_unique<fault::FaultInjector>(
        _eq, _simGroup, std::move(plan), seed);
    // Publish on the domain: this is how the protocol seams
    // (offer/wake/stall/link-delay) find the injector.
    _faultDomain.setInjector(_faultInjector.get());
}

void
Simulation::enableWatchdog(Tick budget, fault::WatchdogMode mode)
{
    if (_watchdog)
        return;
    _watchdog = std::make_unique<fault::ProgressWatchdog>(
        *this, _simGroup, budget, mode);
    _watchdog->arm();
}

void
Simulation::enableDeterminismCheck()
{
    if (_determinism)
        return;
    _determinism = std::make_unique<check::DeterminismVerifier>(
        _statEventHash);
    attachInstrument(_determinism.get());
}

std::uint64_t
Simulation::determinismHash() const
{
    return _determinism ? _determinism->hash() : 0;
}

ClockDomain &
Simulation::createClockDomain(double mhz, const std::string &name)
{
    _domains.push_back(
        std::make_unique<ClockDomain>(_eq, periodFromMHz(mhz), name));
    return *_domains.back();
}

ClockDomain *
Simulation::findClockDomain(const std::string &name)
{
    for (const auto &domain : _domains) {
        if (domain->name() == name)
            return domain.get();
    }
    return nullptr;
}

ClockDomain &
Simulation::clockDomain(const std::string &name)
{
    ClockDomain *domain = findClockDomain(name);
    fatal_if(!domain, "no clock domain named '%s'", name.c_str());
    return *domain;
}

void
Simulation::attachInstrument(EventInstrument *instrument)
{
    _instruments.add(instrument);
    _eq.setInstrument(&_instruments);
}

void
Simulation::enableProfiling()
{
    if (_profiling)
        return;
    _profiling = true;
    attachInstrument(_profiler.get());
}

EventTracer &
Simulation::enableTracing(const std::string &path)
{
    if (!_tracer) {
        _tracer = std::make_unique<EventTracer>(path);
        attachInstrument(_tracer.get());
    }
    return *_tracer;
}

void
Simulation::configureObservability(const Config &cfg)
{
    SimulationBuilder().observability(cfg).applyTo(*this);
}

void
Simulation::registerSerializable(const std::string &name,
                                 Serializable &obj)
{
    for (const auto &[existing, ptr] : _extras)
        panic_if(existing == name,
                 "registerSerializable: duplicate name '%s'",
                 name.c_str());
    _extras.emplace_back(name, &obj);
}

bool
Simulation::checkpointSafeNow() const
{
    for (const SimObject *obj : _objects) {
        if (!obj->checkpointSafe())
            return false;
    }
    for (const auto &[name, obj] : _extras) {
        if (!obj->checkpointSafe())
            return false;
    }
    return true;
}

void
Simulation::scheduleCheckpoint(Tick at, const std::string &dir)
{
    panic_if(_ckptTrigger != nullptr,
             "scheduleCheckpoint called twice on one Simulation");
    fatal_if(dir.empty(), "--checkpoint-at needs a checkpoint "
             "directory (--checkpoint-dir)");
    _ckptTrigger = std::make_unique<CheckpointTrigger>(*this, at, dir);
    attachInstrument(_ckptTrigger.get());
}

void
Simulation::scheduleRecurringCheckpoint(Tick every,
                                        const std::string &dir,
                                        unsigned keep)
{
    panic_if(_ckptTrigger != nullptr,
             "scheduleRecurringCheckpoint: a checkpoint trigger is "
             "already armed on this Simulation");
    fatal_if(every == 0,
             "--checkpoint-every needs a nonzero period");
    fatal_if(dir.empty(), "--checkpoint-every needs a checkpoint "
             "directory (--checkpoint-dir)");
    fatal_if(keep == 0, "--checkpoint-keep must be at least 1");
    _ckptTrigger =
        std::make_unique<CheckpointTrigger>(*this, every, dir, keep);
    attachInstrument(_ckptTrigger.get());
}

void
Simulation::saveRotatedCheckpoint(const std::string &base,
                                  unsigned keep)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(base, ec);
    fatal_if(static_cast<bool>(ec),
             "cannot create checkpoint directory '%s': %s",
             base.c_str(), ec.message().c_str());

    // Write into a scratch directory first; only a complete
    // checkpoint gets renamed into place, so a reader can never
    // observe a torn auto-* rotation (rename(2) is atomic).
    std::string tmp = base + "/.tmp-auto";
    fs::remove_all(tmp, ec);
    saveCheckpoint(tmp);

    std::string final_name =
        strprintf("auto-%020llu", (unsigned long long)_eq.curTick());
    std::string final_dir = base + "/" + final_name;
    fs::remove_all(final_dir, ec);
    fs::rename(tmp, final_dir, ec);
    fatal_if(static_cast<bool>(ec),
             "cannot publish checkpoint rotation '%s': %s",
             final_dir.c_str(), ec.message().c_str());

    // Prune to the newest `keep` rotations. The zero-padded tick in
    // the name makes lexical order tick order.
    std::vector<std::string> autos;
    for (const auto &entry : fs::directory_iterator(base, ec)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("auto-", 0) == 0)
            autos.push_back(name);
    }
    std::sort(autos.begin(), autos.end());
    while (autos.size() > keep) {
        fs::remove_all(base + "/" + autos.front(), ec);
        autos.erase(autos.begin());
    }
}

void
Simulation::saveCheckpoint(const std::string &dir)
{
    fatal_if(!checkpointSafeNow(),
             "saveCheckpoint('%s'): a component is mid-operation and "
             "cannot serialize; use --checkpoint-at, which waits for "
             "a quiescent boundary", dir.c_str());

    CheckpointWriter w(dir, _configFingerprint, _eq.curTick(),
                       _eq.numProcessed());

    // Kernel state first: the pending-event table...
    CheckpointOut &events = w.section("sim.events");
    auto live = _eq.liveEventsSorted();
    events.putU64("num_events", live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
        const auto &e = live[i];
        std::string ev_name = _ckptRegistry.eventName(*e.event);
        fatal_if(ev_name.empty(),
                 "checkpoint: pending event '%s' (tick %llu) is not "
                 "in the checkpoint registry — its owner must call "
                 "registerCheckpointEvent(), or (watchdog/fault "
                 "timers) cannot be armed across a checkpoint",
                 e.event->name().c_str(), (unsigned long long)e.when);
        std::string key = strprintf("e%zu", i);
        events.putStr(key + ".name", ev_name);
        events.putTick(key + ".when", e.when);
    }

    // ...the packet pool's internal shadow of its high-water stat...
    CheckpointOut &pool = w.section("sim.pool");
    pool.putU64("live_high_water", _packetPool->liveHighWater());

    // ...and the determinism verifier, so a restored run resumes the
    // cold run's hash stream (the warm-start acceptance oracle).
    CheckpointOut &chk = w.section("sim.check");
    chk.putBool("determinism", _determinism != nullptr);
    if (_determinism) {
        chk.putU64("hash", _determinism->hash());
        chk.putU64("num_events", _determinism->numEvents());
    }

    for (const SimObject *obj : _objects)
        obj->serialize(w.section(obj->name()));
    for (const auto &[name, extra] : _extras)
        extra->serialize(w.section(name));

    // The whole stats tree in one section, keyed by full stat path.
    _statsRoot.serializeStats(w.section("stats"));

    w.finalize();

    // Boundary stats snapshot: lets a warm run's deltas be diffed
    // against the cold run's measured region (tools/check_restore.py).
    std::string stats_path = dir + "/stats.json";
    std::ofstream stats(stats_path);
    if (stats.is_open())
        dumpStatsJson(stats);
    else
        warn("cannot write '%s'", stats_path.c_str());

    inform("checkpoint written to '%s' at tick %llu (%llu events, "
           "%zu live packets)", dir.c_str(),
           (unsigned long long)_eq.curTick(),
           (unsigned long long)_eq.numProcessed(),
           static_cast<std::size_t>(_packetPool->live()));
}

namespace
{

/**
 * Pick the directory restoreCheckpoint() actually reads. @p base is
 * either a checkpoint directory itself (manifest.json present) or a
 * rotation base holding auto-<tick> subdirectories, in which case the
 * newest rotation that passes the integrity probe wins and corrupt
 * ones are skipped with a warning — a torn or bit-rotted rotation is
 * recoverable, not fatal. Returns "" for a lenient cold start.
 */
std::string
resolveRestoreSource(const std::string &base, bool lenient)
{
    namespace fs = std::filesystem;
    std::error_code ec;

    if (fs::exists(base + "/manifest.json", ec)) {
        CkptProbe probe = probeCheckpoint(base);
        if (probe.ok())
            return base;
        if (!lenient) {
            fatal("checkpoint '%s' is damaged (%s): %s",
                  base.c_str(), ckptIntegrityName(probe.status),
                  probe.detail.c_str());
        }
        warn("checkpoint '%s' is damaged (%s): %s — starting cold",
             base.c_str(), ckptIntegrityName(probe.status),
             probe.detail.c_str());
        return "";
    }

    std::vector<std::string> autos;
    for (const auto &entry : fs::directory_iterator(base, ec)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("auto-", 0) == 0)
            autos.push_back(name);
    }
    std::sort(autos.rbegin(), autos.rend());
    for (const std::string &name : autos) {
        std::string dir = base + "/" + name;
        CkptProbe probe = probeCheckpoint(dir);
        if (probe.ok())
            return dir;
        warn("ckpt-corrupt: skipping rotation '%s' (%s): %s",
             dir.c_str(), ckptIntegrityName(probe.status),
             probe.detail.c_str());
    }

    if (lenient) {
        warn("restore directory '%s' holds no usable checkpoint — "
             "starting cold", base.c_str());
        return "";
    }
    fatal("restore directory '%s' holds no usable checkpoint (no "
          "manifest.json and no intact auto-* rotation)",
          base.c_str());
}

} // namespace

void
Simulation::restoreCheckpoint()
{
    panic_if(_restoreDir.empty(),
             "restoreCheckpoint without setRestoreSpec");
    panic_if(_restored, "restoreCheckpoint called twice");
    panic_if(_eq.numProcessed() != 0,
             "restoreCheckpoint after events have run");

    std::string source =
        resolveRestoreSource(_restoreDir, _restoreLenient);
    if (source.empty()) {
        // Lenient cold start: clear the spec so restorePending()
        // turns false and the run proceeds from scratch.
        _restoreDir.clear();
        return;
    }

    CheckpointReader r(source);
    if (r.configFingerprint() != _configFingerprint) {
        if (_restoreForce) {
            warn("checkpoint '%s' was taken under config fingerprint "
                 "%016llx but this run is %016llx; proceeding because "
                 "of --restore-force", source.c_str(),
                 (unsigned long long)r.configFingerprint(),
                 (unsigned long long)_configFingerprint);
        } else {
            fatal("checkpoint '%s' was taken under config fingerprint "
                  "%016llx but this run is %016llx — restoring state "
                  "into a different configuration would be silently "
                  "corrupt. Re-run with the checkpoint's "
                  "configuration, or pass --restore-force to "
                  "override.", source.c_str(),
                  (unsigned long long)r.configFingerprint(),
                  (unsigned long long)_configFingerprint);
        }
    }

    // Topology constructors pre-schedule events (clock ticks, DASH
    // quantum timers); drop them all — the checkpoint's pending set
    // is re-scheduled below — then jump the clock.
    _eq.clearForRestore();
    _eq.restoreTime(r.tick(), r.numProcessed());

    for (SimObject *obj : _objects) {
        CheckpointIn in = r.section(obj->name());
        obj->unserialize(in);
    }
    for (const auto &[name, extra] : _extras) {
        CheckpointIn in = r.section(name);
        extra->unserialize(in);
    }

    // Stats after objects: component restore re-allocates in-flight
    // packets, which inflates sim.pool.* — overwriting the tree with
    // the checkpoint's values puts every counter back to the cold
    // run's boundary state.
    {
        CheckpointIn in = r.section("stats");
        _statsRoot.unserializeStats(in);
    }
    {
        CheckpointIn in = r.section("sim.pool");
        _packetPool->restoreLiveHighWater(
            in.getU64("live_high_water"));
    }
    {
        CheckpointIn in = r.section("sim.check");
        if (_determinism) {
            fatal_if(!in.getBool("determinism"),
                     "--check-determinism is on but checkpoint '%s' "
                     "was taken without it; the event hash cannot be "
                     "resumed. Re-take the checkpoint with "
                     "--check-determinism.", source.c_str());
            _determinism->restoreState(in.getU64("hash"),
                                       in.getU64("num_events"));
        }
    }

    // Re-schedule the pending events by registry name. The entries
    // were saved in service order, so scheduling them in sequence
    // reproduces the cold run's same-tick tie-breaks with fresh
    // sequence numbers.
    {
        CheckpointIn in = r.section("sim.events");
        std::uint64_t n = in.getU64("num_events");
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string key =
                strprintf("e%llu", (unsigned long long)i);
            std::string ev_name = in.getStr(key + ".name");
            Event *ev = _ckptRegistry.findEvent(ev_name);
            fatal_if(!ev,
                     "checkpoint restore: no event named '%s' in this "
                     "topology — the checkpointed configuration does "
                     "not match", ev_name.c_str());
            _eq.schedule(*ev, in.getTick(key + ".when"));
        }
    }

    // A recurring trigger must not fire (and overwrite the rotation
    // it just read) at the first post-restore event.
    if (_ckptTrigger)
        _ckptTrigger->rebase(_eq.curTick());

    _restored = true;
    inform("restored checkpoint '%s': tick %llu, %llu events "
           "processed, %zu live packets", source.c_str(),
           (unsigned long long)r.tick(),
           (unsigned long long)r.numProcessed(),
           static_cast<std::size_t>(_packetPool->live()));
}

} // namespace emerald
