file(REMOVE_RECURSE
  "CMakeFiles/table_configs.dir/table_configs.cpp.o"
  "CMakeFiles/table_configs.dir/table_configs.cpp.o.d"
  "table_configs"
  "table_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
