# Empty compiler generated dependencies file for emerald_noc.
# This may be replaced when dependencies are built.
