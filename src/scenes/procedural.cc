#include "scenes/procedural.hh"

#include <cmath>

#include "sim/random.hh"

namespace emerald::scenes
{

using core::Mat4;
using core::Vec2;
using core::Vec3;

namespace
{

constexpr float pi = 3.14159265358979f;

/** Add a lat-long patch between two parametric rows. */
void
addPatchRow(Mesh &mesh, const std::vector<Vec3> &p0,
            const std::vector<Vec3> &n0, const std::vector<Vec3> &p1,
            const std::vector<Vec3> &n1, float v0, float v1)
{
    const std::size_t segs = p0.size() - 1;
    for (std::size_t s = 0; s < segs; ++s) {
        float u0 = static_cast<float>(s) / static_cast<float>(segs);
        float u1 = static_cast<float>(s + 1) / static_cast<float>(segs);
        Vec3 pa[3] = {p0[s], p1[s], p1[s + 1]};
        Vec3 na[3] = {n0[s], n1[s], n1[s + 1]};
        Vec2 ta[3] = {{u0, v0}, {u0, v1}, {u1, v1}};
        mesh.addTriangle(pa, na, ta);
        Vec3 pb[3] = {p0[s], p1[s + 1], p0[s + 1]};
        Vec3 nb[3] = {n0[s], n1[s + 1], n0[s + 1]};
        Vec2 tb[3] = {{u0, v0}, {u1, v1}, {u1, v0}};
        mesh.addTriangle(pb, nb, tb);
    }
}

} // namespace

Mesh
makeBox(float sx, float sy, float sz)
{
    Mesh mesh;
    float x = sx * 0.5f, y = sy * 0.5f, z = sz * 0.5f;
    // +z face (counter-clockwise seen from outside).
    mesh.addQuad({-x, -y, z}, {x, -y, z}, {x, y, z}, {-x, y, z},
                 {0, 0, 1});
    // -z
    mesh.addQuad({x, -y, -z}, {-x, -y, -z}, {-x, y, -z}, {x, y, -z},
                 {0, 0, -1});
    // +x
    mesh.addQuad({x, -y, z}, {x, -y, -z}, {x, y, -z}, {x, y, z},
                 {1, 0, 0});
    // -x
    mesh.addQuad({-x, -y, -z}, {-x, -y, z}, {-x, y, z}, {-x, y, -z},
                 {-1, 0, 0});
    // +y
    mesh.addQuad({-x, y, z}, {x, y, z}, {x, y, -z}, {-x, y, -z},
                 {0, 1, 0});
    // -y
    mesh.addQuad({-x, -y, -z}, {x, -y, -z}, {x, -y, z}, {-x, -y, z},
                 {0, -1, 0});
    return mesh;
}

Mesh
makeSphere(float radius, unsigned segments, unsigned rings)
{
    Mesh mesh;
    std::vector<Vec3> prev_p, prev_n;
    for (unsigned r = 0; r <= rings; ++r) {
        float phi = pi * static_cast<float>(r) /
                    static_cast<float>(rings);
        std::vector<Vec3> row_p, row_n;
        for (unsigned s = 0; s <= segments; ++s) {
            float theta = 2.0f * pi * static_cast<float>(s) /
                          static_cast<float>(segments);
            Vec3 n{std::sin(phi) * std::cos(theta), std::cos(phi),
                   std::sin(phi) * std::sin(theta)};
            row_p.push_back(n * radius);
            row_n.push_back(n);
        }
        if (r > 0) {
            float v0 = static_cast<float>(r - 1) /
                       static_cast<float>(rings);
            float v1 = static_cast<float>(r) /
                       static_cast<float>(rings);
            addPatchRow(mesh, prev_p, prev_n, row_p, row_n, v0, v1);
        }
        prev_p = std::move(row_p);
        prev_n = std::move(row_n);
    }
    return mesh;
}

Mesh
makePlane(float size, unsigned divisions)
{
    Mesh mesh;
    float half = size * 0.5f;
    float step = size / static_cast<float>(divisions);
    for (unsigned j = 0; j < divisions; ++j) {
        for (unsigned i = 0; i < divisions; ++i) {
            float x0 = -half + static_cast<float>(i) * step;
            float z0 = -half + static_cast<float>(j) * step;
            mesh.addQuad({x0, 0, z0 + step}, {x0 + step, 0, z0 + step},
                         {x0 + step, 0, z0}, {x0, 0, z0}, {0, 1, 0});
        }
    }
    return mesh;
}

Mesh
makeCylinder(float radius, float height, unsigned segments)
{
    Mesh mesh;
    std::vector<Vec3> p0, n0, p1, n1;
    for (unsigned s = 0; s <= segments; ++s) {
        float theta = 2.0f * pi * static_cast<float>(s) /
                      static_cast<float>(segments);
        Vec3 n{std::cos(theta), 0.0f, std::sin(theta)};
        p0.push_back({n.x * radius, 0.0f, n.z * radius});
        n0.push_back(n);
        p1.push_back({n.x * radius, height, n.z * radius});
        n1.push_back(n);
    }
    addPatchRow(mesh, p0, n0, p1, n1, 0.0f, 1.0f);
    return mesh;
}

Mesh
makeTorus(float major, float minor, unsigned segs_major,
          unsigned segs_minor)
{
    Mesh mesh;
    std::vector<Vec3> prev_p, prev_n;
    for (unsigned r = 0; r <= segs_minor; ++r) {
        float phi = 2.0f * pi * static_cast<float>(r) /
                    static_cast<float>(segs_minor);
        std::vector<Vec3> row_p, row_n;
        for (unsigned s = 0; s <= segs_major; ++s) {
            float theta = 2.0f * pi * static_cast<float>(s) /
                          static_cast<float>(segs_major);
            Vec3 center{major * std::cos(theta), 0.0f,
                        major * std::sin(theta)};
            Vec3 n{std::cos(phi) * std::cos(theta), std::sin(phi),
                   std::cos(phi) * std::sin(theta)};
            row_p.push_back(center + n * minor);
            row_n.push_back(n);
        }
        if (r > 0) {
            addPatchRow(mesh, prev_p, prev_n, row_p, row_n,
                        static_cast<float>(r - 1) /
                            static_cast<float>(segs_minor),
                        static_cast<float>(r) /
                            static_cast<float>(segs_minor));
        }
        prev_p = std::move(row_p);
        prev_n = std::move(row_n);
    }
    return mesh;
}

Mesh
makeTeapotish(unsigned segments, unsigned rings)
{
    // A vase-like profile: radius as a function of height.
    Mesh mesh;
    auto profile = [](float t) -> float {
        // Body bulge + neck + lip.
        float body = 0.55f * std::sin(t * pi * 0.85f + 0.15f);
        float lip = t > 0.92f ? (t - 0.92f) * 2.2f : 0.0f;
        return 0.12f + body + lip;
    };
    std::vector<Vec3> prev_p, prev_n;
    for (unsigned r = 0; r <= rings; ++r) {
        float t = static_cast<float>(r) / static_cast<float>(rings);
        float y = t * 1.2f;
        float radius = profile(t);
        std::vector<Vec3> row_p, row_n;
        for (unsigned s = 0; s <= segments; ++s) {
            float theta = 2.0f * pi * static_cast<float>(s) /
                          static_cast<float>(segments);
            Vec3 radial{std::cos(theta), 0.0f, std::sin(theta)};
            row_p.push_back(
                {radial.x * radius, y, radial.z * radius});
            row_n.push_back(core::normalize(
                {radial.x, 0.25f, radial.z}));
        }
        if (r > 0) {
            addPatchRow(mesh, prev_p, prev_n, row_p, row_n,
                        static_cast<float>(r - 1) /
                            static_cast<float>(rings),
                        static_cast<float>(r) /
                            static_cast<float>(rings));
        }
        prev_p = std::move(row_p);
        prev_n = std::move(row_n);
    }
    return mesh;
}

Mesh
makeBlobHead(float radius, unsigned segments, unsigned rings,
             float displacement, std::uint64_t seed)
{
    Mesh mesh = makeSphere(radius, segments, rings);
    // Deterministic lumpy displacement along normals.
    (void)seed;
    Mesh out;
    const auto &d = mesh.data();
    for (std::size_t v = 0; v + 3 * vertexFloats <= d.size();
         v += 3 * vertexFloats) {
        Vec3 p[3], n[3];
        Vec2 uv[3];
        for (int i = 0; i < 3; ++i) {
            const float *f = d.data() + v +
                             static_cast<std::size_t>(i) * vertexFloats;
            Vec3 pos{f[0], f[1], f[2]};
            Vec3 nrm{f[3], f[4], f[5]};
            float bump = std::sin(pos.x * 5.1f) *
                             std::cos(pos.y * 4.3f) *
                             std::sin(pos.z * 3.7f + 1.3f);
            p[i] = pos + nrm * (bump * displacement);
            n[i] = nrm;
            uv[i] = {f[6], f[7]};
        }
        out.addTriangle(p, n, uv);
    }
    return out;
}

Mesh
makeSpotish(unsigned segments, unsigned rings)
{
    Mesh body = makeSphere(0.6f, segments, rings);
    body.transform(Mat4::scale({1.6f, 0.9f, 0.8f}));
    Mesh head = makeSphere(0.32f, segments / 2, rings / 2);
    head.transform(Mat4::translate({1.0f, 0.35f, 0.0f}));
    body.append(head);
    for (int i = 0; i < 4; ++i) {
        Mesh leg = makeCylinder(0.09f, 0.7f, 8);
        float lx = (i < 2) ? 0.55f : -0.55f;
        float lz = (i % 2) ? 0.28f : -0.28f;
        leg.transform(Mat4::translate({lx, -0.95f, lz}));
        body.append(leg);
    }
    return body;
}

Mesh
makeInterior(unsigned columns_per_side, unsigned column_segments)
{
    Mesh scene = makePlane(20.0f, 12); // Floor.
    Mesh ceiling = makePlane(20.0f, 8);
    ceiling.transform(Mat4::translate({0.0f, 6.0f, 0.0f}) *
                      Mat4::rotateZ(pi)); // Face down.
    scene.append(ceiling);

    for (unsigned i = 0; i < columns_per_side; ++i) {
        float z = -8.0f + 16.0f * static_cast<float>(i) /
                              static_cast<float>(columns_per_side - 1);
        for (int side = -1; side <= 1; side += 2) {
            Mesh column = makeCylinder(0.45f, 6.0f, column_segments);
            column.transform(
                Mat4::translate({3.2f * static_cast<float>(side),
                                 0.0f, z}));
            scene.append(column);
            // Capital.
            Mesh cap = makeBox(1.2f, 0.4f, 1.2f);
            cap.transform(
                Mat4::translate({3.2f * static_cast<float>(side),
                                 5.9f, z}));
            scene.append(cap);
        }
        // Vault arch between the column pair.
        Mesh arch = makeTorus(3.2f, 0.3f, 24, 8);
        arch.transform(Mat4::translate({0.0f, 5.6f, z}) *
                       Mat4::rotateX(pi * 0.5f));
        scene.append(arch);
    }
    return scene;
}

Mesh
makeChair(unsigned tessellation)
{
    Mesh chair;
    // Legs.
    for (int i = 0; i < 4; ++i) {
        Mesh leg = makeCylinder(0.06f, 0.9f,
                                std::max(6u, tessellation / 4));
        float lx = (i < 2) ? 0.45f : -0.45f;
        float lz = (i % 2) ? 0.45f : -0.45f;
        leg.transform(Mat4::translate({lx, 0.0f, lz}));
        chair.append(leg);
    }
    // Seat: slightly tessellated slab.
    Mesh seat = makePlane(1.1f, std::max(2u, tessellation / 8));
    seat.transform(Mat4::translate({0.0f, 0.9f, 0.0f}));
    chair.append(seat);
    Mesh seat_body = makeBox(1.1f, 0.1f, 1.1f);
    seat_body.transform(Mat4::translate({0.0f, 0.85f, 0.0f}));
    chair.append(seat_body);
    // Back rest: curved lattice of bars.
    for (unsigned b = 0; b < 5; ++b) {
        Mesh bar = makeCylinder(0.04f, 0.9f,
                                std::max(6u, tessellation / 4));
        bar.transform(
            Mat4::translate({-0.4f + 0.2f * static_cast<float>(b),
                             0.9f, -0.5f}));
        chair.append(bar);
    }
    Mesh top = makeBox(1.1f, 0.15f, 0.1f);
    top.transform(Mat4::translate({0.0f, 1.85f, -0.5f}));
    chair.append(top);
    return chair;
}

Mesh
makeTriangleField(unsigned count, std::uint64_t seed)
{
    Mesh mesh;
    Random rng(seed);
    for (unsigned i = 0; i < count; ++i) {
        float cx = static_cast<float>(rng.uniform()) * 8.0f - 4.0f;
        float cy = static_cast<float>(rng.uniform()) * 5.0f - 2.5f;
        float cz = static_cast<float>(rng.uniform()) * 4.0f - 2.0f;
        float size = 0.15f + static_cast<float>(rng.uniform()) * 0.5f;
        Vec3 p[3];
        for (int v = 0; v < 3; ++v) {
            p[v] = {cx + (static_cast<float>(rng.uniform()) - 0.5f) *
                             size * 2.0f,
                    cy + (static_cast<float>(rng.uniform()) - 0.5f) *
                             size * 2.0f,
                    cz};
        }
        Vec3 n[3] = {{0, 0, 1}, {0, 0, 1}, {0, 0, 1}};
        Vec2 uv[3] = {{0, 0}, {1, 0}, {0.5f, 1}};
        mesh.addTriangle(p, n, uv);
    }
    return mesh;
}

} // namespace emerald::scenes
