/**
 * @file
 * Unified-model concurrency (extension): the paper's core claim is
 * one microarchitecture for graphics *and* GPGPU. This bench
 * quantifies their interaction when run concurrently on the same
 * SIMT cores: kernel latency alone vs. during a frame, and frame
 * time alone vs. with the kernel streaming in the background.
 */

#include "harness.hh"
#include "registry.hh"
#include "scenes/shaders.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

struct Result
{
    double frame_cycles = 0.0;
    double kernel_cycles = 0.0;
};

Result
run(bool with_frame, bool with_kernel, unsigned n)
{
    soc::StandaloneGpu rig(256, 192);
    core::ShaderBuilder builder;
    mem::FunctionalMemory &fmem = rig.functionalMemory();

    scenes::SceneRenderer scene(
        rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W4_Suzanne), fmem);

    Addr a = fmem.allocate(n * 4), b = fmem.allocate(n * 4),
         c = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, 1.0f);
        fmem.writeF32(b + i * 4, 2.0f);
    }

    Result out;
    bool frame_done = !with_frame;
    bool kernel_done = !with_kernel;
    Tick start = rig.sim().curTick();

    if (with_frame) {
        scene.renderFrame(0, [&](const core::FrameStats &s) {
            out.frame_cycles = static_cast<double>(s.cycles);
            frame_done = true;
        });
    }
    if (with_kernel) {
        gpu::KernelLaunch launch;
        launch.program = builder.buildKernel(
            "vecadd", scenes::kernelVecAddSource());
        launch.blockX = 128;
        launch.gridX = n / 128;
        launch.memory = &fmem;
        launch.constants = {static_cast<float>(a),
                            static_cast<float>(b),
                            static_cast<float>(c),
                            static_cast<float>(n)};
        launch.onDone = [&] {
            out.kernel_cycles = static_cast<double>(
                (rig.sim().curTick() - start) / 1000);
            kernel_done = true;
        };
        rig.kernels().launch(std::move(launch));
    }
    if (!rig.runUntil([&] { return frame_done && kernel_done; }))
        fatal("concurrency run stalled");
    return out;
}

} // namespace

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "ablation_concurrency");
    const Config &cfg = harness.cfg;
    unsigned n = static_cast<unsigned>(cfg.getU64("n", 65536));
    BenchResults &results = *harness.results;

    std::printf("=== Ablation: graphics + compute sharing the SIMT "
                "cores ===\n");

    Result frame_only = run(true, false, n);
    Result kernel_only = run(false, true, n);
    Result both = run(true, true, n);

    std::printf("frame alone : %10.0f cycles\n",
                frame_only.frame_cycles);
    std::printf("frame+kernel: %10.0f cycles (%.2fx)\n",
                both.frame_cycles,
                both.frame_cycles / frame_only.frame_cycles);
    std::printf("kernel alone: %10.0f cycles\n",
                kernel_only.kernel_cycles);
    std::printf("kernel+frame: %10.0f cycles (%.2fx)\n",
                both.kernel_cycles,
                both.kernel_cycles / kernel_only.kernel_cycles);
    results.record("frame_alone_cycles", frame_only.frame_cycles);
    results.record("frame_shared_cycles", both.frame_cycles);
    results.record("frame_slowdown",
                   both.frame_cycles / frame_only.frame_cycles);
    results.record("kernel_alone_cycles", kernel_only.kernel_cycles);
    results.record("kernel_shared_cycles", both.kernel_cycles);
    results.record("kernel_slowdown",
                   both.kernel_cycles / kernel_only.kernel_cycles);
    std::printf("\nshape: both directions slow down (shared cores, "
                "caches and DRAM) - the contention a unified model "
                "exposes and split simulators cannot\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "ablation_concurrency",
    .desc = "Ablation: graphics + compute sharing the SIMT cores",
    .axes = {"n"},
    .expectedShape = "both directions slow down on shared cores/caches/DRAM",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
