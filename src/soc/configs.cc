#include "soc/configs.hh"

#include "mem/sched_factory.hh"
#include "sim/logging.hh"

namespace emerald::soc
{

void
applyNpuConfig(SocParams &p, const Config &cfg)
{
    p.npuEnabled = cfg.getBool("npu", p.npuEnabled);
    unsigned tile = static_cast<unsigned>(
        cfg.getU64("npu-tile", p.npuRows));
    p.npuRows = tile;
    p.npuCols = tile;
    p.npuModel = cfg.getString("npu-model", p.npuModel);
    double fps = cfg.getDouble("npu-fps", 0.0);
    if (fps > 0.0)
        p.npuFramePeriod = ticksFromMs(1000.0 / fps);
    p.npuFrames = static_cast<unsigned>(
        cfg.getU64("npu-frames", p.npuFrames));
    p.npuQueueDepth = static_cast<unsigned>(
        cfg.getU64("npu-queue-depth", p.npuQueueDepth));
    p.npuDmaOutstanding = static_cast<unsigned>(
        cfg.getU64("npu-dma-outstanding", p.npuDmaOutstanding));
    p.npuScratchKB = static_cast<unsigned>(
        cfg.getU64("npu-scratch-kb", p.npuScratchKB));
    fatal_if(p.npuEnabled && (p.npuRows == 0 || p.npuCols == 0),
             "--npu-tile must be >= 1");
}

gpu::GpuTopParams
caseStudy1GpuParams()
{
    gpu::GpuTopParams p = gpu::defaultGpuParams();
    // Paper Table 5: 4 SIMT cores (128 CUDA cores), 950 MHz, L1D
    // 16 KB / L1T 64 KB / L1Z 32 KB (4-way, 128 B), shared 128 KB L2.
    p.numClusters = 4;
    p.coresPerCluster = 1;
    p.core.l1d = {16 * 1024, 4, 128, 12, 16, 8, 16};
    p.core.l1t = {64 * 1024, 4, 128, 16, 16, 8, 16};
    p.core.l1z = {32 * 1024, 4, 128, 12, 16, 8, 16};
    p.core.l1c = {16 * 1024, 4, 128, 8, 16, 8, 16};
    p.core.l1i = {4 * 1024, 4, 128, 4, 8, 4, 8};
    p.l2 = {128 * 1024, 8, 128, 24, 48, 8, 32};
    return p;
}

gpu::GpuTopParams
caseStudy2GpuParams()
{
    // Paper Table 7 is the default parameter set.
    return gpu::defaultGpuParams();
}

mem::MemorySystemParams
caseStudy2MemParams()
{
    mem::MemorySystemParams mp;
    mp.geom.channels = 4;
    mp.geom.banks = 8;
    mp.geom.rowBytes = 4096;
    mp.geom.lineSize = 128;
    mp.timing = mem::lpddr3Timing(1600.0, 32, 128);
    mp.queueCapacity = 64;
    mp.statsBucket = ticksFromUs(100.0);
    return mp;
}

StandaloneGpu::StandaloneGpu(unsigned fb_width, unsigned fb_height,
                             const gpu::GpuTopParams &gpu_params,
                             const mem::MemorySystemParams &mem_params,
                             const SimulationBuilder &builder)
{
    builder.applyTo(_sim);
    fatal_if(!_sim.captureTraceDir().empty() ||
                 !_sim.replayTraceDir().empty(),
             "--capture-trace/--replay-trace need the full-SoC frame "
             "loop; the standalone GPU rig does not support them");
    _gpuClock = &_sim.createClockDomain(1000.0, "gpu_clk");

    mem::MemSchedContext sctx{_sim};
    mem::MemSchedBundle sched =
        mem::createMemScheduler(_sim.memSchedPolicy(), sctx);
    _dashCoordinator = std::move(sched.coordinator);
    _scheduler = std::move(sched.scheduler);

    _memory = std::make_unique<mem::MemorySystem>(_sim, "dram",
                                                  mem_params,
                                                  *_scheduler);
    gpu::GpuTopParams gp = gpu_params;
    if (!_sim.warpSchedPolicy().empty())
        gp.core.warpSched = _sim.warpSchedPolicy();
    _gpu = std::make_unique<gpu::GpuTop>(_sim, "gpu", *_gpuClock,
                                         gp, *_memory);
    core::GfxParams gfx;
    _pipeline = std::make_unique<core::GraphicsPipeline>(
        _sim, "gfx", *_gpu, fb_width, fb_height, gfx);
    _kernels = std::make_unique<gpu::KernelDispatcher>(_sim, "kernels",
                                                       *_gpu);
}

bool
StandaloneGpu::runUntil(const std::function<bool()> &done, Tick limit)
{
    while (!done() && _sim.curTick() < limit) {
        if (!_sim.eventQueue().runOne())
            return done();
    }
    return done();
}

} // namespace emerald::soc
