#include "sim/event_queue.hh"

#include <algorithm>
#include <chrono>

#include "sim/logging.hh"

namespace emerald
{

void
EventQueue::schedule(Event &ev, Tick when)
{
    panic_if(ev._scheduled, "event %s scheduled twice", ev.name().c_str());
    panic_if(when < _curTick,
             "event %s scheduled in the past (%llu < %llu)",
             ev.name().c_str(), (unsigned long long)when,
             (unsigned long long)_curTick);
    ev._scheduled = true;
    ev._when = when;
    ++ev._generation;
    _heap.push_back(
        Entry{when, ev.priority(), _nextSeq++, ev._generation, &ev});
    std::push_heap(_heap.begin(), _heap.end(), std::greater<Entry>());
    ++_liveEvents;
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev._scheduled)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::deschedule(Event &ev)
{
    panic_if(!ev._scheduled, "descheduling idle event %s",
             ev.name().c_str());
    // The heap entry is invalidated lazily via the generation counter.
    ev._scheduled = false;
    ++ev._generation;
    --_liveEvents;
    maybeCompact();
}

void
EventQueue::skim()
{
    while (!_heap.empty() && !live(_heap.front())) {
        std::pop_heap(_heap.begin(), _heap.end(), std::greater<Entry>());
        _heap.pop_back();
    }
}

void
EventQueue::compact()
{
    std::erase_if(_heap, [](const Entry &e) { return !live(e); });
    std::make_heap(_heap.begin(), _heap.end(), std::greater<Entry>());
}

void
EventQueue::maybeCompact()
{
    // Reschedule-heavy components create stale entries faster than
    // skim() retires them at the top; rebuild once they dominate so
    // heap memory stays O(liveEvents). The floor keeps small queues
    // from compacting on every deschedule.
    const std::size_t stale = _heap.size() - _liveEvents;
    if (stale >= 64 && stale > 2 * _liveEvents)
        compact();
}

std::string
EventQueue::headSummary()
{
    skim();
    if (_heap.empty())
        return "(empty)";
    const Entry &top = _heap.front();
    return strprintf("%s @ %llu", top.event->name().c_str(),
                     (unsigned long long)top.when);
}

Tick
EventQueue::nextTick()
{
    skim();
    panic_if(_heap.empty(), "nextTick on empty event queue");
    return _heap.front().when;
}

void
EventQueue::serviceTop()
{
    Entry top = _heap.front();
    std::pop_heap(_heap.begin(), _heap.end(), std::greater<Entry>());
    _heap.pop_back();
    panic_if(top.when < _curTick, "event queue went backwards");
    _curTick = top.when;
    Event *ev = top.event;
    ev->_scheduled = false;
    ++ev->_generation;
    --_liveEvents;
    ++_numProcessed;
    if (_instrument) {
        // Capture the name first: process() may reschedule or even
        // destroy state the name is derived from.
        std::string name = ev->name();
        auto start = std::chrono::steady_clock::now();
        ev->process();
        auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        _instrument->onEvent(name, top.when, top.priority,
                             static_cast<std::uint64_t>(wall));
    } else {
        ev->process();
    }
}

bool
EventQueue::runOne()
{
    skim();
    if (_heap.empty())
        return false;
    serviceTop();
    return true;
}

std::vector<EventQueue::LiveEventRef>
EventQueue::liveEventsSorted() const
{
    std::vector<LiveEventRef> out;
    out.reserve(_liveEvents);
    for (const Entry &e : _heap) {
        if (live(e))
            out.push_back({e.when, e.priority, e.seq, e.event});
    }
    std::sort(out.begin(), out.end(),
              [](const LiveEventRef &a, const LiveEventRef &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  return a.seq < b.seq;
              });
    return out;
}

void
EventQueue::clearForRestore()
{
    for (Entry &e : _heap) {
        if (live(e)) {
            e.event->_scheduled = false;
            ++e.event->_generation;
        }
    }
    _heap.clear();
    _liveEvents = 0;
}

void
EventQueue::restoreTime(Tick tick, std::uint64_t num_processed)
{
    panic_if(tick < _curTick, "restoreTime would move time backwards");
    for (const Entry &e : _heap) {
        panic_if(live(e) && e.when < tick,
                 "restoreTime(%llu) with event %s pending at %llu",
                 (unsigned long long)tick, e.event->name().c_str(),
                 (unsigned long long)e.when);
    }
    _curTick = tick;
    _numProcessed = num_processed;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t processed = 0;
    while (true) {
        skim();
        if (_heap.empty() || _heap.front().when > limit)
            break;
        serviceTop();
        ++processed;
    }
    return processed;
}

} // namespace emerald
