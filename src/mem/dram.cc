#include "mem/dram.hh"

#include "sim/logging.hh"

namespace emerald::mem
{

DramTiming
lpddr3Timing(double data_rate_mbps, unsigned bus_bits, unsigned line_size)
{
    fatal_if(data_rate_mbps <= 0.0, "bad DRAM data rate");
    DramTiming t;
    // Bytes per second moved by the channel data bus.
    t.peakBytesPerSec = data_rate_mbps * 1e6 * bus_bits / 8.0;
    double burst_ns = line_size / (t.peakBytesPerSec / 1e9);
    t.tBURST = ticksFromNs(burst_ns);
    // Core (array) timing is largely independent of the interface
    // data rate; representative LPDDR3 values.
    t.tRCD = ticksFromNs(18.0);
    t.tCL = ticksFromNs(15.0);
    t.tRP = ticksFromNs(18.0);
    t.tRAS = ticksFromNs(42.0);
    t.tWR = ticksFromNs(15.0);
    return t;
}

} // namespace emerald::mem
