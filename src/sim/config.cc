#include "sim/config.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace emerald
{

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("bad argument '%s': expected --key=value", arg.c_str());
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            set(arg.substr(2, eq - 2), arg.substr(eq + 1));
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            // "--key value" form, e.g. "--stats-json out.json".
            set(arg.substr(2), argv[++i]);
        } else {
            // Bare "--flag" is a boolean switch.
            set(arg.substr(2), "1");
        }
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = _values.find(key);
    return it == _values.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const char *text = it->second.c_str();
    char *end = nullptr;
    fatal_if(it->second.empty() || text[0] == '-',
             "config key '%s': '%s' is not a non-negative integer",
             key.c_str(), text);
    std::uint64_t value = std::strtoull(text, &end, 0);
    fatal_if(end == text || *end != '\0',
             "config key '%s': '%s' is not a non-negative integer",
             key.c_str(), text);
    return value;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const std::string &v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace emerald
