/**
 * @file
 * Draw-call trace recording and replay.
 *
 * The paper's standalone mode plays APITrace captures through the
 * simulator, and its full-system graphics checkpointing "works by
 * recording all draw calls sent by the system" and replaying them to
 * restore graphics state (Section 4). This module provides the
 * equivalent facility natively: a Trace captures complete frames
 * (shader sources, render state, vertex data, constants, textures),
 * serializes to a compact binary file, and a TracePlayer replays
 * frames through any GraphicsPipeline, bit-identically to the
 * original submission.
 */

#ifndef EMERALD_CORE_TRACE_HH
#define EMERALD_CORE_TRACE_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/graphics_pipeline.hh"
#include "core/shader_builder.hh"

namespace emerald::core
{

/** A texture binding captured in a trace. */
struct TraceTexture
{
    int unit = 0;
    unsigned width = 0;
    unsigned height = 0;
    std::vector<std::uint32_t> texels;
};

/** One recorded draw call, self-contained. */
struct TraceDraw
{
    std::string vsSource;
    /** User fragment source (ROP is rebuilt from the state). */
    std::string fsSource;
    PrimitiveType primType = PrimitiveType::Triangles;
    RenderState state;
    unsigned floatsPerVertex = 0;
    unsigned numVaryings = 0;
    std::vector<float> vertexData;
    std::vector<float> constants;
    std::vector<TraceTexture> textures;

    unsigned
    vertexCount() const
    {
        return floatsPerVertex
                   ? static_cast<unsigned>(vertexData.size() /
                                           floatsPerVertex)
                   : 0;
    }
};

/** A recorded stream of frames. */
struct Trace
{
    unsigned fbWidth = 0;
    unsigned fbHeight = 0;
    std::vector<std::vector<TraceDraw>> frames;

    void beginFrame() { frames.emplace_back(); }
    void
    recordDraw(TraceDraw draw)
    {
        frames.back().push_back(std::move(draw));
    }
};

/** Serialize @p trace to @p path. @return false on I/O failure. */
bool saveTrace(const std::string &path, const Trace &trace);

/** Load a trace; empty optional on failure or bad format. */
std::optional<Trace> loadTrace(const std::string &path);

/**
 * Replays a loaded trace through a pipeline: uploads vertex data,
 * rebuilds textures and shader programs (cached across draws), and
 * submits frames on demand.
 */
class TracePlayer
{
  public:
    TracePlayer(GraphicsPipeline &pipeline, Trace trace,
                mem::FunctionalMemory &memory);

    unsigned
    frameCount() const
    {
        return static_cast<unsigned>(_trace.frames.size());
    }

    /** Submit frame @p idx; @p on_done fires when it drains. */
    void playFrame(unsigned idx,
                   std::function<void(const FrameStats &)> on_done);

    Framebuffer &framebuffer() { return *_fb; }

  private:
    struct DrawAssets
    {
        Addr vertexBuffer = 0;
        const gpu::isa::Program *vs = nullptr;
        const gpu::isa::Program *fs = nullptr;
        std::unique_ptr<TextureSet> textures;
        std::vector<std::unique_ptr<Texture>> textureObjs;
    };

    DrawAssets &assetsFor(unsigned frame, unsigned draw_idx);

    GraphicsPipeline &_pipeline;
    Trace _trace;
    mem::FunctionalMemory &_memory;
    std::unique_ptr<Framebuffer> _fb;
    ShaderBuilder _shaders;
    /** (frame, draw) -> uploaded assets. */
    std::map<std::pair<unsigned, unsigned>, DrawAssets> _assets;
    /** Program cache keyed by source+state signature. */
    std::map<std::string, const gpu::isa::Program *> _programCache;
};

} // namespace emerald::core

#endif // EMERALD_CORE_TRACE_HH
