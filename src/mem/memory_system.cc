#include "mem/memory_system.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::mem
{

MemorySystem::MemorySystem(Simulation &sim, const std::string &name,
                           const MemorySystemParams &params,
                           DramScheduler &scheduler)
    : SimObject(sim, name), MemSink(sim), _params(params)
{
    setSinkName(name);
    registerProfileCounters();
    if (params.hmc) {
        fatal_if(params.hmcCpuChannels == 0 ||
                     params.hmcCpuChannels >= params.geom.channels,
                 "HMC needs at least one channel per partition");
        DramGeometry cpu_geom = params.geom;
        cpu_geom.channels = params.hmcCpuChannels;
        DramGeometry ip_geom = params.geom;
        ip_geom.channels = params.geom.channels - params.hmcCpuChannels;
        _hmcCpuMap.emplace(cpu_geom, params.hmcCpuScheme);
        _hmcIpMap.emplace(ip_geom, params.hmcIpScheme);
    } else {
        _unifiedMap.emplace(params.geom, params.unifiedScheme);
    }

    for (unsigned i = 0; i < params.geom.channels; ++i) {
        _channels.push_back(std::make_unique<DramChannel>(
            sim, name + ".ch" + std::to_string(i), params.geom,
            params.timing, scheduler, params.queueCapacity,
            params.statsBucket));
    }
}

std::pair<unsigned, DecodedAddr>
MemorySystem::route(const MemPacket &pkt) const
{
    if (!_params.hmc) {
        DecodedAddr coord = _unifiedMap->decode(pkt.addr);
        return {coord.channel, coord};
    }
    if (pkt.tclass == TrafficClass::Cpu) {
        DecodedAddr coord = _hmcCpuMap->decode(pkt.addr);
        return {coord.channel, coord};
    }
    DecodedAddr coord = _hmcIpMap->decode(pkt.addr);
    return {_params.hmcCpuChannels + coord.channel, coord};
}

bool
MemorySystem::tryAccept(MemPacket *pkt)
{
    auto [channel, coord] = route(*pkt);
    if (pkt->issued == 0)
        pkt->issued = curTick();
    return _channels[channel]->enqueue(pkt, coord);
}

bool
MemorySystem::offer(MemPacket *pkt, MemRequestor &req)
{
    auto [channel, coord] = route(*pkt);
    if (pkt->issued == 0)
        pkt->issued = curTick();
    return _channels[channel]->enqueue(pkt, coord, &req);
}

double
MemorySystem::rowHitRate() const
{
    double hits = 0.0;
    double total = 0.0;
    for (const auto &ch : _channels) {
        hits += ch->statRowHits.value();
        total += ch->statRowHits.value() +
                 ch->statRowClosedMisses.value() +
                 ch->statRowConflicts.value();
    }
    return total > 0.0 ? hits / total : 0.0;
}

double
MemorySystem::meanBytesPerActivation() const
{
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto &ch : _channels) {
        sum += ch->statBytesPerActivation.total();
        count += ch->statBytesPerActivation.count();
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::uint64_t
MemorySystem::totalBytes() const
{
    double bytes = 0.0;
    for (const auto &ch : _channels)
        bytes += ch->statBytesRead.value() + ch->statBytesWritten.value();
    return static_cast<std::uint64_t>(bytes);
}

std::uint64_t
MemorySystem::bytesFor(TrafficClass tclass) const
{
    double bytes = 0.0;
    for (const auto &ch : _channels) {
        switch (tclass) {
          case TrafficClass::Cpu:
            for (double b : ch->statBwCpu.buckets())
                bytes += b;
            break;
          case TrafficClass::Gpu:
            for (double b : ch->statBwGpu.buckets())
                bytes += b;
            break;
          case TrafficClass::Display:
            for (double b : ch->statBwDisplay.buckets())
                bytes += b;
            break;
          case TrafficClass::Npu:
            for (double b : ch->statBwNpu.buckets())
                bytes += b;
            break;
        }
    }
    return static_cast<std::uint64_t>(bytes);
}

} // namespace emerald::mem
