# Empty compiler generated dependencies file for fig13_display_service.
# This may be replaced when dependencies are built.
