#include "sim/check/context.hh"

#include <vector>

#include "sim/check/hooks.hh"
#include "sim/logging.hh"

namespace emerald::check
{

namespace
{

/**
 * Activation stack rather than a single slot: tests routinely build a
 * scoped Simulation inside a fixture that owns another one, and hooks
 * fired while the inner one is alive belong to the inner one.
 */
std::vector<CheckContext *> &
activeStack()
{
    static std::vector<CheckContext *> stack;
    return stack;
}

} // namespace

CheckContext::CheckContext(EventQueue &eq)
    : _lifecycle(eq), _retry(eq)
{
    activeStack().push_back(this);
}

CheckContext::~CheckContext()
{
    auto &stack = activeStack();
    panic_if(stack.empty() || stack.back() != this,
             "check context destroyed out of activation order");
    stack.pop_back();
}

CheckContext *
CheckContext::active()
{
    auto &stack = activeStack();
    return stack.empty() ? nullptr : stack.back();
}

void
CheckContext::onTeardown(bool queue_drained)
{
    if (!queue_drained)
        return;
    _retry.verifyQuiescent();
    _lifecycle.verifyNoLeaks();
}

void
packetAlloc(PacketPool *pool, MemPacket *pkt)
{
    if (auto *ctx = CheckContext::active())
        ctx->lifecycle().onAlloc(pool, pkt);
}

void
packetFreeing(MemPacket *pkt)
{
    if (auto *ctx = CheckContext::active())
        ctx->lifecycle().onFreeing(pkt);
}

void
packetPoolFree(PacketPool *pool, MemPacket *pkt)
{
    if (auto *ctx = CheckContext::active())
        ctx->lifecycle().onPoolFree(pool, pkt);
}

void
packetCompleting(MemPacket *pkt)
{
    if (auto *ctx = CheckContext::active())
        ctx->lifecycle().onCompleting(pkt);
}

void
offerStarted(RetryList *list, MemPacket *pkt)
{
    if (auto *ctx = CheckContext::active()) {
        ctx->lifecycle().onOfferStarted(pkt);
        ctx->retry().onOfferStarted(list);
    }
}

void
offerAccepted(RetryList *list, const MemPacket *pkt)
{
    if (auto *ctx = CheckContext::active()) {
        ctx->lifecycle().onOfferAccepted(pkt);
        ctx->retry().onOfferAccepted(list);
    }
}

void
offerRejected(RetryList *list, const MemPacket *pkt, MemRequestor *req)
{
    (void)pkt;
    if (auto *ctx = CheckContext::active())
        ctx->retry().onOfferRejected(list, req);
}

void
retryRegistered(RetryList *list, MemRequestor *req, bool deduped)
{
    if (auto *ctx = CheckContext::active())
        ctx->retry().onRegistered(list, req, deduped);
}

void
retryWoken(RetryList *list, MemRequestor *req)
{
    if (auto *ctx = CheckContext::active())
        ctx->retry().onWoken(list, req);
}

} // namespace emerald::check
