# Empty compiler generated dependencies file for table_configs.
# This may be replaced when dependencies are built.
