/**
 * @file
 * Order-sensitive hash of the processed event stream, for O(1)
 * determinism diffing between runs.
 *
 * Two runs of the same configuration and seed must process exactly
 * the same (tick, event-name, priority) sequence; wall-clock cost is
 * excluded because it never repeats. The FNV-1a hash folds the whole
 * stream into one value exposed as sim.check.event_hash, so comparing
 * two multi-million-event runs is a single number diff instead of a
 * trace diff. Enabled with --check-determinism (any build type): it
 * rides the EventQueue's instrument branch, so runs without it pay
 * nothing.
 */

#ifndef EMERALD_SIM_CHECK_DETERMINISM_HH
#define EMERALD_SIM_CHECK_DETERMINISM_HH

#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace emerald::check
{

/** Streams every processed event into one order-sensitive FNV hash. */
class DeterminismVerifier : public EventInstrument
{
  public:
    /** Mirrors the running hash into @p hash_stat (53-bit fold). */
    explicit DeterminismVerifier(Scalar &hash_stat)
        : _hashStat(hash_stat)
    {
    }

    void onEvent(const std::string &name, Tick when, int priority,
                 std::uint64_t wall_ns) override;

    /** Full 64-bit stream hash (the stat holds a 53-bit fold). */
    std::uint64_t hash() const { return _hash; }

    /** Events folded into the hash so far. */
    std::uint64_t numEvents() const { return _numEvents; }

    /**
     * Resume a hash stream captured by a checkpoint: the verifier
     * continues folding from the cold run's prefix, so the final hash
     * of a restored run equals the cold run's iff the measured-region
     * event streams are identical (the warm-start oracle).
     */
    void
    restoreState(std::uint64_t hash, std::uint64_t num_events)
    {
        _hash = hash;
        _numEvents = num_events;
        _hashStat = static_cast<double>(_hash & ((1ULL << 53) - 1));
    }

  private:
    static constexpr std::uint64_t fnvOffsetBasis =
        0xcbf29ce484222325ULL;
    static constexpr std::uint64_t fnvPrime = 0x00000100000001b3ULL;

    void mix(const void *bytes, std::size_t n);

    std::uint64_t _hash = fnvOffsetBasis;
    std::uint64_t _numEvents = 0;
    Scalar &_hashStat;
};

} // namespace emerald::check

#endif // EMERALD_SIM_CHECK_DETERMINISM_HH
