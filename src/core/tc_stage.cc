#include "core/tc_stage.hh"

#include <bit>

#include "sim/logging.hh"

namespace emerald::core
{

TcUnit::TcUnit(unsigned num_engines, unsigned flush_timeout_cycles,
               unsigned ready_queue_depth)
    : _engines(num_engines), _flushTimeout(flush_timeout_cycles),
      _readyDepth(ready_queue_depth)
{
    panic_if(num_engines == 0, "TC unit needs at least one engine");
}

bool
TcUnit::engineFull(const Engine &engine) const
{
    for (const auto &tile : engine.staged) {
        if (!tile || !tile->fullyCovered())
            return false;
    }
    return true;
}

void
TcUnit::flushEngine(Engine &engine, TcFlushReason reason)
{
    if (!engine.active)
        return;
    TcInstance instance;
    instance.tcX = engine.tcX;
    instance.tcY = engine.tcY;
    instance.tiles = std::move(engine.staged);
    for (auto &tile : engine.staged)
        tile.reset();
    engine.active = false;
    _ready.push_back(std::move(instance));

    switch (reason) {
      case TcFlushReason::Conflict: ++flushesConflict; break;
      case TcFlushReason::Full: ++flushesFull; break;
      case TcFlushReason::Timeout: ++flushesTimeout; break;
      case TcFlushReason::Drain: ++flushesDrain; break;
    }
}

bool
TcUnit::tryAdd(const FragmentTile &tile, std::uint64_t now_cycle)
{
    unsigned tc_x = static_cast<unsigned>(tile.tileX) /
                    tcTileRasterTiles;
    unsigned tc_y = static_cast<unsigned>(tile.tileY) /
                    tcTileRasterTiles;
    unsigned slot = (static_cast<unsigned>(tile.tileY) %
                     tcTileRasterTiles) *
                        tcTileRasterTiles +
                    static_cast<unsigned>(tile.tileX) %
                        tcTileRasterTiles;

    // An engine already coalescing this TC position?
    Engine *target = nullptr;
    for (Engine &engine : _engines) {
        if (engine.active && engine.tcX == tc_x && engine.tcY == tc_y) {
            target = &engine;
            break;
        }
    }
    if (!target) {
        for (Engine &engine : _engines) {
            if (!engine.active) {
                target = &engine;
                break;
            }
        }
        if (!target)
            return false; // All engines busy with other positions.
        target->active = true;
        target->tcX = tc_x;
        target->tcY = tc_y;
        for (auto &staged : target->staged)
            staged.reset();
    }

    auto &staged = target->staged[slot];
    if (staged && (staged->coverMask & tile.coverMask) != 0) {
        // Overlap: must not coalesce (ordering); flush and restart.
        if (readyQueueFull())
            return false;
        flushEngine(*target, TcFlushReason::Conflict);
        target->active = true;
        target->tcX = tc_x;
        target->tcY = tc_y;
        for (auto &s : target->staged)
            s.reset();
        target->staged[slot] = tile;
        target->lastAddCycle = now_cycle;
        return true;
    }

    if (!staged) {
        staged = tile;
    } else {
        // Merge disjoint coverage from another primitive.
        for (unsigned p = 0; p < rasterTilePixels; ++p) {
            if (tile.coverMask & (1u << p)) {
                staged->z[p] = tile.z[p];
                staged->attrs[p] = tile.attrs[p];
            }
        }
        staged->coverMask |= tile.coverMask;
    }
    target->lastAddCycle = now_cycle;

    if (engineFull(*target) && !readyQueueFull())
        flushEngine(*target, TcFlushReason::Full);
    return true;
}

void
TcUnit::tickTimeouts(std::uint64_t now_cycle)
{
    for (Engine &engine : _engines) {
        if (engine.active && !readyQueueFull() &&
            now_cycle - engine.lastAddCycle >= _flushTimeout) {
            flushEngine(engine, TcFlushReason::Timeout);
        }
    }
}

void
TcUnit::drain()
{
    for (Engine &engine : _engines) {
        if (engine.active && !readyQueueFull())
            flushEngine(engine, TcFlushReason::Drain);
    }
}

TcInstance
TcUnit::popReady()
{
    panic_if(_ready.empty(), "popReady on empty TC queue");
    TcInstance instance = std::move(_ready.front());
    _ready.pop_front();
    return instance;
}

bool
TcUnit::empty() const
{
    if (!_ready.empty())
        return false;
    for (const Engine &engine : _engines) {
        if (engine.active)
            return false;
    }
    return true;
}

} // namespace emerald::core
