#include <gtest/gtest.h>

#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "soc/cpu_traffic.hh"
#include "soc/display_controller.hh"
#include "sim/simulation.hh"

using namespace emerald;
using namespace emerald::soc;

namespace
{

/** A sink with controllable service latency. */
struct SlowMemory : public MemSink
{
    Simulation &sim;
    Tick delay;
    std::vector<std::unique_ptr<EventFunction>> events;
    unsigned requests = 0;

    SlowMemory(Simulation &s, Tick d) : sim(s), delay(d) {}

    bool
    tryAccept(MemPacket *pkt) override
    {
        ++requests;
        events.push_back(std::make_unique<EventFunction>(
            [pkt] { completePacket(pkt); }, "resp"));
        sim.eventQueue().schedule(*events.back(),
                                  sim.curTick() + delay);
        return true;
    }
};

} // namespace

TEST(CpuTraffic, QuotaCompletesAndIsLatencyBound)
{
    Simulation sim;
    ClockDomain &clk = sim.createClockDomain(2000.0, "cpu");

    // Fast memory.
    SlowMemory fast(sim, ticksFromNs(50.0));
    CpuCoreParams params;
    params.maxOutstanding = 4;
    params.thinkCycles = 10;
    CpuCoreModel core(sim, "cpu0", clk, params, fast);

    bool done = false;
    core.runQuota(200, [&] { done = true; });
    sim.run(ticksFromMs(10.0));
    ASSERT_TRUE(done);
    Tick fast_time = sim.curTick();
    EXPECT_EQ(core.statRequests.value(), 200.0);

    // Same quota against memory 20x slower takes much longer.
    Simulation sim2;
    ClockDomain &clk2 = sim2.createClockDomain(2000.0, "cpu");
    SlowMemory slow(sim2, ticksFromNs(1000.0));
    CpuCoreModel core2(sim2, "cpu0", clk2, params, slow);
    bool done2 = false;
    core2.runQuota(200, [&] { done2 = true; });
    sim2.run(ticksFromMs(10.0));
    ASSERT_TRUE(done2);
    EXPECT_GT(sim2.curTick(), fast_time * 3);
}

TEST(CpuTraffic, BackgroundTrafficIsSparse)
{
    Simulation sim;
    ClockDomain &clk = sim.createClockDomain(2000.0, "cpu");
    SlowMemory memory(sim, ticksFromNs(50.0));
    CpuCoreParams params;
    params.backgroundInterval = 2000; // 1 us at 2 GHz.
    CpuCoreModel core(sim, "cpu0", clk, params, memory);

    core.setBackground(true);
    sim.run(ticksFromUs(100.0));
    // ~1 request per us, plus response-driven rescheduling slack.
    EXPECT_GT(memory.requests, 50u);
    EXPECT_LT(memory.requests, 250u);
    core.setBackground(false);
    unsigned before = memory.requests;
    // Drain pending events, then confirm no new traffic.
    sim.run(ticksFromUs(110.0));
    unsigned after_stop = memory.requests;
    EXPECT_LE(after_stop - before, 2u);
}

TEST(Display, FetchesFramesAtRefreshRate)
{
    Simulation sim;
    SlowMemory memory(sim, ticksFromNs(100.0));
    DisplayParams params;
    params.width = 64;
    params.height = 32;
    params.refreshPeriod = ticksFromMs(1.0); // Fast for testing.
    DisplayController display(sim, "disp", params, memory);

    display.start();
    sim.run(ticksFromMs(5.5));
    display.stop();
    // Five full refreshes completed.
    EXPECT_GE(display.statFramesCompleted.value(), 4.0);
    EXPECT_EQ(display.statFramesAborted.value(), 0.0);
    // 64*4 bytes/line = 2 packets/line * 32 lines * ~5 frames.
    EXPECT_GE(display.statRequests.value(), 4 * 64.0);
}

TEST(Display, SlowMemoryCausesUnderrunsAndAborts)
{
    Simulation sim;
    // Line period is 1 ms / 32 = 31 us; two packets per line served
    // at 100 us each cannot keep up.
    SlowMemory memory(sim, ticksFromUs(100.0));
    DisplayParams params;
    params.width = 64;
    params.height = 32;
    params.refreshPeriod = ticksFromMs(1.0);
    params.maxOutstanding = 1;
    params.abortThreshold = 4;
    DisplayController display(sim, "disp", params, memory);

    display.start();
    sim.run(ticksFromMs(4.5));
    display.stop();
    EXPECT_GT(display.statUnderruns.value(), 0.0);
    EXPECT_GT(display.statFramesAborted.value(), 0.0);
    EXPECT_EQ(display.statFramesCompleted.value(), 0.0);
}

TEST(Display, ReadsLinearFramebufferSequentially)
{
    Simulation sim;

    struct AddrTracker : public MemSink
    {
        std::vector<Addr> addrs;
        bool
        tryAccept(MemPacket *pkt) override
        {
            addrs.push_back(pkt->addr);
            completePacket(pkt);
            return true;
        }
    } tracker;

    DisplayParams params;
    params.fbBase = 0x80000000ULL;
    params.width = 64;
    params.height = 8;
    params.refreshPeriod = ticksFromMs(1.0);
    DisplayController display(sim, "disp", params, tracker);
    display.start();
    sim.run(ticksFromUs(990.0));
    display.stop();

    ASSERT_GE(tracker.addrs.size(), 16u);
    // Strictly sequential within the first frame (HMC's assumption
    // about display traffic, which the paper confirms holds).
    for (std::size_t i = 1; i < 16; ++i)
        EXPECT_EQ(tracker.addrs[i], tracker.addrs[i - 1] + 128);
}

TEST(Display, DashUrgencyRegistration)
{
    Simulation sim;
    mem::DashParams dp;
    dp.numCpuCores = 2;
    mem::DashCoordinator dash(sim, "dash", dp);

    SlowMemory memory(sim, ticksFromUs(200.0));
    DisplayParams params;
    params.width = 64;
    params.height = 32;
    params.refreshPeriod = ticksFromMs(1.0);
    params.maxOutstanding = 1;
    params.abortThreshold = 1000; // Keep the frame active.
    DisplayController display(sim, "disp", params, memory, &dash);
    display.start();

    // Shortly into the frame the display has fetched nothing while
    // expected progress accrues: it must become urgent.
    sim.run(ticksFromUs(400.0));
    MemPacket probe(0, 128, false, TrafficClass::Display,
                    AccessKind::Display, displayRequestorId);
    EXPECT_EQ(dash.priorityOf(probe, sim.curTick()), 0);
    display.stop();
    dash.shutdown();
}
