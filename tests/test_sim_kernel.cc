#include <gtest/gtest.h>

#include <sstream>

#include "mem/functional_memory.hh"
#include "noc/crossbar.hh"
#include "noc/link.hh"
#include "sim/clocked.hh"
#include "sim/config.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

using namespace emerald;

TEST(EventQueue, OrderingByTickPriorityAndInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunction a([&] { order.push_back(1); }, "a");
    EventFunction b([&] { order.push_back(2); }, "b");
    EventFunction c([&] { order.push_back(3); }, "c",
                    Event::clockPriority);
    EventFunction d([&] { order.push_back(4); }, "d");

    eq.schedule(a, 10);
    eq.schedule(b, 5);
    eq.schedule(c, 10); // Same tick as a, higher priority.
    eq.schedule(d, 10); // Same tick/priority as a, inserted later.
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1, 4}));
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RescheduleAndDeschedule)
{
    EventQueue eq;
    int fired = 0;
    EventFunction ev([&] { ++fired; }, "ev");
    eq.schedule(ev, 10);
    eq.reschedule(ev, 20);
    eq.runUntil(15);
    EXPECT_EQ(fired, 0);
    eq.runUntil(25);
    EXPECT_EQ(fired, 1);

    eq.schedule(ev, 30);
    eq.deschedule(ev);
    eq.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SelfReschedulingEvent)
{
    EventQueue eq;
    int count = 0;
    EventFunction *ptr = nullptr;
    EventFunction ev(
        [&] {
            if (++count < 5)
                eq.schedule(*ptr, eq.curTick() + 100);
        },
        "tick");
    ptr = &ev;
    eq.schedule(ev, 0);
    eq.runUntil();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 400u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    EventFunction a([&] { ++fired; }, "a");
    EventFunction b([&] { ++fired; }, "b");
    eq.schedule(a, 10);
    eq.schedule(b, 100);
    EXPECT_EQ(eq.runUntil(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
}

TEST(ClockDomain, EdgeMath)
{
    EventQueue eq;
    ClockDomain clk(eq, 1000, "clk"); // 1 GHz, 1000 ps period.
    EXPECT_EQ(clk.clockEdge(0), 0u);
    EXPECT_EQ(clk.clockEdge(3), 3000u);

    EventFunction ev([] {}, "pad");
    eq.schedule(ev, 1500);
    eq.runUntil();
    EXPECT_EQ(clk.curCycle(), 1u);
    EXPECT_EQ(clk.clockEdge(0), 2000u); // Next edge at/after 1500.
}

namespace
{

struct Ticker : public Clocked
{
    int ticks = 0;
    int stop_after;

    Ticker(ClockDomain &domain, int n)
        : Clocked(domain, "ticker"), stop_after(n)
    {}

    bool
    tick() override
    {
        return ++ticks < stop_after;
    }
};

} // namespace

TEST(Clocked, TicksUntilIdleThenReactivates)
{
    EventQueue eq;
    ClockDomain clk(eq, 1000, "clk");
    Ticker ticker(clk, 3);
    ticker.activate();
    eq.runUntil();
    EXPECT_EQ(ticker.ticks, 3);
    EXPECT_TRUE(eq.empty());

    ticker.stop_after = 5;
    ticker.activate();
    eq.runUntil();
    EXPECT_EQ(ticker.ticks, 5);
}

TEST(Stats, ScalarAndDistributionDump)
{
    StatGroup root("");
    StatGroup group(root, "unit");
    Scalar counter(group, "count", "a counter");
    Distribution dist(group, "lat", "a distribution");
    ++counter;
    counter += 2.0;
    dist.sample(10.0);
    dist.sample(20.0);

    EXPECT_EQ(counter.value(), 3.0);
    EXPECT_EQ(dist.mean(), 15.0);
    EXPECT_EQ(dist.min(), 10.0);
    EXPECT_EQ(dist.max(), 20.0);

    std::ostringstream os;
    root.dumpStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("unit.count 3"), std::string::npos);
    EXPECT_NE(text.find("unit.lat.mean 15"), std::string::npos);

    root.resetStats();
    EXPECT_EQ(counter.value(), 0.0);
    EXPECT_EQ(dist.count(), 0u);
}

TEST(Stats, TimeSeriesBuckets)
{
    StatGroup root("");
    TimeSeries series(root, "bw", "bytes", 100);
    series.add(5, 10.0);
    series.add(95, 10.0);
    series.add(105, 7.0);
    series.add(950, 1.0);
    ASSERT_EQ(series.buckets().size(), 10u);
    EXPECT_EQ(series.buckets()[0], 20.0);
    EXPECT_EQ(series.buckets()[1], 7.0);
    EXPECT_EQ(series.buckets()[9], 1.0);
}

TEST(Random, DeterministicAndBounded)
{
    Random a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(a.below(17), 17u);
        double u = a.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        std::int64_t v = a.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Config, ParseAndTypedAccess)
{
    Config cfg;
    const char *argv[] = {"prog", "--alpha=3", "--beta=2.5",
                          "--gamma=yes", "--name=hello"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getInt("alpha", 0), 3);
    EXPECT_DOUBLE_EQ(cfg.getDouble("beta", 0.0), 2.5);
    EXPECT_TRUE(cfg.getBool("gamma", false));
    EXPECT_EQ(cfg.getString("name", ""), "hello");
    EXPECT_EQ(cfg.getInt("missing", 7), 7);
    EXPECT_TRUE(cfg.has("alpha"));
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(FunctionalMemory, ReadWriteAcrossPages)
{
    mem::FunctionalMemory fmem;
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = fmem.allocate(data.size());
    fmem.write(base, data.data(), data.size());

    std::vector<std::uint8_t> back(data.size());
    fmem.read(base, back.data(), back.size());
    EXPECT_EQ(back, data);

    // Unwritten memory reads as zero.
    EXPECT_EQ(fmem.read32(base + 0x100000), 0u);
}

TEST(FunctionalMemory, AllocatorAlignsAndSeparates)
{
    mem::FunctionalMemory fmem;
    Addr a = fmem.allocate(100, 128);
    Addr b = fmem.allocate(100, 128);
    EXPECT_EQ(a % 128, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GE(b, a + 100);
}

namespace
{

struct SinkCounter : public MemSink
{
    unsigned count = 0;
    Tick lastArrival = 0;
    EventQueue *eq = nullptr;
    bool reject = false;

    bool
    tryAccept(MemPacket *pkt) override
    {
        if (reject)
            return false;
        ++count;
        lastArrival = eq->curTick();
        delete pkt;
        return true;
    }

    /** Real sinks wake waiters when capacity frees; tests drive it. */
    void wakeAll()
    {
        while (wakeOneRetryChecked()) {
        }
    }
};

} // namespace

TEST(Link, DelaysAndSerializes)
{
    Simulation sim;
    noc::LinkParams lp;
    lp.latency = ticksFromNs(10.0);
    lp.bytesPerSec = 1e9; // 128 B takes 128 ns.
    noc::Link link(sim, "link", lp);
    SinkCounter sink;
    sink.eq = &sim.eventQueue();
    link.setTarget(sink);

    auto *p1 = new MemPacket(0, 128, false, TrafficClass::Gpu,
                             AccessKind::GlobalData, 0, nullptr);
    auto *p2 = new MemPacket(128, 128, false, TrafficClass::Gpu,
                             AccessKind::GlobalData, 0, nullptr);
    ASSERT_TRUE(link.tryAccept(p1));
    ASSERT_TRUE(link.tryAccept(p2));
    sim.run();
    EXPECT_EQ(sink.count, 2u);
    // Second packet: 2 serialization slots + latency = 266 ns.
    EXPECT_EQ(sink.lastArrival, ticksFromNs(128.0 * 2 + 10.0));
}

TEST(Link, BackpressureAndRetry)
{
    Simulation sim;
    noc::LinkParams lp;
    lp.latency = ticksFromNs(1.0);
    lp.queueDepth = 2;
    noc::Link link(sim, "link", lp);
    SinkCounter sink;
    sink.eq = &sim.eventQueue();
    sink.reject = true;
    link.setTarget(sink);

    auto mk = [] {
        return new MemPacket(0, 128, false, TrafficClass::Gpu,
                             AccessKind::GlobalData, 0, nullptr);
    };
    EXPECT_TRUE(link.tryAccept(mk()));
    EXPECT_TRUE(link.tryAccept(mk()));
    MemPacket *overflow = mk();
    EXPECT_FALSE(link.tryAccept(overflow)); // Queue full.
    delete overflow;

    sim.run(ticksFromNs(100.0));
    EXPECT_EQ(sink.count, 0u); // Still rejecting; link is parked.
    sink.reject = false;
    // No polling: nothing happens until the sink signals capacity.
    sim.run(ticksFromNs(300.0));
    EXPECT_EQ(sink.count, 0u);
    sink.wakeAll();
    sim.run(ticksFromNs(600.0));
    EXPECT_EQ(sink.count, 2u); // Delivered after the retry wake.
}

TEST(Crossbar, RoutesByFunction)
{
    Simulation sim;
    noc::LinkParams lp;
    lp.latency = ticksFromNs(1.0);
    noc::Crossbar xbar(sim, "xbar", lp, [](const MemPacket &pkt) {
        return pkt.addr < 0x1000 ? 0u : 1u;
    });
    SinkCounter low, high;
    low.eq = high.eq = &sim.eventQueue();
    xbar.addDestination(low);
    xbar.addDestination(high);

    auto send = [&](Addr a) {
        auto *pkt = new MemPacket(a, 128, false, TrafficClass::Gpu,
                                  AccessKind::GlobalData, 0, nullptr);
        ASSERT_TRUE(xbar.tryAccept(pkt));
    };
    send(0x100);
    send(0x2000);
    send(0x200);
    sim.run();
    EXPECT_EQ(low.count, 2u);
    EXPECT_EQ(high.count, 1u);
}

TEST(Stats, SimulationTreeDumpsComponentStats)
{
    Simulation sim;
    ClockDomain &clk = sim.createClockDomain(1000.0, "clk");
    noc::LinkParams lp;
    noc::Link link(sim, "syslink", lp);
    (void)clk;

    std::ostringstream os;
    sim.dumpStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("syslink.packets 0"), std::string::npos);
    EXPECT_NE(text.find("syslink.bytes 0"), std::string::npos);

    sim.resetStats();
    std::ostringstream os2;
    sim.dumpStats(os2);
    EXPECT_FALSE(os2.str().empty());
}
