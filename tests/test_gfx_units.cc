#include <gtest/gtest.h>

#include "core/dfsl.hh"
#include "core/shader_builder.hh"
#include "core/tc_stage.hh"
#include "core/vpo_unit.hh"
#include "core/wt_mapping.hh"

using namespace emerald;
using namespace emerald::core;

namespace
{

FragmentTile
tileAt(int tx, int ty, std::uint16_t cover)
{
    FragmentTile t;
    t.tileX = tx;
    t.tileY = ty;
    t.coverMask = cover;
    return t;
}

} // namespace

TEST(Pmrb, ReleasesInSequenceOrder)
{
    Pmrb pmrb;
    pmrb.reset();

    auto prims = std::make_shared<std::vector<PrimRecord>>();
    // Second warp's mask arrives first.
    pmrb.insert({10, 10, 0x3ffu, prims});
    EXPECT_FALSE(pmrb.headReady());

    pmrb.insert({0, 10, 0x001u, prims});
    ASSERT_TRUE(pmrb.headReady());
    PrimitiveMask first = pmrb.popHead();
    EXPECT_EQ(first.firstSeq, 0u);
    ASSERT_TRUE(pmrb.headReady());
    EXPECT_EQ(pmrb.popHead().firstSeq, 10u);
    EXPECT_TRUE(pmrb.empty());
    EXPECT_EQ(pmrb.nextExpected(), 20u);
}

TEST(Pmrb, OccupancyTracksSlots)
{
    Pmrb pmrb(32);
    pmrb.reset();
    auto prims = std::make_shared<std::vector<PrimRecord>>();
    EXPECT_TRUE(pmrb.canAccept(30));
    pmrb.insert({0, 30, 0, prims});
    EXPECT_FALSE(pmrb.canAccept(30));
    EXPECT_TRUE(pmrb.canAccept(2));
    pmrb.popHead();
    EXPECT_TRUE(pmrb.canAccept(30));
}

TEST(ClusterMasks, CoverageFollowsBoundingBoxes)
{
    WtMapping map(256, 192, 4, 1); // 4 cores = 4 clusters of 1.
    std::vector<PrimRecord> prims(2);
    prims[0].seq = 0;
    prims[0].tris.resize(1); // Non-culled.
    prims[0].tcX0 = 0;
    prims[0].tcY0 = 0;
    prims[0].tcX1 = 0;
    prims[0].tcY1 = 0; // Single TC tile -> single cluster.
    prims[1].seq = 1;
    prims[1].tris.resize(1);
    prims[1].tcX0 = 0;
    prims[1].tcY0 = 0;
    prims[1].tcX1 = 31;
    prims[1].tcY1 = 23; // Whole screen -> every cluster.

    auto masks = computeClusterMasks(prims, map, 1, 4);
    ASSERT_EQ(masks.size(), 4u);
    unsigned owner = map.coreOf(0, 0);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_EQ((masks[c] >> 1) & 1u, 1u) << "cluster " << c;
        EXPECT_EQ(masks[c] & 1u, c == owner ? 1u : 0u);
    }
}

TEST(ClusterMasks, CulledPrimitivesCoverNothing)
{
    WtMapping map(256, 192, 4, 1);
    std::vector<PrimRecord> prims(1);
    prims[0].seq = 0; // tris empty -> culled.
    auto masks = computeClusterMasks(prims, map, 1, 4);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(masks[c], 0u);
}

TEST(TcUnit, CoalescesDisjointTilesIntoOneInstance)
{
    TcUnit tc(2, 16, 8);
    // Four raster tiles of TC tile (0,0), full coverage each.
    for (int ty = 0; ty < 2; ++ty)
        for (int tx = 0; tx < 2; ++tx)
            ASSERT_TRUE(tc.tryAdd(tileAt(tx, ty, 0xffffu), 0));
    // Full instance flushes immediately.
    ASSERT_TRUE(tc.hasReady());
    TcInstance inst = tc.popReady();
    EXPECT_EQ(inst.tcX, 0u);
    EXPECT_EQ(inst.fragmentCount(), 64u);
    EXPECT_EQ(tc.flushesFull, 1u);
}

TEST(TcUnit, MergesPartialCoverageFromTwoPrimitives)
{
    TcUnit tc(2, 16, 8);
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0x00ffu), 0));
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0xff00u), 1));
    EXPECT_FALSE(tc.hasReady()); // Not full, still staging.
    tc.drain();
    ASSERT_TRUE(tc.hasReady());
    EXPECT_EQ(tc.popReady().fragmentCount(), 16u);
}

TEST(TcUnit, OverlapForcesFlush)
{
    TcUnit tc(2, 16, 8);
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0x0f0fu), 0));
    // Overlapping coverage at the same raster tile position.
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0x0001u), 1));
    EXPECT_EQ(tc.flushesConflict, 1u);
    ASSERT_TRUE(tc.hasReady());
    EXPECT_EQ(tc.popReady().fragmentCount(), 8u); // First instance.
    tc.drain();
    ASSERT_TRUE(tc.hasReady());
    EXPECT_EQ(tc.popReady().fragmentCount(), 1u); // Second.
}

TEST(TcUnit, TimeoutFlushesStaleStaging)
{
    TcUnit tc(1, 8, 4);
    ASSERT_TRUE(tc.tryAdd(tileAt(2, 2, 0x000fu), 100));
    tc.tickTimeouts(104);
    EXPECT_FALSE(tc.hasReady());
    tc.tickTimeouts(109);
    EXPECT_TRUE(tc.hasReady());
    EXPECT_EQ(tc.flushesTimeout, 1u);
}

TEST(TcUnit, DistinctPositionsUseDistinctEngines)
{
    TcUnit tc(2, 16, 8);
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0x1u), 0));
    ASSERT_TRUE(tc.tryAdd(tileAt(10, 10, 0x1u), 0));
    // Third position: both engines busy.
    EXPECT_FALSE(tc.tryAdd(tileAt(20, 20, 0x1u), 0));
    tc.drain();
    EXPECT_EQ(tc.flushesDrain, 2u);
    // Engines freed.
    EXPECT_TRUE(tc.tryAdd(tileAt(20, 20, 0x1u), 0));
}

TEST(ShaderBuilder, EarlyZWhenEligible)
{
    ShaderBuilder builder;
    RenderState state;
    state.depthTest = true;
    state.depthWrite = true;
    state.blend = false;
    const auto *prog = builder.buildFragment(
        "fs", "sto o[0], 1.0\nsto o[1], 1.0\nsto o[2], 1.0\n"
              "sto o[3], 1.0\n",
        state);
    EXPECT_TRUE(builder.lastUsedEarlyZ());
    // First instruction is the ztest, last is exit.
    EXPECT_EQ(prog->code.front().op, gpu::isa::Opcode::ZTEST);
    EXPECT_EQ(prog->code.back().op, gpu::isa::Opcode::EXIT);
    // Ends with stfb before exit.
    EXPECT_EQ(prog->code[prog->code.size() - 2].op,
              gpu::isa::Opcode::STFB);
}

TEST(ShaderBuilder, LateZWithDiscard)
{
    ShaderBuilder builder;
    RenderState state;
    const auto *prog = builder.buildFragment(
        "fs", "discard\nsto o[0], 1.0\n", state);
    EXPECT_FALSE(builder.lastUsedEarlyZ());
    EXPECT_NE(prog->code.front().op, gpu::isa::Opcode::ZTEST);
    // A ztest still appears (late).
    bool has_ztest = false;
    for (const auto &instr : prog->code)
        has_ztest |= instr.op == gpu::isa::Opcode::ZTEST;
    EXPECT_TRUE(has_ztest);
}

TEST(ShaderBuilder, BlendEpilogueWhenBlending)
{
    ShaderBuilder builder;
    RenderState state;
    state.blend = true;
    state.depthWrite = false;
    const auto *prog = builder.buildFragment(
        "fs", "sto o[0], 0.5\n", state);
    EXPECT_FALSE(builder.lastUsedEarlyZ()); // depthWrite off.
    bool has_blend = false;
    for (const auto &instr : prog->code)
        has_blend |= instr.op == gpu::isa::Opcode::BLEND;
    EXPECT_TRUE(has_blend);
}

TEST(ShaderBuilder, NoZTestWhenDepthDisabled)
{
    ShaderBuilder builder;
    RenderState state;
    state.depthTest = false;
    const auto *prog = builder.buildFragment(
        "fs", "sto o[0], 0.5\n", state);
    for (const auto &instr : prog->code)
        EXPECT_NE(instr.op, gpu::isa::Opcode::ZTEST);
}

TEST(Dfsl, EvaluationSweepsWtRange)
{
    DfslParams p;
    p.minWT = 1;
    p.maxWT = 5;
    p.runFrames = 3;
    DfslController dfsl(p);

    // Evaluation: WT 1..5 in order.
    for (unsigned wt = 1; wt <= 5; ++wt) {
        EXPECT_TRUE(dfsl.evaluating());
        EXPECT_EQ(dfsl.wtForNextFrame(), wt);
        // Pretend WT=3 is fastest.
        dfsl.frameCompleted(wt == 3 ? 100 : 200 + wt);
    }
    // Run phase uses the best WT.
    for (unsigned f = 0; f < 3; ++f) {
        EXPECT_FALSE(dfsl.evaluating());
        EXPECT_EQ(dfsl.wtForNextFrame(), 3u);
        dfsl.frameCompleted(100);
    }
    // Next phase re-evaluates from scratch.
    EXPECT_TRUE(dfsl.evaluating());
    EXPECT_EQ(dfsl.wtForNextFrame(), 1u);
}

TEST(Dfsl, ReEvaluationAdaptsToNewOptimum)
{
    DfslParams p;
    p.minWT = 1;
    p.maxWT = 3;
    p.runFrames = 2;
    DfslController dfsl(p);

    // Phase 1: WT 1 best.
    dfsl.frameCompleted(50);
    dfsl.frameCompleted(100);
    dfsl.frameCompleted(100);
    EXPECT_EQ(dfsl.bestWT(), 1u);
    dfsl.frameCompleted(50);
    dfsl.frameCompleted(50);

    // Phase 2: content changed, WT 3 best now.
    dfsl.frameCompleted(100);
    dfsl.frameCompleted(100);
    dfsl.frameCompleted(40);
    EXPECT_EQ(dfsl.bestWT(), 3u);
    EXPECT_EQ(dfsl.wtForNextFrame(), 3u);
}

TEST(Dfsl, RejectsBadRange)
{
    DfslParams p;
    p.minWT = 5;
    p.maxWT = 2;
    EXPECT_DEATH({ DfslController dfsl(p); }, "WT range");
}

TEST(Pmrb, OutOfOrderPopSkipsMissingMasks)
{
    Pmrb pmrb;
    pmrb.reset();
    auto prims = std::make_shared<std::vector<PrimRecord>>();
    // Mask for seq 10 arrives; seq 0 has not. In-order pop stalls,
    // OOO pop (paper Section 3.3.6) proceeds.
    pmrb.insert({10, 10, 0x3u, prims});
    EXPECT_FALSE(pmrb.headReady());
    ASSERT_TRUE(pmrb.anyReady());
    PrimitiveMask mask = pmrb.popAnyReady();
    EXPECT_EQ(mask.firstSeq, 10u);
    EXPECT_EQ(pmrb.occupancy(), 0u);

    // The late mask can still be consumed afterwards.
    pmrb.insert({0, 10, 0x1u, prims});
    ASSERT_TRUE(pmrb.anyReady());
    EXPECT_EQ(pmrb.popAnyReady().firstSeq, 0u);
    EXPECT_TRUE(pmrb.empty());
}

TEST(TcUnit, FragmentCountSumsAcrossSlots)
{
    TcUnit tc(2, 16, 8);
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0x0003u), 0)); // 2 frags.
    ASSERT_TRUE(tc.tryAdd(tileAt(1, 0, 0x00ffu), 0)); // 8 frags.
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 1, 0x000fu), 0)); // 4 frags.
    tc.drain();
    ASSERT_TRUE(tc.hasReady());
    EXPECT_EQ(tc.popReady().fragmentCount(), 14u);
}

TEST(TcUnit, ReadyQueueBoundRespected)
{
    TcUnit tc(1, 16, 1); // Ready queue of depth 1.
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 0, 0xffffu), 0));
    ASSERT_TRUE(tc.tryAdd(tileAt(1, 0, 0xffffu), 0));
    ASSERT_TRUE(tc.tryAdd(tileAt(0, 1, 0xffffu), 0));
    ASSERT_TRUE(tc.tryAdd(tileAt(1, 1, 0xffffu), 0)); // Full: flush.
    EXPECT_TRUE(tc.hasReady());
    // The freed engine can stage a new position, but with the ready
    // queue full a timeout cannot flush it out.
    ASSERT_TRUE(tc.tryAdd(tileAt(4, 4, 0xffffu), 0));
    tc.tickTimeouts(1000);
    EXPECT_FALSE(tc.empty());
    tc.popReady(); // Make room; now the drain can flush.
    tc.drain();
    ASSERT_TRUE(tc.hasReady());
    EXPECT_EQ(tc.popReady().tcX, 2u);
}
