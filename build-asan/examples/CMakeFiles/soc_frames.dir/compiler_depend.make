# Empty compiler generated dependencies file for soc_frames.
# This may be replaced when dependencies are built.
