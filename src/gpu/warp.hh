/**
 * @file
 * Warp tasks and warp execution state.
 *
 * Work reaches the SIMT cores as WarpTasks: 32 pre-initialized thread
 * contexts plus a program and execution environment. Vertex warps,
 * fragment warps (built by the TC stage) and compute warps (built by
 * the kernel dispatcher) all use this one abstraction — the unified
 * shader model the paper builds on GPGPU-Sim.
 */

#ifndef EMERALD_GPU_WARP_HH
#define EMERALD_GPU_WARP_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "gpu/isa/executor.hh"
#include "gpu/simt_stack.hh"

namespace emerald::gpu
{

enum class WarpTaskType : std::uint8_t { Vertex, Fragment, Compute };

/** A unit of shader work: one warp's worth of threads. */
struct WarpTask
{
    WarpTaskType type = WarpTaskType::Compute;
    const isa::Program *program = nullptr;
    std::array<isa::ThreadContext, isa::warpSize> threads;
    std::uint32_t activeMask = 0;
    isa::ExecEnv env;

    /**
     * Memory reads charged when the warp launches (vertex attribute
     * fetch, Section 3.3.3). The warp cannot issue until they return.
     */
    std::vector<isa::ThreadMemAccess> initFetch;
    AccessKind initFetchKind = AccessKind::Vertex;

    /** Barrier group for compute warps; -1 = no group. */
    int ctaKey = -1;
    /** Warps in the barrier group. */
    unsigned ctaWarps = 0;

    /** Caller-private identifier (TC tile id, batch id, ...). */
    std::uint64_t tag = 0;

    /**
     * Invoked when the warp fully completes (all threads exited, all
     * reads returned). Receives the final thread contexts.
     */
    std::function<void(WarpTask &, isa::ThreadContext *)> onComplete;
};

/** Runtime state of one warp slot inside a SIMT core. */
struct Warp
{
    bool valid = false;
    WarpTask task;
    SimtStack stack;

    /** Init-fetch transactions still outstanding. */
    unsigned pendingInitFetch = 0;
    /** Memory instructions with outstanding read transactions. */
    unsigned pendingMemInstrs = 0;
    bool atBarrier = false;
    /** Set when execution ran dry and the warp awaits drain. */
    bool draining = false;

    /** Instruction line of the last I-fetch (for L1I traffic). */
    std::int64_t lastFetchLine = -1;

    std::uint64_t warpInstrsExecuted = 0;

    /**
     * Core-wide launch order (monotonic per SimtCore); the GTO warp
     * scheduler's age tie-breaker. Only comparisons between
     * concurrently resident warps matter.
     */
    std::uint64_t launchSeq = 0;

    std::uint32_t
    aliveMask() const
    {
        std::uint32_t mask = 0;
        for (unsigned lane = 0; lane < isa::warpSize; ++lane) {
            if (task.threads[lane].alive)
                mask |= 1u << lane;
        }
        return mask;
    }

    /** True when no further instructions will issue. */
    bool
    executionDone() const
    {
        return stack.empty() || (stack.activeMask() & aliveMask()) == 0;
    }
};

} // namespace emerald::gpu

#endif // EMERALD_GPU_WARP_HH
