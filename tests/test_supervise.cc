/**
 * @file
 * Run-supervisor tests (src/sim/supervise/): failure classification
 * from real forked children (SIGKILL, spurious exit, hang report),
 * checkpoint-directory scanning with corrupt rotations skipped, the
 * retry/backoff loop, the deterministic-failure give-up with its
 * triage bundle, and the supervisor.json summary.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/serialize/serialize.hh"
#include "sim/supervise/supervisor.hh"

namespace emerald
{
namespace
{

namespace fs = std::filesystem;
using supervise::ChildSpec;
using supervise::FailureClass;
using supervise::SupervisorOptions;
using supervise::SupervisorResult;

std::string
tempDir(const std::string &leaf)
{
    std::string dir = ::testing::TempDir() + "emerald_sup_" + leaf;
    fs::remove_all(dir);
    return dir;
}

SupervisorOptions
quickOpts(const std::string &leaf)
{
    SupervisorOptions opts;
    opts.runDir = tempDir(leaf);
    opts.maxRetries = 3;
    opts.backoffBaseMs = 1;
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Write a real rotated checkpoint at @p tick under @p base. */
std::string
writeRotation(const std::string &base, Tick tick)
{
    char leaf[32];
    std::snprintf(leaf, sizeof(leaf), "auto-%020llu",
                  static_cast<unsigned long long>(tick));
    std::string dir = base + "/" + leaf;
    CheckpointWriter w(dir, 0xfeedULL, tick, tick / 10);
    w.section("s").putU64("x", tick);
    w.finalize();
    return dir;
}

TEST(SuperviseClassify, StableFailureClassNames)
{
    EXPECT_STREQ(failureClassName(FailureClass::Crash), "crash");
    EXPECT_STREQ(failureClassName(FailureClass::Hang), "hang");
    EXPECT_STREQ(failureClassName(FailureClass::CkptCorrupt),
                 "ckpt-corrupt");
    EXPECT_STREQ(failureClassName(FailureClass::OomKilled),
                 "oom-killed");
    EXPECT_STREQ(failureClassName(FailureClass::SpuriousExit),
                 "spurious-exit");
}

TEST(Supervise, CleanFirstAttemptIsOneAttemptNoFailures)
{
    SupervisorOptions opts = quickOpts("clean");
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &) { return 0; });
    EXPECT_TRUE(res.succeeded);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_FALSE(res.gaveUp);
    EXPECT_TRUE(res.failures.empty());
    EXPECT_EQ(res.finalExitCode, 0);
    EXPECT_TRUE(fs::exists(opts.runDir + "/supervisor.json"));
}

TEST(Supervise, SigkillClassifiedOomKilledThenRecovers)
{
    SupervisorOptions opts = quickOpts("sigkill");
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &spec) {
            if (spec.attempt == 0)
                ::raise(SIGKILL);
            return 0;
        });
    EXPECT_TRUE(res.succeeded);
    EXPECT_EQ(res.attempts, 2u);
    ASSERT_EQ(res.failures.size(), 1u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::OomKilled);
    EXPECT_EQ(res.failures[0].signal, SIGKILL);
    // No checkpoint dir configured: the retry was a cold start.
    EXPECT_EQ(res.failures[0].recoveredFromTick, 0u);

    std::string summary = readFile(opts.runDir + "/supervisor.json");
    EXPECT_NE(summary.find("\"oom-killed\""), std::string::npos);
    EXPECT_NE(summary.find("\"succeeded\": true"), std::string::npos);
}

TEST(Supervise, ExitZeroWithoutMarkerIsSpuriousExit)
{
    SupervisorOptions opts = quickOpts("spurious");
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &spec) {
            if (spec.attempt == 0)
                ::_exit(0); // bypass the marker the wrapper writes
            return 0;
        });
    EXPECT_TRUE(res.succeeded);
    EXPECT_EQ(res.attempts, 2u);
    ASSERT_EQ(res.failures.size(), 1u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::SpuriousExit);
}

TEST(Supervise, HangReportTrumpsExitStatus)
{
    SupervisorOptions opts = quickOpts("hang");
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &spec) {
            if (spec.attempt == 0) {
                // What the watchdog's abortWithReport does, minus
                // the simulator: write the report, then die.
                std::ofstream report(spec.hangReportPath);
                report << "{\"kind\": \"hang\"}\n";
                report.close();
                return 134;
            }
            return 0;
        });
    EXPECT_TRUE(res.succeeded);
    ASSERT_EQ(res.failures.size(), 1u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::Hang);
}

TEST(Supervise, DeterministicFailureGivesUpWithTriageBundle)
{
    SupervisorOptions opts = quickOpts("det");
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &) { return 3; });
    EXPECT_FALSE(res.succeeded);
    EXPECT_TRUE(res.gaveUp);
    // Same class, same recovery tick, twice in a row: stop at two
    // attempts even though the budget would allow four.
    EXPECT_EQ(res.attempts, 2u);
    ASSERT_EQ(res.failures.size(), 2u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::Crash);
    EXPECT_EQ(res.failures[1].cls, FailureClass::Crash);
    EXPECT_EQ(res.finalExitCode, 3);

    EXPECT_TRUE(fs::exists(opts.runDir + "/triage/log-tail.txt"));
    EXPECT_TRUE(fs::exists(opts.runDir + "/triage/ckpt-lineage.txt"));
    std::string summary = readFile(opts.runDir + "/supervisor.json");
    EXPECT_NE(summary.find("\"gave_up\": true"), std::string::npos);
}

TEST(Supervise, BudgetExhaustionGivesUp)
{
    SupervisorOptions opts = quickOpts("budget");
    opts.maxRetries = 2;
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &spec) {
            // Alternate failure modes so the deterministic-failure
            // detector never sees the same class twice in a row.
            if (spec.attempt % 2 == 0)
                ::raise(SIGKILL);
            return 7;
        });
    EXPECT_FALSE(res.succeeded);
    EXPECT_TRUE(res.gaveUp);
    EXPECT_EQ(res.attempts, 3u); // first try + maxRetries
    ASSERT_EQ(res.failures.size(), 3u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::OomKilled);
    EXPECT_EQ(res.failures[1].cls, FailureClass::Crash);
    EXPECT_EQ(res.failures[2].cls, FailureClass::OomKilled);
}

TEST(SuperviseScan, NewestUsableCheckpointSkipsCorruptRotations)
{
    std::string base = tempDir("scan");
    writeRotation(base, 100);
    std::string mid = writeRotation(base, 500);
    std::string newest = writeRotation(base, 900);
    // Truncate the newest rotation: the scan must fall back to the
    // mid one and report the damage.
    fs::resize_file(newest + "/data.bin", 2);

    std::vector<std::string> corrupt;
    Tick tick = 0;
    std::string pick =
        supervise::newestUsableCheckpoint(base, &corrupt, &tick);
    EXPECT_EQ(pick, mid);
    EXPECT_EQ(tick, 500u);
    ASSERT_EQ(corrupt.size(), 1u);
    EXPECT_NE(corrupt[0].find("auto-00000000000000000900"),
              std::string::npos);
    EXPECT_NE(corrupt[0].find("truncated-section"),
              std::string::npos);

    // An empty / absent base scans to nothing, quietly.
    EXPECT_EQ(supervise::newestUsableCheckpoint(
                  tempDir("scan_absent"), nullptr, nullptr),
              "");
}

TEST(SuperviseScan, NestedPerConfigRotationsAreFound)
{
    // Benches that build one simulation per config rotate under
    // <base>/<config>-<fingerprint>/auto-*; the scan is recursive.
    std::string base = tempDir("scan_nested");
    writeRotation(base + "/BAS-abc", 300);
    std::string newest = writeRotation(base + "/HMC-def", 800);
    Tick tick = 0;
    EXPECT_EQ(supervise::newestUsableCheckpoint(base, nullptr, &tick),
              newest);
    EXPECT_EQ(tick, 800u);
}

TEST(Supervise, RetryRestoresFromNewestCheckpointAndRecordsTick)
{
    SupervisorOptions opts = quickOpts("restore");
    opts.ckptDir = tempDir("restore_ckpt");
    writeRotation(opts.ckptDir, 200);
    std::string newest = writeRotation(opts.ckptDir, 600);

    SupervisorResult res = superviseRun(
        opts, [&](const ChildSpec &spec) {
            if (spec.attempt == 0)
                ::raise(SIGKILL);
            // The retry must be pointed at the newest rotation; a
            // nonzero exit here fails the test via the result.
            return spec.restoreDir == newest ? 0 : 9;
        });
    EXPECT_TRUE(res.succeeded) << "retry saw the wrong restoreDir";
    ASSERT_EQ(res.failures.size(), 1u);
    EXPECT_EQ(res.failures[0].recoveredFromTick, 600u);
}

TEST(Supervise, CorruptRotationRecordedAndOlderOneUsed)
{
    SupervisorOptions opts = quickOpts("corrupt");
    opts.ckptDir = tempDir("corrupt_ckpt");
    std::string older = writeRotation(opts.ckptDir, 250);
    std::string newest = writeRotation(opts.ckptDir, 750);
    fs::remove(newest + "/data.bin");

    SupervisorResult res = superviseRun(
        opts, [&](const ChildSpec &spec) {
            if (spec.attempt == 0)
                return 11;
            return spec.restoreDir == older ? 0 : 9;
        });
    EXPECT_TRUE(res.succeeded);
    // The damaged rotation shows up as an informational
    // ckpt-corrupt record alongside the crash itself.
    ASSERT_EQ(res.failures.size(), 2u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::Crash);
    EXPECT_EQ(res.failures[1].cls, FailureClass::CkptCorrupt);
    EXPECT_NE(res.failures[1].detail.find("missing-data"),
              std::string::npos)
        << res.failures[1].detail;
}

TEST(Supervise, KillAfterMsInjectsMidRunKill)
{
    SupervisorOptions opts = quickOpts("killafter");
    opts.killAfterMs = 20;
    SupervisorResult res = superviseRun(
        opts, [](const ChildSpec &spec) {
            if (spec.attempt == 0) {
                // Attempt 0 dawdles so the supervisor's timer lands.
                ::usleep(2000 * 1000);
            }
            return 0;
        });
    EXPECT_TRUE(res.succeeded);
    EXPECT_EQ(res.attempts, 2u);
    ASSERT_EQ(res.failures.size(), 1u);
    EXPECT_EQ(res.failures[0].cls, FailureClass::OomKilled);
}

} // namespace
} // namespace emerald
