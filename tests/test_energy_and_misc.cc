#include <gtest/gtest.h>

#include "core/energy.hh"
#include "mem/frfcfs_scheduler.hh"
#include "noc/link.hh"
#include "sim/random.hh"
#include "core/shader_builder.hh"
#include "scenes/shaders.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

core::FrameStats
render(soc::StandaloneGpu &rig, scenes::SceneRenderer &scene,
       unsigned frame)
{
    bool done = false;
    core::FrameStats stats;
    scene.renderFrame(frame, [&](const core::FrameStats &s) {
        stats = s;
        done = true;
    });
    EXPECT_TRUE(rig.runUntil([&] { return done; }));
    return stats;
}

} // namespace

TEST(EnergyModel, ZeroWindowZeroDynamicEnergy)
{
    soc::StandaloneGpu rig(64, 64);
    core::EnergyModel energy(rig.gpu(), rig.pipeline(), rig.memory());
    energy.snapshot();
    core::EnergyReport report = energy.report(0);
    EXPECT_DOUBLE_EQ(report.coreDynamic_uj, 0.0);
    EXPECT_DOUBLE_EQ(report.dram_uj, 0.0);
    EXPECT_DOUBLE_EQ(report.staticEnergy_uj, 0.0);
}

TEST(EnergyModel, FrameEnergyPositiveAndDecomposed)
{
    soc::StandaloneGpu rig(128, 96);
    scenes::SceneRenderer scene(
        rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W3_Cube),
        rig.functionalMemory());
    core::EnergyModel energy(rig.gpu(), rig.pipeline(), rig.memory());

    energy.snapshot();
    core::FrameStats stats = render(rig, scene, 0);
    core::EnergyReport report =
        energy.report(stats.endTick - stats.startTick);

    EXPECT_GT(report.coreDynamic_uj, 0.0);
    EXPECT_GT(report.cacheL1_uj, 0.0);
    EXPECT_GT(report.dram_uj, 0.0);
    EXPECT_GT(report.raster_uj, 0.0);
    EXPECT_GT(report.staticEnergy_uj, 0.0);
    EXPECT_NEAR(report.total_uj(),
                report.coreDynamic_uj + report.cacheL1_uj +
                    report.cacheL2_uj + report.dram_uj +
                    report.raster_uj + report.staticEnergy_uj,
                1e-9);
}

TEST(EnergyModel, MoreWorkMoreEnergy)
{
    soc::StandaloneGpu rig(128, 96);
    scenes::SceneRenderer small(
        rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W3_Cube),
        rig.functionalMemory());
    core::EnergyModel energy(rig.gpu(), rig.pipeline(), rig.memory());
    energy.snapshot();
    core::FrameStats s1 = render(rig, small, 0);
    double cube = energy.report(s1.endTick - s1.startTick).total_uj();

    soc::StandaloneGpu rig2(128, 96);
    scenes::SceneRenderer big(
        rig2.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W1_Sibenik),
        rig2.functionalMemory());
    core::EnergyModel energy2(rig2.gpu(), rig2.pipeline(),
                              rig2.memory());
    energy2.snapshot();
    core::FrameStats s2 = render(rig2, big, 0);
    double interior =
        energy2.report(s2.endTick - s2.startTick).total_uj();
    EXPECT_GT(interior, cube);
}

TEST(TriangleStrips, RenderAndMatchTriangleList)
{
    // The same quad as a strip and as a triangle list must rasterize
    // the same pixels (overlapped vertex warps, Section 3.3.3).
    soc::StandaloneGpu rig(64, 64);
    mem::FunctionalMemory &fmem = rig.functionalMemory();
    core::ShaderBuilder builder;
    const auto *vs =
        builder.buildVertex("vs", scenes::vertexShaderSource());
    core::RenderState state;
    state.cullBackface = false;
    const auto *fs = builder.buildFragment(
        "fs", scenes::fragmentFlatSource(), state);

    auto make_vertex = [](float x, float y, float *out) {
        out[0] = x;
        out[1] = y;
        out[2] = 0.5f;
        out[3] = 0;
        out[4] = 0;
        out[5] = 1;
        out[6] = 0;
        out[7] = 0;
    };

    auto run_draw = [&](core::PrimitiveType type,
                        const std::vector<std::pair<float, float>>
                            &verts)
        -> std::unique_ptr<core::Framebuffer> {
        std::vector<float> data(verts.size() * 8);
        for (std::size_t i = 0; i < verts.size(); ++i)
            make_vertex(verts[i].first, verts[i].second,
                        &data[i * 8]);
        Addr vb = fmem.allocate(data.size() * 4, 128);
        fmem.write(vb, data.data(), data.size() * 4);

        core::DrawCall draw;
        draw.vertexProgram = vs;
        draw.fragmentProgram = fs;
        draw.primType = type;
        draw.vertexCount = static_cast<unsigned>(verts.size());
        draw.vertexBufferAddr = vb;
        draw.floatsPerVertex = 8;
        draw.numVaryings = scenes::standardVaryings;
        draw.memory = &fmem;
        draw.state = state;
        draw.constants.resize(24, 0.0f);
        for (int i = 0; i < 4; ++i)
            draw.constants[static_cast<std::size_t>(i) * 5] = 1.0f;
        draw.constants[19] = 0.7f;

        auto fb = std::make_unique<core::Framebuffer>(64, 64);
        rig.pipeline().beginFrame(fb.get());
        rig.pipeline().submitDraw(std::move(draw));
        bool done = false;
        rig.pipeline().endFrame(
            [&](const core::FrameStats &) { done = true; });
        EXPECT_TRUE(rig.runUntil([&] { return done; }));
        return fb;
    };

    // Quad from (-0.5,-0.5) to (0.5,0.5).
    auto strip = run_draw(
        core::PrimitiveType::TriangleStrip,
        {{-0.5f, -0.5f}, {0.5f, -0.5f}, {-0.5f, 0.5f}, {0.5f, 0.5f}});
    auto list = run_draw(
        core::PrimitiveType::Triangles,
        {{-0.5f, -0.5f}, {0.5f, -0.5f}, {-0.5f, 0.5f},
         {0.5f, -0.5f}, {0.5f, 0.5f}, {-0.5f, 0.5f}});

    // Same coverage; colors may differ by 1 LSB per channel from
    // barycentric rounding across the different triangulations.
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            std::uint32_t a = strip->pixel(x, y);
            std::uint32_t b = list->pixel(x, y);
            ASSERT_EQ(a == 0xff000000u, b == 0xff000000u)
                << "coverage differs at " << x << "," << y;
            for (int ch = 0; ch < 4; ++ch) {
                int va = static_cast<int>((a >> (ch * 8)) & 0xff);
                int vb = static_cast<int>((b >> (ch * 8)) & 0xff);
                ASSERT_LE(std::abs(va - vb), 1)
                    << "channel " << ch << " at " << x << "," << y;
            }
        }
    }
}

TEST(TriangleStrips, LongStripUsesOverlappedWarps)
{
    // A strip longer than one warp exercises the vertex overlap
    // logic: every primitive must still appear.
    soc::StandaloneGpu rig(96, 64);
    mem::FunctionalMemory &fmem = rig.functionalMemory();
    core::ShaderBuilder builder;
    const auto *vs =
        builder.buildVertex("vs", scenes::vertexShaderSource());
    core::RenderState state;
    state.cullBackface = false;
    const auto *fs = builder.buildFragment(
        "fs", scenes::fragmentFlatSource(), state);

    // A horizontal ribbon of 80 vertices (78 triangles).
    unsigned n = 80;
    std::vector<float> data(n * 8, 0.0f);
    for (unsigned i = 0; i < n; ++i) {
        float x = -0.9f + 1.8f * static_cast<float>(i / 2) /
                              static_cast<float>(n / 2 - 1);
        float y = (i & 1) ? 0.25f : -0.25f;
        data[i * 8] = x;
        data[i * 8 + 1] = y;
        data[i * 8 + 2] = 0.5f;
        data[i * 8 + 5] = 1.0f;
    }
    Addr vb = fmem.allocate(data.size() * 4, 128);
    fmem.write(vb, data.data(), data.size() * 4);

    core::DrawCall draw;
    draw.vertexProgram = vs;
    draw.fragmentProgram = fs;
    draw.primType = core::PrimitiveType::TriangleStrip;
    draw.vertexCount = n;
    draw.vertexBufferAddr = vb;
    draw.floatsPerVertex = 8;
    draw.numVaryings = scenes::standardVaryings;
    draw.memory = &fmem;
    draw.state = state;
    draw.constants.resize(24, 0.0f);
    for (int i = 0; i < 4; ++i)
        draw.constants[static_cast<std::size_t>(i) * 5] = 1.0f;
    draw.constants[19] = 0.7f;

    core::Framebuffer fb(96, 64);
    rig.pipeline().beginFrame(&fb);
    rig.pipeline().submitDraw(std::move(draw));
    bool done = false;
    core::FrameStats stats;
    rig.pipeline().endFrame([&](const core::FrameStats &s) {
        stats = s;
        done = true;
    });
    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    EXPECT_EQ(stats.primsIn, n - 2);

    // The whole ribbon drew: a horizontal run of covered pixels.
    unsigned covered = 0;
    for (unsigned x = 5; x < 91; ++x)
        if (fb.pixel(static_cast<int>(x), 32) != 0xff000000u)
            ++covered;
    EXPECT_GT(covered, 80u);
}

TEST(MemoryConservation, EveryReadGetsExactlyOneResponse)
{
    // Property: through link -> L2-style cache -> DRAM, N read
    // requests produce exactly N responses (no loss, no duplication).
    Simulation sim;
    ClockDomain &clk = sim.createClockDomain(1000.0, "clk");

    mem::MemorySystemParams mp;
    mp.geom.channels = 2;
    mp.timing = mem::lpddr3Timing(1333, 32, 128);
    mem::FrfcfsScheduler sched;
    mem::MemorySystem memory(sim, "mem", mp, sched);

    cache::CacheParams cp;
    cp.sizeBytes = 8 * 1024;
    cp.assoc = 4;
    cache::Cache l2(sim, "l2", clk, cp);
    noc::LinkParams lp;
    noc::Link link(sim, "link", lp);
    link.setTarget(memory);
    l2.setDownstream(link);

    struct Counter : MemClient
    {
        unsigned responses = 0;
        void
        memResponse(MemPacket *pkt) override
        {
            ++responses;
            delete pkt;
        }
    } counter;

    emerald::Random rng(99);
    unsigned sent = 0;
    for (int burst = 0; burst < 40; ++burst) {
        for (int i = 0; i < 8; ++i) {
            Addr addr = (rng.next() % 512) * 128;
            auto *pkt = new MemPacket(addr, 4, rng.chance(0.25),
                                      TrafficClass::Gpu,
                                      AccessKind::GlobalData, 0,
                                      &counter);
            if (l2.tryAccept(pkt)) {
                ++sent;
            } else {
                delete pkt;
            }
        }
        sim.run();
    }
    EXPECT_EQ(counter.responses, sent);
}
