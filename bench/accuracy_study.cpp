/**
 * @file
 * Paper Section 3.4 (model accuracy): the authors profiled Emerald
 * against a Tegra K1 with 14 microbenchmarks and report draw-time
 * correlation (98%, 32.2% mean abs rel error) and pixel-fill-rate
 * correlation (76.5%, 33%).
 *
 * No GPU hardware exists in this environment, so the hardware
 * reference is substituted with a calibrated first-order analytical
 * model (ideal-throughput cost model of the same draws) — this
 * reproduces the *methodology* and reports the same metrics; see
 * DESIGN.md's substitution table.
 */

#include "core/shader_builder.hh"
#include "harness.hh"
#include "registry.hh"
#include "scenes/procedural.hh"
#include "scenes/shaders.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

struct MicroBench
{
    const char *name;
    unsigned sphereSegs; // Geometry density knob.
    float radius;        // Screen coverage knob.
    bool heavy;          // Fragment shader cost knob.
};

} // namespace

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "accuracy_study");
    BenchResults &results = *harness.results;
    unsigned fbw = 256, fbh = 192;

    // 14 microbenchmarks spanning geometry load, screen coverage and
    // shader cost (the paper's used draw-call microbenchmarks too).
    const MicroBench micro[14] = {
        {"ub01-tiny-geom", 8, 0.4f, false},
        {"ub02-tiny-geom-big", 8, 1.2f, false},
        {"ub03-low-geom", 16, 0.6f, false},
        {"ub04-low-geom-big", 16, 1.4f, false},
        {"ub05-mid-geom", 32, 0.5f, false},
        {"ub06-mid-geom-big", 32, 1.3f, false},
        {"ub07-high-geom", 56, 0.6f, false},
        {"ub08-high-geom-big", 56, 1.4f, false},
        {"ub09-tiny-heavy", 8, 0.8f, true},
        {"ub10-low-heavy", 16, 1.0f, true},
        {"ub11-mid-heavy", 32, 1.2f, true},
        {"ub12-high-heavy", 48, 1.2f, true},
        {"ub13-dense", 64, 0.9f, false},
        {"ub14-dense-heavy", 64, 0.9f, true},
    };

    std::printf("=== Section 3.4: draw-time accuracy study ===\n");
    std::printf("%-20s %12s %12s %10s %12s %10s\n", "microbench",
                "emerald(cy)", "ref(cy)", "err", "fill(px/cy)",
                "ref fill");

    std::vector<double> sim_time, ref_time, sim_fill, ref_fill;
    double abs_err_sum = 0;

    for (const MicroBench &mb : micro) {
        soc::StandaloneGpu rig(fbw, fbh);

        scenes::Workload w;
        w.name = mb.name;
        w.mesh = scenes::makeSphere(mb.radius, mb.sphereSegs,
                                    mb.sphereSegs / 2);
        w.heavyShader = mb.heavy;
        w.textureSize = 256;
        w.camera.radius = 3.0f;
        scenes::SceneRenderer scene(rig.pipeline(), std::move(w),
                                    rig.functionalMemory());
        renderFrame(rig, scene, 0);
        core::FrameStats s = renderFrame(rig, scene, 1);

        // First-order analytical reference ("hardware" stand-in):
        // geometry-limited + fragment-limited + fixed overhead, with
        // idealized per-unit throughputs.
        unsigned cores = rig.gpu().numCores();
        double vs_instr = 30.0, fs_instr = mb.heavy ? 28.0 : 12.0;
        double geom = static_cast<double>(s.vertices) * vs_instr /
                      (cores * 32.0);
        double frag = static_cast<double>(s.fragments) *
                      (fs_instr + 8.0) / (cores * 32.0);
        double raster = static_cast<double>(s.rasterTiles) /
                        rig.gpu().numClusters();
        double ref = 3000.0 + geom + std::max(frag, raster) * 2.2;

        double err = std::fabs(static_cast<double>(s.cycles) - ref) /
                     ref;
        abs_err_sum += err;
        sim_time.push_back(static_cast<double>(s.cycles));
        ref_time.push_back(ref);
        double fill = static_cast<double>(s.fragments) /
                      static_cast<double>(s.cycles);
        double rfill = static_cast<double>(s.fragments) / ref;
        sim_fill.push_back(fill);
        ref_fill.push_back(rfill);
        std::printf("%-20s %12llu %12.0f %9.1f%% %12.4f %10.4f\n",
                    mb.name, (unsigned long long)s.cycles, ref,
                    err * 100.0, fill, rfill);
        std::fflush(stdout);
    }

    results.record("drawtime_correlation",
                   correlation(sim_time, ref_time));
    results.record("drawtime_mean_abs_rel_err", abs_err_sum / 14.0);
    results.record("fillrate_correlation",
                   correlation(sim_fill, ref_fill));
    std::printf("\ndraw time:  correlation %.1f%%, mean abs rel err "
                "%.1f%%\n",
                correlation(sim_time, ref_time) * 100.0,
                abs_err_sum / 14.0 * 100.0);
    std::printf("fill rate:  correlation %.1f%%\n",
                correlation(sim_fill, ref_fill) * 100.0);
    std::printf("\npaper reports: draw-time correlation 98%% (32.2%% "
                "mean abs err), fill-rate correlation 76.5%% vs Tegra "
                "K1 hardware\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "accuracy_study",
    .desc = "Section 3.4 draw-time/fill-rate accuracy methodology vs analytical reference",
    .axes = {},
    .expectedShape = "draw-time correlation high, mean abs rel err tens of percent",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
