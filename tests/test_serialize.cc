/**
 * @file
 * Tests for the checkpoint/restore subsystem (src/sim/serialize/):
 * the typed record codec and its strict schema checking, the
 * writer/reader directory format, Random state round-trips, stats
 * round-trips, in-flight packet and RetryList serialization, event
 * queue re-scheduling, the config-fingerprint refusal, and the
 * end-to-end warm-start oracle — a restored SoC run must finish with
 * exactly the cold run's event-stream hash.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/packet.hh"
#include "sim/random.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/serialize/serialize.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "sim/stats.hh"
#include "soc/soc_top.hh"

namespace emerald
{
namespace
{

std::string
tempDir(const std::string &leaf)
{
    return ::testing::TempDir() + "emerald_" + leaf;
}

/** Encode @p out and decode it back as a CheckpointIn. */
CheckpointIn
roundTrip(const CheckpointOut &out)
{
    const std::string &bytes = out.bytes();
    return CheckpointIn(out.sectionName(), bytes.data(), bytes.size());
}

// Record codec ---------------------------------------------------------

TEST(CheckpointCodec, RoundTripsEveryRecordType)
{
    CheckpointOut out("test");
    out.putU64("u", 0xdeadbeefcafef00dULL);
    out.putI64("i", -42);
    out.putF64("f", 3.25);
    out.putBool("b0", false);
    out.putBool("b1", true);
    out.putStr("s", "hello checkpoint");
    const char blob[] = {0x00, 0x01, 0x7f, (char)0xff};
    out.putBlob("blob", blob, sizeof(blob));
    out.putU64Vec("uv", {1, 2, 3});
    out.putF64Vec("fv", {0.5, -1.5});
    out.putTick("t", 12345);

    CheckpointIn in = roundTrip(out);
    EXPECT_EQ(in.getU64("u"), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(in.getI64("i"), -42);
    EXPECT_DOUBLE_EQ(in.getF64("f"), 3.25);
    EXPECT_FALSE(in.getBool("b0"));
    EXPECT_TRUE(in.getBool("b1"));
    EXPECT_EQ(in.getStr("s"), "hello checkpoint");
    EXPECT_EQ(in.getBlob("blob"), std::string(blob, sizeof(blob)));
    EXPECT_EQ(in.getU64Vec("uv"), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(in.getF64Vec("fv"), (std::vector<double>{0.5, -1.5}));
    EXPECT_EQ(in.getTick("t"), 12345u);
    EXPECT_TRUE(in.has("u"));
    EXPECT_FALSE(in.has("nope"));
}

TEST(CheckpointCodec, MissingKeyIsFatal)
{
    CheckpointOut out("test");
    out.putU64("present", 1);
    CheckpointIn in = roundTrip(out);
    EXPECT_DEATH(in.getU64("absent"), "missing key");
}

TEST(CheckpointCodec, TypeMismatchIsFatal)
{
    CheckpointOut out("test");
    out.putF64("f", 1.0);
    CheckpointIn in = roundTrip(out);
    EXPECT_DEATH(in.getU64("f"), "expected");
}

TEST(CheckpointCodec, DuplicateKeyIsFatal)
{
    CheckpointOut out("test");
    out.putU64("k", 1);
    EXPECT_DEATH(out.putU64("k", 2), "duplicate key");
}

// Writer / reader directory format -------------------------------------

TEST(CheckpointDir, WriterReaderRoundTrip)
{
    std::string dir = tempDir("ckpt_dir");
    {
        CheckpointWriter w(dir, 0xabcdULL, 777, 99);
        w.section("alpha").putU64("x", 11);
        w.section("beta").putStr("y", "z");
        w.finalize();
    }
    CheckpointReader r(dir);
    EXPECT_EQ(r.configFingerprint(), 0xabcdULL);
    EXPECT_EQ(r.tick(), 777u);
    EXPECT_EQ(r.numProcessed(), 99u);
    EXPECT_TRUE(r.hasSection("alpha"));
    EXPECT_TRUE(r.hasSection("beta"));
    EXPECT_FALSE(r.hasSection("gamma"));
    EXPECT_EQ(r.section("alpha").getU64("x"), 11u);
    EXPECT_EQ(r.section("beta").getStr("y"), "z");
}

TEST(CheckpointDir, MissingSectionIsFatal)
{
    std::string dir = tempDir("ckpt_missing_section");
    {
        CheckpointWriter w(dir, 1, 0, 0);
        w.section("only").putU64("x", 1);
        w.finalize();
    }
    CheckpointReader r(dir);
    EXPECT_DEATH(r.section("other"), "no section");
}

TEST(CheckpointDir, NotACheckpointDirIsFatal)
{
    EXPECT_DEATH(CheckpointReader r(tempDir("ckpt_nonexistent")),
                 "checkpoint directory");
}

// Random ---------------------------------------------------------------

TEST(CheckpointRandom, StateRoundTripContinuesTheStream)
{
    Random rng(12345);
    for (int i = 0; i < 100; ++i)
        rng.next();
    auto state = rng.state();
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 32; ++i)
        expect.push_back(rng.next());

    Random other(999); // Different seed; state overrides it.
    other.setState(state);
    for (std::uint64_t v : expect)
        EXPECT_EQ(other.next(), v);
}

// Stats ----------------------------------------------------------------

TEST(CheckpointStats, TreeRoundTripsScalarDistributionTimeSeries)
{
    StatGroup root("");
    StatGroup node(root, "node");
    Scalar sc(node, "sc", "scalar");
    Distribution di(node, "di", "distribution");
    TimeSeries ts(node, "ts", "timeseries", 100);
    sc = 42.5;
    di.sample(1.0);
    di.sample(9.0, 3);
    ts.add(50, 2.0);
    ts.add(250, 5.0);

    CheckpointOut out("stats");
    root.serializeStats(out);
    CheckpointIn in = roundTrip(out);

    StatGroup root2("");
    StatGroup node2(root2, "node");
    Scalar sc2(node2, "sc", "scalar");
    Distribution di2(node2, "di", "distribution");
    TimeSeries ts2(node2, "ts", "timeseries", 100);
    root2.unserializeStats(in);

    EXPECT_DOUBLE_EQ(sc2.value(), 42.5);
    EXPECT_EQ(di2.count(), 4u);
    EXPECT_DOUBLE_EQ(di2.total(), 28.0);
    EXPECT_DOUBLE_EQ(di2.min(), 1.0);
    EXPECT_DOUBLE_EQ(di2.max(), 9.0);
    ASSERT_EQ(ts2.buckets().size(), 3u);
    EXPECT_DOUBLE_EQ(ts2.buckets()[0], 2.0);
    EXPECT_DOUBLE_EQ(ts2.buckets()[2], 5.0);
}

TEST(CheckpointStats, StatAbsentFromCheckpointIsFatal)
{
    StatGroup root("");
    Scalar sc(root, "present", "x");
    CheckpointOut out("stats");
    root.serializeStats(out);
    CheckpointIn in = roundTrip(out);

    // The reader binary grew a stat the checkpoint does not carry:
    // strict restore must refuse, not zero-fill.
    StatGroup root2("");
    Scalar sc2(root2, "present", "x");
    Scalar added(root2, "added_later", "x");
    EXPECT_DEATH(root2.unserializeStats(in), "missing key");
}

TEST(CheckpointStats, TimeSeriesBucketWidthMismatchIsFatal)
{
    StatGroup root("");
    TimeSeries ts(root, "ts", "x", 100);
    CheckpointOut out("stats");
    root.serializeStats(out);
    CheckpointIn in = roundTrip(out);

    StatGroup root2("");
    TimeSeries ts2(root2, "ts", "x", 200);
    EXPECT_DEATH(root2.unserializeStats(in), "bucket width");
}

// Packets and retry lists ----------------------------------------------

class RecordingClient : public MemClient
{
  public:
    void memResponse(MemPacket *pkt) override { freePacket(pkt); }
};

class NamedRequestor : public MemRequestor
{
  public:
    explicit NamedRequestor(std::string name) : _name(std::move(name)) {}
    void retryRequest() override {}
    std::string requestorName() const override { return _name; }

  private:
    std::string _name;
};

TEST(CheckpointPacket, LivePacketRoundTripsThroughThePool)
{
    Simulation sim;
    RecordingClient client;
    sim.checkpointRegistry().registerClient("cl", client);

    MemPacket *pkt = sim.packetPool().alloc(
        0x1234u, 64u, true, TrafficClass::Gpu, AccessKind::Texture, 7,
        &client, 55u);
    pkt->issued = 900;

    CheckpointOut out("pkt");
    putPacket(out, "p", *pkt, sim.checkpointRegistry());
    freePacket(pkt);
    EXPECT_EQ(sim.packetPool().live(), 0u);

    CheckpointIn in = roundTrip(out);
    MemPacket *back = getPacket(in, "p", sim.packetPool(),
                                sim.checkpointRegistry());
    EXPECT_EQ(sim.packetPool().live(), 1u);
    EXPECT_EQ(back->addr, 0x1234u);
    EXPECT_EQ(back->size, 64u);
    EXPECT_TRUE(back->write);
    EXPECT_EQ(back->tclass, TrafficClass::Gpu);
    EXPECT_EQ(back->kind, AccessKind::Texture);
    EXPECT_EQ(back->requestorId, 7);
    EXPECT_EQ(back->client, &client);
    EXPECT_EQ(back->token, 55u);
    EXPECT_EQ(back->issued, 900u);
    freePacket(back);
}

TEST(CheckpointPacket, PostedWriteRestoresNullClient)
{
    Simulation sim;
    MemPacket *pkt = sim.packetPool().alloc(
        0x40u, 32u, true, TrafficClass::Display, AccessKind::Writeback,
        2, nullptr, 0u);
    CheckpointOut out("pkt");
    putPacket(out, "p", *pkt, sim.checkpointRegistry());
    freePacket(pkt);

    CheckpointIn in = roundTrip(out);
    MemPacket *back = getPacket(in, "p", sim.packetPool(),
                                sim.checkpointRegistry());
    EXPECT_EQ(back->client, nullptr);
    EXPECT_TRUE(back->posted());
    freePacket(back);
}

TEST(CheckpointPacket, PoolHighWaterRestores)
{
    Simulation sim;
    sim.packetPool().restoreLiveHighWater(17);
    EXPECT_EQ(sim.packetPool().liveHighWater(), 17u);
    EXPECT_DOUBLE_EQ(sim.packetPool().statLiveHighWater.value(), 17.0);
}

TEST(CheckpointRetryList, ParkedWaitersRestoreInFifoOrder)
{
    Simulation sim;
    NamedRequestor a("req.a"), b("req.b"), c("req.c");
    sim.checkpointRegistry().registerRequestor("req.a", a);
    sim.checkpointRegistry().registerRequestor("req.b", b);
    sim.checkpointRegistry().registerRequestor("req.c", c);

    RetryList list;
    list.add(b);
    list.add(a);
    list.add(c);

    CheckpointOut out("rl");
    list.serialize(out, "retry", sim.checkpointRegistry());
    CheckpointIn in = roundTrip(out);

    RetryList other;
    other.unserialize(in, "retry", sim.checkpointRegistry());
    ASSERT_EQ(other.size(), 3u);
    EXPECT_EQ(other.waiters()[0], &b);
    EXPECT_EQ(other.waiters()[1], &a);
    EXPECT_EQ(other.waiters()[2], &c);
}

// Event queue ----------------------------------------------------------

TEST(CheckpointEventQueue, RestoredScheduleReproducesFireOrder)
{
    std::vector<int> fired;
    EventQueue q;
    EventFunction e1([&] { fired.push_back(1); }, "e1");
    EventFunction e2([&] { fired.push_back(2); }, "e2",
                     Event::clockPriority);
    EventFunction e3([&] { fired.push_back(3); }, "e3");
    EventFunction e4([&] { fired.push_back(4); }, "e4");

    // Same tick: priority then scheduling order breaks the tie.
    q.schedule(e3, 100);
    q.schedule(e1, 100);
    q.schedule(e2, 100);
    q.schedule(e4, 50);

    auto live = q.liveEventsSorted();
    ASSERT_EQ(live.size(), 4u);
    EXPECT_EQ(live[0].event, &e4); // Earliest tick first.
    EXPECT_EQ(live[1].event, &e2); // clockPriority beats default.
    EXPECT_EQ(live[2].event, &e3); // Then scheduling order.
    EXPECT_EQ(live[3].event, &e1);

    // Simulate a restore: wipe the queue, jump time, re-schedule the
    // saved set in service order on the "fresh" queue.
    q.clearForRestore();
    EXPECT_TRUE(q.empty());
    q.restoreTime(40, 7);
    EXPECT_EQ(q.curTick(), 40u);
    EXPECT_EQ(q.numProcessed(), 7u);
    for (const auto &ref : live)
        q.schedule(*ref.event, ref.when);

    while (q.runOne()) {}
    EXPECT_EQ(fired, (std::vector<int>{4, 2, 3, 1}));
    EXPECT_EQ(q.numProcessed(), 11u);
}

// Integrity probe ------------------------------------------------------

/** A small two-section checkpoint to damage in controlled ways. */
std::string
probeFixture(const std::string &leaf)
{
    std::string dir = tempDir(leaf);
    std::filesystem::remove_all(dir);
    CheckpointWriter w(dir, 0xfeedULL, 777, 99);
    w.section("alpha").putU64("x", 11);
    w.section("beta").putStr("y", "payload bytes the crc covers");
    w.finalize();
    return dir;
}

void
patchFile(const std::string &path, long offset, char byte)
{
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekp(offset);
    f.put(byte);
}

TEST(CheckpointProbe, IntactCheckpointReportsHeader)
{
    CkptProbe probe = probeCheckpoint(probeFixture("probe_ok"));
    EXPECT_TRUE(probe.ok());
    EXPECT_EQ(probe.status, CkptIntegrity::Ok);
    EXPECT_EQ(probe.fingerprint, 0xfeedULL);
    EXPECT_EQ(probe.tick, 777u);
    EXPECT_EQ(probe.numProcessed, 99u);
    EXPECT_STREQ(ckptIntegrityName(probe.status), "ok");
}

TEST(CheckpointProbe, BitFlipIsCrcMismatchNotFatal)
{
    std::string dir = probeFixture("probe_flip");
    // Flip one byte inside the second section's payload.
    auto size = std::filesystem::file_size(dir + "/data.bin");
    patchFile(dir + "/data.bin", static_cast<long>(size) - 3, 'X');

    CkptProbe probe = probeCheckpoint(dir);
    EXPECT_EQ(probe.status, CkptIntegrity::CrcMismatch);
    EXPECT_NE(probe.detail.find("beta"), std::string::npos)
        << probe.detail;

    // The strict reader refuses the same damage loudly.
    EXPECT_DEATH(CheckpointReader r(dir), "fails CRC");
}

TEST(CheckpointProbe, TruncationIsTruncatedSection)
{
    std::string dir = probeFixture("probe_trunc");
    std::filesystem::resize_file(dir + "/data.bin", 4);
    CkptProbe probe = probeCheckpoint(dir);
    EXPECT_EQ(probe.status, CkptIntegrity::TruncatedSection);
    EXPECT_DEATH(CheckpointReader r(dir), "past the end");
}

TEST(CheckpointProbe, MissingAndMalformedPieces)
{
    std::string dir = probeFixture("probe_nodata");
    std::filesystem::remove(dir + "/data.bin");
    EXPECT_EQ(probeCheckpoint(dir).status, CkptIntegrity::MissingData);

    dir = probeFixture("probe_nomanifest");
    std::filesystem::remove(dir + "/manifest.json");
    EXPECT_EQ(probeCheckpoint(dir).status,
              CkptIntegrity::MissingManifest);
    EXPECT_EQ(probeCheckpoint(tempDir("probe_absent")).status,
              CkptIntegrity::MissingManifest);

    dir = probeFixture("probe_garbage");
    {
        std::ofstream mf(dir + "/manifest.json", std::ios::trunc);
        mf << "{ this is not json";
    }
    EXPECT_EQ(probeCheckpoint(dir).status,
              CkptIntegrity::MalformedManifest);
}

/** Rewrite @p dir's manifest as a version-1 checkpoint: no CRC
 *  entries, so integrity verification downgrades to bounds checks. */
void
downgradeManifestToV1(const std::string &dir)
{
    std::string path = dir + "/manifest.json";
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    in.close();

    auto vpos = text.find("\"format_version\": \"2\"");
    ASSERT_NE(vpos, std::string::npos);
    text.replace(vpos, std::strlen("\"format_version\": \"2\""),
                 "\"format_version\": \"1\"");
    for (std::string::size_type pos;
         (pos = text.find(", \"crc\": \"")) != std::string::npos;) {
        auto end = text.find('"', pos + std::strlen(", \"crc\": \""));
        ASSERT_NE(end, std::string::npos);
        text.erase(pos, end + 1 - pos);
    }
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

TEST(CheckpointProbe, Version1ManifestStillReadsWithoutCrc)
{
    std::string dir = probeFixture("probe_v1");
    downgradeManifestToV1(dir);

    // Probe passes (no CRCs to verify) and the reader still serves
    // the sections: min-read compatibility.
    EXPECT_EQ(probeCheckpoint(dir).status, CkptIntegrity::Ok);
    CheckpointReader r(dir);
    EXPECT_EQ(r.section("alpha").getU64("x"), 11u);

    // A corrupt v1 checkpoint sails through the probe — exactly why
    // the format moved to 2.
    auto size = std::filesystem::file_size(dir + "/data.bin");
    patchFile(dir + "/data.bin", static_cast<long>(size) - 3, 'X');
    EXPECT_EQ(probeCheckpoint(dir).status, CkptIntegrity::Ok);
}

TEST(CheckpointProbe, FutureVersionIsUnsupported)
{
    std::string dir = probeFixture("probe_future");
    std::string path = dir + "/manifest.json";
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    in.close();
    auto vpos = text.find("\"format_version\": \"2\"");
    ASSERT_NE(vpos, std::string::npos);
    text.replace(vpos, std::strlen("\"format_version\": \"2\""),
                 "\"format_version\": \"99\"");
    {
        std::ofstream out(path, std::ios::trunc);
        out << text;
    }
    EXPECT_EQ(probeCheckpoint(dir).status,
              CkptIntegrity::UnsupportedVersion);
    EXPECT_DEATH(CheckpointReader r(dir), "format version");
}

// Fingerprint policy ---------------------------------------------------

TEST(CheckpointFingerprint, MismatchRefusesRestore)
{
    std::string dir = tempDir("ckpt_fp_mismatch");
    {
        Simulation sim;
        sim.setConfigFingerprint(0x1111);
        sim.saveCheckpoint(dir);
    }
    Simulation sim;
    sim.setConfigFingerprint(0x2222);
    sim.setRestoreSpec(dir, false);
    EXPECT_DEATH(sim.restoreCheckpoint(), "config fingerprint");
}

TEST(CheckpointFingerprint, ForceDowngradesMismatchToWarning)
{
    std::string dir = tempDir("ckpt_fp_force");
    {
        Simulation sim;
        sim.setConfigFingerprint(0x1111);
        sim.saveCheckpoint(dir);
    }
    Simulation sim;
    sim.setConfigFingerprint(0x2222);
    sim.setRestoreSpec(dir, true);
    EXPECT_TRUE(sim.restorePending());
    sim.restoreCheckpoint();
    EXPECT_TRUE(sim.restored());
    EXPECT_FALSE(sim.restorePending());
}

// End-to-end warm start ------------------------------------------------

soc::SocParams
smallSocParams()
{
    soc::SocParams p;
    p.model = scenes::WorkloadId::M4_Triangles;
    p.frames = 2;
    p.fbWidth = 128;
    p.fbHeight = 96;
    p.cpuPrepRequests = 200;
    return p;
}

TEST(CheckpointSoc, WarmStartReproducesColdEventHash)
{
    std::string dir = tempDir("ckpt_soc");
    soc::SocParams p = smallSocParams();

    std::uint64_t cold_hash = 0, cold_events = 0;
    {
        soc::SocTop soc(p, SimulationBuilder().checkDeterminism());
        soc.run(ticksFromMs(500.0));
        cold_hash = soc.sim().determinismHash();
        cold_events = soc.sim().eventQueue().numProcessed();
        ASSERT_NE(cold_hash, 0u);
    }
    {
        // The checkpointing run itself must not perturb the stream:
        // the trigger rides the instrument chain between events.
        soc::SocTop soc(p, SimulationBuilder()
                               .checkDeterminism()
                               .checkpointAt(ticksFromMs(10.0), dir));
        soc.run(ticksFromMs(500.0));
        EXPECT_EQ(soc.sim().determinismHash(), cold_hash);
        EXPECT_EQ(soc.sim().eventQueue().numProcessed(), cold_events);
    }
    {
        // The oracle: a warm start resumes the cold run's hash stream
        // and must land on the same final hash and event count.
        soc::SocTop soc(p, SimulationBuilder()
                               .checkDeterminism()
                               .restoreFrom(dir));
        EXPECT_TRUE(soc.sim().restored());
        soc.run(ticksFromMs(500.0));
        EXPECT_EQ(soc.sim().determinismHash(), cold_hash);
        EXPECT_EQ(soc.sim().eventQueue().numProcessed(), cold_events);
        EXPECT_EQ(soc.app().frames().size(), 2u);
    }
}

TEST(CheckpointSoc, RestoreIntoDifferentConfigIsFatal)
{
    std::string dir = tempDir("ckpt_soc_mismatch");
    soc::SocParams p = smallSocParams();
    {
        soc::SocTop soc(p, SimulationBuilder()
                               .checkDeterminism()
                               .checkpointAt(ticksFromMs(10.0), dir));
        soc.run(ticksFromMs(500.0));
    }
    soc::SocParams other = p;
    other.memConfig = soc::MemConfig::HMC;
    EXPECT_DEATH(
        {
            soc::SocTop soc(other, SimulationBuilder()
                                       .checkDeterminism()
                                       .restoreFrom(dir));
        },
        "config fingerprint");
}

} // namespace
} // namespace emerald
