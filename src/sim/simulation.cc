#include "sim/simulation.hh"

#include <fstream>

#include <algorithm>

#include "sim/check/context.hh"
#include "sim/check/determinism.hh"
#include "sim/config.hh"
#include "sim/fault/fault_injector.hh"
#include "sim/fault/watchdog.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/simulation_builder.hh"

namespace emerald
{

Simulation::Simulation()
    : _statsRoot(""), _simGroup(_statsRoot, "sim"),
      _checkGroup(_simGroup, "check"),
      _statEventHash(_checkGroup, "event_hash",
                     "FNV hash of the processed event stream "
                     "(53-bit fold; 0 = check disabled)"),
      _packetPool(std::make_unique<PacketPool>(_simGroup)),
      _profiler(std::make_unique<EventProfiler>(_simGroup))
{
#ifdef EMERALD_CHECKS
    _checkContext = std::make_unique<check::CheckContext>(_eq);
#endif
}

Simulation::~Simulation()
{
    // Leak/quiescence verification must run while components (and the
    // packet pool) are still alive; a drained event queue is the gate
    // that distinguishes leaks from traffic legally still in flight.
    if (_checkContext)
        _checkContext->onTeardown(_eq.empty());

    flushStatsJson();
}

void
Simulation::flushStatsJson()
{
    if (_statsJsonOnExit.empty())
        return;
    std::ofstream os(_statsJsonOnExit);
    if (!os.is_open()) {
        warn("cannot open stats file '%s'", _statsJsonOnExit.c_str());
        return;
    }
    dumpStatsJson(os);
}

void
Simulation::unregisterObject(SimObject *obj)
{
    auto it = std::find(_objects.begin(), _objects.end(), obj);
    if (it != _objects.end())
        _objects.erase(it);
}

void
Simulation::configureFaults(const std::string &plan_text,
                            std::uint64_t seed)
{
    fault::FaultPlan plan = fault::FaultPlan::parse(plan_text);
    if (plan.empty())
        return;
    panic_if(_faultInjector != nullptr,
             "configureFaults called twice on one Simulation");
    _faultInjector = std::make_unique<fault::FaultInjector>(
        _eq, _simGroup, std::move(plan), seed);
}

void
Simulation::enableWatchdog(Tick budget, fault::WatchdogMode mode)
{
    if (_watchdog)
        return;
    _watchdog = std::make_unique<fault::ProgressWatchdog>(
        *this, _simGroup, budget, mode);
    _watchdog->arm();
}

void
Simulation::enableDeterminismCheck()
{
    if (_determinism)
        return;
    _determinism = std::make_unique<check::DeterminismVerifier>(
        _statEventHash);
    attachInstrument(_determinism.get());
}

std::uint64_t
Simulation::determinismHash() const
{
    return _determinism ? _determinism->hash() : 0;
}

ClockDomain &
Simulation::createClockDomain(double mhz, const std::string &name)
{
    _domains.push_back(
        std::make_unique<ClockDomain>(_eq, periodFromMHz(mhz), name));
    return *_domains.back();
}

ClockDomain *
Simulation::findClockDomain(const std::string &name)
{
    for (const auto &domain : _domains) {
        if (domain->name() == name)
            return domain.get();
    }
    return nullptr;
}

ClockDomain &
Simulation::clockDomain(const std::string &name)
{
    ClockDomain *domain = findClockDomain(name);
    fatal_if(!domain, "no clock domain named '%s'", name.c_str());
    return *domain;
}

void
Simulation::attachInstrument(EventInstrument *instrument)
{
    _instruments.add(instrument);
    _eq.setInstrument(&_instruments);
}

void
Simulation::enableProfiling()
{
    if (_profiling)
        return;
    _profiling = true;
    attachInstrument(_profiler.get());
}

EventTracer &
Simulation::enableTracing(const std::string &path)
{
    if (!_tracer) {
        _tracer = std::make_unique<EventTracer>(path);
        attachInstrument(_tracer.get());
    }
    return *_tracer;
}

void
Simulation::configureObservability(const Config &cfg)
{
    SimulationBuilder().observability(cfg).applyTo(*this);
}

} // namespace emerald
