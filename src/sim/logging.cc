#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace emerald
{

namespace
{
bool quietLogging = false;
} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string("<format error>");
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vstrprintf(fmt, args);
    va_end(args);
    return result;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietLogging)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (quietLogging)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuietLogging(bool quiet)
{
    quietLogging = quiet;
}

} // namespace emerald
