#include "gpu/scoreboard.hh"

#include "sim/logging.hh"

namespace emerald::gpu
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;

Scoreboard::Scoreboard(unsigned num_warps)
    : _pendingWrites(static_cast<std::size_t>(num_warps) * numSlots, 0)
{
}

std::vector<unsigned>
Scoreboard::destSlots(const Instruction &instr)
{
    std::vector<unsigned> slots;
    if (instr.op == Opcode::SETP) {
        slots.push_back(predSlot(instr.dst.index));
        return slots;
    }
    if (instr.dst.kind == Operand::Kind::Reg) {
        unsigned count = instr.op == Opcode::TEX ? 4 : 1;
        for (unsigned i = 0; i < count; ++i)
            slots.push_back(static_cast<unsigned>(instr.dst.index) + i);
    }
    return slots;
}

std::vector<unsigned>
Scoreboard::srcSlots(const Instruction &instr)
{
    std::vector<unsigned> slots;
    if (instr.guard >= 0)
        slots.push_back(predSlot(instr.guard));
    for (const Operand &src : instr.src) {
        if (src.kind == Operand::Kind::Reg) {
            unsigned count = (instr.op == Opcode::BLEND ||
                              instr.op == Opcode::STFB)
                                 ? 4
                                 : 1;
            for (unsigned i = 0; i < count; ++i)
                slots.push_back(static_cast<unsigned>(src.index) + i);
        } else if (src.kind == Operand::Kind::Pred) {
            slots.push_back(predSlot(src.index));
        }
    }
    return slots;
}

bool
Scoreboard::ready(unsigned warp, const Instruction &instr) const
{
    for (unsigned slot : srcSlots(instr)) {
        if (pending(warp, slot))
            return false;
    }
    for (unsigned slot : destSlots(instr)) {
        if (pending(warp, slot))
            return false;
    }
    return true;
}

void
Scoreboard::markPending(unsigned warp,
                        const std::vector<unsigned> &slots)
{
    for (unsigned slot : slots)
        ++_pendingWrites[warp * numSlots + slot];
}

void
Scoreboard::release(unsigned warp, const std::vector<unsigned> &slots)
{
    for (unsigned slot : slots) {
        auto &count = _pendingWrites[warp * numSlots + slot];
        panic_if(count == 0, "scoreboard underflow");
        --count;
    }
}

bool
Scoreboard::idle(unsigned warp) const
{
    for (unsigned slot = 0; slot < numSlots; ++slot) {
        if (pending(warp, slot))
            return false;
    }
    return true;
}

void
Scoreboard::resetWarp(unsigned warp)
{
    for (unsigned slot = 0; slot < numSlots; ++slot)
        _pendingWrites[warp * numSlots + slot] = 0;
}

} // namespace emerald::gpu
