/**
 * @file
 * Shared helpers for the experiment harnesses. Each bench binary
 * regenerates one of the paper's tables or figures (see DESIGN.md's
 * experiment index); absolute numbers differ from the paper's testbed
 * but the shapes are expected to hold (EXPERIMENTS.md).
 */

#ifndef EMERALD_BENCH_HARNESS_HH
#define EMERALD_BENCH_HARNESS_HH

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "scenes/workloads.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/simulation_builder.hh"
#include "sim/stats_sink.hh"
#include "soc/configs.hh"
#include "soc/soc_top.hh"

namespace emerald::bench
{

/**
 * Machine-readable bench output: collects named scalar results (the
 * numbers the bench prints) plus optional full simulation stat trees
 * and hands them to the StatsSink named by --stats-out=<uri> (a plain
 * path writes the legacy JSON document byte-for-byte, sqlite:<path>
 * the sweep database, nothing/null discards). --stats-json=<path> is
 * a deprecated alias for --stats-out=<path>.
 */
class BenchResults
{
  public:
    BenchResults(const Config &cfg, std::string bench)
        : _bench(std::move(bench))
    {
        std::string uri = cfg.getString("stats-out", "");
        if (cfg.has("stats-json")) {
            warn("--stats-json is deprecated; use "
                 "--stats-out=<path|sqlite:path|null>");
            if (uri.empty())
                uri = cfg.getString("stats-json", "");
        }
        _sink = makeStatsSink(uri);
        RunInfo info;
        info.bench = _bench;
        info.gitSha = cfg.getString("git-sha", "");
        info.fingerprint = sweepPointFingerprint(cfg);
        info.params = sweepPointParams(cfg);
        _sink->beginRun(info);
    }

    BenchResults(const BenchResults &) = delete;
    BenchResults &operator=(const BenchResults &) = delete;

    ~BenchResults() { _sink->finishRun(); }

    /** True when results are being kept (not the null sink). */
    bool enabled() const { return _sink->live(); }

    /** Record one named scalar result. */
    void
    record(const std::string &key, double value)
    {
        _sink->recordScalar(key, value);
    }

    /** Embed @p sim's full stats tree (captured now) under @p label. */
    void
    addSimStats(Simulation &sim, const std::string &label = "sim")
    {
        if (enabled())
            _sink->addStatsTree(label, sim.statsRoot());
    }

  private:
    std::string _bench;
    std::unique_ptr<StatsSink> _sink;
};

/**
 * The common bench prologue, deduplicated: parses --key=value
 * arguments, interprets --quick, opens the --stats-out results sink
 * and exposes a SimulationBuilder carrying the observability keys
 * (--trace-file / --profile / --sim-stats-out) so every simulation a
 * bench constructs gets them wired in.
 */
class BenchHarness
{
  public:
    BenchHarness(int argc, char **argv, const std::string &bench)
    {
        cfg.parseArgs(argc, argv);
        quick = cfg.getBool("quick", false);
        results = std::make_unique<BenchResults>(cfg, bench);
    }

    /** Recipe to pass into SocTop / StandaloneGpu / build(). */
    SimulationBuilder
    builder() const
    {
        return SimulationBuilder().observability(cfg);
    }

    /**
     * Like builder(), but scoped for one of several simulations the
     * bench runs in a single process: checkpoint/restore directories
     * get a per-run subdirectory, so --checkpoint-at with a
     * multi-config bench produces one checkpoint per configuration.
     *
     * The subdirectory is @p label plus the checkpoint-scope
     * fingerprint (ckptScopeFingerprintHex) when one exists: two
     * sweep points that share a label but differ in grid params
     * (say, the same MemConfig at two FPS values) must not collide
     * on one checkpoint directory — unless the sweep declared the
     * differing axes in --ckpt-share-keys, in which case the shared
     * subdirectory is exactly the point (docs/sweeps.md).
     */
    SimulationBuilder
    builderFor(const std::string &label) const
    {
        std::string fp = ckptScopeFingerprintHex(cfg);
        return builder().subdir(fp.empty() ? label
                                           : label + "-" + fp);
    }

    Config cfg;
    bool quick = false;
    std::unique_ptr<BenchResults> results;
};

/** Render one frame on a standalone rig; returns its cycle count. */
inline core::FrameStats
renderFrame(soc::StandaloneGpu &rig, scenes::SceneRenderer &scene,
            unsigned frame_idx)
{
    bool done = false;
    core::FrameStats stats;
    scene.renderFrame(frame_idx, [&](const core::FrameStats &s) {
        stats = s;
        done = true;
    });
    if (!rig.runUntil([&] { return done; }, ticksFromMs(4000.0)))
        fatal("frame %u did not drain", frame_idx);
    return stats;
}

/**
 * Mean frame cycles for @p workload at WT size @p wt: one warm-up
 * frame plus @p frames measured frames on a fresh rig.
 */
inline double
meanCyclesAtWt(scenes::WorkloadId workload, unsigned wt,
               unsigned fb_w, unsigned fb_h, unsigned frames = 3)
{
    soc::StandaloneGpu rig(fb_w, fb_h);
    scenes::SceneRenderer scene(rig.pipeline(),
                                scenes::makeWorkload(workload),
                                rig.functionalMemory());
    rig.pipeline().setWtSize(wt);
    renderFrame(rig, scene, 0); // Warm-up.
    double sum = 0.0;
    for (unsigned f = 1; f <= frames; ++f)
        sum += static_cast<double>(
            renderFrame(rig, scene, f).cycles);
    return sum / frames;
}

/** Pearson correlation coefficient. */
inline double
correlation(const std::vector<double> &x, const std::vector<double> &y)
{
    std::size_t n = x.size();
    double mx =
        std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
    double my =
        std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    double denom = std::sqrt(sxx * syy);
    return denom > 0 ? sxy / denom : 0.0;
}

/** The six case-study-II workloads. */
inline std::vector<scenes::WorkloadId>
caseStudy2Workloads()
{
    return {scenes::WorkloadId::W1_Sibenik,
            scenes::WorkloadId::W2_Spot,
            scenes::WorkloadId::W3_Cube,
            scenes::WorkloadId::W4_Suzanne,
            scenes::WorkloadId::W5_SuzanneAlpha,
            scenes::WorkloadId::W6_Teapot};
}

/** The four case-study-I models. */
inline std::vector<scenes::WorkloadId>
caseStudy1Models()
{
    return {scenes::WorkloadId::M1_Chair, scenes::WorkloadId::M2_Cube,
            scenes::WorkloadId::M3_Mask,
            scenes::WorkloadId::M4_Triangles};
}

inline std::vector<soc::MemConfig>
allMemConfigs()
{
    return {soc::MemConfig::BAS, soc::MemConfig::DCB,
            soc::MemConfig::DTB, soc::MemConfig::HMC};
}

/** Default SoC parameters for the case-study-I experiments. */
inline soc::SocParams
caseStudy1Params(scenes::WorkloadId model, soc::MemConfig config,
                 bool high_load)
{
    soc::SocParams p;
    p.model = model;
    p.memConfig = config;
    p.highLoad = high_load;
    p.frames = 5; // 1 warm-up + 4 profiled (paper Table 6).
    p.fbWidth = 256;
    p.fbHeight = 192;
    p.cpuPrepRequests = 1500;
    return p;
}

} // namespace emerald::bench

#endif // EMERALD_BENCH_HARNESS_HH
