# Empty compiler generated dependencies file for emerald_tests.
# This may be replaced when dependencies are built.
