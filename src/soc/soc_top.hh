/**
 * @file
 * Full-system SoC assembly (paper Fig. 1): CPU cluster with private
 * cache hierarchies, the Emerald GPU, the display controller, the
 * system interconnect and the shared DRAM — with the memory
 * organization/scheduling configurations case study I compares
 * (Table 6): BAS (FR-FCFS), DCB/DTB (DASH with CPU-only /
 * whole-system clustering bandwidth) and HMC (split channels).
 */

#ifndef EMERALD_SOC_SOC_TOP_HH
#define EMERALD_SOC_SOC_TOP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/graphics_pipeline.hh"
#include "mem/dash_scheduler.hh"
#include "mem/memory_system.hh"
#include "noc/link.hh"
#include "scenes/workloads.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "npu/camera_model.hh"
#include "npu/npu_top.hh"
#include "soc/app_model.hh"
#include "soc/cpu_traffic.hh"
#include "soc/display_controller.hh"

namespace emerald::mem
{
class TrafficTraceReader;
class TrafficTraceWriter;
} // namespace emerald::mem

namespace emerald::soc
{

class TraceReplayDriver;

/** Case study I memory configurations (paper Table 6). */
enum class MemConfig { BAS, DCB, DTB, HMC };

const char *memConfigName(MemConfig config);

struct SocParams
{
    MemConfig memConfig = MemConfig::BAS;
    /** High-load scenario: 133 Mb/s/pin instead of 1333. */
    bool highLoad = false;

    unsigned numCpuCores = 4;
    double cpuClockMHz = 2000.0;
    double gpuClockMHz = 950.0;

    /** DRAM channel count (HMC reserves one CPU channel of these). */
    unsigned dramChannels = 2;

    unsigned fbWidth = 256;
    unsigned fbHeight = 192;

    scenes::WorkloadId model = scenes::WorkloadId::M2_Cube;
    unsigned frames = 5;
    std::uint64_t cpuPrepRequests = 1500;

    Tick statsBucket = ticksFromUs(100.0);
    Tick refreshPeriod = ticksFromMs(16.6);
    Tick gpuFramePeriod = ticksFromMs(33.0);

    /**
     * @{ NPU accelerator (fourth memory client). Off by default:
     * disabled runs build no NPU objects and schedule no NPU events,
     * so their event streams are bit-identical to pre-NPU builds.
     */
    bool npuEnabled = false;
    unsigned npuRows = 16;
    unsigned npuCols = 16;
    double npuClockMHz = 800.0;
    std::string npuModel = "tiny-cnn";
    Tick npuFramePeriod = ticksFromMs(33.0);
    /** Camera frames to capture; 0 = free-run until the app ends. */
    unsigned npuFrames = 0;
    unsigned npuQueueDepth = 4;
    unsigned npuDmaOutstanding = 8;
    /** Per-scratchpad capacity (input/weight/output each). */
    unsigned npuScratchKB = 32;
    /** @} */
};

/**
 * Owns one complete SoC simulation. Construct, run(), then read the
 * results through the component accessors.
 */
class SocTop
{
  public:
    /**
     * @param builder optional recipe applied to the SoC's Simulation
     *        before construction (observability, extra clock domains,
     *        stats sinks).
     */
    explicit SocTop(const SocParams &params,
                    const SimulationBuilder &builder = {});
    ~SocTop();

    /** Run until the app completes its frames (with a safety cap). */
    void run(Tick limit = ticksFromMs(4000.0));

    Simulation &sim() { return _sim; }
    mem::MemorySystem &memory() { return *_memory; }
    /** Execution-driven runs only (null under --replay-trace). */
    AppModel &app() { return *_app; }
    DisplayController &display() { return *_display; }
    /** Execution-driven runs only (null under --replay-trace). */
    core::GraphicsPipeline &pipeline() { return *_pipeline; }
    gpu::GpuTop &gpu() { return *_gpu; }
    const SocParams &params() const { return _params; }

    /** The NPU device, or null when npuEnabled is false. */
    npu::NpuTop *npu() { return _npu.get(); }
    /** The camera-inference model, or null when npuEnabled is false. */
    npu::CameraInferenceModel *npuCamera() { return _npuCam.get(); }

    /** True when this run replays a trace instead of rendering. */
    bool replayMode() const { return _replay != nullptr; }
    /** The replay driver, or null in execution-driven runs. */
    TraceReplayDriver *replayDriver() { return _replay.get(); }
    /** The capture writer, or null without --capture-trace. */
    mem::TrafficTraceWriter *traceWriter() { return _traceWriter.get(); }

    /** Mean GPU render time over profiled (non-warm-up) frames. */
    double meanGpuFrameMs() const;
    /** Mean total (prep+render) frame time over profiled frames. */
    double meanTotalFrameMs() const;

  private:
    SocParams _params;
    Simulation _sim;
    ClockDomain *_cpuClock = nullptr;
    ClockDomain *_gpuClock = nullptr;

    std::unique_ptr<mem::DashCoordinator> _dashCoordinator;
    std::unique_ptr<mem::DramScheduler> _scheduler;
    std::unique_ptr<mem::MemorySystem> _memory;

    mem::FunctionalMemory _functionalMem;

    std::unique_ptr<gpu::GpuTop> _gpu;
    std::unique_ptr<core::GraphicsPipeline> _pipeline;
    std::unique_ptr<scenes::SceneRenderer> _scene;

    struct CpuNode;
    std::vector<std::unique_ptr<CpuNode>> _cpus;

    std::unique_ptr<noc::Link> _displayLink;
    std::unique_ptr<DisplayController> _display;
    std::unique_ptr<AppModel> _app;

    /** NPU subsystem (all null when npuEnabled is false). */
    ClockDomain *_npuClock = nullptr;
    std::unique_ptr<noc::Link> _npuLink;
    std::unique_ptr<npu::NpuTop> _npu;
    std::unique_ptr<npu::CameraInferenceModel> _npuCam;

    /** --capture-trace / --replay-trace state (null when unused). */
    std::unique_ptr<mem::TrafficTraceWriter> _traceWriter;
    std::unique_ptr<mem::TrafficTraceReader> _replayTrace;
    std::unique_ptr<TraceReplayDriver> _replay;

    bool _done = false;
};

} // namespace emerald::soc

#endif // EMERALD_SOC_SOC_TOP_HH
