# Empty compiler generated dependencies file for emerald_soc.
# This may be replaced when dependencies are built.
