/**
 * @file
 * GPGPU kernel launch: grids of thread blocks (CTAs) dispatched onto
 * the same SIMT cores graphics uses. Each CTA's warps are co-located
 * on one core so shared memory and barriers work.
 */

#ifndef EMERALD_GPU_KERNEL_HH
#define EMERALD_GPU_KERNEL_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/gpu_top.hh"
#include "gpu/warp.hh"
#include "sim/sim_object.hh"

namespace emerald::gpu
{

/** One kernel launch request. */
struct KernelLaunch
{
    const isa::Program *program = nullptr;
    unsigned gridX = 1, gridY = 1;
    unsigned blockX = 32, blockY = 1;
    std::vector<float> constants;
    mem::FunctionalMemory *memory = nullptr;
    unsigned sharedBytesPerCta = 0;
    std::function<void()> onDone;

    unsigned threadsPerCta() const { return blockX * blockY; }
    unsigned
    warpsPerCta() const
    {
        return static_cast<unsigned>(
            divCeil(threadsPerCta(), isa::warpSize));
    }
    unsigned numCtas() const { return gridX * gridY; }
};

/**
 * Issues CTAs to cores round-robin as space frees up; tracks CTA and
 * kernel completion.
 */
class KernelDispatcher : public SimObject, public Clocked
{
  public:
    KernelDispatcher(Simulation &sim, const std::string &name,
                     GpuTop &gpu);

    /** Queue a kernel; runs after earlier launches finish. */
    void launch(KernelLaunch launch);

    bool busy() const { return _current || !_pending.empty(); }

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;
    /**
     * Launch queues hold program pointers and completion lambdas
     * that cannot travel through a checkpoint; only the idle
     * dispatcher (round-robin cursor, CTA key counter) can.
     */
    bool checkpointSafe() const override { return !busy(); }

  protected:
    bool tick() override;

  private:
    struct CtaState
    {
        std::vector<std::uint8_t> sharedMem;
        unsigned warpsOutstanding = 0;
    };

    struct ActiveKernel
    {
        KernelLaunch launch;
        unsigned nextCta = 0;
        unsigned ctasOutstanding = 0;
        std::vector<std::unique_ptr<CtaState>> ctas;
    };

    /** Try to place the next CTA; @return true on progress. */
    bool dispatchNextCta();
    void warpFinished(unsigned cta_index);

    GpuTop &_gpu;
    std::deque<KernelLaunch> _pending;
    std::unique_ptr<ActiveKernel> _current;
    unsigned _nextCore = 0;
    int _nextCtaKey = 1;
};

} // namespace emerald::gpu

#endif // EMERALD_GPU_KERNEL_HH
