file(REMOVE_RECURSE
  "CMakeFiles/emerald_noc.dir/noc/crossbar.cc.o"
  "CMakeFiles/emerald_noc.dir/noc/crossbar.cc.o.d"
  "CMakeFiles/emerald_noc.dir/noc/link.cc.o"
  "CMakeFiles/emerald_noc.dir/noc/link.cc.o.d"
  "libemerald_noc.a"
  "libemerald_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
