/**
 * @file
 * Stats sinks: where a run's results go.
 *
 * Historically every figure bench hand-wrote one JSON document per
 * run (--stats-json) and the sweep story was "glob the loose files".
 * StatsSink turns the destination into an interface selected by a
 * --stats-out URI:
 *
 *   --stats-out=results.json    JsonFileSink   (the legacy document,
 *                                               byte-identical)
 *   --stats-out=sqlite:runs.db  SqliteSink     (one queryable DB for
 *                                               a whole sweep)
 *   --stats-out=null            NullSink       (discard)
 *
 * A sink receives one run: beginRun() with the run's identity
 * (scenario name, config fingerprint, git sha, the sweep-relevant
 * parameters), then recordScalar()/addStatsTree() calls, then
 * finishRun() commits. SqliteSink commits the whole run in a single
 * transaction, so a run either lands complete or not at all — the
 * sweep orchestrator's resume journal is exactly the set of committed
 * runs (docs/sweeps.md).
 */

#ifndef EMERALD_SIM_STATS_SINK_HH
#define EMERALD_SIM_STATS_SINK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

struct sqlite3;

namespace emerald
{

class StatGroup;

/** Identity of one run, recorded alongside its stats. */
struct RunInfo
{
    /** Scenario / bench name (bench::ScenarioRegistry key). */
    std::string bench;
    /** Commit the binary was built from ("" when unknown). */
    std::string gitSha;
    /** sweepPointFingerprint() of the run's configuration. */
    std::uint64_t fingerprint = 0;
    /** The sweep-relevant key=value pairs (sweepPointParams()). */
    std::vector<std::pair<std::string, std::string>> params;
};

/** Destination for one run's results. */
class StatsSink
{
  public:
    virtual ~StatsSink() = default;

    /** Declare the run; must precede any record call. */
    virtual void beginRun(const RunInfo &info) = 0;

    /** Record one named scalar result. */
    virtual void recordScalar(const std::string &key, double value) = 0;

    /**
     * Capture @p root's stats subtree (now — the simulation may be
     * torn down before the sink commits) under @p label.
     */
    virtual void addStatsTree(const std::string &label,
                              const StatGroup &root) = 0;

    /** Commit the run. Idempotent; also called from the destructor. */
    virtual void finishRun() = 0;

    /** False for NullSink: callers may skip expensive captures. */
    virtual bool live() const { return true; }
};

/**
 * Create the sink a --stats-out URI names, in bench-document mode:
 * "" or "null" discard, "sqlite:<path>" writes the sweep database,
 * anything else writes the legacy BenchResults JSON document to that
 * path (byte-identical to the retired --stats-json output).
 */
std::unique_ptr<StatsSink> makeStatsSink(const std::string &uri);

/**
 * Like makeStatsSink() but plain paths write one raw stats tree
 * (byte-identical to Simulation::dumpStatsJson) instead of the bench
 * document — the --sim-stats-out exit dump.
 */
std::unique_ptr<StatsSink> makeTreeStatsSink(const std::string &uri);

/** True when @p uri names a SQLite sink ("sqlite:<path>"). */
bool isSqliteUri(const std::string &uri);

/** The path inside a "sqlite:<path>" URI (fatal on other URIs). */
std::string sqliteUriPath(const std::string &uri);

/** True when SqliteSink support was compiled in. */
bool sqliteSinkAvailable();

/**
 * The sweep results-store DDL, one CREATE TABLE IF NOT EXISTS (or
 * seed INSERT) per statement — shared by SqliteSink and the sweep
 * orchestrator's resume queries so the schema cannot drift.
 */
const std::vector<std::string> &sweepSchemaStatements();

/**
 * sqlite3_exec hardened against writer contention: SQLITE_BUSY /
 * SQLITE_LOCKED results are retried with jittered exponential
 * backoff (the jitter is derived from the connection pointer, not
 * rand(), so simulation determinism is untouched). Returns the final
 * sqlite result code; on error *errOut (when non-null) receives the
 * message. Only meaningful in SQLite-enabled builds.
 */
int sqliteExecRetry(sqlite3 *db, const char *sql,
                    std::string *errOut);

/**
 * Busy-handler timeout for sweep connections: the
 * EMERALD_SQLITE_BUSY_MS environment variable when set (stress tests
 * shrink it to force the sqliteExecRetry path), else @p dfltMs.
 */
int sqliteBusyTimeoutMs(int dfltMs);

} // namespace emerald

#endif // EMERALD_SIM_STATS_SINK_HH
