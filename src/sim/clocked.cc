#include "sim/clocked.hh"

namespace emerald
{

Clocked::Clocked(ClockDomain &domain, std::string name)
    : _domain(domain), _clockedName(std::move(name)),
      _tickEvent([this] { processTick(); }, _clockedName + ".tick",
                 Event::clockPriority)
{
}

void
Clocked::activate()
{
    if (_tickEvent.scheduled())
        return;
    _domain.eventQueue().schedule(_tickEvent, _domain.clockEdge(0));
}

void
Clocked::processTick()
{
    bool more = tick();
    if (more) {
        _domain.eventQueue().schedule(_tickEvent, _domain.clockEdge(1));
    }
}

} // namespace emerald
