/**
 * @file
 * The shared bench front end: one emerald_bench binary hosting every
 * registered scenario.
 *
 *   emerald_bench --list               name<TAB>kind<TAB>description
 *   emerald_bench --run=<name> [...]   run one scenario; remaining
 *                                      flags go to the scenario
 */

#include <cstdio>
#include <string>

#include "registry.hh"

int
main(int argc, char **argv)
{
    using namespace emerald::bench;

    // Peel --list/--run here; the scenario re-parses the full argv
    // (Config knows both keys), so nothing needs to be stripped.
    bool list = false;
    std::string run_name;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg.rfind("--run=", 0) == 0) {
            run_name = arg.substr(6);
        } else if (arg == "--run" && i + 1 < argc &&
                   argv[i + 1][0] != '-') {
            run_name = argv[++i];
        }
    }

    const ScenarioRegistry &registry = ScenarioRegistry::instance();
    if (list) {
        for (const Scenario &s : registry.scenarios()) {
            std::printf("%s\t%s\t%s\n", s.name.c_str(),
                        s.kind == ScenarioKind::Figure ? "figure"
                                                       : "aux",
                        s.desc.c_str());
        }
        return 0;
    }

    if (run_name.empty()) {
        std::fprintf(stderr,
                     "usage: emerald_bench --run=<name> [--key=value "
                     "...] | --list\nscenarios:\n");
        for (const Scenario &s : registry.scenarios())
            std::fprintf(stderr, "  %s\n", s.name.c_str());
        return 2;
    }

    const Scenario *scenario = registry.find(run_name);
    if (!scenario) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (emerald_bench --list)\n",
                     run_name.c_str());
        return 2;
    }
    return scenario->run(argc, argv);
}
