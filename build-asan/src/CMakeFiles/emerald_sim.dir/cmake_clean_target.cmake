file(REMOVE_RECURSE
  "libemerald_sim.a"
)
