# Empty dependencies file for emerald_gpu.
# This may be replaced when dependencies are built.
