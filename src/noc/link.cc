#include "noc/link.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::noc
{

Link::Link(Simulation &sim, const std::string &name,
           const LinkParams &params)
    : SimObject(sim, name),
      statPackets(*this, "packets", "packets forwarded"),
      statBytes(*this, "bytes", "bytes forwarded"),
      statRetries(*this, "retries", "deliveries retried (target busy)"),
      _params(params),
      _deliverEvent([this] { deliver(); }, name + ".deliver")
{
}

bool
Link::tryAccept(MemPacket *pkt)
{
    if (_queue.size() >= _params.queueDepth)
        return false;

    Tick now = curTick();
    Tick ser = 0;
    if (_params.bytesPerSec > 0.0) {
        ser = static_cast<Tick>(
            pkt->size / _params.bytesPerSec * ticksPerSecond);
    }
    Tick start = std::max(now, _serializerFree);
    _serializerFree = start + ser;
    Tick ready = _serializerFree + _params.latency;

    _queue.push_back({pkt, ready});
    ++statPackets;
    statBytes += pkt->size;

    if (!_deliverEvent.scheduled())
        schedule(_deliverEvent, ready);
    return true;
}

void
Link::deliver()
{
    panic_if(!_target, "%s has no target", name().c_str());
    Tick now = curTick();
    while (!_queue.empty() && _queue.front().readyAt <= now) {
        if (!_target->tryAccept(_queue.front().pkt)) {
            ++statRetries;
            // Target is busy; retry shortly, preserving order.
            schedule(_deliverEvent, now + ticksFromNs(4.0));
            return;
        }
        _queue.pop_front();
    }
    if (!_queue.empty())
        schedule(_deliverEvent, _queue.front().readyAt);
}

} // namespace emerald::noc
