#include "npu/camera_model.hh"

#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"
#include "sim/simulation.hh"

namespace emerald::npu
{

CameraInferenceModel::CameraInferenceModel(
    Simulation &sim, const std::string &name,
    const CameraParams &params, NpuCommandSink &npu,
    mem::QosProgressPort *qos)
    : SimObject(sim, name),
      statFrames(*this, "frames", "camera frames captured"),
      statDropped(*this, "dropped",
                  "frames dropped (command queue full)"),
      statCompleted(*this, "completed", "inferences completed"),
      statAborted(*this, "aborted",
                  "inferences lost to degrade recovery"),
      statDeadlineMisses(*this, "deadline_misses",
                         "inferences finished past their deadline"),
      statInfTicks(*this, "inf_ticks",
                   "camera-to-completion inference latency (ticks)"),
      _params(params), _npu(npu), _qos(qos),
      _frameEvent([this] { captureFrame(); }, name + ".frame")
{
    fatal_if(_params.framePeriod == 0, "%s: zero frame period",
             name.c_str());
    registerProfileCounters();
    registerCheckpointEvent(_frameEvent);
    if (_qos) {
        _qosIp = _qos->registerIp(name, TrafficClass::Npu,
                                  _params.emergentThreshold);
    }
}

void
CameraInferenceModel::start()
{
    _running = true;
    scheduleIn(_frameEvent, 0);
}

void
CameraInferenceModel::stop()
{
    _running = false;
    descheduleIfPending(_frameEvent);
}

void
CameraInferenceModel::captureFrame()
{
    ++statFrames;
    NpuCommand cmd;
    cmd.id = _nextCmdId++;
    cmd.frame = _frame++;
    cmd.enqueued = curTick();
    // The inference is stale once the next frame arrives.
    cmd.deadline = curTick() + _params.framePeriod;
    if (!_npu.submit(cmd)) {
        ++statDropped;
    } else if (_qos && _qosIp >= 0 && _qosCmdId == 0) {
        _qosCmdId = cmd.id;
        _qos->beginIpPeriod(_qosIp, _params.framePeriod,
                            _npu.inferenceWork());
    }
    if (_running &&
        (_params.frames == 0 || _frame < _params.frames))
        scheduleIn(_frameEvent, _params.framePeriod);
}

void
CameraInferenceModel::npuCommandProgress(const NpuCommand &cmd,
                                         double work)
{
    if (_qos && _qosIp >= 0 && cmd.id == _qosCmdId)
        _qos->addIpProgress(_qosIp, work);
}

void
CameraInferenceModel::npuCommandDone(const NpuCommand &cmd,
                                     Tick finished, bool aborted)
{
    if (_qos && _qosIp >= 0 && cmd.id == _qosCmdId) {
        _qos->endIpPeriod(_qosIp);
        _qosCmdId = 0;
    }
    if (aborted) {
        ++statAborted;
        return;
    }
    ++statCompleted;
    statInfTicks.sample(static_cast<double>(finished - cmd.enqueued));
    if (finished > cmd.deadline)
        ++statDeadlineMisses;
}

void
CameraInferenceModel::serialize(CheckpointOut &out) const
{
    out.putBool("running", _running);
    out.putU64("frame", _frame);
    out.putU64("next_cmd_id", _nextCmdId);
    out.putU64("qos_cmd_id", _qosCmdId);
}

void
CameraInferenceModel::unserialize(CheckpointIn &in)
{
    _running = in.getBool("running");
    _frame = static_cast<std::uint32_t>(in.getU64("frame"));
    _nextCmdId = in.getU64("next_cmd_id");
    _qosCmdId = in.getU64("qos_cmd_id");
}

} // namespace emerald::npu
