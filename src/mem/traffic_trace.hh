/**
 * @file
 * Memory-traffic trace capture and loading (--capture-trace /
 * --replay-trace), the data plane of the replay fast path in
 * docs/scheduling.md.
 *
 * A traffic trace records, per client (one per SIMT core), every
 * transaction the core's LSU successfully handed to its L1 — the
 * coalescer/LSU boundary — with the tick offset from the enclosing
 * frame's render start. Replay feeds the same stream back through the
 * full memory system (L1s, GPU NoC, L2, system NoC, DRAM, DASH)
 * without executing any shader code, so memory-scheduler policy
 * sweeps run at a fraction of the execution-driven cost (the ODIN
 * replay idea from PAPERS.md).
 *
 * This is distinct from core/trace.hh: that format records API-level
 * draw calls for re-rendering; this one records timed memory traffic
 * for memory-system studies.
 *
 * On disk a trace is a src/sim/serialize/ checkpoint directory
 * (manifest.json + data.bin) whose sections hold typed-record
 * vectors: a "meta" section (format version, frame table, framebuffer
 * base) plus one "client<i>" section per client. The config
 * fingerprint field is left 0 — a trace is deliberately replayable
 * under a different scheduler policy, which changes the fingerprint.
 */

#ifndef EMERALD_MEM_TRAFFIC_TRACE_HH
#define EMERALD_MEM_TRAFFIC_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet.hh"
#include "sim/types.hh"

namespace emerald::mem
{

/** Bump on any incompatible change to the trace schema. */
constexpr std::uint64_t trafficTraceFormatVersion = 1;

/** One recorded transaction, decoded. */
struct TraceTxn
{
    /** Frame the transaction belongs to. */
    std::uint32_t frame;
    /** Tick offset from that frame's render start. */
    Tick offset;
    Addr addr;
    AccessKind kind;
    bool write;
};

/**
 * Accumulates one run's traffic in memory and writes the trace
 * directory in finalize(). Clients register once (in a fixed order —
 * replay maps client i back to core i); frames are bracketed by
 * beginFrame()/endFrame() from the application model.
 */
class TrafficTraceWriter
{
  public:
    /**
     * @param label free-form workload tag (e.g. the model name),
     *        stored for diagnostics.
     * @param fb_base framebuffer base address, so a replay run can
     *        point the display controller at the right region without
     *        building a scene.
     */
    TrafficTraceWriter(std::string dir, std::string label,
                       Addr fb_base);
    ~TrafficTraceWriter();

    TrafficTraceWriter(const TrafficTraceWriter &) = delete;
    TrafficTraceWriter &operator=(const TrafficTraceWriter &) = delete;

    /** Register a client stream; returns its id (dense, in order). */
    unsigned addClient(const std::string &name);

    /** A frame's render phase starts now. */
    void beginFrame(Tick now);

    /**
     * The current frame's render phase ended; @p work is its total
     * work measure (shaded fragments) for DASH progress replay.
     */
    void endFrame(Tick now, double work);

    /**
     * Record one transaction the moment its L1 accepted it. Records
     * arriving after endFrame (LSU drain tails) stay attributed to
     * the last begun frame; records before the first beginFrame are
     * dropped (counted in droppedRecords()).
     */
    void record(unsigned client, Tick now, Addr addr, AccessKind kind,
                bool write);

    /** Write the trace directory; implicit in the destructor. */
    void finalize();

    const std::string &dir() const { return _dir; }
    std::uint64_t numRecords() const { return _numRecords; }
    std::uint64_t droppedRecords() const { return _dropped; }
    unsigned numFrames() const
    {
        return static_cast<unsigned>(_frameStart.size());
    }

  private:
    struct ClientStream
    {
        std::string name;
        std::vector<std::uint64_t> offsets;
        std::vector<std::uint64_t> addrs;
        /** Packed (frame << 32) | (kind << 8) | write. */
        std::vector<std::uint64_t> meta;
    };

    std::string _dir;
    std::string _label;
    Addr _fbBase;
    std::vector<ClientStream> _clients;
    std::vector<std::uint64_t> _frameStart;
    std::vector<std::uint64_t> _frameEnd;
    std::vector<double> _frameWork;
    std::uint64_t _numRecords = 0;
    std::uint64_t _dropped = 0;
    Tick _lastTick = 0;
    bool _finalized = false;
};

/**
 * Loads a trace directory into memory: the frame table plus each
 * client's transaction list in recorded order.
 */
class TrafficTraceReader
{
  public:
    explicit TrafficTraceReader(const std::string &dir);

    const std::string &dir() const { return _dir; }
    const std::string &label() const { return _label; }
    Addr fbBase() const { return _fbBase; }

    unsigned numFrames() const
    {
        return static_cast<unsigned>(_frameWork.size());
    }

    /** Total work (shaded fragments) of frame @p f in the capture. */
    double frameWork(unsigned f) const { return _frameWork.at(f); }

    /** Captured render start/end ticks of frame @p f. */
    Tick frameStart(unsigned f) const { return _frameStart.at(f); }
    Tick frameEnd(unsigned f) const { return _frameEnd.at(f); }

    unsigned numClients() const
    {
        return static_cast<unsigned>(_clients.size());
    }

    const std::string &clientName(unsigned c) const
    {
        return _clients.at(c).name;
    }

    /** Client @p c's transactions, in recorded (issue) order. */
    const std::vector<TraceTxn> &clientTxns(unsigned c) const
    {
        return _clients.at(c).txns;
    }

    std::uint64_t numRecords() const;

  private:
    struct ClientData
    {
        std::string name;
        std::vector<TraceTxn> txns;
    };

    std::string _dir;
    std::string _label;
    Addr _fbBase = 0;
    std::vector<Tick> _frameStart;
    std::vector<Tick> _frameEnd;
    std::vector<double> _frameWork;
    std::vector<ClientData> _clients;
};

} // namespace emerald::mem

#endif // EMERALD_MEM_TRAFFIC_TRACE_HH
