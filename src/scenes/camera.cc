#include "scenes/camera.hh"

#include <cmath>

namespace emerald::scenes
{

core::Mat4
OrbitCamera::viewProj(unsigned frame, float aspect) const
{
    float angle = startAngle +
                  anglePerFrame * static_cast<float>(frame);
    core::Vec3 eye{center.x + radius * std::cos(angle),
                   center.y + height,
                   center.z + radius * std::sin(angle)};
    core::Mat4 view = core::Mat4::lookAt(eye, center, {0, 1, 0});
    core::Mat4 proj =
        core::Mat4::perspective(fovyRadians, aspect, znear, zfar);
    return proj * view;
}

} // namespace emerald::scenes
