
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clipper.cc" "src/CMakeFiles/emerald_core.dir/core/clipper.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/clipper.cc.o.d"
  "/root/repo/src/core/dfsl.cc" "src/CMakeFiles/emerald_core.dir/core/dfsl.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/dfsl.cc.o.d"
  "/root/repo/src/core/energy.cc" "src/CMakeFiles/emerald_core.dir/core/energy.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/energy.cc.o.d"
  "/root/repo/src/core/framebuffer.cc" "src/CMakeFiles/emerald_core.dir/core/framebuffer.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/framebuffer.cc.o.d"
  "/root/repo/src/core/graphics_pipeline.cc" "src/CMakeFiles/emerald_core.dir/core/graphics_pipeline.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/graphics_pipeline.cc.o.d"
  "/root/repo/src/core/hiz.cc" "src/CMakeFiles/emerald_core.dir/core/hiz.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/hiz.cc.o.d"
  "/root/repo/src/core/math.cc" "src/CMakeFiles/emerald_core.dir/core/math.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/math.cc.o.d"
  "/root/repo/src/core/rasterizer.cc" "src/CMakeFiles/emerald_core.dir/core/rasterizer.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/rasterizer.cc.o.d"
  "/root/repo/src/core/shader_builder.cc" "src/CMakeFiles/emerald_core.dir/core/shader_builder.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/shader_builder.cc.o.d"
  "/root/repo/src/core/tc_stage.cc" "src/CMakeFiles/emerald_core.dir/core/tc_stage.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/tc_stage.cc.o.d"
  "/root/repo/src/core/texture.cc" "src/CMakeFiles/emerald_core.dir/core/texture.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/texture.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/emerald_core.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/trace.cc.o.d"
  "/root/repo/src/core/vpo_unit.cc" "src/CMakeFiles/emerald_core.dir/core/vpo_unit.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/vpo_unit.cc.o.d"
  "/root/repo/src/core/wt_mapping.cc" "src/CMakeFiles/emerald_core.dir/core/wt_mapping.cc.o" "gcc" "src/CMakeFiles/emerald_core.dir/core/wt_mapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_gpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_cache.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
