#!/usr/bin/env python3
"""Restore-determinism gate: compare event-stream hashes between a
cold bench run and a warm (checkpoint-restored) rerun.

Both inputs are --stats-json files written by a bench (BenchResults
format: {"bench": ..., "results": {...}, "sim": {...}}). The cold run
executed end to end while writing a mid-run checkpoint; the warm run
restored that checkpoint and executed only the suffix. Because the
restored determinism verifier resumes the cold run's hash stream
(docs/checkpointing.md), every `<case>.event_hash` result must match
bit for bit — any divergence means the restored state was not
equivalent to the cold run's at the checkpoint boundary.

Exit status: 0 when every hash matches, 1 otherwise.

Usage: check_restore.py cold.json warm.json
"""

import argparse
import json
import sys

HASH_SUFFIX = ".event_hash"
WALL_SUFFIX = ".wall_ms"


def load_results(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_restore: cannot read '{path}': {err}")
    results = doc.get("results")
    if not isinstance(results, dict):
        sys.exit(f"check_restore: '{path}' has no results object — "
                 "was the bench run with --stats-json?")
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cold", help="stats-json of the cold run")
    parser.add_argument("warm", help="stats-json of the warm run")
    args = parser.parse_args(argv)

    cold = load_results(args.cold)
    warm = load_results(args.warm)

    cold_hashes = {k: v for k, v in cold.items()
                   if k.endswith(HASH_SUFFIX)}
    warm_hashes = {k: v for k, v in warm.items()
                   if k.endswith(HASH_SUFFIX)}

    if not cold_hashes:
        sys.exit("check_restore: no *.event_hash results in the cold "
                 "run — pass --check-determinism to the bench")

    failures = 0
    for key in sorted(cold_hashes):
        case = key[: -len(HASH_SUFFIX)]
        if key not in warm_hashes:
            print(f"FAIL {case}: missing from the warm run")
            failures += 1
            continue
        ch, wh = cold_hashes[key], warm_hashes[key]
        if ch == 0 or wh == 0:
            print(f"FAIL {case}: hash is zero (determinism check "
                  "was off in one of the runs)")
            failures += 1
        elif ch != wh:
            print(f"FAIL {case}: cold hash {ch:.0f} != warm hash "
                  f"{wh:.0f} — the restored run diverged")
            failures += 1
        else:
            speed = ""
            cw = cold.get(case + WALL_SUFFIX)
            ww = warm.get(case + WALL_SUFFIX)
            if cw and ww:
                speed = (f" (wall {cw:.0f} ms cold -> {ww:.0f} ms "
                         f"warm, {cw / ww:.2f}x)")
            print(f"OK   {case}: hash {ch:.0f}{speed}")

    extra = sorted(set(warm_hashes) - set(cold_hashes))
    for key in extra:
        print(f"FAIL {key[: -len(HASH_SUFFIX)]}: present only in the "
              "warm run")
        failures += 1

    if failures:
        print(f"check_restore: {failures} case(s) diverged",
              file=sys.stderr)
        return 1
    print(f"check_restore: {len(cold_hashes)} case(s) reproduced the "
          "cold event stream exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
