#include "gpu/simt_stack.hh"

#include "sim/logging.hh"

namespace emerald::gpu
{

void
SimtStack::reset(std::uint32_t initial_mask)
{
    _entries.clear();
    _entries.push_back({0, -1, initial_mask});
}

void
SimtStack::popReconverged()
{
    while (!_entries.empty()) {
        const Entry &top = _entries.back();
        if (top.rpc >= 0 && top.pc == top.rpc)
            _entries.pop_back();
        else if (top.mask == 0)
            _entries.pop_back();
        else
            break;
    }
}

void
SimtStack::advance()
{
    panic_if(_entries.empty(), "advance on empty SIMT stack");
    ++_entries.back().pc;
    popReconverged();
}

void
SimtStack::branch(const isa::Instruction &instr,
                  std::uint32_t taken_mask, std::uint32_t alive_mask)
{
    panic_if(_entries.empty(), "branch on empty SIMT stack");
    Entry &top = _entries.back();
    std::uint32_t active = top.mask & alive_mask;
    std::uint32_t taken = taken_mask & active;
    std::uint32_t not_taken = active & ~taken;

    if (not_taken == 0) {
        top.pc = instr.target;
        popReconverged();
        return;
    }
    if (taken == 0) {
        advance();
        return;
    }

    // Divergence: the current entry becomes the reconvergence
    // placeholder; not-taken then taken paths are pushed (taken
    // executes first).
    int rpc = instr.reconvergePc;
    int fallthrough = top.pc + 1;
    top.pc = rpc; // May be -1; only reached if structure is violated.
    _entries.push_back({fallthrough, rpc, not_taken});
    _entries.push_back({instr.target, rpc, taken});
    // A path that starts at the reconvergence point merges at once
    // (e.g. a guarded jump straight to the join label).
    popReconverged();
}

void
SimtStack::pruneDead(std::uint32_t alive_mask)
{
    for (Entry &entry : _entries)
        entry.mask &= alive_mask;
    popReconverged();
    // Also drop empty entries below the top.
    std::vector<Entry> kept;
    kept.reserve(_entries.size());
    for (const Entry &entry : _entries) {
        if (entry.mask != 0)
            kept.push_back(entry);
    }
    _entries = std::move(kept);
    popReconverged();
}

} // namespace emerald::gpu
