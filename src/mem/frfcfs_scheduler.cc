#include "mem/frfcfs_scheduler.hh"

namespace emerald::mem
{

std::size_t
FrfcfsScheduler::pick(const DramChannel &channel,
                      const std::vector<QueueEntry> &queue, Tick)
{
    return pickAmong(channel, queue, [](std::size_t) { return true; });
}

} // namespace emerald::mem
