#include "noc/crossbar.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::noc
{

Crossbar::Crossbar(Simulation &sim, const std::string &name,
                   const LinkParams &link_params, RouteFn route)
    : SimObject(sim, name), MemSink(sim), _linkParams(link_params),
      _route(std::move(route))
{
    setSinkName(name);
}

unsigned
Crossbar::addDestination(MemSink &sink)
{
    unsigned idx = static_cast<unsigned>(_links.size());
    _links.push_back(std::make_unique<Link>(
        sim(), name() + ".out" + std::to_string(idx), _linkParams));
    _links.back()->setTarget(sink);
    return idx;
}

bool
Crossbar::tryAccept(MemPacket *pkt)
{
    unsigned dest = _route(*pkt);
    panic_if(dest >= _links.size(), "%s: bad route %u",
             name().c_str(), dest);
    return _links[dest]->tryAccept(pkt);
}

bool
Crossbar::offer(MemPacket *pkt, MemRequestor &req)
{
    unsigned dest = _route(*pkt);
    panic_if(dest >= _links.size(), "%s: bad route %u",
             name().c_str(), dest);
    return _links[dest]->offer(pkt, req);
}

} // namespace emerald::noc
