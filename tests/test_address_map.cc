#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "sim/random.hh"

using namespace emerald;
using namespace emerald::mem;

namespace
{

DramGeometry
geom2ch()
{
    DramGeometry g;
    g.channels = 2;
    g.ranks = 1;
    g.banks = 8;
    g.rowBytes = 4096;
    g.lineSize = 128;
    return g;
}

} // namespace

TEST(AddressMap, PageStripedWalksRowBeforeBank)
{
    AddressMap map(geom2ch(), AddrMapScheme::RoRaBaCoCh);
    // Consecutive lines alternate channels, then walk columns.
    DecodedAddr a0 = map.decode(0);
    DecodedAddr a1 = map.decode(128);
    DecodedAddr a2 = map.decode(256);
    EXPECT_EQ(a0.channel, 0u);
    EXPECT_EQ(a1.channel, 1u);
    EXPECT_EQ(a2.channel, 0u);
    EXPECT_EQ(a0.bank, a2.bank);
    EXPECT_EQ(a0.row, a2.row);
    EXPECT_EQ(a2.column, a0.column + 1);

    // A whole row's worth of lines on one channel shares the bank.
    unsigned lines_per_row = 4096 / 128;
    for (unsigned i = 0; i < lines_per_row; ++i) {
        DecodedAddr d = map.decode(Addr(i) * 256);
        EXPECT_EQ(d.bank, a0.bank);
        EXPECT_EQ(d.row, a0.row);
    }
}

TEST(AddressMap, LineStripedWalksBanksFirst)
{
    AddressMap map(geom2ch(), AddrMapScheme::RoCoRaBaCh);
    DecodedAddr a0 = map.decode(0);
    DecodedAddr a2 = map.decode(256); // Same channel, next line.
    EXPECT_EQ(a2.bank, a0.bank + 1);
    EXPECT_EQ(a2.row, a0.row);
    EXPECT_EQ(a2.column, a0.column);
}

TEST(AddressMap, SchemeNames)
{
    EXPECT_STREQ(addrMapSchemeName(AddrMapScheme::RoRaBaCoCh),
                 "Ro:Ra:Ba:Co:Ch");
    EXPECT_STREQ(addrMapSchemeName(AddrMapScheme::RoCoRaBaCh),
                 "Ro:Co:Ra:Ba:Ch");
}

class AddressMapRoundTrip
    : public ::testing::TestWithParam<AddrMapScheme>
{
};

TEST_P(AddressMapRoundTrip, DecodeEncodeBijective)
{
    AddressMap map(geom2ch(), GetParam());
    Random rng(42);
    for (int i = 0; i < 20000; ++i) {
        Addr addr = (rng.next() & 0x3fffffffULL) & ~Addr(127);
        DecodedAddr d = map.decode(addr);
        EXPECT_EQ(map.encode(d), addr);
        EXPECT_LT(d.channel, 2u);
        EXPECT_LT(d.bank, 8u);
        EXPECT_LT(d.column, 4096u / 128u);
    }
}

TEST_P(AddressMapRoundTrip, FieldsCoverAllValues)
{
    AddressMap map(geom2ch(), GetParam());
    std::set<unsigned> channels, banks;
    std::set<std::uint64_t> columns;
    for (Addr a = 0; a < 1 << 20; a += 128) {
        DecodedAddr d = map.decode(a);
        channels.insert(d.channel);
        banks.insert(d.bank);
        columns.insert(d.column);
    }
    EXPECT_EQ(channels.size(), 2u);
    EXPECT_EQ(banks.size(), 8u);
    EXPECT_EQ(columns.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AddressMapRoundTrip,
                         ::testing::Values(AddrMapScheme::RoRaBaCoCh,
                                           AddrMapScheme::RoCoRaBaCh));

TEST(AddressMap, RejectsBadGeometry)
{
    DramGeometry g = geom2ch();
    g.channels = 3; // Not a power of two.
    EXPECT_DEATH(
        { AddressMap map(g, AddrMapScheme::RoRaBaCoCh); }, "2\\^n");
}
