#include <gtest/gtest.h>
#include "core/graphics_pipeline.hh"
#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "scenes/workloads.hh"
#include "sim/simulation.hh"

using namespace emerald;

TEST(PipelineSmoke, RenderCubeFrame) {
    Simulation sim;
    auto &gclk = sim.createClockDomain(1000.0, "gpu");
    mem::MemorySystemParams mp;
    mp.geom.channels = 4;
    mp.timing = mem::lpddr3Timing(1600, 32, 128);
    mem::FrfcfsScheduler sched;
    mem::MemorySystem memsys(sim, "mem", mp, sched);
    gpu::GpuTopParams gp = gpu::defaultGpuParams();
    gpu::GpuTop gpu(sim, "gpu", gclk, gp, memsys);
    core::GfxParams gfx;
    core::GraphicsPipeline pipe(sim, "gfx", gpu, 192, 144, gfx);
    mem::FunctionalMemory fmem;
    scenes::SceneRenderer scene(pipe, scenes::makeWorkload(scenes::WorkloadId::W3_Cube), fmem);

    bool done = false;
    core::FrameStats stats;
    scene.renderFrame(0, [&](const core::FrameStats &s) { done = true; stats = s; });
    std::uint64_t evs = sim.run(ticksFromMs(50));
    ASSERT_TRUE(done) << "frame did not drain; events=" << evs
                      << " fragsOutstanding?" ;
    EXPECT_GT(stats.fragments, 1000u);
    EXPECT_GT(stats.cycles, 100u);
    // Something other than clear color was drawn.
    unsigned nonblack = 0;
    for (unsigned y = 0; y < 144; ++y)
        for (unsigned x = 0; x < 192; ++x)
            if (scene.framebuffer().pixel(x, y) != 0xff000000u) ++nonblack;
    EXPECT_GT(nonblack, 2000u);
    scene.framebuffer().writePpm("/tmp/cube.ppm");
}
