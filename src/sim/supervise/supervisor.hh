/**
 * @file
 * Crash-and-hang-resilient run supervisor.
 *
 * A long simulation can die in ways the simulator itself cannot
 * handle: a crash (assertion, segfault), the kernel's OOM killer, or
 * a hang the watchdog aborts on. The supervisor runs the simulation
 * in a forked child and turns those one-way exits into a recovery
 * loop:
 *
 *   1. run the child, capturing its log per attempt;
 *   2. on failure, classify it (crash / hang / oom-killed /
 *      spurious-exit / ckpt-corrupt) from the wait status plus the
 *      watchdog's --hang-report-path JSON file;
 *   3. locate the newest integrity-passing rotated checkpoint
 *      (serialize/probeCheckpoint) under the run's checkpoint
 *      directory so the next attempt warm-starts instead of redoing
 *      the whole run;
 *   4. retry with exponential backoff, up to a bounded budget;
 *   5. refuse to loop on a deterministic failure: the same failure
 *      class recovering from the same tick twice in a row means
 *      retrying cannot help, so give up and write a triage bundle
 *      (hang report, log tail, checkpoint lineage) instead.
 *
 * The child runs a caller-provided callback (bench_main re-enters the
 * scenario with a rewritten argv) rather than exec'ing a binary, so
 * the supervisor works identically under the bench front end and in
 * unit tests. Supervision off means none of this code runs — the
 * scenario executes in-process exactly as before.
 */

#ifndef EMERALD_SIM_SUPERVISE_SUPERVISOR_HH
#define EMERALD_SIM_SUPERVISE_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald::supervise
{

/** Why an attempt died. Stable names via failureClassName(). */
enum class FailureClass : std::uint8_t
{
    /** Signal or nonzero exit without a hang report. */
    Crash,
    /** The watchdog wrote its JSON report before aborting. */
    Hang,
    /** A rotated checkpoint failed its integrity probe. */
    CkptCorrupt,
    /** SIGKILL: on a loaded host, almost always the OOM killer. */
    OomKilled,
    /** Exit 0 without the completion marker: the run lied. */
    SpuriousExit,
};

const char *failureClassName(FailureClass cls);

/** One classified failure, as recorded in supervisor.json. */
struct FailureRecord
{
    FailureClass cls = FailureClass::Crash;
    /** Terminating signal, 0 if none. */
    int signal = 0;
    /** Exit code when the child exited normally, -1 otherwise. */
    int exitCode = -1;
    /** Attempt number (0-based) this failure ended. */
    unsigned attempt = 0;
    /** Tick of the checkpoint the *next* attempt resumes from
     *  (0 = cold start: no usable rotation existed). */
    Tick recoveredFromTick = 0;
    /** Human-readable detail (signal name, probe status, ...). */
    std::string detail;
};

struct SupervisorOptions
{
    /** Attempt logs, hang reports, marker and triage bundle land
     *  here; created if missing. */
    std::string runDir;
    /** Base the scenario rotates auto-checkpoints under; scanned
     *  recursively for auto-* rotations (benches that build several
     *  simulations nest per-config subdirectories). Empty = no
     *  checkpoint recovery, every retry is a cold start. */
    std::string ckptDir;
    /** Retries after the first attempt (so maxRetries+1 attempts). */
    unsigned maxRetries = 3;
    /** First retry waits this long; doubles per retry. */
    unsigned backoffBaseMs = 200;
    /** SIGKILL the child after this much wall time, 0 = never.
     *  (Primarily a test hook for injecting mid-run kills.) */
    unsigned killAfterMs = 0;
};

/** What the child callback needs to know about this attempt. */
struct ChildSpec
{
    /** 0 on the first attempt. */
    unsigned attempt = 0;
    /** Where the watchdog must write its JSON report
     *  (pass through to --hang-report-path). */
    std::string hangReportPath;
    /** Newest integrity-passing checkpoint directory to restore
     *  from; empty on attempt 0 or when none survived. */
    std::string restoreDir;
};

struct SupervisorResult
{
    /** A child completed and wrote its marker. */
    bool succeeded = false;
    /** Attempts consumed (>= 1). */
    unsigned attempts = 0;
    /** Retry budget exhausted or deterministic failure detected. */
    bool gaveUp = false;
    /** Every classified failure, in order. */
    std::vector<FailureRecord> failures;
    /** Exit code of the final child. */
    int finalExitCode = -1;
};

/**
 * Supervise @p child until it succeeds or the retry budget runs out.
 * The callback runs in a forked process: its return value is the
 * child's exit code, and it must not assume any parent-side state
 * changes survive. A summary is written to <runDir>/supervisor.json.
 */
SupervisorResult superviseRun(
    const SupervisorOptions &opts,
    const std::function<int(const ChildSpec &)> &child);

/**
 * Newest rotation under @p ckptDir (searched recursively) that passes
 * its integrity probe, or "" when none does. Corrupt rotations are
 * reported through @p corrupt (probe status + path) so the supervisor
 * can record them as CkptCorrupt failures.
 */
std::string newestUsableCheckpoint(const std::string &ckptDir,
                                   std::vector<std::string> *corrupt,
                                   Tick *tick);

} // namespace emerald::supervise

#endif // EMERALD_SIM_SUPERVISE_SUPERVISOR_HH
