#!/bin/sh
# Regenerates every paper table/figure (see EXPERIMENTS.md).
#
# Usage: run_benches.sh [--stats-json <dir>]
#   --stats-json <dir>  also write one machine-readable JSON results
#                       file per bench into <dir> (see
#                       docs/observability.md for the schema).
STATS_DIR=""
case "$1" in
--stats-json=*) STATS_DIR="${1#--stats-json=}" ;;
--stats-json) STATS_DIR="$2" ;;
esac

if [ -n "$STATS_DIR" ]; then
    mkdir -p "$STATS_DIR"
fi

: > /root/repo/bench_output.txt
for b in build/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    # micro_kernels is a google-benchmark binary; it does not take
    # the emerald Config flags.
    if [ -n "$STATS_DIR" ] && [ "$name" != "micro_kernels" ]; then
        "$b" "--stats-json=$STATS_DIR/$name.json"
    else
        "$b"
    fi
done 2>&1 | tee -a /root/repo/bench_output.txt
echo "ALL_BENCHES_DONE" >> /root/repo/bench_output.txt
