#include "core/energy.hh"

namespace emerald::core
{

EnergyModel::EnergyModel(gpu::GpuTop &gpu, GraphicsPipeline &pipeline,
                         mem::MemorySystem &memory,
                         const EnergyParams &params)
    : _gpu(gpu), _pipeline(pipeline), _memory(memory), _params(params)
{
    snapshot();
}

EnergyModel::Counters
EnergyModel::gather() const
{
    Counters c;
    for (unsigned i = 0; i < _gpu.numCores(); ++i) {
        gpu::SimtCore &core = _gpu.core(i);
        c.threadInstrs += core.statThreadInstrs.value();
        c.l1Accesses +=
            static_cast<double>(core.l1i().accesses()) +
            static_cast<double>(core.l1d().accesses()) +
            static_cast<double>(core.l1t().accesses()) +
            static_cast<double>(core.l1z().accesses()) +
            static_cast<double>(core.l1c().accesses());
    }
    c.l2Accesses = static_cast<double>(_gpu.l2().accesses());
    for (unsigned ch = 0; ch < _memory.numChannels(); ++ch) {
        const mem::DramChannel &channel = _memory.channel(ch);
        c.dramActivations += channel.statRowClosedMisses.value() +
                             channel.statRowConflicts.value();
        c.dramBytes += channel.statBytesRead.value() +
                       channel.statBytesWritten.value();
    }
    c.rasterTiles = _pipeline.statRasterTiles.value();
    return c;
}

void
EnergyModel::snapshot()
{
    _base = gather();
}

EnergyReport
EnergyModel::report(Tick active_ticks) const
{
    Counters now = gather();
    EnergyReport out;

    double instrs = now.threadInstrs - _base.threadInstrs;
    // Every thread instruction: execute + ~3 register file accesses.
    out.coreDynamic_uj =
        instrs * (_params.alu_pj + 3.0 * _params.reg_access_pj) / 1e6;

    out.cacheL1_uj = (now.l1Accesses - _base.l1Accesses) *
                     _params.l1_access_pj / 1e6;
    out.cacheL2_uj = (now.l2Accesses - _base.l2Accesses) *
                     _params.l2_access_pj / 1e6;
    out.dram_uj =
        ((now.dramActivations - _base.dramActivations) *
             _params.dram_act_pj +
         (now.dramBytes - _base.dramBytes) *
             _params.dram_rw_pj_per_byte) /
        1e6;
    out.raster_uj = (now.rasterTiles - _base.rasterTiles) *
                    _params.raster_tile_pj / 1e6;

    double seconds = secondsFromTicks(active_ticks);
    double static_mw = _params.soc_static_mw +
                       _params.core_idle_mw * _gpu.numCores();
    out.staticEnergy_uj = static_mw * 1e-3 * seconds * 1e6;
    return out;
}

} // namespace emerald::core
