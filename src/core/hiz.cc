#include "core/hiz.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald::core
{

HiZBuffer::HiZBuffer(unsigned fb_width, unsigned fb_height)
    : _tilesX(static_cast<unsigned>(
          divCeil(fb_width, rasterTilePx))),
      _tilesY(static_cast<unsigned>(
          divCeil(fb_height, rasterTilePx))),
      _maxZ(std::size_t(_tilesX) * _tilesY, 1.0f)
{
}

void
HiZBuffer::clear(float depth)
{
    std::fill(_maxZ.begin(), _maxZ.end(), depth);
    _rejected = 0;
}

bool
HiZBuffer::test(int tx, int ty, float tile_min_z) const
{
    if (tx < 0 || ty < 0 || tx >= static_cast<int>(_tilesX) ||
        ty >= static_cast<int>(_tilesY)) {
        return true;
    }
    return tile_min_z <= _maxZ[index(tx, ty)];
}

void
HiZBuffer::update(int tx, int ty, float tile_max_z)
{
    if (tx < 0 || ty < 0 || tx >= static_cast<int>(_tilesX) ||
        ty >= static_cast<int>(_tilesY)) {
        return;
    }
    float &bound = _maxZ[index(tx, ty)];
    bound = std::min(bound, tile_max_z);
}

float
HiZBuffer::bound(int tx, int ty) const
{
    return _maxZ[index(tx, ty)];
}

} // namespace emerald::core
