#include "soc/display_controller.hh"

#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::soc
{

DisplayController::DisplayController(Simulation &sim,
                                     const std::string &name,
                                     const DisplayParams &params,
                                     MemSink &downstream,
                                     mem::DashCoordinator *dash)
    : SimObject(sim, name),
      statFramesCompleted(*this, "frames_completed",
                          "refresh frames fully fetched"),
      statFramesAborted(*this, "frames_aborted",
                        "refresh frames aborted (underrun)"),
      statUnderruns(*this, "underruns",
                    "scanout reached an unfetched line"),
      statBytesFetched(*this, "bytes_fetched", "framebuffer bytes read"),
      statRequests(*this, "requests", "read requests issued"),
      statDroppedFrames(*this, "dropped_frames",
                        "frames abandoned by watchdog degrade recovery"),
      _params(params), _downstream(downstream), _dash(dash),
      _vsyncEvent([this] { vsync(); }, name + ".vsync"),
      _scanEvent([this] { scanLine(); }, name + ".scan")
{
    registerProfileCounters();
    if (_dash) {
        _dashIp = _dash->registerIp(name, TrafficClass::Display, 0.8);
    }
    registerCheckpointEvent(_vsyncEvent);
    registerCheckpointEvent(_scanEvent);
    registerCheckpointClient(*this);
    registerCheckpointRequestor(*this);
}

void
DisplayController::serialize(CheckpointOut &out) const
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    out.putBool("running", _running);
    out.putBool("frame_aborted", _frameAborted);
    out.putU64("scan_line", _scanLine);
    out.putU64("fetch_line", _fetchLine);
    out.putU64("fetch_packet", _fetchPacket);
    out.putU64("lines_done", _linesDone);
    out.putU64("line_resp_remaining", _lineRespRemaining);
    out.putU64("outstanding", _outstanding);
    out.putU64("underruns_this_frame", _underrunsThisFrame);
    out.putBool("has_retry_pkt", _retryPkt != nullptr);
    if (_retryPkt)
        putPacket(out, "retry_pkt", *_retryPkt, reg);
}

void
DisplayController::unserialize(CheckpointIn &in)
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    _running = in.getBool("running");
    _frameAborted = in.getBool("frame_aborted");
    _scanLine = static_cast<unsigned>(in.getU64("scan_line"));
    _fetchLine = static_cast<unsigned>(in.getU64("fetch_line"));
    _fetchPacket = static_cast<unsigned>(in.getU64("fetch_packet"));
    _linesDone = static_cast<unsigned>(in.getU64("lines_done"));
    _lineRespRemaining =
        static_cast<unsigned>(in.getU64("line_resp_remaining"));
    _outstanding = static_cast<unsigned>(in.getU64("outstanding"));
    _underrunsThisFrame =
        static_cast<unsigned>(in.getU64("underruns_this_frame"));
    if (in.getBool("has_retry_pkt")) {
        _retryPkt = getPacket(in, "retry_pkt", sim().packetPool(), reg);
    }
}

unsigned
DisplayController::packetsPerLine() const
{
    return static_cast<unsigned>(
        divCeil(std::uint64_t(_params.width) * _params.bytesPerPixel,
                128));
}

void
DisplayController::start()
{
    panic_if(_running, "display already running");
    _running = true;
    _scanLine = _params.height; // No frame in progress yet.
    scheduleIn(_vsyncEvent, 0);
}

void
DisplayController::stop()
{
    _running = false;
    descheduleIfPending(_vsyncEvent);
    descheduleIfPending(_scanEvent);
    dropRetryPkt();
    if (_dash && _dashIp >= 0)
        _dash->endIpPeriod(_dashIp);
}

void
DisplayController::vsync()
{
    if (!_running)
        return;

    // Account for the frame that just ended.
    if (_scanLine >= _params.height) {
        // First vsync has no previous frame; detect via fetch state.
        if (_fetchLine > 0 || _frameAborted || _linesDone > 0) {
            if (_frameAborted)
                ++statFramesAborted;
            else
                ++statFramesCompleted;
        }
    } else {
        // Scanout still mid-frame at vsync: treat as aborted.
        ++statFramesAborted;
        descheduleIfPending(_scanEvent);
    }

    _scanLine = 0;
    _fetchLine = 0;
    _fetchPacket = 0;
    _linesDone = 0;
    _lineRespRemaining = 0;
    _underrunsThisFrame = 0;
    _frameAborted = false;
    // A packet rejected during the previous frame is stale now.
    dropRetryPkt();

    if (_dash && _dashIp >= 0) {
        _dash->beginIpPeriod(_dashIp, _params.refreshPeriod,
                             static_cast<double>(_params.height));
    }

    // Scanout of line i happens mid-slot so the final line lands
    // before the next vsync.
    Tick line_period = _params.refreshPeriod / _params.height;
    scheduleIn(_scanEvent, line_period / 2);
    scheduleIn(_vsyncEvent, _params.refreshPeriod);
    pump();
}

void
DisplayController::pump()
{
    if (!_running || _frameAborted || _pumping || _retryPkt)
        return;
    _pumping = true;
    while (_outstanding < _params.maxOutstanding &&
           _fetchLine < _params.height &&
           _fetchLine <= _scanLine + _params.prefetchLines) {
        Addr line_base =
            _params.fbBase + Addr(_fetchLine) * _params.width *
                                 _params.bytesPerPixel;
        MemPacket *pkt = sim().packetPool().alloc(
            line_base + Addr(_fetchPacket) * 128, 128, false,
            TrafficClass::Display, AccessKind::Display,
            displayRequestorId, this, 0);
        pkt->issued = curTick();
        // Count before offering: a zero-latency sink may respond
        // synchronously from inside the offer.
        ++_outstanding;
        if (!_downstream.offer(pkt, *this)) {
            // Hold the packet (slot stays reserved) until the sink's
            // retryRequest() wakes us; no polling.
            _retryPkt = pkt;
            _pumping = false;
            return;
        }
        advanceFetchCursor();
    }
    _pumping = false;
}

void
DisplayController::advanceFetchCursor()
{
    ++statRequests;
    if (++_fetchPacket >= packetsPerLine()) {
        _fetchPacket = 0;
        ++_fetchLine;
    }
}

void
DisplayController::dropRetryPkt()
{
    if (!_retryPkt)
        return;
    freePacket(_retryPkt);
    _retryPkt = nullptr;
    panic_if(_outstanding == 0, "display retry slot underflow");
    --_outstanding;
}

void
DisplayController::retryRequest()
{
    if (!_running || _frameAborted) {
        dropRetryPkt();
        return;
    }
    if (_retryPkt) {
        MemPacket *pkt = _retryPkt;
        _retryPkt = nullptr;
        if (!_downstream.offer(pkt, *this)) {
            _retryPkt = pkt;
            return;
        }
        advanceFetchCursor();
    }
    pump();
}

void
DisplayController::memResponse(MemPacket *pkt)
{
    statBytesFetched += pkt->size;
    freePacket(pkt);
    panic_if(_outstanding == 0, "display response underflow");
    --_outstanding;

    // Count completed lines as responses accumulate.
    ++_lineRespRemaining;
    if (_lineRespRemaining >= packetsPerLine()) {
        _lineRespRemaining = 0;
        ++_linesDone;
        if (_dash && _dashIp >= 0)
            _dash->addIpProgress(_dashIp, 1.0);
    }
    pump();
}

void
DisplayController::onWatchdogDegrade()
{
    // Only shed load when a fetch is actually stuck; an idle or
    // healthy controller ignores the recovery sweep.
    if (!_running || _frameAborted ||
        (!_retryPkt && _outstanding == 0))
        return;
    // Mirror the underrun abort path: set the flag and let the next
    // vsync() do the frames_aborted accounting.
    ++statDroppedFrames;
    _frameAborted = true;
    dropRetryPkt();
    if (_dash && _dashIp >= 0)
        _dash->endIpPeriod(_dashIp);
    // Responses still in flight drain through memResponse() as usual;
    // the frame restarts at the next vsync.
}

void
DisplayController::hangDiagnostics(std::ostream &os) const
{
    if (!_retryPkt && _outstanding == 0)
        return;
    os << "outstanding=" << _outstanding << "/"
       << _params.maxOutstanding << " fetch_line=" << _fetchLine
       << " scan_line=" << _scanLine
       << (_retryPkt ? " HOLDING rejected packet" : "");
}

void
DisplayController::scanLine()
{
    if (!_running)
        return;
    if (!_frameAborted) {
        if (_linesDone <= _scanLine) {
            ++statUnderruns;
            ++_underrunsThisFrame;
            if (_underrunsThisFrame >= _params.abortThreshold) {
                // Give up on this frame; retry at the next refresh
                // (paper: "the display controller aborts the frame
                // and re-tries a new frame later").
                _frameAborted = true;
                if (_dash && _dashIp >= 0)
                    _dash->endIpPeriod(_dashIp);
            }
        }
    }
    ++_scanLine;
    if (_scanLine < _params.height) {
        Tick line_period = _params.refreshPeriod / _params.height;
        scheduleIn(_scanEvent, line_period);
        pump();
    }
}

} // namespace emerald::soc
