/**
 * @file
 * Paper Fig. 17: frame execution time for WT sizes 1-10, normalized
 * to WT=1, across W1-W6 (Table 7 GPU configuration).
 * Expected shape: execution time varies by tens of percent across WT
 * sizes; the best WT differs per workload (paper: WT=1 best for the
 * translucent W5, mid WTs best for W2/W4).
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig17_wt_sweep");
    const Config &cfg = harness.cfg;
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 3));
    unsigned fbw = static_cast<unsigned>(cfg.getU64("width", 256));
    unsigned fbh = static_cast<unsigned>(cfg.getU64("height", 192));
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    auto workloads = caseStudy2Workloads();
    if (quick)
        workloads = {scenes::WorkloadId::W3_Cube};

    std::printf("=== Fig. 17: frame time vs WT size (normalized to "
                "WT=1) ===\n");
    std::printf("%-18s", "workload");
    for (unsigned wt = 1; wt <= 10; ++wt)
        std::printf(" %7u", wt);
    std::printf("  best\n");

    for (scenes::WorkloadId id : workloads) {
        std::vector<double> cycles;
        for (unsigned wt = 1; wt <= 10; ++wt)
            cycles.push_back(meanCyclesAtWt(id, wt, fbw, fbh, frames));
        std::printf("%-18s", scenes::workloadName(id));
        unsigned best = 1;
        for (unsigned wt = 1; wt <= 10; ++wt) {
            results.record(std::string(scenes::workloadName(id)) +
                               ".wt" + std::to_string(wt) +
                               ".cycles_norm",
                           cycles[wt - 1] / cycles[0]);
            std::printf(" %7.3f", cycles[wt - 1] / cycles[0]);
            if (cycles[wt - 1] < cycles[best - 1])
                best = wt;
        }
        results.record(std::string(scenes::workloadName(id)) +
                           ".best_wt",
                       best);
        std::printf("  WT%u\n", best);
        std::fflush(stdout);
    }
    std::printf("\npaper shape: 25-88%% swing across WT sizes; "
                "optimum differs per workload\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig17_wt_sweep",
    .desc = "Fig. 17: frame time vs WT size, normalized to WT=1",
    .axes = {"quick", "frames", "width", "height"},
    .expectedShape = "25-88% swing across WT sizes; optimum differs per workload",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
