#include "scenes/shaders.hh"

namespace emerald::scenes
{

const std::string &
vertexShaderSource()
{
    static const std::string source = R"(
# Standard Gouraud-lit vertex shader.
# clip = VP * position (column-major VP in c[0..15])
mul.f32 r0, a[0], c[0]
mad.f32 r0, a[1], c[4], r0
mad.f32 r0, a[2], c[8], r0
add.f32 r0, r0, c[12]
mul.f32 r1, a[0], c[1]
mad.f32 r1, a[1], c[5], r1
mad.f32 r1, a[2], c[9], r1
add.f32 r1, r1, c[13]
mul.f32 r2, a[0], c[2]
mad.f32 r2, a[1], c[6], r2
mad.f32 r2, a[2], c[10], r2
add.f32 r2, r2, c[14]
mul.f32 r3, a[0], c[3]
mad.f32 r3, a[1], c[7], r3
mad.f32 r3, a[2], c[11], r3
add.f32 r3, r3, c[15]
sto o[0], r0
sto o[1], r1
sto o[2], r2
sto o[3], r3
# diffuse = max(0, n . l) + ambient, clamped
mul.f32 r4, a[3], c[16]
mad.f32 r4, a[4], c[17], r4
mad.f32 r4, a[5], c[18], r4
max.f32 r4, r4, 0.0
add.f32 r4, r4, c[19]
min.f32 r4, r4, 1.0
sto o[4], r4
sto o[5], r4
sto o[6], r4
# pass through uv
sto o[7], a[6]
sto o[8], a[7]
exit
)";
    return source;
}

const std::string &
fragmentTexturedSource()
{
    static const std::string source = R"(
# Textured fragment shader: albedo * lit color.
tex.2d r4, t0, a[3], a[4]
mul.f32 r8, r4, a[0]
mul.f32 r9, r5, a[1]
mul.f32 r10, r6, a[2]
sto o[0], r8
sto o[1], r9
sto o[2], r10
sto o[3], 1.0
)";
    return source;
}

const std::string &
fragmentTranslucentSource()
{
    static const std::string source = R"(
# Translucent textured fragment shader: alpha from c[20].
tex.2d r4, t0, a[3], a[4]
mul.f32 r8, r4, a[0]
mul.f32 r9, r5, a[1]
mul.f32 r10, r6, a[2]
sto o[0], r8
sto o[1], r9
sto o[2], r10
sto o[3], c[20]
)";
    return source;
}

const std::string &
fragmentFlatSource()
{
    static const std::string source = R"(
# Flat fragment shader: interpolated lit color only.
sto o[0], a[0]
sto o[1], a[1]
sto o[2], a[2]
sto o[3], 1.0
)";
    return source;
}

const std::string &
fragmentHeavySource()
{
    static const std::string source = R"(
# Two texture taps plus a cheap specular-ish term.
tex.2d r4, t0, a[3], a[4]
mul.f32 r8, a[3], 4.0
mul.f32 r9, a[4], 4.0
tex.2d r12, t1, r8, r9
mul.f32 r16, r4, r12
mul.f32 r17, r5, r13
mul.f32 r18, r6, r14
mul.f32 r16, r16, a[0]
mul.f32 r17, r17, a[1]
mul.f32 r18, r18, a[2]
mul.f32 r20, a[0], a[0]
mul.f32 r20, r20, r20
mul.f32 r20, r20, r20
mad.f32 r16, r20, 0.4, r16
mad.f32 r17, r20, 0.4, r17
mad.f32 r18, r20, 0.4, r18
min.f32 r16, r16, 1.0
min.f32 r17, r17, 1.0
min.f32 r18, r18, 1.0
sto o[0], r16
sto o[1], r17
sto o[2], r18
sto o[3], 1.0
)";
    return source;
}

const std::string &
kernelVecAddSource()
{
    static const std::string source = R"(
# c = a + b; bases in c[0..2], element count in c[3].
mov.u32 r0, %ctaid.x
mov.u32 r1, %ntid.x
mul.u32 r0, r0, r1
mov.u32 r2, %tid.x
add.u32 r0, r0, r2
cvt.u32.f32 r3, c[3]
setp.ge.u32 p0, r0, r3
@p0 exit
shl.u32 r4, r0, 2
cvt.u32.f32 r5, c[0]
add.u32 r5, r5, r4
cvt.u32.f32 r6, c[1]
add.u32 r6, r6, r4
cvt.u32.f32 r7, c[2]
add.u32 r7, r7, r4
ldg.f32 r8, [r5]
ldg.f32 r9, [r6]
add.f32 r10, r8, r9
stg.f32 [r7], r10
exit
)";
    return source;
}

const std::string &
kernelReduceSource()
{
    static const std::string source = R"(
# Block-wise shared-memory sum reduction.
# in base c[0], out base c[1]; one partial sum per CTA.
mov.u32 r0, %tid.x
mov.u32 r1, %ctaid.x
mov.u32 r2, %ntid.x
mul.u32 r3, r1, r2
add.u32 r3, r3, r0
shl.u32 r4, r3, 2
cvt.u32.f32 r5, c[0]
add.u32 r5, r5, r4
ldg.f32 r6, [r5]
shl.u32 r7, r0, 2
sts.f32 [r7], r6
bar.sync
mov.u32 r8, r2
shr.u32 r8, r8, 1
LOOP:
setp.eq.u32 p1, r8, 0
@p1 bra DONE
setp.lt.u32 p0, r0, r8
@!p0 bra SKIP
add.u32 r9, r0, r8
shl.u32 r10, r9, 2
lds.f32 r11, [r10]
lds.f32 r12, [r7]
add.f32 r12, r12, r11
sts.f32 [r7], r12
SKIP:
bar.sync
shr.u32 r8, r8, 1
bra LOOP
DONE:
setp.ne.u32 p2, r0, 0
@p2 exit
lds.f32 r13, [r7]
cvt.u32.f32 r14, c[1]
shl.u32 r15, r1, 2
add.u32 r14, r14, r15
stg.f32 [r14], r13
exit
)";
    return source;
}

const std::string &
kernelSaxpyBranchySource()
{
    static const std::string source = R"(
# y += scale * x with a divergent even/odd path (SIMT stack test).
mov.u32 r0, %ctaid.x
mov.u32 r1, %ntid.x
mul.u32 r0, r0, r1
mov.u32 r2, %tid.x
add.u32 r0, r0, r2
cvt.u32.f32 r3, c[3]
setp.ge.u32 p0, r0, r3
@p0 exit
shl.u32 r4, r0, 2
cvt.u32.f32 r5, c[0]
add.u32 r5, r5, r4
cvt.u32.f32 r6, c[1]
add.u32 r6, r6, r4
ldg.f32 r8, [r5]
ldg.f32 r9, [r6]
and.u32 r10, r0, 1
setp.eq.u32 p1, r10, 0
@p1 bra EVEN
mul.f32 r8, r8, c[2]
bra JOIN
EVEN:
mul.f32 r8, r8, c[2]
mul.f32 r8, r8, 2.0
JOIN:
add.f32 r11, r8, r9
stg.f32 [r6], r11
exit
)";
    return source;
}

} // namespace emerald::scenes
