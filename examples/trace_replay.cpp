/**
 * @file
 * Trace capture and replay (the paper's standalone-mode workflow:
 * APITrace captures played through the simulator; full-system
 * checkpointing records and replays draw calls the same way).
 *
 * Records a few frames of a workload into a .etr file, reloads it,
 * replays through a fresh simulator instance, and verifies the
 * replayed images hash-match a live render.
 *
 * Usage: trace_replay [--workload=W3] [--frames=3]
 *                     [--out=cube.etr]
 */

#include <cstdio>
#include <string>

#include "core/trace.hh"
#include "scenes/shaders.hh"
#include "scenes/workloads.hh"
#include "sim/config.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

scenes::WorkloadId
workloadFromName(const std::string &name)
{
    using scenes::WorkloadId;
    if (name == "W1")
        return WorkloadId::W1_Sibenik;
    if (name == "W2")
        return WorkloadId::W2_Spot;
    if (name == "W4")
        return WorkloadId::W4_Suzanne;
    if (name == "W6")
        return WorkloadId::W6_Teapot;
    return WorkloadId::W3_Cube;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 3));
    std::string out = cfg.getString("out", "capture.etr");
    unsigned w = 192, h = 144;

    scenes::Workload workload =
        scenes::makeWorkload(workloadFromName(
            cfg.getString("workload", "W3")));

    // 1. Record: build the trace the way a driver shim would - one
    // draw per frame with the animated view-projection constants.
    core::Trace trace;
    trace.fbWidth = w;
    trace.fbHeight = h;
    for (unsigned f = 0; f < frames; ++f) {
        trace.beginFrame();
        core::TraceDraw draw;
        draw.vsSource = scenes::vertexShaderSource();
        draw.fsSource = workload.translucent
                            ? scenes::fragmentTranslucentSource()
                            : scenes::fragmentTexturedSource();
        draw.state.cullBackface = false;
        draw.state.blend = workload.translucent;
        draw.state.depthWrite = !workload.translucent;
        draw.floatsPerVertex = scenes::vertexFloats;
        draw.numVaryings = scenes::standardVaryings;
        draw.vertexData = workload.mesh.data();
        draw.constants.resize(24, 0.0f);
        workload.camera
            .viewProj(f, static_cast<float>(w) / static_cast<float>(h))
            .toColumnMajor(draw.constants.data());
        draw.constants[16] = 0.45f;
        draw.constants[17] = 0.7f;
        draw.constants[18] = 0.55f;
        draw.constants[19] = 0.25f;
        draw.constants[20] = 0.55f;

        core::TraceTexture tex;
        tex.unit = 0;
        tex.width = workload.textureSize;
        tex.height = workload.textureSize;
        tex.texels.resize(std::size_t(tex.width) * tex.height);
        for (unsigned y = 0; y < tex.height; ++y) {
            for (unsigned x = 0; x < tex.width; ++x) {
                bool odd = ((x / (tex.width / 8)) +
                            (y / (tex.height / 8))) &
                           1;
                tex.texels[std::size_t(y) * tex.width + x] =
                    odd ? 0xffe0e0e0u : 0xff508ad0u;
            }
        }
        draw.textures.push_back(std::move(tex));
        trace.recordDraw(std::move(draw));
    }

    if (!saveTrace(out, trace)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("recorded %u frames (%u draws, %u verts/frame) to "
                "%s\n",
                frames, 1u, trace.frames[0][0].vertexCount(),
                out.c_str());

    // 2. Replay in a fresh simulator and render the same frames
    // live in another; images must hash-match.
    auto loaded = core::loadTrace(out);
    if (!loaded) {
        std::fprintf(stderr, "cannot reload %s\n", out.c_str());
        return 1;
    }

    soc::StandaloneGpu live_rig(w, h);
    core::TracePlayer live(live_rig.pipeline(), trace,
                           live_rig.functionalMemory());
    soc::StandaloneGpu replay_rig(w, h);
    core::TracePlayer replay(replay_rig.pipeline(), *loaded,
                             replay_rig.functionalMemory());

    std::printf("%-6s %18s %18s %7s\n", "frame", "live hash",
                "replay hash", "match");
    bool all_match = true;
    for (unsigned f = 0; f < frames; ++f) {
        auto render = [](soc::StandaloneGpu &rig,
                         core::TracePlayer &player, unsigned idx) {
            bool done = false;
            player.playFrame(idx, [&](const core::FrameStats &) {
                done = true;
            });
            rig.runUntil([&] { return done; });
            return player.framebuffer().colorHash();
        };
        std::uint64_t h1 = render(live_rig, live, f);
        std::uint64_t h2 = render(replay_rig, replay, f);
        bool match = h1 == h2;
        all_match &= match;
        std::printf("%-6u %018llx %018llx %7s\n", f,
                    (unsigned long long)h1, (unsigned long long)h2,
                    match ? "yes" : "NO");
    }
    std::printf(all_match ? "replay is bit-identical\n"
                          : "REPLAY MISMATCH\n");
    return all_match ? 0 : 1;
}
