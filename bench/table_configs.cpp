/**
 * @file
 * Prints the configuration tables the paper's experiments use
 * (Tables 1, 3, 4, 5, 7, and the workload Tables 6/8) as realized by
 * this implementation, so every run records its parameters.
 */

#include "harness.hh"
#include "registry.hh"
#include "mem/dash_scheduler.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "table_configs");
    BenchResults &results = *harness.results;

    std::printf("=== Table 1: simulation platforms ===\n");
    std::printf("%-12s %-18s %-8s %-10s %-6s\n", "simulator", "model",
                "GPGPU", "graphics", "FS");
    std::printf("%-12s %-18s %-8s %-10s %-6s\n", "gem5",
                "execution driven", "no", "no", "yes");
    std::printf("%-12s %-18s %-8s %-10s %-6s\n", "GemDroid",
                "trace driven", "no", "yes", "no");
    std::printf("%-12s %-18s %-8s %-10s %-6s\n", "gem5-gpu",
                "execution driven", "yes", "no", "yes");
    std::printf("%-12s %-18s %-8s %-10s %-6s\n", "Emerald",
                "execution driven", "yes", "yes", "yes");

    std::printf("\n=== Table 3: DASH configuration ===\n");
    mem::DashParams dash;
    std::printf("switching unit      : 500 CPU cycles (%.0f ns)\n",
                static_cast<double>(dash.switchingUnit) / 1e3);
    std::printf("quantum length      : 1M CPU cycles (%.0f us)\n",
                static_cast<double>(dash.quantum) / 1e6);
    std::printf("clustering factor   : %.2f\n", dash.clusterThresh);
    std::printf("emergent threshold  : 0.80 (0.90 for the GPU)\n");
    std::printf("display frame period: 16 ms (60 FPS)\n");
    std::printf("GPU frame period    : 33 ms (30 FPS)\n");

    results.record("dash.switching_unit_ns",
                   static_cast<double>(dash.switchingUnit) / 1e3);
    results.record("dash.quantum_us",
                   static_cast<double>(dash.quantum) / 1e6);
    results.record("dash.cluster_thresh", dash.clusterThresh);

    std::printf("\n=== Table 4: DRAM configurations ===\n");
    std::printf("baseline: 2 channels, map %s, FR-FCFS\n",
                mem::addrMapSchemeName(
                    mem::AddrMapScheme::RoRaBaCoCh));
    std::printf("HMC     : CPU channel map %s, IP channel map %s, "
                "FR-FCFS\n",
                mem::addrMapSchemeName(
                    mem::AddrMapScheme::RoRaBaCoCh),
                mem::addrMapSchemeName(
                    mem::AddrMapScheme::RoCoRaBaCh));

    std::printf("\n=== Table 5: case study I system ===\n");
    gpu::GpuTopParams g1 = soc::caseStudy1GpuParams();
    std::printf("CPU: 4 cores @ 2 GHz, 32 KB L1 + 1 MB L2 per core "
                "(closed-loop traffic models)\n");
    std::printf("GPU: %u SIMT cores @ 950 MHz, %u lanes/core\n",
                g1.numCores(), 32u);
    std::printf("     L1D %llu KB, L1T %llu KB, L1Z %llu KB, shared "
                "L2 %llu KB\n",
                (unsigned long long)g1.core.l1d.sizeBytes / 1024,
                (unsigned long long)g1.core.l1t.sizeBytes / 1024,
                (unsigned long long)g1.core.l1z.sizeBytes / 1024,
                (unsigned long long)g1.l2.sizeBytes / 1024);
    std::printf("DRAM: 2-channel 32-bit LPDDR3-1333 (high load: "
                "133)\n");

    std::printf("\n=== Table 7: case study II GPU ===\n");
    gpu::GpuTopParams g2 = soc::caseStudy2GpuParams();
    std::printf("%u SIMT clusters, %u max threads/core, %u regs\n",
                g2.numClusters, g2.core.maxThreads,
                g2.core.numRegisters);
    std::printf("L1D %llu KB/%u-way, L1T %llu KB/%u-way, L1Z %llu "
                "KB/%u-way, L2 %llu MB/%u-way\n",
                (unsigned long long)g2.core.l1d.sizeBytes / 1024,
                g2.core.l1d.assoc,
                (unsigned long long)g2.core.l1t.sizeBytes / 1024,
                g2.core.l1t.assoc,
                (unsigned long long)g2.core.l1z.sizeBytes / 1024,
                g2.core.l1z.assoc,
                (unsigned long long)g2.l2.sizeBytes / (1024 * 1024),
                g2.l2.assoc);
    std::printf("raster tile 4x4 px, TC tile 2x2 raster tiles, "
                "2 TC engines/cluster\n");
    std::printf("memory: 4-channel LPDDR3-1600\n");

    std::printf("\n=== Tables 6/8: workloads ===\n");
    std::printf("%-18s %10s %12s\n", "workload", "triangles",
                "material");
    for (auto list : {caseStudy2Workloads(), caseStudy1Models()}) {
        for (scenes::WorkloadId id : list) {
            scenes::Workload w = scenes::makeWorkload(id);
            std::printf("%-18s %10u %12s\n", w.name.c_str(),
                        w.mesh.triangleCount(),
                        w.translucent
                            ? "translucent"
                            : (w.heavyShader ? "heavy" : "textured"));
        }
    }
    return 0;
}

const RegisterScenario reg{{
    .name = "table_configs",
    .desc = "Paper Tables 1/3/4/5/7 and workload Tables 6/8 as realized",
    .axes = {},
    .expectedShape = "parameter tables match the paper's configuration",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
