file(REMOVE_RECURSE
  "CMakeFiles/emerald_cache.dir/cache/cache.cc.o"
  "CMakeFiles/emerald_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/emerald_cache.dir/cache/mshr.cc.o"
  "CMakeFiles/emerald_cache.dir/cache/mshr.cc.o.d"
  "libemerald_cache.a"
  "libemerald_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
