/**
 * @file
 * Machine-readable observability for the event kernel.
 *
 * EventTracer streams every processed event as a Chrome-trace /
 * Perfetto JSON record ({"name","cat","ph","ts","dur","pid","tid"}),
 * one timeline row per component, so `chrome://tracing` or
 * https://ui.perfetto.dev can show where simulated and wall-clock
 * time go. EventProfiler accumulates per-component event counts and
 * wall-clock time under the sim.profile.* stat group. Both are
 * EventInstruments; InstrumentChain fans the queue's single hook out
 * to any number of them. Everything here is off by default — an
 * uninstrumented queue pays one branch per event.
 */

#ifndef EMERALD_SIM_EVENT_TRACER_HH
#define EMERALD_SIM_EVENT_TRACER_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace emerald
{

/**
 * Streams Chrome-trace "complete" (ph:"X") records to a file. The
 * timestamp axis is simulated time in microseconds; each record's
 * duration is the wall-clock cost of that process() call, so wide
 * slices are simulation hot spots. The component (the event name up
 * to its last dot) becomes the record's category and its timeline
 * row (tid), with thread_name metadata so Perfetto labels rows.
 */
class EventTracer : public EventInstrument
{
  public:
    explicit EventTracer(const std::string &path);
    ~EventTracer() override;

    EventTracer(const EventTracer &) = delete;
    EventTracer &operator=(const EventTracer &) = delete;

    void onEvent(const std::string &name, Tick when, int priority,
                 std::uint64_t wall_ns) override;

    /** Write the closing bracket and flush. Idempotent. */
    void close();

    std::uint64_t numRecords() const { return _numRecords; }
    const std::string &path() const { return _path; }

  private:
    /** Timeline row for @p category, emitting metadata on first use. */
    unsigned tidFor(const std::string &category);

    void emitRecord(const std::string &json);

    std::string _path;
    std::ofstream _os;
    std::map<std::string, unsigned> _tids;
    std::uint64_t _numRecords = 0;
    bool _first = true;
    bool _closed = false;
};

/**
 * Per-component event-count and wall-clock profiling counters,
 * surfaced as sim.profile.<component>.{numProcessed,wallNs}. Top
 * level components register themselves by name; each processed event
 * is attributed to the longest registered dot-prefix of its event
 * name (events like "gpu.sc0.l1d.send" roll up under "gpu"), with a
 * catch-all "other" bucket. Counters exist (at zero) even while
 * profiling is disabled, so stat dumps are stable across runs.
 */
class EventProfiler : public EventInstrument
{
  public:
    /** Creates the "profile" group under @p parent. */
    explicit EventProfiler(StatGroup &parent);
    ~EventProfiler() override;

    /**
     * Register a component bucket. Idempotent; safe to call from any
     * component constructor.
     */
    void registerComponent(const std::string &name);

    void onEvent(const std::string &name, Tick when, int priority,
                 std::uint64_t wall_ns) override;

    /** Events attributed to @p component so far (0 if unknown). */
    std::uint64_t eventsFor(const std::string &component) const;

    /** Wall-clock ns attributed to @p component so far. */
    std::uint64_t wallNsFor(const std::string &component) const;

  private:
    struct Channel;

    Channel *channelFor(const std::string &event_name);

    StatGroup _group;
    std::map<std::string, std::unique_ptr<Channel>> _channels;
    /** Event-name -> channel memo (event names repeat millions of times). */
    std::unordered_map<std::string, Channel *> _memo;
    Channel *_other;
};

/** Fans the queue's single instrument slot out to several observers. */
class InstrumentChain : public EventInstrument
{
  public:
    void add(EventInstrument *instrument);
    void remove(EventInstrument *instrument);
    bool empty() const { return _instruments.empty(); }

    void onEvent(const std::string &name, Tick when, int priority,
                 std::uint64_t wall_ns) override;

  private:
    std::vector<EventInstrument *> _instruments;
};

} // namespace emerald

#endif // EMERALD_SIM_EVENT_TRACER_HH
