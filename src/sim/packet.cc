#include "sim/packet.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/packet_pool.hh"

namespace emerald
{

void
RetryList::add(MemRequestor &req)
{
    if (std::find(_waiters.begin(), _waiters.end(), &req) !=
        _waiters.end()) {
        return;
    }
    _waiters.push_back(&req);
}

bool
RetryList::wakeOne()
{
    if (_waiters.empty())
        return false;
    MemRequestor *req = _waiters.front();
    _waiters.pop_front();
    req->retryRequest();
    return true;
}

void
freePacket(MemPacket *pkt)
{
    if (pkt->pool)
        pkt->pool->free(pkt);
    else
        delete pkt;
}

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::CpuData: return "cpu_data";
      case AccessKind::Inst: return "inst";
      case AccessKind::GlobalData: return "global";
      case AccessKind::Texture: return "texture";
      case AccessKind::Depth: return "depth";
      case AccessKind::Color: return "color";
      case AccessKind::Constant: return "constant";
      case AccessKind::Vertex: return "vertex";
      case AccessKind::Display: return "display";
      case AccessKind::Writeback: return "writeback";
      default: return "unknown";
    }
}

const char *
trafficClassName(TrafficClass tclass)
{
    switch (tclass) {
      case TrafficClass::Cpu: return "cpu";
      case TrafficClass::Gpu: return "gpu";
      case TrafficClass::Display: return "display";
      default: return "unknown";
    }
}

std::string
MemPacket::toString() const
{
    return strprintf("%s %s %s addr=0x%llx size=%u req=%d",
                     trafficClassName(tclass), accessKindName(kind),
                     write ? "WR" : "RD", (unsigned long long)addr, size,
                     requestorId);
}

} // namespace emerald
