/**
 * @file
 * A minimal key=value configuration store used by examples and
 * benchmark harnesses to override experiment parameters from the
 * command line (--key=value).
 */

#ifndef EMERALD_SIM_CONFIG_HH
#define EMERALD_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace emerald
{

class Config;

/**
 * The sweep-relevant key=value pairs of @p cfg, sorted by key:
 * everything that shapes the simulated machine or workload, with
 * IO/observability and drive-mode keys (output paths, log switches,
 * checkpoint/restore and trace capture/replay directories, parser
 * control) excluded — the same design point fingerprints identically
 * no matter where its results go or how the run is driven.
 */
std::vector<std::pair<std::string, std::string>>
sweepPointParams(const Config &cfg);

/**
 * FNV-1a hash over sweepPointParams(): the identity of one sweep
 * point, keying the runs table in the SQLite results store. Returns
 * 0 when no sweep-relevant keys are set.
 */
std::uint64_t sweepPointFingerprint(const Config &cfg);

/** sweepPointFingerprint() as fixed-width lowercase hex ("" for 0). */
std::string sweepPointFingerprintHex(const Config &cfg);

/**
 * Like sweepPointFingerprintHex() but additionally excluding the
 * keys listed in --ckpt-share-keys: the *checkpoint scope* of the
 * run. It keys the per-point checkpoint/trace subdirectory
 * (BenchHarness::builderFor), so declaring an axis in
 * --ckpt-share-keys lets every point along it share one warm
 * checkpoint — without collapsing their distinct run identities in
 * the results store (docs/sweeps.md).
 */
std::string ckptScopeFingerprintHex(const Config &cfg);

/** String-keyed configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse "--key=value", "--key value" and bare boolean "--flag"
     * arguments; anything not starting with "--" is fatal.
     *
     * Keys are validated against the table of options the tools
     * actually read, so a typo like --fault-sed fails loudly (with a
     * near-miss suggestion) instead of being silently ignored. Pass
     * --allow-unknown-args to opt out, e.g. when feeding one argv to
     * several parsers. Programmatic set() is never validated.
     */
    void parseArgs(int argc, char **argv);

    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    /** Unsigned accessor; fatal on negative or malformed values. */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;

    /** All key=value pairs, sorted by key (std::map order). */
    const std::map<std::string, std::string> &items() const
    {
        return _values;
    }

  private:
    std::map<std::string, std::string> _values;
};

} // namespace emerald

#endif // EMERALD_SIM_CONFIG_HH
