file(REMOVE_RECURSE
  "CMakeFiles/emerald_soc.dir/soc/app_model.cc.o"
  "CMakeFiles/emerald_soc.dir/soc/app_model.cc.o.d"
  "CMakeFiles/emerald_soc.dir/soc/configs.cc.o"
  "CMakeFiles/emerald_soc.dir/soc/configs.cc.o.d"
  "CMakeFiles/emerald_soc.dir/soc/cpu_traffic.cc.o"
  "CMakeFiles/emerald_soc.dir/soc/cpu_traffic.cc.o.d"
  "CMakeFiles/emerald_soc.dir/soc/display_controller.cc.o"
  "CMakeFiles/emerald_soc.dir/soc/display_controller.cc.o.d"
  "CMakeFiles/emerald_soc.dir/soc/soc_top.cc.o"
  "CMakeFiles/emerald_soc.dir/soc/soc_top.cc.o.d"
  "libemerald_soc.a"
  "libemerald_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
