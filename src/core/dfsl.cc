#include "core/dfsl.hh"

#include "sim/logging.hh"

namespace emerald::core
{

DfslController::DfslController(const DfslParams &params)
    : _params(params), _wtBest(params.minWT)
{
    fatal_if(params.minWT == 0 || params.maxWT < params.minWT,
             "bad DFSL WT range");
}

bool
DfslController::evaluating() const
{
    return _currFrame % phaseLength() < evalFrames();
}

unsigned
DfslController::wtForNextFrame() const
{
    std::uint64_t pos = _currFrame % phaseLength();
    if (pos < evalFrames())
        return _params.minWT + static_cast<unsigned>(pos);
    return _wtBest;
}

void
DfslController::frameCompleted(std::uint64_t exec_cycles)
{
    // Algorithm 1: reset the search at the start of each phase,
    // track the best-performing WT during evaluation, then run with
    // it.
    std::uint64_t pos = _currFrame % phaseLength();
    if (pos == 0) {
        _minExecTime = ~std::uint64_t(0);
        _wtBest = _params.minWT;
    }
    if (pos < evalFrames()) {
        unsigned wt = _params.minWT + static_cast<unsigned>(pos);
        if (exec_cycles < _minExecTime) {
            _minExecTime = exec_cycles;
            _wtBest = wt;
        }
    }
    ++_currFrame;
}

} // namespace emerald::core
