/**
 * @file
 * Paper Fig. 19: DFSL against the static distributions — MLB
 * (maximum load balance, WT=1), MLC (maximum locality, WT=10) and
 * SOPT (the single best static WT on average across workloads).
 * Speedups are normalized to MLB.
 * Expected shape: DFSL >= SOPT >= MLC on average; the paper reports
 * DFSL +19% over MLB and +7.3% over SOPT.
 */

#include "core/dfsl.hh"
#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

/** Mean cycles over an animated frame sequence at a fixed WT. */
double
staticRun(scenes::WorkloadId id, unsigned wt, unsigned fbw,
          unsigned fbh, unsigned frames)
{
    soc::StandaloneGpu rig(fbw, fbh);
    scenes::SceneRenderer scene(rig.pipeline(),
                                scenes::makeWorkload(id),
                                rig.functionalMemory());
    rig.pipeline().setWtSize(wt);
    renderFrame(rig, scene, 0); // Warm-up.
    double sum = 0;
    for (unsigned f = 1; f <= frames; ++f)
        sum += static_cast<double>(renderFrame(rig, scene, f).cycles);
    return sum / frames;
}

/** Mean cycles with the DFSL controller driving the WT choice. */
struct DfslResult
{
    double meanAll = 0.0;  ///< Including evaluation frames.
    double meanRun = 0.0;  ///< Steady state (run phase only).
};

DfslResult
dfslRun(scenes::WorkloadId id, unsigned fbw, unsigned fbh,
        unsigned run_frames, unsigned max_wt)
{
    soc::StandaloneGpu rig(fbw, fbh);
    scenes::SceneRenderer scene(rig.pipeline(),
                                scenes::makeWorkload(id),
                                rig.functionalMemory());
    core::DfslParams dp;
    dp.minWT = 1;
    dp.maxWT = max_wt;
    dp.runFrames = run_frames;
    core::DfslController dfsl(dp);

    renderFrame(rig, scene, 0); // Warm-up (not fed to DFSL).
    unsigned eval = dp.maxWT - dp.minWT + 1;
    unsigned total = eval + run_frames;
    DfslResult out;
    for (unsigned f = 1; f <= total; ++f) {
        rig.pipeline().setWtSize(dfsl.wtForNextFrame());
        bool evaluating = dfsl.evaluating();
        core::FrameStats s = renderFrame(rig, scene, f);
        dfsl.frameCompleted(s.cycles);
        out.meanAll += static_cast<double>(s.cycles);
        if (!evaluating)
            out.meanRun += static_cast<double>(s.cycles);
    }
    out.meanAll /= total;
    out.meanRun /= run_frames;
    return out;
}

} // namespace

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig19_dfsl");
    const Config &cfg = harness.cfg;
    unsigned fbw = static_cast<unsigned>(cfg.getU64("width", 256));
    unsigned fbh = static_cast<unsigned>(cfg.getU64("height", 192));
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 6));
    unsigned run_frames =
        static_cast<unsigned>(cfg.getU64("run_frames", 24));
    // The DFSL evaluation range scales with the TC grid: the paper's
    // WT 1-10 at 1024x768 corresponds to roughly 1-6 at 256x192.
    unsigned max_wt =
        static_cast<unsigned>(cfg.getU64("maxwt", 6));
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    auto workloads = caseStudy2Workloads();
    if (quick)
        workloads = {scenes::WorkloadId::W3_Cube,
                     scenes::WorkloadId::W5_SuzanneAlpha};

    // SOPT: the best static WT averaged across all workloads
    // (paper: "we ran all the frames across all configs and found
    // the best WT, on average, across all workloads").
    std::printf("=== Fig. 19: DFSL vs static work distribution "
                "(speedup over MLB; higher is better) ===\n");
    std::printf("finding SOPT...\n");
    unsigned sopt = 1;
    {
        double best = 1e300;
        for (unsigned wt = 1; wt <= 10; ++wt) {
            double total = 0;
            for (scenes::WorkloadId id : workloads)
                total += meanCyclesAtWt(id, wt, fbw, fbh, 2) /
                         meanCyclesAtWt(id, 1, fbw, fbh, 2);
            if (total < best) {
                best = total;
                sopt = wt;
            }
        }
    }
    std::printf("SOPT = WT%u\n\n", sopt);

    std::printf("%-18s %8s %8s %8s %8s %9s\n", "workload", "MLB",
                "MLC", "SOPT", "DFSL", "DFSLrun");
    double g_mlc = 0, g_sopt = 0, g_dfsl = 0, g_dfslr = 0;
    for (scenes::WorkloadId id : workloads) {
        double mlb = staticRun(id, 1, fbw, fbh, frames);
        double mlc = staticRun(id, 10, fbw, fbh, frames);
        double sopt_c = staticRun(id, sopt, fbw, fbh, frames);
        DfslResult dfsl_c = dfslRun(id, fbw, fbh, run_frames, max_wt);
        double s_mlc = mlb / mlc;
        double s_sopt = mlb / sopt_c;
        double s_dfsl = mlb / dfsl_c.meanAll;
        double s_dfslr = mlb / dfsl_c.meanRun;
        g_mlc += s_mlc;
        g_sopt += s_sopt;
        g_dfsl += s_dfsl;
        g_dfslr += s_dfslr;
        std::string wl = scenes::workloadName(id);
        results.record(wl + ".speedup_mlc", s_mlc);
        results.record(wl + ".speedup_sopt", s_sopt);
        results.record(wl + ".speedup_dfsl", s_dfsl);
        results.record(wl + ".speedup_dfsl_run", s_dfslr);
        std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %9.3f\n",
                    scenes::workloadName(id), 1.0, s_mlc, s_sopt,
                    s_dfsl, s_dfslr);
        std::fflush(stdout);
    }
    double n = static_cast<double>(workloads.size());
    results.record("sopt_wt", sopt);
    results.record("mean.speedup_mlc", g_mlc / n);
    results.record("mean.speedup_sopt", g_sopt / n);
    results.record("mean.speedup_dfsl", g_dfsl / n);
    results.record("mean.speedup_dfsl_run", g_dfslr / n);
    std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %9.3f\n", "MEAN",
                1.0, g_mlc / n, g_sopt / n, g_dfsl / n, g_dfslr / n);
    std::printf("\npaper shape: DFSL ~1.19x over MLB, ~1.073x over "
                "SOPT on average\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig19_dfsl",
    .desc = "Fig. 19: DFSL vs static work distributions (speedup over MLB)",
    .axes = {"quick", "frames", "run_frames", "maxwt", "width", "height"},
    .expectedShape = "DFSL ~1.19x over MLB, ~1.073x over SOPT on average",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
