/**
 * @file
 * NPU DMA engine: moves scratchpad tiles to and from system memory
 * as bursts of line-sized packets through the backpressure-aware
 * offer()/retry port protocol (docs/memory_protocol.md).
 *
 * Transfers queue FIFO and issue in order, with per-transfer
 * completion tracked by packet token so out-of-order DRAM responses
 * across adjacent transfers credit the right one. A rejected packet
 * is held — its outstanding slot stays reserved — until the sink's
 * retryRequest() wakes the engine; the engine never polls, so every
 * fault seam and protocol checker on the request path sees it like
 * any other client.
 */

#ifndef EMERALD_NPU_DMA_HH
#define EMERALD_NPU_DMA_HH

#include <deque>

#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::mem
{
class TrafficTraceWriter;
} // namespace emerald::mem

namespace emerald::npu
{

/** Requestor id for the NPU DMA engine (CPU cores use their index,
 *  the display controller 101). */
constexpr int npuRequestorId = 102;

/** Completion interface the DMA engine reports into (NpuTop). */
class NpuDmaClient
{
  public:
    virtual ~NpuDmaClient() = default;

    /** Transfer @p token moved all its bytes. */
    virtual void dmaTransferDone(std::uint64_t token) = 0;

    /** Transfer @p token was abandoned by degrade recovery. */
    virtual void dmaTransferAborted(std::uint64_t token) = 0;
};

struct NpuDmaParams
{
    /** Packets in flight at once (burst width). */
    unsigned maxOutstanding = 8;
    /** Bytes per packet (the memory line size). */
    unsigned burstBytes = 128;
};

class NpuDmaEngine : public SimObject,
                     public MemClient,
                     public MemRequestor
{
  public:
    NpuDmaEngine(Simulation &sim, const std::string &name,
                 const NpuDmaParams &params, MemSink &downstream);

    /** Completion sink; wired by the owner before any transfer. */
    void setClient(NpuDmaClient *client) { _client = client; }

    /**
     * Record accepted transactions into @p writer as capture client
     * @p client_id (--capture-trace at the NPU DMA boundary).
     * Observation only: recording never changes timing or the event
     * stream. Null detaches.
     */
    void
    setTraceCapture(mem::TrafficTraceWriter *writer,
                    unsigned client_id)
    {
        _traceWriter = writer;
        _traceClient = client_id;
    }

    /**
     * Queue one contiguous transfer of @p bytes from/to @p base;
     * completion is reported via NpuDmaClient with @p token.
     * Transfers issue strictly in submission order.
     */
    void startTransfer(Addr base, std::uint64_t bytes, bool write,
                       std::uint64_t token);

    bool idle() const
    {
        return _transfers.empty() && _outstanding == 0 && !_retryPkt;
    }
    std::size_t pendingTransfers() const { return _transfers.size(); }

    void memResponse(MemPacket *pkt) override;
    void retryRequest() override;
    std::string requestorName() const override { return name(); }

    /**
     * Watchdog degrade recovery: a stuck burst (held rejected packet
     * or responses that never arrived) abandons every queued
     * transfer so the NPU can shed the inference and resume clean.
     */
    void onWatchdogDegrade() override;

    void hangDiagnostics(std::ostream &os) const override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    /** @{ Statistics. */
    Scalar statBytesRead;
    Scalar statBytesWritten;
    Scalar statRequests;
    Scalar statTransfers;
    Scalar statAborts;
    Distribution statTransferTicks;
    /** @} */

  private:
    struct Transfer
    {
        Addr base = 0;
        std::uint64_t bytes = 0;
        bool write = false;
        std::uint64_t token = 0;
        /** Bytes whose packets were accepted downstream. */
        std::uint64_t issued = 0;
        /** Bytes whose responses came back. */
        std::uint64_t acked = 0;
        Tick start = 0;
        /** Engine-local id; packets carry it in their token field. */
        std::uint64_t id = 0;
    };

    void pump();
    void dropRetryPkt();
    /** Retire fully-acked transfers at the queue head, in order. */
    void completeFinished();
    Transfer *findById(std::uint64_t id);

    NpuDmaParams _params;
    MemSink &_downstream;
    NpuDmaClient *_client = nullptr;
    mem::TrafficTraceWriter *_traceWriter = nullptr;
    unsigned _traceClient = 0;

    std::deque<Transfer> _transfers;
    std::uint64_t _nextId = 1;
    unsigned _outstanding = 0;
    /** Guards against re-entrant pump() on synchronous responses. */
    bool _pumping = false;
    /**
     * Packet rejected downstream, held (slot still reserved) until
     * retryRequest(); never re-offered by polling.
     */
    MemPacket *_retryPkt = nullptr;
};

} // namespace emerald::npu

#endif // EMERALD_NPU_DMA_HH
