file(REMOVE_RECURSE
  "libemerald_core.a"
)
