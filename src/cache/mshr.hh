/**
 * @file
 * Miss status holding registers for the non-blocking caches.
 */

#ifndef EMERALD_CACHE_MSHR_HH
#define EMERALD_CACHE_MSHR_HH

#include <unordered_map>
#include <vector>

#include "sim/packet.hh"
#include "sim/types.hh"

namespace emerald::cache
{

/** One outstanding line fill with its waiting requests. */
struct Mshr
{
    Addr lineAddr = 0;
    bool fillSent = false;
    /** Original requests to answer once the line arrives. */
    std::vector<MemPacket *> targets;
};

/** A fixed-capacity MSHR file indexed by line address. */
class MshrFile
{
  public:
    MshrFile(unsigned num_entries, unsigned targets_per_entry)
        : _numEntries(num_entries), _targetsPerEntry(targets_per_entry)
    {}

    /** Look up the MSHR covering @p line_addr, or nullptr. */
    Mshr *find(Addr line_addr);

    /** True when a new MSHR can be allocated. */
    bool available() const { return _entries.size() < _numEntries; }

    /**
     * Allocate an MSHR for @p line_addr.
     * @pre available() and no entry for the line exists.
     */
    Mshr &allocate(Addr line_addr);

    /** True when @p mshr can absorb one more target. */
    bool
    canAddTarget(const Mshr &mshr) const
    {
        return mshr.targets.size() < _targetsPerEntry;
    }

    /** Release the MSHR for @p line_addr. */
    void release(Addr line_addr);

    std::size_t inUse() const { return _entries.size(); }

    /** All live entries, for checkpointing (unordered). */
    const std::unordered_map<Addr, Mshr> &
    entries() const
    {
        return _entries;
    }

  private:
    unsigned _numEntries;
    unsigned _targetsPerEntry;
    std::unordered_map<Addr, Mshr> _entries;
};

} // namespace emerald::cache

#endif // EMERALD_CACHE_MSHR_HH
