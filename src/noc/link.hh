/**
 * @file
 * A point-to-point interconnect link with latency, serialization
 * bandwidth and a bounded queue. Links compose into the crossbars
 * that form the GPU-internal network and the system NoC (paper
 * Fig. 1, elements 3-5). Response paths are modelled as latency only
 * (gem5 "classic" network style).
 */

#ifndef EMERALD_NOC_LINK_HH
#define EMERALD_NOC_LINK_HH

#include <deque>

#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::noc
{

/** Link configuration. */
struct LinkParams
{
    /** Fixed traversal latency. */
    Tick latency = ticksFromNs(4.0);
    /** Serialization bandwidth, bytes per second (0 = infinite). */
    double bytesPerSec = 16e9;
    /** Queued packets before upstream is back-pressured. */
    unsigned queueDepth = 16;
};

/**
 * Unidirectional request link delivering into a MemSink. When the
 * target rejects the head packet the link registers for a retry and
 * sleeps; when the link's own queue fills it queues the rejected
 * upstream requestor and wakes it as slots drain.
 */
class Link : public SimObject, public MemSink, public MemRequestor
{
  public:
    Link(Simulation &sim, const std::string &name,
         const LinkParams &params);

    void setTarget(MemSink &target) { _target = &target; }

    bool tryAccept(MemPacket *pkt) override;
    void retryRequest() override;
    std::string requestorName() const override { return name(); }

    std::size_t queueDepth() const { return _queue.size(); }

    /** True while parked on the target's retry list. */
    bool blocked() const { return _blocked; }

    void hangDiagnostics(std::ostream &os) const override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    /** @{ Statistics. */
    Scalar statPackets;
    Scalar statBytes;
    Scalar statRetries;
    /** @} */

  private:
    void deliver();

    LinkParams _params;
    MemSink *_target = nullptr;

    struct Item
    {
        MemPacket *pkt;
        Tick readyAt;
    };

    std::deque<Item> _queue;
    Tick _serializerFree = 0;
    /** Target rejected our head; waiting for retryRequest(). */
    bool _blocked = false;
    EventFunction _deliverEvent;
};

} // namespace emerald::noc

#endif // EMERALD_NOC_LINK_HH
