/**
 * @file
 * SIMT reconvergence stack (GPGPU-Sim style).
 *
 * Each warp carries a stack of (pc, reconvergence-pc, mask) entries.
 * A divergent branch turns the top entry into a reconvergence
 * placeholder at the branch's immediate post-dominator and pushes the
 * not-taken and taken paths; paths pop as they reach the
 * reconvergence pc, restoring the full mask.
 */

#ifndef EMERALD_GPU_SIMT_STACK_HH
#define EMERALD_GPU_SIMT_STACK_HH

#include <cstdint>
#include <vector>

#include "gpu/isa/instruction.hh"

namespace emerald::gpu
{

class SimtStack
{
  public:
    struct Entry
    {
        int pc = 0;
        /** Reconvergence pc; -1 = only at thread exit. */
        int rpc = -1;
        std::uint32_t mask = 0;
    };

    /** Reset to a single base entry covering @p initial_mask. */
    void reset(std::uint32_t initial_mask);

    bool empty() const { return _entries.empty(); }

    /** Current pc. @pre !empty(). */
    int pc() const { return _entries.back().pc; }

    /** Current active mask. @pre !empty(). */
    std::uint32_t activeMask() const { return _entries.back().mask; }

    /**
     * Advance past a non-branch instruction, popping reconverged
     * entries.
     */
    void advance();

    /**
     * Apply a (possibly divergent) branch.
     * @param instr the BRA instruction (target, reconvergePc).
     * @param taken_mask lanes that take the branch.
     * @param alive_mask lanes still alive (not exited).
     */
    void branch(const isa::Instruction &instr, std::uint32_t taken_mask,
                std::uint32_t alive_mask);

    /**
     * Remove dead lanes from every entry and pop empty entries.
     * Call after EXIT / DISCARD / failed depth tests.
     */
    void pruneDead(std::uint32_t alive_mask);

    std::size_t depth() const { return _entries.size(); }

  private:
    void popReconverged();

    std::vector<Entry> _entries;
};

} // namespace emerald::gpu

#endif // EMERALD_GPU_SIMT_STACK_HH
