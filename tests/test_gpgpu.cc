#include <gtest/gtest.h>

#include <cmath>

#include "core/shader_builder.hh"
#include "scenes/shaders.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

struct KernelRig
{
    soc::StandaloneGpu rig{64, 64};
    core::ShaderBuilder builder;

    std::uint64_t
    run(gpu::KernelLaunch launch)
    {
        bool done = false;
        launch.onDone = [&] { done = true; };
        Tick start = rig.sim().curTick();
        rig.kernels().launch(std::move(launch));
        EXPECT_TRUE(rig.runUntil([&] { return done; }));
        return rig.sim().curTick() - start;
    }
};

} // namespace

TEST(Gpgpu, VecAddCorrectThroughFullTiming)
{
    KernelRig kr;
    auto &fmem = kr.rig.functionalMemory();
    unsigned n = 4096;
    Addr a = fmem.allocate(n * 4), b = fmem.allocate(n * 4),
         c = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, static_cast<float>(i) * 0.5f);
        fmem.writeF32(b + i * 4, 1.0f);
    }
    gpu::KernelLaunch launch;
    launch.program =
        kr.builder.buildKernel("vecadd", scenes::kernelVecAddSource());
    launch.blockX = 128;
    launch.gridX = n / 128;
    launch.memory = &fmem;
    launch.constants = {static_cast<float>(a), static_cast<float>(b),
                        static_cast<float>(c), static_cast<float>(n)};
    kr.run(std::move(launch));

    for (unsigned i = 0; i < n; ++i) {
        ASSERT_FLOAT_EQ(fmem.readF32(c + i * 4),
                        static_cast<float>(i) * 0.5f + 1.0f)
            << i;
    }
    // Every element loaded twice and stored once via L1D.
    EXPECT_GT(kr.rig.gpu().core(0).l1d().accesses(), 0u);
}

TEST(Gpgpu, TailBlockPartialWarp)
{
    KernelRig kr;
    auto &fmem = kr.rig.functionalMemory();
    unsigned n = 100; // Not a multiple of the CTA size.
    Addr a = fmem.allocate(n * 4), b = fmem.allocate(n * 4),
         c = fmem.allocate((n + 64) * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, 1.0f);
        fmem.writeF32(b + i * 4, 2.0f);
    }
    gpu::KernelLaunch launch;
    launch.program =
        kr.builder.buildKernel("vecadd", scenes::kernelVecAddSource());
    launch.blockX = 64;
    launch.gridX = 2; // 128 threads for 100 elements.
    launch.memory = &fmem;
    launch.constants = {static_cast<float>(a), static_cast<float>(b),
                        static_cast<float>(c), static_cast<float>(n)};
    kr.run(std::move(launch));
    for (unsigned i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(fmem.readF32(c + i * 4), 3.0f);
    // Out-of-range elements untouched.
    EXPECT_FLOAT_EQ(fmem.readF32(c + n * 4), 0.0f);
}

TEST(Gpgpu, ReductionWithBarriersAcrossManyCtAs)
{
    KernelRig kr;
    auto &fmem = kr.rig.functionalMemory();
    unsigned n = 2048;
    unsigned block = 64;
    unsigned ctas = n / block;
    Addr in = fmem.allocate(n * 4);
    Addr out = fmem.allocate(ctas * 4);
    for (unsigned i = 0; i < n; ++i)
        fmem.writeF32(in + i * 4, 1.0f);

    gpu::KernelLaunch launch;
    launch.program =
        kr.builder.buildKernel("reduce", scenes::kernelReduceSource());
    launch.blockX = block;
    launch.gridX = ctas;
    launch.memory = &fmem;
    launch.sharedBytesPerCta = block * 4;
    launch.constants = {static_cast<float>(in),
                        static_cast<float>(out)};
    kr.run(std::move(launch));

    for (unsigned i = 0; i < ctas; ++i) {
        ASSERT_FLOAT_EQ(fmem.readF32(out + i * 4),
                        static_cast<float>(block))
            << "cta " << i;
    }
}

TEST(Gpgpu, DivergentKernelCorrectAndCostsMore)
{
    KernelRig kr;
    auto &fmem = kr.rig.functionalMemory();
    unsigned n = 4096;
    Addr x = fmem.allocate(n * 4), y = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(x + i * 4, 2.0f);
        fmem.writeF32(y + i * 4, 1.0f);
    }
    gpu::KernelLaunch launch;
    launch.program = kr.builder.buildKernel(
        "saxpy", scenes::kernelSaxpyBranchySource());
    launch.blockX = 128;
    launch.gridX = n / 128;
    launch.memory = &fmem;
    launch.constants = {static_cast<float>(x), static_cast<float>(y),
                        3.0f, static_cast<float>(n)};
    kr.run(std::move(launch));

    for (unsigned i = 0; i < n; ++i) {
        float expect = (i % 2 == 0) ? 1.0f + 2.0f * 3.0f * 2.0f
                                    : 1.0f + 2.0f * 3.0f;
        ASSERT_FLOAT_EQ(fmem.readF32(y + i * 4), expect) << i;
    }
}

TEST(Gpgpu, BackToBackKernelsQueue)
{
    KernelRig kr;
    auto &fmem = kr.rig.functionalMemory();
    unsigned n = 512;
    Addr a = fmem.allocate(n * 4), b = fmem.allocate(n * 4),
         c = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, 1.0f);
        fmem.writeF32(b + i * 4, 1.0f);
    }
    const auto *prog =
        kr.builder.buildKernel("vecadd", scenes::kernelVecAddSource());

    int completed = 0;
    for (int k = 0; k < 3; ++k) {
        gpu::KernelLaunch launch;
        launch.program = prog;
        launch.blockX = 128;
        launch.gridX = n / 128;
        launch.memory = &fmem;
        // Chain: c = a+b, then a = c+b, then c = a+b again.
        if (k == 1)
            launch.constants = {static_cast<float>(c),
                                static_cast<float>(b),
                                static_cast<float>(a),
                                static_cast<float>(n)};
        else
            launch.constants = {static_cast<float>(a),
                                static_cast<float>(b),
                                static_cast<float>(c),
                                static_cast<float>(n)};
        launch.onDone = [&completed] { ++completed; };
        kr.rig.kernels().launch(std::move(launch));
    }
    ASSERT_TRUE(kr.rig.runUntil([&] { return completed == 3; }));
    // a = (1+1)+1 = 3, final c = 3+1 = 4.
    EXPECT_FLOAT_EQ(fmem.readF32(a + 4), 3.0f);
    EXPECT_FLOAT_EQ(fmem.readF32(c + 4), 4.0f);
}

TEST(Gpgpu, GraphicsAndComputeShareTheCores)
{
    // The unified-model headline: a frame and a kernel interleave on
    // the same SIMT cores within one simulation.
    KernelRig kr;
    auto &fmem = kr.rig.functionalMemory();
    scenes::SceneRenderer scene(
        kr.rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W3_Cube), fmem);

    unsigned n = 1024;
    Addr a = fmem.allocate(n * 4), b = fmem.allocate(n * 4),
         c = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, 2.0f);
        fmem.writeF32(b + i * 4, 3.0f);
    }

    bool frame_done = false;
    bool kernel_done = false;
    scene.renderFrame(0, [&](const core::FrameStats &) {
        frame_done = true;
    });
    gpu::KernelLaunch launch;
    launch.program =
        kr.builder.buildKernel("vecadd", scenes::kernelVecAddSource());
    launch.blockX = 128;
    launch.gridX = n / 128;
    launch.memory = &fmem;
    launch.constants = {static_cast<float>(a), static_cast<float>(b),
                        static_cast<float>(c), static_cast<float>(n)};
    launch.onDone = [&] { kernel_done = true; };
    kr.rig.kernels().launch(std::move(launch));

    ASSERT_TRUE(kr.rig.runUntil(
        [&] { return frame_done && kernel_done; }));
    EXPECT_FLOAT_EQ(fmem.readF32(c + 4), 5.0f);
    EXPECT_GT(kr.rig.gpu().core(0).statTasksCompute.value() +
                  kr.rig.gpu().core(1).statTasksCompute.value() +
                  kr.rig.gpu().core(2).statTasksCompute.value(),
              0.0);
    EXPECT_GT(kr.rig.pipeline().lastFrame().fragments, 100u);
}
