#include "sim/packet.hh"

#include "sim/logging.hh"

namespace emerald
{

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::CpuData: return "cpu_data";
      case AccessKind::Inst: return "inst";
      case AccessKind::GlobalData: return "global";
      case AccessKind::Texture: return "texture";
      case AccessKind::Depth: return "depth";
      case AccessKind::Color: return "color";
      case AccessKind::Constant: return "constant";
      case AccessKind::Vertex: return "vertex";
      case AccessKind::Display: return "display";
      case AccessKind::Writeback: return "writeback";
      default: return "unknown";
    }
}

const char *
trafficClassName(TrafficClass tclass)
{
    switch (tclass) {
      case TrafficClass::Cpu: return "cpu";
      case TrafficClass::Gpu: return "gpu";
      case TrafficClass::Display: return "display";
      default: return "unknown";
    }
}

std::string
MemPacket::toString() const
{
    return strprintf("%s %s %s addr=0x%llx size=%u req=%d",
                     trafficClassName(tclass), accessKindName(kind),
                     write ? "WR" : "RD", (unsigned long long)addr, size,
                     requestorId);
}

} // namespace emerald
