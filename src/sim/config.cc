#include "sim/config.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "sim/logging.hh"
#include "sim/nearest.hh"

namespace emerald
{

namespace
{

/**
 * Every --key some bench, example or the simulation kernel reads.
 * parseArgs rejects anything else (with a near-miss suggestion)
 * unless --allow-unknown-args is given; keeping the table here, next
 * to the parser, makes "add a flag" a one-line change.
 */
const char *const knownKeys[] = {
    // Simulation kernel (SimulationBuilder::observability).
    "capture-trace", "check-determinism", "checkpoint-at",
    "checkpoint-dir", "checkpoint-every", "checkpoint-keep",
    "fault-plan", "fault-seed", "hang-report-path", "mem-sched",
    "profile", "replay-trace", "restore", "restore-force",
    "sim-stats-json", "sim-stats-out", "trace-file", "warp-sched",
    "watchdog-mode", "watchdog-ticks",
    // Run supervisor (bench_main --supervise).
    "supervise", "supervise-backoff-ms", "supervise-dir",
    "supervise-kill-after-ms", "supervise-retries",
    // Parser control.
    "allow-unknown-args",
    // Benches and examples.
    "alpha", "beta", "channels", "config", "fps", "frames", "gamma",
    "height", "highload", "maxwt", "model", "n", "name", "npu",
    "npu-dma-outstanding", "npu-fps", "npu-frames", "npu-model",
    "npu-queue-depth", "npu-scratch-kb", "npu-tile", "out", "outdir",
    "prep", "quick", "run_frames", "stats", "stats-json", "stats-out",
    "width", "workload", "wt",
    // Bench registry front end (bench_main) and sweep driver.
    "bench-bin", "ckpt-share-keys", "db", "dry-run", "git-sha",
    "jobs", "list", "retries", "retry-backoff-ms", "run", "spec",
};

/**
 * Keys that never contribute to a sweep point's fingerprint: they
 * steer where results/logs go or how the host-side tooling behaves,
 * not what machine or workload is simulated. Two runs differing only
 * in these keys are the same design point.
 */
const char *const fingerprintExcludedKeys[] = {
    "allow-unknown-args", "bench-bin", "capture-trace",
    "check-determinism", "checkpoint-at", "checkpoint-dir",
    "checkpoint-every", "checkpoint-keep", "ckpt-share-keys", "db",
    "dry-run", "git-sha", "hang-report-path", "jobs", "list", "name",
    "out", "outdir", "profile", "replay-trace", "restore",
    "restore-force", "retries", "retry-backoff-ms", "run",
    "sim-stats-json", "sim-stats-out", "spec", "stats", "stats-json",
    "stats-out", "supervise", "supervise-backoff-ms", "supervise-dir",
    "supervise-kill-after-ms", "supervise-retries", "trace-file",
    "watchdog-mode", "watchdog-ticks",
};

bool
isKnownKey(const std::string &key)
{
    for (const char *known : knownKeys)
        if (key == known)
            return true;
    return false;
}

void
rejectUnknownKey(const std::string &key)
{
    std::vector<std::string> known(std::begin(knownKeys),
                                   std::end(knownKeys));
    std::string suggestion = nearestMatch(key, known);
    if (!suggestion.empty()) {
        fatal("unknown option '--%s' — did you mean '--%s'? (pass "
              "--allow-unknown-args to skip this check)",
              key.c_str(), suggestion.c_str());
    }
    fatal("unknown option '--%s' (pass --allow-unknown-args to skip "
          "this check)", key.c_str());
}

} // namespace

void
Config::parseArgs(int argc, char **argv)
{
    // First pass: the opt-out may appear anywhere on the line.
    bool allow_unknown = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--allow-unknown-args" ||
            arg.rfind("--allow-unknown-args=", 0) == 0)
            allow_unknown = true;
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("bad argument '%s': expected --key=value", arg.c_str());
        auto eq = arg.find('=');
        std::string key = eq != std::string::npos
                              ? arg.substr(2, eq - 2)
                              : arg.substr(2);
        if (!allow_unknown && !isKnownKey(key))
            rejectUnknownKey(key);
        if (eq != std::string::npos) {
            set(key, arg.substr(eq + 1));
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            // "--key value" form, e.g. "--stats-json out.json".
            set(key, argv[++i]);
        } else {
            // Bare "--flag" is a boolean switch.
            set(key, "1");
        }
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = _values.find(key);
    return it == _values.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const char *text = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    std::int64_t value = std::strtoll(text, &end, 0);
    fatal_if(it->second.empty() || end == text || *end != '\0',
             "config key '%s': '%s' is not an integer",
             key.c_str(), text);
    fatal_if(errno == ERANGE,
             "config key '%s': '%s' overflows a 64-bit integer",
             key.c_str(), text);
    return value;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const char *text = it->second.c_str();
    char *end = nullptr;
    fatal_if(it->second.empty() || text[0] == '-',
             "config key '%s': '%s' is not a non-negative integer",
             key.c_str(), text);
    errno = 0;
    std::uint64_t value = std::strtoull(text, &end, 0);
    fatal_if(end == text || *end != '\0',
             "config key '%s': '%s' is not a non-negative integer",
             key.c_str(), text);
    fatal_if(errno == ERANGE,
             "config key '%s': '%s' overflows a 64-bit integer",
             key.c_str(), text);
    return value;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const char *text = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    double value = std::strtod(text, &end);
    fatal_if(it->second.empty() || end == text || *end != '\0',
             "config key '%s': '%s' is not a number",
             key.c_str(), text);
    // Overflow to +/-HUGE_VAL is a malformed input; denormal
    // underflow (errno set, tiny value returned) is accepted.
    fatal_if(errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL),
             "config key '%s': '%s' overflows a double",
             key.c_str(), text);
    return value;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const std::string &v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

namespace
{

bool
fingerprintExcluded(const std::string &key,
                    const std::vector<std::string> &shared)
{
    for (const char *excluded : fingerprintExcludedKeys)
        if (key == excluded)
            return true;
    for (const std::string &s : shared)
        if (key == s)
            return true;
    return false;
}

/** Split a comma-separated list, dropping empty fields. */
std::vector<std::string>
splitCommaList(const std::string &text)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        auto comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

namespace
{

std::vector<std::pair<std::string, std::string>>
paramsExcluding(const Config &cfg, const std::vector<std::string> &shared)
{
    std::vector<std::pair<std::string, std::string>> params;
    for (const auto &[key, value] : cfg.items()) {
        if (!fingerprintExcluded(key, shared))
            params.emplace_back(key, value);
    }
    return params;
}

std::uint64_t
fingerprintParams(
    const std::vector<std::pair<std::string, std::string>> &params)
{
    if (params.empty())
        return 0;
    // FNV-1a over "key=value\n" in sorted-key order.
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](const std::string &text) {
        for (unsigned char c : text) {
            hash ^= c;
            hash *= 1099511628211ull;
        }
    };
    for (const auto &[key, value] : params) {
        mix(key);
        mix("=");
        mix(value);
        mix("\n");
    }
    // Reserve 0 for "no sweep-relevant keys".
    return hash ? hash : 1;
}

std::string
fingerprintHex(std::uint64_t fp)
{
    if (!fp)
        return "";
    return strprintf("%016llx", (unsigned long long)fp);
}

} // namespace

std::vector<std::pair<std::string, std::string>>
sweepPointParams(const Config &cfg)
{
    return paramsExcluding(cfg, {});
}

std::uint64_t
sweepPointFingerprint(const Config &cfg)
{
    return fingerprintParams(sweepPointParams(cfg));
}

std::string
sweepPointFingerprintHex(const Config &cfg)
{
    return fingerprintHex(sweepPointFingerprint(cfg));
}

std::string
ckptScopeFingerprintHex(const Config &cfg)
{
    std::vector<std::string> shared =
        splitCommaList(cfg.getString("ckpt-share-keys", ""));
    return fingerprintHex(
        fingerprintParams(paramsExcluding(cfg, shared)));
}

} // namespace emerald
