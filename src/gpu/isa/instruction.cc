#include "gpu/isa/instruction.hh"

#include "sim/logging.hh"

namespace emerald::gpu::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::MOV: return "mov";
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::MAD: return "mad";
      case Opcode::MIN: return "min";
      case Opcode::MAX: return "max";
      case Opcode::ABS: return "abs";
      case Opcode::NEG: return "neg";
      case Opcode::FLR: return "flr";
      case Opcode::FRC: return "frc";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::NOT: return "not";
      case Opcode::SHL: return "shl";
      case Opcode::SHR: return "shr";
      case Opcode::CVT: return "cvt";
      case Opcode::SETP: return "setp";
      case Opcode::SELP: return "selp";
      case Opcode::RCP: return "rcp";
      case Opcode::RSQ: return "rsq";
      case Opcode::SQRT: return "sqrt";
      case Opcode::EX2: return "ex2";
      case Opcode::LG2: return "lg2";
      case Opcode::SIN: return "sin";
      case Opcode::COS: return "cos";
      case Opcode::POW: return "pow";
      case Opcode::LDG: return "ldg";
      case Opcode::STG: return "stg";
      case Opcode::LDS: return "lds";
      case Opcode::STS: return "sts";
      case Opcode::TEX: return "tex";
      case Opcode::STO: return "sto";
      case Opcode::ZTEST: return "ztest";
      case Opcode::BLEND: return "blend";
      case Opcode::STFB: return "stfb";
      case Opcode::DISCARD: return "discard";
      case Opcode::BRA: return "bra";
      case Opcode::BAR: return "bar";
      case Opcode::EXIT: return "exit";
      default: return "unknown";
    }
}

LatencyClass
Instruction::latencyClass() const
{
    switch (op) {
      case Opcode::RCP:
      case Opcode::RSQ:
      case Opcode::SQRT:
      case Opcode::EX2:
      case Opcode::LG2:
      case Opcode::SIN:
      case Opcode::COS:
      case Opcode::POW:
      case Opcode::DIV:
        return LatencyClass::Sfu;
      case Opcode::LDG:
      case Opcode::STG:
        return LatencyClass::MemGlobal;
      case Opcode::LDS:
      case Opcode::STS:
        return LatencyClass::MemShared;
      case Opcode::TEX:
        return LatencyClass::Tex;
      case Opcode::ZTEST:
      case Opcode::BLEND:
      case Opcode::STFB:
        return LatencyClass::Rop;
      case Opcode::BRA:
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::DISCARD:
        return LatencyClass::Control;
      default:
        return LatencyClass::Alu;
    }
}

bool
Instruction::isMemory() const
{
    switch (latencyClass()) {
      case LatencyClass::MemGlobal:
      case LatencyClass::MemShared:
      case LatencyClass::Tex:
      case LatencyClass::Rop:
        return true;
      default:
        return false;
    }
}

bool
Instruction::writesRegister() const
{
    switch (op) {
      case Opcode::STG:
      case Opcode::STS:
      case Opcode::STO:
      case Opcode::ZTEST:
      case Opcode::BLEND:
      case Opcode::STFB:
      case Opcode::DISCARD:
      case Opcode::BRA:
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::NOP:
        return false;
      case Opcode::SETP:
        return true; // Predicate write, tracked like a register.
      default:
        return dst.kind == Operand::Kind::Reg;
    }
}

std::string
Instruction::toString() const
{
    std::string out = opcodeName(op);
    if (op == Opcode::BRA)
        out += strprintf(" -> %d (rpc %d)", target, reconvergePc);
    return out;
}

} // namespace emerald::gpu::isa
