#include <gtest/gtest.h>

#include <bit>

#include "gpu/isa/assembler.hh"
#include "gpu/isa/cfg.hh"
#include "gpu/isa/executor.hh"

using namespace emerald;
using namespace emerald::gpu::isa;

namespace
{

/** Execute a program functionally on a single thread (lane 0). */
struct MiniRunner
{
    Program prog;
    ThreadContext threads[warpSize];
    ExecEnv env;
    StepEffects effects;

    explicit MiniRunner(const std::string &src)
        : prog(assemble("test", src))
    {
    }

    /** Run to completion with a scalar pc walker (no divergence). */
    void
    run(std::uint32_t mask = 1)
    {
        int pc = 0;
        int guard_steps = 0;
        while (pc >= 0 &&
               pc < static_cast<int>(prog.code.size()) &&
               ++guard_steps < 10000) {
            const Instruction &instr =
                prog.code[static_cast<std::size_t>(pc)];
            executeWarpInstruction(instr, mask, threads, env, effects);
            if (instr.op == Opcode::EXIT)
                break;
            if (instr.op == Opcode::BRA &&
                effects.takenMask == (effects.execMask & mask) &&
                effects.execMask != 0) {
                pc = instr.target;
            } else {
                ++pc;
            }
        }
    }

    float regF(int r) const { return std::bit_cast<float>(threads[0].r[r]); }
    std::int32_t regI(int r) const
    {
        return static_cast<std::int32_t>(threads[0].r[r]);
    }
};

} // namespace

TEST(Assembler, ParsesBasicProgram)
{
    Program p = assemble("t", R"(
        mov.f32 r0, 1.5
        add.f32 r1, r0, 2.5
        exit
    )");
    ASSERT_EQ(p.code.size(), 3u);
    EXPECT_EQ(p.code[0].op, Opcode::MOV);
    EXPECT_EQ(p.code[1].op, Opcode::ADD);
    EXPECT_EQ(p.numRegs, 2u);
}

TEST(Assembler, LabelsAndGuards)
{
    Program p = assemble("t", R"(
        setp.lt.f32 p0, r0, r1
        @p0 bra SKIP
        mov.f32 r2, 1.0
        SKIP:
        exit
    )");
    EXPECT_EQ(p.code[1].target, 3);
    EXPECT_EQ(p.code[1].guard, 0);
    EXPECT_EQ(p.numPreds, 1u);
}

TEST(Assembler, RejectsBadInput)
{
    EXPECT_THROW(assemble("t", "bogus.f32 r0, r1\n"), AsmError);
    EXPECT_THROW(assemble("t", "bra NOWHERE\n"), AsmError);
    EXPECT_THROW(assemble("t", "add.f32 r0, r1\n"), AsmError);
    EXPECT_THROW(assemble("t", "mov.f32 r99, r1\n"), AsmError);
    EXPECT_THROW(assemble("t", ""), AsmError);
    EXPECT_THROW(assemble("t", "setp.lt.f32 r0, r1, r2\n"), AsmError);
}

TEST(Assembler, DetectsDiscardAndZTest)
{
    Program p1 = assemble("t", "discard\nexit\n");
    EXPECT_TRUE(p1.usesDiscard);
    Program p2 = assemble("t", "ztest %z\nexit\n");
    EXPECT_TRUE(p2.usesZTest);
    EXPECT_FALSE(p2.usesDiscard);
}

TEST(Assembler, TexUsesQuadRegisters)
{
    Program p = assemble("t", "tex.2d r4, t0, r0, r1\nexit\n");
    EXPECT_EQ(p.code[0].texUnit, 0);
    EXPECT_EQ(p.numRegs, 8u); // r4..r7 written.
}

TEST(Cfg, IfElseReconvergesAtJoin)
{
    Program p = assemble("t", R"(
        setp.lt.f32 p0, r0, r1
        @p0 bra ELSE
        mov.f32 r2, 1.0
        bra JOIN
        ELSE:
        mov.f32 r2, 2.0
        JOIN:
        exit
    )");
    // The conditional branch at pc 1 reconverges at JOIN (pc 5).
    EXPECT_EQ(p.code[1].reconvergePc, 5);
}

TEST(Cfg, LoopBranchReconverges)
{
    Program p = assemble("t", R"(
        mov.u32 r0, 4
        LOOP:
        sub.u32 r0, r0, 1
        setp.gt.u32 p0, r0, 0
        @p0 bra LOOP
        exit
    )");
    // Back edge at pc 3; reconvergence is the loop exit (pc 4).
    EXPECT_EQ(p.code[3].reconvergePc, 4);
}

TEST(Cfg, BasicBlockPartition)
{
    Program p = assemble("t", R"(
        mov.f32 r0, 0.0
        @p0 bra L
        mov.f32 r1, 1.0
        L:
        exit
    )");
    auto blocks = buildBasicBlocks(p);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].first, 0);
    EXPECT_EQ(blocks[0].last, 1);
    EXPECT_EQ(blocks[1].first, 2);
    EXPECT_EQ(blocks[2].first, 3);
}

struct AluCase
{
    const char *name;
    const char *source;
    int dstReg;
    float expected;
};

void
PrintTo(const AluCase &c, std::ostream *os)
{
    *os << c.name;
}

class AluOps : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluOps, ComputesExpected)
{
    MiniRunner r(std::string(GetParam().source) + "\nexit\n");
    r.run();
    EXPECT_NEAR(r.regF(GetParam().dstReg), GetParam().expected, 1e-4f)
        << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluOps,
    ::testing::Values(
        AluCase{"mov", "mov.f32 r1, 3.25", 1, 3.25f},
        AluCase{"add", "mov.f32 r0, 2.0\nadd.f32 r1, r0, 0.5", 1, 2.5f},
        AluCase{"sub", "mov.f32 r0, 2.0\nsub.f32 r1, r0, 0.5", 1, 1.5f},
        AluCase{"mul", "mov.f32 r0, 3.0\nmul.f32 r1, r0, r0", 1, 9.0f},
        AluCase{"div", "mov.f32 r0, 9.0\ndiv.f32 r1, r0, 2.0", 1, 4.5f},
        AluCase{"mad", "mov.f32 r0, 2.0\nmad.f32 r1, r0, 3.0, 1.0", 1, 7.0f},
        AluCase{"abs", "mov.f32 r0, -4.0\nabs.f32 r1, r0", 1, 4.0f},
        AluCase{"neg", "mov.f32 r0, 4.0\nneg.f32 r1, r0", 1, -4.0f},
        AluCase{"flr", "mov.f32 r0, 2.75\nflr.f32 r1, r0", 1, 2.0f},
        AluCase{"frc", "mov.f32 r0, 2.75\nfrc.f32 r1, r0", 1, 0.75f},
        AluCase{"min", "mov.f32 r0, 3.0\nmin.f32 r1, r0, 2.0", 1, 2.0f},
        AluCase{"max", "mov.f32 r0, 3.0\nmax.f32 r1, r0, 2.0", 1, 3.0f},
        AluCase{"rcp", "mov.f32 r0, 4.0\nrcp.f32 r1, r0", 1, 0.25f},
        AluCase{"rsq", "mov.f32 r0, 16.0\nrsq.f32 r1, r0", 1, 0.25f},
        AluCase{"sqrt", "mov.f32 r0, 16.0\nsqrt.f32 r1, r0", 1, 4.0f},
        AluCase{"ex2", "mov.f32 r0, 3.0\nex2.f32 r1, r0", 1, 8.0f},
        AluCase{"lg2", "mov.f32 r0, 8.0\nlg2.f32 r1, r0", 1, 3.0f},
        AluCase{"sin", "mov.f32 r0, 0.0\nsin.f32 r1, r0", 1, 0.0f},
        AluCase{"cos", "mov.f32 r0, 0.0\ncos.f32 r1, r0", 1, 1.0f},
        AluCase{"pow", "mov.f32 r0, 2.0\npow.f32 r1, r0, 10.0", 1, 1024.0f}),
    [](const ::testing::TestParamInfo<AluCase> &param_info) {
        return std::string(param_info.param.name);
    });

TEST(Executor, IntegerOps)
{
    MiniRunner r(R"(
        mov.s32 r0, 7
        mov.s32 r1, 3
        add.s32 r2, r0, r1
        sub.s32 r3, r0, r1
        mul.s32 r4, r0, r1
        div.s32 r5, r0, r1
        and.u32 r6, r0, r1
        or.u32 r7, r0, r1
        xor.u32 r8, r0, r1
        shl.u32 r9, r1, 2
        shr.u32 r10, r0, 1
        exit
    )");
    r.run();
    EXPECT_EQ(r.regI(2), 10);
    EXPECT_EQ(r.regI(3), 4);
    EXPECT_EQ(r.regI(4), 21);
    EXPECT_EQ(r.regI(5), 2);
    EXPECT_EQ(r.regI(6), 3);
    EXPECT_EQ(r.regI(7), 7);
    EXPECT_EQ(r.regI(8), 4);
    EXPECT_EQ(r.regI(9), 12);
    EXPECT_EQ(r.regI(10), 3);
}

TEST(Executor, Conversions)
{
    MiniRunner r(R"(
        mov.s32 r0, -7
        cvt.f32.s32 r1, r0
        mov.f32 r2, 3.7
        cvt.s32.f32 r3, r2
        mov.f32 r4, 5.9
        cvt.u32.f32 r5, r4
        exit
    )");
    r.run();
    EXPECT_FLOAT_EQ(r.regF(1), -7.0f);
    EXPECT_EQ(r.regI(3), 3);
    EXPECT_EQ(r.regI(5), 5);
}

TEST(Executor, PredicatesAndSelp)
{
    MiniRunner r(R"(
        mov.f32 r0, 1.0
        mov.f32 r1, 2.0
        setp.lt.f32 p0, r0, r1
        selp.f32 r2, 10.0, 20.0, p0
        setp.gt.f32 p1, r0, r1
        selp.f32 r3, 10.0, 20.0, p1
        @p0 mov.f32 r4, 5.0
        @p1 mov.f32 r5, 6.0
        exit
    )");
    r.run();
    EXPECT_FLOAT_EQ(r.regF(2), 10.0f);
    EXPECT_FLOAT_EQ(r.regF(3), 20.0f);
    EXPECT_FLOAT_EQ(r.regF(4), 5.0f);  // Guard true: executed.
    EXPECT_FLOAT_EQ(r.regF(5), 0.0f);  // Guard false: skipped.
}

TEST(Executor, GlobalMemoryRoundTrip)
{
    MiniRunner r(R"(
        mov.u32 r0, 4096
        mov.f32 r1, 42.5
        stg.f32 [r0 + 8], r1
        ldg.f32 r2, [r0 + 8]
        exit
    )");
    mem::FunctionalMemory fmem;
    r.env.global = &fmem;
    r.run();
    EXPECT_FLOAT_EQ(r.regF(2), 42.5f);
    EXPECT_FLOAT_EQ(fmem.readF32(4104), 42.5f);
}

TEST(Executor, SharedMemoryRoundTrip)
{
    MiniRunner r(R"(
        mov.u32 r0, 16
        mov.f32 r1, 7.5
        sts.f32 [r0], r1
        lds.f32 r2, [r0]
        exit
    )");
    std::uint8_t shared[128] = {};
    r.env.sharedMem = shared;
    r.env.sharedSize = sizeof(shared);
    r.run();
    EXPECT_FLOAT_EQ(r.regF(2), 7.5f);
}

TEST(Executor, ConstantsAndAttrs)
{
    MiniRunner r(R"(
        add.f32 r0, c[2], a[1]
        exit
    )");
    float consts[4] = {0.0f, 0.0f, 1.5f, 0.0f};
    r.env.constants = consts;
    r.env.numConstants = 4;
    r.threads[0].a[1] = 2.25f;
    r.run();
    EXPECT_FLOAT_EQ(r.regF(0), 3.75f);
}

TEST(Executor, OutputRegisters)
{
    MiniRunner r(R"(
        mov.f32 r0, 1.25
        sto o[3], r0
        mov.f32 r1, o[3]
        exit
    )");
    r.run();
    EXPECT_FLOAT_EQ(r.threads[0].o[3], 1.25f);
    EXPECT_FLOAT_EQ(r.regF(1), 1.25f);
}

TEST(Executor, SpecialRegisters)
{
    MiniRunner r(R"(
        mov.u32 r0, %tid.x
        mov.u32 r1, %ctaid.x
        mov.u32 r2, %ntid.x
        mov.f32 r3, %z
        exit
    )");
    r.threads[0].tidX = 5;
    r.threads[0].ctaIdX = 7;
    r.threads[0].ntidX = 128;
    r.threads[0].fragZ = 0.5f;
    r.run();
    EXPECT_EQ(r.regI(0), 5);
    EXPECT_EQ(r.regI(1), 7);
    EXPECT_EQ(r.regI(2), 128);
    EXPECT_FLOAT_EQ(r.regF(3), 0.5f);
}

TEST(Executor, DiscardKillsThread)
{
    MiniRunner r("discard\nexit\n");
    r.run();
    EXPECT_FALSE(r.threads[0].alive);
    EXPECT_TRUE(r.threads[0].killed);
}

TEST(Executor, GuardedLanesDoNotAccessMemory)
{
    Program p = assemble("t", R"(
        setp.eq.u32 p0, %tid.x, 0
        @p0 ldg.f32 r0, [r1]
        exit
    )");
    ThreadContext threads[warpSize];
    for (unsigned i = 0; i < warpSize; ++i)
        threads[i].tidX = i;
    mem::FunctionalMemory fmem;
    ExecEnv env;
    env.global = &fmem;
    StepEffects fx;
    executeWarpInstruction(p.code[0], 0xffffffffu, threads, env, fx);
    executeWarpInstruction(p.code[1], 0xffffffffu, threads, env, fx);
    // Only lane 0 passed the guard: exactly one access.
    EXPECT_EQ(fx.accesses.size(), 1u);
    EXPECT_EQ(fx.execMask, 1u);
}
