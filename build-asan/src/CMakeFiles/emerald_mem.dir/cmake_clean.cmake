file(REMOVE_RECURSE
  "CMakeFiles/emerald_mem.dir/mem/address_map.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/address_map.cc.o.d"
  "CMakeFiles/emerald_mem.dir/mem/dash_scheduler.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/dash_scheduler.cc.o.d"
  "CMakeFiles/emerald_mem.dir/mem/dram.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/emerald_mem.dir/mem/dram_channel.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/dram_channel.cc.o.d"
  "CMakeFiles/emerald_mem.dir/mem/frfcfs_scheduler.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/frfcfs_scheduler.cc.o.d"
  "CMakeFiles/emerald_mem.dir/mem/functional_memory.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/functional_memory.cc.o.d"
  "CMakeFiles/emerald_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/emerald_mem.dir/mem/memory_system.cc.o.d"
  "libemerald_mem.a"
  "libemerald_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
