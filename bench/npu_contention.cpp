/**
 * @file
 * npu_contention: the NPU-in-the-mix extension of the case study I
 * contention experiments (Figs. 9/12/13). Each memory configuration
 * runs the high-load scenario twice — NPU off (the paper's original
 * three-client mix) and NPU on (camera inferences DMAing through the
 * same DRAM) — and reports what the fourth client does to GPU frame
 * time and display health, and what the scheduler does to NPU
 * inference deadlines. FR-FCFS (BAS) has no deadline awareness: the
 * NPU's bursty DMA competes head-on with CPU prep traffic and
 * inflates total frame time severely. DASH (DCB/DTB) tracks NPU
 * progress through the QoS seam and contains the interference —
 * total frame time barely moves — at the price of extra display
 * pressure when a late inference goes urgent.
 *
 * Extra axes: the shared --npu-* keys (soc/configs.hh) tune tile
 * size, model, camera rate and queue depth for sweeps.
 */

#include <chrono>

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "npu_contention");
    bool quick = harness.quick;
    BenchResults &results = *harness.results;

    std::printf("=== NPU contention: high-load scenario, NPU "
                "off/on per memory config ===\n");

    auto configs = allMemConfigs();
    if (quick)
        configs = {soc::MemConfig::BAS, soc::MemConfig::DCB};
    const scenes::WorkloadId model = scenes::WorkloadId::M2_Cube;

    std::printf("%-6s | %-17s | %-17s | %-23s | %-13s\n", "",
                "gpu ms (off/on)", "total ms (off/on)",
                "npu done/miss/drop", "underruns o/n");

    for (soc::MemConfig config : configs) {
        double gpu_ms[2] = {0.0, 0.0};
        double total_ms[2] = {0.0, 0.0};
        double underruns[2] = {0.0, 0.0};
        double npu_done = 0.0, npu_miss = 0.0, npu_drop = 0.0;
        double npu_inf_ms = 0.0;
        for (int npu_on = 0; npu_on < 2; ++npu_on) {
            soc::SocParams p = caseStudy1Params(model, config, true);
            if (quick)
                p.frames = 3;
            // Scenario defaults stress the deadline: the wider
            // "mobile" CNN at a 120 FPS camera leaves little slack
            // under the high-load DRAM, so scheduler deadline
            // awareness becomes visible. --npu-* keys override.
            p.npuModel = "mobile";
            p.npuFramePeriod = ticksFromMs(1000.0 / 70.0);
            soc::applyNpuConfig(p, harness.cfg);
            p.npuEnabled = npu_on != 0;

            std::string label =
                std::string(soc::memConfigName(config)) +
                (npu_on ? ".on" : ".off");
            SimulationBuilder builder = harness.builderFor(label);
            soc::SocTop soc(p, builder);
            soc.run();

            gpu_ms[npu_on] = soc.meanGpuFrameMs();
            total_ms[npu_on] = soc.meanTotalFrameMs();
            underruns[npu_on] =
                soc.display().statUnderruns.value();
            results.record(label + ".gpu_ms", gpu_ms[npu_on]);
            results.record(label + ".total_ms", total_ms[npu_on]);
            results.record(label + ".display_underruns",
                           underruns[npu_on]);
            results.record(
                label + ".event_hash",
                static_cast<double>(soc.sim().determinismHash() &
                                    ((1ULL << 53) - 1)));
            if (soc.npuCamera()) {
                npu_done = soc.npuCamera()->statCompleted.value();
                npu_miss =
                    soc.npuCamera()->statDeadlineMisses.value();
                npu_drop = soc.npuCamera()->statDropped.value();
                npu_inf_ms = msFromTicks(static_cast<Tick>(
                    soc.npuCamera()->statInfTicks.mean()));
                results.record(label + ".npu_completed", npu_done);
                results.record(label + ".npu_deadline_misses",
                               npu_miss);
                results.record(label + ".npu_dropped", npu_drop);
                results.record(label + ".npu_inf_ms", npu_inf_ms);
                // The NPU-on runs carry the full stats tree
                // (soc.npu.* lands in --stats-out) for sweep queries.
                results.addSimStats(soc.sim());
            }
        }
        std::printf("%-6s | %8.3f %8.3f | %8.3f %8.3f | "
                    "%7.0f %7.0f %7.0f | %6.0f %6.0f\n",
                    soc::memConfigName(config), gpu_ms[0], gpu_ms[1],
                    total_ms[0], total_ms[1], npu_done, npu_miss,
                    npu_drop, underruns[0], underruns[1]);
        results.record(std::string(soc::memConfigName(config)) +
                           ".gpu_ms_ratio",
                       gpu_ms[0] > 0.0 ? gpu_ms[1] / gpu_ms[0] : 0.0);
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: NPU-on inflates total frame time "
                "far more under FR-FCFS (BAS) than under DASH; "
                "deadline misses appear on every config at the "
                "default 70 FPS camera, with inference latency "
                "shifting measurably between schedulers\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "npu_contention",
    .desc = "NPU-in-the-mix contention: figs 9/12/13 with a fourth "
            "memory client",
    .axes = {"npu-tile", "npu-model", "npu-fps", "npu-frames",
             "npu-queue-depth", "npu-dma-outstanding",
             "npu-scratch-kb", "quick"},
    .expectedShape = "NPU-on inflates total frame time far more "
                     "under FR-FCFS (BAS) than DASH; deadline "
                     "misses and inference latency shift between "
                     "schedulers",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
