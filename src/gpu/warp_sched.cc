#include "gpu/warp_sched.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "sim/logging.hh"
#include "sim/nearest.hh"

namespace emerald::gpu
{

namespace
{

using isa::LatencyClass;

/**
 * Loose round-robin: rotate through the owned slots starting just
 * after the last-issued one. The cursor starts so that the very first
 * ranking reproduces the core's original whole-array scan from
 * _issuePtr == 0: lane 0 owns slot 0 (its old scan saw slot `k`
 * first), every other lane's first owned slot lies after slot 0 (its
 * old scan saw owned[0] first).
 */
class LrrScheduler final : public WarpScheduler
{
  public:
    LrrScheduler(std::vector<unsigned> owned, unsigned scheduler_id)
        : WarpScheduler(std::move(owned), scheduler_id),
          _cursor(scheduler_id == 0 || _owned.empty()
                      ? 0
                      : _owned.size() - 1)
    {}

    void
    order(const std::vector<Warp> &, std::vector<unsigned> &out) override
    {
        out.clear();
        const std::size_t m = _owned.size();
        for (std::size_t step = 1; step <= m; ++step)
            out.push_back(_owned[(_cursor + step) % m]);
    }

    void
    issued(unsigned slot) override
    {
        auto it = std::lower_bound(_owned.begin(), _owned.end(), slot);
        panic_if(it == _owned.end() || *it != slot,
                 "lrr: issued slot %u is not owned by lane %u", slot,
                 _id);
        _cursor = static_cast<std::size_t>(it - _owned.begin());
    }

    const char *policyName() const override { return "lrr"; }

    std::uint64_t cursorState() const override { return _cursor; }

    void
    setCursorState(std::uint64_t state) override
    {
        _cursor = _owned.empty()
                      ? 0
                      : static_cast<std::size_t>(state) % _owned.size();
    }

  private:
    std::size_t _cursor;
};

/**
 * Greedy-then-oldest: keep issuing from the warp issued last cycle
 * while it stays ready (preserving its cache locality), otherwise the
 * oldest resident warp (smallest launch sequence) wins.
 */
class GtoScheduler final : public WarpScheduler
{
  public:
    using WarpScheduler::WarpScheduler;

    void
    order(const std::vector<Warp> &warps,
          std::vector<unsigned> &out) override
    {
        out.assign(_owned.begin(), _owned.end());
        std::sort(out.begin(), out.end(),
                  [&](unsigned a, unsigned b) {
                      return key(warps, a) < key(warps, b);
                  });
    }

    void issued(unsigned slot) override { _lastIssued = slot; }

    const char *policyName() const override { return "gto"; }

    /** Encoded as slot+1 so 0 keeps meaning "none yet". */
    std::uint64_t
    cursorState() const override
    {
        return _lastIssued < 0
                   ? 0
                   : static_cast<std::uint64_t>(_lastIssued) + 1;
    }

    void
    setCursorState(std::uint64_t state) override
    {
        _lastIssued = state == 0 ? -1 : static_cast<int>(state - 1);
    }

  private:
    std::tuple<int, std::uint64_t, unsigned>
    key(const std::vector<Warp> &warps, unsigned slot) const
    {
        const Warp &warp = warps[slot];
        return {static_cast<int>(slot) == _lastIssued ? 0 : 1,
                warp.valid ? warp.launchSeq : ~std::uint64_t{0}, slot};
    }

    int _lastIssued = -1;
};

/**
 * WaSP-style criticality/lookahead scheduling: scan up to
 * `lookaheadWindow` instructions of straight-line code ahead of each
 * warp's pc and prioritize the warp nearest its next memory
 * instruction. Memory requests therefore enter the memory system as
 * early as the scoreboard allows — the software-prefetch-like effect
 * WaSP reports for graphics shaders. Ties break toward the warp that
 * has executed the fewest instructions (criticality: the straggler
 * holds the frame fence), then by slot for determinism.
 */
class WaspScheduler final : public WarpScheduler
{
  public:
    using WarpScheduler::WarpScheduler;

    static constexpr unsigned lookaheadWindow = 8;

    void
    order(const std::vector<Warp> &warps,
          std::vector<unsigned> &out) override
    {
        out.assign(_owned.begin(), _owned.end());
        std::sort(out.begin(), out.end(),
                  [&](unsigned a, unsigned b) {
                      return key(warps, a) < key(warps, b);
                  });
    }

    const char *policyName() const override { return "wasp"; }

  private:
    static unsigned
    distanceToMemory(const Warp &warp)
    {
        if (!warp.valid || warp.stack.empty())
            return lookaheadWindow + 1;
        const auto &code = warp.task.program->code;
        int pc = warp.stack.pc();
        for (unsigned d = 0; d < lookaheadWindow; ++d) {
            int at = pc + static_cast<int>(d);
            if (at < 0 || at >= static_cast<int>(code.size()))
                break;
            const isa::Instruction &instr =
                code[static_cast<std::size_t>(at)];
            LatencyClass lat = instr.latencyClass();
            if (lat == LatencyClass::MemGlobal ||
                lat == LatencyClass::Tex || lat == LatencyClass::Rop) {
                return d;
            }
            if (instr.isBranch())
                break; // Fall-through is speculative past a branch.
        }
        return lookaheadWindow + 1;
    }

    std::tuple<unsigned, std::uint64_t, unsigned>
    key(const std::vector<Warp> &warps, unsigned slot) const
    {
        const Warp &warp = warps[slot];
        return {distanceToMemory(warp), warp.warpInstrsExecuted, slot};
    }
};

using Registry = std::map<std::string, WarpSchedulerFactory>;

/**
 * Function-local registry, populated on first use. Self-registration
 * through global constructors would be stripped by the linker when
 * this object file sits unreferenced in libemerald_gpu.a.
 */
Registry &
registry()
{
    static Registry reg = [] {
        Registry builtins;
        builtins["lrr"] = [](std::vector<unsigned> owned, unsigned id) {
            return std::make_unique<LrrScheduler>(std::move(owned), id);
        };
        builtins["gto"] = [](std::vector<unsigned> owned, unsigned id) {
            return std::make_unique<GtoScheduler>(std::move(owned), id);
        };
        builtins["wasp"] = [](std::vector<unsigned> owned, unsigned id) {
            return std::make_unique<WaspScheduler>(std::move(owned),
                                                   id);
        };
        return builtins;
    }();
    return reg;
}

} // namespace

void
registerWarpScheduler(const std::string &policy,
                      WarpSchedulerFactory factory)
{
    auto [it, inserted] = registry().emplace(policy, std::move(factory));
    (void)it;
    fatal_if(!inserted, "warp scheduler policy '%s' registered twice",
             policy.c_str());
}

std::unique_ptr<WarpScheduler>
createWarpScheduler(const std::string &policy,
                    std::vector<unsigned> owned, unsigned scheduler_id)
{
    const std::string &name =
        policy.empty() ? defaultWarpSchedPolicy : policy;
    auto it = registry().find(name);
    if (it == registry().end()) {
        std::string suggestion =
            nearestMatch(name, warpSchedulerPolicies());
        std::string known;
        for (const std::string &p : warpSchedulerPolicies())
            known += (known.empty() ? "" : ", ") + p;
        if (!suggestion.empty()) {
            fatal("unknown warp scheduler policy '%s' — did you mean "
                  "'%s'? (known: %s)",
                  name.c_str(), suggestion.c_str(), known.c_str());
        }
        fatal("unknown warp scheduler policy '%s' (known: %s)",
              name.c_str(), known.c_str());
    }
    return it->second(std::move(owned), scheduler_id);
}

std::vector<std::string>
warpSchedulerPolicies()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

} // namespace emerald::gpu
